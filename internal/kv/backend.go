package kv

import (
	"pipette/internal/extfs"
	"pipette/internal/sim"
	"pipette/internal/vfs"
)

// BackendFile is one open segment handle. All I/O threads virtual time,
// exactly like the vfs layer underneath.
type BackendFile interface {
	ReadAt(now sim.Time, buf []byte, off int64) (int, sim.Time, error)
	WriteAt(now sim.Time, data []byte, off int64) (int, sim.Time, error)
	Sync(now sim.Time) (sim.Time, error)
	Close() error
	Size() int64
}

// Backend is the filesystem the store keeps its value-log segments on. The
// production implementation is VFSBackend; tests may substitute fakes.
type Backend interface {
	// Create makes a fixed-size segment file and returns its write handle.
	Create(name string, size int64) (BackendFile, error)
	// OpenReader opens a read handle; fine requests O_FINE_GRAINED so Gets
	// take the byte-granular read path.
	OpenReader(name string, fine bool) (BackendFile, error)
	// OpenWriter opens a write handle on an existing segment (recovery
	// resumes appending into the last one).
	OpenWriter(name string) (BackendFile, error)
	Remove(name string) error
	Files() []string
	PageSize() int
}

// VFSBackend runs the store over a simulated filesystem. Segments are
// preloaded so every page is device-mapped from creation: fine-grained
// reads never touch an unmapped LBA, and the recovery scan reads
// deterministic pattern bytes (not holes) past the log tail — which the
// record checksums reject, as on real hardware.
type VFSBackend struct {
	V *vfs.VFS
}

// Create implements Backend.
func (b VFSBackend) Create(name string, size int64) (BackendFile, error) {
	return b.V.Create(name, size, extfs.CreateOpts{Preload: true}, vfs.ReadWrite)
}

// OpenReader implements Backend.
func (b VFSBackend) OpenReader(name string, fine bool) (BackendFile, error) {
	flags := vfs.ReadOnly
	if fine {
		flags |= vfs.FineGrained
	}
	return b.V.Open(name, flags)
}

// OpenWriter implements Backend.
func (b VFSBackend) OpenWriter(name string) (BackendFile, error) {
	return b.V.Open(name, vfs.ReadWrite)
}

// Remove implements Backend.
func (b VFSBackend) Remove(name string) error { return b.V.Remove(name) }

// Files implements Backend.
func (b VFSBackend) Files() []string { return b.V.FS().Files() }

// PageSize implements Backend.
func (b VFSBackend) PageSize() int { return b.V.FS().PageSize() }
