package kv

import (
	"pipette/internal/extfs"
	"pipette/internal/index"
	"pipette/internal/vfs"
)

// BackendFile is one open segment handle. All I/O threads virtual time,
// exactly like the vfs layer underneath. It is the same interface the index
// engines use for their files — the value log and the index structures live
// on the same filesystem.
type BackendFile = index.File

// Backend is the filesystem the store keeps its value-log segments (and the
// index engines their arenas and runs) on. The production implementation is
// VFSBackend; tests may substitute fakes.
type Backend = index.Backend

// VFSBackend runs the store over a simulated filesystem. Segments are
// preloaded so every page is device-mapped from creation: fine-grained
// reads never touch an unmapped LBA, and the recovery scan reads
// deterministic pattern bytes (not holes) past the log tail — which the
// record checksums reject, as on real hardware.
type VFSBackend struct {
	V *vfs.VFS
}

// Create implements Backend.
func (b VFSBackend) Create(name string, size int64) (BackendFile, error) {
	return b.V.Create(name, size, extfs.CreateOpts{Preload: true}, vfs.ReadWrite)
}

// OpenReader implements Backend.
func (b VFSBackend) OpenReader(name string, fine bool) (BackendFile, error) {
	flags := vfs.ReadOnly
	if fine {
		flags |= vfs.FineGrained
	}
	return b.V.Open(name, flags)
}

// OpenWriter implements Backend.
func (b VFSBackend) OpenWriter(name string) (BackendFile, error) {
	return b.V.Open(name, vfs.ReadWrite)
}

// Remove implements Backend.
func (b VFSBackend) Remove(name string) error { return b.V.Remove(name) }

// Files implements Backend.
func (b VFSBackend) Files() []string { return b.V.FS().Files() }

// PageSize implements Backend.
func (b VFSBackend) PageSize() int { return b.V.FS().PageSize() }
