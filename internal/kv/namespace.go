package kv

import (
	"strconv"
	"strings"
)

// NamespaceKey prefixes key with a tenant namespace, producing the flat
// key the store (and the cluster router) actually sees. Namespaced keys
// keep tenants disjoint inside a shared store while staying ordinary
// string keys — Scan over "t3/" iterates exactly tenant 3's records.
func NamespaceKey(tenant int, key string) string {
	return "t" + strconv.Itoa(tenant) + "/" + key
}

// SplitNamespace reverses NamespaceKey. ok is false when k does not carry
// a "t<tenant>/" prefix.
func SplitNamespace(k string) (tenant int, key string, ok bool) {
	if len(k) < 3 || k[0] != 't' {
		return 0, "", false
	}
	i := strings.IndexByte(k, '/')
	if i < 2 {
		return 0, "", false
	}
	t, err := strconv.Atoi(k[1:i])
	if err != nil || t < 0 {
		return 0, "", false
	}
	return t, k[i+1:], true
}
