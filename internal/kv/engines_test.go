package kv

import (
	"fmt"
	"strings"
	"testing"

	"pipette/internal/index"
	"pipette/internal/sim"
)

// engineTestConfig tunes a store so every engine exercises its on-disk
// machinery within a few hundred keys: small segments rotate, a small
// memtable flushes runs, small nodes split.
func engineTestConfig(kind index.Kind, fine bool) Config {
	return Config{
		SegmentBytes: 16 << 10,
		FineReads:    fine,
		Index: index.Config{
			Kind:             kind,
			NodeBytes:        256,
			ArenaNodes:       64,
			MemtableEntries:  32,
			BlockBytes:       256,
			BlockCacheBlocks: 16,
			LevelFanout:      2,
		},
	}
}

// runEngineWorkload drives a store through puts, overwrites, deletes, and
// maintenance, then returns the full ordered scan as "key=value" lines plus
// the final virtual time — the observable state an engine must agree on.
func runEngineWorkload(t *testing.T, s *Store) []string {
	t.Helper()
	now := sim.Time(0)
	var err error
	const n = 250
	key := func(i int) string { return fmt.Sprintf("e-%04d", i) }
	for i := 0; i < n; i++ {
		if now, err = s.Put(now, key(i), testVal(key(i), 0)); err != nil {
			t.Fatal(err)
		}
		if i%64 == 63 {
			if _, now, err = s.MaintenanceTick(now); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < n; i += 3 {
		if now, err = s.Put(now, key(i), testVal(key(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 5 {
		if now, err = s.Delete(now, key(i)); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 20; r++ {
		ran, done, err := s.MaintenanceTick(now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		if !ran {
			break
		}
	}

	// Point lookups agree with the workload.
	for i := 0; i < n; i++ {
		got, done, err := s.Get(now, key(i), nil)
		now = done
		if i%5 == 0 {
			if err != ErrNotFound {
				t.Fatalf("Get(%s) deleted key: %v", key(i), err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("Get(%s): %v", key(i), err)
		}
		v := 0
		if i%3 == 0 {
			v = 1
		}
		if string(got) != string(testVal(key(i), v)) {
			t.Fatalf("Get(%s) = %q", key(i), got)
		}
	}

	var lines []string
	if _, err = s.Scan(now, "", n+10, func(k string, v []byte) bool {
		lines = append(lines, k+"="+string(v))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestStoreEngineConformance runs the same workload on every index engine,
// block and fine, and asserts the ordered scans are identical across all of
// them — and still identical after a close/reopen rebuild.
func TestStoreEngineConformance(t *testing.T) {
	t.Parallel()
	var firstName string
	var first []string
	for _, kind := range index.Kinds() {
		for _, fine := range []bool{false, true} {
			name := fmt.Sprintf("%s/fine=%v", kind, fine)
			be := testBackend(t, fine)
			cfg := engineTestConfig(kind, fine)
			s := testStore(t, be, cfg)
			lines := runEngineWorkload(t, s)
			if len(lines) == 0 {
				t.Fatalf("%s: empty scan", name)
			}
			if _, err := s.Close(0); err != nil {
				t.Fatal(err)
			}

			// Reopen: the engine is rebuilt from the log; the scan must not
			// change.
			s2, now, err := Open(0, be, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if s2.IndexKind() != kind {
				t.Fatalf("IndexKind = %s, want %s", s2.IndexKind(), kind)
			}
			var again []string
			if _, err = s2.Scan(now, "", len(lines)+10, func(k string, v []byte) bool {
				again = append(again, k+"="+string(v))
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if strings.Join(again, "\n") != strings.Join(lines, "\n") {
				t.Fatalf("%s: scan changed across reopen (%d -> %d lines)", name, len(lines), len(again))
			}

			// Every engine, fine or block, must observe the same contents.
			if first == nil {
				firstName, first = name, lines
			} else if strings.Join(lines, "\n") != strings.Join(first, "\n") {
				t.Fatalf("%s and %s disagree on scan contents (%d vs %d lines)",
					firstName, name, len(first), len(lines))
			}
		}
	}
}

// TestCrashRecoveryTornBTreeNode damages btree node cells in every field
// class (magic, flags, count, checksum, payload — the bit-flip corpus the
// log corruption tests use) between a close and a reopen. The engine is
// scratch state: Open removes the damaged files and rebuilds from the
// checksummed log, so every key must survive untouched.
func TestCrashRecoveryTornBTreeNode(t *testing.T) {
	t.Parallel()
	cases := []struct {
		field string
		off   int64 // within the node cell
		bit   uint
	}{
		{"magic", 0, 3},
		{"flags", 1, 0},
		{"count", 2, 4},
		{"link", 4, 1},
		{"checksum", 10, 7},
		{"payload", 40, 5},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.field, func(t *testing.T) {
			t.Parallel()
			be := testBackend(t, true)
			cfg := engineTestConfig(index.BTree, true)
			s := testStore(t, be, cfg)
			now := sim.Time(0)
			var err error
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("b-%03d", i)
				if now, err = s.Put(now, key, testVal(key, 0)); err != nil {
					t.Fatal(err)
				}
			}
			if now, err = s.Close(now); err != nil {
				t.Fatal(err)
			}

			// Tear one node cell per arena: a write the crash cut short.
			arena := ""
			for _, name := range be.Files() {
				if strings.Contains(name, "idx-bt-") {
					arena = name
					break
				}
			}
			if arena == "" {
				t.Fatal("no btree arena file on the backend")
			}
			// Damage several cells, not just one — recovery must not read
			// them at all.
			for cell := 0; cell < 4; cell++ {
				flipBit(t, be, arena, int64(cell*cfg.Index.NodeBytes)+tc.off, tc.bit)
			}

			s2, now, err := Open(now, be, cfg)
			if err != nil {
				t.Fatalf("reopen after torn node: %v", err)
			}
			if s2.Len() != 200 {
				t.Fatalf("Len = %d after rebuild, want 200", s2.Len())
			}
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("b-%03d", i)
				got, done, err := s2.Get(now, key, nil)
				if err != nil {
					t.Fatalf("Get(%s) after torn node: %v", key, err)
				}
				now = done
				if string(got) != string(testVal(key, 0)) {
					t.Fatalf("Get(%s) = %q after rebuild", key, got)
				}
			}
		})
	}
}

// TestCrashRecoveryTruncatedLSMRun zeroes the tail of an LSM run file — a
// flush the crash cut short — and reopens. The rebuilt engine must serve
// every record; the truncated run is removed as stale scratch.
func TestCrashRecoveryTruncatedLSMRun(t *testing.T) {
	t.Parallel()
	be := testBackend(t, true)
	cfg := engineTestConfig(index.LSM, true)
	s := testStore(t, be, cfg)
	now := sim.Time(0)
	var err error
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("l-%03d", i)
		if now, err = s.Put(now, key, testVal(key, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if s.IndexStats().Runs == 0 {
		t.Fatal("setup: no LSM runs flushed")
	}
	if now, err = s.Close(now); err != nil {
		t.Fatal(err)
	}

	// Truncate every run: zero its back half.
	runs := 0
	for _, name := range be.Files() {
		if !strings.Contains(name, "idx-lsm-") {
			continue
		}
		runs++
		w, err := be.OpenWriter(name)
		if err != nil {
			t.Fatal(err)
		}
		size := w.Size()
		zero := make([]byte, size-size/2)
		if _, now, err = w.WriteAt(now, zero, size/2); err != nil {
			t.Fatal(err)
		}
		if now, err = w.Sync(now); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if runs == 0 {
		t.Fatal("no run files on the backend")
	}

	s2, now, err := Open(now, be, cfg)
	if err != nil {
		t.Fatalf("reopen after truncated runs: %v", err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("l-%03d", i)
		got, done, err := s2.Get(now, key, nil)
		if err != nil {
			t.Fatalf("Get(%s) after truncated run: %v", key, err)
		}
		now = done
		if string(got) != string(testVal(key, 0)) {
			t.Fatalf("Get(%s) = %q after rebuild", key, got)
		}
	}
}
