package kv

import (
	"bytes"
	"fmt"
	"testing"

	"pipette/internal/sim"
)

// flipBit reads one byte of a sealed segment, flips one bit, and writes it
// back — an in-place corruption like a mid-segment media bit flip.
func flipBit(t *testing.T, be Backend, name string, off int64, bit uint) {
	t.Helper()
	now := sim.Time(0)
	r, err := be.OpenReader(name, false)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if _, now, err = r.ReadAt(now, b, off); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 1 << bit
	w, err := be.OpenWriter(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, now, err = w.WriteAt(now, b, off); err != nil {
		t.Fatal(err)
	}
	if _, err = w.Sync(now); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverySkipsBitFlippedRecord flips a single bit in every field of a
// mid-segment record in turn, and asserts that recovery skips exactly the
// damaged record: every other key survives, the skip counters account the
// damage, and the store keeps working.
func TestRecoverySkipsBitFlippedRecord(t *testing.T) {
	t.Parallel()
	const victim = 5 // record index 5 of 10: damage sits mid-segment
	cases := []struct {
		field string
		off   int64 // within the record
		bit   uint
	}{
		{"magic", 0, 3},
		{"flags", 1, 6},   // unknown flag bit: header parse rejects
		{"keylen", 2, 2},  // perceived record size changes
		{"vallen", 4, 0},  // checksum read over wrong payload
		{"checksum", 8, 7},
		{"payload", headerSize + 2, 5}, // a key byte: checksum mismatch
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.field, func(t *testing.T) {
			t.Parallel()
			be := testBackend(t, false)
			cfg := Config{}
			s := testStore(t, be, cfg)
			now := sim.Time(0)
			var err error
			offs := make([]int64, 0, 10)
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("m-%d", i)
				offs = append(offs, s.active.tail)
				if now, err = s.Put(now, key, testVal(key, 0)); err != nil {
					t.Fatal(err)
				}
			}
			recSz := offs[victim+1] - offs[victim]
			segName := s.active.name
			if now, err = s.Close(now); err != nil {
				t.Fatal(err)
			}

			flipBit(t, be, segName, offs[victim]+tc.off, tc.bit)

			s2, now, err := Open(now, be, cfg)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if s2.Len() != 9 {
				t.Fatalf("Len = %d, want 9 (exactly the damaged record lost)", s2.Len())
			}
			if _, _, err := s2.Get(now, fmt.Sprintf("m-%d", victim), nil); err != ErrNotFound {
				t.Fatalf("damaged record served: %v", err)
			}
			for i := 0; i < 10; i++ {
				if i == victim {
					continue
				}
				key := fmt.Sprintf("m-%d", i)
				got, _, err := s2.Get(now, key, nil)
				if err != nil {
					t.Fatalf("Get(%s) lost to mid-segment corruption: %v", key, err)
				}
				if !bytes.Equal(got, testVal(key, 0)) {
					t.Fatalf("Get(%s) = %q, want original value", key, got)
				}
			}
			st := s2.Stats()
			if st.CorruptSkips != 1 {
				t.Fatalf("CorruptSkips = %d, want 1", st.CorruptSkips)
			}
			if st.SkippedBytes != uint64(recSz) {
				t.Fatalf("SkippedBytes = %d, want %d (one record)", st.SkippedBytes, recSz)
			}
			if st.Recovered != 9 {
				t.Fatalf("Recovered = %d, want 9", st.Recovered)
			}

			// Appends resume after the last valid record and the store
			// keeps working, including re-inserting the lost key.
			key := fmt.Sprintf("m-%d", victim)
			if now, err = s2.Put(now, key, testVal(key, 1)); err != nil {
				t.Fatal(err)
			}
			got, _, err := s2.Get(now, key, nil)
			if err != nil || !bytes.Equal(got, testVal(key, 1)) {
				t.Fatalf("Get(%s) after re-insert = %q, %v", key, got, err)
			}
		})
	}
}

// TestRecoverySkipsConsecutiveDamage flips bits in two adjacent records:
// the scan must resynchronize past both and keep the rest.
func TestRecoverySkipsConsecutiveDamage(t *testing.T) {
	t.Parallel()
	be := testBackend(t, false)
	cfg := Config{}
	s := testStore(t, be, cfg)
	now := sim.Time(0)
	var err error
	offs := make([]int64, 0, 10)
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("d-%d", i)
		offs = append(offs, s.active.tail)
		if now, err = s.Put(now, key, testVal(key, 0)); err != nil {
			t.Fatal(err)
		}
	}
	segName := s.active.name
	if now, err = s.Close(now); err != nil {
		t.Fatal(err)
	}
	flipBit(t, be, segName, offs[3], 0)             // record 3: magic
	flipBit(t, be, segName, offs[4]+headerSize, 1) // record 4: payload

	s2, now, err := Open(now, be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s2.Len())
	}
	// Adjacent damage coalesces into one resynchronization: the scan jumps
	// straight from the first bad record to the next valid one.
	st := s2.Stats()
	if st.CorruptSkips != 1 {
		t.Fatalf("CorruptSkips = %d, want 1 (one skip region)", st.CorruptSkips)
	}
	if st.SkippedBytes != uint64(offs[5]-offs[3]) {
		t.Fatalf("SkippedBytes = %d, want %d", st.SkippedBytes, offs[5]-offs[3])
	}
	for _, i := range []int{0, 1, 2, 5, 6, 7, 8, 9} {
		key := fmt.Sprintf("d-%d", i)
		if _, _, err := s2.Get(now, key, nil); err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
	}
}
