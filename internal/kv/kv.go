// Package kv is a log-structured key-value store built on the simulated
// storage stack: an append-only value log split into fixed-size segment
// files, a pluggable index engine mapping each key to its latest record,
// and background merge compaction that reclaims superseded space.
//
// The design is the paper's motivating workload. Values are far smaller than
// a filesystem page, so every Get wants exactly len(value) bytes at a known
// offset — the access pattern the fine-grained read path (O_FINE_GRAINED)
// serves without transferring the surrounding page. Running the same store
// over a block-I/O backend and a Pipette backend turns the read-amplification
// argument of the paper into an end-to-end measurement.
//
// The index is pluggable (internal/index): an in-memory hash map, a paged
// B+-tree whose sub-page nodes live on the same filesystem, or an LSM of
// bloom-filtered sorted runs. On-device engines add their own tiny reads to
// every lookup — index traversal under block vs fine granularity is the
// second axis of the same experiment. The value log stays the only
// authoritative state: Open rebuilds whichever engine is configured from the
// checksummed log scan, so index files are scratch, recreated per
// incarnation.
package kv

import (
	"errors"
	"fmt"

	"pipette/internal/index"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// ErrNotFound reports a Get or Delete of an absent key.
var ErrNotFound = errors.New("kv: key not found")

// Config parameterizes a Store.
type Config struct {
	// NamePrefix prefixes segment file names. Default "kv/seg-".
	NamePrefix string
	// SegmentBytes is the fixed segment file size; the log rotates when an
	// append would overflow it. Default 4 MiB.
	SegmentBytes int64
	// FineReads opens segment read handles O_FINE_GRAINED, so Gets issue
	// exact-length reads down the Pipette path. Off, Gets go through the
	// ordinary block-granular path — same store, different read engine.
	// The index engine's reads follow the same setting.
	FineReads bool
	// CompactMinDeadFrac is the dead-byte fraction a sealed segment must
	// reach before MaintenanceTick rewrites it. Default 0.4.
	CompactMinDeadFrac float64
	// MaxKeyLen bounds key size (also the recovery scan's sanity bound).
	// Default 1024.
	MaxKeyLen int
	// Index configures the index engine. The store fills in NamePrefix
	// (derived from the segment prefix), Fine (from FineReads), and Tracer;
	// Kind and the tuning knobs are the caller's. Zero Kind selects hash.
	Index index.Config
	// Tracer receives kv.get / kv.put / kv.compact spans; nil for none.
	Tracer telemetry.Tracer
}

func (cfg *Config) setDefaults() {
	if cfg.NamePrefix == "" {
		cfg.NamePrefix = "kv/seg-"
	}
	if cfg.SegmentBytes == 0 {
		cfg.SegmentBytes = 4 << 20
	}
	if cfg.CompactMinDeadFrac == 0 {
		cfg.CompactMinDeadFrac = 0.4
	}
	if cfg.MaxKeyLen == 0 {
		cfg.MaxKeyLen = 1 << 10
	}
	cfg.Tracer = telemetry.OrNop(cfg.Tracer)
	if cfg.Index.NamePrefix == "" {
		cfg.Index.NamePrefix = cfg.NamePrefix + "idx-"
	}
	cfg.Index.Fine = cfg.FineReads
	cfg.Index.Tracer = cfg.Tracer
}

// Stats counts store activity since Open.
type Stats struct {
	Puts    uint64
	Gets    uint64
	Deletes uint64
	Scans   uint64

	Hits   uint64 // Gets that found the key
	Misses uint64 // Gets (and Deletes) of absent keys

	BytesWritten uint64 // log appends, including rewrites by compaction
	BytesRead    uint64 // value bytes returned to callers

	Rotations      uint64 // segments sealed because the next append overflowed
	Compactions    uint64 // segments rewritten and removed
	ReclaimedBytes uint64 // dead bytes freed by compaction
	MovedBytes     uint64 // live bytes compaction re-appended
	Recovered      uint64 // records replayed by Open
	CorruptSkips   uint64 // corrupt log runs recovery resynchronized past
	SkippedBytes   uint64 // bytes of log skipped as unrecoverable
}

// Store is a log-structured KV store over a Backend. Not safe for concurrent
// use — like the rest of the simulation, callers serialize on the owning
// system's lock.
type Store struct {
	cfg    Config
	be     Backend
	segs   map[uint32]*segment
	order  []uint32 // segment ids, creation order (deterministic iteration)
	active *segment
	nextID uint32

	// eng answers every timed Lookup and Scan — its reads are the
	// measurement. acct shadows it untimed for the store's own bookkeeping
	// (segment live/dead accounting, presence checks, compaction currency):
	// the engine must not be charged device time for accounting the store
	// does off the critical path.
	eng  index.Engine
	acct map[string]index.Loc

	stats   Stats
	tr      telemetry.Tracer
	scratch []byte
}

// Open starts a store over be, replaying any existing segments under
// cfg.NamePrefix: the index is rebuilt by scanning each segment's records
// in file order. A record damaged mid-segment (bad magic, insane length,
// or checksum mismatch) is skipped — the scan resynchronizes at the next
// valid record and counts the damage in Stats.CorruptSkips/SkippedBytes;
// only a tail after which no valid record remains ends a segment's replay.
// Appends resume into the last segment. Index files from a previous
// incarnation are removed first — the engine is rebuilt from the log, so a
// torn node write or truncated run before a crash cannot affect recovery.
// Returns the simulated completion time of the recovery reads and writes.
func Open(now sim.Time, be Backend, cfg Config) (*Store, sim.Time, error) {
	cfg.setDefaults()
	if cfg.SegmentBytes < int64(headerSize+cfg.MaxKeyLen+1) {
		return nil, now, fmt.Errorf("kv: SegmentBytes %d cannot hold one record", cfg.SegmentBytes)
	}
	if err := index.RemoveFiles(be, cfg.Index.NamePrefix); err != nil {
		return nil, now, err
	}
	eng, err := index.New(be, cfg.Index)
	if err != nil {
		return nil, now, err
	}
	s := &Store{
		cfg:    cfg,
		be:     be,
		segs:   make(map[uint32]*segment),
		eng:    eng,
		acct:   make(map[string]index.Loc),
		tr:     cfg.Tracer,
		nextID: 1,
	}
	ids := listSegments(be, cfg.NamePrefix)
	for _, id := range ids {
		name := segName(cfg.NamePrefix, id)
		r, err := be.OpenReader(name, cfg.FineReads)
		if err != nil {
			return nil, now, fmt.Errorf("kv: open segment %s: %w", name, err)
		}
		sg := &segment{id: id, name: name, r: r}
		s.segs[id] = sg
		s.order = append(s.order, id)
		if now, err = s.recoverSegment(now, sg); err != nil {
			return nil, now, err
		}
		if id >= s.nextID {
			s.nextID = id + 1
		}
	}
	if len(ids) > 0 {
		// Resume appending into the newest segment.
		last := s.segs[ids[len(ids)-1]]
		w, err := be.OpenWriter(last.name)
		if err != nil {
			return nil, now, fmt.Errorf("kv: reopen segment %s: %w", last.name, err)
		}
		last.w = w
		s.active = last
	} else {
		sg, err := s.newSegment()
		if err != nil {
			return nil, now, err
		}
		s.active = sg
	}
	return s, now, nil
}

// Len reports the number of live keys.
func (s *Store) Len() int { return len(s.acct) }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats { return s.stats }

// IndexKind reports which index engine the store runs on.
func (s *Store) IndexKind() index.Kind { return s.eng.Kind() }

// IndexStats returns a snapshot of the index engine's counters.
func (s *Store) IndexStats() index.Stats { return s.eng.Stats() }

// Segments reports how many segment files currently exist.
func (s *Store) Segments() int { return len(s.segs) }

// Put writes key = val, superseding any earlier record.
func (s *Store) Put(now sim.Time, key string, val []byte) (sim.Time, error) {
	if err := s.checkKey(key); err != nil {
		return now, err
	}
	if int64(recordSize(len(key), len(val))) > s.cfg.SegmentBytes {
		return now, fmt.Errorf("kv: value of %d bytes exceeds segment size", len(val))
	}
	start := now
	s.scratch = encodeRecord(s.scratch, key, val, false)
	id, off, done, err := s.appendRecord(now, s.scratch)
	if err != nil {
		return done, err
	}
	now = done
	l := index.Loc{Seg: id, Off: off, ValLen: uint32(len(val))}
	s.dropIndexed(key)
	s.acct[key] = l
	if now, err = s.eng.Insert(now, key, l); err != nil {
		return now, err
	}
	s.segs[id].live += int64(len(s.scratch))
	s.stats.Puts++
	if s.tr.Enabled() {
		s.tr.Span(telemetry.TrackKV, "kv.put", start, now)
	}
	return now, nil
}

// Get reads key's value, appending it to dst (pass nil to allocate). The
// index engine resolves the key first — for the on-device engines that is
// one or more timed sub-page reads — then the read asks the backend for
// exactly the value's bytes.
func (s *Store) Get(now sim.Time, key string, dst []byte) ([]byte, sim.Time, error) {
	s.stats.Gets++
	start := now
	l, ok, now, err := s.eng.Lookup(now, key)
	if err != nil {
		return dst, now, fmt.Errorf("kv: get %q: %w", key, err)
	}
	if !ok {
		s.stats.Misses++
		return dst, now, ErrNotFound
	}
	dst, now, err = s.readValue(now, key, l, dst)
	if err != nil {
		return dst, now, err
	}
	s.stats.Hits++
	if s.tr.Enabled() {
		s.tr.Span(telemetry.TrackKV, "kv.get", start, now)
	}
	return dst, now, nil
}

// readValue reads the value of the record l locates, appending it to dst.
func (s *Store) readValue(now sim.Time, key string, l index.Loc, dst []byte) ([]byte, sim.Time, error) {
	n := len(dst)
	need := n + int(l.ValLen)
	if cap(dst) < need {
		grown := make([]byte, need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:need]
	sg, ok := s.segs[l.Seg]
	if !ok {
		return dst[:n], now, fmt.Errorf("kv: get %q: stale segment %d", key, l.Seg)
	}
	got, done, err := sg.r.ReadAt(now, dst[n:], l.Off+valueOffset(key))
	if err != nil {
		// %w keeps the device's error chain intact: an uncorrectable
		// media error stays classifiable via errors.Is at the API surface.
		return dst[:n], done, fmt.Errorf("kv: get %q: %w", key, err)
	}
	if got != int(l.ValLen) {
		return dst[:n], done, fmt.Errorf("kv: short read %d of %d", got, l.ValLen)
	}
	s.stats.BytesRead += uint64(l.ValLen)
	return dst, done, nil
}

// valueOffset is the value's offset within a record holding key.
func valueOffset(key string) int64 { return int64(headerSize + len(key)) }

// Delete removes key by appending a tombstone. ErrNotFound if absent (the
// tombstone is still not written — nothing to shadow).
func (s *Store) Delete(now sim.Time, key string) (sim.Time, error) {
	if err := s.checkKey(key); err != nil {
		return now, err
	}
	if _, ok := s.acct[key]; !ok {
		s.stats.Misses++
		return now, ErrNotFound
	}
	s.scratch = encodeRecord(s.scratch, key, nil, true)
	id, _, done, err := s.appendRecord(now, s.scratch)
	if err != nil {
		return done, err
	}
	now = done
	s.dropIndexed(key)
	if now, err = s.eng.Delete(now, key); err != nil {
		return now, err
	}
	// The tombstone itself is dead weight from birth; it exists only to
	// shadow older records of key until they are compacted away.
	s.segs[id].dead += int64(len(s.scratch))
	s.stats.Deletes++
	return now, nil
}

// Scan visits up to n keys >= start in order, reading each value and calling
// fn. fn returning false stops the scan early. Key order comes from the
// index engine — its own reads (leaf chains, run merges) are timed along
// with the value reads.
func (s *Store) Scan(now sim.Time, start string, n int, fn func(key string, val []byte) bool) (sim.Time, error) {
	s.stats.Scans++
	if n <= 0 {
		return now, nil
	}
	var buf []byte
	var rerr error
	now, err := s.eng.Scan(now, start, func(now sim.Time, key string, l index.Loc) (sim.Time, bool) {
		var done sim.Time
		buf, done, rerr = s.readValue(now, key, l, buf[:0])
		if rerr != nil {
			return done, false
		}
		n--
		return done, fn(key, buf) && n > 0
	})
	if rerr != nil {
		return now, rerr
	}
	return now, err
}

// Sync flushes the active segment.
func (s *Store) Sync(now sim.Time) (sim.Time, error) {
	return s.active.w.Sync(now)
}

// Close syncs the active segment and releases every file handle, including
// the index engine's. The store must not be used afterwards; Open recovers
// the same state from the log alone.
func (s *Store) Close(now sim.Time) (sim.Time, error) {
	done, err := s.active.w.Sync(now)
	if err != nil {
		return done, err
	}
	for _, id := range s.order {
		sg := s.segs[id]
		if sg.w != nil {
			if cerr := sg.w.Close(); cerr != nil && err == nil {
				err = cerr
			}
			sg.w = nil
		}
		if cerr := sg.r.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	done, cerr := s.eng.Close(done)
	if cerr != nil && err == nil {
		err = cerr
	}
	return done, err
}

func (s *Store) checkKey(key string) error {
	if len(key) == 0 || len(key) > s.cfg.MaxKeyLen {
		return fmt.Errorf("kv: key length %d outside [1,%d]", len(key), s.cfg.MaxKeyLen)
	}
	return nil
}
