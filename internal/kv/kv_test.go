package kv

import (
	"bytes"
	"fmt"
	"testing"

	"pipette/internal/blockdev"
	"pipette/internal/core"
	"pipette/internal/extfs"
	"pipette/internal/nvme"
	"pipette/internal/sim"
	"pipette/internal/ssd"
	"pipette/internal/vfs"
)

// testBackend builds a small but real storage stack. fine additionally
// installs the Pipette fine-read engine so O_FINE_GRAINED handles work.
func testBackend(t testing.TB, fine bool) Backend {
	t.Helper()
	cfg := ssd.DefaultConfig()
	cfg.NAND.Channels = 2
	cfg.NAND.WaysPerChannel = 2
	cfg.NAND.PlanesPerDie = 1
	cfg.NAND.BlocksPerPlane = 64
	cfg.NAND.PagesPerBlock = 64
	ctrl, err := ssd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drv := nvme.NewDriver(ctrl, 64, nvme.DefaultCosts())
	blk, err := blockdev.New(drv, ctrl.PageSize(), blockdev.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fs := extfs.New(ctrl)
	vcfg := vfs.DefaultConfig()
	vcfg.PageCachePages = 64
	v, err := vfs.New(fs, blk, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	if fine {
		if _, err := core.New(v, drv, core.DefaultConfig()); err != nil {
			t.Fatal(err)
		}
	}
	return VFSBackend{V: v}
}

func testStore(t testing.TB, be Backend, cfg Config) *Store {
	t.Helper()
	s, _, err := Open(0, be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testVal(key string, version int) []byte {
	return []byte(fmt.Sprintf("value-of-%s-v%d-%s", key, version, "padpadpadpadpad"))
}

func TestPutGetDelete(t *testing.T) {
	t.Parallel()
	for _, fine := range []bool{false, true} {
		fine := fine
		t.Run(fmt.Sprintf("fine=%v", fine), func(t *testing.T) {
			t.Parallel()
			s := testStore(t, testBackend(t, fine), Config{FineReads: fine})
			now := sim.Time(0)
			var err error

			// Absent key.
			if _, _, err = s.Get(now, "nope", nil); err != ErrNotFound {
				t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
			}

			// Put then Get, including overwrite.
			for v := 0; v < 3; v++ {
				for i := 0; i < 50; i++ {
					key := fmt.Sprintf("key-%03d", i)
					if now, err = s.Put(now, key, testVal(key, v)); err != nil {
						t.Fatalf("Put(%s): %v", key, err)
					}
				}
			}
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key-%03d", i)
				got, done, err := s.Get(now, key, nil)
				if err != nil {
					t.Fatalf("Get(%s): %v", key, err)
				}
				if done <= now {
					t.Fatalf("Get(%s) took no simulated time", key)
				}
				if want := testVal(key, 2); !bytes.Equal(got, want) {
					t.Fatalf("Get(%s) = %q, want %q", key, got, want)
				}
			}
			if s.Len() != 50 {
				t.Fatalf("Len = %d, want 50", s.Len())
			}

			// Delete half, verify gone, verify the rest intact.
			for i := 0; i < 50; i += 2 {
				key := fmt.Sprintf("key-%03d", i)
				if now, err = s.Delete(now, key); err != nil {
					t.Fatalf("Delete(%s): %v", key, err)
				}
			}
			if _, err := s.Delete(now, "key-000"); err != ErrNotFound {
				t.Fatalf("double Delete = %v, want ErrNotFound", err)
			}
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key-%03d", i)
				_, _, err := s.Get(now, key, nil)
				if i%2 == 0 && err != ErrNotFound {
					t.Fatalf("Get(deleted %s) = %v, want ErrNotFound", key, err)
				}
				if i%2 == 1 && err != nil {
					t.Fatalf("Get(%s): %v", key, err)
				}
			}
			if s.Len() != 25 {
				t.Fatalf("Len after deletes = %d, want 25", s.Len())
			}
			st := s.Stats()
			if st.Puts != 150 || st.Deletes != 25 {
				t.Fatalf("stats Puts=%d Deletes=%d, want 150/25", st.Puts, st.Deletes)
			}
		})
	}
}

func TestScanOrdered(t *testing.T) {
	t.Parallel()
	s := testStore(t, testBackend(t, false), Config{})
	now := sim.Time(0)
	var err error
	// Insert out of order.
	for _, i := range []int{7, 2, 9, 0, 5, 3, 8, 1, 6, 4} {
		key := fmt.Sprintf("k%02d", i)
		if now, err = s.Put(now, key, testVal(key, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if now, err = s.Delete(now, "k03"); err != nil {
		t.Fatal(err)
	}
	var got []string
	if _, err = s.Scan(now, "k02", 4, func(key string, val []byte) bool {
		if !bytes.Equal(val, testVal(key, 0)) {
			t.Fatalf("scan value mismatch at %s", key)
		}
		got = append(got, key)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"k02", "k04", "k05", "k06"} // k03 deleted
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Scan = %v, want %v", got, want)
	}
}

func TestSegmentRotation(t *testing.T) {
	t.Parallel()
	// Tiny segments force rotation quickly: 8 KiB segments, ~100-byte
	// records → a few dozen puts per segment.
	s := testStore(t, testBackend(t, false), Config{SegmentBytes: 8 << 10})
	now := sim.Time(0)
	var err error
	const puts = 500
	for i := 0; i < puts; i++ {
		key := fmt.Sprintf("rot-%04d", i)
		if now, err = s.Put(now, key, testVal(key, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Rotations == 0 {
		t.Fatal("no rotations despite overflowing segments")
	}
	if s.Segments() < 2 {
		t.Fatalf("Segments = %d, want several", s.Segments())
	}
	// Every key still readable after its segment sealed.
	for i := 0; i < puts; i++ {
		key := fmt.Sprintf("rot-%04d", i)
		got, _, err := s.Get(now, key, nil)
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		if !bytes.Equal(got, testVal(key, 0)) {
			t.Fatalf("Get(%s) mismatch after rotation", key)
		}
	}
}

func TestCompactionReclaims(t *testing.T) {
	t.Parallel()
	be := testBackend(t, false)
	s := testStore(t, be, Config{SegmentBytes: 8 << 10, CompactMinDeadFrac: 0.3})
	now := sim.Time(0)
	var err error

	// Overwrite a small working set many times: old versions pile up as
	// dead bytes across sealed segments.
	for round := 0; round < 20; round++ {
		for i := 0; i < 30; i++ {
			key := fmt.Sprintf("hot-%02d", i)
			if now, err = s.Put(now, key, testVal(key, round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	segsBefore := s.Segments()
	filesBefore := len(be.Files())

	ran := false
	for i := 0; i < 100; i++ {
		did, done, err := s.MaintenanceTick(now)
		if err != nil {
			t.Fatalf("MaintenanceTick: %v", err)
		}
		now = done
		if !did {
			break
		}
		ran = true
	}
	if !ran {
		t.Fatal("compaction never triggered despite dead-heavy segments")
	}
	st := s.Stats()
	if st.Compactions == 0 || st.ReclaimedBytes == 0 {
		t.Fatalf("stats Compactions=%d ReclaimedBytes=%d", st.Compactions, st.ReclaimedBytes)
	}
	if s.Segments() >= segsBefore {
		t.Fatalf("segments %d -> %d, want fewer", segsBefore, s.Segments())
	}
	if len(be.Files()) >= filesBefore {
		t.Fatalf("backend files %d -> %d, want fewer (segments removed)", filesBefore, len(be.Files()))
	}

	// Live data survives with the latest version.
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("hot-%02d", i)
		got, _, err := s.Get(now, key, nil)
		if err != nil {
			t.Fatalf("Get(%s) after compaction: %v", key, err)
		}
		if !bytes.Equal(got, testVal(key, 19)) {
			t.Fatalf("Get(%s) stale after compaction", key)
		}
	}
}

func TestCompactionPreservesDeletes(t *testing.T) {
	t.Parallel()
	s := testStore(t, testBackend(t, false), Config{SegmentBytes: 8 << 10, CompactMinDeadFrac: 0.05})
	now := sim.Time(0)
	var err error
	for i := 0; i < 120; i++ {
		key := fmt.Sprintf("d-%03d", i)
		if now, err = s.Put(now, key, testVal(key, 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 120; i += 3 {
		key := fmt.Sprintf("d-%03d", i)
		if now, err = s.Delete(now, key); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		did, done, err := s.MaintenanceTick(now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		if !did {
			break
		}
	}
	for i := 0; i < 120; i++ {
		key := fmt.Sprintf("d-%03d", i)
		_, _, err := s.Get(now, key, nil)
		if i%3 == 0 && err != ErrNotFound {
			t.Fatalf("deleted %s resurfaced after compaction: %v", key, err)
		}
		if i%3 != 0 && err != nil {
			t.Fatalf("Get(%s) after compaction: %v", key, err)
		}
	}
}

func TestRejectsBadInputs(t *testing.T) {
	t.Parallel()
	s := testStore(t, testBackend(t, false), Config{})
	if _, err := s.Put(0, "", []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	long := make([]byte, 2000)
	if _, err := s.Put(0, string(long), []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
	huge := make([]byte, 8<<20)
	if _, err := s.Put(0, "k", huge); err == nil {
		t.Fatal("value larger than a segment accepted")
	}
}
