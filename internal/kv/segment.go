package kv

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"pipette/internal/index"
	"pipette/internal/sim"
)

// Value-log record layout (bitcask-style):
//
//	[0]     magic (recordMagic)
//	[1]     flags (bit 0: tombstone)
//	[2:4]   key length, uint16 LE
//	[4:8]   value length, uint32 LE
//	[8:12]  FNV-32a checksum over bytes [1:8] ++ key ++ value
//	[12:]   key, then value
//
// The checksum makes torn tails self-delimiting: the recovery scan stops at
// the first record that fails the magic, a length sanity bound, or the
// checksum — everything before it is intact by construction (appends are
// sequential).
const (
	recordMagic = 0xC5
	headerSize  = 12

	flagTombstone = 1 << 0
)

// recordSize is the on-log footprint of a record.
func recordSize(keyLen, valLen int) int64 {
	return int64(headerSize + keyLen + valLen)
}

// fnv32a hashes the given byte sections (FNV-1a, 32-bit).
func fnv32a(sections ...[]byte) uint32 {
	h := uint32(2166136261)
	for _, s := range sections {
		for _, b := range s {
			h ^= uint32(b)
			h *= 16777619
		}
	}
	return h
}

// encodeRecord renders one record into dst (reused across appends).
func encodeRecord(dst []byte, key string, val []byte, tombstone bool) []byte {
	sz := int(recordSize(len(key), len(val)))
	if cap(dst) < sz {
		dst = make([]byte, sz)
	}
	dst = dst[:sz]
	dst[0] = recordMagic
	dst[1] = 0
	if tombstone {
		dst[1] = flagTombstone
	}
	binary.LittleEndian.PutUint16(dst[2:4], uint16(len(key)))
	binary.LittleEndian.PutUint32(dst[4:8], uint32(len(val)))
	copy(dst[headerSize:], key)
	copy(dst[headerSize+len(key):], val)
	binary.LittleEndian.PutUint32(dst[8:12], fnv32a(dst[1:8], dst[headerSize:]))
	return dst
}

// recordHeader is a parsed header (not yet checksum-verified — that needs
// the payload).
type recordHeader struct {
	tombstone bool
	keyLen    int
	valLen    int
	checksum  uint32
}

// parseHeader validates the fixed fields; ok=false means "treat as end of
// log" (torn tail or pristine preload bytes).
func parseHeader(hdr []byte, maxKey int, segBytes, off int64) (recordHeader, bool) {
	if hdr[0] != recordMagic {
		return recordHeader{}, false
	}
	h := recordHeader{
		tombstone: hdr[1]&flagTombstone != 0,
		keyLen:    int(binary.LittleEndian.Uint16(hdr[2:4])),
		valLen:    int(binary.LittleEndian.Uint32(hdr[4:8])),
		checksum:  binary.LittleEndian.Uint32(hdr[8:12]),
	}
	if hdr[1]&^byte(flagTombstone) != 0 {
		return recordHeader{}, false
	}
	if h.keyLen == 0 || h.keyLen > maxKey {
		return recordHeader{}, false
	}
	if off+recordSize(h.keyLen, h.valLen) > segBytes {
		return recordHeader{}, false
	}
	return h, true
}

// segment is one value-log file.
type segment struct {
	id   uint32
	name string
	w    BackendFile // write handle; nil once sealed
	r    BackendFile // read handle (fine-grained when configured)
	tail int64       // append offset
	live int64       // bytes of records the index points at
	dead int64       // superseded records and tombstones
}

func (sg *segment) deadFrac() float64 {
	if sg.tail == 0 {
		return 0
	}
	return float64(sg.dead) / float64(sg.tail)
}

// segName renders a segment's file name; segID parses it back.
func segName(prefix string, id uint32) string {
	return fmt.Sprintf("%s%08d", prefix, id)
}

func segID(prefix, name string) (uint32, bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	var id uint32
	if _, err := fmt.Sscanf(name[len(prefix):], "%d", &id); err != nil {
		return 0, false
	}
	return id, true
}

// listSegments returns the backend's segment ids under prefix, ascending.
func listSegments(be Backend, prefix string) []uint32 {
	var ids []uint32
	for _, name := range be.Files() {
		if id, ok := segID(prefix, name); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// newSegment creates and registers the next segment file.
func (s *Store) newSegment() (*segment, error) {
	id := s.nextID
	name := segName(s.cfg.NamePrefix, id)
	w, err := s.be.Create(name, s.cfg.SegmentBytes)
	if err != nil {
		return nil, fmt.Errorf("kv: create segment %s: %w", name, err)
	}
	r, err := s.be.OpenReader(name, s.cfg.FineReads)
	if err != nil {
		return nil, fmt.Errorf("kv: open segment %s: %w", name, err)
	}
	s.nextID++
	sg := &segment{id: id, name: name, w: w, r: r}
	s.segs[id] = sg
	s.order = append(s.order, id)
	return sg, nil
}

// rotate seals the active segment (sync + close of the write handle — the
// close semantics segment churn depends on) and opens a fresh one.
func (s *Store) rotate(now sim.Time) (sim.Time, error) {
	done, err := s.active.w.Sync(now)
	if err != nil {
		return done, err
	}
	if err := s.active.w.Close(); err != nil {
		return done, err
	}
	s.active.w = nil
	s.stats.Rotations++
	sg, err := s.newSegment()
	if err != nil {
		return done, err
	}
	s.active = sg
	return done, nil
}

// appendRecord appends one encoded record to the value log, rotating first
// if it does not fit, and returns where it landed.
func (s *Store) appendRecord(now sim.Time, rec []byte) (segID uint32, off int64, done sim.Time, err error) {
	if s.active.tail+int64(len(rec)) > s.cfg.SegmentBytes {
		now, err = s.rotate(now)
		if err != nil {
			return 0, 0, now, err
		}
	}
	n, done, err := s.active.w.WriteAt(now, rec, s.active.tail)
	if err != nil {
		return 0, 0, done, err
	}
	if n != len(rec) {
		return 0, 0, done, fmt.Errorf("kv: short append %d of %d", n, len(rec))
	}
	off = s.active.tail
	s.active.tail += int64(len(rec))
	s.stats.BytesWritten += uint64(len(rec))
	return s.active.id, off, done, nil
}

// tryRecordAt reads and fully validates one record at off: header parse,
// payload read, checksum over header fields plus payload. Read errors
// (including uncorrectable media) count as "no record here" — recovery is
// best-effort by design. The payload buffer is caller-owned scratch.
func (s *Store) tryRecordAt(now sim.Time, sg *segment, off int64, hdr []byte, payload *[]byte) (recordHeader, []byte, sim.Time, bool) {
	if off+headerSize > s.cfg.SegmentBytes {
		return recordHeader{}, nil, now, false
	}
	n, done, err := sg.r.ReadAt(now, hdr, off)
	if err != nil || n != headerSize {
		return recordHeader{}, nil, now, false
	}
	now = done
	h, ok := parseHeader(hdr, s.cfg.MaxKeyLen, s.cfg.SegmentBytes, off)
	if !ok {
		return recordHeader{}, nil, now, false
	}
	need := h.keyLen + h.valLen
	if cap(*payload) < need {
		*payload = make([]byte, need)
	}
	p := (*payload)[:need]
	n, done, err = sg.r.ReadAt(now, p, off+headerSize)
	if err != nil || n != need {
		return recordHeader{}, nil, now, false
	}
	now = done
	if fnv32a(hdr[1:8], p) != h.checksum {
		return recordHeader{}, nil, now, false
	}
	return h, p, now, true
}

// scanForward searches for the next decodable record at or after from: the
// log is read in chunks, every magic-byte candidate is validated in place
// with tryRecordAt (header sanity plus checksum, so payload bytes that
// merely look like a record start do not fool it). Not-found means the rest
// of the segment holds no valid record — the torn tail.
func (s *Store) scanForward(now sim.Time, sg *segment, from int64, hdr []byte, payload *[]byte) (int64, sim.Time, bool) {
	const chunk = 4096
	buf := make([]byte, chunk)
	for base := from; base+headerSize <= s.cfg.SegmentBytes; {
		n := int64(chunk)
		if base+n > s.cfg.SegmentBytes {
			n = s.cfg.SegmentBytes - base
		}
		rn, done, err := sg.r.ReadAt(now, buf[:n], base)
		if err != nil || int64(rn) != n {
			return 0, now, false
		}
		now = done
		for i := int64(0); i < n; i++ {
			if buf[i] != recordMagic {
				continue
			}
			cand := base + i
			_, _, t, ok := s.tryRecordAt(now, sg, cand, hdr, payload)
			now = t
			if ok {
				return cand, now, true
			}
		}
		base += n
	}
	return 0, now, false
}

// recoverSegment replays one segment's records into the index engine. A
// record that fails validation mid-segment (a bit flip in any field) is
// skipped: the scan resynchronizes at the next decodable record, the
// damaged bytes are charged as dead space, and recovery continues — only
// when no valid record remains does the segment end (the torn-tail case,
// which is not counted as corruption). Reads — and the engine's own writes
// while it rebuilds — are timed: recovery cost is part of the simulation.
func (s *Store) recoverSegment(now sim.Time, sg *segment) (sim.Time, error) {
	hdr := make([]byte, headerSize)
	var payload []byte
	off := int64(0)
	end := int64(0) // end of the last valid record — the append point
	for off+headerSize <= s.cfg.SegmentBytes {
		h, p, t, ok := s.tryRecordAt(now, sg, off, hdr, &payload)
		now = t
		if !ok {
			next, t, found := s.scanForward(now, sg, off+1, hdr, &payload)
			now = t
			if !found {
				break
			}
			s.stats.CorruptSkips++
			s.stats.SkippedBytes += uint64(next - off)
			sg.dead += next - off
			off = next
			continue
		}
		key := string(p[:h.keyLen])
		sz := recordSize(h.keyLen, h.valLen)
		var err error
		if h.tombstone {
			s.dropIndexed(key)
			if now, err = s.eng.Delete(now, key); err != nil {
				return now, err
			}
			sg.dead += sz
		} else {
			s.dropIndexed(key)
			l := index.Loc{Seg: sg.id, Off: off, ValLen: uint32(h.valLen)}
			s.acct[key] = l
			if now, err = s.eng.Insert(now, key, l); err != nil {
				return now, err
			}
			sg.live += sz
		}
		s.stats.Recovered++
		off += sz
		end = off
	}
	sg.tail = end
	return now, nil
}

// dropIndexed retires the current record of key, if any: its bytes become
// dead in whatever segment holds them. Pure accounting — the engine's own
// state changes ride the caller's timed Insert or Delete.
func (s *Store) dropIndexed(key string) {
	l, ok := s.acct[key]
	if !ok {
		return
	}
	sz := recordSize(len(key), int(l.ValLen))
	if sg, ok := s.segs[l.Seg]; ok {
		sg.live -= sz
		sg.dead += sz
	}
	delete(s.acct, key)
}
