package kv

import (
	"fmt"

	"pipette/internal/index"

	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// MaintenanceTick runs one round of background work: if any sealed segment's
// dead fraction has reached CompactMinDeadFrac, the worst one is compacted —
// its live records re-appended to the active log, its file removed. The
// index engine then gets its own maintenance round (LSM level merges ride
// the same cadence as log compaction). Returns whether any work ran and the
// simulated completion time. The owning system calls this from its periodic
// maintenance tick, so reclamation rides the same cadence as writeback and
// FGRC eviction.
func (s *Store) MaintenanceTick(now sim.Time) (bool, sim.Time, error) {
	ran := false
	if victim := s.pickVictim(); victim != nil {
		start := now
		var err error
		if now, err = s.compact(now, victim); err != nil {
			return false, now, err
		}
		if s.tr.Enabled() {
			s.tr.Span(telemetry.TrackKV, "kv.compact", start, now)
		}
		ran = true
	}
	engRan, now, err := s.eng.Tick(now)
	if err != nil {
		return ran, now, err
	}
	return ran || engRan, now, nil
}

// pickVictim returns the sealed segment with the highest dead fraction at or
// above the threshold, scanning in creation order for determinism.
func (s *Store) pickVictim() *segment {
	var best *segment
	for _, id := range s.order {
		sg := s.segs[id]
		if sg.w != nil { // active segment still takes appends
			continue
		}
		if sg.deadFrac() < s.cfg.CompactMinDeadFrac {
			continue
		}
		if best == nil || sg.deadFrac() > best.deadFrac() {
			best = sg
		}
	}
	return best
}

// compact rewrites sg: live records move to the active segment, tombstones
// still shadowing older segments are preserved, everything else is dropped.
// Then the segment file is removed and its space returns to the filesystem.
func (s *Store) compact(now sim.Time, sg *segment) (sim.Time, error) {
	hdr := make([]byte, headerSize)
	var payload []byte
	reclaimed := uint64(sg.tail)
	for off := int64(0); off < sg.tail; {
		if _, done, err := sg.r.ReadAt(now, hdr, off); err != nil {
			return done, err
		} else {
			now = done
		}
		h, ok := parseHeader(hdr, s.cfg.MaxKeyLen, s.cfg.SegmentBytes, off)
		if !ok {
			return now, fmt.Errorf("kv: segment %s corrupt at offset %d", sg.name, off)
		}
		sz := recordSize(h.keyLen, h.valLen)
		need := h.keyLen + h.valLen
		if cap(payload) < need {
			payload = make([]byte, need)
		}
		payload = payload[:need]
		if _, done, err := sg.r.ReadAt(now, payload, off+headerSize); err != nil {
			return done, err
		} else {
			now = done
		}
		key := string(payload[:h.keyLen])
		switch {
		case h.tombstone:
			// A tombstone may still be shadowing a record in an older
			// segment. Once the key is live again (or the tombstone's
			// segment is the oldest holder), it can be dropped; re-append
			// it otherwise, to keep deletes durable across recovery.
			if s.tombstoneObsolete(key, sg.id) {
				break
			}
			s.scratch = encodeRecord(s.scratch, key, nil, true)
			id, _, done, err := s.appendRecord(now, s.scratch)
			if err != nil {
				return done, err
			}
			now = done
			s.segs[id].dead += int64(len(s.scratch))
			reclaimed -= uint64(len(s.scratch))
		case s.isCurrent(key, sg.id, off):
			// Live record: move the value to the active log and repoint the
			// index engine at it (a timed engine write — compaction pays the
			// index's update cost too).
			s.scratch = encodeRecord(s.scratch, key, payload[h.keyLen:], false)
			id, recOff, done, err := s.appendRecord(now, s.scratch)
			if err != nil {
				return done, err
			}
			now = done
			l := index.Loc{Seg: id, Off: recOff, ValLen: uint32(h.valLen)}
			s.acct[key] = l
			if now, err = s.eng.Insert(now, key, l); err != nil {
				return now, err
			}
			s.segs[id].live += int64(len(s.scratch))
			s.stats.MovedBytes += uint64(len(s.scratch))
			reclaimed -= uint64(len(s.scratch))
		}
		off += sz
	}
	if err := s.dropSegment(sg); err != nil {
		return now, err
	}
	s.stats.Compactions++
	s.stats.ReclaimedBytes += reclaimed
	return now, nil
}

// tombstoneObsolete reports whether a tombstone in segment id no longer
// shadows anything: the key has a live record again, or no older segment
// could still hold a stale version of it.
func (s *Store) tombstoneObsolete(key string, id uint32) bool {
	if _, ok := s.acct[key]; ok {
		return true
	}
	// If this is the oldest remaining segment, nothing older can resurrect
	// the key after recovery.
	return len(s.order) > 0 && s.order[0] == id
}

// isCurrent reports whether the record at (id, off) is the one the index
// points at for key.
func (s *Store) isCurrent(key string, id uint32, off int64) bool {
	l, ok := s.acct[key]
	return ok && l.Seg == id && l.Off == off
}

// dropSegment closes and deletes sg's file and forgets it.
func (s *Store) dropSegment(sg *segment) error {
	if err := sg.r.Close(); err != nil {
		return err
	}
	if err := s.be.Remove(sg.name); err != nil {
		return err
	}
	delete(s.segs, sg.id)
	for i, id := range s.order {
		if id == sg.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return nil
}
