package kv

import "testing"

func TestNamespaceKeyRoundTrip(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		tenant int
		key    string
	}{
		{0, "user42"},
		{17, ""},
		{3, "a/b/c"}, // keys may contain separators of their own
	} {
		nk := NamespaceKey(tc.tenant, tc.key)
		tenant, key, ok := SplitNamespace(nk)
		if !ok || tenant != tc.tenant || key != tc.key {
			t.Fatalf("round trip %q: got (%d, %q, %v), want (%d, %q, true)", nk, tenant, key, ok, tc.tenant, tc.key)
		}
	}
}

func TestSplitNamespaceRejects(t *testing.T) {
	t.Parallel()
	for _, bad := range []string{"", "user42", "t/x", "tx/y", "t-1/x", "t12", "x3/y"} {
		if _, _, ok := SplitNamespace(bad); ok {
			t.Fatalf("%q accepted as namespaced", bad)
		}
	}
}
