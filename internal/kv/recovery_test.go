package kv

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"pipette/internal/sim"
)

// TestRestartRecovery closes a store and reopens it over the same backend:
// the index must be rebuilt purely from the segment files.
func TestRestartRecovery(t *testing.T) {
	t.Parallel()
	be := testBackend(t, false)
	cfg := Config{SegmentBytes: 8 << 10}
	s := testStore(t, be, cfg)
	now := sim.Time(0)
	var err error

	for v := 0; v < 3; v++ {
		for i := 0; i < 80; i++ {
			key := fmt.Sprintf("r-%03d", i)
			if now, err = s.Put(now, key, testVal(key, v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 80; i += 4 {
		key := fmt.Sprintf("r-%03d", i)
		if now, err = s.Delete(now, key); err != nil {
			t.Fatal(err)
		}
	}
	segs := s.Segments()
	if now, err = s.Close(now); err != nil {
		t.Fatal(err)
	}

	s2, done, err := Open(now, be, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if done <= now {
		t.Fatal("recovery scan took no simulated time")
	}
	now = done
	if s2.Stats().Recovered == 0 {
		t.Fatal("no records recovered")
	}
	if s2.Segments() != segs {
		t.Fatalf("segments %d after recovery, want %d", s2.Segments(), segs)
	}
	if want := 80 - 20; s2.Len() != want {
		t.Fatalf("Len after recovery = %d, want %d", s2.Len(), want)
	}
	for i := 0; i < 80; i++ {
		key := fmt.Sprintf("r-%03d", i)
		got, _, err := s2.Get(now, key, nil)
		if i%4 == 0 {
			if err != ErrNotFound {
				t.Fatalf("deleted %s resurrected by recovery: %v", key, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("Get(%s) after recovery: %v", key, err)
		}
		if !bytes.Equal(got, testVal(key, 2)) {
			t.Fatalf("Get(%s) = %q after recovery, want latest version", key, got)
		}
	}

	// The reopened store keeps working: appends resume into the last
	// segment and survive another restart.
	if now, err = s2.Put(now, "post-restart", []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if now, err = s2.Close(now); err != nil {
		t.Fatal(err)
	}
	s3, done, err := Open(now, be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := s3.Get(done, "post-restart", nil)
	if err != nil || !bytes.Equal(got, []byte("alive")) {
		t.Fatalf("Get(post-restart) = %q, %v", got, err)
	}
}

// TestRecoveryAfterCompaction restarts a store whose log has been compacted:
// removed segments must stay gone and the surviving records intact.
func TestRecoveryAfterCompaction(t *testing.T) {
	t.Parallel()
	be := testBackend(t, false)
	cfg := Config{SegmentBytes: 8 << 10, CompactMinDeadFrac: 0.3}
	s := testStore(t, be, cfg)
	now := sim.Time(0)
	var err error
	for round := 0; round < 15; round++ {
		for i := 0; i < 25; i++ {
			key := fmt.Sprintf("c-%02d", i)
			if now, err = s.Put(now, key, testVal(key, round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 50; i++ {
		did, done, err := s.MaintenanceTick(now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		if !did {
			break
		}
	}
	if s.Stats().Compactions == 0 {
		t.Fatal("setup: no compaction ran")
	}
	if now, err = s.Close(now); err != nil {
		t.Fatal(err)
	}

	s2, now, err := Open(now, be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		key := fmt.Sprintf("c-%02d", i)
		got, _, err := s2.Get(now, key, nil)
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		if !bytes.Equal(got, testVal(key, 14)) {
			t.Fatalf("Get(%s) stale after compaction+restart", key)
		}
	}
}

// TestTornTailDetection corrupts the checksum of the last record; recovery
// must stop right before it and keep everything earlier.
func TestTornTailDetection(t *testing.T) {
	t.Parallel()
	be := testBackend(t, false)
	cfg := Config{}
	s := testStore(t, be, cfg)
	now := sim.Time(0)
	var err error
	offs := make([]int64, 0, 10)
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("t-%d", i)
		offs = append(offs, s.active.tail)
		if now, err = s.Put(now, key, testVal(key, 0)); err != nil {
			t.Fatal(err)
		}
	}
	segName := s.active.name
	if now, err = s.Close(now); err != nil {
		t.Fatal(err)
	}

	// Flip bits in the last record's checksum field, simulating a torn
	// append that made it to the device only partially.
	w, err := be.OpenWriter(segName)
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]byte, 4)
	binary.LittleEndian.PutUint32(bad, 0xdeadbeef)
	if _, now, err = w.WriteAt(now, bad, offs[9]+8); err != nil {
		t.Fatal(err)
	}
	if now, err = w.Sync(now); err != nil {
		t.Fatal(err)
	}
	if err = w.Close(); err != nil {
		t.Fatal(err)
	}

	s2, now, err := Open(now, be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 9 {
		t.Fatalf("Len = %d after torn tail, want 9", s2.Len())
	}
	if _, _, err := s2.Get(now, "t-9", nil); err != ErrNotFound {
		t.Fatalf("torn record served: %v", err)
	}
	for i := 0; i < 9; i++ {
		key := fmt.Sprintf("t-%d", i)
		if _, _, err := s2.Get(now, key, nil); err != nil {
			t.Fatalf("Get(%s) lost to torn tail: %v", key, err)
		}
	}
	// The torn bytes are overwritten by the next append (tail stopped
	// before them), so the store keeps working.
	if s2.active.tail != offs[9] {
		t.Fatalf("tail = %d, want %d (before torn record)", s2.active.tail, offs[9])
	}
	if _, err := s2.Put(now, "t-9", testVal("t-9", 1)); err != nil {
		t.Fatal(err)
	}
}

// TestFreshSegmentScansEmpty checks recovery does not hallucinate records
// out of the preload pattern bytes of a never-written segment.
func TestFreshSegmentScansEmpty(t *testing.T) {
	t.Parallel()
	be := testBackend(t, false)
	s := testStore(t, be, Config{})
	if _, err := s.Close(0); err != nil {
		t.Fatal(err)
	}
	s2, _, err := Open(0, be, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 || s2.Stats().Recovered != 0 {
		t.Fatalf("fresh segment recovered %d records, len %d", s2.Stats().Recovered, s2.Len())
	}
}
