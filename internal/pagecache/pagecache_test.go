package pagecache

import (
	"testing"
	"testing/quick"
)

func newCache(t testing.TB, capacity int) *Cache {
	t.Helper()
	c, err := New(capacity, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 4096, nil); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := New(10, 0, nil); err == nil {
		t.Error("zero page size accepted")
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := newCache(t, 4)
	k := Key{File: 1, Index: 7}
	if _, _, ok := c.Lookup(k); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Insert(k, false, nil); err != nil {
		t.Fatal(err)
	}
	data, dirty, ok := c.Lookup(k)
	if !ok || dirty || data != nil {
		t.Fatalf("lookup = %v,%v,%v", data, dirty, ok)
	}
	hits, accesses, _, _ := c.Stats()
	if hits != 1 || accesses != 2 {
		t.Fatalf("stats %d/%d, want 1/2", hits, accesses)
	}
	if c.HitRatio() != 0.5 {
		t.Fatalf("HitRatio = %v", c.HitRatio())
	}
}

func TestInsertValidation(t *testing.T) {
	c := newCache(t, 4)
	if err := c.Insert(Key{}, true, []byte("short")); err == nil {
		t.Error("short dirty insert accepted")
	}
	if err := c.Insert(Key{}, false, make([]byte, 4096)); err == nil {
		t.Error("clean insert with data accepted")
	}
}

func TestLRUEviction(t *testing.T) {
	var evicted []Key
	c, err := New(2, 4096, func(k Key, dirty bool, data []byte) {
		evicted = append(evicted, k)
	})
	if err != nil {
		t.Fatal(err)
	}
	k1, k2, k3 := Key{1, 1}, Key{1, 2}, Key{1, 3}
	for _, k := range []Key{k1, k2} {
		if err := c.Insert(k, false, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k1 so k2 is LRU.
	c.Lookup(k1)
	if err := c.Insert(k3, false, nil); err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != k2 {
		t.Fatalf("evicted %v, want [k2]", evicted)
	}
	if !c.Contains(k1) || !c.Contains(k3) || c.Contains(k2) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestDirtyWritebackOnEvict(t *testing.T) {
	var gotKey Key
	var gotData []byte
	c, err := New(1, 4096, func(k Key, dirty bool, data []byte) {
		if dirty {
			gotKey, gotData = k, data
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4096)
	payload[0] = 0x5a
	if err := c.Insert(Key{2, 9}, true, payload); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(Key{2, 10}, false, nil); err != nil {
		t.Fatal(err)
	}
	if gotKey != (Key{2, 9}) || gotData[0] != 0x5a {
		t.Fatalf("writeback got %v", gotKey)
	}
}

func TestMarkDirty(t *testing.T) {
	c := newCache(t, 4)
	k := Key{1, 0}
	payload := make([]byte, 4096)
	ok, err := c.MarkDirty(k, payload)
	if err != nil || ok {
		t.Fatalf("MarkDirty on absent page = %v,%v", ok, err)
	}
	if err := c.Insert(k, false, nil); err != nil {
		t.Fatal(err)
	}
	ok, err = c.MarkDirty(k, payload)
	if err != nil || !ok {
		t.Fatalf("MarkDirty = %v,%v", ok, err)
	}
	if c.DirtyCount() != 1 {
		t.Fatalf("DirtyCount = %d", c.DirtyCount())
	}
	if _, err := c.MarkDirty(k, payload[:5]); err == nil {
		t.Error("short dirty data accepted")
	}
}

func TestFlushDirty(t *testing.T) {
	c := newCache(t, 4)
	payload := make([]byte, 4096)
	if err := c.Insert(Key{1, 1}, true, payload); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(Key{1, 2}, false, nil); err != nil {
		t.Fatal(err)
	}
	var flushed []Key
	err := c.FlushDirty(func(k Key, data []byte) error {
		flushed = append(flushed, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(flushed) != 1 || flushed[0] != (Key{1, 1}) {
		t.Fatalf("flushed %v", flushed)
	}
	if c.DirtyCount() != 0 {
		t.Fatal("dirty pages remain after flush")
	}
	// Page stays resident, now clean and dataless.
	data, dirty, ok := c.Lookup(Key{1, 1})
	if !ok || dirty || data != nil {
		t.Fatal("flushed page state wrong")
	}
}

func TestRemove(t *testing.T) {
	c := newCache(t, 4)
	k := Key{3, 3}
	if c.Remove(k) {
		t.Fatal("removed absent page")
	}
	if err := c.Insert(k, false, nil); err != nil {
		t.Fatal(err)
	}
	if !c.Remove(k) || c.Contains(k) {
		t.Fatal("remove failed")
	}
}

func TestResizeEvicts(t *testing.T) {
	c := newCache(t, 8)
	for i := uint64(0); i < 8; i++ {
		if err := c.Insert(Key{1, i}, false, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Resize(3); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d after Resize(3)", c.Len())
	}
	// The survivors are the 3 most recent.
	for i := uint64(5); i < 8; i++ {
		if !c.Contains(Key{1, i}) {
			t.Fatalf("page %d evicted, want resident", i)
		}
	}
	if err := c.Resize(-1); err == nil {
		t.Error("negative resize accepted")
	}
}

func TestZeroCapacityAdmitsNothing(t *testing.T) {
	written := 0
	c, err := New(0, 4096, func(k Key, dirty bool, data []byte) {
		if dirty {
			written++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(Key{1, 1}, false, nil); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache admitted a page")
	}
	if err := c.Insert(Key{1, 2}, true, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if written != 1 {
		t.Fatal("dirty insert into zero-capacity cache not written back")
	}
}

func TestMemoryBytes(t *testing.T) {
	c := newCache(t, 10)
	for i := uint64(0); i < 5; i++ {
		if err := c.Insert(Key{1, i}, false, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.MemoryBytes(); got != 5*4096 {
		t.Fatalf("MemoryBytes = %d", got)
	}
}

// Property: residency never exceeds capacity and re-inserting is idempotent
// for Len.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(keys []uint8, capRaw uint8) bool {
		capacity := int(capRaw)%8 + 1
		c, err := New(capacity, 4096, nil)
		if err != nil {
			return false
		}
		for _, k := range keys {
			if err := c.Insert(Key{1, uint64(k % 32)}, false, nil); err != nil {
				return false
			}
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadaheadRandomOpensInitialWindow(t *testing.T) {
	ra := DefaultReadahead()
	// Random misses still open the 4-page initial window (Linux 5.4
	// get_init_ra_size behaviour) — the pollution the paper measures.
	for i, idx := range []uint64{100, 7, 999, 42, 13} {
		if got := ra.OnMiss(idx); got != 4 {
			t.Fatalf("random miss %d fetched %d pages, want 4", i, got)
		}
	}
	if ra.Window() != 4 {
		t.Fatalf("window = %d after random stream", ra.Window())
	}
}

func TestReadaheadSequentialGrows(t *testing.T) {
	ra := NewReadahead(4, 32)
	if got := ra.OnMiss(10); got != 4 {
		t.Fatalf("first access fetched %d", got)
	}
	want := []int{8, 16, 32, 32}
	idx := uint64(11)
	for i, w := range want {
		if got := ra.OnMiss(idx); got != w {
			t.Fatalf("sequential miss %d fetched %d, want %d", i, got, w)
		}
		idx++
	}
	// A random jump resets to the initial window.
	if got := ra.OnMiss(10000); got != 4 {
		t.Fatalf("post-jump fetch = %d", got)
	}
	if ra.Window() != 4 {
		t.Fatal("window not reset by jump")
	}
}

func TestReadaheadHitKeepsStream(t *testing.T) {
	ra := NewReadahead(4, 32)
	ra.OnMiss(5) // opens window 4
	ra.OnMiss(6) // sequential: 8
	ra.OnHit(7)
	ra.OnHit(8)
	// Stream continued through hits; next miss doubles.
	if got := ra.OnMiss(9); got != 16 {
		t.Fatalf("miss after hits fetched %d, want 16", got)
	}
	// A non-adjacent hit resets the stream to the initial window.
	ra.OnHit(1000)
	if got := ra.OnMiss(2000); got != 4 {
		t.Fatalf("fetch after reset = %d", got)
	}
}

func TestReadaheadDegenerateParams(t *testing.T) {
	ra := NewReadahead(0, 0)
	ra.OnMiss(1)
	if got := ra.OnMiss(2); got != 1 {
		t.Fatalf("clamped readahead fetched %d", got)
	}
}
