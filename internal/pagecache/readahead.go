package pagecache

// Readahead is a per-file read-ahead state machine modeled on the on-demand
// algorithm of Linux 5.4, the paper's kernel: every miss opens at least the
// initial window (get_init_ra_size gives 4 pages for a 1-page read), and
// detected sequential streams double the window up to the 128 KiB / 32-page
// default cap.
//
// This is the mechanism §2.1 blames for fine-grained reads polluting memory
// and inflating traffic — a random 128 B read drags in 16 KiB — and the
// block I/O baseline reproduces it faithfully.
type Readahead struct {
	initial int // window opened when sequentiality first detected
	max     int // window cap

	lastIndex uint64
	haveLast  bool
	window    int // current window; 0 while the stream looks random
}

// NewReadahead creates a state machine with the given initial and maximum
// windows (in pages).
func NewReadahead(initial, max int) *Readahead {
	if initial < 1 {
		initial = 1
	}
	if max < initial {
		max = initial
	}
	return &Readahead{initial: initial, max: max}
}

// DefaultReadahead mirrors Linux defaults: a 4-page initial window growing
// to 32 pages (128 KiB).
func DefaultReadahead() *Readahead {
	return NewReadahead(4, 32)
}

// OnMiss reports how many pages to fetch starting at index, given that
// index missed the cache. The demanded page is always included (count >= 1);
// a random miss still opens the initial window, as the 5.4 kernel does.
func (r *Readahead) OnMiss(index uint64) int {
	sequential := r.haveLast && index == r.lastIndex+1
	r.haveLast = true
	r.lastIndex = index

	if !sequential {
		r.window = r.initial
		return r.window
	}
	if r.window == 0 {
		r.window = r.initial
	} else {
		r.window *= 2
		if r.window > r.max {
			r.window = r.max
		}
	}
	return r.window
}

// OnHit informs the state machine of a cache hit at index, so a sequential
// stream that is already resident keeps its window warm.
func (r *Readahead) OnHit(index uint64) {
	if r.haveLast && index == r.lastIndex+1 {
		r.lastIndex = index
		return
	}
	r.haveLast = true
	r.lastIndex = index
	r.window = 0
}

// Window exposes the current window size (telemetry).
func (r *Readahead) Window() int { return r.window }
