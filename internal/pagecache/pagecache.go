// Package pagecache models the kernel page cache: 4 KiB pages in an LRU
// with a capacity budget, dirty tracking with a writeback hook, and a
// Linux-flavoured on-demand read-ahead state machine per file.
//
// Clean pages do not materialize data — the simulator can regenerate any
// clean page's bytes from the device oracle without timing, which keeps
// multi-gigabyte working sets cheap in host RAM. Dirty pages hold their
// real bytes until writeback.
//
// This is the cache the paper's block I/O baseline lives and dies by: page
// granularity promotes 4 KiB for every 128 B read, and read-ahead
// multiplies traffic for access patterns it mispredicts (§2.1).
package pagecache

import (
	"errors"
	"fmt"
)

// Key identifies a cached page.
type Key struct {
	File  uint64 // inode number
	Index uint64 // page index within the file
}

// entry is one resident page.
type entry struct {
	key        Key
	dirty      bool
	data       []byte // nil unless dirty
	prev, next *entry
}

// EvictFunc is called when a page leaves the cache. For dirty pages, data
// holds the bytes that must be written back.
type EvictFunc func(key Key, dirty bool, data []byte)

// Cache is the page cache. Not safe for concurrent use.
//
// The index is two-level — inode, then page index — so lookups take the
// runtime's fast uint64 map path instead of hashing a struct key, and the
// common one-file-per-engine case resolves through a memoized inner map.
type Cache struct {
	capacity int // pages; 0 means empty cache (everything misses)
	pages    map[uint64]map[uint64]*entry
	count    int
	lastIno  uint64
	lastFile map[uint64]*entry
	head     *entry // sentinel: most recent after head
	tail     *entry // sentinel: least recent before tail
	free     *entry // recycled entries, chained on next
	onEvict  EvictFunc

	pageSize int

	hits     uint64
	accesses uint64
	inserts  uint64
	evicts   uint64
	dirtyN   int
}

// New creates a cache with a capacity budget in pages.
func New(capacityPages, pageSize int, onEvict EvictFunc) (*Cache, error) {
	if capacityPages < 0 {
		return nil, errors.New("pagecache: negative capacity")
	}
	if pageSize <= 0 {
		return nil, errors.New("pagecache: page size must be positive")
	}
	c := &Cache{
		capacity: capacityPages,
		pages:    make(map[uint64]map[uint64]*entry),
		head:     &entry{},
		tail:     &entry{},
		onEvict:  onEvict,
		pageSize: pageSize,
	}
	c.head.next = c.tail
	c.tail.prev = c.head
	return c, nil
}

// Len reports resident pages.
func (c *Cache) Len() int { return c.count }

// Capacity reports the page budget.
func (c *Cache) Capacity() int { return c.capacity }

// MemoryBytes reports resident memory charged to the cache (every resident
// page counts at page granularity — the paper's Table 4 "memory usage"
// metric — even though clean pages are not materialized here).
func (c *Cache) MemoryBytes() uint64 {
	return uint64(c.count) * uint64(c.pageSize)
}

// Stats reports hits, accesses, insertions, evictions.
func (c *Cache) Stats() (hits, accesses, inserts, evicts uint64) {
	return c.hits, c.accesses, c.inserts, c.evicts
}

// HitRatio reports hits/accesses (0 when unused) — the input to the
// paper's dynamic allocation strategy (§3.2.4).
func (c *Cache) HitRatio() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.accesses)
}

// fileMap resolves the inner map of one inode, memoizing the last file
// touched (requests run page loops over a single file).
func (c *Cache) fileMap(ino uint64) map[uint64]*entry {
	if c.lastFile != nil && c.lastIno == ino {
		return c.lastFile
	}
	m, ok := c.pages[ino]
	if !ok {
		return nil
	}
	c.lastIno, c.lastFile = ino, m
	return m
}

func (c *Cache) get(key Key) (*entry, bool) {
	m := c.fileMap(key.File)
	if m == nil {
		return nil, false
	}
	e, ok := m[key.Index]
	return e, ok
}

func (c *Cache) put(e *entry) {
	m := c.fileMap(e.key.File)
	if m == nil {
		m = make(map[uint64]*entry)
		c.pages[e.key.File] = m
		c.lastIno, c.lastFile = e.key.File, m
	}
	m[e.key.Index] = e
	c.count++
}

func (c *Cache) del(e *entry) {
	m := c.fileMap(e.key.File)
	delete(m, e.key.Index)
	c.count--
	if len(m) == 0 {
		delete(c.pages, e.key.File)
		if c.lastIno == e.key.File {
			c.lastFile = nil
		}
	}
}

func (c *Cache) newEntry() *entry {
	if e := c.free; e != nil {
		c.free = e.next
		*e = entry{}
		return e
	}
	return &entry{}
}

func (c *Cache) recycle(e *entry) {
	e.key = Key{}
	e.data = nil
	e.prev = nil
	e.next = c.free
	c.free = e
}

func (c *Cache) pushFront(e *entry) {
	e.prev = c.head
	e.next = c.head.next
	c.head.next.prev = e
	c.head.next = e
}

func (c *Cache) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// Lookup checks residency and counts the access. On a hit the page moves to
// the LRU front. It returns the dirty payload (nil for clean pages — the
// caller regenerates clean bytes from the device oracle).
func (c *Cache) Lookup(key Key) (data []byte, dirty, ok bool) {
	c.accesses++
	e, found := c.get(key)
	if !found {
		return nil, false, false
	}
	c.hits++
	c.unlink(e)
	c.pushFront(e)
	return e.data, e.dirty, true
}

// Contains checks residency without counting an access or touching LRU.
func (c *Cache) Contains(key Key) bool {
	_, ok := c.get(key)
	return ok
}

// ContainsDirty checks for a resident dirty copy without counting an
// access or touching LRU.
func (c *Cache) ContainsDirty(key Key) bool {
	e, ok := c.get(key)
	return ok && e.dirty
}

// Insert makes a page resident. data must be nil for clean pages and the
// page's bytes for dirty ones (the cache takes ownership of the slice).
// Inserting over an existing entry replaces its state. Eviction keeps
// residency within capacity.
func (c *Cache) Insert(key Key, dirty bool, data []byte) error {
	if dirty && len(data) != c.pageSize {
		return fmt.Errorf("pagecache: dirty insert with %d bytes, want %d", len(data), c.pageSize)
	}
	if !dirty && data != nil {
		return errors.New("pagecache: clean pages must not materialize data")
	}
	if c.capacity == 0 {
		// Zero-budget cache admits nothing; dirty data is immediately
		// "written back" through the evict hook.
		if c.onEvict != nil {
			c.onEvict(key, dirty, data)
		}
		return nil
	}
	if e, ok := c.get(key); ok {
		if e.dirty != dirty {
			if dirty {
				c.dirtyN++
			} else {
				c.dirtyN--
			}
		}
		e.dirty = dirty
		e.data = data
		c.unlink(e)
		c.pushFront(e)
		return nil
	}
	e := c.newEntry()
	e.key, e.dirty, e.data = key, dirty, data
	if dirty {
		c.dirtyN++
	}
	c.put(e)
	c.pushFront(e)
	c.inserts++
	c.evictOverflow()
	return nil
}

// MarkDirty transitions a resident page to dirty with its bytes (the cache
// takes ownership of the slice). Returns false if the page is not resident.
func (c *Cache) MarkDirty(key Key, data []byte) (bool, error) {
	if len(data) != c.pageSize {
		return false, fmt.Errorf("pagecache: dirty data %d bytes, want %d", len(data), c.pageSize)
	}
	e, ok := c.get(key)
	if !ok {
		return false, nil
	}
	if !e.dirty {
		c.dirtyN++
	}
	e.dirty = true
	e.data = data
	c.unlink(e)
	c.pushFront(e)
	return true, nil
}

// Remove drops a page (invalidation). Dirty data is passed to the evict
// hook for writeback.
func (c *Cache) Remove(key Key) bool {
	e, ok := c.get(key)
	if !ok {
		return false
	}
	c.dropEntry(e)
	return true
}

func (c *Cache) dropEntry(e *entry) {
	c.unlink(e)
	c.del(e)
	c.evicts++
	if e.dirty {
		c.dirtyN--
	}
	key, dirty, data := e.key, e.dirty, e.data
	c.recycle(e)
	if c.onEvict != nil {
		c.onEvict(key, dirty, data)
	}
}

// DiscardFile drops every resident page of one file without invoking the
// evict hook — unlink semantics: dirty pages are abandoned, not written
// back. release, when non-nil, receives each dirty page's buffer so the
// caller can recycle it. Returns the number of pages dropped.
func (c *Cache) DiscardFile(ino uint64, release func(data []byte)) int {
	m := c.pages[ino]
	if m == nil {
		return 0
	}
	dropped := 0
	for _, e := range m {
		c.unlink(e)
		c.evicts++
		if e.dirty {
			c.dirtyN--
			if release != nil && e.data != nil {
				release(e.data)
			}
		}
		c.recycle(e)
		dropped++
	}
	c.count -= dropped
	delete(c.pages, ino)
	if c.lastIno == ino {
		c.lastFile = nil
	}
	return dropped
}

// evictOverflow trims LRU pages until within capacity.
func (c *Cache) evictOverflow() {
	for c.count > c.capacity {
		lru := c.tail.prev
		if lru == c.head {
			return
		}
		c.dropEntry(lru)
	}
}

// Resize changes the capacity budget, evicting overflow immediately. The
// dynamic allocation strategy uses this to shift memory between the page
// cache and the fine-grained read cache.
func (c *Cache) Resize(capacityPages int) error {
	if capacityPages < 0 {
		return errors.New("pagecache: negative capacity")
	}
	c.capacity = capacityPages
	c.evictOverflow()
	return nil
}

// FlushDirty invokes fn for every dirty page in LRU order (oldest first)
// and marks them clean. fn is the writeback. Clean pages drop their data.
func (c *Cache) FlushDirty(fn func(key Key, data []byte) error) error {
	return c.FlushDirtySelect(func(Key) bool { return true }, fn)
}

// FlushDirtySelect flushes only the dirty pages match accepts — fsync of a
// single file, while FlushDirty is syncfs.
func (c *Cache) FlushDirtySelect(match func(Key) bool, fn func(key Key, data []byte) error) error {
	for e := c.tail.prev; e != c.head; e = e.prev {
		if !e.dirty || !match(e.key) {
			continue
		}
		if err := fn(e.key, e.data); err != nil {
			return err
		}
		e.dirty = false
		e.data = nil
		c.dirtyN--
	}
	return nil
}

// DirtyCount reports resident dirty pages.
func (c *Cache) DirtyCount() int { return c.dirtyN }
