// Package pagecache models the kernel page cache: 4 KiB pages in an LRU
// with a capacity budget, dirty tracking with a writeback hook, and a
// Linux-flavoured on-demand read-ahead state machine per file.
//
// Clean pages do not materialize data — the simulator can regenerate any
// clean page's bytes from the device oracle without timing, which keeps
// multi-gigabyte working sets cheap in host RAM. Dirty pages hold their
// real bytes until writeback.
//
// This is the cache the paper's block I/O baseline lives and dies by: page
// granularity promotes 4 KiB for every 128 B read, and read-ahead
// multiplies traffic for access patterns it mispredicts (§2.1).
package pagecache

import (
	"errors"
	"fmt"
)

// Key identifies a cached page.
type Key struct {
	File  uint64 // inode number
	Index uint64 // page index within the file
}

// entry is one resident page.
type entry struct {
	key        Key
	dirty      bool
	data       []byte // nil unless dirty
	prev, next *entry
}

// EvictFunc is called when a page leaves the cache. For dirty pages, data
// holds the bytes that must be written back.
type EvictFunc func(key Key, dirty bool, data []byte)

// Cache is the page cache. Not safe for concurrent use.
type Cache struct {
	capacity int // pages; 0 means empty cache (everything misses)
	pages    map[Key]*entry
	head     *entry // sentinel: most recent after head
	tail     *entry // sentinel: least recent before tail
	onEvict  EvictFunc

	pageSize int

	hits     uint64
	accesses uint64
	inserts  uint64
	evicts   uint64
}

// New creates a cache with a capacity budget in pages.
func New(capacityPages, pageSize int, onEvict EvictFunc) (*Cache, error) {
	if capacityPages < 0 {
		return nil, errors.New("pagecache: negative capacity")
	}
	if pageSize <= 0 {
		return nil, errors.New("pagecache: page size must be positive")
	}
	c := &Cache{
		capacity: capacityPages,
		pages:    make(map[Key]*entry),
		head:     &entry{},
		tail:     &entry{},
		onEvict:  onEvict,
		pageSize: pageSize,
	}
	c.head.next = c.tail
	c.tail.prev = c.head
	return c, nil
}

// Len reports resident pages.
func (c *Cache) Len() int { return len(c.pages) }

// Capacity reports the page budget.
func (c *Cache) Capacity() int { return c.capacity }

// MemoryBytes reports resident memory charged to the cache (every resident
// page counts at page granularity — the paper's Table 4 "memory usage"
// metric — even though clean pages are not materialized here).
func (c *Cache) MemoryBytes() uint64 {
	return uint64(len(c.pages)) * uint64(c.pageSize)
}

// Stats reports hits, accesses, insertions, evictions.
func (c *Cache) Stats() (hits, accesses, inserts, evicts uint64) {
	return c.hits, c.accesses, c.inserts, c.evicts
}

// HitRatio reports hits/accesses (0 when unused) — the input to the
// paper's dynamic allocation strategy (§3.2.4).
func (c *Cache) HitRatio() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.accesses)
}

func (c *Cache) pushFront(e *entry) {
	e.prev = c.head
	e.next = c.head.next
	c.head.next.prev = e
	c.head.next = e
}

func (c *Cache) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// Lookup checks residency and counts the access. On a hit the page moves to
// the LRU front. It returns the dirty payload (nil for clean pages — the
// caller regenerates clean bytes from the device oracle).
func (c *Cache) Lookup(key Key) (data []byte, dirty, ok bool) {
	c.accesses++
	e, found := c.pages[key]
	if !found {
		return nil, false, false
	}
	c.hits++
	c.unlink(e)
	c.pushFront(e)
	return e.data, e.dirty, true
}

// Contains checks residency without counting an access or touching LRU.
func (c *Cache) Contains(key Key) bool {
	_, ok := c.pages[key]
	return ok
}

// Insert makes a page resident. data must be nil for clean pages and the
// page's bytes for dirty ones. Inserting over an existing entry replaces
// its state. Eviction keeps residency within capacity.
func (c *Cache) Insert(key Key, dirty bool, data []byte) error {
	if dirty && len(data) != c.pageSize {
		return fmt.Errorf("pagecache: dirty insert with %d bytes, want %d", len(data), c.pageSize)
	}
	if !dirty && data != nil {
		return errors.New("pagecache: clean pages must not materialize data")
	}
	if c.capacity == 0 {
		// Zero-budget cache admits nothing; dirty data is immediately
		// "written back" through the evict hook.
		if c.onEvict != nil {
			c.onEvict(key, dirty, data)
		}
		return nil
	}
	if e, ok := c.pages[key]; ok {
		e.dirty = dirty
		e.data = data
		c.unlink(e)
		c.pushFront(e)
		return nil
	}
	e := &entry{key: key, dirty: dirty, data: data}
	c.pages[key] = e
	c.pushFront(e)
	c.inserts++
	c.evictOverflow()
	return nil
}

// MarkDirty transitions a resident page to dirty with its bytes. Returns
// false if the page is not resident.
func (c *Cache) MarkDirty(key Key, data []byte) (bool, error) {
	if len(data) != c.pageSize {
		return false, fmt.Errorf("pagecache: dirty data %d bytes, want %d", len(data), c.pageSize)
	}
	e, ok := c.pages[key]
	if !ok {
		return false, nil
	}
	e.dirty = true
	e.data = data
	c.unlink(e)
	c.pushFront(e)
	return true, nil
}

// Remove drops a page (invalidation). Dirty data is passed to the evict
// hook for writeback.
func (c *Cache) Remove(key Key) bool {
	e, ok := c.pages[key]
	if !ok {
		return false
	}
	c.dropEntry(e)
	return true
}

func (c *Cache) dropEntry(e *entry) {
	c.unlink(e)
	delete(c.pages, e.key)
	c.evicts++
	if c.onEvict != nil {
		c.onEvict(e.key, e.dirty, e.data)
	}
}

// evictOverflow trims LRU pages until within capacity.
func (c *Cache) evictOverflow() {
	for len(c.pages) > c.capacity {
		lru := c.tail.prev
		if lru == c.head {
			return
		}
		c.dropEntry(lru)
	}
}

// Resize changes the capacity budget, evicting overflow immediately. The
// dynamic allocation strategy uses this to shift memory between the page
// cache and the fine-grained read cache.
func (c *Cache) Resize(capacityPages int) error {
	if capacityPages < 0 {
		return errors.New("pagecache: negative capacity")
	}
	c.capacity = capacityPages
	c.evictOverflow()
	return nil
}

// FlushDirty invokes fn for every dirty page in LRU order (oldest first)
// and marks them clean. fn is the writeback. Clean pages drop their data.
func (c *Cache) FlushDirty(fn func(key Key, data []byte) error) error {
	return c.FlushDirtySelect(func(Key) bool { return true }, fn)
}

// FlushDirtySelect flushes only the dirty pages match accepts — fsync of a
// single file, while FlushDirty is syncfs.
func (c *Cache) FlushDirtySelect(match func(Key) bool, fn func(key Key, data []byte) error) error {
	for e := c.tail.prev; e != c.head; e = e.prev {
		if !e.dirty || !match(e.key) {
			continue
		}
		if err := fn(e.key, e.data); err != nil {
			return err
		}
		e.dirty = false
		e.data = nil
	}
	return nil
}

// DirtyCount reports resident dirty pages.
func (c *Cache) DirtyCount() int {
	n := 0
	for _, e := range c.pages {
		if e.dirty {
			n++
		}
	}
	return n
}
