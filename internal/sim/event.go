package sim

// This file is the discrete-event core: a binary-heap event queue ordered
// by (time, sequence) and an Engine that pops events in that order while
// advancing a virtual clock. The sequence tiebreak makes execution order —
// and therefore every downstream output byte — a pure function of the
// schedule calls, independent of host scheduling or worker count.

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func(Time)
}

// before orders events by (time, seq): earlier time first, earlier
// scheduling order breaking ties.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// EventQueue is a min-heap of scheduled callbacks keyed by (Time, seq).
// The zero value is an empty queue ready to use. Push and Pop reuse the
// backing array, so a warmed-up queue's hot path allocates nothing.
//
// Like every sim type, an EventQueue belongs to one single-threaded
// simulated system.
type EventQueue struct {
	heap []event
	seq  uint64
}

// Len reports scheduled events not yet popped.
func (q *EventQueue) Len() int { return len(q.heap) }

// Push schedules fn at time at. Events pushed with equal times run in push
// order.
func (q *EventQueue) Push(at Time, fn func(Time)) {
	q.heap = append(q.heap, event{at: at, seq: q.seq, fn: fn})
	q.seq++
	q.up(len(q.heap) - 1)
}

// Pop removes and returns the earliest event. ok is false on an empty
// queue.
func (q *EventQueue) Pop() (at Time, fn func(Time), ok bool) {
	if len(q.heap) == 0 {
		return 0, nil, false
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[last] = event{} // drop the fn reference
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	return top.at, top.fn, true
}

// PeekTime reports the earliest scheduled time without popping.
func (q *EventQueue) PeekTime() (Time, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].at, true
}

func (q *EventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.heap[i].before(&q.heap[parent]) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *EventQueue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && q.heap[l].before(&q.heap[least]) {
			least = l
		}
		if r < n && q.heap[r].before(&q.heap[least]) {
			least = r
		}
		if least == i {
			return
		}
		q.heap[i], q.heap[least] = q.heap[least], q.heap[i]
		i = least
	}
}

// Engine runs a discrete-event simulation: a clock plus an event queue.
// Callbacks scheduled with At/After run in (time, schedule-order) order;
// each pop advances the clock to the event's time before invoking it, so
// a callback observes Now() == its scheduled time and may schedule more
// events (never in the past — At clamps to the current time).
type Engine struct {
	clock Clock
	q     EventQueue
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the engine's current virtual time.
func (e *Engine) Now() Time { return e.clock.Now() }

// Pending reports events scheduled but not yet run.
func (e *Engine) Pending() int { return e.q.Len() }

// At schedules fn to run at time t. Times in the past clamp to Now(), so
// a completion callback can always re-arm work "immediately".
func (e *Engine) At(t Time, fn func(Time)) {
	if now := e.clock.Now(); t < now {
		t = now
	}
	e.q.Push(t, fn)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func(Time)) {
	if d < 0 {
		d = 0
	}
	e.q.Push(e.clock.Now()+d, fn)
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event ran.
func (e *Engine) Step() bool {
	at, fn, ok := e.q.Pop()
	if !ok {
		return false
	}
	e.clock.AdvanceTo(at)
	fn(e.clock.Now())
	return true
}

// Run steps until no events remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}
