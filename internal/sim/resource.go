package sim

// Resource models a unit of hardware that serves one operation at a time:
// a NAND channel bus, a flash die, the PCIe link. Operations queue FIFO in
// virtual time; Acquire returns when the operation starts and completes.
//
// The zero value is a free resource.
type Resource struct {
	freeAt Time
	busy   Time // total occupied span, for utilization accounting
	wait   Time // total span requests spent queued behind earlier work
}

// Acquire schedules an operation of duration dur requested at time now.
// It returns the operation's start and completion times. The operation
// starts at max(now, freeAt): if the resource is busy, the request waits,
// and the wait is accumulated for queueing-delay accounting.
func (r *Resource) Acquire(now, dur Time) (start, end Time) {
	start = now
	if r.freeAt > start {
		start = r.freeAt
		r.wait += start - now
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	return start, end
}

// FreeAt reports the time at which the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTime reports the cumulative span the resource has been occupied.
func (r *Resource) BusyTime() Time { return r.busy }

// WaitTime reports the cumulative span requests waited for the resource —
// the device-side queueing delay overlapping in-flight I/O creates.
func (r *Resource) WaitTime() Time { return r.wait }

// Reset returns the resource to the free state (test setup only).
func (r *Resource) Reset() { r.freeAt, r.busy, r.wait = 0, 0, 0 }

// ResourceSet is an indexed group of identical resources, e.g. the channels
// of a NAND array.
type ResourceSet struct {
	rs []Resource
}

// NewResourceSet creates a set of n free resources.
func NewResourceSet(n int) *ResourceSet {
	return &ResourceSet{rs: make([]Resource, n)}
}

// Len reports the number of resources in the set.
func (s *ResourceSet) Len() int { return len(s.rs) }

// Get returns the i'th resource.
func (s *ResourceSet) Get(i int) *Resource { return &s.rs[i] }

// Acquire schedules dur on resource i at time now.
func (s *ResourceSet) Acquire(i int, now, dur Time) (start, end Time) {
	return s.rs[i].Acquire(now, dur)
}

// MaxFreeAt reports the latest next-idle time across the set: the moment
// every resource has drained.
func (s *ResourceSet) MaxFreeAt() Time {
	var m Time
	for i := range s.rs {
		if s.rs[i].freeAt > m {
			m = s.rs[i].freeAt
		}
	}
	return m
}

// WaitTime reports the cumulative queueing delay across the set.
func (s *ResourceSet) WaitTime() Time {
	var w Time
	for i := range s.rs {
		w += s.rs[i].wait
	}
	return w
}
