package sim

// RNG is a small, fast, deterministic random source (splitmix64 core).
// It is not safe for concurrent use; give each generator its own RNG.
type RNG struct {
	state uint64

	// Uint64n threshold memo: workload generators draw from the same range
	// millions of times, and the unbiased-tail computation is a 64-bit
	// division. Caching it preserves the exact output stream.
	lastN   uint64
	lastMax uint64
}

// NewRNG returns an RNG seeded with seed. Distinct seeds give independent
// streams for practical purposes.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with n == 0")
	}
	// Lemire's nearly-divisionless method would be faster but changes the
	// value stream; a plain modulo is fine here because n is tiny relative
	// to 2^64 in all our uses. Reject the biased tail to keep the
	// distribution exact.
	if n != r.lastN {
		r.lastN = n
		r.lastMax = (^uint64(0)) - (^uint64(0))%n
	}
	max := r.lastMax
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Int63n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *RNG) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := int(r.Uint64n(uint64(i + 1)))
		out[i], out[j] = out[j], out[i]
	}
}

// Split derives an independent RNG from this one, for handing to a
// sub-generator without correlating streams.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}
