package sim

import (
	"fmt"
	"math"
)

// Zipf draws items from a zipfian popularity distribution with parameter
// theta in (0, 1), the YCSB convention used by the paper ("zipfian,
// alpha = 0.8"). Item 0 is the most popular.
//
// The implementation follows Gray et al. "Quickly Generating Billion-Record
// Synthetic Databases" (the algorithm YCSB's ZipfianGenerator uses), which —
// unlike math/rand's Zipf — supports exponents below 1.
type Zipf struct {
	rng   *RNG
	n     uint64
	theta float64

	alpha  float64
	zetaN  float64
	zeta2  float64
	eta    float64
	halfPt float64 // 1 + 0.5^theta
}

// NewZipf creates a zipfian generator over n items with exponent theta.
// theta must be in (0, 1); n must be >= 1.
func NewZipf(rng *RNG, n uint64, theta float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: zipf needs n >= 1, got %d", n)
	}
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("sim: zipf theta must be in (0,1), got %g", theta)
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.zetaN = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1.0 - math.Pow(2.0/float64(n), 1.0-theta)) / (1.0 - z.zeta2/z.zetaN)
	z.halfPt = 1.0 + math.Pow(0.5, theta)
	return z, nil
}

// MustZipf is NewZipf that panics on invalid parameters (for internal use
// with compile-time-known arguments).
func MustZipf(rng *RNG, n uint64, theta float64) *Zipf {
	z, err := NewZipf(rng, n, theta)
	if err != nil {
		panic(err)
	}
	return z
}

// N reports the number of items.
func (z *Zipf) N() uint64 { return z.n }

// Next draws the next item rank in [0, n), rank 0 most popular.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetaN
	if uz < 1.0 {
		return 0
	}
	if uz < z.halfPt {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1.0, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
// O(n); the generators are built once per workload so this is acceptable up
// to the tens of millions of items the paper's table sizes imply.
func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// ScrambledZipf composes Zipf with a hash so that popular items are spread
// uniformly across the key space instead of clustered at the low ranks —
// YCSB's "scrambled zipfian". This is what makes the paper's zipfian
// workloads have temporal (reuse) locality without artificial spatial
// locality.
type ScrambledZipf struct {
	z *Zipf
	n uint64
}

// NewScrambledZipf creates a scrambled zipfian generator over n items.
func NewScrambledZipf(rng *RNG, n uint64, theta float64) (*ScrambledZipf, error) {
	z, err := NewZipf(rng, n, theta)
	if err != nil {
		return nil, err
	}
	return &ScrambledZipf{z: z, n: n}, nil
}

// Next draws the next scrambled item in [0, n).
func (s *ScrambledZipf) Next() uint64 {
	// Offset before hashing: Mix64 is a fixed-point at 0, which would pin
	// the hottest rank to item 0 and defeat the scrambling.
	return Mix64(s.z.Next()+0x9e3779b97f4a7c15) % s.n
}

// N reports the number of items.
func (s *ScrambledZipf) N() uint64 { return s.n }

// Mix64 is a strong 64-bit finalizer (splitmix64's) usable as a cheap hash.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
