package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now = %v, want 0", c.Now())
	}
	c.Advance(5 * Microsecond)
	if got := c.Now(); got != 5000 {
		t.Fatalf("Now = %v, want 5000", got)
	}
	c.AdvanceTo(4 * Microsecond) // backwards: no-op
	if got := c.Now(); got != 5000 {
		t.Fatalf("Now after backwards AdvanceTo = %v, want 5000", got)
	}
	c.AdvanceTo(9 * Microsecond)
	if got := c.Now(); got != 9000 {
		t.Fatalf("Now = %v, want 9000", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2500, "2.50us"},
		{3 * Millisecond, "3.00ms"},
		{2 * Second, "2.000s"},
		{-2500, "-2.50us"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	s1, e1 := r.Acquire(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first op = [%d,%d], want [0,100]", s1, e1)
	}
	// Requested while busy: queues behind the first op.
	s2, e2 := r.Acquire(50, 100)
	if s2 != 100 || e2 != 200 {
		t.Fatalf("second op = [%d,%d], want [100,200]", s2, e2)
	}
	// Requested after idle: starts immediately.
	s3, e3 := r.Acquire(500, 10)
	if s3 != 500 || e3 != 510 {
		t.Fatalf("third op = [%d,%d], want [500,510]", s3, e3)
	}
	if r.BusyTime() != 210 {
		t.Fatalf("BusyTime = %v, want 210", r.BusyTime())
	}
}

func TestResourceSetParallelism(t *testing.T) {
	s := NewResourceSet(4)
	// One op per resource at t=0: they overlap.
	for i := 0; i < 4; i++ {
		start, end := s.Acquire(i, 0, 100)
		if start != 0 || end != 100 {
			t.Fatalf("resource %d = [%d,%d], want [0,100]", i, start, end)
		}
	}
	if got := s.MaxFreeAt(); got != 100 {
		t.Fatalf("MaxFreeAt = %v, want 100", got)
	}
	// A second op on resource 0 serializes.
	_, end := s.Acquire(0, 0, 100)
	if end != 200 {
		t.Fatalf("serialized op end = %v, want 200", end)
	}
}

// Property: resource operations never overlap and never start before request.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		var r Resource
		var now, prevEnd Time
		for _, d := range durs {
			dur := Time(d%1000 + 1)
			start, end := r.Acquire(now, dur)
			if start < now || start < prevEnd || end != start+dur {
				return false
			}
			prevEnd = end
			now += Time(d % 97) // requester moves forward irregularly
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed RNGs agreed %d/1000 times", same)
	}
}

func TestRNGUint64nBounds(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(1)
	const buckets = 16
	const n = 160000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	out := make([]int, 20)
	r.Perm(out)
	seen := make(map[int]bool)
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", out)
		}
		seen[v] = true
	}
}

func TestZipfParamValidation(t *testing.T) {
	r := NewRNG(1)
	if _, err := NewZipf(r, 0, 0.8); err == nil {
		t.Error("NewZipf(n=0) should fail")
	}
	if _, err := NewZipf(r, 10, 0); err == nil {
		t.Error("NewZipf(theta=0) should fail")
	}
	if _, err := NewZipf(r, 10, 1); err == nil {
		t.Error("NewZipf(theta=1) should fail")
	}
	if _, err := NewZipf(r, 10, 0.8); err != nil {
		t.Errorf("NewZipf(10, 0.8) failed: %v", err)
	}
}

func TestZipfBounds(t *testing.T) {
	z := MustZipf(NewRNG(5), 1000, 0.8)
	for i := 0; i < 100000; i++ {
		if v := z.Next(); v >= 1000 {
			t.Fatalf("zipf draw %d out of range", v)
		}
	}
}

// The defining zipf property: rank-0 frequency should approximate
// 1/zeta(n, theta), and low ranks dominate.
func TestZipfSkew(t *testing.T) {
	const n = 10000
	const draws = 500000
	z := MustZipf(NewRNG(11), n, 0.8)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	wantP0 := 1.0 / zeta(n, 0.8)
	gotP0 := float64(counts[0]) / draws
	if math.Abs(gotP0-wantP0)/wantP0 > 0.05 {
		t.Errorf("P(rank 0) = %v, want ~%v", gotP0, wantP0)
	}
	// Top 1% of ranks should capture far more than 1% of the draws.
	var top int
	for i := 0; i < n/100; i++ {
		top += counts[i]
	}
	if frac := float64(top) / draws; frac < 0.25 {
		t.Errorf("top 1%% of ranks got %.1f%% of draws, want >25%%", frac*100)
	}
	// Frequencies should be (roughly) non-increasing at the head.
	for i := 1; i < 10; i++ {
		if counts[i] > counts[i-1]+counts[i-1]/4 {
			t.Errorf("rank %d count %d exceeds rank %d count %d", i, counts[i], i-1, counts[i-1])
		}
	}
}

func TestScrambledZipfSpreads(t *testing.T) {
	const n = 100000
	s, err := NewScrambledZipf(NewRNG(13), n, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Scrambling must keep range and determinism but break rank ordering:
	// the most frequent item should no longer be item 0.
	counts := make(map[uint64]int)
	for i := 0; i < 200000; i++ {
		v := s.Next()
		if v >= n {
			t.Fatalf("scrambled draw %d out of range", v)
		}
		counts[v]++
	}
	var hottest uint64
	best := -1
	for k, c := range counts {
		if c > best {
			best, hottest = c, k
		}
	}
	if hottest == 0 {
		t.Error("scrambled zipf hottest item is rank 0; scrambling had no effect")
	}
	if best < 200000/100 {
		t.Errorf("hottest item only drawn %d times; zipf skew lost in scrambling", best)
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity on a window of inputs.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 100000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: %d and %d -> %d", prev, i, h)
		}
		seen[h] = i
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z := MustZipf(NewRNG(1), 1<<20, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
