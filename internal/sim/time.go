// Package sim provides the deterministic discrete-event foundations used by
// the whole simulator: a virtual nanosecond clock, serially-occupied resource
// timelines (NAND channels, PCIe link), a fast seedable RNG, and the
// zipfian/uniform request generators the paper's workloads are built on.
//
// Everything in this package is deterministic: given the same seed and the
// same sequence of calls, the same virtual timings and samples come out.
package sim

import "fmt"

// Time is a point (or span) in virtual time, in nanoseconds.
//
// The simulation never consults the wall clock; all latencies are modeled
// and accumulate on Time values.
type Time int64

// Convenient spans of virtual time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit, e.g. "12.5us" or "3.2ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.2fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// Clock is the virtual clock shared by one simulated system. The zero value
// is a clock at time zero, ready to use.
type Clock struct {
	now Time
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative spans are a programming
// error and panic.
func (c *Clock) Advance(d Time) Time {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance by negative span %d", d))
	}
	c.now += d
	return c.now
}

// AdvanceTo moves the clock forward to t. Moving backwards is a no-op; the
// clock is monotonic.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset rewinds the clock to zero. Only intended for test setup.
func (c *Clock) Reset() { c.now = 0 }
