package sim

import (
	"testing"
)

func TestEventQueueOrdersByTime(t *testing.T) {
	var q EventQueue
	var got []Time
	times := []Time{50, 10, 30, 20, 40, 5, 45}
	for _, at := range times {
		at := at
		q.Push(at, func(now Time) { got = append(got, now) })
	}
	if q.Len() != len(times) {
		t.Fatalf("Len = %d, want %d", q.Len(), len(times))
	}
	for {
		at, fn, ok := q.Pop()
		if !ok {
			break
		}
		fn(at)
	}
	want := []Time{5, 10, 20, 30, 40, 45, 50}
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d: time %d, want %d", i, got[i], want[i])
		}
	}
}

func TestEventQueueTiebreakIsPushOrder(t *testing.T) {
	var q EventQueue
	var got []int
	// Many events at the same instant, plus decoys around them: equal
	// times must pop in push order (the determinism contract).
	for i := 0; i < 32; i++ {
		i := i
		q.Push(100, func(Time) { got = append(got, i) })
	}
	q.Push(99, func(Time) {})
	q.Push(101, func(Time) {})
	for {
		_, fn, ok := q.Pop()
		if !ok {
			break
		}
		fn(0)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events popped out of push order: got[%d] = %d", i, v)
		}
	}
}

func TestEventQueuePopEmpty(t *testing.T) {
	var q EventQueue
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue reported ok")
	}
}

func TestEngineRunsEventsAndAdvancesClock(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(30, func(now Time) {
		if now != 30 {
			t.Errorf("callback at 30 saw now = %d", now)
		}
		order = append(order, "c")
	})
	e.At(10, func(now Time) {
		order = append(order, "a")
		// Schedule from inside a callback: lands between the others.
		e.At(20, func(Time) { order = append(order, "b") })
	})
	e.Run()
	if e.Now() != 30 {
		t.Fatalf("Now = %d after run, want 30", e.Now())
	}
	want := "abc"
	var got string
	for _, s := range order {
		got += s
	}
	if got != want {
		t.Fatalf("execution order %q, want %q", got, want)
	}
}

func TestEngineAtClampsToNow(t *testing.T) {
	e := NewEngine()
	e.At(100, func(now Time) {
		// Scheduling "in the past" runs at the current time instead.
		e.At(5, func(t2 Time) {
			if t2 != 100 {
				t.Errorf("past event ran at %d, want clamp to 100", t2)
			}
		})
	})
	e.Run()
	if e.Now() != 100 {
		t.Fatalf("Now = %d, want 100", e.Now())
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var ran Time = -1
	e.After(40, func(now Time) { ran = now })
	e.Run()
	if ran != 40 {
		t.Fatalf("After(40) ran at %d", ran)
	}
}

// TestEventQueueHotPathAllocFree asserts the PR 2 standard: once the heap
// is warm, push/pop cycles allocate nothing. (The callback itself is
// pre-bound; closure capture allocates at the caller, not in the queue.)
func TestEventQueueHotPathAllocFree(t *testing.T) {
	var q EventQueue
	fn := func(Time) {}
	// Warm the backing array.
	for i := 0; i < 256; i++ {
		q.Push(Time(i), fn)
	}
	for {
		if _, _, ok := q.Pop(); !ok {
			break
		}
	}
	var at Time
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 64; i++ {
			q.Push(at+Time(i%7), fn)
			at++
		}
		for {
			if _, _, ok := q.Pop(); !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("warm push/pop allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkEventPush(b *testing.B) {
	var q EventQueue
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(Time(i^(i<<3)), fn)
		if q.Len() >= 4096 {
			b.StopTimer()
			for {
				if _, _, ok := q.Pop(); !ok {
					break
				}
			}
			b.StartTimer()
		}
	}
}

func BenchmarkEventPop(b *testing.B) {
	var q EventQueue
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if q.Len() == 0 {
			b.StopTimer()
			for j := 0; j < 4096; j++ {
				q.Push(Time(j^(j<<5)), fn)
			}
			b.StartTimer()
		}
		q.Pop()
	}
}

func BenchmarkEventMixed(b *testing.B) {
	var q EventQueue
	fn := func(Time) {}
	// Steady-state mix: a queue holding in-flight completions with
	// interleaved push/pop, the open-loop runner's actual access pattern.
	for i := 0; i < 64; i++ {
		q.Push(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var at Time
	for i := 0; i < b.N; i++ {
		q.Push(at+Time(i&15), fn)
		at++
		q.Pop()
	}
}
