package resource

import (
	"bytes"
	"testing"

	"pipette/internal/sim"
)

func TestTimelineAccumulates(t *testing.T) {
	tr := NewTracker()
	ch := tr.Register("nand.ch0")
	ch.Add(0, 10*sim.Microsecond)
	ch.Add(20*sim.Microsecond, 30*sim.Microsecond)
	ch.Add(5, 5) // empty, ignored

	if got := ch.Busy(); got != 20*sim.Microsecond {
		t.Errorf("busy = %v, want 20us", got)
	}
	if ch.Ops() != 2 {
		t.Errorf("ops = %d, want 2", ch.Ops())
	}
	if got := ch.Utilization(100 * sim.Microsecond); got != 0.2 {
		t.Errorf("utilization = %v, want 0.2", got)
	}
}

func TestTimelineBinning(t *testing.T) {
	tr := NewTracker()
	tl := tr.Register("x")
	w := DefaultBinWidth
	// Interval straddling bins 0..2: covers all of bin 0 and 1, half of 2.
	tl.Add(0, 2*w+w/2)
	snap := tr.Snapshot(3 * w)
	bins := snap.Resources[0].Bins
	if len(bins) != 3 {
		t.Fatalf("bins = %d, want 3", len(bins))
	}
	if bins[0] != int64(w) || bins[1] != int64(w) || bins[2] != int64(w/2) {
		t.Errorf("bins = %v, want [%d %d %d]", bins, w, w, w/2)
	}
	var sum int64
	for _, b := range bins {
		sum += b
	}
	if sum != int64(tl.Busy()) {
		t.Errorf("bin sum %d != busy %d", sum, tl.Busy())
	}
}

func TestTrackerRescaleSharedWidth(t *testing.T) {
	tr := NewTracker()
	a := tr.Register("a")
	b := tr.Register("b")
	a.Add(0, DefaultBinWidth) // lands in bin 0 at initial width

	// Push b far past the initial capacity; every timeline must rescale.
	far := DefaultBinWidth * sim.Time(DefaultMaxBins) * 4
	b.Add(far-DefaultBinWidth, far)

	snap := tr.Snapshot(far)
	if want := int64(DefaultBinWidth * 4); snap.BinNs != want {
		t.Fatalf("bin width = %d, want %d", snap.BinNs, want)
	}
	// a's busy time survived the merges, still in bin 0.
	if snap.Resources[0].Bins[0] != int64(DefaultBinWidth) {
		t.Errorf("a bin0 = %d, want %d", snap.Resources[0].Bins[0], DefaultBinWidth)
	}
	var sumA, sumB int64
	for _, v := range snap.Resources[0].Bins {
		sumA += v
	}
	for _, v := range snap.Resources[1].Bins {
		sumB += v
	}
	if sumA != int64(a.Busy()) || sumB != int64(b.Busy()) {
		t.Errorf("bin sums (%d, %d) != busy (%d, %d)", sumA, sumB, a.Busy(), b.Busy())
	}
}

// TestTimelineRescaleBoundaryIntervals pins the rescale trigger to its
// exact boundary: an interval ending precisely at the covered capacity
// must NOT double the bin width (cover is strict), one ending a single
// nanosecond past it must double exactly once, and bin-aligned intervals
// never leak into a neighbouring bin on either side of the rescale.
func TestTimelineRescaleBoundaryIntervals(t *testing.T) {
	w := DefaultBinWidth
	capacity := w * sim.Time(DefaultMaxBins)

	tr := NewTracker()
	tl := tr.Register("x")
	tl.Add(w, 2*w) // exactly bin 1, bin-aligned on both ends
	tl.Add(capacity-w, capacity)
	if got := tr.Snapshot(capacity).BinNs; got != int64(w) {
		t.Fatalf("interval ending at capacity rescaled: bin width %d, want %d", got, w)
	}
	bins := tr.Snapshot(capacity).Resources[0].Bins
	if bins[0] != 0 || bins[1] != int64(w) || bins[2] != 0 {
		t.Fatalf("bin-aligned interval leaked: bins[0..2] = %v", bins[:3])
	}
	if bins[DefaultMaxBins-1] != int64(w) {
		t.Fatalf("last bin = %d, want %d", bins[DefaultMaxBins-1], w)
	}

	// One nanosecond past capacity: exactly one doubling, mass preserved.
	tl.Add(capacity, capacity+1)
	snap := tr.Snapshot(capacity + 1)
	if snap.BinNs != int64(2*w) {
		t.Fatalf("bin width after boundary crossing = %d, want %d", snap.BinNs, 2*w)
	}
	var sum int64
	for _, b := range snap.Resources[0].Bins {
		sum += b
	}
	if sum != int64(tl.Busy()) || tl.Busy() != 2*w+1 {
		t.Fatalf("bin sum %d, busy %d, want both %d", sum, tl.Busy(), 2*w+1)
	}
	// The formerly bin-aligned interval now occupies merged bin 0.
	if snap.Resources[0].Bins[0] != int64(w) {
		t.Fatalf("merged bin 0 = %d, want %d", snap.Resources[0].Bins[0], w)
	}
}

// TestSnapshotJSONRoundTripEmptyTimelines covers the degenerate exports:
// registered resources that never saw traffic (bins omitted) and a
// zero-length run. Both must survive a JSON round trip byte-stably.
func TestSnapshotJSONRoundTripEmptyTimelines(t *testing.T) {
	tr := NewTracker()
	tr.Register("idle.a")
	tr.Register("idle.b")

	for _, elapsed := range []sim.Time{0, 10 * sim.Microsecond} {
		snap := tr.Snapshot(elapsed)
		var buf bytes.Buffer
		if err := snap.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Resources) != 2 || got.Resources[0].Name != "idle.a" ||
			got.Resources[0].BusyNs != 0 || got.Resources[0].Ops != 0 {
			t.Fatalf("elapsed %v: round trip mismatch: %+v", elapsed, got)
		}
		if elapsed == 0 && got.Resources[0].Bins != nil {
			t.Fatalf("zero-length run must omit bins, got %v", got.Resources[0].Bins)
		}
		var buf2 bytes.Buffer
		if err := got.WriteJSON(&buf2); err != nil {
			t.Fatal(err)
		}
		if buf2.String() != buf.String() {
			t.Errorf("elapsed %v: empty-timeline JSON not byte-stable", elapsed)
		}
	}
}

func TestNilTrackerInert(t *testing.T) {
	var tr *Tracker
	tl := tr.Register("x")
	tl.Add(0, 100)
	if tl.Busy() != 0 || tl.Ops() != 0 || tl.Utilization(10) != 0 {
		t.Fatal("nil-tracker timeline must be inert")
	}
	if tr.Len() != 0 {
		t.Fatal("nil tracker Len must be 0")
	}
	snap := tr.Snapshot(100)
	if len(snap.Resources) != 0 {
		t.Fatal("nil tracker snapshot must be empty")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	tr := NewTracker()
	tr.Register("nand.ch0").Add(0, 5*sim.Microsecond)
	tr.Register("pcie.dma").Add(sim.Microsecond, 3*sim.Microsecond)
	snap := tr.Snapshot(10 * sim.Microsecond)

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()

	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Resources) != 2 || got.Resources[0].Name != "nand.ch0" ||
		got.Resources[1].BusyNs != int64(2*sim.Microsecond) {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	var buf2 bytes.Buffer
	if err := got.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Error("snapshot JSON is not byte-stable across a round trip")
	}
}
