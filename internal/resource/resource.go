// Package resource tracks occupancy of the simulated hardware resources —
// NAND channels and dies (channel × way), the PCIe DMA link, the NVMe
// rings — as busy intervals in virtual time. It generalizes the
// cumulative busy counters the device already keeps (sim.Resource,
// Identify's ChannelBusyTime) into timelines: per-resource utilization
// plus a bounded busy-time histogram over virtual-time bins, the raw
// material of pipette-report's utilization heatmap.
//
// Memory stays bounded no matter how long the run is: every timeline in a
// Tracker shares one bin width, and when a run outgrows the fixed bin
// count the tracker merges adjacent bins and doubles the width (the
// EagleTree approach to unbounded traces). Everything is driven by
// virtual time only, so the recorded timelines are deterministic at any
// worker count.
//
// Like the rest of the instrumentation, a Tracker belongs to one
// single-threaded simulated system and is not safe for concurrent use;
// scrape-time readers must hold the owning system's lock.
package resource

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"pipette/internal/metrics"
	"pipette/internal/sim"
)

// DefaultMaxBins is the per-timeline bin budget: 256 bins × 8 B ≈ 2 KB
// per resource regardless of run length.
const DefaultMaxBins = 256

// DefaultBinWidth is the starting bin width. With DefaultMaxBins this
// covers ~16 ms of virtual time before the first rescale.
const DefaultBinWidth = 64 * sim.Microsecond

// Timeline accumulates one resource's busy intervals: total busy time,
// interval count, and busy nanoseconds per virtual-time bin. Obtain
// timelines from Tracker.Register so all of a system's timelines share
// one bin scale.
type Timeline struct {
	tr   *Tracker
	name string

	busy sim.Time
	ops  uint64
	end  sim.Time // latest busy endpoint seen
	bins []sim.Time
}

// Name reports the resource name, e.g. "nand.ch0" or "pcie.dma".
func (t *Timeline) Name() string { return t.name }

// Busy reports the cumulative busy time.
func (t *Timeline) Busy() sim.Time {
	if t == nil {
		return 0
	}
	return t.busy
}

// Ops reports the number of recorded busy intervals.
func (t *Timeline) Ops() uint64 {
	if t == nil {
		return 0
	}
	return t.ops
}

// Add records one busy interval [start, end). Intervals of a
// serially-occupied resource never overlap, so busy time is additive.
// A nil timeline (tracking disabled) and empty intervals are no-ops.
func (t *Timeline) Add(start, end sim.Time) {
	if t == nil || end <= start {
		return
	}
	t.busy += end - start
	t.ops++
	if end > t.end {
		t.end = end
	}
	t.tr.cover(end)
	w := t.tr.binWidth
	for b := start / w; b <= (end-1)/w; b++ {
		lo, hi := sim.Time(b)*w, sim.Time(b+1)*w
		if start > lo {
			lo = start
		}
		if end < hi {
			hi = end
		}
		t.bins[b] += hi - lo
	}
}

// Utilization reports the busy fraction of [0, elapsed].
func (t *Timeline) Utilization(elapsed sim.Time) float64 {
	if t == nil || elapsed <= 0 {
		return 0
	}
	f := float64(t.busy) / float64(elapsed)
	if f > 1 {
		f = 1
	}
	return f
}

// rescale merges adjacent bin pairs, halving resolution.
func (t *Timeline) rescale() {
	half := len(t.bins) / 2
	for i := 0; i < half; i++ {
		t.bins[i] = t.bins[2*i] + t.bins[2*i+1]
	}
	for i := half; i < len(t.bins); i++ {
		t.bins[i] = 0
	}
}

// Tracker owns a system's resource timelines and their shared bin scale.
type Tracker struct {
	maxBins  int
	binWidth sim.Time
	tls      []*Timeline
}

// NewTracker creates a tracker with the default bin budget and width.
func NewTracker() *Tracker {
	return &Tracker{maxBins: DefaultMaxBins, binWidth: DefaultBinWidth}
}

// Register adds a named timeline. Registration order is the export and
// heatmap row order, so wire resources top-of-stack first. A nil tracker
// returns a nil (inert) timeline, keeping disabled systems zero-cost.
func (tr *Tracker) Register(name string) *Timeline {
	if tr == nil {
		return nil
	}
	t := &Timeline{tr: tr, name: name, bins: make([]sim.Time, tr.maxBins)}
	tr.tls = append(tr.tls, t)
	return t
}

// Len reports the number of registered timelines.
func (tr *Tracker) Len() int {
	if tr == nil {
		return 0
	}
	return len(tr.tls)
}

// At returns the i'th registered timeline.
func (tr *Tracker) At(i int) *Timeline { return tr.tls[i] }

// cover widens the shared bin scale until `end` fits every timeline.
func (tr *Tracker) cover(end sim.Time) {
	for end > tr.binWidth*sim.Time(tr.maxBins) {
		tr.binWidth *= 2
		for _, t := range tr.tls {
			t.rescale()
		}
	}
}

// TimelineSnapshot is one resource's exported state.
type TimelineSnapshot struct {
	Name        string  `json:"name"`
	BusyNs      int64   `json:"busy_ns"`
	Ops         uint64  `json:"ops"`
	Utilization float64 `json:"utilization"`
	Bins        []int64 `json:"bins,omitempty"` // busy ns per bin
}

// Snapshot is a run's exported resource occupancy: the "timelines" input
// of pipette-report. Resources keep registration order and all share
// BinNs, so rows are directly comparable in a heatmap.
type Snapshot struct {
	ElapsedNs int64              `json:"elapsed_ns"`
	BinNs     int64              `json:"bin_ns"`
	Resources []TimelineSnapshot `json:"resources"`
}

// Snapshot exports the tracker's state over a run of length elapsed.
// Trailing all-zero bins beyond the covered range are trimmed.
func (tr *Tracker) Snapshot(elapsed sim.Time) *Snapshot {
	s := &Snapshot{ElapsedNs: int64(elapsed)}
	if tr == nil {
		return s
	}
	s.BinNs = int64(tr.binWidth)
	used := int((elapsed + tr.binWidth - 1) / tr.binWidth)
	if used > tr.maxBins {
		used = tr.maxBins
	}
	for _, t := range tr.tls {
		ts := TimelineSnapshot{
			Name:        t.name,
			BusyNs:      int64(t.busy),
			Ops:         t.ops,
			Utilization: t.Utilization(elapsed),
		}
		if used > 0 {
			ts.Bins = make([]int64, used)
			for i := 0; i < used; i++ {
				ts.Bins[i] = int64(t.bins[i])
			}
		}
		s.Resources = append(s.Resources, ts)
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. Field and resource
// order are fixed, so identical runs serialize byte-identically.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Table renders the occupancy summary: busy time, utilization, and
// interval count per resource. Without detail the per-die rows
// ("nand.chX.wY") are folded away, leaving channels and links — the right
// granularity for a run summary; heatmaps want the full detail.
func (s *Snapshot) Table(detail bool) *metrics.Table {
	t := &metrics.Table{Header: []string{"resource", "busy(ms)", "util%", "ops"}}
	for _, r := range s.Resources {
		if !detail && strings.Contains(r.Name, ".w") {
			continue
		}
		t.AddRow(r.Name,
			fmt.Sprintf("%.3f", sim.Time(r.BusyNs).Millis()),
			fmt.Sprintf("%.1f", 100*r.Utilization),
			fmt.Sprintf("%d", r.Ops))
	}
	return t
}

// ReadSnapshot parses a snapshot written by WriteJSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("resource: parsing snapshot: %w", err)
	}
	return &s, nil
}
