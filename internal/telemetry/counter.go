package telemetry

import "sync/atomic"

// Counter is an atomic event counter for retry/fallback accounting on
// paths that must stay cheap: Inc is one atomic add, there is no label
// machinery, and — like the Nop tracer — an unused Counter costs nothing
// beyond its word of storage. Embed it by value in the owning struct
// (never inside by-value snapshot structs: the atomic word must not be
// copied) and expose Load() through a snapshot accessor.
//
// The simulator is single-threaded per system, but counters are read by
// telemetry probes that may sample from another goroutine, hence atomic.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// CounterProbe adapts a Counter into a sampled gauge series.
func CounterProbe(name string, c *Counter) Probe {
	return GaugeProbe(name, func() float64 { return float64(c.Load()) })
}
