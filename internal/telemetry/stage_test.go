package telemetry

import (
	"strings"
	"testing"

	"pipette/internal/sim"
)

func TestStageAccountPartition(t *testing.T) {
	a := NewStageAccount()
	a.Begin(100)
	a.Mark(StageSyscall, 110)
	a.Mark(StageNAND, 160)
	a.Mark(StageDMA, 175)
	a.Mark(StageCopyout, 180)
	lat := a.Finish(200) // 20ns unclaimed tail -> other

	if lat != 100 {
		t.Fatalf("latency = %d, want 100", lat)
	}
	if got := a.Total(StageSyscall); got != 10 {
		t.Errorf("syscall = %d, want 10", got)
	}
	if got := a.Total(StageNAND); got != 50 {
		t.Errorf("nand = %d, want 50", got)
	}
	if got := a.Total(StageOther); got != 20 {
		t.Errorf("other = %d, want 20", got)
	}
	if a.Sum() != a.Elapsed() {
		t.Errorf("conservation violated: sum %d != elapsed %d", a.Sum(), a.Elapsed())
	}
	if a.Gaps() != 0 {
		t.Errorf("gaps = %d, want 0", a.Gaps())
	}
	if a.Requests() != 1 {
		t.Errorf("requests = %d, want 1", a.Requests())
	}
}

func TestStageAccountOverlappedMarks(t *testing.T) {
	a := NewStageAccount()
	a.Begin(0)
	// Two racing commands: the first completes at 80, the second's
	// intermediate milestones are all before the cursor and claim
	// nothing; only its tail beyond 80 lands in its stage.
	a.Mark(StageNAND, 80)
	a.Mark(StageFirmware, 20) // overlapped, no-op
	a.Mark(StageNAND, 60)     // overlapped, no-op
	a.Mark(StageDMA, 95)
	a.Finish(95)

	if got := a.Total(StageNAND); got != 80 {
		t.Errorf("nand = %d, want 80", got)
	}
	if got := a.Total(StageFirmware); got != 0 {
		t.Errorf("firmware = %d, want 0", got)
	}
	if got := a.Total(StageDMA); got != 15 {
		t.Errorf("dma = %d, want 15", got)
	}
	if a.Sum() != 95 || a.Elapsed() != 95 {
		t.Errorf("sum %d, elapsed %d, want 95 both", a.Sum(), a.Elapsed())
	}
}

func TestStageAccountReattribute(t *testing.T) {
	a := NewStageAccount()
	a.Begin(0)
	a.Mark(StageSyscall, 10)
	// Fine attempt 10..70 that will be thrown away.
	a.Mark(StageConstruct, 20)
	a.Mark(StageFirmware, 30)
	a.Mark(StageNAND, 55)
	a.Mark(StageDMA, 70)
	a.Reattribute(10, StageRetry)
	a.Mark(StageRetry, 75) // host time detecting the corruption
	// Block-path retry succeeds.
	a.Mark(StageNAND, 130)
	a.Mark(StageCopyout, 140)
	a.Finish(140)

	if got := a.Total(StageSyscall); got != 10 {
		t.Errorf("syscall = %d, want 10 (reattribute must not touch time before `from`)", got)
	}
	if got := a.Total(StageRetry); got != 65 {
		t.Errorf("retry = %d, want 65", got)
	}
	if got := a.Total(StageConstruct) + a.Total(StageFirmware) + a.Total(StageDMA); got != 0 {
		t.Errorf("wasted-attempt stages retained %d ns, want 0", got)
	}
	if got := a.Total(StageNAND); got != 55 {
		t.Errorf("nand = %d, want 55", got)
	}
	if a.Sum() != 140 || a.Gaps() != 0 {
		t.Errorf("sum %d (want 140), gaps %d (want 0)", a.Sum(), a.Gaps())
	}
}

func TestStageAccountReattributeSplitsStraddler(t *testing.T) {
	a := NewStageAccount()
	a.Begin(0)
	a.Mark(StageNAND, 100)
	a.Reattribute(40, StageRetry)
	a.Finish(100)

	if got := a.Total(StageNAND); got != 40 {
		t.Errorf("nand = %d, want 40", got)
	}
	if got := a.Total(StageRetry); got != 60 {
		t.Errorf("retry = %d, want 60", got)
	}
	if a.Gaps() != 0 {
		t.Errorf("gaps = %d, want 0", a.Gaps())
	}
}

func TestStageAccountNilSafe(t *testing.T) {
	var a *StageAccount
	a.Begin(0)
	a.Mark(StageNAND, 10)
	a.Reattribute(0, StageRetry)
	if a.Finish(10) != 0 || a.Sum() != 0 || a.Requests() != 0 {
		t.Fatal("nil account must be inert")
	}
	a.SetOnFinish(nil)
	if a.StageHistogram(StageNAND) != nil {
		t.Fatal("nil account histogram must be nil")
	}
}

func TestStageAccountOnFinishConservation(t *testing.T) {
	a := NewStageAccount()
	checked := 0
	a.SetOnFinish(func(segs []StageSeg, start, end sim.Time) {
		checked++
		var sum sim.Time
		at := start
		for _, s := range segs {
			if s.Start != at {
				t.Errorf("segment gap at %d (start %d)", at, s.Start)
			}
			sum += s.End - s.Start
			at = s.End
		}
		if at != end || sum != end-start {
			t.Errorf("segments sum %d over [%d,%d]", sum, start, end)
		}
	})
	for i := 0; i < 5; i++ {
		base := sim.Time(i * 1000)
		a.Begin(base)
		a.Mark(StageSyscall, base+7)
		a.Mark(StageNAND, base+300)
		a.Mark(StageCopyout, base+310)
		a.Finish(base + 320)
	}
	if checked != 5 {
		t.Fatalf("onFinish ran %d times, want 5", checked)
	}
}

func TestStageWaterfallTable(t *testing.T) {
	a := NewStageAccount()
	a.Begin(0)
	a.Mark(StageSyscall, 1000)
	a.Mark(StageNAND, 51000)
	a.Mark(StageCopyout, 52000)
	a.Finish(52000)

	out := a.Waterfall().Render()
	for _, want := range []string{"syscall", "nand", "copyout", "total", "100.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "other") {
		t.Errorf("waterfall shows zero-valued stage 'other':\n%s", out)
	}
}

func TestStageAccountBindRegistry(t *testing.T) {
	a := NewStageAccount()
	reg := NewRegistry()
	a.BindRegistry(reg)
	a.Begin(0)
	a.Mark(StageNAND, 50000)
	a.Finish(50000)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`pipette_stage_ns_total{stage="nand"} 50000`,
		"pipette_stage_requests_total 1",
		`pipette_stage_us_count{stage="nand"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestStageSnapshotMerge(t *testing.T) {
	a := NewStageAccount()
	a.Begin(0)
	a.Mark(StageNAND, 100)
	a.Finish(100)
	b := NewStageAccount()
	b.Begin(0)
	b.Mark(StageNAND, 50)
	b.Mark(StageDMA, 70)
	b.Finish(70)

	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(&sb)
	if sa.Requests != 2 || sa.Elapsed != 170 || sa.Sum() != 170 {
		t.Fatalf("merge: requests %d elapsed %d sum %d", sa.Requests, sa.Elapsed, sa.Sum())
	}
	if sa.Totals[StageNAND] != 150 || sa.Hists[StageNAND].Count() != 2 {
		t.Fatalf("merge: nand total %d count %d", sa.Totals[StageNAND], sa.Hists[StageNAND].Count())
	}
}
