// Package telemetry is the observability layer of the simulated I/O stack:
// per-request spans recorded in virtual time across every layer (VFS, page
// cache, block layer, fine-grained path, NVMe transport, SSD controller,
// FTL, NAND channels/ways), exportable as Chrome trace-event JSON viewable
// in Perfetto; per-phase latency histograms aggregated into a breakdown
// table; and time-series sampling of counters and gauges at a configurable
// virtual-time interval, exportable as CSV.
//
// Every instrumented layer holds a Tracer that defaults to Nop(), whose
// methods are empty — the instrumented hot path costs one interface call
// per phase when tracing is off. Heavier argument construction at call
// sites is guarded by Enabled().
//
// The simulator is single-threaded per system by design, so the Recorder
// and Sampler are not safe for concurrent use, matching internal/metrics.
package telemetry

import "pipette/internal/sim"

// Track names of the instrumented layers. NAND emits per-die and
// per-channel tracks ("nand/d3", "nand/ch0") built by the array.
const (
	TrackVFS       = "vfs"
	TrackPageCache = "pagecache"
	TrackFine      = "fine"
	TrackBlock     = "block"
	TrackNVMe      = "nvme"
	TrackSSD       = "ssd"
	TrackFTL       = "ftl"
	TrackKV        = "kv"
	TrackIndex     = "index"
)

// Tracer receives simulation events. Implementations: Nop (default,
// discards everything) and Recorder (collects spans and histograms).
//
// All timestamps are virtual time. Spans are complete intervals — in this
// synchronous simulator every phase's start and end are known when the
// phase finishes, so there is no begin/end pairing protocol to get wrong.
type Tracer interface {
	// Enabled reports whether events are recorded. Call sites use it to
	// skip argument construction on the no-op path.
	Enabled() bool
	// BeginRequest opens a host-level request scope (one VFS read or
	// write); spans emitted until EndRequest are tagged with its id.
	BeginRequest(name string, start sim.Time)
	// EndRequest closes the current request scope, emitting the request
	// span itself on the VFS track.
	EndRequest(end sim.Time)
	// Span records one completed phase on a track.
	Span(track, name string, start, end sim.Time)
	// Instant records a point event (e.g. a page-cache miss).
	Instant(track, name string, at sim.Time)
}

// nopTracer discards everything.
type nopTracer struct{}

// Nop returns the zero-cost default tracer.
func Nop() Tracer { return nopTracer{} }

func (nopTracer) Enabled() bool                   { return false }
func (nopTracer) BeginRequest(string, sim.Time)   {}
func (nopTracer) EndRequest(sim.Time)             {}
func (nopTracer) Span(_, _ string, _, _ sim.Time) {}
func (nopTracer) Instant(_, _ string, _ sim.Time) {}

// OrNop returns tr, or the no-op tracer when tr is nil — constructors use
// it so a zero-valued config still yields a safe tracer.
func OrNop(tr Tracer) Tracer {
	if tr == nil {
		return Nop()
	}
	return tr
}
