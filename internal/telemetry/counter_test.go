package telemetry

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	t.Parallel()
	var c Counter
	if c.Load() != 0 {
		t.Fatal("zero Counter not zero")
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	t.Parallel()
	var c Counter
	var wg sync.WaitGroup
	const workers, perWorker = 8, 10_000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("Load = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterProbe(t *testing.T) {
	t.Parallel()
	var c Counter
	p := CounterProbe("retries", &c)
	if p.Name != "retries" {
		t.Fatalf("probe name %q", p.Name)
	}
	c.Add(7)
	if got := p.Sample(0); got != 7 {
		t.Fatalf("Sample = %g, want 7", got)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
