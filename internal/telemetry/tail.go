package telemetry

import (
	"sort"

	"pipette/internal/sim"
)

// Synthetic blame resources: labels for time a request spent outside any
// concrete device resource. The admission label tags open-loop pre-queue
// wait; hedge and failover tag the dispatch gaps the cluster synthesizes
// for secondary legs (see cluster.Replay).
const (
	ResAdmission = "admission"
	ResHedge     = "hedge"
	ResFailover  = "failover"
)

// TailExemplar is one captured slow request: its full contiguous span
// list (the blame vector is a fold of Segs by stage and resource). Seq is
// the request's completion-order index within the cell, which makes the
// (latency, start, seq) ranking a deterministic total order.
type TailExemplar struct {
	Seq        uint64
	Start, End sim.Time
	Segs       []StageSeg
}

// Latency is the exemplar's end-to-end virtual time.
func (e *TailExemplar) Latency() sim.Time { return e.End - e.Start }

// BlameSeg is one row of an aggregate blame composition: total virtual
// time a set of requests spent in (Stage, Res).
type BlameSeg struct {
	Stage Stage
	Res   string
	Total sim.Time
}

// TailSnapshot is the deterministic summary a TailRecorder exports: the
// top-K slowest requests with full spans, plus the blame composition
// aggregated over the whole kept set (the slowest ~1%), which is what the
// p99-blame table renders.
type TailSnapshot struct {
	// TopK holds the slowest requests, slowest first.
	TopK []TailExemplar
	// Blame aggregates every kept request's segments by (stage, resource),
	// ordered by stage then resource.
	Blame []BlameSeg
	// Kept is the number of requests in the kept set (Blame's population).
	Kept int
	// Observed is the number of requests the recorder saw.
	Observed uint64
}

// TailRecorder keeps the `keep` slowest requests seen so far (a min-heap
// keyed on the ranking below) and surfaces the top `topK` of them as
// exemplars. Ranking is a strict total order — higher latency outranks;
// ties break to the earlier start, then the lower completion seq — so the
// kept set and the snapshot are byte-identical regardless of worker
// count, as long as each recorder observes one single-threaded cell.
//
// Observe copies a request's segments only when it enters the kept set,
// so the steady-state cost for a fast request is one comparison.
type TailRecorder struct {
	topK     int
	keep     int
	seq      uint64
	observed uint64
	ents     []tailEntry // min-heap: ents[0] is the weakest kept entry
}

type tailEntry struct {
	seq        uint64
	start, end sim.Time
	segs       []StageSeg
}

// outranks reports whether a is a strictly stronger exemplar than b.
func (a *tailEntry) outranks(b *tailEntry) bool {
	la, lb := a.end-a.start, b.end-b.start
	if la != lb {
		return la > lb
	}
	if a.start != b.start {
		return a.start < b.start
	}
	return a.seq < b.seq
}

// NewTailRecorder returns a recorder exposing the topK slowest requests
// and aggregating blame over the keep slowest (keep is clamped up to
// topK). Typical use: topK a handful for waterfalls, keep ~1% of the
// cell's request count for the p99 blame composition.
func NewTailRecorder(topK, keep int) *TailRecorder {
	if topK < 1 {
		topK = 1
	}
	if keep < topK {
		keep = topK
	}
	return &TailRecorder{topK: topK, keep: keep}
}

// Observe offers one finished request to the recorder. segs is valid only
// during the call; it is copied if the request enters the kept set.
func (t *TailRecorder) Observe(segs []StageSeg, start, end sim.Time) {
	if t == nil {
		return
	}
	t.observed++
	e := tailEntry{seq: t.seq, start: start, end: end}
	t.seq++
	if len(t.ents) < t.keep {
		e.segs = append([]StageSeg(nil), segs...)
		t.ents = append(t.ents, e)
		t.siftUp(len(t.ents) - 1)
		return
	}
	if !e.outranks(&t.ents[0]) {
		return
	}
	// Evict the weakest kept entry, reusing its segment storage.
	e.segs = append(t.ents[0].segs[:0], segs...)
	t.ents[0] = e
	t.siftDown(0)
}

// weaker is the heap order: true when ents[i] should sit below ents[j]
// (closer to eviction).
func (t *TailRecorder) weaker(i, j int) bool {
	return t.ents[j].outranks(&t.ents[i])
}

func (t *TailRecorder) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.weaker(i, p) {
			break
		}
		t.ents[i], t.ents[p] = t.ents[p], t.ents[i]
		i = p
	}
}

func (t *TailRecorder) siftDown(i int) {
	n := len(t.ents)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && t.weaker(l, m) {
			m = l
		}
		if r < n && t.weaker(r, m) {
			m = r
		}
		if m == i {
			return
		}
		t.ents[i], t.ents[m] = t.ents[m], t.ents[i]
		i = m
	}
}

// Observed reports how many requests the recorder has seen.
func (t *TailRecorder) Observed() uint64 {
	if t == nil {
		return 0
	}
	return t.observed
}

// Snapshot ranks the kept set and returns the deterministic summary. The
// recorder keeps running; exemplar segments are deep-copied.
func (t *TailRecorder) Snapshot() *TailSnapshot {
	if t == nil || len(t.ents) == 0 {
		return nil
	}
	order := make([]*tailEntry, len(t.ents))
	for i := range t.ents {
		order[i] = &t.ents[i]
	}
	sort.Slice(order, func(i, j int) bool { return order[i].outranks(order[j]) })

	snap := &TailSnapshot{Kept: len(order), Observed: t.observed}
	k := t.topK
	if k > len(order) {
		k = len(order)
	}
	snap.TopK = make([]TailExemplar, k)
	for i := 0; i < k; i++ {
		e := order[i]
		snap.TopK[i] = TailExemplar{
			Seq:   e.seq,
			Start: e.start,
			End:   e.end,
			Segs:  append([]StageSeg(nil), e.segs...),
		}
	}
	snap.Blame = blameOf(t.ents)
	return snap
}

// blameOf folds a set of requests' segments into (stage, resource) totals,
// ordered by stage then resource.
func blameOf(ents []tailEntry) []BlameSeg {
	type key struct {
		stage Stage
		res   string
	}
	totals := map[key]sim.Time{}
	for i := range ents {
		for _, s := range ents[i].segs {
			totals[key{s.Stage, s.Res}] += s.End - s.Start
		}
	}
	out := make([]BlameSeg, 0, len(totals))
	for k, v := range totals {
		out = append(out, BlameSeg{Stage: k.stage, Res: k.res, Total: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Res < out[j].Res
	})
	return out
}

// BlameVector folds one request's segments into (stage, resource) totals —
// the per-exemplar blame vector rendered next to its waterfall.
func BlameVector(segs []StageSeg) []BlameSeg {
	return blameOf([]tailEntry{{segs: segs}})
}
