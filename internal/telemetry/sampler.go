package telemetry

import (
	"errors"
	"fmt"
	"io"

	"pipette/internal/metrics"
	"pipette/internal/sim"
)

// Probe is one sampled time series: Sample is called at each sampling
// instant with the current virtual time and returns the series value.
type Probe struct {
	Name   string
	Sample func(now sim.Time) float64
}

// GaugeProbe wraps a plain getter into a Probe.
func GaugeProbe(name string, get func() float64) Probe {
	return Probe{Name: name, Sample: func(sim.Time) float64 { return get() }}
}

// RateProbe converts a cumulative virtual-time counter — e.g. a resource's
// busy time — into a per-interval utilization fraction in [0,1]: the share
// of virtual time since the previous sample that the counter advanced.
func RateProbe(name string, cum func() sim.Time) Probe {
	var lastV, lastT sim.Time
	return Probe{Name: name, Sample: func(now sim.Time) float64 {
		v := cum()
		dv, dt := v-lastV, now-lastT
		lastV, lastT = v, now
		if dt <= 0 {
			return 0
		}
		f := float64(dv) / float64(dt)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return f
	}}
}

// Sampler records every probe at a fixed virtual-time interval. The
// simulation advances in jumps, so callers Tick after each completed
// request; the sampler takes one row the first time the clock crosses each
// interval boundary. Not safe for concurrent use.
type Sampler struct {
	interval sim.Time
	probes   []Probe
	next     sim.Time
	times    []sim.Time
	rows     [][]float64
}

// NewSampler builds a sampler over the probes.
func NewSampler(interval sim.Time, probes []Probe) (*Sampler, error) {
	if interval <= 0 {
		return nil, errors.New("telemetry: sampling interval must be positive")
	}
	if len(probes) == 0 {
		return nil, errors.New("telemetry: sampler needs at least one probe")
	}
	return &Sampler{interval: interval, probes: probes, next: interval}, nil
}

// Tick samples all probes if virtual time has crossed the next interval
// boundary since the last sample. Multiple boundaries crossed in one jump
// yield a single row — the simulator has no intermediate state to report.
func (s *Sampler) Tick(now sim.Time) {
	if now < s.next {
		return
	}
	row := make([]float64, len(s.probes))
	for i := range s.probes {
		row[i] = s.probes[i].Sample(now)
	}
	s.times = append(s.times, now)
	s.rows = append(s.rows, row)
	steps := (now-s.next)/s.interval + 1
	s.next += steps * s.interval
}

// Rows reports sampled rows so far.
func (s *Sampler) Rows() int { return len(s.rows) }

// Series reports the probe names, in column order.
func (s *Sampler) Series() []string {
	out := make([]string, len(s.probes))
	for i := range s.probes {
		out[i] = s.probes[i].Name
	}
	return out
}

// Table renders the samples as a metrics table: a time_us column followed
// by one column per series.
func (s *Sampler) Table() *metrics.Table {
	t := &metrics.Table{Header: append([]string{"time_us"}, s.Series()...)}
	for i, row := range s.rows {
		cells := make([]string, 0, len(row)+1)
		cells = append(cells, fmt.Sprintf("%.3f", s.times[i].Micros()))
		for _, v := range row {
			cells = append(cells, fmt.Sprintf("%.6g", v))
		}
		t.AddRow(cells...)
	}
	return t
}

// WriteCSV writes the sampled series as RFC 4180 CSV.
func (s *Sampler) WriteCSV(w io.Writer) error {
	_, err := io.WriteString(w, s.Table().CSV())
	return err
}
