package telemetry

import (
	"reflect"
	"testing"

	"pipette/internal/sim"
)

// seg is a test shorthand for a contiguous span.
func seg(st Stage, res string, a, b sim.Time) StageSeg {
	return StageSeg{Stage: st, Res: res, Start: a, End: b}
}

func TestTailRecorderRankingAndEviction(t *testing.T) {
	r := NewTailRecorder(2, 3)
	// Latencies: 10, 50, 30, 40, 20 — kept set of 3 should end as
	// {50, 40, 30}; top-2 = [50, 40].
	for i, lat := range []sim.Time{10, 50, 30, 40, 20} {
		start := sim.Time(i * 1000)
		r.Observe([]StageSeg{seg(StageNAND, "", start, start+lat)}, start, start+lat)
	}
	snap := r.Snapshot()
	if snap == nil {
		t.Fatal("snapshot is nil")
	}
	if snap.Observed != 5 || snap.Kept != 3 {
		t.Fatalf("observed %d kept %d, want 5 and 3", snap.Observed, snap.Kept)
	}
	if len(snap.TopK) != 2 {
		t.Fatalf("topK has %d entries, want 2", len(snap.TopK))
	}
	if snap.TopK[0].Latency() != 50 || snap.TopK[1].Latency() != 40 {
		t.Errorf("topK latencies = %d, %d, want 50, 40", snap.TopK[0].Latency(), snap.TopK[1].Latency())
	}
	// Blame covers the kept set only: 50 + 40 + 30.
	var total sim.Time
	for _, b := range snap.Blame {
		total += b.Total
	}
	if total != 120 {
		t.Errorf("blame total = %d, want 120 (kept set only)", total)
	}
}

func TestTailRecorderTieBreak(t *testing.T) {
	r := NewTailRecorder(3, 3)
	// Three requests with identical latency: ranking must break to the
	// earlier start, then the lower completion seq.
	r.Observe(nil, 200, 300) // seq 0, start 200
	r.Observe(nil, 100, 200) // seq 1, start 100
	r.Observe(nil, 100, 200) // seq 2, start 100 (same start, later seq)
	snap := r.Snapshot()
	want := []struct {
		seq   uint64
		start sim.Time
	}{{1, 100}, {2, 100}, {0, 200}}
	for i, w := range want {
		if snap.TopK[i].Seq != w.seq || snap.TopK[i].Start != w.start {
			t.Errorf("topK[%d] = seq %d start %d, want seq %d start %d",
				i, snap.TopK[i].Seq, snap.TopK[i].Start, w.seq, w.start)
		}
	}
}

func TestTailRecorderCopiesSegments(t *testing.T) {
	r := NewTailRecorder(1, 1)
	scratch := []StageSeg{seg(StageNAND, "nand.ch0.w0", 0, 100)}
	r.Observe(scratch, 0, 100)
	scratch[0] = seg(StageDMA, "pcie.dma", 5, 7) // caller reuses its buffer
	snap := r.Snapshot()
	if got := snap.TopK[0].Segs[0]; got.Stage != StageNAND || got.Res != "nand.ch0.w0" {
		t.Fatalf("recorder aliased the caller's segment buffer: %+v", got)
	}
}

func TestTailRecorderNilSafe(t *testing.T) {
	var r *TailRecorder
	r.Observe(nil, 0, 10)
	if r.Snapshot() != nil || r.Observed() != 0 {
		t.Fatal("nil recorder must be inert")
	}
	if NewTailRecorder(2, 2).Snapshot() != nil {
		t.Fatal("empty recorder must snapshot to nil")
	}
}

func TestBlameVectorFolds(t *testing.T) {
	got := BlameVector([]StageSeg{
		seg(StageNAND, "nand.ch0.w0", 0, 10),
		seg(StageDMA, "pcie.dma", 10, 14),
		seg(StageNAND, "nand.ch0.w0", 14, 20),
		seg(StageNAND, "nand.ch1.w0", 20, 25),
	})
	want := []BlameSeg{
		{Stage: StageNAND, Res: "nand.ch0.w0", Total: 16},
		{Stage: StageNAND, Res: "nand.ch1.w0", Total: 5},
		{Stage: StageDMA, Res: "pcie.dma", Total: 4},
	}
	// Order is stage then resource; StageNAND sorts before StageDMA iff
	// the enum says so — compare as sets keyed by (stage, res).
	if len(got) != len(want) {
		t.Fatalf("blame has %d rows, want %d: %+v", len(got), len(want), got)
	}
	totals := map[[2]string]sim.Time{}
	for _, b := range got {
		totals[[2]string{b.Stage.String(), b.Res}] = b.Total
	}
	for _, w := range want {
		if totals[[2]string{w.Stage.String(), w.Res}] != w.Total {
			t.Errorf("blame[%s@%s] = %d, want %d",
				w.Stage, w.Res, totals[[2]string{w.Stage.String(), w.Res}], w.Total)
		}
	}
}

// TestMarkResSegments checks the per-resource refinement of the stage
// account: equal (stage, res) extends the open segment, a differing res
// starts a new one, and conservation holds over the whole request.
func TestMarkResSegments(t *testing.T) {
	a := NewStageAccount()
	var segs []StageSeg
	a.SetOnFinish(func(s []StageSeg, start, end sim.Time) {
		segs = append([]StageSeg(nil), s...)
	})
	a.Begin(0)
	a.MarkRes(StageNAND, 10, "nand.ch0.w0")
	a.MarkRes(StageNAND, 25, "nand.ch0.w0") // merges
	a.MarkRes(StageNAND, 40, "nand.ch1.w2") // new segment, same stage
	a.MarkRes(StageDMA, 44, "pcie.dma")
	a.Finish(44)

	want := []StageSeg{
		seg(StageNAND, "nand.ch0.w0", 0, 25),
		seg(StageNAND, "nand.ch1.w2", 25, 40),
		seg(StageDMA, "pcie.dma", 40, 44),
	}
	if !reflect.DeepEqual(segs, want) {
		t.Fatalf("segments = %+v, want %+v", segs, want)
	}
	if a.Sum() != 44 || a.Gaps() != 0 {
		t.Fatalf("sum %d gaps %d, want 44 and 0", a.Sum(), a.Gaps())
	}
	if got := a.Total(StageNAND); got != 40 {
		t.Fatalf("nand total %d, want 40 (res split must not double-count)", got)
	}
}

func TestLatencyGridObserveAndBuckets(t *testing.T) {
	g := NewLatencyGrid(0)
	g.Observe(0, 500*sim.Nanosecond)           // < 1us -> row 0
	g.Observe(0, 1*sim.Microsecond)            // >= 1us -> row 1
	g.Observe(0, 9999*sim.Microsecond)         // < 10000us -> row 12
	g.Observe(0, 50*sim.Millisecond)           // overflow row
	g.Observe(-5*sim.Microsecond, sim.Time(0)) // before origin clamps to bin 0

	snap := g.Snapshot()
	if snap == nil || snap.Total != 5 {
		t.Fatalf("snapshot total = %v, want 5", snap)
	}
	if len(snap.Counts) != len(snap.BoundsUs)+1 {
		t.Fatalf("rows = %d, want %d", len(snap.Counts), len(snap.BoundsUs)+1)
	}
	for row, want := range map[int]uint64{0: 2, 1: 1, 12: 1, 13: 1} {
		if snap.Counts[row][0] != want {
			t.Errorf("counts[%d][0] = %d, want %d", row, snap.Counts[row][0], want)
		}
	}
}

// TestLatencyGridRescale drives the grid past its bin budget and checks
// the doubling merge: totals survive, per-row mass lands in the merged
// bin, and a completion at the exact post-rescale boundary still fits.
func TestLatencyGridRescale(t *testing.T) {
	g := NewLatencyGrid(0)
	w := defaultLatGridBin
	g.Observe(0, 2*sim.Microsecond)   // bin 0
	g.Observe(3*w, 2*sim.Microsecond) // bin 3
	// Exactly at the current capacity boundary: must trigger one rescale.
	g.Observe(w*latGridMaxBins, 2*sim.Microsecond)

	snap := g.Snapshot()
	if snap.BinNs != int64(2*w) {
		t.Fatalf("bin width = %d, want doubled %d", snap.BinNs, int64(2*w))
	}
	if snap.Total != 3 {
		t.Fatalf("total = %d, want 3", snap.Total)
	}
	row := snap.Counts[2] // 2us lands in the "< 5us" row
	if row[0] != 1 || row[1] != 1 || row[latGridMaxBins/2] != 1 {
		t.Fatalf("post-rescale row = %v", row)
	}

	var sum uint64
	for _, r := range snap.Counts {
		for _, c := range r {
			sum += c
		}
	}
	if sum != snap.Total {
		t.Fatalf("cells sum to %d, total says %d", sum, snap.Total)
	}
}

func TestLatencyGridNilAndEmpty(t *testing.T) {
	var g *LatencyGrid
	g.Observe(0, 10)
	if g.Snapshot() != nil {
		t.Fatal("nil grid must snapshot to nil")
	}
	if NewLatencyGrid(0).Snapshot() != nil {
		t.Fatal("empty grid must snapshot to nil")
	}
}
