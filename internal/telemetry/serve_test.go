package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry(L("engine", "test"))
	c := reg.Counter("reqs_total", "requests")
	c.Add(3)
	srv, err := Serve("127.0.0.1:0", reg, func() any {
		return map[string]any{"cells_done": 2, "cells_total": 5}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	body, ctype := get(t, base+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("metrics content type %q", ctype)
	}
	if !strings.Contains(body, `reqs_total{engine="test"} 3`) {
		t.Errorf("metrics body missing counter:\n%s", body)
	}

	body, ctype = get(t, base+"/healthz")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("healthz content type %q", ctype)
	}
	var h struct {
		Status string  `json:"status"`
		Uptime float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil || h.Status != "ok" {
		t.Errorf("healthz body %q (err %v)", body, err)
	}

	body, _ = get(t, base+"/progress")
	var p struct {
		Done  int `json:"cells_done"`
		Total int `json:"cells_total"`
	}
	if err := json.Unmarshal([]byte(body), &p); err != nil || p.Done != 2 || p.Total != 5 {
		t.Errorf("progress body %q (err %v)", body, err)
	}
}

func TestServeNilProgress(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body, _ := get(t, "http://"+srv.Addr()+"/progress")
	if strings.TrimSpace(body) != "{}" {
		t.Errorf("nil progress body %q, want {}", body)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:99999", NewRegistry(), nil); err == nil {
		t.Fatal("bad address must fail at Serve time")
	}
}
