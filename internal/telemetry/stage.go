package telemetry

import (
	"fmt"

	"pipette/internal/metrics"
	"pipette/internal/sim"
)

// Stage names one segment of a request's end-to-end virtual time. Stages
// are ordered roughly in the order a request visits them on its way down
// the stack; the waterfall table renders them in this order.
type Stage uint8

const (
	// StageSyscall is the VFS entry overhead charged to every request.
	StageSyscall Stage = iota
	// StageCache is time serving a request from a host-side cache (page
	// cache or the fine-grained read cache) without touching the device.
	StageCache
	// StageQueue is queueing time: admission delay a request spent waiting
	// to be dispatched (open-loop runs, armed via PreQueue) plus
	// block-layer software time — request setup, merge, and per-command
	// submission overhead.
	StageQueue
	// StageConstruct is fine-path host work: the constructor/requester
	// building the fine command and its HMB info-ring record.
	StageConstruct
	// StageRing is ring-protocol time: SQ doorbell, command fetch, and CQ
	// completion on the NVMe rings.
	StageRing
	// StageFirmware is controller firmware time including the FTL map
	// lookup before media access starts.
	StageFirmware
	// StageNAND is media time: die sense (tR) plus channel transfer.
	StageNAND
	// StageRetry is fault-recovery time: the ECC retry ladder's re-reads
	// and fine->block fallback attempts that had to be thrown away.
	StageRetry
	// StageDMA is PCIe payload movement: DMA bursts, MMIO transfers, and
	// the fine path's extraction overhead.
	StageDMA
	// StageProgram is NAND program/erase time on the write path,
	// including garbage collection the write triggered.
	StageProgram
	// StageWriteback is time an fsync/syncfs request spent flushing dirty
	// pages to the device.
	StageWriteback
	// StageCopyout is the host copy into the caller's buffer.
	StageCopyout
	// StageOther is residual host time no layer claimed; a healthy stack
	// keeps it at zero, and tests assert that.
	StageOther

	// NumStages is the number of defined stages.
	NumStages
)

var stageNames = [NumStages]string{
	"syscall", "cache", "queue", "construct", "ring", "firmware",
	"nand", "retry", "dma", "program", "writeback", "copyout", "other",
}

// String returns the stage's short name as used in tables and metric labels.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage%d", int(s))
}

// StageSeg is one attributed interval of a request: [Start, End) belongs
// to Stage. A finished request's segments are contiguous and partition
// [request start, request end] exactly — that is the conservation
// invariant.
//
// Res optionally names the concrete resource the interval was spent on —
// "nand.ch2.w5", "nvme.sq1", "pcie.dma" — refining the stage into a
// critical-path blame vector. Layers pass interned (package-constant or
// precomputed) strings so marking stays allocation-free; the empty string
// means "the stage itself" and renders under the stage name.
type StageSeg struct {
	Stage      Stage
	Res        string
	Start, End sim.Time
}

// StageAccount splits each request's end-to-end virtual time into named
// stages. It is a cursor over the request's timeline: a layer that knows
// the request has progressed to time t calls Mark(stage, t), which
// attributes the not-yet-claimed interval [cursor, t) to that stage and
// advances the cursor. Marks at or before the cursor attribute nothing —
// when device-side work overlaps (commands racing on channels), whichever
// completion is observed first claims the wall time, and later overlapped
// completions add only their tail beyond the cursor. Segments are
// therefore contiguous by construction and always sum exactly to the
// end-to-end latency, including fault paths.
//
// All methods are nil-receiver safe, so layers hold a possibly-nil
// *StageAccount and call it unconditionally; the disabled cost is one
// nil check per mark site. Like the Recorder, a StageAccount belongs to
// one single-threaded simulated system.
type StageAccount struct {
	active     bool
	suspended  int
	start      sim.Time
	cursor     sim.Time
	segs       []StageSeg
	preArmed   bool
	preArrival sim.Time

	requests uint64
	elapsed  sim.Time // sum of finished requests' end-to-end latencies
	totals   [NumStages]sim.Time
	hists    [NumStages]metrics.Histogram
	gaps     uint64 // contiguity violations observed at Finish (must stay 0)

	// Optional Registry mirror. Totals and the request count are mirrored
	// into atomic live values at Finish so a concurrent scraper never
	// reads the account's plain fields.
	live      [NumStages]*LiveHistogram
	liveTotal [NumStages]*LiveCounter
	liveReqs  *LiveCounter

	// onFinish, when set, observes every finished request's segments;
	// tests use it to assert per-request conservation.
	onFinish func(segs []StageSeg, start, end sim.Time)

	// tail, when set, receives every finished request's segments for
	// slowest-request exemplar capture. Separate from onFinish so the
	// harness's tail recorder and a test's conservation observer coexist.
	tail *TailRecorder
}

// NewStageAccount returns an empty account.
func NewStageAccount() *StageAccount { return &StageAccount{} }

// SetOnFinish installs a per-request observer invoked by Finish with the
// request's segments (valid only during the call) and its [start, end].
func (a *StageAccount) SetOnFinish(fn func(segs []StageSeg, start, end sim.Time)) {
	if a != nil {
		a.onFinish = fn
	}
}

// SetTail installs a tail recorder that observes every finished request
// (nil detaches). The harness attaches it after warmup so exemplars cover
// only the measured phase.
func (a *StageAccount) SetTail(t *TailRecorder) {
	if a != nil {
		a.tail = t
	}
}

// LastSegs exposes the most recently finished request's segments. The
// slice is valid only until the next Begin; callers that keep it (the
// cluster's per-leg blame capture) must copy. Returns nil while a request
// is open.
func (a *StageAccount) LastSegs() []StageSeg {
	if a == nil || a.active {
		return nil
	}
	return a.segs
}

// PreQueue arms the next Begin with the request's true arrival time: if
// the request then enters the stack at a later dispatch time, the span
// [arrival, dispatch) is attributed to StageQueue and the request's
// end-to-end latency is measured from arrival. This is how the open-loop
// harness makes admission-queueing delay a first-class stage while the
// conservation invariant keeps holding — the queue segment is part of the
// request's contiguous timeline, not a side channel. The arming applies
// to exactly one Begin; closed-loop callers that never arm see no change.
func (a *StageAccount) PreQueue(arrival sim.Time) {
	if a == nil {
		return
	}
	a.preArmed = true
	a.preArrival = arrival
}

// Begin opens a request at virtual time now. A request already open is
// discarded — the stack opens exactly one account scope per host request.
func (a *StageAccount) Begin(now sim.Time) {
	if a == nil {
		return
	}
	a.active = true
	a.suspended = 0
	a.start = now
	a.cursor = now
	a.segs = a.segs[:0]
	if a.preArmed {
		a.preArmed = false
		if a.preArrival < now {
			a.start = a.preArrival
			a.segs = append(a.segs, StageSeg{Stage: StageQueue, Res: ResAdmission, Start: a.preArrival, End: now})
		}
	}
}

// Suspend pauses attribution until the matching Resume: marks and
// reattributions are ignored. The VFS wraps asynchronous write-back drains
// in a suspend scope — the drained commands cost the foreground request no
// virtual time, so their device-side completion marks must not drag the
// cursor past the request's end. Suspends nest.
func (a *StageAccount) Suspend() {
	if a != nil {
		a.suspended++
	}
}

// Resume reverses one Suspend.
func (a *StageAccount) Resume() {
	if a != nil && a.suspended > 0 {
		a.suspended--
	}
}

// Mark attributes the interval from the cursor to t to stage and advances
// the cursor. Marks at or before the cursor (overlapped work already
// claimed) attribute nothing.
func (a *StageAccount) Mark(stage Stage, t sim.Time) {
	a.MarkRes(stage, t, "")
}

// MarkRes is Mark with a blame resource: the claimed interval is tagged
// with res ("nand.ch2.w5", "nvme.sq1", "pcie.dma", ...) so the request's
// segments double as a critical-path blame vector. res must be an
// interned string; adjacent segments merge only when both stage and
// resource match, so a request bouncing between dies keeps one segment
// per die visit.
func (a *StageAccount) MarkRes(stage Stage, t sim.Time, res string) {
	if a == nil || !a.active || a.suspended > 0 || t <= a.cursor {
		return
	}
	n := len(a.segs)
	if n > 0 && a.segs[n-1].Stage == stage && a.segs[n-1].Res == res && a.segs[n-1].End == a.cursor {
		a.segs[n-1].End = t
	} else {
		a.segs = append(a.segs, StageSeg{Stage: stage, Res: res, Start: a.cursor, End: t})
	}
	a.cursor = t
}

// Reattribute reassigns every already-attributed interval at or after
// `from` to stage. The fine->block fallback uses it: a failed fine
// attempt's construct/firmware/NAND/DMA time is wasted work, and the
// satellite requirement is that it lands in the retry stage.
func (a *StageAccount) Reattribute(from sim.Time, stage Stage) {
	if a == nil || !a.active || a.suspended > 0 {
		return
	}
	for i := len(a.segs) - 1; i >= 0; i-- {
		seg := &a.segs[i]
		if seg.End <= from {
			break
		}
		if seg.Start >= from {
			seg.Stage = stage
			continue
		}
		// Straddling segment: keep [Start, from) as-is, move [from, End).
		// The moved tail keeps its resource — retried work is still blamed
		// on the die/link that performed it.
		tail := StageSeg{Stage: stage, Res: seg.Res, Start: from, End: seg.End}
		seg.End = from
		rest := append([]StageSeg{tail}, a.segs[i+1:]...)
		a.segs = append(a.segs[:i+1], rest...)
		break
	}
}

// Finish closes the request at virtual time end. Any unclaimed tail
// [cursor, end) is attributed to StageOther, then per-stage totals and
// histograms absorb the request. It returns the end-to-end latency.
func (a *StageAccount) Finish(end sim.Time) sim.Time {
	if a == nil || !a.active {
		return 0
	}
	a.Mark(StageOther, end)
	a.active = false

	var perStage [NumStages]sim.Time
	at := a.start
	for _, seg := range a.segs {
		if seg.Start != at {
			a.gaps++
		}
		perStage[seg.Stage] += seg.End - seg.Start
		at = seg.End
	}
	if at != end {
		a.gaps++
	}
	a.requests++
	a.elapsed += end - a.start
	for s := Stage(0); s < NumStages; s++ {
		if perStage[s] == 0 {
			continue
		}
		a.totals[s] += perStage[s]
		a.hists[s].Observe(perStage[s])
		if a.live[s] != nil {
			a.live[s].Observe(perStage[s].Micros())
		}
		if a.liveTotal[s] != nil {
			a.liveTotal[s].Add(uint64(perStage[s]))
		}
	}
	if a.liveReqs != nil {
		a.liveReqs.Inc()
	}
	if a.onFinish != nil {
		a.onFinish(a.segs, a.start, end)
	}
	a.tail.Observe(a.segs, a.start, end)
	return end - a.start
}

// Active reports whether a request scope is open.
func (a *StageAccount) Active() bool { return a != nil && a.active }

// Cursor reports the open request's attribution frontier: the end of the
// last claimed interval. Layers that may need to reattribute work they
// are about to cause (ECC retries, fallbacks) capture it first so the
// Reattribute covers exactly that work.
func (a *StageAccount) Cursor() sim.Time {
	if a == nil {
		return 0
	}
	return a.cursor
}

// Requests reports finished request scopes.
func (a *StageAccount) Requests() uint64 {
	if a == nil {
		return 0
	}
	return a.requests
}

// Elapsed reports the sum of finished requests' end-to-end latencies.
func (a *StageAccount) Elapsed() sim.Time {
	if a == nil {
		return 0
	}
	return a.elapsed
}

// Total reports cumulative time attributed to one stage.
func (a *StageAccount) Total(s Stage) sim.Time {
	if a == nil {
		return 0
	}
	return a.totals[s]
}

// Sum reports the total attributed time across all stages. Conservation
// means Sum() == Elapsed() at all times between requests.
func (a *StageAccount) Sum() sim.Time {
	if a == nil {
		return 0
	}
	var t sim.Time
	for _, v := range a.totals {
		t += v
	}
	return t
}

// Gaps reports contiguity violations seen at Finish; it must stay zero.
func (a *StageAccount) Gaps() uint64 {
	if a == nil {
		return 0
	}
	return a.gaps
}

// StageHistogram returns the per-request time distribution of one stage
// (only requests where the stage was non-zero are observed).
func (a *StageAccount) StageHistogram(s Stage) *metrics.Histogram {
	if a == nil {
		return nil
	}
	return &a.hists[s]
}

// StageSnapshot is a copyable summary of an account: the raw material of
// waterfall tables and the run-report export.
type StageSnapshot struct {
	Requests uint64
	Elapsed  sim.Time
	Totals   [NumStages]sim.Time
	Hists    [NumStages]metrics.Histogram
}

// Snapshot copies the account's aggregate state.
func (a *StageAccount) Snapshot() StageSnapshot {
	if a == nil {
		return StageSnapshot{}
	}
	return StageSnapshot{
		Requests: a.requests,
		Elapsed:  a.elapsed,
		Totals:   a.totals,
		Hists:    a.hists,
	}
}

// Sum reports the total attributed time across all stages.
func (s *StageSnapshot) Sum() sim.Time {
	var t sim.Time
	for _, v := range s.Totals {
		t += v
	}
	return t
}

// Merge folds other into s (used when aggregating across runs).
func (s *StageSnapshot) Merge(other *StageSnapshot) {
	s.Requests += other.Requests
	s.Elapsed += other.Elapsed
	for i := range s.Totals {
		s.Totals[i] += other.Totals[i]
		s.Hists[i].Merge(&other.Hists[i])
	}
}

// Waterfall renders the per-stage breakdown: where the run's request time
// went, stage by stage in pipeline order. share% is of total end-to-end
// time, so the column sums to 100 — the table is the conservation
// invariant made visible.
func (s *StageSnapshot) Waterfall() *metrics.Table {
	t := &metrics.Table{Header: []string{
		"stage", "total(ms)", "share%", "reqs", "mean(us)", "p99(us)", "max(us)"}}
	for st := Stage(0); st < NumStages; st++ {
		if s.Totals[st] == 0 {
			continue
		}
		h := &s.Hists[st]
		share := 0.0
		if s.Elapsed > 0 {
			share = 100 * float64(s.Totals[st]) / float64(s.Elapsed)
		}
		t.AddRow(st.String(),
			fmt.Sprintf("%.3f", s.Totals[st].Millis()),
			fmt.Sprintf("%.1f", share),
			fmt.Sprintf("%d", h.Count()),
			fmt.Sprintf("%.2f", h.Mean().Micros()),
			fmt.Sprintf("%.2f", h.Quantile(0.99).Micros()),
			fmt.Sprintf("%.2f", h.Max().Micros()))
	}
	t.AddRow("total",
		fmt.Sprintf("%.3f", s.Sum().Millis()),
		"100.0",
		fmt.Sprintf("%d", s.Requests),
		"", "", "")
	return t
}

// Waterfall renders the live account's breakdown table.
func (a *StageAccount) Waterfall() *metrics.Table {
	snap := a.Snapshot()
	return snap.Waterfall()
}

// stageBoundsUs are the LiveHistogram bucket bounds (microseconds) used
// for the Registry mirror: wide log-ish coverage from sub-µs host costs
// to multi-ms device stalls.
var stageBoundsUs = []float64{
	0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
}

// BindRegistry mirrors the account into reg: a per-stage histogram family
// (microseconds) observed at each Finish, cumulative per-stage time, and
// the request count — so the conservation sum is visible on /metrics. The
// mirrored series are atomic live values; a concurrent scraper never
// touches the account's own state. Extra labels are appended to every
// series, letting multi-device systems (one account per cluster shard)
// share the families without colliding.
func (a *StageAccount) BindRegistry(reg *Registry, extra ...Label) {
	if a == nil || reg == nil {
		return
	}
	labels := func(l Label) []Label { return append([]Label{l}, extra...) }
	for s := Stage(0); s < NumStages; s++ {
		a.live[s] = reg.Histogram("pipette_stage_us",
			"Per-request time attributed to each request stage, in microseconds.",
			stageBoundsUs, labels(L("stage", s.String()))...)
		a.liveTotal[s] = reg.Counter("pipette_stage_ns_total",
			"Cumulative virtual time attributed to each request stage, in nanoseconds.",
			labels(L("stage", s.String()))...)
	}
	a.liveReqs = reg.Counter("pipette_stage_requests_total",
		"Requests finished by the stage account.", extra...)
}
