package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is the unified metrics surface of the system: every layer —
// SSD counters, cache hit ratios, KV store activity, fault/recovery
// ledgers, bench pool utilization — registers named series here, and one
// encoder renders them all in Prometheus/OpenMetrics text format for the
// -listen HTTP endpoint.
//
// Two kinds of series coexist:
//
//   - Owned values (LiveCounter, LiveGauge, LiveHistogram) are atomic
//     words the instrumented code writes from any goroutine; a scrape
//     reads them without locks, so the deterministic simulator is never
//     perturbed by an attached scraper.
//   - Collector funcs (CounterFunc, GaugeFunc) are read at scrape time;
//     the registrant guarantees thread safety (pipette.System wraps its
//     getters in the system lock).
//
// Series are grouped into families by name; every series of a family
// shares its help string and kind. Registration order is preserved per
// family, and the encoder sorts families by name, so exposition output is
// deterministic. Registering the same name with a different kind or the
// same name+labels twice panics — both are programmer errors, like
// Table.AddRow arity.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	consts   []Label
}

// Label is one name="value" pair attached to a series.
type Label struct {
	Key, Value string
}

// L builds a Label; it keeps registration call sites compact.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series []*series
	byKey  map[string]*series
}

// series is one labelled time series. Exactly one of the value fields is
// set, matching the family kind and registration method.
type series struct {
	labels []Label

	counter     *LiveCounter
	gauge       *LiveGauge
	hist        *LiveHistogram
	counterFunc func() uint64
	gaugeFunc   func() float64
}

// LiveCounter is a monotonically increasing series value. Add is one
// atomic add; scraping reads the word without coordination.
type LiveCounter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *LiveCounter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *LiveCounter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *LiveCounter) Load() uint64 { return c.v.Load() }

// LiveGauge is a settable series value (float64 behind atomic bits).
type LiveGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *LiveGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (compare-and-swap loop; gauges are updated rarely).
func (g *LiveGauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Load returns the current value.
func (g *LiveGauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// LiveHistogram is a fixed-bucket histogram with atomic cells, safe to
// Observe from the simulator thread while a scraper encodes it. Bounds are
// upper bucket edges in ascending order; an implicit +Inf bucket catches
// the tail.
type LiveHistogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1, last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newLiveHistogram(bounds []float64) *LiveHistogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &LiveHistogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *LiveHistogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count reports total samples.
func (h *LiveHistogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of all samples.
func (h *LiveHistogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// NewRegistry creates a registry. constLabels are appended to every series
// (e.g. engine="pipette").
func NewRegistry(constLabels ...Label) *Registry {
	return &Registry{
		families: make(map[string]*family),
		consts:   constLabels,
	}
}

// Counter registers (or extends) a counter family and returns the series'
// live value.
func (r *Registry) Counter(name, help string, labels ...Label) *LiveCounter {
	c := &LiveCounter{}
	r.add(name, help, kindCounter, &series{labels: labels, counter: c})
	return c
}

// Gauge registers a gauge family series and returns its live value.
func (r *Registry) Gauge(name, help string, labels ...Label) *LiveGauge {
	g := &LiveGauge{}
	r.add(name, help, kindGauge, &series{labels: labels, gauge: g})
	return g
}

// Histogram registers a histogram series over the bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *LiveHistogram {
	h := newLiveHistogram(bounds)
	r.add(name, help, kindHistogram, &series{labels: labels, hist: h})
	return h
}

// CounterFunc registers a counter whose value is read at scrape time. fn
// must be safe to call from the scraper goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.add(name, help, kindCounter, &series{labels: labels, counterFunc: fn})
}

// GaugeFunc registers a gauge whose value is read at scrape time. fn must
// be safe to call from the scraper goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, kindGauge, &series{labels: labels, gaugeFunc: fn})
}

func (r *Registry) add(name, help string, k kind, s *series) {
	key := labelKey(s.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, byKey: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, k))
	}
	if _, dup := f.byKey[key]; dup {
		panic(fmt.Sprintf("telemetry: duplicate series %q{%s}", name, key))
	}
	f.byKey[key] = s
	f.series = append(f.series, s)
}

// labelKey is the canonical identity of a label set (sorted by key).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// WritePrometheus encodes every family in Prometheus text exposition
// format (text/plain; version=0.0.4), families sorted by name, series in
// registration order. Label values are escaped per the spec: backslash,
// double quote, and newline.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	consts := r.consts
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		// Snapshot the series slice under the lock; values are atomic or
		// caller-safe funcs, so encoding proceeds without it.
		r.mu.RLock()
		series := make([]*series, len(f.series))
		copy(series, f.series)
		r.mu.RUnlock()
		for _, s := range series {
			labels := append(append([]Label{}, s.labels...), consts...)
			switch {
			case s.hist != nil:
				writeHistogram(&b, f.name, labels, s.hist)
			case s.counter != nil:
				writeSample(&b, f.name, labels, float64(s.counter.Load()))
			case s.counterFunc != nil:
				writeSample(&b, f.name, labels, float64(s.counterFunc()))
			case s.gauge != nil:
				writeSample(&b, f.name, labels, s.gauge.Load())
			case s.gaugeFunc != nil:
				writeSample(&b, f.name, labels, s.gaugeFunc())
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(b *strings.Builder, name string, labels []Label, h *LiveHistogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		writeSample(b, name+"_bucket", append(labels, Label{"le", formatValue(bound)}), float64(cum))
	}
	// The +Inf bucket equals _count by definition — even for an empty
	// histogram, which must still expose all three sample families.
	count := h.Count()
	writeSample(b, name+"_bucket", append(labels, Label{"le", "+Inf"}), float64(count))
	writeSample(b, name+"_sum", labels, h.Sum())
	writeSample(b, name+"_count", labels, float64(count))
}

func writeSample(b *strings.Builder, name string, labels []Label, v float64) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// formatValue renders a sample value; integral values print without an
// exponent so counters read naturally.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double quote, and line feed.
func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// escapeHelp escapes a help string: backslash and line feed (quotes are
// legal in help text).
func escapeHelp(v string) string { return helpEscaper.Replace(v) }
