package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server is the live observability endpoint a CLI's -listen flag starts:
//
//	/metrics  - the Registry in Prometheus text exposition format
//	/healthz  - liveness JSON (status, uptime)
//	/progress - caller-supplied progress JSON (per-cell bench completion,
//	            per-workload request counts)
//
// The server runs entirely on scraper goroutines; the simulated run never
// blocks on it. Registry values are atomics or lock-guarded getters, so a
// scraper polling at any rate leaves the run's output byte-identical.
type Server struct {
	reg      *Registry
	progress func() any
	started  time.Time

	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability server on addr (e.g. ":9090" or
// "127.0.0.1:0"). progress may be nil; when set, its return value is
// marshalled as the /progress response. The listener is bound before
// returning, so a bad address fails fast; requests are then served in the
// background until Close.
func Serve(addr string, reg *Registry, progress func() any) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{reg: reg, progress: progress, started: time.Now(), ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/progress", s.handleProgress)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr reports the bound address ("127.0.0.1:43213"), useful with port 0.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.progress == nil {
		w.Write([]byte("{}\n")) //nolint:errcheck
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(s.progress()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
