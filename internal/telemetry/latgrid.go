package telemetry

import "pipette/internal/sim"

// latGridBoundsUs is the fixed latency-bucket ladder (microseconds) for
// the time × latency heatmap. The last implicit row is overflow
// (>= the final bound).
var latGridBoundsUs = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
}

// latGridMaxBins bounds the number of time bins; when a run outgrows
// them, the bin width doubles and adjacent bins merge — the same
// resolution-doubling scheme resource.Tracker uses, so any run fits with
// bounded memory and no knob.
const latGridMaxBins = 128

// defaultLatGridBin is the starting time-bin width.
const defaultLatGridBin = 64 * sim.Microsecond

// LatencyGrid accumulates a completion-time × latency-bucket heatmap: each
// finished request increments one cell keyed by (completion time bin,
// latency bucket). The grid is fed from the completion stream in virtual
// time, so it is deterministic at any worker count. A LatencyGrid belongs
// to one single-threaded simulated system.
type LatencyGrid struct {
	origin   sim.Time
	binWidth sim.Time
	used     int // time bins touched (highest + 1)
	counts   [][]uint64
	total    uint64
}

// NewLatencyGrid returns an empty grid whose time axis starts at origin
// (the measured-phase start; completions before it clamp to bin 0).
func NewLatencyGrid(origin sim.Time) *LatencyGrid {
	rows := len(latGridBoundsUs) + 1 // + overflow row
	counts := make([][]uint64, rows)
	for i := range counts {
		counts[i] = make([]uint64, latGridMaxBins)
	}
	return &LatencyGrid{origin: origin, binWidth: defaultLatGridBin, counts: counts}
}

// latBucket maps a latency to its ladder row.
func latBucket(lat sim.Time) int {
	us := lat.Micros()
	for i, b := range latGridBoundsUs {
		if us < b {
			return i
		}
	}
	return len(latGridBoundsUs)
}

// Observe records one completion at virtual time done with end-to-end
// latency lat.
func (g *LatencyGrid) Observe(done sim.Time, lat sim.Time) {
	if g == nil {
		return
	}
	at := done - g.origin
	if at < 0 {
		at = 0
	}
	for at/g.binWidth >= latGridMaxBins {
		g.rescale()
	}
	bin := int(at / g.binWidth)
	g.counts[latBucket(lat)][bin]++
	if bin+1 > g.used {
		g.used = bin + 1
	}
	g.total++
}

// rescale doubles the bin width, merging adjacent bin pairs in place.
func (g *LatencyGrid) rescale() {
	for _, row := range g.counts {
		for i := 0; i < latGridMaxBins/2; i++ {
			row[i] = row[2*i] + row[2*i+1]
		}
		for i := latGridMaxBins / 2; i < latGridMaxBins; i++ {
			row[i] = 0
		}
	}
	g.binWidth *= 2
	g.used = (g.used + 1) / 2
}

// HeatSnapshot is the exportable heatmap: Counts[row][bin] is the number
// of completions in latency row `row` (rows follow BoundsUs, with one
// trailing overflow row) during time bin `bin` ([Origin + bin*Bin,
// Origin + (bin+1)*Bin) in virtual time). Trailing empty time bins are
// trimmed.
type HeatSnapshot struct {
	OriginNs int64      `json:"origin_ns"`
	BinNs    int64      `json:"bin_ns"`
	BoundsUs []float64  `json:"bounds_us"`
	Counts   [][]uint64 `json:"counts"`
	Total    uint64     `json:"total"`
}

// Snapshot copies the grid's state. Returns nil when nothing was observed.
func (g *LatencyGrid) Snapshot() *HeatSnapshot {
	if g == nil || g.total == 0 {
		return nil
	}
	snap := &HeatSnapshot{
		OriginNs: int64(g.origin),
		BinNs:    int64(g.binWidth),
		BoundsUs: latGridBoundsUs,
		Total:    g.total,
		Counts:   make([][]uint64, len(g.counts)),
	}
	for i, row := range g.counts {
		snap.Counts[i] = append([]uint64(nil), row[:g.used]...)
	}
	return snap
}
