package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRegistryCounterGauge(t *testing.T) {
	r := NewRegistry(L("engine", "pipette"))
	c := r.Counter("ssd_block_reads_total", "block-interface read commands")
	c.Add(41)
	c.Inc()
	g := r.Gauge("cache_hit_ratio", "page cache hit ratio", L("cache", "page"))
	g.Set(0.75)
	r.GaugeFunc("threshold", "adaptive admission threshold", func() float64 { return 96 })
	r.CounterFunc("kv_puts_total", "store puts", func() uint64 { return 7 })

	out := scrape(t, r)
	for _, want := range []string{
		"# TYPE ssd_block_reads_total counter",
		`ssd_block_reads_total{engine="pipette"} 42`,
		"# TYPE cache_hit_ratio gauge",
		`cache_hit_ratio{cache="page",engine="pipette"} 0.75`,
		`threshold{engine="pipette"} 96`,
		`kv_puts_total{engine="pipette"} 7`,
		"# HELP ssd_block_reads_total block-interface read commands",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryFamiliesSorted pins deterministic output: families appear in
// name order regardless of registration order.
func TestRegistryFamiliesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "")
	r.Counter("aaa_total", "")
	out := scrape(t, r)
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Fatalf("families not sorted by name:\n%s", out)
	}
	if scrape(t, r) != out {
		t.Fatal("repeated scrapes differ")
	}
}

// TestRegistryLabelEscaping covers the exposition-format escapes: quotes,
// backslashes, and newlines in label values must round-trip escaped, and
// help strings escape backslash + newline only.
func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("weird", "help with \\ and\nnewline", L("path", `C:\tmp\"x"`+"\nline2"))
	g.Set(1)
	out := scrape(t, r)
	if want := `weird{path="C:\\tmp\\\"x\"\nline2"} 1`; !strings.Contains(out, want) {
		t.Errorf("label escaping wrong: missing %q in:\n%s", want, out)
	}
	if want := `# HELP weird help with \\ and\nnewline`; !strings.Contains(out, want) {
		t.Errorf("help escaping wrong: missing %q in:\n%s", want, out)
	}
	if strings.Count(out, "\n") != strings.Count(out, "\n") || strings.Contains(strings.TrimSuffix(out, "\n"), "line2\n") {
		t.Errorf("raw newline leaked into exposition:\n%q", out)
	}
}

// TestRegistryEmptyHistogram: an empty histogram still exposes every
// bucket, a zero sum, and a zero count — scrapers treat a missing _count
// as a broken series.
func TestRegistryEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_us", "latency", []float64{1, 10, 100})
	out := scrape(t, r)
	for _, want := range []string{
		"# TYPE lat_us histogram",
		`lat_us_bucket{le="1"} 0`,
		`lat_us_bucket{le="10"} 0`,
		`lat_us_bucket{le="100"} 0`,
		`lat_us_bucket{le="+Inf"} 0`,
		"lat_us_sum 0",
		"lat_us_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("empty histogram missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_us", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 5000} {
		h.Observe(v)
	}
	out := scrape(t, r)
	for _, want := range []string{
		`lat_us_bucket{le="1"} 2`, // 0.5 and the le-boundary 1
		`lat_us_bucket{le="10"} 3`,
		`lat_us_bucket{le="100"} 4`,
		`lat_us_bucket{le="+Inf"} 5`,
		"lat_us_sum 5056.5",
		"lat_us_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering gauge over counter family did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestRegistryDuplicateSeriesPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", L("a", "1"))
	r.Counter("m", "", L("a", "2")) // distinct labels: fine
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate series did not panic")
		}
	}()
	r.Counter("m", "", L("a", "1"))
}

// TestRegistryConcurrentScrape hammers the registry from writer and
// scraper goroutines; run under -race this is the proof that an attached
// scraper cannot perturb (or be corrupted by) the instrumented run.
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	h := r.Histogram("lat", "", []float64{1, 2, 4, 8})
	g := r.Gauge("depth", "")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 0; i < 10_000; i++ {
		c.Inc()
		g.Set(float64(i))
		h.Observe(float64(i % 10))
	}
	close(stop)
	wg.Wait()
	out := scrape(t, r)
	if !strings.Contains(out, "ops_total 10000") {
		t.Errorf("final scrape lost writes:\n%s", out)
	}
	if !strings.Contains(out, "lat_count 10000") {
		t.Errorf("final scrape lost histogram samples:\n%s", out)
	}
}
