package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"

	"pipette/internal/sim"
)

// FlightRecorder is the post-mortem capture of a run: a fixed-size ring
// of the most recent spans, instants, and annotations. Unlike Recorder it
// never grows — a multi-hour faulted run costs the same memory as a unit
// test — and its value is realized only when something goes wrong: the
// CLI dumps the ring as annotated JSON when a request dies with
// ErrUncorrectable or the harness hits any fatal error, so the last
// moments before the failure (which NAND die, which retry step, which
// fallback) are on disk for debugging.
//
// It implements Tracer; install it with System.SetTracer, or alongside a
// Recorder via Tee. A mutex guards the ring: spans arrive from the
// simulator thread while Dump may be called from a signal/error path.
type FlightRecorder struct {
	mu      sync.Mutex
	entries []flightEntry
	next    uint64 // total entries ever pushed; ring slot is next % cap
}

// flightEntry is one captured event; Kind distinguishes spans, instants,
// request boundaries, and caller annotations.
type flightEntry struct {
	Seq     uint64  `json:"seq"`
	Kind    string  `json:"kind"` // span | instant | request | note
	Track   string  `json:"track,omitempty"`
	Name    string  `json:"name"`
	StartUs float64 `json:"start_us"`
	DurUs   float64 `json:"dur_us,omitempty"`
}

// DefaultFlightEvents is the default ring capacity: enough to hold the
// full stack traversal of the last few hundred requests.
const DefaultFlightEvents = 4096

// NewFlightRecorder creates a recorder holding the last n events
// (n <= 0 selects DefaultFlightEvents).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	return &FlightRecorder{entries: make([]flightEntry, n)}
}

// Enabled implements Tracer.
func (f *FlightRecorder) Enabled() bool { return true }

// BeginRequest implements Tracer.
func (f *FlightRecorder) BeginRequest(name string, start sim.Time) {
	f.push(flightEntry{Kind: "request", Track: TrackVFS, Name: name, StartUs: start.Micros()})
}

// EndRequest implements Tracer. Request completion is implied by the next
// BeginRequest; the ring records only the boundary events it saw.
func (f *FlightRecorder) EndRequest(sim.Time) {}

// Span implements Tracer.
func (f *FlightRecorder) Span(track, name string, start, end sim.Time) {
	if end < start {
		end = start
	}
	f.push(flightEntry{Kind: "span", Track: track, Name: name,
		StartUs: start.Micros(), DurUs: (end - start).Micros()})
}

// Instant implements Tracer.
func (f *FlightRecorder) Instant(track, name string, at sim.Time) {
	f.push(flightEntry{Kind: "instant", Track: track, Name: name, StartUs: at.Micros()})
}

// Note records a caller annotation — e.g. "uncorrectable read at request
// 8124" — so the dump carries the context the error path had.
func (f *FlightRecorder) Note(name string, at sim.Time) {
	f.push(flightEntry{Kind: "note", Name: name, StartUs: at.Micros()})
}

func (f *FlightRecorder) push(e flightEntry) {
	f.mu.Lock()
	e.Seq = f.next
	f.entries[f.next%uint64(len(f.entries))] = e
	f.next++
	f.mu.Unlock()
}

// Len reports how many entries the ring currently holds.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.next < uint64(len(f.entries)) {
		return int(f.next)
	}
	return len(f.entries)
}

// flightDump is the JSON document Dump writes.
type flightDump struct {
	Reason   string        `json:"reason"`
	AtUs     float64       `json:"at_us"`
	Captured int           `json:"captured"`
	Dropped  uint64        `json:"dropped"` // events that aged out of the ring
	Events   []flightEntry `json:"events"`  // oldest first
}

// Dump writes the ring as an annotated JSON document: the dump reason and
// virtual timestamp, how many older events aged out, and the surviving
// events oldest-first. The recorder keeps recording after a dump.
func (f *FlightRecorder) Dump(w io.Writer, reason string, now sim.Time) error {
	f.mu.Lock()
	n := uint64(len(f.entries))
	kept := f.next
	if kept > n {
		kept = n
	}
	events := make([]flightEntry, 0, kept)
	for i := uint64(0); i < kept; i++ {
		events = append(events, f.entries[(f.next-kept+i)%n])
	}
	dropped := f.next - kept
	f.mu.Unlock()

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(flightDump{
		Reason:   reason,
		AtUs:     now.Micros(),
		Captured: int(kept),
		Dropped:  dropped,
		Events:   events,
	}); err != nil {
		return err
	}
	return bw.Flush()
}

// multiTracer fans events out to several tracers.
type multiTracer struct {
	trs []Tracer
}

// Tee combines tracers: every event goes to all of them. Nop and nil
// members are dropped; zero live members collapses back to Nop, one
// returns it unwrapped, so the hot path never pays for an empty tee.
func Tee(trs ...Tracer) Tracer {
	live := make([]Tracer, 0, len(trs))
	for _, tr := range trs {
		if tr == nil || tr == Nop() {
			continue
		}
		live = append(live, tr)
	}
	switch len(live) {
	case 0:
		return Nop()
	case 1:
		return live[0]
	}
	return &multiTracer{trs: live}
}

func (m *multiTracer) Enabled() bool { return true }

func (m *multiTracer) BeginRequest(name string, start sim.Time) {
	for _, tr := range m.trs {
		tr.BeginRequest(name, start)
	}
}

func (m *multiTracer) EndRequest(end sim.Time) {
	for _, tr := range m.trs {
		tr.EndRequest(end)
	}
}

func (m *multiTracer) Span(track, name string, start, end sim.Time) {
	for _, tr := range m.trs {
		tr.Span(track, name, start, end)
	}
}

func (m *multiTracer) Instant(track, name string, at sim.Time) {
	for _, tr := range m.trs {
		tr.Instant(track, name, at)
	}
}
