package telemetry

import (
	"testing"

	"pipette/internal/sim"
)

// BenchmarkNopSpan measures the cost of an instrumented call site when
// tracing is off: one interface call into the no-op tracer. This is the
// per-phase overhead every layer pays; it must stay in the
// single-nanosecond range so disabled tracing is free relative to the
// simulator's own work (see the system-level benchmark in the repo root).
func BenchmarkNopSpan(b *testing.B) {
	tr := Nop()
	for i := 0; i < b.N; i++ {
		tr.Span(TrackSSD, "read.nand", sim.Time(i), sim.Time(i+10))
	}
}

// BenchmarkRecorderSpan measures the recording path for comparison.
func BenchmarkRecorderSpan(b *testing.B) {
	r := NewRecorder()
	for i := 0; i < b.N; i++ {
		r.Span(TrackSSD, "read.nand", sim.Time(i), sim.Time(i+10))
	}
}
