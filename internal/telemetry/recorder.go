package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"pipette/internal/metrics"
	"pipette/internal/sim"
)

// event is one recorded trace entry.
type event struct {
	track   string
	name    string
	start   sim.Time
	dur     sim.Time
	req     uint64
	instant bool
}

// DefaultMaxEvents bounds the recorded event log (~30 MB of JSON). Past the
// cap, events are dropped but phase histograms keep accumulating, so the
// breakdown table stays exact over the whole run.
const DefaultMaxEvents = 1 << 18

// Recorder implements Tracer: it collects spans for Chrome-trace export and
// folds every span into a per-phase latency histogram. Not safe for
// concurrent use.
type Recorder struct {
	maxEvents int
	events    []event
	dropped   uint64

	hists     map[string]*metrics.Histogram
	histOrder []string

	reqID    uint64
	reqName  string
	reqStart sim.Time
	inReq    bool
}

// NewRecorder creates a recorder with the default event cap.
func NewRecorder() *Recorder {
	return &Recorder{
		maxEvents: DefaultMaxEvents,
		hists:     make(map[string]*metrics.Histogram),
	}
}

// SetMaxEvents overrides the event cap (0 keeps histograms only).
func (r *Recorder) SetMaxEvents(n int) { r.maxEvents = n }

// Enabled implements Tracer.
func (r *Recorder) Enabled() bool { return true }

// BeginRequest implements Tracer.
func (r *Recorder) BeginRequest(name string, start sim.Time) {
	r.reqID++
	r.reqName = name
	r.reqStart = start
	r.inReq = true
}

// EndRequest implements Tracer.
func (r *Recorder) EndRequest(end sim.Time) {
	if !r.inReq {
		return
	}
	r.Span(TrackVFS, r.reqName, r.reqStart, end)
	r.inReq = false
}

// Span implements Tracer.
func (r *Recorder) Span(track, name string, start, end sim.Time) {
	if end < start {
		end = start
	}
	r.observe(track, name, end-start)
	r.push(event{track: track, name: name, start: start, dur: end - start, req: r.curReq()})
}

// Instant implements Tracer.
func (r *Recorder) Instant(track, name string, at sim.Time) {
	r.push(event{track: track, name: name, start: at, req: r.curReq(), instant: true})
}

func (r *Recorder) curReq() uint64 {
	if r.inReq {
		return r.reqID
	}
	return 0
}

func (r *Recorder) push(e event) {
	if len(r.events) >= r.maxEvents {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

func (r *Recorder) observe(track, name string, d sim.Time) {
	key := track + "/" + name
	h, ok := r.hists[key]
	if !ok {
		h = &metrics.Histogram{}
		r.hists[key] = h
		r.histOrder = append(r.histOrder, key)
	}
	h.Observe(d)
}

// Events reports recorded (non-dropped) events.
func (r *Recorder) Events() int { return len(r.events) }

// Dropped reports events discarded past the cap.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Requests reports completed request scopes.
func (r *Recorder) Requests() uint64 { return r.reqID }

// PhaseHistogram returns the histogram of one "track/name" phase, or nil.
func (r *Recorder) PhaseHistogram(key string) *metrics.Histogram { return r.hists[key] }

// collapseTrack folds per-instance tracks into one phase family for the
// breakdown table: "nand/d12" -> "nand/d*", "nand/ch0" -> "nand/ch*".
func collapseTrack(track string) string {
	end := len(track)
	for end > 0 && track[end-1] >= '0' && track[end-1] <= '9' {
		end--
	}
	if end == len(track) || end == 0 {
		return track
	}
	return track[:end] + "*"
}

// Breakdown aggregates the per-phase histograms into a latency table
// (count, mean, p50, p99, max in microseconds). Per-die and per-channel
// NAND tracks are merged into one row per phase via Histogram.Merge, so 64
// dies do not become 64 rows.
func (r *Recorder) Breakdown() *metrics.Table {
	merged := make(map[string]*metrics.Histogram)
	var order []string
	for _, key := range r.histOrder {
		slash := strings.LastIndexByte(key, '/')
		ckey := collapseTrack(key[:slash]) + key[slash:]
		h, ok := merged[ckey]
		if !ok {
			h = &metrics.Histogram{}
			merged[ckey] = h
			order = append(order, ckey)
		}
		h.Merge(r.hists[key])
	}
	t := &metrics.Table{Header: []string{"phase", "count", "mean(us)", "p50(us)", "p99(us)", "max(us)"}}
	for _, key := range order {
		h := merged[key]
		t.AddRow(key,
			fmt.Sprintf("%d", h.Count()),
			fmt.Sprintf("%.2f", h.Mean().Micros()),
			fmt.Sprintf("%.2f", h.Quantile(0.5).Micros()),
			fmt.Sprintf("%.2f", h.Quantile(0.99).Micros()),
			fmt.Sprintf("%.2f", h.Max().Micros()))
	}
	return t
}

// --- Chrome trace-event export --------------------------------------------

// traceEvent is the JSON shape of one Chrome trace event; see the Trace
// Event Format spec (the subset Perfetto's legacy importer accepts).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// trackRank orders tracks host-side first, device-side last, matching the
// request's journey down the stack.
func trackRank(track string) int {
	switch {
	case track == TrackVFS:
		return 0
	case track == TrackPageCache:
		return 1
	case track == TrackFine:
		return 2
	case track == TrackBlock:
		return 3
	case track == TrackNVMe:
		return 4
	case track == TrackSSD:
		return 5
	case track == TrackFTL:
		return 6
	case strings.HasPrefix(track, "nand/ch"):
		return 8
	case strings.HasPrefix(track, "nand/"):
		return 7
	default:
		return 9
	}
}

// WriteChromeTrace streams the recorded events as Chrome trace-event JSON
// ({"traceEvents": [...]}); load the file in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Tracks become named threads of one process; span
// timestamps are virtual-time microseconds.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}

	// Assign tids in first-seen order; metadata names and orders the tracks.
	tids := make(map[string]int)
	var tracks []string
	for _, e := range r.events {
		if _, ok := tids[e.track]; !ok {
			tids[e.track] = len(tracks) + 1
			tracks = append(tracks, e.track)
		}
	}
	first := true
	emit := func(ev traceEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	for _, track := range tracks {
		if err := emit(traceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[track],
			Args: map[string]any{"name": track}}); err != nil {
			return err
		}
		if err := emit(traceEvent{Name: "thread_sort_index", Ph: "M", Pid: 1, Tid: tids[track],
			Args: map[string]any{"sort_index": trackRank(track)}}); err != nil {
			return err
		}
	}
	if err := emit(traceEvent{Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "pipette (virtual time)"}}); err != nil {
		return err
	}

	for _, e := range r.events {
		ev := traceEvent{
			Name: e.name,
			Ts:   e.start.Micros(),
			Pid:  1,
			Tid:  tids[e.track],
		}
		if e.req != 0 {
			ev.Args = map[string]any{"req": e.req}
		}
		if e.instant {
			ev.Ph = "i"
			ev.S = "t"
		} else {
			ev.Ph = "X"
			dur := e.dur.Micros()
			ev.Dur = &dur
		}
		if err := emit(ev); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, `],"otherData":{"droppedEvents":%d}}`, r.dropped); err != nil {
		return err
	}
	return bw.Flush()
}
