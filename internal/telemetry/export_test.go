package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pipette/internal/sim"
)

// TestExportsFlushOnMidRunError is the regression test for the truncated-
// artifact bug: a run that errors halfway must still leave complete,
// parseable trace JSON and stats CSV covering the samples collected so
// far — exactly what the deferred Close in the CLIs now guarantees.
func TestExportsFlushOnMidRunError(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	statsPath := filepath.Join(dir, "stats.csv")

	rec := NewRecorder()
	sampler, err := NewSampler(10*sim.Microsecond, []Probe{
		GaugeProbe("ops", func() float64 { return 1 }),
	})
	if err != nil {
		t.Fatal(err)
	}

	var exports Exports
	if err := exports.AddTrace(tracePath, rec); err != nil {
		t.Fatal(err)
	}
	if err := exports.AddCSV(statsPath, sampler); err != nil {
		t.Fatal(err)
	}

	// Simulated experiment: 100 requests planned, dies at request 40.
	runErr := func() (err error) {
		defer exports.Close()
		for i := 0; i < 100; i++ {
			now := sim.Time(i) * 25 * sim.Microsecond
			rec.BeginRequest("read", now)
			rec.Span(TrackSSD, "exec", now, now+sim.Microsecond)
			rec.EndRequest(now + 2*sim.Microsecond)
			sampler.Tick(now)
			if i == 40 {
				return errors.New("injected mid-run failure")
			}
		}
		return nil
	}()
	if runErr == nil {
		t.Fatal("harness bug: injected failure did not surface")
	}

	// The trace must be a complete JSON document with the 41 requests'
	// spans, not a truncated or empty file.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace after mid-run error is not valid JSON: %v\n%s", err, raw)
	}
	if len(doc.TraceEvents) < 41 {
		t.Fatalf("trace has %d events, want the full partial run", len(doc.TraceEvents))
	}

	// The CSV must parse and carry every sampled row up to the failure.
	f, err := os.Open(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("stats CSV after mid-run error is unreadable: %v", err)
	}
	if len(rows) != 1+sampler.Rows() || len(rows) < 10 {
		t.Fatalf("stats CSV has %d rows, want header + %d samples", len(rows), sampler.Rows())
	}
}

func TestExportsCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	var exports Exports
	calls := 0
	if err := exports.Add(filepath.Join(dir, "out.txt"), func(w io.Writer) error {
		calls++
		_, err := w.Write([]byte("done\n"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := exports.Close(); err != nil {
		t.Fatal(err)
	}
	if err := exports.Close(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("writer invoked %d times, want 1", calls)
	}
}

func TestExportsBadPathFailsFast(t *testing.T) {
	var exports Exports
	err := exports.Add(filepath.Join(t.TempDir(), "no", "such", "dir", "x.json"), func(w io.Writer) error { return nil })
	if err == nil {
		t.Fatal("Add with an uncreatable path must fail immediately")
	}
}

// TestExportsAllFilesAttempted: one failing writer must not prevent the
// other artifacts from landing.
func TestExportsAllFilesAttempted(t *testing.T) {
	dir := t.TempDir()
	var exports Exports
	if err := exports.Add(filepath.Join(dir, "bad.json"), func(io.Writer) error {
		return fmt.Errorf("render failed")
	}); err != nil {
		t.Fatal(err)
	}
	goodPath := filepath.Join(dir, "good.txt")
	if err := exports.Add(goodPath, func(w io.Writer) error {
		_, err := w.Write([]byte("ok"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := exports.Close(); err == nil || !strings.Contains(err.Error(), "render failed") {
		t.Fatalf("Close error = %v, want the render failure", err)
	}
	if got, err := os.ReadFile(goodPath); err != nil || string(got) != "ok" {
		t.Fatalf("good file not written: %q, %v", got, err)
	}
}
