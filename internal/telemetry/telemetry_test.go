package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"pipette/internal/sim"
)

func TestNopTracerDisabled(t *testing.T) {
	tr := Nop()
	if tr.Enabled() {
		t.Fatal("nop tracer reports Enabled")
	}
	// All methods must be callable without effect.
	tr.BeginRequest("read", 0)
	tr.Span("vfs", "x", 0, 10)
	tr.Instant("vfs", "miss", 5)
	tr.EndRequest(10)
}

func TestOrNop(t *testing.T) {
	if OrNop(nil).Enabled() {
		t.Fatal("OrNop(nil) is not the nop tracer")
	}
	r := NewRecorder()
	if OrNop(r) != Tracer(r) {
		t.Fatal("OrNop did not pass through a non-nil tracer")
	}
}

func TestRecorderSpansAndHistograms(t *testing.T) {
	r := NewRecorder()
	if !r.Enabled() {
		t.Fatal("recorder not enabled")
	}
	r.BeginRequest("read 4096B", 100)
	r.Span(TrackNVMe, "read", 110, 150)
	r.Span(TrackNVMe, "read", 160, 200)
	r.EndRequest(210)

	if got := r.Requests(); got != 1 {
		t.Fatalf("Requests = %d, want 1", got)
	}
	// Two nvme spans plus the request span emitted by EndRequest.
	if got := r.Events(); got != 3 {
		t.Fatalf("Events = %d, want 3", got)
	}
	h := r.PhaseHistogram("nvme/read")
	if h == nil || h.Count() != 2 {
		t.Fatalf("nvme/read histogram = %+v, want 2 samples", h)
	}
	if h.Mean() != 40 {
		t.Fatalf("nvme/read mean = %v, want 40", h.Mean())
	}
	req := r.PhaseHistogram("vfs/read 4096B")
	if req == nil || req.Count() != 1 || req.Max() != 110 {
		t.Fatalf("request histogram wrong: %+v", req)
	}
}

func TestRecorderClampsBackwardSpan(t *testing.T) {
	r := NewRecorder()
	r.Span(TrackSSD, "weird", 100, 50)
	h := r.PhaseHistogram("ssd/weird")
	if h.Max() != 0 {
		t.Fatalf("backward span observed as %v, want 0", h.Max())
	}
}

func TestRecorderEventCap(t *testing.T) {
	r := NewRecorder()
	r.SetMaxEvents(4)
	for i := 0; i < 10; i++ {
		r.Span(TrackFTL, "map", sim.Time(i), sim.Time(i+1))
	}
	if got := r.Events(); got != 4 {
		t.Fatalf("Events = %d, want cap 4", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	// Histograms keep accumulating past the cap.
	if got := r.PhaseHistogram("ftl/map").Count(); got != 10 {
		t.Fatalf("histogram count = %d, want 10", got)
	}
}

// TestChromeTraceSchema asserts the exported JSON is a valid Chrome
// trace-event file: it unmarshals, every event has name/ph/pid/tid, ph is
// one of the emitted types, "X" events carry a non-negative dur, and "i"
// events carry a scope.
func TestChromeTraceSchema(t *testing.T) {
	r := NewRecorder()
	r.BeginRequest("read", 1000)
	r.Span("nand/d3", "tR", 1100, 4100)
	r.Span("nand/ch0", "xfer", 4100, 4500)
	r.Instant(TrackPageCache, "miss", 1050)
	r.EndRequest(5000)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not unmarshal: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var spans, instants, meta int
	threadNames := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d missing required field: %+v", i, ev)
		}
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("event %d: X span without non-negative dur", i)
			}
			if ev.Ts == nil {
				t.Fatalf("event %d: X span without ts", i)
			}
		case "i":
			instants++
			if ev.S == "" {
				t.Fatalf("event %d: instant without scope", i)
			}
		case "M":
			meta++
			if ev.Name == "thread_name" {
				threadNames[ev.Args["name"].(string)] = true
			}
		default:
			t.Fatalf("event %d: unexpected ph %q", i, ev.Ph)
		}
	}
	if spans != 3 { // tR, xfer, and the request span
		t.Fatalf("spans = %d, want 3", spans)
	}
	if instants != 1 {
		t.Fatalf("instants = %d, want 1", instants)
	}
	for _, want := range []string{"vfs", "nand/d3", "nand/ch0", "pagecache"} {
		if !threadNames[want] {
			t.Fatalf("missing thread_name metadata for track %q", want)
		}
	}
}

func TestCollapseTrack(t *testing.T) {
	cases := map[string]string{
		"nand/d12":  "nand/d*",
		"nand/ch0":  "nand/ch*",
		"vfs":       "vfs",
		"pagecache": "pagecache",
		"42":        "42", // all digits: leave alone
	}
	for in, want := range cases {
		if got := collapseTrack(in); got != want {
			t.Errorf("collapseTrack(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBreakdownMergesInstanceTracks(t *testing.T) {
	r := NewRecorder()
	r.Span("nand/d3", "tR", 0, 3000)
	r.Span("nand/d5", "tR", 0, 5000)
	r.Span("nand/ch0", "xfer", 0, 400)
	r.Span(TrackVFS, "read", 0, 9000)

	tbl := r.Breakdown()
	rows := map[string][]string{}
	for _, row := range tbl.Rows {
		rows[row[0]] = row
	}
	nand, ok := rows["nand/d*/tR"]
	if !ok {
		t.Fatalf("no merged nand/d*/tR row; rows: %v", tbl.Rows)
	}
	if nand[1] != "2" {
		t.Fatalf("merged tR count = %s, want 2", nand[1])
	}
	if nand[2] != "4.00" { // mean of 3us and 5us
		t.Fatalf("merged tR mean = %s, want 4.00", nand[2])
	}
	if _, ok := rows["nand/ch*/xfer"]; !ok {
		t.Fatalf("no nand/ch*/xfer row; rows: %v", tbl.Rows)
	}
	if _, ok := rows["vfs/read"]; !ok {
		t.Fatalf("no vfs/read row; rows: %v", tbl.Rows)
	}
}

func TestSamplerTickBoundaries(t *testing.T) {
	v := 0.0
	s, err := NewSampler(1000, []Probe{GaugeProbe("g", func() float64 { return v })})
	if err != nil {
		t.Fatal(err)
	}
	s.Tick(500) // before first boundary: no row
	if s.Rows() != 0 {
		t.Fatalf("sampled before boundary: %d rows", s.Rows())
	}
	v = 1
	s.Tick(1000) // exactly at boundary
	if s.Rows() != 1 {
		t.Fatalf("no sample at boundary: %d rows", s.Rows())
	}
	s.Tick(1100) // same interval: no second row
	if s.Rows() != 1 {
		t.Fatalf("double-sampled within interval: %d rows", s.Rows())
	}
	v = 2
	s.Tick(5500) // jumped over several boundaries: exactly one row
	if s.Rows() != 2 {
		t.Fatalf("jump over boundaries gave %d rows, want 2", s.Rows())
	}
	v = 3
	s.Tick(6000) // next boundary after the jump is 6000
	if s.Rows() != 3 {
		t.Fatalf("no sample at post-jump boundary: %d rows", s.Rows())
	}

	tbl := s.Table()
	if want := []string{"time_us", "g"}; strings.Join(tbl.Header, ",") != strings.Join(want, ",") {
		t.Fatalf("header = %v, want %v", tbl.Header, want)
	}
	if tbl.Rows[0][1] != "1" || tbl.Rows[1][1] != "2" || tbl.Rows[2][1] != "3" {
		t.Fatalf("sampled values wrong: %v", tbl.Rows)
	}
}

func TestNewSamplerRejectsBadConfig(t *testing.T) {
	if _, err := NewSampler(0, []Probe{GaugeProbe("g", func() float64 { return 0 })}); err == nil {
		t.Fatal("accepted zero interval")
	}
	if _, err := NewSampler(1000, nil); err == nil {
		t.Fatal("accepted no probes")
	}
}

func TestRateProbe(t *testing.T) {
	var busy sim.Time
	p := RateProbe("ch0_busy", func() sim.Time { return busy })

	busy = 500
	if got := p.Sample(1000); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("first interval rate = %v, want 0.5", got)
	}
	busy = 500 // idle second interval
	if got := p.Sample(2000); got != 0 {
		t.Fatalf("idle interval rate = %v, want 0", got)
	}
	busy = 2500 // fully busy (and beyond, from overlap accounting): clamp to 1
	if got := p.Sample(3000); got != 1 {
		t.Fatalf("saturated interval rate = %v, want clamp to 1", got)
	}
	if got := p.Sample(3000); got != 0 { // zero-width interval
		t.Fatalf("zero-width interval rate = %v, want 0", got)
	}
}

func TestSamplerWriteCSV(t *testing.T) {
	s, err := NewSampler(1000, []Probe{
		GaugeProbe("a", func() float64 { return 1.5 }),
		GaugeProbe("b", func() float64 { return 2 }),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Tick(1000)
	s.Tick(2000)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "time_us,a,b" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if lines[1] != "1.000,1.5,2" {
		t.Fatalf("csv row = %q", lines[1])
	}
}
