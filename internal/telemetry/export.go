package telemetry

import (
	"errors"
	"io"
	"os"
)

// Exports owns a run's observability output files (Chrome trace JSON,
// time-series CSV). Files are created up front so a bad path fails before
// minutes of simulation, but content is rendered at Close — from whatever
// the Recorder/Sampler has collected by then. Callers defer Close: when
// the experiment errors mid-run the files still receive complete,
// parseable documents covering the partial run, instead of the truncated
// (previously: empty) artifacts a straight os.Create + write-on-success
// left behind.
//
// Close is idempotent; the first call does the work. It returns the first
// error, but always attempts every file — one broken disk path does not
// lose the other artifacts.
type Exports struct {
	items  []exportItem
	closed bool
}

type exportItem struct {
	path  string
	f     *os.File
	write func(io.Writer) error
}

// Add creates path now and schedules write to render into it at Close.
func (e *Exports) Add(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	e.items = append(e.items, exportItem{path: path, f: f, write: write})
	return nil
}

// AddTrace schedules rec's Chrome trace-event JSON into path.
func (e *Exports) AddTrace(path string, rec *Recorder) error {
	return e.Add(path, rec.WriteChromeTrace)
}

// AddCSV schedules s's sampled time series as CSV into path.
func (e *Exports) AddCSV(path string, s *Sampler) error {
	return e.Add(path, s.WriteCSV)
}

// Len reports registered export files.
func (e *Exports) Len() int { return len(e.items) }

// Close renders and closes every registered file. Safe to call twice
// (e.g. once deferred for the error path and once explicitly).
func (e *Exports) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	var first error
	for _, it := range e.items {
		err := it.write(it.f)
		if cerr := it.f.Close(); err == nil {
			err = cerr
		}
		if err != nil && first == nil {
			first = err
		} else if err != nil {
			first = errors.Join(first, err)
		}
	}
	return first
}
