package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"pipette/internal/sim"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 20; i++ {
		f.Span("nand/d0", fmt.Sprintf("tR-%d", i), sim.Time(i*1000), sim.Time(i*1000+500))
	}
	if got := f.Len(); got != 8 {
		t.Fatalf("ring holds %d entries, want 8", got)
	}

	var buf bytes.Buffer
	if err := f.Dump(&buf, "test", sim.Time(20_000)); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Reason   string `json:"reason"`
		Captured int    `json:"captured"`
		Dropped  uint64 `json:"dropped"`
		Events   []struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"kind"`
			Name string `json:"name"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if d.Reason != "test" || d.Captured != 8 || d.Dropped != 12 {
		t.Fatalf("dump header wrong: %+v", d)
	}
	// Oldest-first: the surviving events are 12..19 in order.
	for i, ev := range d.Events {
		if want := fmt.Sprintf("tR-%d", 12+i); ev.Name != want {
			t.Fatalf("event %d is %q, want %q", i, ev.Name, want)
		}
		if i > 0 && ev.Seq != d.Events[i-1].Seq+1 {
			t.Fatalf("non-monotonic seq at %d: %v", i, d.Events)
		}
	}
}

func TestFlightRecorderKinds(t *testing.T) {
	f := NewFlightRecorder(16)
	f.BeginRequest("read", 0)
	f.Span(TrackSSD, "exec", 0, 100)
	f.Instant(TrackPageCache, "miss", 50)
	f.Note("uncorrectable at request 3", sim.Time(120))
	f.EndRequest(100) // boundary only; not recorded

	var buf bytes.Buffer
	if err := f.Dump(&buf, "kinds", 0); err != nil {
		t.Fatal(err)
	}
	var d flightDump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	kinds := make([]string, len(d.Events))
	for i, ev := range d.Events {
		kinds[i] = ev.Kind
	}
	want := []string{"request", "span", "instant", "note"}
	if len(kinds) != len(want) {
		t.Fatalf("got kinds %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("got kinds %v, want %v", kinds, want)
		}
	}
}

// TestFlightRecorderKeepsRecordingAfterDump: a dump is a snapshot, not a
// terminal state — the ring keeps collecting for a later, second failure.
func TestFlightRecorderKeepsRecordingAfterDump(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Span("ssd", "a", 0, 1)
	var buf bytes.Buffer
	if err := f.Dump(&buf, "first", 0); err != nil {
		t.Fatal(err)
	}
	f.Span("ssd", "b", 1, 2)
	buf.Reset()
	if err := f.Dump(&buf, "second", 0); err != nil {
		t.Fatal(err)
	}
	var d flightDump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Captured != 2 {
		t.Fatalf("second dump captured %d events, want 2", d.Captured)
	}
}

func TestTee(t *testing.T) {
	if tr := Tee(); tr != Nop() {
		t.Fatal("empty Tee should be Nop")
	}
	if tr := Tee(nil, Nop()); tr != Nop() {
		t.Fatal("Tee of nil+Nop should be Nop")
	}
	rec := NewRecorder()
	if tr := Tee(rec, nil); tr != Tracer(rec) {
		t.Fatal("single-member Tee should unwrap")
	}

	fr := NewFlightRecorder(8)
	tr := Tee(rec, fr)
	if !tr.Enabled() {
		t.Fatal("tee of live tracers must be enabled")
	}
	tr.BeginRequest("read", 0)
	tr.Span("ssd", "exec", 0, 10)
	tr.Instant("pagecache", "miss", 5)
	tr.EndRequest(10)
	if rec.Events() != 3 { // span + instant + request span from EndRequest
		t.Fatalf("recorder saw %d events, want 3", rec.Events())
	}
	if fr.Len() != 3 { // request + span + instant (EndRequest unrecorded)
		t.Fatalf("flight recorder holds %d entries, want 3", fr.Len())
	}
}
