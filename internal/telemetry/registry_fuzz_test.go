package telemetry

import (
	"strings"
	"testing"
)

// unescapeLabel reverses escapeLabel per the Prometheus text-format spec
// for quoted label values. It rejects raw newlines (would break the
// line-oriented format), raw double quotes (would terminate the value
// early in a real parser), and unknown escape sequences.
func unescapeLabel(s string) (string, bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			i++
			if i >= len(s) {
				return "", false
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", false
			}
		case '\n', '"':
			return "", false
		default:
			b.WriteByte(c)
		}
	}
	return b.String(), true
}

// unescapeHelp reverses escapeHelp: backslash and newline escapes only;
// raw double quotes are legal in help text.
func unescapeHelp(s string) (string, bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			i++
			if i >= len(s) {
				return "", false
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", false
			}
		case '\n':
			return "", false
		default:
			b.WriteByte(c)
		}
	}
	return b.String(), true
}

// FuzzPromEscaping checks the text-exposition escaping round-trips: any
// label value or help string survives escape → parse, and the escaped
// forms never contain a raw newline (which would corrupt the line-oriented
// format) or, for labels, an unescaped quote.
func FuzzPromEscaping(f *testing.F) {
	for _, seed := range []string{
		"",
		"plain",
		`back\slash`,
		`qu"ote`,
		"line\nbreak",
		`trailing\`,
		`\"`,
		"mix\\\"\nall",
		"unicode Ω ✓",
		string([]byte{0xff, 0xfe}), // invalid UTF-8 must still round-trip bytewise
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		esc := escapeLabel(s)
		if strings.ContainsRune(esc, '\n') {
			t.Fatalf("escapeLabel(%q) = %q contains a raw newline", s, esc)
		}
		got, ok := unescapeLabel(esc)
		if !ok {
			t.Fatalf("escapeLabel(%q) = %q does not parse", s, esc)
		}
		if got != s {
			t.Fatalf("label round-trip: %q -> %q -> %q", s, esc, got)
		}

		hesc := escapeHelp(s)
		if strings.ContainsRune(hesc, '\n') {
			t.Fatalf("escapeHelp(%q) = %q contains a raw newline", s, hesc)
		}
		hgot, ok := unescapeHelp(hesc)
		if !ok {
			t.Fatalf("escapeHelp(%q) = %q does not parse", s, hesc)
		}
		if hgot != s {
			t.Fatalf("help round-trip: %q -> %q -> %q", s, hesc, hgot)
		}

		// Full-encoder round-trip: the fuzz string as a label value and
		// help text must come back out of a real exposition intact.
		reg := NewRegistry()
		reg.Counter("fuzz_total", s, L("v", s)).Inc()
		var out strings.Builder
		if err := reg.WritePrometheus(&out); err != nil {
			t.Fatal(err)
		}
		text := out.String()
		// Escaped content never holds a raw newline, so the line structure
		// is trustworthy: locate lines by prefix, not by substring (the
		// fuzz string could embed any substring inside the HELP line).
		const seriesPrefix = `fuzz_total{v="`
		const helpPrefix = "# HELP fuzz_total "
		rest, helpLine := "", ""
		found, helpFound := false, false
		for _, line := range strings.Split(text, "\n") {
			switch {
			case strings.HasPrefix(line, seriesPrefix):
				rest = line[len(seriesPrefix):]
				found = true
			case strings.HasPrefix(line, helpPrefix):
				helpLine = line[len(helpPrefix):]
				helpFound = true
			}
		}
		if !found {
			t.Fatalf("series line missing from exposition:\n%s", text)
		}
		// Scan for the closing quote escape-aware: a backslash consumes
		// the next byte, so an escaped \" inside the value never ends it.
		j := -1
		for k := 0; k < len(rest); k++ {
			if rest[k] == '\\' {
				k++
				continue
			}
			if rest[k] == '"' {
				j = k
				break
			}
		}
		if j < 0 || !strings.HasPrefix(rest[j:], `"} `) {
			t.Fatalf("series line unterminated: %q", rest)
		}
		if got, ok := unescapeLabel(rest[:j]); !ok || got != s {
			t.Fatalf("exposition label %q parses to %q (ok=%v), want %q", rest[:j], got, ok, s)
		}
		if s != "" {
			if !helpFound {
				t.Fatalf("HELP line missing:\n%s", text)
			}
			if got, ok := unescapeHelp(helpLine); !ok || got != s {
				t.Fatalf("exposition help %q parses to %q (ok=%v), want %q", helpLine, got, ok, s)
			}
		}
	})
}
