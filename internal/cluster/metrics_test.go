package cluster

import (
	"strings"
	"testing"

	"pipette/internal/telemetry"
)

// One registry scrape must cover the whole tier: the single-device
// families gain a shard label instead of colliding.
func TestClusterRegisterMetrics(t *testing.T) {
	t.Parallel()
	c, start := buildTestCluster(t, testClusterOpts{
		cfg:     Config{Shards: 2, Replicas: 2, Tenants: 2},
		records: 64,
	})
	reg := telemetry.NewRegistry()
	c.RegisterMetrics(reg)
	res := testReplay(t, c, start, 64, 200)
	if res.Hist.Count() == 0 {
		t.Fatal("empty replay")
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`pipette_stage_us_bucket{stage="nand",shard="0",`,
		`pipette_stage_us_bucket{stage="nand",shard="1",`,
		`pipette_stage_requests_total{shard="0"}`,
		`pipette_stage_requests_total{shard="1"}`,
		`pipette_resource_utilization{resource="nvme.ring",shard="0"}`,
		`pipette_resource_utilization{resource="nvme.ring",shard="1"}`,
		`pipette_resource_busy_ns_total{resource="nvme.ring",shard="1"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q\n%s", want, out[:min(2000, len(out))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
