package cluster

import (
	"fmt"

	"pipette/internal/baseline"
	"pipette/internal/blockdev"
	"pipette/internal/core"
	"pipette/internal/extfs"
	"pipette/internal/fault"
	"pipette/internal/kv"
	"pipette/internal/metrics"
	"pipette/internal/nvme"
	"pipette/internal/resource"
	"pipette/internal/sim"
	"pipette/internal/ssd"
	"pipette/internal/telemetry"
	"pipette/internal/vfs"
)

// ShardConfig sizes one shard's private system. The flash is provisioned
// for DatasetBytes of live KV records (log churn headroom included) and
// the caches are budgeted at an eighth of the dataset — the miss-heavy
// regime where the read path's granularity matters, mirroring the kv
// experiment.
type ShardConfig struct {
	// DatasetBytes is the live record volume this shard must hold.
	DatasetBytes int64
	// FineReads serves Gets through the fine-grained read path.
	FineReads bool
	// SegmentBytes is the KV store's segment size (0 = kv default).
	SegmentBytes int64
	// Fault arms deterministic fault injection on this shard's stack; the
	// empty profile is the zero-cost default. FaultSeed drives the per-site
	// decision streams.
	Fault     fault.Profile
	FaultSeed uint64
	// ECCUncorrectableFrac overrides the controller's default fraction of
	// injected read errors that defeat the whole retry ladder (0 keeps the
	// stack default). A dying member models as a high fraction.
	ECCUncorrectableFrac float64
}

// Shard is one member of the cluster: a complete simulated SSD system with
// a log-structured KV store on top, plus the stage account and resource
// tracker every stack in this repo carries.
type Shard struct {
	ID    int
	Store *kv.Store
	SA    *telemetry.StageAccount
	Res   *resource.Tracker

	ctrl *ssd.Controller
	v    *vfs.VFS
	pip  *core.Pipette // nil for block-read shards
	inj  *fault.Injector
	cfg  ShardConfig

	readBuf []byte // Get scratch, reused across executions

	// loadClock is the shard's virtual-time frontier during Load; replay
	// events always run at or after it, keeping per-shard time monotone.
	loadClock sim.Time
}

// Faulted reports whether this shard carries a fault profile. The profile
// arms at SealLoad — the device degrades in service, after its dataset is
// in place — so preload is always clean.
func (sh *Shard) Faulted() bool { return !sh.cfg.Fault.Empty() }

// arm installs the shard's fault injector; a no-op without a profile.
func (sh *Shard) arm() {
	if sh.cfg.Fault.Empty() || sh.inj != nil {
		return
	}
	inj := sh.cfg.Fault.NewInjector(sh.cfg.FaultSeed)
	sh.inj = inj
	sh.ctrl.SetInjector(inj)
	sh.v.SetInjector(inj)
}

// Faults aggregates the shard's injection/recovery counters.
func (sh *Shard) Faults() fault.Report {
	var r fault.Report
	if sh.inj == nil {
		return r
	}
	f := sh.ctrl.Faults()
	r = fault.Report{
		Injected:         sh.inj.TotalInjected(),
		ECCRetries:       f.ECCRetries,
		Uncorrectable:    f.Uncorrectable,
		RingCorruptions:  f.RingCorruptions,
		DMACorruptions:   f.DMACorruptions,
		ProgramRetries:   f.ProgramRetries,
		WritebackRetries: sh.v.WritebackRetries(),
	}
	if sh.pip != nil {
		r.RingFallbacks = sh.pip.RingFallbacks()
		r.DMAFallbacks = sh.pip.DMAFallbacks()
	}
	return r
}

// Snapshot reports the shard stack's traffic and cache statistics, the
// same accounting the baseline engines use so read amplification is
// comparable across the tier.
func (sh *Shard) Snapshot() metrics.Snapshot {
	snap := metrics.Snapshot{Name: fmt.Sprintf("shard%d", sh.ID)}
	snap.IO = sh.v.IO()
	hits, accesses, ins, evs := sh.v.PageCache().Stats()
	snap.PageCache = metrics.Cache{Hits: hits, Accesses: accesses, Insertions: ins, Evictions: evs}
	if sh.pip != nil {
		fio := sh.pip.IO()
		snap.IO.BytesTransferred += fio.BytesTransferred
		snap.IO.FineReads = fio.FineReads
		snap.FineCache = sh.pip.CacheStats()
	}
	return snap
}

// NewShard assembles one shard: controller, driver, block layer, VFS,
// optional fine-read core, and the KV store, with stage attribution and
// resource occupancy threaded through every layer exactly like the
// single-device stacks.
func NewShard(id int, cfg ShardConfig) (*Shard, error) {
	if cfg.DatasetBytes <= 0 {
		return nil, fmt.Errorf("cluster: shard %d needs DatasetBytes > 0", id)
	}
	scfg := baseline.DefaultStackConfig(cfg.DatasetBytes * 3) // live + dead + headroom
	cachePages := int(cfg.DatasetBytes / 4096 / 8)
	if cachePages < 64 {
		cachePages = 64
	}
	scfg.VFS.PageCachePages = cachePages
	hmbBytes := int(cfg.DatasetBytes / 8)
	if min := 2 * scfg.Core.SlabSize; hmbBytes < min {
		hmbBytes = min // the slab arena needs room for at least two slabs
	}
	scfg.Core.HMB.DataBytes = hmbBytes
	scfg.Core.OverflowMaxBytes = hmbBytes
	scfg.Core.PageCacheFloorPages = cachePages / 8
	if cfg.ECCUncorrectableFrac > 0 {
		scfg.SSD.ECCUncorrectableFrac = cfg.ECCUncorrectableFrac
	}

	ctrl, err := ssd.New(scfg.SSD)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d: %w", id, err)
	}
	drv := nvme.NewDriver(ctrl, scfg.Depth, scfg.NVMe)
	blk, err := blockdev.New(drv, ctrl.PageSize(), scfg.Block)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d: %w", id, err)
	}
	fs := extfs.New(ctrl)
	v, err := vfs.New(fs, blk, scfg.VFS)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d: %w", id, err)
	}
	sh := &Shard{ID: id, SA: telemetry.NewStageAccount(), Res: resource.NewTracker(),
		ctrl: ctrl, v: v, cfg: cfg}
	v.SetStages(sh.SA)
	blk.SetStages(sh.SA)
	drv.SetStages(sh.SA)
	ctrl.SetStages(sh.SA)
	ctrl.SetResources(sh.Res)
	drv.SetRingTimeline(sh.Res.Register("nvme.ring"))
	if cfg.FineReads {
		p, err := core.New(v, drv, scfg.Core)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", id, err)
		}
		sh.pip = p
	}
	store, ready, err := kv.Open(0, kv.VFSBackend{V: v}, kv.Config{
		NamePrefix:   fmt.Sprintf("shard%d/seg-", id),
		SegmentBytes: cfg.SegmentBytes,
		FineReads:    cfg.FineReads,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d: %w", id, err)
	}
	sh.Store = store
	sh.loadClock = ready // shard time must stay monotone past open
	return sh, nil
}
