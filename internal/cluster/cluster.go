package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"pipette/internal/kv"
	"pipette/internal/metrics"
	"pipette/internal/nvme"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
	"pipette/internal/workload"
)

// ReadPolicy selects how a replicated read uses its replica set.
type ReadPolicy int

const (
	// ReadPrimary sends the read to the ring-first replica only, failing
	// over to the next replica (at the failure's virtual time) on an
	// uncorrectable media error.
	ReadPrimary ReadPolicy = iota
	// ReadFanout issues the read to every replica at dispatch; the first
	// successful completion in virtual time wins. Failover is implicit —
	// a faulted replica simply never wins.
	ReadFanout
	// ReadHedged sends to the primary, and if the primary has not
	// completed within HedgeDelay, issues one hedge to the next replica;
	// the earlier success wins. Uncorrectable primary errors fail over
	// through the remaining replicas like ReadPrimary.
	ReadHedged
)

// String names the policy for tables and flags.
func (p ReadPolicy) String() string {
	switch p {
	case ReadPrimary:
		return "primary"
	case ReadFanout:
		return "fanout"
	case ReadHedged:
		return "hedged"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseReadPolicy resolves a flag value.
func ParseReadPolicy(s string) (ReadPolicy, error) {
	switch s {
	case "primary":
		return ReadPrimary, nil
	case "fanout":
		return ReadFanout, nil
	case "hedged":
		return ReadHedged, nil
	}
	return 0, fmt.Errorf("cluster: unknown read policy %q (primary|fanout|hedged)", s)
}

// Config parameterizes the serving tier.
type Config struct {
	Shards   int // member count (>= 1)
	Replicas int // copies per key, clamped to [1, Shards]
	Tenants  int // tenant namespaces (>= 1)

	// VirtualNodes per shard on the ring (<= 0 = DefaultVirtualNodes).
	VirtualNodes int

	// Depth bounds each shard's in-flight requests; arrivals past it wait
	// in the shard's admission FIFO (<= 0 = 16).
	Depth int
	// MaxQueue bounds each shard's admission FIFO: an arrival that would
	// have to wait while MaxQueue requests already wait is rejected with
	// backpressure. 0 = unbounded (no rejects).
	MaxQueue int

	// ReadPolicy selects the replicated-read strategy; HedgeDelay is the
	// hedged policy's wait before the second copy is tried.
	ReadPolicy ReadPolicy
	HedgeDelay sim.Time

	// TenantRate is the per-tenant token-bucket refill rate in ops per
	// virtual second (0 = no per-tenant limit); TenantBurst the bucket
	// capacity (<= 0 = max(4, TenantRate/20)).
	TenantRate  float64
	TenantBurst float64
}

func (cfg *Config) setDefaults() error {
	if cfg.Shards < 1 {
		return errors.New("cluster: needs at least one shard")
	}
	if cfg.Tenants < 1 {
		cfg.Tenants = 1
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > cfg.Shards {
		cfg.Replicas = cfg.Shards
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 16
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.ReadPolicy == ReadHedged && cfg.HedgeDelay <= 0 {
		return errors.New("cluster: hedged reads need HedgeDelay > 0")
	}
	if cfg.TenantRate > 0 && cfg.TenantBurst <= 0 {
		cfg.TenantBurst = cfg.TenantRate / 20
		if cfg.TenantBurst < 4 {
			cfg.TenantBurst = 4
		}
	}
	return nil
}

// tokenBucket is one tenant's rate limiter over virtual time.
type tokenBucket struct {
	rate   float64 // tokens per virtual second
	burst  float64
	tokens float64
	last   sim.Time
}

func (tb *tokenBucket) allow(now sim.Time) bool {
	if tb.rate <= 0 {
		return true
	}
	if dt := now - tb.last; dt > 0 {
		tb.tokens += dt.Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
	if tb.tokens >= 1 {
		tb.tokens--
		return true
	}
	return false
}

// maxReplicas bounds the replica set a single request tracks.
const maxReplicas = 8

// Cluster is the assembled serving tier: the ring, the shards, and the
// per-tenant admission state. Like every simulated system in this repo it
// is single-threaded; the internal mutex only protects the statistics a
// live /metrics scraper reads against the replay mutating them.
type Cluster struct {
	cfg    Config
	ring   *Ring
	shards []*Shard

	mu      sync.Mutex
	buckets []tokenBucket
	now     sim.Time // virtual-time frontier (load + replay)

	repScratch []int
}

// New assembles a cluster of cfg.Shards shards; shardCfg returns the
// stack configuration for each member (letting one member arm a fault
// profile for degraded-mode runs).
func New(cfg Config, shardCfg func(id int) ShardConfig) (*Cluster, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if cfg.Replicas > maxReplicas {
		return nil, fmt.Errorf("cluster: replicas %d exceeds limit %d", cfg.Replicas, maxReplicas)
	}
	c := &Cluster{cfg: cfg, ring: NewRing(cfg.VirtualNodes)}
	for id := 0; id < cfg.Shards; id++ {
		sh, err := NewShard(id, shardCfg(id))
		if err != nil {
			return nil, err
		}
		c.shards = append(c.shards, sh)
		c.ring.Add(id)
	}
	c.buckets = make([]tokenBucket, cfg.Tenants)
	for t := range c.buckets {
		c.buckets[t] = tokenBucket{rate: cfg.TenantRate, burst: cfg.TenantBurst, tokens: cfg.TenantBurst}
	}
	return c, nil
}

// Config reports the effective (defaulted) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Ring exposes the placement ring (read-only use).
func (c *Cluster) Ring() *Ring { return c.ring }

// Shard returns member i.
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// Now reports the cluster's virtual-time frontier.
func (c *Cluster) Now() sim.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Route returns the replica set (primary first) for a namespaced key,
// appending into dst.
func (c *Cluster) Route(key string, dst []int) []int {
	return c.ring.LookupN(HashKey(key), c.cfg.Replicas, dst)
}

// Load preloads one record onto every replica of its key. Load is setup:
// each shard's virtual clock advances independently and the replay later
// starts past all of them, so preload cost never pollutes measurements.
func (c *Cluster) Load(key string, val []byte) error {
	c.repScratch = c.Route(key, c.repScratch)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.repScratch {
		sh := c.shards[r]
		done, err := sh.Store.Put(sh.loadClock, key, val)
		if err != nil {
			return fmt.Errorf("cluster: load shard %d: %w", r, err)
		}
		sh.loadClock = done
	}
	return nil
}

// SealLoad syncs every shard's store, arms any configured fault profiles
// (the degraded member fails in service, after its dataset is in place),
// and returns the cluster-wide load frontier — the earliest virtual time a
// replay may start at.
func (c *Cluster) SealLoad() (sim.Time, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var max sim.Time
	for _, sh := range c.shards {
		done, err := sh.Store.Sync(sh.loadClock)
		if err != nil {
			return 0, fmt.Errorf("cluster: seal shard %d: %w", sh.ID, err)
		}
		sh.loadClock = done
		sh.arm()
		if done > max {
			max = done
		}
	}
	if max > c.now {
		c.now = max
	}
	return max, nil
}

// Request is one tenant operation offered to the tier. Key must already
// carry its tenant namespace (kv.NamespaceKey); Tenant indexes the QoS
// accounting. Val is the write payload, copied at admission.
type Request struct {
	Tenant int
	Write  bool
	Key    string
	Val    []byte
}

// ShardStats is one member's replay ledger.
type ShardStats struct {
	Shard         int    `json:"shard"`
	Primary       uint64 `json:"primary"`        // requests routed here as primary
	Executions    uint64 `json:"executions"`     // store executions, replica work included
	ReplicaWrites uint64 `json:"replica_writes"` // secondary copies written here
	Fanouts       uint64 `json:"fanouts"`        // fan-out reads served here
	Hedges        uint64 `json:"hedges"`         // hedge reads served here
	Failovers     uint64 `json:"failovers"`      // failover reads served here
	Rejected      uint64 `json:"rejected"`       // arrivals bounced off the full FIFO
	MediaErrors   uint64 `json:"media_errors"`   // executions lost to uncorrectable errors
	Faulted       bool   `json:"faulted,omitempty"`
}

// TenantStats is one tenant's replay ledger, including its private latency
// distribution — the per-tenant QoS view.
type TenantStats struct {
	Tenant    int
	Arrived   uint64
	Throttled uint64 // bounced by the token bucket
	Rejected  uint64 // bounced by a full shard FIFO
	Lost      uint64 // admitted but failed on every replica
	Hist      metrics.Histogram
}

// Result is one cluster replay's measurement.
type Result struct {
	Arrived   uint64
	Admitted  uint64
	Rejected  uint64
	Throttled uint64
	Lost      uint64

	Hist    metrics.Histogram // arrival -> completion, admitted successes
	Start   sim.Time
	Elapsed sim.Time // start of replay to last completion

	Shards  []ShardStats
	Tenants []TenantStats
}

// Goodput reports completed ops per virtual second.
func (r *Result) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Hist.Count()) / r.Elapsed.Seconds()
}

// ReplayOpts configures one open-loop replay.
type ReplayOpts struct {
	// Arrivals is the arrival process (required).
	Arrivals workload.Arrivals
	// Start is the replay's virtual start time; it must be at or past
	// SealLoad's frontier so per-shard time stays monotone.
	Start sim.Time
	// TickEvery runs one maintenance (compaction) tick on a shard every N
	// requests it dispatches (0 = never).
	TickEvery int
	// TolerateMediaErrors counts uncorrectable media errors as lost
	// requests instead of failing the replay — the right semantics with a
	// fault profile armed on a member.
	TolerateMediaErrors bool

	// Tail, when set, captures the replay's slowest requests. Each
	// successful request is offered with whole-request blame synthesized
	// along its winning leg: the FIFO wait ([arrival, dispatch), queue
	// stage, "admission"), then for secondary legs the dispatch gap (the
	// hedge delay as queue/"hedge", failed prior legs as
	// retry/"failover"), then the winning leg's own device segments. The
	// synthesized segments partition [arrival, completion] exactly — the
	// same conservation discipline StageAccount enforces per shard.
	Tail *telemetry.TailRecorder
	// Heat, when set, observes every successful completion (the same
	// population as the latency histogram).
	Heat *telemetry.LatencyGrid
}

// pending is one admitted request waiting in (or dispatched from) its
// primary shard's FIFO.
type pending struct {
	arrival sim.Time
	tenant  int32
	write   bool
	nrep    int8
	reps    [maxReplicas]int32
	key     string
	val     []byte
}

// shardQ is one shard's replay-local admission state.
type shardQ struct {
	queue      []pending
	head       int
	inFlight   int
	dispatched int
}

// tolerable reports whether err is a media-level loss the replay may
// absorb (an uncorrectable read, or a key whose record was lost to one).
func tolerable(err error) bool {
	return errors.Is(err, nvme.ErrUncorrectable) || errors.Is(err, kv.ErrNotFound)
}

// Replay drives an open-loop request stream through the tier: arrivals on
// opts.Arrivals' schedule, per-tenant token-bucket admission, consistent-
// hash routing to the primary shard's bounded FIFO (reject with
// backpressure when full), dispatch under the per-shard depth bound, and
// R-way replication — writes copy to every replica and complete with the
// slowest, reads follow cfg.ReadPolicy and complete with the first
// success. One discrete-event engine sequences every arrival, dispatch,
// hedge, failover, and completion across all shards by (time, seq), so a
// whole-cluster replay is deterministic.
func (c *Cluster) Replay(next func() Request, requests int, opts ReplayOpts) (*Result, error) {
	if opts.Arrivals == nil {
		return nil, errors.New("cluster: replay needs an arrival process")
	}
	if requests <= 0 {
		return nil, errors.New("cluster: replay needs requests > 0")
	}
	start := opts.Start
	c.mu.Lock()
	if start < c.now {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: replay start %v is before the load frontier %v", start, c.now)
	}
	c.mu.Unlock()

	res := &Result{Start: start}
	res.Shards = make([]ShardStats, len(c.shards))
	for i, sh := range c.shards {
		res.Shards[i] = ShardStats{Shard: i, Faulted: sh.Faulted()}
	}
	res.Tenants = make([]TenantStats, c.cfg.Tenants)
	for t := range res.Tenants {
		res.Tenants[t].Tenant = t
	}

	eng := sim.NewEngine()
	qs := make([]shardQ, len(c.shards))
	var (
		arrived  int
		lastDone = start
		runErr   error
	)
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}
	bump := func(t sim.Time) {
		if t > lastDone {
			lastDone = t
		}
	}
	observe := func(p *pending, done sim.Time) {
		bump(done)
		res.Hist.Observe(done - p.arrival)
		res.Tenants[p.tenant].Hist.Observe(done - p.arrival)
		opts.Heat.Observe(done, done-p.arrival)
	}
	lose := func(p *pending, at sim.Time) {
		bump(at)
		res.Lost++
		res.Tenants[p.tenant].Lost++
	}

	// observeTail offers a successful request to the tail recorder with
	// whole-request blame synthesized along its winning leg (see
	// ReplayOpts.Tail). legSegs is the winning leg's captured segment list
	// (it begins at the request's arrival for primary legs, which carry
	// PreQueue, and at the leg's own start otherwise); gap labels the
	// dispatch→leg-start interval of secondary legs.
	var tailScratch []telemetry.StageSeg
	observeTail := func(p *pending, done, dispatch, legStart sim.Time, legSegs []telemetry.StageSeg, gap telemetry.Stage, gapRes string) {
		if opts.Tail == nil {
			return
		}
		legFrom := legStart
		if len(legSegs) > 0 {
			legFrom = legSegs[0].Start
		} else if legFrom > done {
			legFrom = done
		}
		segs := tailScratch[:0]
		if dispatch > legFrom {
			dispatch = legFrom
		}
		if p.arrival < dispatch {
			segs = append(segs, telemetry.StageSeg{
				Stage: telemetry.StageQueue, Res: telemetry.ResAdmission,
				Start: p.arrival, End: dispatch})
		}
		if dispatch < legFrom {
			segs = append(segs, telemetry.StageSeg{
				Stage: gap, Res: gapRes, Start: dispatch, End: legFrom})
		}
		segs = append(segs, legSegs...)
		if len(legSegs) == 0 && legFrom < done {
			// Leg with no device attribution (stage account disarmed):
			// keep the partition contiguous anyway.
			segs = append(segs, telemetry.StageSeg{
				Stage: telemetry.StageOther, Start: legFrom, End: done})
		}
		opts.Tail.Observe(segs, p.arrival, done)
		tailScratch = segs
	}

	// exec runs one store operation on shard si at virtual time now. The
	// primary execution of an admitted request carries the arrival time so
	// its FIFO wait lands in the queue stage; replica work opens a plain
	// scope. The cluster mutex makes the shard's mutating state safe
	// against a concurrent /metrics scraper. With a tail recorder armed it
	// also returns a copy of the leg's attributed segments, the raw
	// material of the winning leg's blame.
	exec := func(si int32, now sim.Time, p *pending, primary bool) (sim.Time, []telemetry.StageSeg, error) {
		sh := c.shards[si]
		c.mu.Lock()
		if primary {
			sh.SA.PreQueue(p.arrival)
		}
		sh.SA.Begin(now)
		var done sim.Time
		var err error
		if p.write {
			done, err = sh.Store.Put(now, p.key, p.val)
		} else {
			sh.readBuf, done, err = sh.Store.Get(now, p.key, sh.readBuf[:0])
		}
		sh.SA.Finish(done)
		var segs []telemetry.StageSeg
		if opts.Tail != nil {
			segs = append(segs, sh.SA.LastSegs()...)
		}
		res.Shards[si].Executions++
		if err != nil && tolerable(err) {
			res.Shards[si].MediaErrors++
		}
		if done > c.now {
			c.now = done
		}
		c.mu.Unlock()
		bump(done)
		if err != nil && (!opts.TolerateMediaErrors || !tolerable(err)) {
			fail(fmt.Errorf("cluster: shard %d %s %q: %w", si, opString(p.write), p.key, err))
		}
		return done, segs, err
	}

	var admit func(si int32, now sim.Time)
	release := func(si int32) func(sim.Time) {
		return func(now sim.Time) {
			qs[si].inFlight--
			admit(si, now)
		}
	}

	// tryFailover walks the remaining replicas at each failure's virtual
	// time until one succeeds or the set is exhausted. dispatch is the
	// request's primary dispatch time: the succeeding leg's blame charges
	// [dispatch, leg start) — the failed prior attempts — to
	// retry/"failover".
	var tryFailover func(p pending, k int, dispatch, at sim.Time)
	tryFailover = func(p pending, k int, dispatch, at sim.Time) {
		if runErr != nil {
			return
		}
		if int(k) >= int(p.nrep) {
			lose(&p, at)
			return
		}
		r := p.reps[k]
		res.Shards[r].Failovers++
		done, segs, err := exec(r, at, &p, false)
		if runErr != nil {
			return
		}
		if err == nil {
			observe(&p, done)
			observeTail(&p, done, dispatch, at, segs, telemetry.StageRetry, telemetry.ResFailover)
			return
		}
		eng.At(done, func(t sim.Time) { tryFailover(p, k+1, dispatch, t) })
	}

	dispatchRead := func(si int32, now sim.Time, p pending) {
		if c.cfg.ReadPolicy == ReadFanout && p.nrep > 1 {
			// Fan out to every replica at dispatch; first success wins.
			var best sim.Time
			var bestSegs []telemetry.StageSeg
			ok := false
			var lastFail sim.Time
			for k := int8(0); k < p.nrep; k++ {
				r := p.reps[k]
				if k > 0 {
					res.Shards[r].Fanouts++
				}
				done, segs, err := exec(r, now, &p, k == 0)
				if runErr != nil {
					return
				}
				if k == 0 {
					eng.At(done, release(si))
				}
				if err == nil {
					if !ok || done < best {
						best = done
						bestSegs = segs
					}
					ok = true
				} else if done > lastFail {
					lastFail = done
				}
			}
			if ok {
				observe(&p, best)
				observeTail(&p, best, now, now, bestSegs, 0, "")
			} else {
				lose(&p, lastFail)
			}
			return
		}

		done1, segs1, err1 := exec(si, now, &p, true)
		if runErr != nil {
			return
		}
		eng.At(done1, release(si))
		if err1 != nil {
			eng.At(done1, func(t sim.Time) { tryFailover(p, 1, now, t) })
			return
		}
		if c.cfg.ReadPolicy == ReadHedged && p.nrep > 1 && done1 > now+c.cfg.HedgeDelay {
			// The primary is slow: hedge to the next replica, earlier
			// success wins. Both completions land past the hedge time, so
			// the event order stays monotone per shard.
			hs := p.reps[1]
			eng.At(now+c.cfg.HedgeDelay, func(t sim.Time) {
				if runErr != nil {
					return
				}
				res.Shards[hs].Hedges++
				done2, segs2, err2 := exec(hs, t, &p, false)
				if runErr != nil {
					return
				}
				best := done1
				if err2 == nil && done2 < best {
					best = done2
				}
				observe(&p, best)
				if best == done1 {
					observeTail(&p, done1, now, now, segs1, 0, "")
				} else {
					// The hedge won: the wait for the hedge to fire is
					// part of the critical path, blamed queue/"hedge".
					observeTail(&p, done2, now, t, segs2, telemetry.StageQueue, telemetry.ResHedge)
				}
			})
			return
		}
		observe(&p, done1)
		observeTail(&p, done1, now, now, segs1, 0, "")
	}

	dispatchWrite := func(si int32, now sim.Time, p pending) {
		// The primary copy is charged the queue wait; replica copies write
		// concurrently at dispatch. Durability is write-all: the request
		// completes with its slowest successful copy, and fails only when
		// the primary copy fails.
		done1, segs1, err1 := exec(si, now, &p, true)
		if runErr != nil {
			return
		}
		eng.At(done1, release(si))
		worst := done1
		worstSegs := segs1
		for k := int8(1); k < p.nrep; k++ {
			r := p.reps[k]
			res.Shards[r].ReplicaWrites++
			done, segs, err := exec(r, now, &p, false)
			if runErr != nil {
				return
			}
			if err == nil && done > worst {
				worst = done
				worstSegs = segs
			}
		}
		if err1 != nil {
			lose(&p, done1)
			return
		}
		observe(&p, worst)
		observeTail(&p, worst, now, now, worstSegs, 0, "")
	}

	admit = func(si int32, now sim.Time) {
		q := &qs[si]
		for runErr == nil && q.inFlight < c.cfg.Depth && q.head < len(q.queue) {
			p := q.queue[q.head]
			q.queue[q.head] = pending{} // release the payload
			q.head++
			q.dispatched++
			if opts.TickEvery > 0 && q.dispatched%opts.TickEvery == 0 {
				c.mu.Lock()
				_, _, err := c.shards[si].Store.MaintenanceTick(now)
				c.mu.Unlock()
				if err != nil && (!opts.TolerateMediaErrors || !tolerable(err)) {
					fail(fmt.Errorf("cluster: shard %d compaction: %w", si, err))
					return
				}
			}
			q.inFlight++
			if p.write {
				dispatchWrite(si, now, p)
			} else {
				dispatchRead(si, now, p)
			}
		}
		if q.head == len(q.queue) {
			q.queue = q.queue[:0]
			q.head = 0
		}
	}

	var arrive func(now sim.Time)
	arrive = func(now sim.Time) {
		if runErr != nil {
			return
		}
		req := next()
		arrived++
		if arrived < requests {
			eng.At(now+opts.Arrivals.Next(), arrive)
		}
		res.Arrived++
		ts := &res.Tenants[req.Tenant]
		ts.Arrived++
		c.mu.Lock()
		allowed := c.buckets[req.Tenant].allow(now)
		c.mu.Unlock()
		if !allowed {
			ts.Throttled++
			res.Throttled++
			return
		}
		p := pending{arrival: now, tenant: int32(req.Tenant), write: req.Write, key: req.Key}
		if req.Write {
			p.val = append([]byte(nil), req.Val...)
		}
		c.repScratch = c.Route(req.Key, c.repScratch)
		p.nrep = int8(len(c.repScratch))
		for i, r := range c.repScratch {
			p.reps[i] = int32(r)
		}
		si := p.reps[0]
		q := &qs[si]
		res.Shards[si].Primary++
		if c.cfg.MaxQueue > 0 && q.inFlight >= c.cfg.Depth && len(q.queue)-q.head >= c.cfg.MaxQueue {
			res.Shards[si].Rejected++
			res.Rejected++
			ts.Rejected++
			return
		}
		res.Admitted++
		q.queue = append(q.queue, p)
		admit(si, now)
	}
	eng.At(start+opts.Arrivals.Next(), arrive)
	eng.Run()
	if runErr != nil {
		return nil, runErr
	}
	res.Elapsed = lastDone - start
	return res, nil
}

func opString(write bool) string {
	if write {
		return "put"
	}
	return "get"
}

// RegisterMetrics mirrors every shard's stage account and resource
// occupancy into reg with a per-shard label, so one /metrics scrape covers
// the whole tier: pipette_stage_us{stage=...,shard=...} histograms and
// pipette_resource_utilization{resource=...,shard=...} gauges, the same
// families a single-device system exports.
func (c *Cluster) RegisterMetrics(reg *telemetry.Registry) {
	for _, sh := range c.shards {
		sh := sh
		lbl := telemetry.L("shard", strconv.Itoa(sh.ID))
		sh.SA.BindRegistry(reg, lbl)
		for i := 0; i < sh.Res.Len(); i++ {
			tl := sh.Res.At(i)
			reg.GaugeFunc("pipette_resource_utilization",
				"busy fraction of elapsed virtual time per hardware resource",
				func() float64 {
					c.mu.Lock()
					defer c.mu.Unlock()
					return tl.Utilization(c.now)
				},
				telemetry.L("resource", tl.Name()), lbl)
			reg.CounterFunc("pipette_resource_busy_ns_total",
				"cumulative busy virtual time per hardware resource, in nanoseconds",
				func() uint64 {
					c.mu.Lock()
					defer c.mu.Unlock()
					return uint64(tl.Busy())
				},
				telemetry.L("resource", tl.Name()), lbl)
		}
	}
}
