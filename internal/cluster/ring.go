// Package cluster is the sharded multi-SSD serving tier: a consistent-hash
// router that places a namespaced KV keyspace across N independently
// simulated SSD stacks, R-way replication with read fan-out and hedging,
// and an admission layer doing per-tenant token-bucket rate limiting plus
// per-shard queue backpressure. Everything composes the existing
// subsystems — each shard is a full private stack (NAND, FTL, controller,
// driver, VFS, log-structured KV store) and the cluster sequences requests
// across them with one discrete-event engine, so a whole-cluster replay is
// as deterministic as a single-device one.
package cluster

import (
	"fmt"
	"sort"

	"pipette/internal/sim"
)

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is a consistent-hash ring with virtual nodes. Placement is fully
// deterministic: virtual-node positions derive from (shard, vnode) through
// the simulator's Mix64, keys hash through HashKey, and ties break by
// shard id — the same membership always yields the same ring, across runs
// and platforms.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by (hash, shard)
	shards map[int]struct{}
}

// DefaultVirtualNodes spreads each shard over enough ring positions that
// the per-shard keyspace share stays within a few percent of 1/N.
const DefaultVirtualNodes = 128

// NewRing builds an empty ring with the given virtual-node count per shard
// (<= 0 selects DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, shards: make(map[int]struct{})}
}

// vnodeHash positions one (shard, vnode) pair on the circle.
func vnodeHash(shard, vnode int) uint64 {
	return sim.Mix64(uint64(shard)*0x9e3779b97f4a7c15 ^ uint64(vnode)*0xc2b2ae3d27d4eb4f ^ 0xc1a57e12)
}

// Add places a shard's virtual nodes on the ring. Adding a present shard
// is a no-op.
func (r *Ring) Add(shard int) {
	if _, ok := r.shards[shard]; ok {
		return
	}
	r.shards[shard] = struct{}{}
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(shard, v), shard: shard})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
}

// Remove takes a shard's virtual nodes off the ring. Removing an absent
// shard is a no-op.
func (r *Ring) Remove(shard int) {
	if _, ok := r.shards[shard]; !ok {
		return
	}
	delete(r.shards, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Shards lists the current membership in ascending id order.
func (r *Ring) Shards() []int {
	out := make([]int, 0, len(r.shards))
	for s := range r.shards {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.shards) }

// HashKey maps a key string onto the circle: FNV-1a finalized through
// Mix64 so consecutive keys scatter.
func HashKey(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return sim.Mix64(h)
}

// Lookup returns the shard owning hash h: the first virtual node at or
// clockwise of h. Panics on an empty ring.
func (r *Ring) Lookup(h uint64) int {
	if len(r.points) == 0 {
		panic("cluster: lookup on empty ring")
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// LookupN returns the n distinct shards a key replicates on, walking the
// ring clockwise from the key's position; the first entry is the primary.
// n is clamped to the membership size. The result is appended into dst
// (reused, so the hot path allocates nothing once warm).
func (r *Ring) LookupN(h uint64, n int, dst []int) []int {
	if len(r.points) == 0 {
		panic("cluster: lookup on empty ring")
	}
	if n > len(r.shards) {
		n = len(r.shards)
	}
	if n < 1 {
		n = 1
	}
	dst = dst[:0]
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for len(dst) < n {
		if i == len(r.points) {
			i = 0
		}
		s := r.points[i].shard
		seen := false
		for _, d := range dst {
			if d == s {
				seen = true
				break
			}
		}
		if !seen {
			dst = append(dst, s)
		}
		i++
	}
	return dst
}

// String summarizes the ring.
func (r *Ring) String() string {
	return fmt.Sprintf("ring{%d shards, %d vnodes each}", len(r.shards), r.vnodes)
}
