package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("t%d/user%08d", i%4, i)
	}
	return keys
}

// Placement must be a pure function of membership: the same shards yield
// the same routes regardless of the order they joined, in every run.
func TestRingDeterministicPlacement(t *testing.T) {
	t.Parallel()
	a := NewRing(0)
	for s := 0; s < 8; s++ {
		a.Add(s)
	}
	b := NewRing(0)
	for _, s := range []int{5, 0, 7, 2, 6, 1, 4, 3} { // join order must not matter
		b.Add(s)
	}
	var ra, rb []int
	for _, k := range testKeys(5000) {
		h := HashKey(k)
		if a.Lookup(h) != b.Lookup(h) {
			t.Fatalf("key %q: primaries differ across add orders", k)
		}
		ra = a.LookupN(h, 3, ra)
		rb = b.LookupN(h, 3, rb)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("key %q: replica sets differ: %v vs %v", k, ra, rb)
			}
		}
	}
}

// Removing one of N shards must move only that shard's keys, and adding a
// shard must move roughly K/(N+1) keys, all of them onto the newcomer —
// the consistent-hashing contract.
func TestRingKeyMovement(t *testing.T) {
	t.Parallel()
	const nShards, nKeys = 8, 20000
	r := NewRing(0)
	for s := 0; s < nShards; s++ {
		r.Add(s)
	}
	keys := testKeys(nKeys)
	before := make([]int, nKeys)
	for i, k := range keys {
		before[i] = r.Lookup(HashKey(k))
	}

	const victim = 3
	r.Remove(victim)
	for i, k := range keys {
		after := r.Lookup(HashKey(k))
		if before[i] != victim && after != before[i] {
			t.Fatalf("key %q moved %d->%d though shard %d was removed", k, before[i], after, victim)
		}
		if after == victim {
			t.Fatalf("key %q still routes to removed shard", k)
		}
	}
	r.Add(victim)
	for i, k := range keys {
		if got := r.Lookup(HashKey(k)); got != before[i] {
			t.Fatalf("key %q at %d after re-add, want original %d", k, got, before[i])
		}
	}

	moved := 0
	r.Add(nShards) // ninth member
	for i, k := range keys {
		after := r.Lookup(HashKey(k))
		if after != before[i] {
			if after != nShards {
				t.Fatalf("key %q moved %d->%d, not onto the new shard", k, before[i], after)
			}
			moved++
		}
	}
	// Expectation is K/(N+1) ≈ 2222; 128 vnodes keeps the variance well
	// inside 2x, and zero movement would mean the ring is broken.
	if bound := 2 * nKeys / (nShards + 1); moved > bound {
		t.Fatalf("add moved %d keys, want <= %d (≈2·K/N)", moved, bound)
	}
	if moved < nKeys/(4*(nShards+1)) {
		t.Fatalf("add moved only %d keys, suspiciously few", moved)
	}
}

// LookupN must return R distinct live shards, primary first.
func TestRingReplicasDistinct(t *testing.T) {
	t.Parallel()
	r := NewRing(0)
	for s := 0; s < 5; s++ {
		r.Add(s)
	}
	var reps []int
	for _, k := range testKeys(3000) {
		h := HashKey(k)
		reps = r.LookupN(h, 3, reps)
		if len(reps) != 3 {
			t.Fatalf("key %q: %d replicas, want 3", k, len(reps))
		}
		if reps[0] != r.Lookup(h) {
			t.Fatalf("key %q: first replica %d is not the primary %d", k, reps[0], r.Lookup(h))
		}
		seen := map[int]bool{}
		for _, s := range reps {
			if seen[s] {
				t.Fatalf("key %q: duplicate shard %d in replica set %v", k, s, reps)
			}
			if s < 0 || s >= 5 {
				t.Fatalf("key %q: replica %d outside membership", k, s)
			}
			seen[s] = true
		}
	}
	// Over-asking clamps to the membership.
	if got := r.LookupN(HashKey("x"), 99, nil); len(got) != 5 {
		t.Fatalf("clamped replica set has %d shards, want 5", len(got))
	}
}

// With virtual nodes, shares should be within a small factor of 1/N.
func TestRingBalance(t *testing.T) {
	t.Parallel()
	const nShards, nKeys = 8, 40000
	r := NewRing(0)
	for s := 0; s < nShards; s++ {
		r.Add(s)
	}
	counts := make([]int, nShards)
	for _, k := range testKeys(nKeys) {
		counts[r.Lookup(HashKey(k))]++
	}
	for s, c := range counts {
		if c < nKeys/(3*nShards) || c > 3*nKeys/nShards {
			t.Fatalf("shard %d owns %d of %d keys — outside [1/3, 3]x of fair share %d", s, c, nKeys, nKeys/nShards)
		}
	}
}
