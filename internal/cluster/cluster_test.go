package cluster

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"pipette/internal/fault"
	"pipette/internal/kv"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
	"pipette/internal/workload"
)

// testVal derives a deterministic payload for (tenant, record).
func testVal(tenant int, rec uint64) []byte {
	h := sim.Mix64(uint64(tenant)<<40 ^ rec ^ 0xc1a5)
	n := 64 + int(h%448)
	out := make([]byte, n)
	for i := range out {
		h = sim.Mix64(h + uint64(i))
		out[i] = byte(h)
	}
	return out
}

func testKey(tenant int, rec uint64) string {
	return kv.NamespaceKey(tenant, fmt.Sprintf("user%08d", rec))
}

type testClusterOpts struct {
	cfg     Config
	records uint64 // per tenant
	fault   string // profile armed on shard 0
}

func buildTestCluster(t *testing.T, o testClusterOpts) (*Cluster, sim.Time) {
	t.Helper()
	var prof fault.Profile
	if o.fault != "" {
		p, err := fault.ParseProfile(o.fault)
		if err != nil {
			t.Fatalf("parse profile: %v", err)
		}
		prof = p
	}
	c, err := New(o.cfg, func(id int) ShardConfig {
		// Caches are budgeted at 1/8 of DatasetBytes; tests that need media
		// traffic (queueing, hedging, fault injection) pass enough records
		// to spill them.
		sc := ShardConfig{DatasetBytes: 4 << 20, FineReads: true}
		if id == 0 && o.fault != "" {
			sc.Fault, sc.FaultSeed = prof, 7
			sc.ECCUncorrectableFrac = 0.5 // a dying member, not a flaky one
		}
		return sc
	})
	if err != nil {
		t.Fatalf("new cluster: %v", err)
	}
	for tn := 0; tn < o.cfg.Tenants; tn++ {
		for rec := uint64(0); rec < o.records; rec++ {
			if err := c.Load(testKey(tn, rec), testVal(tn, rec)); err != nil {
				t.Fatalf("load: %v", err)
			}
		}
	}
	start, err := c.SealLoad()
	if err != nil {
		t.Fatalf("seal: %v", err)
	}
	return c, start
}

func testReplay(t *testing.T, c *Cluster, start sim.Time, records uint64, requests int) *Result {
	t.Helper()
	mt, err := workload.NewMultiTenant(records, []workload.TenantConfig{
		{Weight: 3, Theta: 0.99, ReadFraction: 0.9},
		{Weight: 1, Theta: 0, ReadFraction: 0.7},
	}, 42)
	if err != nil {
		t.Fatalf("multitenant: %v", err)
	}
	arr, err := workload.NewPoisson(30000, 99)
	if err != nil {
		t.Fatalf("poisson: %v", err)
	}
	res, err := c.Replay(func() Request {
		r := mt.Next()
		req := Request{Tenant: r.Tenant, Write: r.Write, Key: testKey(r.Tenant, r.Record)}
		if r.Write {
			req.Val = testVal(r.Tenant, r.Record)
		}
		return req
	}, requests, ReplayOpts{Arrivals: arr, Start: start, TickEvery: 64, TolerateMediaErrors: true})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return res
}

// Every loaded record must be readable from every replica with identical
// bytes — replication actually placed R copies.
func TestClusterReadBackAllReplicas(t *testing.T) {
	t.Parallel()
	c, start := buildTestCluster(t, testClusterOpts{
		cfg:     Config{Shards: 4, Replicas: 2, Tenants: 2},
		records: 64,
	})
	now := start
	var reps []int
	for tn := 0; tn < 2; tn++ {
		for rec := uint64(0); rec < 64; rec++ {
			key := testKey(tn, rec)
			reps = c.Route(key, reps)
			if len(reps) != 2 {
				t.Fatalf("key %q: %d replicas, want 2", key, len(reps))
			}
			for _, r := range reps {
				got, done, err := c.Shard(r).Store.Get(now, key, nil)
				if err != nil {
					t.Fatalf("key %q shard %d: %v", key, r, err)
				}
				if !bytes.Equal(got, testVal(tn, rec)) {
					t.Fatalf("key %q shard %d: payload mismatch", key, r)
				}
				if done > now {
					now = done
				}
			}
		}
	}
}

// The whole-cluster replay must be a pure function of its inputs: two
// identical clusters replaying the same stream produce deeply equal
// results, including per-shard and per-tenant ledgers.
func TestClusterReplayDeterministic(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"primary", Config{Shards: 4, Replicas: 2, Tenants: 2, Depth: 8, MaxQueue: 32}},
		{"fanout", Config{Shards: 4, Replicas: 3, Tenants: 2, ReadPolicy: ReadFanout}},
		{"hedged", Config{Shards: 4, Replicas: 2, Tenants: 2, ReadPolicy: ReadHedged, HedgeDelay: 50_000}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			run := func() *Result {
				c, start := buildTestCluster(t, testClusterOpts{cfg: tc.cfg, records: 512})
				return testReplay(t, c, start, 512, 400)
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("replays diverge:\n%+v\nvs\n%+v", a, b)
			}
			if a.Hist.Count() == 0 {
				t.Fatal("no successful requests")
			}
			if a.Arrived != a.Admitted+a.Rejected+a.Throttled {
				t.Fatalf("arrival conservation broken: %d != %d+%d+%d", a.Arrived, a.Admitted, a.Rejected, a.Throttled)
			}
			if a.Admitted != a.Hist.Count()+a.Lost {
				t.Fatalf("admission conservation broken: %d != %d+%d", a.Admitted, a.Hist.Count(), a.Lost)
			}
			var tenantArrived uint64
			for _, ts := range a.Tenants {
				tenantArrived += ts.Arrived
			}
			if tenantArrived != a.Arrived {
				t.Fatalf("tenant ledgers cover %d arrivals, want %d", tenantArrived, a.Arrived)
			}
		})
	}
}

// A faulted member with R=2 must fail over instead of losing requests:
// degraded mode serves reads from the surviving replica.
func TestClusterDegradedFailover(t *testing.T) {
	t.Parallel()
	c, start := buildTestCluster(t, testClusterOpts{
		cfg:     Config{Shards: 4, Replicas: 2, Tenants: 2},
		records: 4096,
		fault:   "nand.read:0.8",
	})
	res := testReplay(t, c, start, 4096, 600)
	var failovers uint64
	for _, ss := range res.Shards {
		failovers += ss.Failovers
	}
	if !res.Shards[0].Faulted {
		t.Fatal("shard 0 should report its armed fault profile")
	}
	if res.Shards[0].MediaErrors == 0 {
		t.Fatal("faulted shard shows no media errors — profile not biting")
	}
	if failovers == 0 {
		t.Fatal("no failovers despite a faulted primary")
	}
	if res.Lost*10 > res.Admitted {
		t.Fatalf("degraded mode lost %d of %d admitted — failover not absorbing faults", res.Lost, res.Admitted)
	}
	// And the degraded replay is reproducible too.
	c2, start2 := buildTestCluster(t, testClusterOpts{
		cfg:     Config{Shards: 4, Replicas: 2, Tenants: 2},
		records: 4096,
		fault:   "nand.read:0.8",
	})
	res2 := testReplay(t, c2, start2, 4096, 600)
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("degraded replay not deterministic")
	}
}

// Fan-out reads must mask a faulted replica entirely (no failover hops,
// minimal loss) and never complete later than the primary alone would.
func TestClusterFanoutMasksFaults(t *testing.T) {
	t.Parallel()
	c, start := buildTestCluster(t, testClusterOpts{
		cfg:     Config{Shards: 4, Replicas: 2, Tenants: 2, ReadPolicy: ReadFanout},
		records: 4096,
		fault:   "nand.read:0.8",
	})
	res := testReplay(t, c, start, 4096, 600)
	var fanouts uint64
	for _, ss := range res.Shards {
		fanouts += ss.Fanouts
	}
	if fanouts == 0 {
		t.Fatal("fan-out policy issued no fan-out reads")
	}
	if res.Lost*20 > res.Admitted {
		t.Fatalf("fan-out lost %d of %d admitted", res.Lost, res.Admitted)
	}
}

// A tiny depth and FIFO bound under a hot keyspace must reject with
// backpressure, and a tight token bucket must throttle — and both must
// keep the arrival ledger exact.
func TestClusterBackpressureAndThrottle(t *testing.T) {
	t.Parallel()
	c, start := buildTestCluster(t, testClusterOpts{
		cfg: Config{
			Shards: 2, Replicas: 1, Tenants: 2,
			Depth: 1, MaxQueue: 2,
			TenantRate: 8000, TenantBurst: 64,
		},
		records: 8192,
	})
	res := testReplay(t, c, start, 8192, 500)
	if res.Rejected == 0 {
		t.Fatal("no FIFO rejects despite depth 1, queue 2")
	}
	if res.Throttled == 0 {
		t.Fatal("no throttles despite an 8k ops/s tenant bucket under a 30k ops/s offered load")
	}
	if res.Arrived != res.Admitted+res.Rejected+res.Throttled {
		t.Fatalf("arrival conservation broken: %d != %d+%d+%d", res.Arrived, res.Admitted, res.Rejected, res.Throttled)
	}
	var rej, thr uint64
	for _, ts := range res.Tenants {
		rej += ts.Rejected
		thr += ts.Throttled
	}
	if rej != res.Rejected || thr != res.Throttled {
		t.Fatalf("tenant ledgers (%d rej, %d thr) disagree with totals (%d, %d)", rej, thr, res.Rejected, res.Throttled)
	}
}

// TestClusterTailBlameConservation armors the whole-request blame
// synthesis: across every read policy — plain primary, failover off a
// dying member, hedged reads, full fan-out — and the write-all path,
// every request the tail recorder keeps must carry a contiguous segment
// list that partitions [arrival, completion] exactly. The keep budget is
// set to the request count so EVERY successful request is checked, not
// just the slow ones.
func TestClusterTailBlameConservation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		cfg     Config
		fault   string
		wantRes string // a synthetic blame label this path must produce
	}{
		{"primary", Config{Shards: 4, Replicas: 1, Tenants: 2}, "", ""},
		{"failover", Config{Shards: 4, Replicas: 2, Tenants: 2}, "nand.read:0.8", telemetry.ResFailover},
		{"hedged", Config{Shards: 4, Replicas: 2, Tenants: 2, Depth: 4,
			ReadPolicy: ReadHedged, HedgeDelay: 30 * sim.Microsecond}, "nand.read:0.8", telemetry.ResHedge},
		{"fanout", Config{Shards: 4, Replicas: 2, Tenants: 2, ReadPolicy: ReadFanout}, "nand.read:0.8", ""},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			const requests = 600
			c, start := buildTestCluster(t, testClusterOpts{cfg: tc.cfg, records: 4096, fault: tc.fault})
			mt, err := workload.NewMultiTenant(4096, []workload.TenantConfig{
				{Weight: 3, Theta: 0.99, ReadFraction: 0.9},
				{Weight: 1, Theta: 0, ReadFraction: 0.7},
			}, 42)
			if err != nil {
				t.Fatal(err)
			}
			arr, err := workload.NewPoisson(30000, 99)
			if err != nil {
				t.Fatal(err)
			}
			tail := telemetry.NewTailRecorder(requests, requests)
			grid := telemetry.NewLatencyGrid(start)
			res, err := c.Replay(func() Request {
				r := mt.Next()
				req := Request{Tenant: r.Tenant, Write: r.Write, Key: testKey(r.Tenant, r.Record)}
				if r.Write {
					req.Val = testVal(r.Tenant, r.Record)
				}
				return req
			}, requests, ReplayOpts{Arrivals: arr, Start: start, TickEvery: 64,
				TolerateMediaErrors: true, Tail: tail, Heat: grid})
			if err != nil {
				t.Fatal(err)
			}
			if res.Hist.Count() == 0 {
				t.Fatal("empty replay")
			}
			if got := tail.Observed(); got != res.Hist.Count() {
				t.Fatalf("tail observed %d requests, histogram has %d", got, res.Hist.Count())
			}
			heat := grid.Snapshot()
			if heat == nil || heat.Total != res.Hist.Count() {
				t.Fatalf("heatmap total %v, histogram has %d", heat, res.Hist.Count())
			}
			snap := tail.Snapshot()
			if snap == nil || len(snap.TopK) == 0 {
				t.Fatal("no tail exemplars captured")
			}
			seenRes := map[string]bool{}
			for _, ex := range snap.TopK {
				if len(ex.Segs) == 0 {
					t.Fatalf("exemplar seq %d has no segments", ex.Seq)
				}
				at := ex.Start
				for _, s := range ex.Segs {
					if s.Start != at {
						t.Fatalf("%s: exemplar seq %d: blame gap at %v (segment starts %v)",
							tc.name, ex.Seq, at, s.Start)
					}
					if s.End < s.Start {
						t.Fatalf("exemplar seq %d: negative segment %+v", ex.Seq, s)
					}
					at = s.End
					seenRes[s.Res] = true
				}
				if at != ex.End {
					t.Fatalf("%s: exemplar seq %d: segments end at %v, request ends at %v — conservation broken",
						tc.name, ex.Seq, at, ex.End)
				}
			}
			if tc.wantRes != "" && !seenRes[tc.wantRes] {
				t.Errorf("%s: no blame segment tagged %q — the path's synthesized prefix never appeared",
					tc.name, tc.wantRes)
			}
		})
	}
}

// Hedged reads fire only when the primary is slow, and wins show up as a
// latency improvement over never hedging under a hot shard.
func TestClusterHedgedReads(t *testing.T) {
	t.Parallel()
	run := func(policy ReadPolicy, delay sim.Time) *Result {
		c, start := buildTestCluster(t, testClusterOpts{
			cfg:     Config{Shards: 4, Replicas: 2, Tenants: 2, Depth: 4, ReadPolicy: policy, HedgeDelay: delay},
			records: 4096,
		})
		return testReplay(t, c, start, 4096, 600)
	}
	hedged := run(ReadHedged, 30_000)
	var hedges uint64
	for _, ss := range hedged.Shards {
		hedges += ss.Hedges
	}
	if hedges == 0 {
		t.Fatal("hedged policy with a 30µs trigger issued no hedges")
	}
	plain := run(ReadPrimary, 0)
	if hedged.Hist.Count() == 0 || plain.Hist.Count() == 0 {
		t.Fatal("empty replay")
	}
	if hq, pq := hedged.Hist.Quantile(0.99), plain.Hist.Quantile(0.99); hq > pq {
		t.Logf("note: hedged p99 %v > primary p99 %v (hedges add load; not a failure)", hq, pq)
	}
}
