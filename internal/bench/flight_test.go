package bench

import (
	"strings"
	"testing"

	"pipette/internal/telemetry"
)

// TestFlightPanicDumpsAndRethrows pins the -flight-dump panic path: a
// cell that panics triggers exactly one dump (with the cell label and
// panic value in the reason) and the panic keeps unwinding afterwards.
func TestFlightPanicDumpsAndRethrows(t *testing.T) {
	fr := telemetry.NewFlightRecorder(16)
	var reasons []string
	ArmFlight(fr, func(reason string) { reasons = append(reasons, reason) })
	defer ArmFlight(nil, nil)

	var p *Pool // nil pool: serial path, same flightPanic guard
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic swallowed by runCell")
			}
			if r != "boom" {
				t.Fatalf("panic value changed: %v", r)
			}
		}()
		_ = p.RunCells([]Cell{{Label: "exploding-cell", Run: func() (*Result, error) {
			panic("boom")
		}}})
	}()
	if len(reasons) != 1 {
		t.Fatalf("dump called %d times, want once", len(reasons))
	}
	if !strings.Contains(reasons[0], "exploding-cell") || !strings.Contains(reasons[0], "boom") {
		t.Errorf("dump reason %q misses cell label or panic value", reasons[0])
	}

	// Disarmed, a panicking cell must not call the stale dump func.
	ArmFlight(nil, nil)
	func() {
		defer func() { recover() }()
		_ = p.RunCells([]Cell{{Label: "again", Run: func() (*Result, error) { panic("x") }}})
	}()
	if len(reasons) != 1 {
		t.Fatalf("disarmed flight recorder still dumped: %v", reasons)
	}
}

// TestArmFlightInstallsTracer checks newEngine attaches the armed
// recorder as the engine tracer, so the ring actually sees spans.
func TestArmFlightInstallsTracer(t *testing.T) {
	fr := telemetry.NewFlightRecorder(telemetry.DefaultFlightEvents)
	ArmFlight(fr, func(string) {})
	defer ArmFlight(nil, nil)

	if got := armedFlight(); got != fr {
		t.Fatalf("armedFlight returned %v, want the armed recorder", got)
	}
	ArmFlight(nil, nil)
	if got := armedFlight(); got != nil {
		t.Fatalf("disarm left recorder %v installed", got)
	}
}
