package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"pipette/internal/workload"
)

// The harness tests assert the paper's qualitative shapes at TinyScale:
// who wins, in which direction factors move, where crossovers fall.

func ops(res *Result) float64 { return res.Snapshot.ThroughputOpsPerSec() }

func TestSyntheticUniformShapes(t *testing.T) {
	t.Parallel()
	m, err := RunSynthetic(TinyScale(), workload.Uniform, nil)
	if err != nil {
		t.Fatal(err)
	}
	get := func(engine, mix string) *Result { return m.Results[engine][mix] }

	// Paper Figure 6: Pipette's win grows with the small-read ratio and is
	// substantial for pure fine-grained workload E.
	prev := 0.0
	for _, mix := range []string{"A", "C", "E"} {
		ratio := ops(get("Pipette", mix)) / ops(get("Block I/O", mix))
		if ratio < prev-0.05 {
			t.Errorf("Pipette/Block ratio fell from %.2f to %.2f at mix %s", prev, ratio, mix)
		}
		prev = ratio
	}
	if e := ops(get("Pipette", "E")) / ops(get("Block I/O", "E")); e < 1.5 {
		t.Errorf("Pipette only %.2fx block I/O on mix E uniform", e)
	}
	// Pipette must not hurt the pure-large workload A (paper: "negligible
	// overhead").
	if a := ops(get("Pipette", "A")) / ops(get("Block I/O", "A")); a < 0.95 {
		t.Errorf("Pipette %.2fx block I/O on mix A; should be ~1", a)
	}
	// 2B-SSD MMIO degrades as the large-read ratio grows.
	if ops(get("2B-SSD MMIO", "A")) >= ops(get("2B-SSD MMIO", "E")) {
		t.Error("MMIO should do worse with more large reads")
	}

	// Paper Table 2 shapes: block traffic is location-driven, so constant
	// across mixes; byte engines move exactly the requested bytes; Pipette
	// moves the least for fine-read-heavy mixes.
	blkA := get("Block I/O", "A").Snapshot.IO.TrafficMB()
	blkE := get("Block I/O", "E").Snapshot.IO.TrafficMB()
	if blkA < blkE*0.9 || blkA > blkE*1.1 {
		t.Errorf("block traffic varies across mixes: A=%.1f E=%.1f", blkA, blkE)
	}
	reqE := get("2B-SSD DMA", "E").Snapshot.IO
	if reqE.BytesTransferred != reqE.BytesRequested {
		t.Errorf("2B-SSD must move exactly requested bytes: %d vs %d",
			reqE.BytesTransferred, reqE.BytesRequested)
	}
	pipE := get("Pipette", "E").Snapshot.IO.TrafficMB()
	nocE := get("Pipette w/o cache", "E").Snapshot.IO.TrafficMB()
	if pipE >= nocE {
		t.Errorf("Pipette traffic %.1f not below no-cache %.1f on mix E", pipE, nocE)
	}
	if blkE < 10*pipE {
		t.Errorf("block traffic %.1f should dwarf Pipette's %.1f on mix E", blkE, pipE)
	}
}

func TestSyntheticZipfianShapes(t *testing.T) {
	t.Parallel()
	m, err := RunSynthetic(TinyScale(), workload.Zipfian, nil)
	if err != nil {
		t.Fatal(err)
	}
	get := func(engine, mix string) *Result { return m.Results[engine][mix] }
	// Paper Figure 7: Pipette >= block everywhere, growing with small-read
	// share.
	for _, mix := range []string{"A", "B", "C", "D", "E"} {
		ratio := ops(get("Pipette", mix)) / ops(get("Block I/O", mix))
		if ratio < 0.95 {
			t.Errorf("Pipette %.2fx block on zipfian mix %s", ratio, mix)
		}
	}
	if e := ops(get("Pipette", "E")) / ops(get("Block I/O", "E")); e < 1.1 {
		t.Errorf("Pipette only %.2fx block on zipfian E", e)
	}
	// Zipfian block traffic is far below uniform's (reuse+read-ahead hits),
	// mirroring Table 3 vs Table 2.
	u, err := RunSynthetic(TinyScale(), workload.Uniform, nil)
	if err != nil {
		t.Fatal(err)
	}
	zt := get("Block I/O", "E").Snapshot.IO.TrafficMB()
	ut := u.Results["Block I/O"]["E"].Snapshot.IO.TrafficMB()
	if zt >= ut {
		t.Errorf("zipfian block traffic %.1f not below uniform %.1f", zt, ut)
	}
}

func TestLatencySweepShapes(t *testing.T) {
	t.Parallel()
	s := TinyScale()
	res, err := LatencySweep(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(engine string, size int) float64 {
		return res[engine][size].Snapshot.MeanLat.Micros()
	}
	// Paper Figure 8: Pipette ~2 us flat; MMIO grows with size; the others
	// are roughly flat; DMA slower than Pipette w/o cache by the mapping
	// cost; block I/O slowest of the flat curves... Pipette lowest always.
	for _, size := range s.LatencySizes {
		p := mean("Pipette", size)
		if p > 5 {
			t.Errorf("Pipette latency %.1f us at %dB; want ~2", p, size)
		}
		for _, other := range []string{"Block I/O", "2B-SSD MMIO", "2B-SSD DMA", "Pipette w/o cache"} {
			if mean(other, size) <= p {
				t.Errorf("%s %.1f us <= Pipette %.1f at %dB", other, mean(other, size), p, size)
			}
		}
	}
	first, last := s.LatencySizes[0], s.LatencySizes[len(s.LatencySizes)-1]
	if mean("2B-SSD MMIO", last) < mean("2B-SSD MMIO", first)+50 {
		t.Error("MMIO latency not growing with request size")
	}
	if grow := mean("2B-SSD DMA", last) - mean("2B-SSD DMA", first); grow > 10 {
		t.Errorf("2B-SSD DMA latency grew %.1f us across sizes; should be ~flat", grow)
	}
	if mean("2B-SSD DMA", first) <= mean("Pipette w/o cache", first) {
		t.Error("per-access DMA mapping should make 2B-SSD DMA slower than Pipette w/o cache")
	}
}

func TestAppShapes(t *testing.T) {
	t.Parallel()
	res, err := RunApps(TinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range res.Apps {
		blk := res.Results["Block I/O"][app]
		pip := res.Results["Pipette"][app]
		// Paper Figure 9(a): Pipette beats block I/O on both applications.
		if ops(pip) <= ops(blk) {
			t.Errorf("%s: Pipette %.0f ops/s not above block %.0f", app, ops(pip), ops(blk))
		}
		// Paper Figure 9(b): orders-of-magnitude traffic reduction.
		if pip.Snapshot.IO.TrafficMB()*5 > blk.Snapshot.IO.TrafficMB() {
			t.Errorf("%s: Pipette traffic %.1f not well below block %.1f",
				app, pip.Snapshot.IO.TrafficMB(), blk.Snapshot.IO.TrafficMB())
		}
		// Paper Figure 1: 2B-SSD reduces traffic but not throughput.
		dma := res.Results["2B-SSD DMA"][app]
		if dma.Snapshot.IO.TrafficMB() >= blk.Snapshot.IO.TrafficMB() {
			t.Errorf("%s: 2B-SSD traffic not below block", app)
		}
		if ops(dma) >= ops(blk) {
			t.Errorf("%s: 2B-SSD throughput %.0f above block %.0f (motivation inverted)",
				app, ops(dma), ops(blk))
		}
	}
	// Paper Table 4: the fine cache outhits the page cache on the
	// recommender while using far less memory.
	blk := res.Results["Block I/O"]["Recommender System"].Snapshot
	pip := res.Results["Pipette"]["Recommender System"].Snapshot
	if pip.FineCache.HitRatio() <= blk.PageCache.HitRatio() {
		t.Errorf("FGRC hit %.1f%% not above page cache %.1f%%",
			pip.FineCache.HitRatio()*100, blk.PageCache.HitRatio()*100)
	}
	if pip.MemoryMB >= blk.MemoryMB {
		t.Errorf("Pipette memory %.1f MB not below block %.1f MB", pip.MemoryMB, blk.MemoryMB)
	}
}

func TestAblationRuns(t *testing.T) {
	t.Parallel()
	tab, err := RunAblation(TinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(AblationVariants()) {
		t.Fatalf("ablation rows %d, variants %d", len(tab.Rows), len(AblationVariants()))
	}
	// The dispatcher ablation: forcing 128 B reads onto the block path must
	// produce materially more traffic than the default.
	var def, d64 string
	for _, row := range tab.Rows {
		switch row[0] {
		case "default":
			def = row[2]
		case "dispatch-64B":
			d64 = row[2]
		}
	}
	if def == "" || d64 == "" {
		t.Fatalf("missing ablation rows: %q %q", def, d64)
	}
	if def >= d64 && len(def) >= len(d64) {
		t.Errorf("dispatch-64B traffic %s not above default %s", d64, def)
	}
}

func TestFindExperiment(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"fig6", "table2", "fig7", "table3", "fig8",
		"fig9a", "fig9b", "table4", "fig1", "ablation", "apps", "latency",
		"kv", "ycsb"} {
		if _, err := Find(name); err != nil {
			t.Errorf("Find(%q): %v", name, err)
		}
	}
	if _, err := Find("fig99"); err == nil {
		t.Error("unknown experiment resolved")
	}
}

func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness pass")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, TinyScale(), nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 6", "Table 2", "Figure 7", "Table 3",
		"Figure 8", "Figure 9(a)", "Figure 9(b)", "Table 4", "Figure 1", "Ablation",
		"YCSB"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunVerifiesContent(t *testing.T) {
	t.Parallel()
	// VerifyEvery exercises the oracle comparison path; a passing run means
	// every sampled read returned device-true bytes.
	s := TinyScale()
	engines, err := engineSet(s.stackConfig(s.FileSize()))
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.Mixes(s.FileSize(), 4096, workload.Uniform, 7)[2]
	for _, e := range engines {
		gen, err := workload.NewSynthetic(mix)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(e, gen, 500, RunOpts{VerifyEvery: 1}); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
	}
}

func TestSensitivityShapes(t *testing.T) {
	t.Parallel()
	tab, err := RunCacheSensitivity(TinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: block reference + 4 arena sizes, monotone non-decreasing hit
	// ratio as the arena grows.
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	prev := -1.0
	for _, row := range tab.Rows[1:] {
		var hit float64
		if _, err := fmt.Sscanf(row[4], "%f", &hit); err != nil {
			t.Fatalf("hit cell %q", row[4])
		}
		if hit < prev-1.0 {
			t.Fatalf("hit ratio fell as arena grew: %v then %v", prev, hit)
		}
		prev = hit
	}
}

func TestSearchEngineExperiment(t *testing.T) {
	t.Parallel()
	tab, err := RunSearchEngine(TinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(EngineNames) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Pipette must beat the no-cache byte engines and move less data than
	// block I/O.
	vals := map[string][]string{}
	for _, row := range tab.Rows {
		vals[row[0]] = row
	}
	var pipOps, nocOps, blkTraffic, pipTraffic float64
	fmt.Sscanf(vals["Pipette"][1], "%f", &pipOps)
	fmt.Sscanf(vals["Pipette w/o cache"][1], "%f", &nocOps)
	fmt.Sscanf(vals["Block I/O"][3], "%f", &blkTraffic)
	fmt.Sscanf(vals["Pipette"][3], "%f", &pipTraffic)
	if pipOps <= nocOps {
		t.Errorf("Pipette %.0f ops/s not above no-cache %.0f", pipOps, nocOps)
	}
	if pipTraffic*2 > blkTraffic {
		t.Errorf("Pipette traffic %.1f not well below block %.1f", pipTraffic, blkTraffic)
	}
}
