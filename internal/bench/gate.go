package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"pipette/internal/report"
)

// Summary is the machine-readable record of one suite run: the shape of
// BENCH_<rev>.json. Wall-clock fields are informational (they vary with
// the host); the per-cell simulated metrics are deterministic, which is
// what makes the regression gate exact — same code, same scale, same
// numbers, so any drift beyond tolerance is a real change.
type Summary struct {
	Rev         string     `json:"rev,omitempty"`
	Experiment  string     `json:"experiment"`
	Scale       string     `json:"scale"`
	Workers     int        `json:"workers"`
	WallSeconds float64    `json:"wall_seconds"`
	Cells       []CellPerf `json:"cells"`
}

// WriteFile writes the summary as indented JSON to path ("-" = stdout).
func (s *Summary) WriteFile(path string) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSummary loads a summary (e.g. the committed BENCH_baseline.json).
func ReadSummary(path string) (*Summary, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Summary
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("bench: baseline %s: %w", path, err)
	}
	return &s, nil
}

// Tolerance is the gate's per-metric relative band, as fractions: with
// Throughput 0.1 a cell fails when its simulated throughput drops more
// than 10% below baseline. Simulated metrics are deterministic, so the
// bands absorb only intentional model drift, not run-to-run noise.
type Tolerance struct {
	Throughput float64 // max relative drop in sim ops/s
	ReadAmp    float64 // max relative rise in read amplification
	Latency    float64 // max relative rise in mean/p99 latency
}

// DefaultTolerance is the gate's default band (10% on every axis).
func DefaultTolerance() Tolerance {
	return Tolerance{Throughput: 0.10, ReadAmp: 0.10, Latency: 0.10}
}

// Uniform builds a tolerance with the same fraction on every axis.
func Uniform(f float64) Tolerance {
	return Tolerance{Throughput: f, ReadAmp: f, Latency: f}
}

// Regression is one tolerance-band violation.
type Regression struct {
	Label  string  // cell label
	Metric string  // which metric crossed its band
	Base   float64 // baseline value
	Cur    float64 // current value
	Limit  float64 // the bound that was crossed
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (limit %.4g)", r.Label, r.Metric, r.Base, r.Cur, r.Limit)
}

// Compare gates cur against base: every baseline cell must still exist
// and stay inside the tolerance bands on simulated throughput, read
// amplification, and latency. Cells new in cur pass silently — they have
// no baseline yet. Mismatched scale or experiment set is an error, not a
// regression: the numbers would be incomparable.
func Compare(cur, base *Summary, tol Tolerance) ([]Regression, error) {
	if cur.Scale != base.Scale {
		return nil, fmt.Errorf("bench: scale mismatch: current %q vs baseline %q", cur.Scale, base.Scale)
	}
	if cur.Experiment != base.Experiment {
		return nil, fmt.Errorf("bench: experiment mismatch: current %q vs baseline %q", cur.Experiment, base.Experiment)
	}
	curCells := make(map[string]CellPerf, len(cur.Cells))
	for _, c := range cur.Cells {
		curCells[c.Label] = c
	}
	var regs []Regression
	for _, b := range base.Cells {
		c, ok := curCells[b.Label]
		if !ok {
			regs = append(regs, Regression{Label: b.Label, Metric: "missing cell"})
			continue
		}
		if b.SimOpsPerSec > 0 {
			if limit := b.SimOpsPerSec * (1 - tol.Throughput); c.SimOpsPerSec < limit {
				regs = append(regs, Regression{b.Label, "sim_ops_per_sec", b.SimOpsPerSec, c.SimOpsPerSec, limit})
			}
		}
		if b.ReadAmp > 0 {
			if limit := b.ReadAmp * (1 + tol.ReadAmp); c.ReadAmp > limit {
				regs = append(regs, Regression{b.Label, "read_amp", b.ReadAmp, c.ReadAmp, limit})
			}
		}
		if b.MeanUs > 0 {
			if limit := b.MeanUs * (1 + tol.Latency); c.MeanUs > limit {
				regs = append(regs, Regression{b.Label, "mean_us", b.MeanUs, c.MeanUs, limit})
			}
		}
		if b.P99Us > 0 {
			if limit := b.P99Us * (1 + tol.Latency); c.P99Us > limit {
				regs = append(regs, Regression{b.Label, "p99_us", b.P99Us, c.P99Us, limit})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Label != regs[j].Label {
			return regs[i].Label < regs[j].Label
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs, nil
}

// DiffSummaries builds the full per-cell, per-metric delta table between
// two suite summaries (the BENCH_<rev>.json shape) as a report.Diff. The
// tolerance verdicts come from Compare — the same machinery the CI perf
// gate runs — so a row is flagged exactly when the gate would call it a
// regression; the diff just also shows everything that moved inside the
// band. A summary diffed against itself has zero changed rows.
func DiffSummaries(cur, base *Summary, tol Tolerance) (*report.Diff, error) {
	regs, err := Compare(cur, base, tol)
	if err != nil {
		return nil, err
	}
	exceeded := make(map[string]bool, len(regs))
	for _, r := range regs {
		exceeded[r.Label+"\x00"+r.Metric] = true
	}
	label := func(s *Summary) string {
		l := s.Experiment + " scale=" + s.Scale
		if s.Rev != "" {
			l += " rev=" + s.Rev
		}
		return l
	}
	d := &report.Diff{
		OldLabel:  label(base),
		NewLabel:  label(cur),
		Tolerance: tol.Throughput,
	}
	curCells := make(map[string]*CellPerf, len(cur.Cells))
	for i := range cur.Cells {
		curCells[cur.Cells[i].Label] = &cur.Cells[i]
	}
	metrics := []struct {
		name string
		get  func(*CellPerf) float64
	}{
		{"sim_ops_per_sec", func(c *CellPerf) float64 { return c.SimOpsPerSec }},
		{"read_amp", func(c *CellPerf) float64 { return c.ReadAmp }},
		{"mean_us", func(c *CellPerf) float64 { return c.MeanUs }},
		{"p99_us", func(c *CellPerf) float64 { return c.P99Us }},
	}
	for i := range base.Cells {
		b := &base.Cells[i]
		c, ok := curCells[b.Label]
		if !ok {
			d.OnlyOld = append(d.OnlyOld, b.Label)
			continue
		}
		for _, m := range metrics {
			bv, cv := m.get(b), m.get(c)
			if bv == 0 && cv == 0 {
				continue
			}
			row := report.DiffRow{Run: b.Label, Metric: m.name, Old: bv, New: cv,
				Exceeds: exceeded[b.Label+"\x00"+m.name]}
			if bv != 0 {
				row.DeltaPct = 100 * (cv - bv) / bv
			}
			d.Rows = append(d.Rows, row)
		}
	}
	baseLabels := make(map[string]bool, len(base.Cells))
	for i := range base.Cells {
		baseLabels[base.Cells[i].Label] = true
	}
	for i := range cur.Cells {
		if !baseLabels[cur.Cells[i].Label] {
			d.OnlyNew = append(d.OnlyNew, cur.Cells[i].Label)
		}
	}
	return d, nil
}

// GateReport renders the compare outcome for humans: per-cell verdicts
// and the regression list (empty = all clear).
func GateReport(cur, base *Summary, regs []Regression) string {
	var b strings.Builder
	fmt.Fprintf(&b, "perf gate: %d baseline cells, %d current cells, %d regressions\n",
		len(base.Cells), len(cur.Cells), len(regs))
	for _, r := range regs {
		fmt.Fprintf(&b, "  REGRESSION %s\n", r)
	}
	if len(regs) == 0 {
		b.WriteString("  all cells within tolerance\n")
	}
	return b.String()
}
