package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pipette/internal/fault"
	"pipette/internal/report"
	"pipette/internal/workload"
)

// TestRunCapturesStagesAndResources checks that every cell measurement
// carries the per-stage attribution and the resource occupancy, that the
// attribution conserves (stage sum == summed end-to-end latencies), and
// that the NAND channels and the DMA link saw traffic.
func TestRunCapturesStagesAndResources(t *testing.T) {
	s := TinyScale()
	e, err := newEngine(4, s.stackConfig(s.FileSize())) // Pipette
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.Mixes(s.FileSize(), 4096, workload.Uniform, 0xbead)[2]
	gen, err := workload.NewSynthetic(mix)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, gen, 500, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages.Requests == 0 {
		t.Fatal("stage account saw no requests")
	}
	if res.Stages.Sum() != res.Stages.Elapsed {
		t.Fatalf("stage sum %v != elapsed %v: conservation broken", res.Stages.Sum(), res.Stages.Elapsed)
	}
	if res.Resources == nil || len(res.Resources.Resources) == 0 {
		t.Fatal("no resource snapshot captured")
	}
	var nand, dma int64
	for _, r := range res.Resources.Resources {
		switch {
		case strings.HasPrefix(r.Name, "nand.ch"):
			nand += r.BusyNs
		case r.Name == "pcie.dma":
			dma = r.BusyNs
		}
	}
	if nand == 0 || dma == 0 {
		t.Fatalf("resource occupancy not recorded: nand=%d dma=%d", nand, dma)
	}

	run := ExportRun("Pipette", "mixC", res)
	var sum int64
	for _, row := range run.Stages {
		sum += row.TotalNs
	}
	if sum != run.StageNs {
		t.Fatalf("export stage rows sum to %d, StageNs is %d", sum, run.StageNs)
	}
}

// TestRunTailExemplarsConserve checks the single-device tail capture with
// the fault-retry path armed: a read-disturb profile inflates raw bit
// errors so requests traverse ECC retries and the block-path fallback,
// and every captured exemplar's segments must still partition
// [start, end] exactly. The tail recorder hangs off the stage account so
// it observes every finished request, lost ones included; the heatmap
// records completions only, so its total is the goodput.
func TestRunTailExemplarsConserve(t *testing.T) {
	s := TinyScale()
	prof, err := fault.ParseProfile("nand.read:rber*20")
	if err != nil {
		t.Fatal(err)
	}
	s.Fault = prof
	e, err := newEngine(4, s.stackConfig(s.FileSize())) // Pipette
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.Mixes(s.FileSize(), 4096, workload.Uniform, 0xbead)[2]
	gen, err := workload.NewSynthetic(mix)
	if err != nil {
		t.Fatal(err)
	}
	const requests = 500
	res, err := Run(e, gen, requests, RunOpts{TolerateMediaErrors: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost == 0 {
		t.Fatal("rber*20 profile injected no uncorrectable reads; fault path not exercised")
	}
	if res.Tail == nil || len(res.Tail.TopK) == 0 {
		t.Fatal("no tail exemplars captured")
	}
	if res.Tail.Observed != requests {
		t.Fatalf("tail observed %d, want %d", res.Tail.Observed, requests)
	}
	for _, ex := range res.Tail.TopK {
		at := ex.Start
		for _, seg := range ex.Segs {
			if seg.Start != at {
				t.Fatalf("exemplar seq %d: blame gap at %v (segment starts %v)", ex.Seq, at, seg.Start)
			}
			at = seg.End
		}
		if at != ex.End {
			t.Fatalf("exemplar seq %d: segments end at %v, request ends at %v", ex.Seq, at, ex.End)
		}
	}
	if res.Heat == nil || res.Heat.Total != requests-res.Lost {
		t.Fatalf("heatmap total %+v, want %d completions", res.Heat, requests-res.Lost)
	}
	// The export carries the same material with the same conservation.
	run := ExportRun("Pipette", "mixC", res)
	if len(run.Exemplars) != len(res.Tail.TopK) || run.TailKept != res.Tail.Kept {
		t.Fatalf("export lost exemplars: %d vs %d", len(run.Exemplars), len(res.Tail.TopK))
	}
	for _, ex := range run.Exemplars {
		at := ex.StartNs
		for _, sp := range ex.Spans {
			if sp.StartNs != at {
				t.Fatalf("export exemplar seq %d: gap at %d", ex.Seq, at)
			}
			at = sp.EndNs
		}
		if us := float64(at-ex.StartNs) / 1e3; us != ex.LatencyUs {
			t.Fatalf("export exemplar seq %d: spans cover %.3fus, latency says %.3fus", ex.Seq, us, ex.LatencyUs)
		}
	}
}

// TestPhaseExportDeterministicAcrossWorkers runs the phases experiment at
// -j 1 and -j 2 and requires the stdout tables, the export bundle, and the
// rendered HTML to be byte-identical — the report pipeline must not leak
// scheduling order anywhere.
func TestPhaseExportDeterministicAcrossWorkers(t *testing.T) {
	s := TinyScale()
	dir := t.TempDir()
	outs := make([]bytes.Buffer, 2)
	exports := make([][]byte, 2)
	htmls := make([][]byte, 2)
	for i, workers := range []int{1, 2} {
		path := filepath.Join(dir, "exp.json")
		err := WritePhaseBreakdown(&outs[i], s, TelemetryOpts{ExportOut: path}, NewPool(workers))
		if err != nil {
			t.Fatalf("-j %d: %v", workers, err)
		}
		if exports[i], err = os.ReadFile(path); err != nil {
			t.Fatal(err)
		}
		exp, err := report.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var h bytes.Buffer
		if err := report.WriteHTML(&h, "phases", []*report.Export{exp}); err != nil {
			t.Fatal(err)
		}
		htmls[i] = h.Bytes()
	}
	if !bytes.Equal(outs[0].Bytes(), outs[1].Bytes()) {
		t.Error("phases stdout differs between -j 1 and -j 2")
	}
	if !bytes.Equal(exports[0], exports[1]) {
		t.Error("export bundle differs between -j 1 and -j 2")
	}
	if !bytes.Equal(htmls[0], htmls[1]) {
		t.Error("rendered HTML differs between -j 1 and -j 2")
	}
	if !strings.Contains(outs[0].String(), "stage waterfall") ||
		!strings.Contains(outs[0].String(), "resource utilization") {
		t.Error("phases output misses the waterfall/utilization tables")
	}
}
