package bench

import (
	"errors"
	"fmt"
	"io"

	"pipette/internal/buildinfo"
	"pipette/internal/cluster"
	"pipette/internal/fault"
	"pipette/internal/kv"
	"pipette/internal/metrics"
	"pipette/internal/report"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
	"pipette/internal/workload"
)

// Cluster-sweep fixed parameters: replicated cells read hedged with this
// delay (the knob the tail-latency trade-off turns on); degraded cells arm
// this profile on shard 0 — a dying member whose injected read errors
// mostly defeat the ECC retry ladder, not a flaky one that always recovers.
const (
	clusterHedgeDelay      = 50 * sim.Microsecond
	clusterDegradedProfile = "nand.read:0.6"
	clusterDegradedECCFrac = 0.5
	clusterTickEvery       = 64
	clusterReadFraction    = 0.9
)

// clusterPoint is one cell of the sweep grid: a replication factor, the
// tenants' Zipf skew, and whether one member is degraded.
type clusterPoint struct {
	replicas int
	skew     float64
	degraded bool
}

func (pt clusterPoint) mode() string {
	if pt.degraded {
		return "degraded"
	}
	return "healthy"
}

func (pt clusterPoint) policy(s Scale) cluster.ReadPolicy {
	if pt.replicas > 1 {
		return cluster.ReadHedged
	}
	return cluster.ReadPrimary
}

func (pt clusterPoint) label() string {
	return fmt.Sprintf("cluster/r%d/zipf%.2f/%s", pt.replicas, pt.skew, pt.mode())
}

// workload names the point for export rows.
func (pt clusterPoint) workload() string {
	return fmt.Sprintf("multitenant-zipf%.2f-r%d-%s", pt.skew, pt.replicas, pt.mode())
}

// clusterPoints enumerates the sweep grid in render order: per skew, per
// replication factor, the healthy cell then its one-member-degraded twin.
func clusterPoints(s Scale) []clusterPoint {
	var points []clusterPoint
	for _, skew := range s.ClusterSkews {
		for _, r := range s.ClusterReplicas {
			points = append(points, clusterPoint{replicas: r, skew: skew})
			points = append(points, clusterPoint{replicas: r, skew: skew, degraded: true})
		}
	}
	return points
}

// clusterKey names one tenant record (the pre-namespace key).
func clusterKey(rec uint64) string { return fmt.Sprintf("user%08d", rec) }

// clusterVal builds the deterministic 64-512 B payload for one record,
// appending into buf.
func clusterVal(tenant int, rec uint64, buf []byte) []byte {
	h := sim.Mix64(uint64(tenant)*0x9e3779b97f4a7c15 ^ rec ^ 0xc1a57e12)
	n := 64 + int(h%449)
	buf = buf[:0]
	for len(buf) < n {
		h = sim.Mix64(h)
		for s := 0; s < 64 && len(buf) < n; s += 8 {
			buf = append(buf, byte(h>>s))
		}
	}
	return buf
}

// clusterTenants is the sweep's tenant mix: tenant 0 is the heavy tenant
// (3x the request share of each peer — the aggressor the per-tenant token
// bucket exists for); every tenant keys with the swept Zipf skew.
func clusterTenants(s Scale, skew float64) []workload.TenantConfig {
	tenants := make([]workload.TenantConfig, s.ClusterTenants)
	for t := range tenants {
		tenants[t] = workload.TenantConfig{Weight: 1, Theta: skew, ReadFraction: clusterReadFraction}
		if t == 0 {
			tenants[t].Weight = 3
		}
	}
	return tenants
}

// clusterSlot is one finished cell's full measurement: the pool-facing
// bench result, the tier's own ledger, and the per-shard summary rows the
// report renders.
type clusterSlot struct {
	res    *Result
	cres   *cluster.Result
	shards []report.ShardSummary
}

// runClusterCell builds a private cluster, preloads every tenant's
// records, seals (arming the degraded member's faults), and replays the
// open-loop multi-tenant stream.
func runClusterCell(s Scale, pt clusterPoint) (*clusterSlot, error) {
	cfg := cluster.Config{
		Shards:     s.ClusterShards,
		Replicas:   pt.replicas,
		Tenants:    s.ClusterTenants,
		Depth:      s.ClusterDepth,
		MaxQueue:   s.ClusterQueue,
		ReadPolicy: pt.policy(s),
		TenantRate: s.ClusterTenantRate,
	}
	if cfg.ReadPolicy == cluster.ReadHedged {
		cfg.HedgeDelay = clusterHedgeDelay
	}
	var prof fault.Profile
	if pt.degraded {
		var err error
		prof, err = fault.ParseProfile(clusterDegradedProfile)
		if err != nil {
			return nil, fmt.Errorf("bench: cluster fault profile: %w", err)
		}
	}
	c, err := cluster.New(cfg, func(id int) cluster.ShardConfig {
		sc := cluster.ShardConfig{DatasetBytes: s.ClusterShardBytes, FineReads: true}
		if pt.degraded && id == 0 {
			sc.Fault = prof
			sc.FaultSeed = s.FaultSeed
			sc.ECCUncorrectableFrac = clusterDegradedECCFrac
		}
		return sc
	})
	if err != nil {
		return nil, err
	}

	valBuf := make([]byte, 0, 512)
	for t := 0; t < s.ClusterTenants; t++ {
		for rec := uint64(0); rec < s.ClusterRecords; rec++ {
			valBuf = clusterVal(t, rec, valBuf)
			if err := c.Load(kv.NamespaceKey(t, clusterKey(rec)), valBuf); err != nil {
				return nil, err
			}
		}
	}
	start, err := c.SealLoad()
	if err != nil {
		return nil, err
	}

	// Baselines taken after preload: the replay's traffic and busy-time
	// deltas exclude the load phase.
	base := make([]metrics.Snapshot, cfg.Shards)
	busy := make([][]sim.Time, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		sh := c.Shard(i)
		base[i] = sh.Snapshot()
		busy[i] = make([]sim.Time, sh.Res.Len())
		for j := range busy[i] {
			busy[i][j] = sh.Res.At(j).Busy()
		}
	}

	mt, err := workload.NewMultiTenant(s.ClusterRecords, clusterTenants(s, pt.skew), 0x7e0a)
	if err != nil {
		return nil, err
	}
	arr, err := workload.NewPoisson(s.ClusterRate, 0xc1a5)
	if err != nil {
		return nil, err
	}
	reqBuf := make([]byte, 0, 512)
	next := func() cluster.Request {
		r := mt.Next()
		req := cluster.Request{
			Tenant: r.Tenant,
			Write:  r.Write,
			Key:    kv.NamespaceKey(r.Tenant, clusterKey(r.Record)),
		}
		if r.Write {
			reqBuf = clusterVal(r.Tenant, r.Record, reqBuf)
			req.Val = reqBuf
		}
		return req
	}
	tail := telemetry.NewTailRecorder(tailTopK, tailKeep(s.ClusterRequests))
	grid := telemetry.NewLatencyGrid(start)
	cres, err := c.Replay(next, s.ClusterRequests, cluster.ReplayOpts{
		Arrivals:            arr,
		Start:               start,
		TickEvery:           clusterTickEvery,
		TolerateMediaErrors: true,
		Tail:                tail,
		Heat:                grid,
	})
	if err != nil {
		return nil, err
	}

	slot := &clusterSlot{cres: cres}
	res := &Result{
		Hist:     cres.Hist,
		Offered:  s.ClusterRate,
		Depth:    s.ClusterDepth,
		Arrivals: arr.Name(),
		Lost:     cres.Lost,
		Rejected: cres.Rejected,
		Tail:     tail.Snapshot(),
		Heat:     grid.Snapshot(),
	}
	snap := metrics.Snapshot{Name: "cluster"}
	slot.shards = make([]report.ShardSummary, cfg.Shards)
	for i, ss := range cres.Shards {
		sh := c.Shard(i)
		shSnap := sh.Snapshot()
		subIO(&shSnap.IO, base[i].IO)
		subCache(&shSnap.PageCache, base[i].PageCache)
		subCache(&shSnap.FineCache, base[i].FineCache)
		addIO(&snap.IO, shSnap.IO)
		addCache(&snap.PageCache, shSnap.PageCache)
		addCache(&snap.FineCache, shSnap.FineCache)
		sa := sh.SA.Snapshot()
		res.Stages.Merge(&sa)
		var util float64
		for j := range busy[i] {
			if cres.Elapsed <= 0 {
				break
			}
			if f := float64(sh.Res.At(j).Busy()-busy[i][j]) / float64(cres.Elapsed); f > util {
				util = f
			}
		}
		slot.shards[i] = report.ShardSummary{
			Shard:         ss.Shard,
			Primary:       ss.Primary,
			Executions:    ss.Executions,
			ReplicaWrites: ss.ReplicaWrites,
			Fanouts:       ss.Fanouts,
			Hedges:        ss.Hedges,
			Failovers:     ss.Failovers,
			Rejected:      ss.Rejected,
			MediaErrors:   ss.MediaErrors,
			Faulted:       ss.Faulted,
			Utilization:   util,
		}
	}
	snap.Ops = cres.Hist.Count()
	snap.Elapsed = cres.Elapsed
	snap.MeanLat = cres.Hist.Mean()
	snap.P99Lat = cres.Hist.Quantile(0.99)
	snap.MaxLat = cres.Hist.Max()
	res.Snapshot = snap
	slot.res = res
	return slot, nil
}

// hotShardShare reports the largest single-shard fraction of primary
// routing — 1/Shards is perfectly balanced, 1.0 is one shard taking
// everything.
func hotShardShare(shards []report.ShardSummary) float64 {
	var max, total uint64
	for _, ss := range shards {
		total += ss.Primary
		if ss.Primary > max {
			max = ss.Primary
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / float64(total)
}

// WriteCluster runs the serving-tier sweep: replication factor x tenant
// Zipf skew, each point healthy and with one member degraded, over a
// multi-tenant open-loop stream with per-tenant token-bucket QoS and
// bounded per-shard admission FIFOs. It prints the trade-off table
// (goodput, tails, backpressure, hot-shard concentration) plus per-shard
// ledgers for the highest-skew points. When opts names an export file the
// per-point run records — including the per-shard summaries the HTML
// report's cluster section renders — are written there. Each point is a
// pool cell over a private tier; rendering happens after all complete, in
// grid order, so the output is byte-identical at any worker count.
func WriteCluster(w io.Writer, s Scale, opts TelemetryOpts, p *Pool) (err error) {
	if s.ClusterShards <= 0 || len(s.ClusterReplicas) == 0 || len(s.ClusterSkews) == 0 ||
		s.ClusterRequests <= 0 || s.ClusterRecords == 0 {
		return errors.New("bench: scale has no cluster sweep parameters")
	}
	points := clusterPoints(s)
	slots := make([]*clusterSlot, len(points))

	var exports telemetry.Exports
	defer func() {
		if cerr := exports.Close(); err == nil {
			err = cerr
		}
	}()
	if opts.ExportOut != "" {
		if aerr := exports.Add(opts.ExportOut, func(fw io.Writer) error {
			exp := &report.Export{Tool: "pipette-bench cluster", Version: buildinfo.Version, Scale: s.Name}
			for i, pt := range points {
				if sl := slots[i]; sl != nil {
					run := ExportRun("cluster", pt.workload(), sl.res)
					run.Throttled = sl.cres.Throttled
					run.Shards = sl.shards
					exp.Runs = append(exp.Runs, run)
				}
			}
			return exp.WriteJSON(fw)
		}); aerr != nil {
			return aerr
		}
	}

	cells := make([]Cell, len(points))
	for i, pt := range points {
		i, pt := i, pt
		cells[i] = Cell{
			Label: pt.label(),
			Run: func() (*Result, error) {
				slot, err := runClusterCell(s, pt)
				if err != nil {
					return nil, fmt.Errorf("bench: %s: %w", pt.label(), err)
				}
				slots[i] = slot
				return slot.res, nil
			},
		}
	}
	if err := p.RunCells(cells); err != nil {
		return err
	}

	fmt.Fprintf(w, "=== Cluster tier: %d shards x %d tenants, replication x skew (scale %s, %d requests/cell) ===\n",
		s.ClusterShards, s.ClusterTenants, s.Name, s.ClusterRequests)
	renderClusterTable(w, s, points, slots)
	fmt.Fprintln(w)
	renderClusterShards(w, s, points, slots)
	if opts.ExportOut != "" {
		if cerr := exports.Close(); cerr != nil { // idempotent; defer no-ops
			return cerr
		}
		fmt.Fprintf(w, "\nrun export written to %s (%d runs; render with pipette-report)\n",
			opts.ExportOut, len(points))
	}
	return nil
}

func renderClusterTable(w io.Writer, s Scale, points []clusterPoint, slots []*clusterSlot) {
	t := &simpleTable{header: []string{
		"skew", "R", "mode", "policy", "offered/s", "goodput/s",
		"p50(us)", "p99(us)", "rejected", "throttled", "lost", "hot%", "hedges", "failovers"}}
	for i, pt := range points {
		sl := slots[i]
		if sl == nil {
			continue
		}
		var hedges, failovers uint64
		for _, ss := range sl.cres.Shards {
			hedges += ss.Hedges
			failovers += ss.Failovers
		}
		t.addRow(
			fmt.Sprintf("%.2f", pt.skew),
			fmt.Sprintf("%d", pt.replicas),
			pt.mode(),
			pt.policy(s).String(),
			fmt.Sprintf("%.0f", s.ClusterRate),
			fmt.Sprintf("%.0f", sl.cres.Goodput()),
			fmt.Sprintf("%.2f", sl.cres.Hist.Quantile(0.50).Micros()),
			fmt.Sprintf("%.2f", sl.cres.Hist.Quantile(0.99).Micros()),
			fmt.Sprintf("%d", sl.cres.Rejected),
			fmt.Sprintf("%d", sl.cres.Throttled),
			fmt.Sprintf("%d", sl.cres.Lost),
			fmt.Sprintf("%.1f", 100*hotShardShare(sl.shards)),
			fmt.Sprintf("%d", hedges),
			fmt.Sprintf("%d", failovers),
		)
	}
	io.WriteString(w, t.render())
}

// renderClusterShards prints the per-shard ledgers for the highest-skew,
// highest-replication points — the cells where hot-shard concentration and
// the degraded member's failovers are most visible.
func renderClusterShards(w io.Writer, s Scale, points []clusterPoint, slots []*clusterSlot) {
	maxSkew := s.ClusterSkews[0]
	for _, sk := range s.ClusterSkews {
		if sk > maxSkew {
			maxSkew = sk
		}
	}
	maxR := s.ClusterReplicas[0]
	for _, r := range s.ClusterReplicas {
		if r > maxR {
			maxR = r
		}
	}
	for i, pt := range points {
		sl := slots[i]
		if sl == nil || pt.skew != maxSkew || pt.replicas != maxR {
			continue
		}
		fmt.Fprintf(w, "per-shard ledger (skew=%.2f, R=%d, %s):\n", pt.skew, pt.replicas, pt.mode())
		t := &simpleTable{header: []string{
			"shard", "primary", "share%", "execs", "repl.writes",
			"hedges", "failovers", "rejected", "media.err", "util%"}}
		var total uint64
		for _, ss := range sl.shards {
			total += ss.Primary
		}
		for _, ss := range sl.shards {
			name := fmt.Sprintf("%d", ss.Shard)
			if ss.Faulted {
				name += "*"
			}
			share := 0.0
			if total > 0 {
				share = 100 * float64(ss.Primary) / float64(total)
			}
			t.addRow(
				name,
				fmt.Sprintf("%d", ss.Primary),
				fmt.Sprintf("%.1f", share),
				fmt.Sprintf("%d", ss.Executions),
				fmt.Sprintf("%d", ss.ReplicaWrites),
				fmt.Sprintf("%d", ss.Hedges),
				fmt.Sprintf("%d", ss.Failovers),
				fmt.Sprintf("%d", ss.Rejected),
				fmt.Sprintf("%d", ss.MediaErrors),
				fmt.Sprintf("%.1f", 100*ss.Utilization),
			)
		}
		io.WriteString(w, t.render())
		fmt.Fprintln(w, "  (* = fault profile armed)")
	}
}
