package bench

import (
	"fmt"
	"io"

	"pipette/internal/baseline"
	"pipette/internal/metrics"
	"pipette/internal/workload"
)

// SyntheticMatrix holds results for the 5 engines × 5 mixes of one
// distribution: the raw material of Figure 6 + Table 2 (uniform) and
// Figure 7 + Table 3 (zipfian).
type SyntheticMatrix struct {
	Dist    workload.Dist
	Mixes   []string
	Results map[string]map[string]*Result // engine -> mix -> result
}

// RunSynthetic executes the Table 1 grid for one distribution: every
// (mix, engine) pair is one pool cell over a private system.
func RunSynthetic(s Scale, dist workload.Dist, p *Pool) (*SyntheticMatrix, error) {
	m := &SyntheticMatrix{
		Dist:    dist,
		Results: make(map[string]map[string]*Result),
	}
	mixes := workload.Mixes(s.FileSize(), 4096, dist, 0xbead)
	grid := make([]*Result, len(mixes)*len(EngineNames))
	cells := make([]Cell, 0, len(grid))
	for mi, mixCfg := range mixes {
		m.Mixes = append(m.Mixes, mixCfg.Name)
		for ei, name := range EngineNames {
			mixCfg, ei := mixCfg, ei
			slot := &grid[mi*len(EngineNames)+ei]
			cells = append(cells, Cell{
				Label: fmt.Sprintf("synthetic-%s/%s/%s", dist, mixCfg.Name, name),
				Run: func() (*Result, error) {
					e, err := newEngine(ei, s.stackConfig(s.FileSize()))
					if err != nil {
						return nil, err
					}
					gen, err := workload.NewSynthetic(mixCfg)
					if err != nil {
						return nil, err
					}
					res, err := Run(e, gen, s.Requests, RunOpts{VerifyEvery: s.Requests/64 + 1})
					if err != nil {
						return nil, fmt.Errorf("bench: %s mix %s: %w", e.Name(), mixCfg.Name, err)
					}
					*slot = res
					return res, nil
				},
			})
		}
	}
	if err := p.RunCells(cells); err != nil {
		return nil, err
	}
	for mi := range mixes {
		for ei, name := range EngineNames {
			if m.Results[name] == nil {
				m.Results[name] = make(map[string]*Result)
			}
			m.Results[name][mixes[mi].Name] = grid[mi*len(EngineNames)+ei]
		}
	}
	return m, nil
}

// ThroughputTable renders the normalized-throughput figure (Figures 6/7):
// each engine's ops/s divided by Block I/O's on the same mix.
func (m *SyntheticMatrix) ThroughputTable() *metrics.Table {
	t := &metrics.Table{Header: append([]string{"Engine \\ Mix"}, m.Mixes...)}
	for _, name := range EngineNames {
		row := []string{name}
		for _, mix := range m.Mixes {
			blk := m.Results["Block I/O"][mix].Snapshot.ThroughputOpsPerSec()
			cur := m.Results[name][mix].Snapshot.ThroughputOpsPerSec()
			row = append(row, fmt.Sprintf("%.2fx", cur/blk))
		}
		t.AddRow(row...)
	}
	return t
}

// TrafficTable renders the I/O-traffic table (Tables 2/3), in MB.
func (m *SyntheticMatrix) TrafficTable() *metrics.Table {
	t := &metrics.Table{Header: append([]string{"Engine \\ Mix"}, m.Mixes...)}
	for _, name := range EngineNames {
		row := []string{name}
		for _, mix := range m.Mixes {
			row = append(row, fmt.Sprintf("%.1f", m.Results[name][mix].Snapshot.IO.TrafficMB()))
		}
		t.AddRow(row...)
	}
	return t
}

// writeSynthetic runs one distribution and prints both artifacts.
func writeSynthetic(w io.Writer, s Scale, dist workload.Dist, figName, tableName string, p *Pool) error {
	m, err := RunSynthetic(s, dist, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "=== %s: normalized throughput, %s distribution (scale %s, %d requests) ===\n",
		figName, dist, s.Name, s.Requests)
	fmt.Fprint(w, m.ThroughputTable().Render())
	fmt.Fprintf(w, "\n=== %s: I/O traffic (MB), %s distribution ===\n", tableName, dist)
	fmt.Fprint(w, m.TrafficTable().Render())
	fmt.Fprintln(w)
	return nil
}

// LatencySweep is Figure 8: average read latency of workload E (uniform)
// for request sizes 8 B .. 4 KiB, per engine, measured after a warmup phase
// so caches are warm (the paper reports steady-state averages).
func LatencySweep(s Scale, p *Pool) (map[string]map[int]*Result, error) {
	out := make(map[string]map[int]*Result)
	hotBytes := int64(s.LatencyFilePages) * 4096
	grid := make([]*Result, len(s.LatencySizes)*len(EngineNames))
	cells := make([]Cell, 0, len(grid))
	for si, size := range s.LatencySizes {
		for ei, name := range EngineNames {
			size, ei := size, ei
			slot := &grid[si*len(EngineNames)+ei]
			cells = append(cells, Cell{
				Label: fmt.Sprintf("latency/%dB/%s", size, name),
				Run: func() (*Result, error) {
					cfg := s.stackConfig(hotBytes)
					// Figure 8 drives every size through each framework's
					// native path: raise the Dispatcher threshold so 4 KiB
					// still goes byte-granular, and use the hot-region
					// memory configuration (see Scale).
					cfg.Core.FineMaxBytes = 4096
					cfg.Core.HMB.TempSlot = 4096
					cfg.Core.HMB.DataBytes = int(hotBytes) * 2
					cfg.Core.OverflowMaxBytes = int(hotBytes) * 2
					cfg.VFS.PageCachePages = s.LatencyPCPages
					cfg.Core.PageCacheFloorPages = s.LatencyPCPages / 8
					e, err := newEngine(ei, cfg)
					if err != nil {
						return nil, err
					}
					mix := workload.Mixes(hotBytes, 4096, workload.Uniform, 0xf18)[4] // E
					gen, err := workload.NewSynthetic(mix)
					if err != nil {
						return nil, err
					}
					fixed := workload.NewFixedSize(gen, size)
					res, err := Run(e, fixed, s.LatencyRequests, RunOpts{Warmup: s.LatencyWarmup})
					if err != nil {
						return nil, fmt.Errorf("bench: fig8 %s %dB: %w", e.Name(), size, err)
					}
					*slot = res
					return res, nil
				},
			})
		}
	}
	if err := p.RunCells(cells); err != nil {
		return nil, err
	}
	for si, size := range s.LatencySizes {
		for ei, name := range EngineNames {
			if out[name] == nil {
				out[name] = make(map[int]*Result)
			}
			out[name][size] = grid[si*len(EngineNames)+ei]
		}
	}
	return out, nil
}

func writeLatencySweep(w io.Writer, s Scale, p *Pool) error {
	res, err := LatencySweep(s, p)
	if err != nil {
		return err
	}
	header := []string{"Engine \\ Size"}
	for _, size := range s.LatencySizes {
		header = append(header, fmt.Sprintf("%dB", size))
	}
	t := &metrics.Table{Header: header}
	for _, name := range EngineNames {
		row := []string{name}
		for _, size := range s.LatencySizes {
			row = append(row, fmt.Sprintf("%.1f", res[name][size].Snapshot.MeanLat.Micros()))
		}
		t.AddRow(row...)
	}
	fmt.Fprintf(w, "=== Figure 8: mean read latency (us), workload E uniform, warm caches (scale %s) ===\n", s.Name)
	fmt.Fprint(w, t.Render())
	fmt.Fprintln(w)
	return nil
}

var _ = baseline.Engine(nil)
