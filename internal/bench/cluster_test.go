package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pipette/internal/report"
)

// clusterTestScale shrinks the sweep so the grid (2 replication factors x
// 1 skew x healthy/degraded = 4 cells) runs in test time while still
// exercising replication, hedging, QoS throttling, and the degraded
// member's failover path.
func clusterTestScale() Scale {
	s := TinyScale()
	s.ClusterShards = 3
	s.ClusterReplicas = []int{1, 2}
	s.ClusterSkews = []float64{0.99}
	s.ClusterTenants = 2
	s.ClusterRecords = 512
	s.ClusterRequests = 500
	s.ClusterRate = 30_000
	s.ClusterDepth = 4
	s.ClusterQueue = 8
	s.ClusterTenantRate = 2_000 // low enough to beat the bucket's burst in a short run
	s.ClusterShardBytes = 4 << 20
	return s
}

// TestClusterDeterministicAcrossWorkers runs the cluster experiment at
// -j 1 and -j 8 and requires the stdout tables, the export bundle, and the
// rendered report HTML to be byte-identical — including the degraded-mode
// cells, where the faulted member's injection stream must not leak
// host-scheduling order into the shared-nothing cells.
func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	s := clusterTestScale()
	dir := t.TempDir()
	outs := make([]bytes.Buffer, 2)
	exports := make([][]byte, 2)
	htmls := make([][]byte, 2)
	for i, workers := range []int{1, 8} {
		path := filepath.Join(dir, "cluster.json")
		if err := WriteCluster(&outs[i], s, TelemetryOpts{ExportOut: path}, NewPool(workers)); err != nil {
			t.Fatalf("-j %d: %v", workers, err)
		}
		var err error
		if exports[i], err = os.ReadFile(path); err != nil {
			t.Fatal(err)
		}
		exp, err := report.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var h bytes.Buffer
		if err := report.WriteHTML(&h, "cluster", []*report.Export{exp}); err != nil {
			t.Fatal(err)
		}
		htmls[i] = h.Bytes()
	}
	if !bytes.Equal(outs[0].Bytes(), outs[1].Bytes()) {
		t.Error("cluster stdout differs between -j 1 and -j 8")
	}
	if !bytes.Equal(exports[0], exports[1]) {
		t.Error("export bundle differs between -j 1 and -j 8")
	}
	if !bytes.Equal(htmls[0], htmls[1]) {
		t.Error("rendered HTML differs between -j 1 and -j 8")
	}

	out := outs[0].String()
	for _, want := range []string{"per-shard ledger", "degraded", "hedged"} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster stdout misses %q", want)
		}
	}
	for _, want := range []string{"Cluster summary", "Per-shard utilization"} {
		if !strings.Contains(string(htmls[0]), want) {
			t.Errorf("cluster report HTML misses %q", want)
		}
	}
}

// TestClusterCellMeasuresTier runs one degraded, replicated cell directly
// and checks the measurement invariants the sweep's tables rely on: the
// ledger conserves arrivals, the QoS limiter throttles the heavy tenant,
// the faulted member records media errors that surviving replicas absorb,
// and the snapshot's goodput matches the histogram.
func TestClusterCellMeasuresTier(t *testing.T) {
	s := clusterTestScale()
	slot, err := runClusterCell(s, clusterPoint{replicas: 2, skew: 0.99, degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	cres := slot.cres
	if cres.Arrived != uint64(s.ClusterRequests) {
		t.Fatalf("arrived %d, want %d", cres.Arrived, s.ClusterRequests)
	}
	if cres.Admitted+cres.Rejected+cres.Throttled != cres.Arrived {
		t.Fatalf("ledger does not conserve: %+v", cres)
	}
	if cres.Throttled == 0 {
		t.Error("per-tenant QoS never throttled the heavy tenant")
	}
	var media uint64
	for _, ss := range cres.Shards {
		media += ss.MediaErrors
	}
	if media == 0 {
		t.Error("degraded member recorded no media errors")
	}
	if cres.Lost*10 > cres.Admitted {
		t.Errorf("replication failed to absorb the faults: %d/%d lost", cres.Lost, cres.Admitted)
	}
	if slot.res.Snapshot.Ops != cres.Hist.Count() {
		t.Errorf("snapshot ops %d != histogram count %d", slot.res.Snapshot.Ops, cres.Hist.Count())
	}
	if len(slot.shards) != s.ClusterShards {
		t.Fatalf("shard summaries: got %d, want %d", len(slot.shards), s.ClusterShards)
	}
	if !slot.shards[0].Faulted {
		t.Error("shard 0 not marked faulted in the summary")
	}
	var util float64
	for _, ss := range slot.shards {
		if ss.Utilization > util {
			util = ss.Utilization
		}
	}
	if util <= 0 {
		t.Error("no shard recorded replay utilization")
	}
}
