package bench

import (
	"fmt"
	"io"

	"pipette/internal/metrics"
	"pipette/internal/workload"
)

// AppResults holds the 5 engines × 2 applications grid behind Figure 9,
// Table 4, and the Figure 1 motivation chart.
type AppResults struct {
	Apps    []string
	Results map[string]map[string]*Result // engine -> app -> result
}

// RunApps executes the real-application workloads: the recommender-system
// embedding lookups and the LinkBench-flavoured social graph. Every
// (app, engine) pair is one pool cell.
func RunApps(s Scale, p *Pool) (*AppResults, error) {
	out := &AppResults{
		Apps:    []string{"Recommender System", "Social Graph"},
		Results: make(map[string]map[string]*Result),
	}

	makeGen := func(app string) (workload.Generator, error) {
		switch app {
		case "Recommender System":
			cfg := workload.DefaultRecommenderConfig()
			cfg.TableBytes = s.RecTableBytes
			// The hot working set must outgrow the page-granular cache but
			// fit the fine cache's compact items — the regime the paper's
			// recommender evaluation lives in.
			cfg.HotWindow = 3 * s.PageCachePages
			return workload.NewRecommender(cfg)
		default:
			cfg := workload.DefaultSocialGraphConfig()
			cfg.Nodes = s.GraphNodes
			return workload.NewSocialGraph(cfg)
		}
	}

	grid := make([]*Result, len(out.Apps)*len(EngineNames))
	cells := make([]Cell, 0, len(grid))
	for ai, app := range out.Apps {
		for ei, name := range EngineNames {
			app, ei := app, ei
			slot := &grid[ai*len(EngineNames)+ei]
			cells = append(cells, Cell{
				Label: fmt.Sprintf("apps/%s/%s", app, name),
				Run: func() (*Result, error) {
					gen, err := makeGen(app)
					if err != nil {
						return nil, err
					}
					e, err := newEngine(ei, s.stackConfig(gen.FileSize()))
					if err != nil {
						return nil, err
					}
					// The social graph writes, so content verification is
					// off for it (the oracle is flash-authoritative only).
					verify := s.AppRequests/64 + 1
					if app == "Social Graph" {
						verify = 0
					}
					res, err := Run(e, gen, s.AppRequests, RunOpts{VerifyEvery: verify})
					if err != nil {
						return nil, fmt.Errorf("bench: %s on %s: %w", e.Name(), app, err)
					}
					*slot = res
					return res, nil
				},
			})
		}
	}
	if err := p.RunCells(cells); err != nil {
		return nil, err
	}
	for ai, app := range out.Apps {
		for ei, name := range EngineNames {
			if out.Results[name] == nil {
				out.Results[name] = make(map[string]*Result)
			}
			out.Results[name][app] = grid[ai*len(EngineNames)+ei]
		}
	}
	return out, nil
}

// ThroughputTable renders Figure 9(a): throughput normalized to Block I/O.
func (a *AppResults) ThroughputTable() *metrics.Table {
	t := &metrics.Table{Header: append([]string{"Engine \\ App"}, a.Apps...)}
	for _, name := range EngineNames {
		row := []string{name}
		for _, app := range a.Apps {
			blk := a.Results["Block I/O"][app].Snapshot.ThroughputOpsPerSec()
			cur := a.Results[name][app].Snapshot.ThroughputOpsPerSec()
			row = append(row, fmt.Sprintf("%.2fx", cur/blk))
		}
		t.AddRow(row...)
	}
	return t
}

// TrafficTable renders Figure 9(b): read I/O traffic in MB.
func (a *AppResults) TrafficTable() *metrics.Table {
	t := &metrics.Table{Header: append([]string{"Engine \\ App"}, a.Apps...)}
	for _, name := range EngineNames {
		row := []string{name}
		for _, app := range a.Apps {
			row = append(row, fmt.Sprintf("%.1f", a.Results[name][app].Snapshot.IO.TrafficMB()))
		}
		t.AddRow(row...)
	}
	return t
}

// CacheTable renders Table 4: hit ratio and memory usage of the page cache
// (Block I/O) vs the fine-grained read cache (Pipette).
func (a *AppResults) CacheTable() *metrics.Table {
	t := &metrics.Table{Header: []string{"System", "App", "Hit Ratio (%)", "Memory (MB)"}}
	for _, app := range a.Apps {
		blk := a.Results["Block I/O"][app].Snapshot
		t.AddRow("Block I/O", app,
			fmt.Sprintf("%.2f", blk.PageCache.HitRatio()*100),
			fmt.Sprintf("%.0f", blk.MemoryMB))
	}
	for _, app := range a.Apps {
		pip := a.Results["Pipette"][app].Snapshot
		t.AddRow("Pipette", app,
			fmt.Sprintf("%.2f", pip.FineCache.HitRatio()*100),
			fmt.Sprintf("%.0f", pip.MemoryMB))
	}
	return t
}

// MotivationTable renders Figure 1: 2B-SSD (DMA mode) vs Block I/O on the
// two applications, normalized I/O traffic and throughput.
func (a *AppResults) MotivationTable() *metrics.Table {
	t := &metrics.Table{Header: []string{"Metric", "System", a.Apps[0], a.Apps[1]}}
	for _, name := range []string{"Block I/O", "2B-SSD DMA"} {
		row := []string{"I/O traffic (norm.)", name}
		for _, app := range a.Apps {
			blk := a.Results["Block I/O"][app].Snapshot.IO.TrafficMB()
			cur := a.Results[name][app].Snapshot.IO.TrafficMB()
			row = append(row, fmt.Sprintf("%.2f", cur/blk))
		}
		t.AddRow(row...)
	}
	for _, name := range []string{"Block I/O", "2B-SSD DMA"} {
		row := []string{"Throughput (norm.)", name}
		for _, app := range a.Apps {
			blk := a.Results["Block I/O"][app].Snapshot.ThroughputOpsPerSec()
			cur := a.Results[name][app].Snapshot.ThroughputOpsPerSec()
			row = append(row, fmt.Sprintf("%.2f", cur/blk))
		}
		t.AddRow(row...)
	}
	return t
}

func writeApps(w io.Writer, s Scale, p *Pool) error {
	res, err := RunApps(s, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "=== Figure 9(a): real-application throughput, normalized to Block I/O (scale %s) ===\n", s.Name)
	fmt.Fprint(w, res.ThroughputTable().Render())
	fmt.Fprintln(w, "\n=== Figure 9(b): real-application I/O traffic (MB) ===")
	fmt.Fprint(w, res.TrafficTable().Render())
	fmt.Fprintln(w, "\n=== Table 4: page cache vs fine-grained read cache ===")
	fmt.Fprint(w, res.CacheTable().Render())
	fmt.Fprintln(w, "\n=== Figure 1: motivation — 2B-SSD vs Block I/O ===")
	fmt.Fprint(w, res.MotivationTable().Render())
	fmt.Fprintln(w)
	return nil
}
