package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pipette/internal/index"
	"pipette/internal/report"
)

// kvMatrixTestScale shrinks the kv matrix so its 24 cells run in test time
// while still rotating segments, splitting B+-tree nodes, and flushing and
// merging LSM runs (the memtable floor is 256, so 2000 records flush 7
// runs over the load).
func kvMatrixTestScale() Scale {
	s := TinyScale()
	s.KVRecords = 2_000
	s.KVRequests = 1_200
	return s
}

// TestKVExperimentShapes runs the kv matrix at tiny scale and checks the
// paper's claim end-to-end: the same store over the fine-read path moves
// fewer device bytes per requested byte than over block I/O on the
// read-heavy small-value workloads — and the on-disk index engines behave
// like the structures they implement.
func TestKVExperimentShapes(t *testing.T) {
	t.Parallel()
	grid, err := RunKV(TinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	hi, bi, li := kindIndex(index.Hash), kindIndex(index.BTree), kindIndex(index.LSM)
	for wi, wl := range kvWorkloads {
		blk, pip := grid[wi][0][hi], grid[wi][1][hi]
		if blk.keys != pip.keys {
			t.Errorf("YCSB-%s: engines diverge on final key count: %d vs %d", wl, blk.keys, pip.keys)
		}
		if blk.snap.Ops == 0 || pip.snap.Ops == 0 {
			t.Fatalf("YCSB-%s: no measured ops", wl)
		}
		if wl == "A" || wl == "B" || wl == "C" {
			if pip.snap.IO.FineReads == 0 {
				t.Errorf("YCSB-%s: Pipette engine served no fine reads", wl)
			}
			if pa, ba := pip.snap.IO.ReadAmplification(), blk.snap.IO.ReadAmplification(); pa >= ba {
				t.Errorf("YCSB-%s: Pipette read amp %.2f not below block I/O %.2f", wl, pa, ba)
			}
		}
		if blk.snap.IO.FineReads != 0 {
			t.Errorf("YCSB-%s: block engine reports fine reads", wl)
		}
		// The measured window's stage attribution must conserve for both
		// engines — mutation paths (Put, compaction) included.
		for ei, r := range []*kvCellResult{blk, pip} {
			if r.stages.Requests == 0 {
				t.Fatalf("YCSB-%s/%s: no stage-accounted ops", wl, kvEngines[ei])
			}
			if r.stages.Sum() != r.stages.Elapsed {
				t.Errorf("YCSB-%s/%s: stage sum %v != elapsed %v", wl, kvEngines[ei], r.stages.Sum(), r.stages.Elapsed)
			}
			if r.resources == nil {
				t.Fatalf("YCSB-%s/%s: no resource snapshot", wl, kvEngines[ei])
			}
		}

		// The index axis: every engine must agree with the hash cell on
		// contents, the tree must have split into a real hierarchy, and the
		// LSM must have flushed runs and pruned the absent-key probes.
		for ei := range kvEngines {
			bt, lsm := grid[wi][ei][bi], grid[wi][ei][li]
			if bt.keys != blk.keys || lsm.keys != blk.keys {
				t.Errorf("YCSB-%s: index engines diverge on key count: hash %d, btree %d, lsm %d",
					wl, blk.keys, bt.keys, lsm.keys)
			}
			if bt.idx.Height < 2 || bt.idx.Splits == 0 {
				t.Errorf("YCSB-%s/%s: btree never grew (height %d, %d splits)",
					wl, kvEngines[ei], bt.idx.Height, bt.idx.Splits)
			}
			if bt.idx.NodeReadsPerLookup() < 1 {
				t.Errorf("YCSB-%s/%s: btree lookups paid %.2f node reads each",
					wl, kvEngines[ei], bt.idx.NodeReadsPerLookup())
			}
			if lsm.idx.Flushes == 0 || lsm.idx.Runs == 0 {
				t.Errorf("YCSB-%s/%s: lsm never flushed (%d flushes, %d runs)",
					wl, kvEngines[ei], lsm.idx.Flushes, lsm.idx.Runs)
			}
			if lsm.idx.BloomNegative == 0 {
				t.Errorf("YCSB-%s/%s: bloom filters pruned nothing", wl, kvEngines[ei])
			}
			// FP fraction of all checks (BloomFPRate normalizes by the
			// maybes, which probe-only workloads like E drive to 1.0).
			if fp := float64(lsm.idx.BloomFalsePos) / float64(lsm.idx.BloomChecks); fp > 0.1 {
				t.Errorf("YCSB-%s/%s: bloom FP fraction %.2f", wl, kvEngines[ei], fp)
			}
		}

		// The second claim: absent-key probes through the on-disk indexes
		// move fewer device bytes over the fine path, which reads 512 B
		// nodes and blocks instead of 4 KiB pages. Bytes moved is the
		// robust form of the comparison — probe latency also depends on
		// which cache regime the scale lands each engine in, while read
		// amplification separates the paths at every scale.
		for _, ki := range []int{bi, li} {
			bb := grid[wi][0][ki].negBytes
			pb := grid[wi][1][ki].negBytes
			if pb >= bb {
				t.Errorf("YCSB-%s/%s: Pipette probes moved %d KB, not below block I/O's %d KB",
					wl, kvIndexKinds[ki], pb/1024, bb/1024)
			}
		}
	}
}

// TestKVMatrixDeterministicAcrossWorkers runs the kv matrix at -j 1 and
// -j 8 and requires the stdout tables, the export bundle, and the rendered
// report HTML to be byte-identical — the full engine × index grid must not
// leak host-scheduling order anywhere.
func TestKVMatrixDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	s := kvMatrixTestScale()
	dir := t.TempDir()
	outs := make([]bytes.Buffer, 2)
	exports := make([][]byte, 2)
	htmls := make([][]byte, 2)
	for i, workers := range []int{1, 8} {
		path := filepath.Join(dir, "kv.json")
		if err := WriteKV(&outs[i], s, TelemetryOpts{ExportOut: path}, NewPool(workers)); err != nil {
			t.Fatalf("-j %d: %v", workers, err)
		}
		var err error
		if exports[i], err = os.ReadFile(path); err != nil {
			t.Fatal(err)
		}
		exp, err := report.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var h bytes.Buffer
		if err := report.WriteHTML(&h, "kv", []*report.Export{exp}); err != nil {
			t.Fatal(err)
		}
		htmls[i] = h.Bytes()
	}
	if !bytes.Equal(outs[0].Bytes(), outs[1].Bytes()) {
		t.Error("kv stdout differs between -j 1 and -j 8")
	}
	if !bytes.Equal(exports[0], exports[1]) {
		t.Error("export bundle differs between -j 1 and -j 8")
	}
	if !bytes.Equal(htmls[0], htmls[1]) {
		t.Error("rendered HTML differs between -j 1 and -j 8")
	}

	out := outs[0].String()
	for _, want := range []string{"YCSB-A", "Compactions", "B+-tree index", "LSM index", "Bloom neg"} {
		if !strings.Contains(out, want) {
			t.Errorf("kv stdout misses %q", want)
		}
	}
	if !strings.Contains(string(htmls[0]), "KV index engines") {
		t.Errorf("kv report HTML misses the index summary table")
	}
	if !strings.Contains(string(exports[0]), "\"index\"") {
		t.Errorf("export bundle carries no index summaries")
	}
}
