package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestKVExperimentShapes runs the kv experiment at tiny scale and checks the
// paper's claim end-to-end: the same store over the fine-read path moves
// fewer device bytes per requested byte than over block I/O on the
// read-heavy small-value workloads.
func TestKVExperimentShapes(t *testing.T) {
	t.Parallel()
	grid, err := RunKV(TinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for wi, wl := range kvWorkloads {
		blk, pip := grid[wi][0], grid[wi][1]
		if blk.keys != pip.keys {
			t.Errorf("YCSB-%s: engines diverge on final key count: %d vs %d", wl, blk.keys, pip.keys)
		}
		if blk.snap.Ops == 0 || pip.snap.Ops == 0 {
			t.Fatalf("YCSB-%s: no measured ops", wl)
		}
		if wl == "A" || wl == "B" || wl == "C" {
			if pip.snap.IO.FineReads == 0 {
				t.Errorf("YCSB-%s: Pipette engine served no fine reads", wl)
			}
			if pa, ba := pip.snap.IO.ReadAmplification(), blk.snap.IO.ReadAmplification(); pa >= ba {
				t.Errorf("YCSB-%s: Pipette read amp %.2f not below block I/O %.2f", wl, pa, ba)
			}
		}
		if blk.snap.IO.FineReads != 0 {
			t.Errorf("YCSB-%s: block engine reports fine reads", wl)
		}
		// The measured window's stage attribution must conserve for both
		// engines — mutation paths (Put, compaction) included.
		for ei, r := range []*kvCellResult{blk, pip} {
			if r.stages.Requests == 0 {
				t.Fatalf("YCSB-%s/%s: no stage-accounted ops", wl, kvEngines[ei])
			}
			if r.stages.Sum() != r.stages.Elapsed {
				t.Errorf("YCSB-%s/%s: stage sum %v != elapsed %v", wl, kvEngines[ei], r.stages.Sum(), r.stages.Elapsed)
			}
			if r.resources == nil {
				t.Fatalf("YCSB-%s/%s: no resource snapshot", wl, kvEngines[ei])
			}
		}
	}
}

// TestKVExperimentDeterminism checks the kv experiment renders byte-identical
// output at any worker count, like the rest of the suite.
func TestKVExperimentDeterminism(t *testing.T) {
	t.Parallel()
	exp, err := Find("kv")
	if err != nil {
		t.Fatal(err)
	}
	s := TinyScale()
	var a, b bytes.Buffer
	if err := exp.Run(&a, s, nil); err != nil {
		t.Fatal(err)
	}
	if err := exp.Run(&b, s, NewPool(8)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("kv output differs between serial and -j 8:\n--- serial\n%s\n--- parallel\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "YCSB-A") || !strings.Contains(a.String(), "Compactions") {
		t.Fatalf("kv output missing expected sections:\n%s", a.String())
	}
}
