package bench

import (
	"fmt"
	"sync"

	"pipette/internal/telemetry"
)

// The armed flight recorder is process-global: the harness builds many
// private systems across pool goroutines, and the recorder (which is
// mutex-guarded and shareable) sees them all, so a post-mortem dump shows
// the interleaved recent history of every cell that was running when
// things went wrong.
var (
	flightMu   sync.Mutex
	flightRec  *telemetry.FlightRecorder
	flightDump func(reason string)
)

// ArmFlight arms a shared flight recorder for every engine the harness
// builds from here on: newEngine installs it as each private system's
// tracer, and a cell that panics invokes dump (with the cell label and
// panic value as the reason) before the panic propagates. Callers make
// dump idempotent — a parallel run can have several cells fail. Passing
// nil disarms.
func ArmFlight(fr *telemetry.FlightRecorder, dump func(reason string)) {
	flightMu.Lock()
	flightRec = fr
	flightDump = dump
	flightMu.Unlock()
}

func armedFlight() *telemetry.FlightRecorder {
	flightMu.Lock()
	defer flightMu.Unlock()
	return flightRec
}

// flightPanic is deferred around each cell: on panic it dumps the flight
// ring (so the events leading up to the crash survive) and repanics with
// the original value.
func flightPanic(label string) {
	r := recover()
	if r == nil {
		return
	}
	flightMu.Lock()
	dump := flightDump
	flightMu.Unlock()
	if dump != nil {
		dump(fmt.Sprintf("panic in cell %q: %v", label, r))
	}
	panic(r)
}
