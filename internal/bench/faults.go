package bench

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"pipette/internal/baseline"
	"pipette/internal/fault"
	"pipette/internal/metrics"
	"pipette/internal/nvme"
	"pipette/internal/sim"
	"pipette/internal/workload"
)

// FaultLevels is the reliability sweep: each level scales the NAND raw bit
// error rate (rber*N resolves against the cell type's datasheet rate) and
// sets transport-corruption probabilities for the program, DMA, ring, and
// writeback sites. "none" is the control — the empty profile, i.e. the Nop
// injector.
var FaultLevels = []struct {
	Name    string
	Profile string
}{
	{"none", ""},
	{"low", "nand.read:rber*5,nand.program:0.002,nvme.dma:0.001,hmb.ring:0.002,vfs.writeback:0.002"},
	{"mid", "nand.read:rber*20,nand.program:0.005,nvme.dma:0.005,hmb.ring:0.01,vfs.writeback:0.005"},
	{"high", "nand.read:rber*80,nand.program:0.02,nvme.dma:0.02,hmb.ring:0.05,vfs.writeback:0.02"},
}

// faultEngineIdx selects the engines the sweep compares: the conventional
// block path against the full framework, whose fine-read path adds the ring
// and DMA surfaces (and their fallbacks).
var faultEngineIdx = []int{0, 4}

// faultWriteEvery converts every k'th synthetic request into a write so the
// program and writeback fault sites see traffic; the mixes are read-only by
// construction.
const faultWriteEvery = 8

// writeMixer turns every k'th request of a read-only generator into a
// same-extent write.
type writeMixer struct {
	inner workload.Generator
	k     int
	n     int
}

func (m *writeMixer) Name() string    { return m.inner.Name() }
func (m *writeMixer) FileSize() int64 { return m.inner.FileSize() }
func (m *writeMixer) Next() workload.Request {
	req := m.inner.Next()
	m.n++
	if m.n%m.k == 0 {
		req.Write = true
	}
	return req
}

// FaultResult is one (mix, level, engine) cell: the usual measurement over
// the surviving requests, plus the reads lost to uncorrectable media errors
// and the stack's injection/recovery counters.
type FaultResult struct {
	Result
	Failed uint64 // requests that surfaced an uncorrectable media error
	Report fault.Report
}

// syncer is the fsync surface every baseline engine provides; the faulted
// replay syncs after each write so the flash-content oracle stays
// authoritative (and the writeback fault site sees traffic).
type syncer interface {
	Sync(now sim.Time) (sim.Time, error)
}

// runFaulted replays the workload like Run, but tolerates uncorrectable
// read errors (they are the experiment's subject, counted as Failed) and
// oracle-verifies every surviving read — an injected fault may slow a read
// or fail it, never silently change its bytes.
func runFaulted(e baseline.Engine, gen workload.Generator, requests int) (*FaultResult, error) {
	var now sim.Time
	buf := make([]byte, 4096)
	want := make([]byte, 4096)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i*7 + 13)
	}
	grow := func(n int) {
		for n > len(buf) {
			buf = make([]byte, 2*len(buf))
			want = make([]byte, len(buf))
		}
		for n > len(payload) {
			old := payload
			payload = make([]byte, 2*len(payload))
			copy(payload, old)
			copy(payload[len(old):], old)
		}
	}

	base := e.Snapshot()
	start := now
	fr := &FaultResult{}
	var ok uint64
	for i := 0; i < requests; i++ {
		req := gen.Next()
		grow(req.Size)
		before := now
		var err error
		if req.Write {
			now, err = e.WriteAt(now, payload[:req.Size], req.Off)
			if err == nil {
				// Write-fsync cycle: the oracle compares against flash, so
				// dirty pages must not outlive the request that made them.
				now, err = e.(syncer).Sync(now)
			}
		} else {
			now, err = e.ReadAt(now, buf[:req.Size], req.Off)
		}
		if err != nil {
			// Uncorrectable media errors are the experiment's subject: a
			// failed read, or a sub-page write whose read-modify-write hit
			// an unrecoverable page. Anything else is a harness bug.
			if !errors.Is(err, nvme.ErrUncorrectable) {
				return nil, fmt.Errorf("bench: faulted request %d (%+v): %w", i, req, err)
			}
			fr.Failed++
			continue
		}
		if !req.Write {
			want := want[:req.Size]
			if oerr := e.Oracle(want, req.Off); oerr != nil {
				return nil, oerr
			}
			if !bytes.Equal(buf[:req.Size], want) {
				return nil, fmt.Errorf("bench: %s returned wrong bytes at %d (+%d) under faults",
					e.Name(), req.Off, req.Size)
			}
		}
		ok++
		fr.Hist.Observe(now - before)
	}

	snap := e.Snapshot()
	subIO(&snap.IO, base.IO)
	subCache(&snap.PageCache, base.PageCache)
	subCache(&snap.FineCache, base.FineCache)
	snap.Ops = ok // goodput: only surviving requests count
	snap.Elapsed = now - start
	snap.MeanLat = fr.Hist.Mean()
	snap.P99Lat = fr.Hist.Quantile(0.99)
	snap.MaxLat = fr.Hist.Max()
	fr.Snapshot = snap
	fr.Report = e.Faults()
	return fr, nil
}

// RunFaults executes the faults grid: mixes C and E (uniform) × FaultLevels
// × {Block I/O, Pipette}, every cell a private system with its own injector
// over the same fault seed.
func RunFaults(s Scale, p *Pool) (map[string]map[string]map[string]*FaultResult, error) {
	profiles := make([]fault.Profile, len(FaultLevels))
	for i, lv := range FaultLevels {
		prof, err := fault.ParseProfile(lv.Profile)
		if err != nil {
			return nil, fmt.Errorf("bench: fault level %s: %w", lv.Name, err)
		}
		profiles[i] = prof
	}
	all := workload.Mixes(s.FileSize(), 4096, workload.Uniform, 0xbead)
	mixes := []workload.SyntheticConfig{all[2], all[4]} // C (50% small) and E (all small)

	grid := make([]*FaultResult, len(mixes)*len(FaultLevels)*len(faultEngineIdx))
	cells := make([]Cell, 0, len(grid))
	for mi, mixCfg := range mixes {
		for li, lv := range FaultLevels {
			for ki, ei := range faultEngineIdx {
				mixCfg, prof, ei := mixCfg, profiles[li], ei
				slot := &grid[(mi*len(FaultLevels)+li)*len(faultEngineIdx)+ki]
				cells = append(cells, Cell{
					Label: fmt.Sprintf("faults/%s/%s/%s", mixCfg.Name, lv.Name, EngineNames[ei]),
					Run: func() (*Result, error) {
						cfg := s.stackConfig(s.FileSize())
						cfg.FaultProfile = prof
						e, err := newEngine(ei, cfg)
						if err != nil {
							return nil, err
						}
						gen, err := workload.NewSynthetic(mixCfg)
						if err != nil {
							return nil, err
						}
						fr, err := runFaulted(e, &writeMixer{inner: gen, k: faultWriteEvery}, s.Requests)
						if err != nil {
							return nil, err
						}
						*slot = fr
						p.Live().AddFaults(fr.Report)
						return &fr.Result, nil
					},
				})
			}
		}
	}
	if err := p.RunCells(cells); err != nil {
		return nil, err
	}

	out := make(map[string]map[string]map[string]*FaultResult)
	for mi, mixCfg := range mixes {
		out[mixCfg.Name] = make(map[string]map[string]*FaultResult)
		for li, lv := range FaultLevels {
			out[mixCfg.Name][lv.Name] = make(map[string]*FaultResult)
			for ki, ei := range faultEngineIdx {
				out[mixCfg.Name][lv.Name][EngineNames[ei]] =
					grid[(mi*len(FaultLevels)+li)*len(faultEngineIdx)+ki]
			}
		}
	}
	return out, nil
}

// writeFaults renders one table per mix: goodput and the recovery ledger at
// each fault level, block I/O vs Pipette.
func writeFaults(w io.Writer, s Scale, p *Pool) error {
	res, err := RunFaults(s, p)
	if err != nil {
		return err
	}
	mixNames := []string{"C", "E"}
	for _, mix := range mixNames {
		fmt.Fprintf(w, "=== Faults: goodput and recovery under injected faults, mix %s uniform (scale %s, %d requests, 1/%d writes) ===\n",
			mix, s.Name, s.Requests, faultWriteEvery)
		t := &metrics.Table{Header: []string{
			"Level", "Engine", "goodput kops/s", "failed", "injected",
			"ECC retry", "uncorr", "ring fb", "DMA fb", "prog retry", "wb retry",
		}}
		for _, lv := range FaultLevels {
			for _, ei := range faultEngineIdx {
				name := EngineNames[ei]
				fr := res[mix][lv.Name][name]
				r := fr.Report
				t.AddRow(lv.Name, name,
					fmt.Sprintf("%.1f", fr.Snapshot.ThroughputOpsPerSec()/1000),
					fmt.Sprintf("%d", fr.Failed),
					fmt.Sprintf("%d", r.Injected),
					fmt.Sprintf("%d", r.ECCRetries),
					fmt.Sprintf("%d", r.Uncorrectable),
					fmt.Sprintf("%d", r.RingFallbacks),
					fmt.Sprintf("%d", r.DMAFallbacks),
					fmt.Sprintf("%d", r.ProgramRetries),
					fmt.Sprintf("%d", r.WritebackRetries),
				)
			}
		}
		fmt.Fprint(w, t.Render())
		fmt.Fprintln(w)
	}
	return nil
}
