package bench

import (
	"bytes"
	"fmt"
	"io"

	"pipette/internal/baseline"
	"pipette/internal/blockdev"
	"pipette/internal/core"
	"pipette/internal/extfs"
	"pipette/internal/kv"
	"pipette/internal/metrics"
	"pipette/internal/nvme"
	"pipette/internal/resource"
	"pipette/internal/sim"
	"pipette/internal/ssd"
	"pipette/internal/telemetry"
	"pipette/internal/vfs"
	"pipette/internal/workload"
)

// The kv experiment runs a real application — the log-structured KV store —
// end-to-end over two read engines: plain block I/O and Pipette. Every Get
// asks for exactly the value's bytes, so the gap between the engines is the
// paper's core claim measured through a full storage application rather than
// a synthetic request stream.

// kvEngines are the two ends of the comparison (the intermediate engines
// need raw device access the store does not model).
var kvEngines = []string{"Block I/O", "Pipette"}

// kvWorkloads are the YCSB core workloads the experiment replays.
var kvWorkloads = []string{"A", "B", "C", "D", "E", "F"}

const (
	kvAvgRecordBytes = 320 // header + "user%010d" key + 64..512 B value
	kvValueSpan      = 449 // value sizes 64 .. 512 inclusive
	kvMinValueBytes  = 64
	kvTickEvery      = 256 // ops between maintenance (compaction) ticks
	kvSeed           = 0x5eed1e
)

// kvValueSize derives a deterministic 64..512 B value size from the key —
// the paper's small-value regime, far below the 4 KiB page.
func kvValueSize(key uint64) int {
	return kvMinValueBytes + int(sim.Mix64(key^kvSeed)%kvValueSpan)
}

// kvValue renders the value for (key, version) into dst: a pattern both
// engines must reproduce byte-for-byte, so the harness can verify reads
// against it without a second store.
func kvValue(dst []byte, key uint64, ver uint32) []byte {
	n := kvValueSize(key)
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	seed := sim.Mix64(key*0x9e3779b97f4a7c15 ^ uint64(ver)<<32)
	for i := range dst {
		if i&7 == 0 && i > 0 {
			seed = sim.Mix64(seed)
		}
		dst[i] = byte(seed >> (8 * (i & 7)))
	}
	return dst
}

func kvKey(k uint64) string { return fmt.Sprintf("user%010d", k) }

// kvStack is the raw private system one cell runs over; unlike the baseline
// engines there is no preloaded workload file — the store creates its own
// segment files.
type kvStack struct {
	ctrl *ssd.Controller
	v    *vfs.VFS
	pip  *core.Pipette // nil for the block engine
	sa   *telemetry.StageAccount
	res  *resource.Tracker
}

// newKVStack assembles a stack sized for datasetBytes of live records, with
// caches budgeted at an eighth of the dataset so both engines miss — the
// regime where the read path's granularity shows.
func newKVStack(s Scale, fine bool) (*kvStack, error) {
	datasetBytes := int64(s.KVRecords) * kvAvgRecordBytes
	cfg := baseline.DefaultStackConfig(datasetBytes * 3) // segments churn: live + dead + headroom
	cachePages := int(datasetBytes / 4096 / 8)
	if cachePages < 64 {
		cachePages = 64
	}
	cfg.VFS.PageCachePages = cachePages
	cfg.Core.HMB.DataBytes = int(datasetBytes / 8)
	cfg.Core.OverflowMaxBytes = int(datasetBytes / 8)
	cfg.Core.PageCacheFloorPages = cachePages / 8

	ctrl, err := ssd.New(cfg.SSD)
	if err != nil {
		return nil, err
	}
	drv := nvme.NewDriver(ctrl, cfg.Depth, cfg.NVMe)
	blk, err := blockdev.New(drv, ctrl.PageSize(), cfg.Block)
	if err != nil {
		return nil, err
	}
	fs := extfs.New(ctrl)
	v, err := vfs.New(fs, blk, cfg.VFS)
	if err != nil {
		return nil, err
	}
	st := &kvStack{ctrl: ctrl, v: v,
		sa: telemetry.NewStageAccount(), res: resource.NewTracker()}
	// Same attribution wiring as the baseline engines, so kv cells carry
	// the stage waterfall and resource occupancy too.
	v.SetStages(st.sa)
	blk.SetStages(st.sa)
	drv.SetStages(st.sa)
	ctrl.SetStages(st.sa)
	ctrl.SetResources(st.res)
	drv.SetRingTimeline(st.res.Register("nvme.ring"))
	if fine {
		p, err := core.New(v, drv, cfg.Core)
		if err != nil {
			return nil, err
		}
		st.pip = p
	}
	return st, nil
}

// snapshot merges the stack's VFS and fine-path statistics, mirroring the
// baseline engines' accounting so read amplification is comparable.
func (st *kvStack) snapshot(name string) metrics.Snapshot {
	snap := metrics.Snapshot{Name: name}
	snap.IO = st.v.IO()
	hits, accesses, ins, evs := st.v.PageCache().Stats()
	snap.PageCache = metrics.Cache{Hits: hits, Accesses: accesses, Insertions: ins, Evictions: evs}
	if st.pip != nil {
		fio := st.pip.IO()
		snap.IO.BytesTransferred += fio.BytesTransferred
		snap.IO.FineReads = fio.FineReads
		snap.FineCache = st.pip.CacheStats()
	}
	return snap
}

// kvSegmentBytes picks the store's segment size for the scale: enough
// segments for rotation and compaction to matter, capped so full scale does
// not rewrite huge files per compaction.
func kvSegmentBytes(s Scale) int64 {
	seg := int64(s.KVRecords) * kvAvgRecordBytes / 12
	seg -= seg % 4096
	if seg < 64<<10 {
		seg = 64 << 10
	}
	if seg > 4<<20 {
		seg = 4 << 20
	}
	return seg
}

// kvCellResult is one (workload, engine) measurement.
type kvCellResult struct {
	snap      metrics.Snapshot
	hist      metrics.Histogram
	stages    telemetry.StageSnapshot
	resources *resource.Snapshot
	store     kv.Stats
	segs      int
	keys      int
}

// runKVCell loads the store and replays one YCSB workload over one engine.
func runKVCell(s Scale, wl string, fine bool) (*kvCellResult, error) {
	st, err := newKVStack(s, fine)
	if err != nil {
		return nil, err
	}
	store, now, err := kv.Open(0, kv.VFSBackend{V: st.v}, kv.Config{
		SegmentBytes: kvSegmentBytes(s),
		FineReads:    fine,
	})
	if err != nil {
		return nil, err
	}

	// Load phase: version 0 of every record, then sync — setup cost is
	// excluded from the measured snapshot below.
	ver := make(map[uint64]uint32, s.KVRecords)
	var val []byte
	for k := uint64(0); k < s.KVRecords; k++ {
		val = kvValue(val, k, 0)
		if now, err = store.Put(now, kvKey(k), val); err != nil {
			return nil, fmt.Errorf("bench: kv load %d: %w", k, err)
		}
	}
	if now, err = store.Sync(now); err != nil {
		return nil, err
	}

	cfg, err := workload.StandardYCSB(wl, s.KVRecords, kvSeed)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewYCSB(cfg)
	if err != nil {
		return nil, err
	}
	ops := s.KVRequests
	if wl == "E" {
		ops /= 10 // scans touch ~50 keys each; keep cell cost comparable
	}
	verifyEvery := ops/64 + 1

	base := st.snapshot("")
	baseKV := store.Stats()
	start := now
	res := &kvCellResult{}
	var got []byte
	for i := 0; i < ops; i++ {
		req := gen.Next()
		before := now
		st.sa.Begin(now)
		switch req.Op {
		case workload.OpRead:
			got, now, err = store.Get(now, kvKey(req.Key), got[:0])
			if err != nil {
				return nil, fmt.Errorf("bench: kv %s get %d: %w", wl, req.Key, err)
			}
			if i%verifyEvery == 0 {
				val = kvValue(val, req.Key, ver[req.Key])
				if !bytes.Equal(got, val) {
					return nil, fmt.Errorf("bench: kv %s: wrong bytes for key %d v%d", wl, req.Key, ver[req.Key])
				}
			}
		case workload.OpUpdate:
			ver[req.Key]++
			val = kvValue(val, req.Key, ver[req.Key])
			if now, err = store.Put(now, kvKey(req.Key), val); err != nil {
				return nil, fmt.Errorf("bench: kv %s update %d: %w", wl, req.Key, err)
			}
		case workload.OpInsert:
			val = kvValue(val, req.Key, 0)
			if now, err = store.Put(now, kvKey(req.Key), val); err != nil {
				return nil, fmt.Errorf("bench: kv %s insert %d: %w", wl, req.Key, err)
			}
		case workload.OpScan:
			seen := 0
			now, err = store.Scan(now, kvKey(req.Key), req.ScanLen, func(string, []byte) bool {
				seen++
				return true
			})
			if err != nil {
				return nil, fmt.Errorf("bench: kv %s scan %d: %w", wl, req.Key, err)
			}
		case workload.OpRMW:
			if got, now, err = store.Get(now, kvKey(req.Key), got[:0]); err != nil {
				return nil, fmt.Errorf("bench: kv %s rmw get %d: %w", wl, req.Key, err)
			}
			ver[req.Key]++
			val = kvValue(val, req.Key, ver[req.Key])
			if now, err = store.Put(now, kvKey(req.Key), val); err != nil {
				return nil, fmt.Errorf("bench: kv %s rmw put %d: %w", wl, req.Key, err)
			}
		}
		st.sa.Finish(now)
		res.hist.Observe(now - before)
		if i%kvTickEvery == kvTickEvery-1 {
			if _, now, err = store.MaintenanceTick(now); err != nil {
				return nil, fmt.Errorf("bench: kv %s compaction: %w", wl, err)
			}
		}
	}

	snap := st.snapshot("")
	subIO(&snap.IO, base.IO)
	subCache(&snap.PageCache, base.PageCache)
	subCache(&snap.FineCache, base.FineCache)
	snap.Ops = uint64(ops)
	snap.Elapsed = now - start
	snap.MeanLat = res.hist.Mean()
	snap.P99Lat = res.hist.Quantile(0.99)
	res.snap = snap
	res.stages = st.sa.Snapshot()
	res.resources = st.res.Snapshot(now)
	res.store = store.Stats()
	res.store.Puts -= baseKV.Puts
	res.store.Gets -= baseKV.Gets
	res.store.BytesWritten -= baseKV.BytesWritten
	res.store.BytesRead -= baseKV.BytesRead
	res.segs = store.Segments()
	res.keys = store.Len()
	return res, nil
}

// RunKV executes the workload × engine grid.
func RunKV(s Scale, p *Pool) ([][]*kvCellResult, error) {
	grid := make([][]*kvCellResult, len(kvWorkloads))
	for i := range grid {
		grid[i] = make([]*kvCellResult, len(kvEngines))
	}
	var cells []Cell
	for wi, wl := range kvWorkloads {
		for ei, name := range kvEngines {
			wi, ei, wl := wi, ei, wl
			cells = append(cells, Cell{
				Label: fmt.Sprintf("kv/ycsb-%s/%s", wl, name),
				Run: func() (*Result, error) {
					r, err := runKVCell(s, wl, ei == 1)
					if err != nil {
						return nil, err
					}
					grid[wi][ei] = r
					p.Live().AddKV(r.store)
					// Returning the measurement (rather than nil) feeds the
					// cell's deterministic throughput/read-amp/latency into
					// the -json summary and the regression gate.
					return &Result{Snapshot: r.snap, Hist: r.hist, Stages: r.stages, Resources: r.resources}, nil
				},
			})
		}
	}
	if err := p.RunCells(cells); err != nil {
		return nil, err
	}
	return grid, nil
}

// writeKV renders the kv experiment: per-workload throughput, latency, and
// the read-amplification comparison that is the experiment's point.
func writeKV(w io.Writer, s Scale, p *Pool) error {
	grid, err := RunKV(s, p)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "=== kv store: YCSB A-F end-to-end, exact-length Gets (scale %s, %d records, %d ops) ===\n",
		s.Name, s.KVRecords, s.KVRequests)
	t := &metrics.Table{Header: []string{
		"Workload", "Engine", "Kops/s", "Mean us", "p99 us", "ReadAmp", "PC hit%", "Read MB", "Write MB"}}
	for wi, wl := range kvWorkloads {
		for ei, name := range kvEngines {
			r := grid[wi][ei]
			t.AddRow(
				"YCSB-"+wl, name,
				fmt.Sprintf("%.1f", r.snap.ThroughputOpsPerSec()/1e3),
				fmt.Sprintf("%.1f", r.snap.MeanLat.Micros()),
				fmt.Sprintf("%.1f", r.snap.P99Lat.Micros()),
				fmt.Sprintf("%.2f", r.snap.IO.ReadAmplification()),
				fmt.Sprintf("%.1f", r.snap.PageCache.HitRatio()*100),
				fmt.Sprintf("%.1f", r.snap.IO.TrafficMB()),
				fmt.Sprintf("%.1f", float64(r.snap.IO.BytesWritten)/(1<<20)),
			)
		}
	}
	fmt.Fprint(w, t.Render())

	fmt.Fprintf(w, "\n=== kv store: log maintenance per workload (Pipette engine) ===\n")
	mt := &metrics.Table{Header: []string{
		"Workload", "Keys", "Segments", "Rotations", "Compactions", "Reclaimed MB", "Moved MB"}}
	for wi, wl := range kvWorkloads {
		r := grid[wi][1]
		mt.AddRow(
			"YCSB-"+wl,
			fmt.Sprintf("%d", r.keys),
			fmt.Sprintf("%d", r.segs),
			fmt.Sprintf("%d", r.store.Rotations),
			fmt.Sprintf("%d", r.store.Compactions),
			fmt.Sprintf("%.1f", float64(r.store.ReclaimedBytes)/(1<<20)),
			fmt.Sprintf("%.1f", float64(r.store.MovedBytes)/(1<<20)),
		)
	}
	fmt.Fprint(w, mt.Render())
	fmt.Fprintln(w)
	return nil
}
