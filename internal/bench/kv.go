package bench

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"pipette/internal/baseline"
	"pipette/internal/blockdev"
	"pipette/internal/buildinfo"
	"pipette/internal/core"
	"pipette/internal/extfs"
	"pipette/internal/index"
	"pipette/internal/kv"
	"pipette/internal/metrics"
	"pipette/internal/nvme"
	"pipette/internal/report"
	"pipette/internal/resource"
	"pipette/internal/sim"
	"pipette/internal/ssd"
	"pipette/internal/telemetry"
	"pipette/internal/vfs"
	"pipette/internal/workload"
)

// The kv experiment runs a real application — the log-structured KV store —
// end-to-end over a read engine × index engine matrix: plain block I/O and
// Pipette, each over the in-memory hash index, the paged B+-tree, and the
// bloom-filtered LSM. Every Get asks for exactly the value's bytes, and the
// on-disk indexes add sub-page node/block reads to every lookup, so the gap
// between the read engines is the paper's core claim measured through a full
// storage application — including the index traversals real stores pay.

// kvEngines are the two ends of the comparison (the intermediate engines
// need raw device access the store does not model).
var kvEngines = []string{"Block I/O", "Pipette"}

// kvIndexKinds is the index-engine axis of the matrix, in canonical order.
var kvIndexKinds = index.Kinds()

// kvWorkloads is the YCSB subset the matrix replays: A (update-heavy),
// B (read-mostly), C (read-only), and E (scan-heavy, which exercises the
// ordered engines' range iterators). D and F repeat A/B's index access
// patterns and would push the matrix from 24 to 36 cells for no new shape.
var kvWorkloads = []string{"A", "B", "C", "E"}

const (
	kvAvgRecordBytes = 320 // header + "user%010d" key + 64..512 B value
	kvValueSpan      = 449 // value sizes 64 .. 512 inclusive
	kvMinValueBytes  = 64
	kvTickEvery      = 256 // ops between maintenance (compaction) ticks
	kvSeed           = 0x5eed1e
	// kvNegProbes absent-key Gets run after the measured workload: the
	// negative-lookup regime where the LSM's bloom filters prune run reads
	// and the B+-tree still pays a full root-to-leaf traversal.
	kvNegProbes = 512
)

// kvValueSize derives a deterministic 64..512 B value size from the key —
// the paper's small-value regime, far below the 4 KiB page.
func kvValueSize(key uint64) int {
	return kvMinValueBytes + int(sim.Mix64(key^kvSeed)%kvValueSpan)
}

// kvValue renders the value for (key, version) into dst: a pattern both
// engines must reproduce byte-for-byte, so the harness can verify reads
// against it without a second store.
func kvValue(dst []byte, key uint64, ver uint32) []byte {
	n := kvValueSize(key)
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	seed := sim.Mix64(key*0x9e3779b97f4a7c15 ^ uint64(ver)<<32)
	for i := range dst {
		if i&7 == 0 && i > 0 {
			seed = sim.Mix64(seed)
		}
		dst[i] = byte(seed >> (8 * (i & 7)))
	}
	return dst
}

func kvKey(k uint64) string { return fmt.Sprintf("user%010d", k) }

// kvNegKey names the i'th absent-key probe: a live key plus a suffix, so it
// sorts between two real records. Spreading the probes uniformly through the
// key range makes them real negative lookups — every B+-tree probe descends
// a different path, and LSM bloom false positives pay an actual block read.
func kvNegKey(i int, records uint64) string {
	return kvKey(sim.Mix64(uint64(i)*0x9e3779b97f4a7c15^0xab5e17)%records) + "x"
}

// kvStack is the raw private system one cell runs over; unlike the baseline
// engines there is no preloaded workload file — the store creates its own
// segment files.
type kvStack struct {
	ctrl *ssd.Controller
	v    *vfs.VFS
	pip  *core.Pipette // nil for the block engine
	sa   *telemetry.StageAccount
	res  *resource.Tracker
}

// newKVStack assembles a stack sized for datasetBytes of live records, with
// caches budgeted at an eighth of the dataset so both engines miss — the
// regime where the read path's granularity shows. Capacity is 4x the live
// set: segments churn (live + dead + headroom) and the on-disk index
// engines add arena and run files of their own.
func newKVStack(s Scale, fine bool) (*kvStack, error) {
	datasetBytes := int64(s.KVRecords) * kvAvgRecordBytes
	cfg := baseline.DefaultStackConfig(datasetBytes * 4)
	cachePages := int(datasetBytes / 4096 / 8)
	if cachePages < 64 {
		cachePages = 64
	}
	cfg.VFS.PageCachePages = cachePages
	// The fine cache gets the same floor the page cache floor implies, so
	// tiny scales compare equal memory budgets rather than a 256 KiB page
	// cache against an 80 KiB fine cache.
	fineBytes := int(datasetBytes / 8)
	if fineBytes < cachePages*4096 {
		fineBytes = cachePages * 4096
	}
	cfg.Core.HMB.DataBytes = fineBytes
	cfg.Core.OverflowMaxBytes = fineBytes
	cfg.Core.PageCacheFloorPages = cachePages / 8

	ctrl, err := ssd.New(cfg.SSD)
	if err != nil {
		return nil, err
	}
	drv := nvme.NewDriver(ctrl, cfg.Depth, cfg.NVMe)
	blk, err := blockdev.New(drv, ctrl.PageSize(), cfg.Block)
	if err != nil {
		return nil, err
	}
	fs := extfs.New(ctrl)
	v, err := vfs.New(fs, blk, cfg.VFS)
	if err != nil {
		return nil, err
	}
	st := &kvStack{ctrl: ctrl, v: v,
		sa: telemetry.NewStageAccount(), res: resource.NewTracker()}
	// Same attribution wiring as the baseline engines, so kv cells carry
	// the stage waterfall and resource occupancy too.
	v.SetStages(st.sa)
	blk.SetStages(st.sa)
	drv.SetStages(st.sa)
	ctrl.SetStages(st.sa)
	ctrl.SetResources(st.res)
	drv.SetRingTimeline(st.res.Register("nvme.ring"))
	if fine {
		p, err := core.New(v, drv, cfg.Core)
		if err != nil {
			return nil, err
		}
		st.pip = p
	}
	return st, nil
}

// snapshot merges the stack's VFS and fine-path statistics, mirroring the
// baseline engines' accounting so read amplification is comparable.
func (st *kvStack) snapshot(name string) metrics.Snapshot {
	snap := metrics.Snapshot{Name: name}
	snap.IO = st.v.IO()
	hits, accesses, ins, evs := st.v.PageCache().Stats()
	snap.PageCache = metrics.Cache{Hits: hits, Accesses: accesses, Insertions: ins, Evictions: evs}
	if st.pip != nil {
		fio := st.pip.IO()
		snap.IO.BytesTransferred += fio.BytesTransferred
		snap.IO.FineReads = fio.FineReads
		snap.FineCache = st.pip.CacheStats()
	}
	return snap
}

// kvSegmentBytes picks the store's segment size for the scale: enough
// segments for rotation and compaction to matter, capped so full scale does
// not rewrite huge files per compaction.
func kvSegmentBytes(s Scale) int64 {
	seg := int64(s.KVRecords) * kvAvgRecordBytes / 12
	seg -= seg % 4096
	if seg < 64<<10 {
		seg = 64 << 10
	}
	if seg > 4<<20 {
		seg = 4 << 20
	}
	return seg
}

// kvIndexConfig tunes the index engine for the scale: the memtable flushes
// several runs over the load so leveled merges actually happen; everything
// else keeps the engine defaults (512 B nodes and blocks — the sub-page
// reads the fine path is built for).
func kvIndexConfig(s Scale, kind index.Kind) index.Config {
	memtable := int(s.KVRecords / 8)
	if memtable < 256 {
		memtable = 256
	}
	return index.Config{Kind: kind, MemtableEntries: memtable}
}

// kvCellResult is one (workload, engine, index) measurement.
type kvCellResult struct {
	snap      metrics.Snapshot
	hist      metrics.Histogram
	stages    telemetry.StageSnapshot
	resources *resource.Snapshot
	store     kv.Stats
	segs      int
	keys      int

	kind     index.Kind
	idx      index.Stats       // engine counters since open: load + workload + probes
	negHist  metrics.Histogram // latency of the absent-key probes
	negBytes uint64            // device bytes moved by the probes (read amp)
	bres     *Result           // the cell measurement handed to the pool/export
}

// runKVCell loads the store and replays one YCSB workload over one
// (read engine, index engine) pair.
func runKVCell(s Scale, wl string, fine bool, kind index.Kind) (*kvCellResult, error) {
	st, err := newKVStack(s, fine)
	if err != nil {
		return nil, err
	}
	store, now, err := kv.Open(0, kv.VFSBackend{V: st.v}, kv.Config{
		SegmentBytes: kvSegmentBytes(s),
		FineReads:    fine,
		Index:        kvIndexConfig(s, kind),
	})
	if err != nil {
		return nil, err
	}

	// Load phase: version 0 of every record, then sync — setup cost is
	// excluded from the measured snapshot below.
	ver := make(map[uint64]uint32, s.KVRecords)
	var val []byte
	for k := uint64(0); k < s.KVRecords; k++ {
		val = kvValue(val, k, 0)
		if now, err = store.Put(now, kvKey(k), val); err != nil {
			return nil, fmt.Errorf("bench: kv load %d: %w", k, err)
		}
	}
	if now, err = store.Sync(now); err != nil {
		return nil, err
	}

	cfg, err := workload.StandardYCSB(wl, s.KVRecords, kvSeed)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewYCSB(cfg)
	if err != nil {
		return nil, err
	}
	ops := s.KVRequests
	if wl == "E" {
		ops /= 10 // scans touch ~50 keys each; keep cell cost comparable
	}
	verifyEvery := ops/64 + 1

	base := st.snapshot("")
	baseKV := store.Stats()
	start := now
	res := &kvCellResult{kind: kind}
	var got []byte
	for i := 0; i < ops; i++ {
		req := gen.Next()
		before := now
		st.sa.Begin(now)
		switch req.Op {
		case workload.OpRead:
			got, now, err = store.Get(now, kvKey(req.Key), got[:0])
			if err != nil {
				return nil, fmt.Errorf("bench: kv %s get %d: %w", wl, req.Key, err)
			}
			if i%verifyEvery == 0 {
				val = kvValue(val, req.Key, ver[req.Key])
				if !bytes.Equal(got, val) {
					return nil, fmt.Errorf("bench: kv %s: wrong bytes for key %d v%d", wl, req.Key, ver[req.Key])
				}
			}
		case workload.OpUpdate:
			ver[req.Key]++
			val = kvValue(val, req.Key, ver[req.Key])
			if now, err = store.Put(now, kvKey(req.Key), val); err != nil {
				return nil, fmt.Errorf("bench: kv %s update %d: %w", wl, req.Key, err)
			}
		case workload.OpInsert:
			val = kvValue(val, req.Key, 0)
			if now, err = store.Put(now, kvKey(req.Key), val); err != nil {
				return nil, fmt.Errorf("bench: kv %s insert %d: %w", wl, req.Key, err)
			}
		case workload.OpScan:
			seen := 0
			now, err = store.Scan(now, kvKey(req.Key), req.ScanLen, func(string, []byte) bool {
				seen++
				return true
			})
			if err != nil {
				return nil, fmt.Errorf("bench: kv %s scan %d: %w", wl, req.Key, err)
			}
		case workload.OpRMW:
			if got, now, err = store.Get(now, kvKey(req.Key), got[:0]); err != nil {
				return nil, fmt.Errorf("bench: kv %s rmw get %d: %w", wl, req.Key, err)
			}
			ver[req.Key]++
			val = kvValue(val, req.Key, ver[req.Key])
			if now, err = store.Put(now, kvKey(req.Key), val); err != nil {
				return nil, fmt.Errorf("bench: kv %s rmw put %d: %w", wl, req.Key, err)
			}
		}
		st.sa.Finish(now)
		res.hist.Observe(now - before)
		if i%kvTickEvery == kvTickEvery-1 {
			if _, now, err = store.MaintenanceTick(now); err != nil {
				return nil, fmt.Errorf("bench: kv %s compaction: %w", wl, err)
			}
		}
	}

	snap := st.snapshot("")
	subIO(&snap.IO, base.IO)
	subCache(&snap.PageCache, base.PageCache)
	subCache(&snap.FineCache, base.FineCache)
	snap.Ops = uint64(ops)
	snap.Elapsed = now - start
	snap.MeanLat = res.hist.Mean()
	snap.P99Lat = res.hist.Quantile(0.99)
	res.snap = snap
	res.stages = st.sa.Snapshot()
	res.resources = st.res.Snapshot(now)
	res.store = store.Stats()
	res.store.Puts -= baseKV.Puts
	res.store.Gets -= baseKV.Gets
	res.store.BytesWritten -= baseKV.BytesWritten
	res.store.BytesRead -= baseKV.BytesRead
	res.segs = store.Segments()
	res.keys = store.Len()

	// Negative-lookup probes, after the measured window so they pollute
	// neither the snapshot nor the stage waterfall: every probe must miss,
	// and its cost is the index engine's absent-key path — bloom-pruned for
	// the LSM, a full descent for the B+-tree, free for the hash. Device
	// bytes moved across the probes are the read-amplification side of the
	// comparison: a block-granular stack rounds every cold node or block up
	// to a page, the fine path transfers what the index asked for.
	preProbe := st.v.IO().BytesTransferred
	if st.pip != nil {
		preProbe += st.pip.IO().BytesTransferred
	}
	for i := 0; i < kvNegProbes; i++ {
		before := now
		_, done, err := store.Get(now, kvNegKey(i, s.KVRecords), nil)
		if err != kv.ErrNotFound {
			return nil, fmt.Errorf("bench: kv %s negative probe %d: %v", wl, i, err)
		}
		now = done
		res.negHist.Observe(now - before)
	}
	postProbe := st.v.IO().BytesTransferred
	if st.pip != nil {
		postProbe += st.pip.IO().BytesTransferred
	}
	res.negBytes = postProbe - preProbe
	res.idx = store.IndexStats()
	return res, nil
}

// RunKV executes the workload × engine × index grid.
func RunKV(s Scale, p *Pool) ([][][]*kvCellResult, error) {
	grid := make([][][]*kvCellResult, len(kvWorkloads))
	for i := range grid {
		grid[i] = make([][]*kvCellResult, len(kvEngines))
		for j := range grid[i] {
			grid[i][j] = make([]*kvCellResult, len(kvIndexKinds))
		}
	}
	var cells []Cell
	for wi, wl := range kvWorkloads {
		for ei, name := range kvEngines {
			for ki, kind := range kvIndexKinds {
				wi, ei, ki, wl, name, kind := wi, ei, ki, wl, name, kind
				cells = append(cells, Cell{
					Label: fmt.Sprintf("kv/ycsb-%s/%s/%s", wl, name, kind),
					Run: func() (*Result, error) {
						r, err := runKVCell(s, wl, ei == 1, kind)
						if err != nil {
							return nil, err
						}
						grid[wi][ei][ki] = r
						p.Live().AddKV(r.store)
						p.Live().AddIndex(r.idx)
						// Returning the measurement (rather than nil) feeds the
						// cell's deterministic throughput/read-amp/latency into
						// the -json summary and the regression gate.
						r.bres = &Result{Snapshot: r.snap, Hist: r.hist, Stages: r.stages, Resources: r.resources}
						return r.bres, nil
					},
				})
			}
		}
	}
	if err := p.RunCells(cells); err != nil {
		return nil, err
	}
	return grid, nil
}

// kvIndexSummary flattens one cell's index counters into the export record
// the HTML report's index section renders.
func kvIndexSummary(r *kvCellResult) *report.IndexSummary {
	idx := r.idx
	return &report.IndexSummary{
		Kind:               string(r.kind),
		NodeReadsPerLookup: idx.NodeReadsPerLookup(),
		Height:             idx.Height,
		Splits:             idx.Splits,
		Merges:             idx.Merges,
		Runs:               idx.Runs,
		Flushes:            idx.Flushes,
		Compactions:        idx.Compactions,
		BloomNegative:      idx.BloomNegative,
		BloomFPPct:         100 * idx.BloomFPRate(),
		CacheHitPct:        100 * idx.CacheHitRate(),
		NegProbeMeanUs:     r.negHist.Mean().Micros(),
		NegProbeP99Us:      r.negHist.Quantile(0.99).Micros(),
		NegProbeReadKB:     float64(r.negBytes) / 1024,
		ReadMB:             float64(idx.BytesRead) / (1 << 20),
		WriteMB:            float64(idx.BytesWritten) / (1 << 20),
	}
}

// WriteKV renders the kv experiment: the matrix table (per-workload
// throughput, latency, and read amplification over every read × index
// engine pair), the per-index-engine structure tables, and the log
// maintenance summary. When opts names an export file the per-cell run
// records — including the index summaries the HTML report renders — are
// written there; the file is created before any cell runs (a bad path
// fails fast) and flushed even when a cell dies mid-run.
func WriteKV(w io.Writer, s Scale, opts TelemetryOpts, p *Pool) (err error) {
	var grid [][][]*kvCellResult // populated by RunKV below; the export closure sees it

	var exports telemetry.Exports
	defer func() {
		if cerr := exports.Close(); err == nil {
			err = cerr
		}
	}()
	if opts.ExportOut != "" {
		if aerr := exports.Add(opts.ExportOut, func(fw io.Writer) error {
			exp := &report.Export{Tool: "pipette-bench kv", Version: buildinfo.Version, Scale: s.Name}
			for wi := range grid {
				for ki := range kvIndexKinds {
					for ei, name := range kvEngines {
						r := grid[wi][ei][ki]
						if r == nil || r.bres == nil {
							continue
						}
						run := ExportRun(fmt.Sprintf("%s/%s", name, kvIndexKinds[ki]),
							"YCSB-"+kvWorkloads[wi], r.bres)
						run.Index = kvIndexSummary(r)
						exp.Runs = append(exp.Runs, run)
					}
				}
			}
			return exp.WriteJSON(fw)
		}); aerr != nil {
			return aerr
		}
	}

	grid, err = RunKV(s, p)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "=== kv store: YCSB %s x engine x index matrix, exact-length Gets (scale %s, %d records, %d ops) ===\n",
		strings.Join(kvWorkloads, "/"), s.Name, s.KVRecords, s.KVRequests)
	t := &metrics.Table{Header: []string{
		"Workload", "Index", "Engine", "Kops/s", "Mean us", "p99 us", "ReadAmp", "PC hit%", "Read MB", "Write MB"}}
	for wi, wl := range kvWorkloads {
		for ki, kind := range kvIndexKinds {
			for ei, name := range kvEngines {
				r := grid[wi][ei][ki]
				t.AddRow(
					"YCSB-"+wl, string(kind), name,
					fmt.Sprintf("%.1f", r.snap.ThroughputOpsPerSec()/1e3),
					fmt.Sprintf("%.1f", r.snap.MeanLat.Micros()),
					fmt.Sprintf("%.1f", r.snap.P99Lat.Micros()),
					fmt.Sprintf("%.2f", r.snap.IO.ReadAmplification()),
					fmt.Sprintf("%.1f", r.snap.PageCache.HitRatio()*100),
					fmt.Sprintf("%.1f", r.snap.IO.TrafficMB()),
					fmt.Sprintf("%.1f", float64(r.snap.IO.BytesWritten)/(1<<20)),
				)
			}
		}
	}
	fmt.Fprint(w, t.Render())

	// The on-disk index engines, one table per structure. The absent-key
	// probe columns are the experiment's second claim: the B+-tree pays a
	// root-to-leaf descent per miss (sub-page node reads the fine path
	// serves cheaply) and the LSM prunes most run reads with its filters.
	btIdx, lsmIdx := kindIndex(index.BTree), kindIndex(index.LSM)
	fmt.Fprintf(w, "\n=== kv store: paged B+-tree index (load + workload + %d absent-key probes) ===\n", kvNegProbes)
	bt := &metrics.Table{Header: []string{
		"Workload", "Engine", "Height", "Nodes", "NodeRd/Get", "Splits", "Merges", "Neg us", "Neg p99", "Probe KB", "Idx rd MB"}}
	for wi, wl := range kvWorkloads {
		for ei, name := range kvEngines {
			r := grid[wi][ei][btIdx]
			bt.AddRow(
				"YCSB-"+wl, name,
				fmt.Sprintf("%d", r.idx.Height),
				fmt.Sprintf("%d", r.idx.Nodes),
				fmt.Sprintf("%.2f", r.idx.NodeReadsPerLookup()),
				fmt.Sprintf("%d", r.idx.Splits),
				fmt.Sprintf("%d", r.idx.Merges),
				fmt.Sprintf("%.1f", r.negHist.Mean().Micros()),
				fmt.Sprintf("%.1f", r.negHist.Quantile(0.99).Micros()),
				fmt.Sprintf("%.1f", float64(r.negBytes)/1024),
				fmt.Sprintf("%.1f", float64(r.idx.BytesRead)/(1<<20)),
			)
		}
	}
	fmt.Fprint(w, bt.Render())

	fmt.Fprintf(w, "\n=== kv store: LSM index, bloom filters + block cache (load + workload + %d absent-key probes) ===\n", kvNegProbes)
	lt := &metrics.Table{Header: []string{
		"Workload", "Engine", "Runs", "Flushes", "Merges", "Bloom neg", "FP%", "Cache%", "Neg us", "Neg p99", "Probe KB", "Idx rd MB"}}
	for wi, wl := range kvWorkloads {
		for ei, name := range kvEngines {
			r := grid[wi][ei][lsmIdx]
			lt.AddRow(
				"YCSB-"+wl, name,
				fmt.Sprintf("%d", r.idx.Runs),
				fmt.Sprintf("%d", r.idx.Flushes),
				fmt.Sprintf("%d", r.idx.Compactions),
				fmt.Sprintf("%d", r.idx.BloomNegative),
				fmt.Sprintf("%.2f", 100*r.idx.BloomFPRate()),
				fmt.Sprintf("%.1f", 100*r.idx.CacheHitRate()),
				fmt.Sprintf("%.1f", r.negHist.Mean().Micros()),
				fmt.Sprintf("%.1f", r.negHist.Quantile(0.99).Micros()),
				fmt.Sprintf("%.1f", float64(r.negBytes)/1024),
				fmt.Sprintf("%.1f", float64(r.idx.BytesRead)/(1<<20)),
			)
		}
	}
	fmt.Fprint(w, lt.Render())

	fmt.Fprintf(w, "\n=== kv store: log maintenance per workload (Pipette engine, hash index) ===\n")
	mt := &metrics.Table{Header: []string{
		"Workload", "Keys", "Segments", "Rotations", "Compactions", "Reclaimed MB", "Moved MB"}}
	hashIdx := kindIndex(index.Hash)
	for wi, wl := range kvWorkloads {
		r := grid[wi][1][hashIdx]
		mt.AddRow(
			"YCSB-"+wl,
			fmt.Sprintf("%d", r.keys),
			fmt.Sprintf("%d", r.segs),
			fmt.Sprintf("%d", r.store.Rotations),
			fmt.Sprintf("%d", r.store.Compactions),
			fmt.Sprintf("%.1f", float64(r.store.ReclaimedBytes)/(1<<20)),
			fmt.Sprintf("%.1f", float64(r.store.MovedBytes)/(1<<20)),
		)
	}
	fmt.Fprint(w, mt.Render())
	fmt.Fprintln(w)
	if opts.ExportOut != "" {
		if cerr := exports.Close(); cerr != nil { // idempotent; defer no-ops
			return cerr
		}
		fmt.Fprintf(w, "run export written to %s (%d runs; render with pipette-report)\n",
			opts.ExportOut, len(kvWorkloads)*len(kvEngines)*len(kvIndexKinds))
	}
	return nil
}

// kindIndex locates an index kind's column in kvIndexKinds.
func kindIndex(k index.Kind) int {
	for i, kk := range kvIndexKinds {
		if kk == k {
			return i
		}
	}
	return 0
}
