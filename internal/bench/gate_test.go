package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func gateSummary(cells ...CellPerf) *Summary {
	return &Summary{Experiment: "phases,kv", Scale: "tiny", Workers: 2, Cells: cells}
}

func TestCompareAllClear(t *testing.T) {
	base := gateSummary(
		CellPerf{Label: "a", SimOpsPerSec: 1000, ReadAmp: 2.0, MeanUs: 10, P99Us: 50},
		CellPerf{Label: "b", SimOpsPerSec: 500, ReadAmp: 1.1, MeanUs: 20, P99Us: 90},
	)
	// Identical numbers (the deterministic same-commit case) and numbers
	// inside the band must both pass.
	regs, err := Compare(base, base, DefaultTolerance())
	if err != nil || len(regs) != 0 {
		t.Fatalf("self-compare: regs=%v err=%v", regs, err)
	}
	cur := gateSummary(
		CellPerf{Label: "a", SimOpsPerSec: 950, ReadAmp: 2.1, MeanUs: 10.5, P99Us: 54},
		CellPerf{Label: "b", SimOpsPerSec: 500, ReadAmp: 1.1, MeanUs: 20, P99Us: 90},
		CellPerf{Label: "new-cell", SimOpsPerSec: 1}, // no baseline: passes
	)
	regs, err = Compare(cur, base, DefaultTolerance())
	if err != nil || len(regs) != 0 {
		t.Fatalf("within-band compare: regs=%v err=%v", regs, err)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := gateSummary(
		CellPerf{Label: "a", SimOpsPerSec: 1000, ReadAmp: 2.0, MeanUs: 10, P99Us: 50},
		CellPerf{Label: "gone", SimOpsPerSec: 1},
	)
	cur := gateSummary(
		CellPerf{Label: "a", SimOpsPerSec: 800, ReadAmp: 2.5, MeanUs: 12, P99Us: 60},
	)
	regs, err := Compare(cur, base, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	byMetric := map[string]bool{}
	for _, r := range regs {
		byMetric[r.Metric] = true
	}
	for _, want := range []string{"sim_ops_per_sec", "read_amp", "mean_us", "p99_us", "missing cell"} {
		if !byMetric[want] {
			t.Errorf("missing regression for %s (got %v)", want, regs)
		}
	}
	report := GateReport(cur, base, regs)
	if !strings.Contains(report, "REGRESSION a: sim_ops_per_sec 1000 -> 800") {
		t.Errorf("gate report missing throughput line:\n%s", report)
	}
}

func TestCompareToleranceBands(t *testing.T) {
	base := gateSummary(CellPerf{Label: "a", SimOpsPerSec: 1000})
	// 15% drop passes at 20% tolerance, fails at 10%.
	cur := gateSummary(CellPerf{Label: "a", SimOpsPerSec: 850})
	if regs, _ := Compare(cur, base, Uniform(0.20)); len(regs) != 0 {
		t.Fatalf("15%% drop flagged at 20%% tolerance: %v", regs)
	}
	if regs, _ := Compare(cur, base, Uniform(0.10)); len(regs) != 1 {
		t.Fatalf("15%% drop not flagged at 10%% tolerance: %v", regs)
	}
}

func TestCompareMismatchErrors(t *testing.T) {
	base := gateSummary()
	curScale := &Summary{Experiment: base.Experiment, Scale: "quick"}
	if _, err := Compare(curScale, base, DefaultTolerance()); err == nil {
		t.Fatal("scale mismatch must error")
	}
	curExp := &Summary{Experiment: "all", Scale: base.Scale}
	if _, err := Compare(curExp, base, DefaultTolerance()); err == nil {
		t.Fatal("experiment mismatch must error")
	}
}

// TestDiffSummariesSelfIsZero pins the pipette-report -diff contract on
// the bench-summary path: a summary diffed against itself compares every
// nonzero metric, changes none, and exceeds nothing.
func TestDiffSummariesSelfIsZero(t *testing.T) {
	s := gateSummary(
		CellPerf{Label: "a", SimOpsPerSec: 1000, ReadAmp: 2.0, MeanUs: 10, P99Us: 50},
		CellPerf{Label: "b", SimOpsPerSec: 500, ReadAmp: 1.1, MeanUs: 20, P99Us: 90},
	)
	d, err := DiffSummaries(s, s, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 8 {
		t.Fatalf("compared %d metrics, want 8 (2 cells x 4)", len(d.Rows))
	}
	if d.Changed() != 0 || d.Exceeded() != 0 {
		t.Fatalf("self-diff: changed %d exceeded %d, want 0 and 0", d.Changed(), d.Exceeded())
	}
}

// TestDiffSummariesMatchesCompare checks the diff's Exceeds flags agree
// with the CI gate: exactly the rows Compare reports as regressions are
// flagged, while in-band movement shows as a changed-but-clean delta.
func TestDiffSummariesMatchesCompare(t *testing.T) {
	base := gateSummary(
		CellPerf{Label: "a", SimOpsPerSec: 1000, ReadAmp: 2.0, MeanUs: 10, P99Us: 50},
		CellPerf{Label: "gone", SimOpsPerSec: 1},
	)
	cur := gateSummary(
		CellPerf{Label: "a", SimOpsPerSec: 800, ReadAmp: 2.05, MeanUs: 12, P99Us: 49},
		CellPerf{Label: "fresh", SimOpsPerSec: 7},
	)
	d, err := DiffSummaries(cur, base, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	flagged := map[string]bool{}
	for _, r := range d.Rows {
		if r.Exceeds {
			flagged[r.Metric] = true
		}
	}
	regs, err := Compare(cur, base, DefaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	fromGate := map[string]bool{}
	for _, r := range regs {
		if r.Metric != "missing cell" {
			fromGate[r.Metric] = true
		}
	}
	if len(flagged) != len(fromGate) {
		t.Fatalf("diff flags %v, gate flags %v", flagged, fromGate)
	}
	for m := range fromGate {
		if !flagged[m] {
			t.Errorf("gate regression %s not flagged in diff", m)
		}
	}
	// In-band read_amp rise (+2.5%): changed but clean.
	if flagged["read_amp"] {
		t.Error("in-band read_amp movement flagged as exceeding")
	}
	if len(d.OnlyOld) != 1 || d.OnlyOld[0] != "gone" {
		t.Errorf("OnlyOld = %v, want [gone]", d.OnlyOld)
	}
	if len(d.OnlyNew) != 1 || d.OnlyNew[0] != "fresh" {
		t.Errorf("OnlyNew = %v, want [fresh]", d.OnlyNew)
	}
	if _, err := DiffSummaries(&Summary{Scale: "quick", Experiment: base.Experiment}, base, DefaultTolerance()); err == nil {
		t.Error("scale mismatch must error")
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	s := gateSummary(CellPerf{Label: "a", WallSeconds: 1.5, Ops: 100, SimOpsPerSec: 1000, ReadAmp: 2, MeanUs: 10, P99Us: 50})
	s.Rev = "abc123"
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rev != "abc123" || len(got.Cells) != 1 || got.Cells[0] != s.Cells[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := ReadSummary(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline must error")
	}
}
