package bench

import (
	"sort"
	"strings"
	"sync"
	"time"

	"pipette/internal/fault"
	"pipette/internal/index"
	"pipette/internal/kv"
	"pipette/internal/metrics"
	"pipette/internal/resource"
	"pipette/internal/telemetry"
)

// Live is the harness's bridge into the unified metrics registry: one
// instance aggregates every finished cell's counters — SSD traffic, cache
// activity, KV log maintenance, fault/recovery ledgers — into live
// Prometheus families, and tracks per-cell completion for the /progress
// endpoint. Cells stay fully private simulations; they report into Live
// only at completion (atomic adds), so a scraper polling /metrics at any
// rate observes the suite's progress without perturbing a single cell —
// the rendered tables are byte-identical with or without a listener.
type Live struct {
	reg *telemetry.Registry

	cellsDone *telemetry.LiveCounter
	opsDone   *telemetry.LiveCounter
	cellWall  *telemetry.LiveHistogram

	ssdBlockReads, ssdFineReads, ssdWrites                  *telemetry.LiveCounter
	bytesRequested, bytesTransferred, bytesWritten          *telemetry.LiveCounter
	pcHits, pcAccesses, fineHits, fineAccesses              *telemetry.LiveCounter
	kvPuts, kvGets, kvRotations, kvCompactions              *telemetry.LiveCounter
	kvBytesWritten, kvBytesRead                             *telemetry.LiveCounter
	idxNodeReads, idxBloomChecks, idxBloomNegative          *telemetry.LiveCounter
	idxCacheHits, idxCacheMisses                            *telemetry.LiveCounter
	idxBytesRead, idxBytesWritten                           *telemetry.LiveCounter
	fInjected, fECCRetries, fUncorrectable                  *telemetry.LiveCounter
	fRingFallbacks, fDMAFallbacks, fProgRetries, fWBRetries *telemetry.LiveCounter

	mu      sync.Mutex
	total   int
	cells   map[string]*cellState
	resBusy map[string]*telemetry.LiveCounter
}

// cellState is one cell's /progress record.
type cellState struct {
	Label       string  `json:"label"`
	State       string  `json:"state"` // pending | running | done | failed
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	started     time.Time
}

// NewLive registers the harness's metric families on reg.
func NewLive(reg *telemetry.Registry) *Live {
	l := &Live{reg: reg, cells: make(map[string]*cellState), resBusy: make(map[string]*telemetry.LiveCounter)}
	l.cellsDone = reg.Counter("bench_cells_done_total", "experiment cells completed")
	l.opsDone = reg.Counter("bench_ops_total", "measured simulated operations completed by finished cells")
	l.cellWall = reg.Histogram("bench_cell_wall_seconds", "wall-clock cost of one cell",
		[]float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300})
	reg.GaugeFunc("bench_cells_total", "experiment cells scheduled", func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return float64(l.total)
	})
	reg.GaugeFunc("bench_cells_running", "experiment cells currently executing", func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		n := 0
		for _, c := range l.cells {
			if c.State == "running" {
				n++
			}
		}
		return float64(n)
	})

	l.ssdBlockReads = reg.Counter("ssd_reads_total", "read commands issued to the device", telemetry.L("interface", "block"))
	l.ssdFineReads = reg.Counter("ssd_reads_total", "read commands issued to the device", telemetry.L("interface", "fine"))
	l.ssdWrites = reg.Counter("ssd_writes_total", "write commands issued to the device")
	l.bytesRequested = reg.Counter("ssd_bytes_total", "host-interface traffic", telemetry.L("direction", "requested"))
	l.bytesTransferred = reg.Counter("ssd_bytes_total", "host-interface traffic", telemetry.L("direction", "transferred"))
	l.bytesWritten = reg.Counter("ssd_bytes_total", "host-interface traffic", telemetry.L("direction", "written"))

	l.pcHits = reg.Counter("cache_hits_total", "cache hits", telemetry.L("cache", "page"))
	l.pcAccesses = reg.Counter("cache_accesses_total", "cache accesses", telemetry.L("cache", "page"))
	l.fineHits = reg.Counter("cache_hits_total", "cache hits", telemetry.L("cache", "fine"))
	l.fineAccesses = reg.Counter("cache_accesses_total", "cache accesses", telemetry.L("cache", "fine"))

	l.kvPuts = reg.Counter("kv_ops_total", "KV store operations", telemetry.L("op", "put"))
	l.kvGets = reg.Counter("kv_ops_total", "KV store operations", telemetry.L("op", "get"))
	l.kvRotations = reg.Counter("kv_rotations_total", "KV log segments sealed")
	l.kvCompactions = reg.Counter("kv_compactions_total", "KV segments compacted")
	l.kvBytesWritten = reg.Counter("kv_log_bytes_total", "KV value-log traffic", telemetry.L("direction", "written"))
	l.kvBytesRead = reg.Counter("kv_log_bytes_total", "KV value-log traffic", telemetry.L("direction", "read"))

	l.idxNodeReads = reg.Counter("kv_index_node_reads_total", "B+-tree node fetches paid by KV lookups")
	l.idxBloomChecks = reg.Counter("kv_index_bloom_total", "LSM run-filter membership decisions", telemetry.L("result", "checked"))
	l.idxBloomNegative = reg.Counter("kv_index_bloom_total", "LSM run-filter membership decisions", telemetry.L("result", "negative"))
	l.idxCacheHits = reg.Counter("kv_index_cache_total", "LSM block-cache outcomes", telemetry.L("result", "hit"))
	l.idxCacheMisses = reg.Counter("kv_index_cache_total", "LSM block-cache outcomes", telemetry.L("result", "miss"))
	l.idxBytesRead = reg.Counter("kv_index_bytes_total", "KV index-file traffic", telemetry.L("direction", "read"))
	l.idxBytesWritten = reg.Counter("kv_index_bytes_total", "KV index-file traffic", telemetry.L("direction", "written"))

	l.fInjected = reg.Counter("fault_injected_total", "fault decisions drawn across all sites")
	l.fECCRetries = reg.Counter("fault_ecc_retries_total", "NAND read-retry steps charged by the ECC ladder")
	l.fUncorrectable = reg.Counter("fault_uncorrectable_total", "reads that exhausted the retry budget")
	l.fRingFallbacks = reg.Counter("fault_fallbacks_total", "fine reads re-served via block I/O", telemetry.L("path", "ring"))
	l.fDMAFallbacks = reg.Counter("fault_fallbacks_total", "fine reads re-served via block I/O", telemetry.L("path", "dma"))
	l.fProgRetries = reg.Counter("fault_retries_total", "commands re-issued after a fault", telemetry.L("site", "program"))
	l.fWBRetries = reg.Counter("fault_retries_total", "commands re-issued after a fault", telemetry.L("site", "writeback"))
	return l
}

// Registry returns the registry Live reports into.
func (l *Live) Registry() *telemetry.Registry { return l.reg }

// AddSnapshot folds one finished cell's traffic and cache counters into
// the ssd and cache families.
func (l *Live) AddSnapshot(s *metrics.Snapshot) {
	if l == nil || s == nil {
		return
	}
	l.ssdBlockReads.Add(s.IO.BlockReads)
	l.ssdFineReads.Add(s.IO.FineReads)
	l.ssdWrites.Add(s.IO.Writes)
	l.bytesRequested.Add(s.IO.BytesRequested)
	l.bytesTransferred.Add(s.IO.BytesTransferred)
	l.bytesWritten.Add(s.IO.BytesWritten)
	l.pcHits.Add(s.PageCache.Hits)
	l.pcAccesses.Add(s.PageCache.Accesses)
	l.fineHits.Add(s.FineCache.Hits)
	l.fineAccesses.Add(s.FineCache.Accesses)
}

// AddResources folds one finished cell's per-resource busy time into the
// bench_resource_busy_ns_total family: the channel buses and the host
// links. Per-die rows are skipped — a family of 64 way series would swamp
// the exposition, and the die detail lives in the run exports. Series are
// registered on first sight in the snapshot's (deterministic) resource
// order; every cell shares one layout, so whichever cell finishes first
// registers the same series in the same order.
func (l *Live) AddResources(s *resource.Snapshot) {
	if l == nil || s == nil {
		return
	}
	l.mu.Lock()
	counters := make([]*telemetry.LiveCounter, 0, len(s.Resources))
	values := make([]uint64, 0, len(s.Resources))
	for _, r := range s.Resources {
		if strings.Contains(r.Name, ".w") {
			continue
		}
		c, ok := l.resBusy[r.Name]
		if !ok {
			c = l.reg.Counter("bench_resource_busy_ns_total",
				"cumulative busy virtual time per simulated resource across finished cells",
				telemetry.L("resource", r.Name))
			l.resBusy[r.Name] = c
		}
		counters = append(counters, c)
		values = append(values, uint64(r.BusyNs))
	}
	l.mu.Unlock()
	for i, c := range counters {
		c.Add(values[i])
	}
}

// AddKV folds one finished cell's store counters into the kv family.
func (l *Live) AddKV(st kv.Stats) {
	if l == nil {
		return
	}
	l.kvPuts.Add(st.Puts)
	l.kvGets.Add(st.Gets)
	l.kvRotations.Add(st.Rotations)
	l.kvCompactions.Add(st.Compactions)
	l.kvBytesWritten.Add(st.BytesWritten)
	l.kvBytesRead.Add(st.BytesRead)
}

// AddIndex folds one finished cell's index-engine counters into the
// kv_index families.
func (l *Live) AddIndex(st index.Stats) {
	if l == nil {
		return
	}
	l.idxNodeReads.Add(st.NodeReads)
	l.idxBloomChecks.Add(st.BloomChecks)
	l.idxBloomNegative.Add(st.BloomNegative)
	l.idxCacheHits.Add(st.CacheHits)
	l.idxCacheMisses.Add(st.CacheMisses)
	l.idxBytesRead.Add(st.BytesRead)
	l.idxBytesWritten.Add(st.BytesWritten)
}

// AddFaults folds one finished cell's injection/recovery ledger into the
// fault family.
func (l *Live) AddFaults(r fault.Report) {
	if l == nil {
		return
	}
	l.fInjected.Add(r.Injected)
	l.fECCRetries.Add(r.ECCRetries)
	l.fUncorrectable.Add(r.Uncorrectable)
	l.fRingFallbacks.Add(r.RingFallbacks)
	l.fDMAFallbacks.Add(r.DMAFallbacks)
	l.fProgRetries.Add(r.ProgramRetries)
	l.fWBRetries.Add(r.WritebackRetries)
}

// cellStarted records a cell entering execution.
func (l *Live) cellStarted(label string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.cells[label]
	if !ok {
		c = &cellState{Label: label}
		l.cells[label] = c
		l.total++
	}
	c.State = "running"
	c.started = time.Now()
}

// cellFinished records a cell's completion and folds its perf numbers in.
func (l *Live) cellFinished(label string, pf CellPerf, failed bool) {
	if l == nil {
		return
	}
	l.cellsDone.Inc()
	l.opsDone.Add(pf.Ops)
	l.cellWall.Observe(pf.WallSeconds)
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.cells[label]
	if !ok {
		c = &cellState{Label: label}
		l.cells[label] = c
		l.total++
	}
	c.State = "done"
	if failed {
		c.State = "failed"
	}
	c.WallSeconds = pf.WallSeconds
}

// Progress returns the /progress document: overall counts plus the
// per-cell completion list, sorted by label for stable output.
func (l *Live) Progress() any {
	l.mu.Lock()
	defer l.mu.Unlock()
	cells := make([]cellState, 0, len(l.cells))
	done := 0
	for _, c := range l.cells {
		cells = append(cells, *c)
		if c.State == "done" || c.State == "failed" {
			done++
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Label < cells[j].Label })
	return struct {
		CellsTotal int         `json:"cells_total"`
		CellsDone  int         `json:"cells_done"`
		Cells      []cellState `json:"cells"`
	}{CellsTotal: l.total, CellsDone: done, Cells: cells}
}
