package bench

import (
	"errors"
	"fmt"
	"io"

	"pipette/internal/baseline"
	"pipette/internal/buildinfo"
	"pipette/internal/nvme"
	"pipette/internal/report"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
	"pipette/internal/workload"
)

// OpenLoopOpts configures one open-loop replay.
type OpenLoopOpts struct {
	// Arrivals is the arrival process (required): requests arrive on its
	// schedule regardless of completions.
	Arrivals workload.Arrivals
	// Depth bounds in-flight requests: arrivals past the bound wait in an
	// admission FIFO, and that wait is attributed to the queue stage.
	// Values < 1 clamp to 1.
	Depth int
	// MaxQueue bounds the admission FIFO itself: an arrival that would
	// have to wait behind MaxQueue queued requests is rejected with
	// backpressure and counted on Result.Rejected. 0 = unbounded.
	MaxQueue int
	// Offered is the nominal arrival rate in ops/s, recorded on the
	// result for reporting (the achieved rate comes from the snapshot).
	Offered float64
	// TolerateMediaErrors counts uncorrectable media errors as lost
	// requests instead of failing the replay — see RunOpts.
	TolerateMediaErrors bool
}

// RunOpenLoop replays an open-loop request stream against e: requests
// arrive per opts.Arrivals, wait in an admission queue while Depth
// requests are in flight, and dispatch as completions free slots. The
// engine's stack executes each dispatched request synchronously in
// virtual time, so overlap between in-flight requests emerges from the
// contended device resources (NAND dies and channel buses, the PCIe link
// and NVMe fetch arbiter when enabled) that persist across calls — the
// discrete-event engine sequences arrivals, dispatches, and completions
// deterministically by (time, seq).
//
// Host-side software state (caches, the fine-read ring) mutates at
// dispatch, a modeling simplification documented in DESIGN.md §8.
// Per-request latency is measured arrival to completion, so queueing
// delay is part of the distribution — the open-system behavior a
// closed-loop replay cannot show.
func RunOpenLoop(e baseline.Engine, gen workload.Generator, requests int, opts OpenLoopOpts) (*Result, error) {
	if opts.Arrivals == nil {
		return nil, errors.New("bench: open-loop replay needs an arrival process")
	}
	if requests <= 0 {
		return nil, errors.New("bench: open-loop replay needs requests > 0")
	}
	depth := opts.Depth
	if depth < 1 {
		depth = 1
	}

	eng := sim.NewEngine()
	buf := make([]byte, 4096)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i*7 + 13)
	}
	grow := func(n int) {
		for n > len(buf) {
			buf = make([]byte, 2*len(buf))
		}
		for n > len(payload) {
			old := payload
			payload = make([]byte, 2*len(payload))
			copy(payload, old)
			copy(payload[len(old):], old)
		}
	}

	base := e.Snapshot()
	res := &Result{Offered: opts.Offered, Depth: depth, Arrivals: opts.Arrivals.Name()}

	// Open-loop replays have no warmup, so the tail capture and the
	// heatmap span the whole run, time axis anchored at virtual zero.
	tail := telemetry.NewTailRecorder(tailTopK, tailKeep(requests))
	e.Stages().SetTail(tail)
	defer e.Stages().SetTail(nil)
	grid := telemetry.NewLatencyGrid(0)

	type pending struct {
		arrival sim.Time
		req     workload.Request
	}
	var (
		queue    []pending
		head     int
		inFlight int
		arrived  int
		lastDone sim.Time
		runErr   error
	)

	var admit func(now sim.Time)
	complete := func(now sim.Time) {
		inFlight--
		admit(now)
	}
	admit = func(now sim.Time) {
		for runErr == nil && inFlight < depth && head < len(queue) {
			p := queue[head]
			head++
			grow(p.req.Size)
			// Arm the stage account with the true arrival time: the span
			// [arrival, now) becomes the request's queue stage and its
			// latency is measured from arrival.
			e.Stages().PreQueue(p.arrival)
			var done sim.Time
			var err error
			if p.req.Write {
				done, err = e.WriteAt(now, payload[:p.req.Size], p.req.Off)
			} else {
				done, err = e.ReadAt(now, buf[:p.req.Size], p.req.Off)
			}
			if err != nil {
				if !opts.TolerateMediaErrors || !errors.Is(err, nvme.ErrUncorrectable) {
					runErr = fmt.Errorf("bench: open-loop request %d (%+v): %w", head-1, p.req, err)
					return
				}
				// The failed request still occupied the system until done;
				// it frees its slot then but never enters the histogram.
				res.Lost++
			} else {
				res.Hist.Observe(done - p.arrival)
				grid.Observe(done, done-p.arrival)
			}
			if done > lastDone {
				lastDone = done
			}
			inFlight++
			eng.At(done, complete)
		}
		// Reclaim the drained backlog so a long overloaded run does not
		// hold every request in memory.
		if head == len(queue) {
			queue = queue[:0]
			head = 0
		}
	}
	var arrive func(now sim.Time)
	arrive = func(now sim.Time) {
		req := gen.Next()
		arrived++
		if arrived < requests {
			eng.At(now+opts.Arrivals.Next(), arrive)
		}
		if opts.MaxQueue > 0 && inFlight >= depth && len(queue)-head >= opts.MaxQueue {
			res.Rejected++ // backpressure: the FIFO is full, drop at arrival
			return
		}
		queue = append(queue, pending{arrival: now, req: req})
		admit(now)
	}
	eng.At(opts.Arrivals.Next(), arrive)
	eng.Run()
	if runErr != nil {
		return nil, runErr
	}

	res.Tail = tail.Snapshot()
	res.Heat = grid.Snapshot()
	res.Stages = e.Stages().Snapshot()
	res.Resources = e.Resources().Snapshot(lastDone)
	snap := e.Snapshot()
	subIO(&snap.IO, base.IO)
	subCache(&snap.PageCache, base.PageCache)
	subCache(&snap.FineCache, base.FineCache)
	snap.Ops = uint64(requests) - res.Lost - res.Rejected
	snap.Elapsed = lastDone
	snap.MeanLat = res.Hist.Mean()
	snap.P99Lat = res.Hist.Quantile(0.99)
	snap.MaxLat = res.Hist.Max()
	res.Snapshot = snap
	return res, nil
}

// qdepthEngineIdxs are the engines the saturation sweep compares: the
// conventional path, the strongest 2B-SSD mode, and full Pipette
// (indexes into EngineNames / newEngine).
var qdepthEngineIdxs = []int{0, 2, 4}

// qdepthKneeFrac is the saturation-knee criterion: the first offered rate
// whose achieved throughput falls below this fraction of offered marks
// the knee.
const qdepthKneeFrac = 0.95

// Bursty-arrival shape for the burst rows: bursts of 64 requests at 8x
// the average rate.
const (
	qdepthBurstLen  = 64
	qdepthBurstPeak = 8.0
)

// qdepthConfig is the per-cell stack: the shared sweep configuration with
// device-side contention fully on — the PCIe link serializes transfers
// and the NVMe fetch engine arbitrates submissions — so queueing shows up
// everywhere it physically would.
func qdepthConfig(s Scale) baseline.StackConfig {
	cfg := s.stackConfig(s.FileSize())
	cfg.SSD.LinkArbitration = true
	cfg.NVMe.Arbitration = 100 * sim.Nanosecond
	return cfg
}

// qdepthPoint is one cell of the sweep grid.
type qdepthPoint struct {
	engine int
	depth  int
	rate   float64 // offered ops/s; 0 = closed loop
	burst  bool
}

func (pt qdepthPoint) label() string {
	if pt.rate == 0 {
		return fmt.Sprintf("qdepth/%s/closed", EngineNames[pt.engine])
	}
	kind := "poisson"
	if pt.burst {
		kind = "bursty"
	}
	return fmt.Sprintf("qdepth/%s/qd%d/%s@%.0f", EngineNames[pt.engine], pt.depth, kind, pt.rate)
}

// workload names the point for export rows.
func (pt qdepthPoint) workload() string {
	if pt.rate == 0 {
		return "mixE-closed"
	}
	kind := "poisson"
	if pt.burst {
		kind = "bursty"
	}
	return fmt.Sprintf("mixE-qd%d-%s@%.0f", pt.depth, kind, pt.rate)
}

// qdepthPoints enumerates the sweep grid in render order: per engine, the
// closed-loop reference, then per depth the Poisson rate sweep (ascending)
// plus one bursty point at a mid-sweep rate.
func qdepthPoints(s Scale) []qdepthPoint {
	burstRate := s.QDepthRates[(len(s.QDepthRates)-1)/2]
	var points []qdepthPoint
	for _, ei := range qdepthEngineIdxs {
		points = append(points, qdepthPoint{engine: ei, depth: 1})
		for _, d := range s.QDepths {
			for _, r := range s.QDepthRates {
				points = append(points, qdepthPoint{engine: ei, depth: d, rate: r})
			}
			points = append(points, qdepthPoint{engine: ei, depth: d, rate: burstRate, burst: true})
		}
	}
	return points
}

// WriteQDepth runs the saturation sweep: arrival rate x queue depth x
// engine over workload mix E (100% small reads, uniform), open loop with
// Poisson and bursty arrivals plus the closed-loop reference, and prints
// the throughput-vs-latency table and each configuration's saturation
// knee. When opts names an export file the per-point run records (the
// pipette-report input, including the queue stage and per-resource
// occupancy) are written there; the trace/stats outputs do not apply to
// this experiment. Each point is a pool cell over a private system;
// rendering happens after all complete, in grid order, so the output is
// byte-identical at any worker count.
func WriteQDepth(w io.Writer, s Scale, opts TelemetryOpts, p *Pool) (err error) {
	if len(s.QDepths) == 0 || len(s.QDepthRates) == 0 || s.QDepthRequests <= 0 {
		return errors.New("bench: scale has no qdepth sweep parameters")
	}
	mixE := workload.Mixes(s.FileSize(), 4096, workload.Uniform, 0xbead)[4]
	points := qdepthPoints(s)
	slots := make([]*Result, len(points))

	var exports telemetry.Exports
	defer func() {
		if cerr := exports.Close(); err == nil {
			err = cerr
		}
	}()
	if opts.ExportOut != "" {
		if aerr := exports.Add(opts.ExportOut, func(fw io.Writer) error {
			exp := &report.Export{Tool: "pipette-bench qdepth", Version: buildinfo.Version, Scale: s.Name}
			for i, pt := range points {
				if r := slots[i]; r != nil {
					exp.Runs = append(exp.Runs, ExportRun(EngineNames[pt.engine], pt.workload(), r))
				}
			}
			return exp.WriteJSON(fw)
		}); aerr != nil {
			return aerr
		}
	}

	cells := make([]Cell, len(points))
	for i, pt := range points {
		i, pt := i, pt
		cells[i] = Cell{
			Label: pt.label(),
			Run: func() (*Result, error) {
				e, err := newEngine(pt.engine, qdepthConfig(s))
				if err != nil {
					return nil, err
				}
				gen, err := workload.NewSynthetic(mixE)
				if err != nil {
					return nil, err
				}
				var res *Result
				if pt.rate == 0 {
					res, err = Run(e, gen, s.QDepthRequests, RunOpts{TolerateMediaErrors: true})
				} else {
					var arr workload.Arrivals
					if pt.burst {
						arr, err = workload.NewBursty(pt.rate, qdepthBurstLen, qdepthBurstPeak, 0xa221)
					} else {
						arr, err = workload.NewPoisson(pt.rate, 0xa221)
					}
					if err != nil {
						return nil, err
					}
					res, err = RunOpenLoop(e, gen, s.QDepthRequests, OpenLoopOpts{
						Arrivals: arr, Depth: pt.depth, Offered: pt.rate,
						TolerateMediaErrors: true,
					})
				}
				if err != nil {
					return nil, fmt.Errorf("bench: %s: %w", pt.label(), err)
				}
				slots[i] = res
				return res, nil
			},
		}
	}
	if err := p.RunCells(cells); err != nil {
		return err
	}

	fmt.Fprintf(w, "=== Throughput vs latency: mix E uniform, open loop (scale %s, %d requests/point) ===\n",
		s.Name, s.QDepthRequests)
	renderQDepthTable(w, points, slots)
	fmt.Fprintln(w)
	renderQDepthKnees(w, s, points, slots)
	if opts.ExportOut != "" {
		if cerr := exports.Close(); cerr != nil { // idempotent; defer no-ops
			return cerr
		}
		fmt.Fprintf(w, "\nrun export written to %s (%d runs; render with pipette-report)\n",
			opts.ExportOut, len(points))
	}
	return nil
}

func renderQDepthTable(w io.Writer, points []qdepthPoint, slots []*Result) {
	t := &simpleTable{header: []string{
		"engine", "qd", "arrivals", "offered/s", "achieved/s",
		"mean(us)", "p50(us)", "p99(us)", "queue(us)", "rejected"}}
	for i, pt := range points {
		r := slots[i]
		if r == nil {
			continue
		}
		arrName := "closed"
		offered := "-"
		qd := fmt.Sprintf("%d", pt.depth)
		if pt.rate > 0 {
			arrName = r.Arrivals
			offered = fmt.Sprintf("%.0f", pt.rate)
		} else {
			qd = "1"
		}
		// Mean queue time over all requests (the stage total averages over
		// every request, not only the ones that waited).
		var queueUs float64
		if r.Stages.Requests > 0 {
			queueUs = (sim.Time(int64(r.Stages.Totals[telemetry.StageQueue])) /
				sim.Time(int64(r.Stages.Requests))).Micros()
		}
		t.addRow(
			EngineNames[pt.engine], qd, arrName, offered,
			fmt.Sprintf("%.0f", r.Snapshot.ThroughputOpsPerSec()),
			fmt.Sprintf("%.2f", r.Hist.Mean().Micros()),
			fmt.Sprintf("%.2f", r.Hist.Quantile(0.50).Micros()),
			fmt.Sprintf("%.2f", r.Hist.Quantile(0.99).Micros()),
			fmt.Sprintf("%.2f", queueUs),
			fmt.Sprintf("%d", r.Rejected),
		)
	}
	io.WriteString(w, t.render())
}

// renderQDepthKnees prints each (engine, depth) Poisson curve's saturation
// knee: the first offered rate whose achieved throughput drops below
// qdepthKneeFrac of offered.
func renderQDepthKnees(w io.Writer, s Scale, points []qdepthPoint, slots []*Result) {
	fmt.Fprintf(w, "saturation knees (achieved < %.0f%% of offered):\n", 100*qdepthKneeFrac)
	for _, ei := range qdepthEngineIdxs {
		for _, d := range s.QDepths {
			knee := ""
			for i, pt := range points {
				if pt.engine != ei || pt.depth != d || pt.rate == 0 || pt.burst || slots[i] == nil {
					continue
				}
				achieved := slots[i].Snapshot.ThroughputOpsPerSec()
				if achieved < qdepthKneeFrac*pt.rate {
					knee = fmt.Sprintf("offered %.0f op/s -> achieved %.0f op/s", pt.rate, achieved)
					break
				}
			}
			if knee == "" {
				knee = "beyond sweep (no saturation observed)"
			}
			fmt.Fprintf(w, "  %-18s qd=%-4d %s\n", EngineNames[ei], d, knee)
		}
	}
}

// simpleTable is a minimal fixed-width renderer mirroring metrics.Table's
// look for the qdepth sweep (kept local: the sweep right-aligns numeric
// columns and metrics.Table is shared API).
type simpleTable struct {
	header []string
	rows   [][]string
}

func (t *simpleTable) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *simpleTable) render() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b []byte
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b = append(b, ' ', ' ')
			}
			if i == 0 {
				b = append(b, c...)
				for j := len(c); j < widths[i]; j++ {
					b = append(b, ' ')
				}
			} else {
				for j := len(c); j < widths[i]; j++ {
					b = append(b, ' ')
				}
				b = append(b, c...)
			}
		}
		b = append(b, '\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return string(b)
}
