package bench

import (
	"bytes"
	"testing"
)

// TestFaultsDeterminism is the acceptance gate for the fault machinery's
// reproducibility: the faults experiment's rendered output must be
// byte-identical between a serial run and an 8-worker pool — every cell's
// injector draws from its own seeded streams, so scheduling cannot leak in.
func TestFaultsDeterminism(t *testing.T) {
	s := TinyScale()
	var serial, parallel bytes.Buffer
	if err := writeFaults(&serial, s, nil); err != nil {
		t.Fatalf("serial: %v", err)
	}
	if err := writeFaults(&parallel, s, NewPool(8)); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("faults output differs between -j 1 and -j 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
	if !bytes.Contains(serial.Bytes(), []byte("ECC retry")) {
		t.Fatalf("unexpected faults output:\n%s", serial.String())
	}
}

// TestFaultsRecoveryCounters pins the sweep's semantics at tiny scale: the
// control level injects nothing, and under injection every fault channel
// the sweep exercises shows recovery activity while every surviving read
// verified against the oracle inside runFaulted.
func TestFaultsRecoveryCounters(t *testing.T) {
	s := TinyScale()
	res, err := RunFaults(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mix := range []string{"C", "E"} {
		for name, fr := range res[mix]["none"] {
			if fr.Failed != 0 || fr.Report.Injected != 0 {
				t.Errorf("mix %s %s: control level injected %d, failed %d",
					mix, name, fr.Report.Injected, fr.Failed)
			}
		}
		blk := res[mix]["high"]["Block I/O"]
		pip := res[mix]["high"]["Pipette"]
		if blk.Report.ECCRetries == 0 || blk.Report.Uncorrectable == 0 {
			t.Errorf("mix %s block: no ECC activity at high level: %+v", mix, blk.Report)
		}
		if pip.Report.RingFallbacks == 0 || pip.Report.DMAFallbacks == 0 {
			t.Errorf("mix %s pipette: no fine fallbacks at high level: %+v", mix, pip.Report)
		}
		if blk.Report.ProgramRetries == 0 || blk.Report.WritebackRetries == 0 {
			t.Errorf("mix %s block: write-side sites silent: %+v", mix, blk.Report)
		}
	}
}
