package bench

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"pipette/internal/workload"
)

func TestPoolRunsAllCells(t *testing.T) {
	t.Parallel()
	var ran int64
	var cells []Cell
	for i := 0; i < 37; i++ {
		cells = append(cells, Cell{
			Label: fmt.Sprintf("cell-%d", i),
			Run: func() (*Result, error) {
				atomic.AddInt64(&ran, 1)
				return nil, nil
			},
		})
	}
	p := NewPool(8)
	if err := p.RunCells(cells); err != nil {
		t.Fatal(err)
	}
	if ran != 37 {
		t.Fatalf("ran %d cells, want 37", ran)
	}
	if got := len(p.Perf()); got != 37 {
		t.Fatalf("perf records %d, want 37", got)
	}
}

func TestPoolReturnsFirstErrorInOrder(t *testing.T) {
	t.Parallel()
	errA := errors.New("a")
	errB := errors.New("b")
	cells := []Cell{
		{Label: "ok", Run: func() (*Result, error) { return nil, nil }},
		{Label: "first", Run: func() (*Result, error) { return nil, errA }},
		{Label: "second", Run: func() (*Result, error) { return nil, errB }},
	}
	for _, p := range []*Pool{nil, NewPool(1), NewPool(4)} {
		if err := p.RunCells(cells); !errors.Is(err, errA) {
			t.Errorf("workers=%d: err = %v, want %v", p.Workers(), err, errA)
		}
	}
}

func TestNilPoolRunsSerially(t *testing.T) {
	t.Parallel()
	var order []int
	var cells []Cell
	for i := 0; i < 5; i++ {
		i := i
		cells = append(cells, Cell{
			Label: fmt.Sprintf("c%d", i),
			Run: func() (*Result, error) {
				order = append(order, i) // no locking: serial execution is the contract
				return nil, nil
			},
		})
	}
	var p *Pool
	if err := p.RunCells(cells); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("execution order %v not serial", order)
		}
	}
}

// TestParallelDeterminism is the harness's core correctness property under
// the worker pool: the same seed and suite produce byte-identical output at
// -j 1 and -j 8.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full harness passes")
	}
	t.Parallel()
	s := TinyScale()
	var serial, parallel bytes.Buffer
	if err := RunAll(&serial, s, NewPool(1)); err != nil {
		t.Fatal(err)
	}
	if err := RunAll(&parallel, s, NewPool(8)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		a, b := serial.String(), parallel.String()
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("output diverges at byte %d:\n-j1: %q\n-j8: %q", i, a[lo:i+80], b[lo:i+80])
			}
		}
		t.Fatalf("output lengths differ: %d vs %d", len(a), len(b))
	}
}

// TestExperimentDeterminism covers single experiments at different worker
// counts, cheap enough to run in -short mode.
func TestExperimentDeterminism(t *testing.T) {
	t.Parallel()
	exp, err := Find("fig8")
	if err != nil {
		t.Fatal(err)
	}
	s := TinyScale()
	var a, b bytes.Buffer
	if err := exp.Run(&a, s, nil); err != nil {
		t.Fatal(err)
	}
	if err := exp.Run(&b, s, NewPool(8)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("fig8 output differs between serial and -j 8:\n--- serial\n%s\n--- parallel\n%s", a.String(), b.String())
	}
}

// --- hot-path microbenchmarks ---------------------------------------------
// Track these with `go test -bench 'BenchmarkRun' -benchmem ./internal/bench`
// and compare revisions with benchstat.

func benchmarkRunEngine(b *testing.B, idx int) {
	b.Helper()
	s := TinyScale()
	e, err := newEngine(idx, s.stackConfig(s.FileSize()))
	if err != nil {
		b.Fatal(err)
	}
	mix := workload.Mixes(s.FileSize(), 4096, workload.Uniform, 0xbead)[4] // E: all fine reads
	gen, err := workload.NewSynthetic(mix)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := Run(e, gen, b.N, RunOpts{}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRunPipette measures per-request cost of the full harness loop on
// the Pipette engine (mix E: byte-granular reads).
func BenchmarkRunPipette(b *testing.B) { benchmarkRunEngine(b, 4) }

// BenchmarkRunBlockIO measures per-request cost on the conventional block
// engine.
func BenchmarkRunBlockIO(b *testing.B) { benchmarkRunEngine(b, 0) }
