package bench

import (
	"fmt"
	"io"

	"pipette/internal/baseline"
	"pipette/internal/metrics"
	"pipette/internal/workload"
)

// Two sensitivity studies beyond the paper: how Pipette's win depends on
// (a) the fine-grained read cache's arena size, and (b) the workload — the
// paper's intro also motivates search engines, so the WiSER-flavoured
// inverted-index workload runs against all five engines here.

// RunCacheSensitivity sweeps the fine-cache arena over mix E zipfian and
// reports hit ratio, traffic, and throughput per size.
func RunCacheSensitivity(s Scale) (*metrics.Table, error) {
	mix := workload.Mixes(s.FileSize(), 4096, workload.Uniform, 0x5e45)[4] // E
	t := &metrics.Table{Header: []string{
		"FGRC arena", "ops/s", "vs Block I/O", "Traffic MB", "FGRC hit %", "FGRC mem MB",
	}}

	// Block I/O reference.
	blkEng, err := baseline.NewBlockIO(s.stackConfig(s.FileSize()))
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewSynthetic(mix)
	if err != nil {
		return nil, err
	}
	blk, err := Run(blkEng, gen, s.Requests, RunOpts{})
	if err != nil {
		return nil, err
	}
	blkOps := blk.Snapshot.ThroughputOpsPerSec()
	t.AddRow("(Block I/O)",
		fmt.Sprintf("%.0f", blkOps), "1.00x",
		fmt.Sprintf("%.1f", blk.Snapshot.IO.TrafficMB()), "-", "-")

	for _, frac := range []int{32, 8, 2, 1} {
		cfg := s.stackConfig(s.FileSize())
		cfg.Core.HMB.DataBytes = s.FGRCDataBytes / frac
		cfg.Core.OverflowMaxBytes = cfg.Core.HMB.DataBytes
		// Keep at least 8 slabs in the smallest arenas.
		if cfg.Core.SlabSize > cfg.Core.HMB.DataBytes/8 {
			cfg.Core.SlabSize = cfg.Core.HMB.DataBytes / 8
		}
		eng, err := baseline.NewPipette(cfg)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewSynthetic(mix)
		if err != nil {
			return nil, err
		}
		res, err := Run(eng, gen, s.Requests, RunOpts{})
		if err != nil {
			return nil, fmt.Errorf("bench: sensitivity 1/%d: %w", frac, err)
		}
		snap := res.Snapshot
		t.AddRow(
			fmt.Sprintf("1/%d (%.1f MB)", frac, float64(s.FGRCDataBytes/frac)/(1<<20)),
			fmt.Sprintf("%.0f", snap.ThroughputOpsPerSec()),
			fmt.Sprintf("%.2fx", snap.ThroughputOpsPerSec()/blkOps),
			fmt.Sprintf("%.1f", snap.IO.TrafficMB()),
			fmt.Sprintf("%.1f", snap.FineCache.HitRatio()*100),
			fmt.Sprintf("%.1f", snap.MemoryMB),
		)
	}
	return t, nil
}

// RunSearchEngine replays the inverted-index workload against all five
// engines.
func RunSearchEngine(s Scale) (*metrics.Table, error) {
	cfg := workload.DefaultSearchEngineConfig()
	// Vocabulary scaled so the index is a few times the page cache.
	cfg.Terms = uint64(s.PageCachePages) * 8
	probe, err := workload.NewSearchEngine(cfg)
	if err != nil {
		return nil, err
	}
	engines, err := engineSet(s.stackConfig(probe.FileSize()))
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{Header: []string{
		"Engine", "ops/s", "vs Block I/O", "Traffic MB", "Mean lat us",
	}}
	var blkOps float64
	for _, e := range engines {
		gen, err := workload.NewSearchEngine(cfg)
		if err != nil {
			return nil, err
		}
		res, err := Run(e, gen, s.AppRequests, RunOpts{VerifyEvery: s.AppRequests/64 + 1})
		if err != nil {
			return nil, fmt.Errorf("bench: search %s: %w", e.Name(), err)
		}
		snap := res.Snapshot
		ops := snap.ThroughputOpsPerSec()
		if e.Name() == "Block I/O" {
			blkOps = ops
		}
		t.AddRow(e.Name(),
			fmt.Sprintf("%.0f", ops),
			fmt.Sprintf("%.2fx", ops/blkOps),
			fmt.Sprintf("%.1f", snap.IO.TrafficMB()),
			fmt.Sprintf("%.1f", snap.MeanLat.Micros()),
		)
	}
	return t, nil
}

// RunWriteBuffer contrasts the controller write buffer on the write-heavy
// social-graph workload: buffered writes acknowledge at DMA speed instead
// of paying tPROG inline.
func RunWriteBuffer(s Scale) (*metrics.Table, error) {
	gcfg := workload.DefaultSocialGraphConfig()
	gcfg.Nodes = s.GraphNodes
	probe, err := workload.NewSocialGraph(gcfg)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{Header: []string{"Config", "ops/s", "Mean lat us", "P99 lat us"}}
	for _, bufPages := range []int{0, 1024} {
		cfg := s.stackConfig(probe.FileSize())
		cfg.SSD.WriteBufferPages = bufPages
		eng, err := baseline.NewPipette(cfg)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewSocialGraph(gcfg)
		if err != nil {
			return nil, err
		}
		res, err := Run(eng, gen, s.AppRequests, RunOpts{})
		if err != nil {
			return nil, fmt.Errorf("bench: write buffer %d: %w", bufPages, err)
		}
		label := "no write buffer"
		if bufPages > 0 {
			label = fmt.Sprintf("write buffer %d pages", bufPages)
		}
		t.AddRow(label,
			fmt.Sprintf("%.0f", res.Snapshot.ThroughputOpsPerSec()),
			fmt.Sprintf("%.1f", res.Snapshot.MeanLat.Micros()),
			fmt.Sprintf("%.1f", res.Snapshot.P99Lat.Micros()),
		)
	}
	return t, nil
}

func writeSensitivity(w io.Writer, s Scale) error {
	t, err := RunCacheSensitivity(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "=== Sensitivity: fine-cache arena size, mix E uniform (scale %s) ===\n", s.Name)
	fmt.Fprint(w, t.Render())
	t2, err := RunSearchEngine(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n=== Search engine (WiSER-flavoured inverted index, scale %s) ===\n", s.Name)
	fmt.Fprint(w, t2.Render())
	t3, err := RunWriteBuffer(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n=== Controller write buffer, social-graph workload (scale %s) ===\n", s.Name)
	fmt.Fprint(w, t3.Render())
	fmt.Fprintln(w)
	return nil
}
