package bench

import (
	"fmt"
	"io"

	"pipette/internal/baseline"
	"pipette/internal/metrics"
	"pipette/internal/workload"
)

// Two sensitivity studies beyond the paper: how Pipette's win depends on
// (a) the fine-grained read cache's arena size, and (b) the workload — the
// paper's intro also motivates search engines, so the WiSER-flavoured
// inverted-index workload runs against all five engines here.

// RunCacheSensitivity sweeps the fine-cache arena over mix E zipfian and
// reports hit ratio, traffic, and throughput per size. The Block I/O
// reference and every arena size run as pool cells; rows render after the
// grid completes so the normalization column sees the reference.
func RunCacheSensitivity(s Scale, p *Pool) (*metrics.Table, error) {
	mix := workload.Mixes(s.FileSize(), 4096, workload.Uniform, 0x5e45)[4] // E
	fracs := []int{32, 8, 2, 1}
	results := make([]*Result, 1+len(fracs)) // [0] = Block I/O reference
	cells := make([]Cell, 0, len(results))

	cells = append(cells, Cell{
		Label: "sensitivity/blockio-ref",
		Run: func() (*Result, error) {
			blkEng, err := baseline.NewBlockIO(s.stackConfig(s.FileSize()))
			if err != nil {
				return nil, err
			}
			gen, err := workload.NewSynthetic(mix)
			if err != nil {
				return nil, err
			}
			res, err := Run(blkEng, gen, s.Requests, RunOpts{})
			if err != nil {
				return nil, err
			}
			results[0] = res
			return res, nil
		},
	})
	for fi, frac := range fracs {
		fi, frac := fi, frac
		cells = append(cells, Cell{
			Label: fmt.Sprintf("sensitivity/arena-1of%d", frac),
			Run: func() (*Result, error) {
				cfg := s.stackConfig(s.FileSize())
				cfg.Core.HMB.DataBytes = s.FGRCDataBytes / frac
				cfg.Core.OverflowMaxBytes = cfg.Core.HMB.DataBytes
				// Keep at least 8 slabs in the smallest arenas.
				if cfg.Core.SlabSize > cfg.Core.HMB.DataBytes/8 {
					cfg.Core.SlabSize = cfg.Core.HMB.DataBytes / 8
				}
				eng, err := baseline.NewPipette(cfg)
				if err != nil {
					return nil, err
				}
				gen, err := workload.NewSynthetic(mix)
				if err != nil {
					return nil, err
				}
				res, err := Run(eng, gen, s.Requests, RunOpts{})
				if err != nil {
					return nil, fmt.Errorf("bench: sensitivity 1/%d: %w", frac, err)
				}
				results[1+fi] = res
				return res, nil
			},
		})
	}
	if err := p.RunCells(cells); err != nil {
		return nil, err
	}

	t := &metrics.Table{Header: []string{
		"FGRC arena", "ops/s", "vs Block I/O", "Traffic MB", "FGRC hit %", "FGRC mem MB",
	}}
	blkOps := results[0].Snapshot.ThroughputOpsPerSec()
	t.AddRow("(Block I/O)",
		fmt.Sprintf("%.0f", blkOps), "1.00x",
		fmt.Sprintf("%.1f", results[0].Snapshot.IO.TrafficMB()), "-", "-")
	for fi, frac := range fracs {
		snap := results[1+fi].Snapshot
		t.AddRow(
			fmt.Sprintf("1/%d (%.1f MB)", frac, float64(s.FGRCDataBytes/frac)/(1<<20)),
			fmt.Sprintf("%.0f", snap.ThroughputOpsPerSec()),
			fmt.Sprintf("%.2fx", snap.ThroughputOpsPerSec()/blkOps),
			fmt.Sprintf("%.1f", snap.IO.TrafficMB()),
			fmt.Sprintf("%.1f", snap.FineCache.HitRatio()*100),
			fmt.Sprintf("%.1f", snap.MemoryMB),
		)
	}
	return t, nil
}

// RunSearchEngine replays the inverted-index workload against all five
// engines, one pool cell per engine.
func RunSearchEngine(s Scale, p *Pool) (*metrics.Table, error) {
	cfg := workload.DefaultSearchEngineConfig()
	// Vocabulary scaled so the index is a few times the page cache.
	cfg.Terms = uint64(s.PageCachePages) * 8
	results := make([]*Result, len(EngineNames))
	cells := make([]Cell, 0, len(EngineNames))
	for ei, name := range EngineNames {
		ei := ei
		cells = append(cells, Cell{
			Label: "search/" + name,
			Run: func() (*Result, error) {
				gen, err := workload.NewSearchEngine(cfg)
				if err != nil {
					return nil, err
				}
				e, err := newEngine(ei, s.stackConfig(gen.FileSize()))
				if err != nil {
					return nil, err
				}
				res, err := Run(e, gen, s.AppRequests, RunOpts{VerifyEvery: s.AppRequests/64 + 1})
				if err != nil {
					return nil, fmt.Errorf("bench: search %s: %w", e.Name(), err)
				}
				results[ei] = res
				return res, nil
			},
		})
	}
	if err := p.RunCells(cells); err != nil {
		return nil, err
	}
	t := &metrics.Table{Header: []string{
		"Engine", "ops/s", "vs Block I/O", "Traffic MB", "Mean lat us",
	}}
	blkOps := results[0].Snapshot.ThroughputOpsPerSec()
	for ei, name := range EngineNames {
		snap := results[ei].Snapshot
		ops := snap.ThroughputOpsPerSec()
		t.AddRow(name,
			fmt.Sprintf("%.0f", ops),
			fmt.Sprintf("%.2fx", ops/blkOps),
			fmt.Sprintf("%.1f", snap.IO.TrafficMB()),
			fmt.Sprintf("%.1f", snap.MeanLat.Micros()),
		)
	}
	return t, nil
}

// RunWriteBuffer contrasts the controller write buffer on the write-heavy
// social-graph workload: buffered writes acknowledge at DMA speed instead
// of paying tPROG inline.
func RunWriteBuffer(s Scale, p *Pool) (*metrics.Table, error) {
	gcfg := workload.DefaultSocialGraphConfig()
	gcfg.Nodes = s.GraphNodes
	bufSizes := []int{0, 1024}
	results := make([]*Result, len(bufSizes))
	cells := make([]Cell, 0, len(bufSizes))
	for bi, bufPages := range bufSizes {
		bi, bufPages := bi, bufPages
		cells = append(cells, Cell{
			Label: fmt.Sprintf("writebuffer/%dpages", bufPages),
			Run: func() (*Result, error) {
				gen, err := workload.NewSocialGraph(gcfg)
				if err != nil {
					return nil, err
				}
				cfg := s.stackConfig(gen.FileSize())
				cfg.SSD.WriteBufferPages = bufPages
				eng, err := baseline.NewPipette(cfg)
				if err != nil {
					return nil, err
				}
				res, err := Run(eng, gen, s.AppRequests, RunOpts{})
				if err != nil {
					return nil, fmt.Errorf("bench: write buffer %d: %w", bufPages, err)
				}
				results[bi] = res
				return res, nil
			},
		})
	}
	if err := p.RunCells(cells); err != nil {
		return nil, err
	}
	t := &metrics.Table{Header: []string{"Config", "ops/s", "Mean lat us", "P99 lat us"}}
	for bi, bufPages := range bufSizes {
		label := "no write buffer"
		if bufPages > 0 {
			label = fmt.Sprintf("write buffer %d pages", bufPages)
		}
		t.AddRow(label,
			fmt.Sprintf("%.0f", results[bi].Snapshot.ThroughputOpsPerSec()),
			fmt.Sprintf("%.1f", results[bi].Snapshot.MeanLat.Micros()),
			fmt.Sprintf("%.1f", results[bi].Snapshot.P99Lat.Micros()),
		)
	}
	return t, nil
}

func writeSensitivity(w io.Writer, s Scale, p *Pool) error {
	t, err := RunCacheSensitivity(s, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "=== Sensitivity: fine-cache arena size, mix E uniform (scale %s) ===\n", s.Name)
	fmt.Fprint(w, t.Render())
	t2, err := RunSearchEngine(s, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n=== Search engine (WiSER-flavoured inverted index, scale %s) ===\n", s.Name)
	fmt.Fprint(w, t2.Render())
	t3, err := RunWriteBuffer(s, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n=== Controller write buffer, social-graph workload (scale %s) ===\n", s.Name)
	fmt.Fprint(w, t3.Render())
	fmt.Fprintln(w)
	return nil
}
