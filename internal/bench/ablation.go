package bench

import (
	"fmt"
	"io"

	"pipette/internal/baseline"
	"pipette/internal/metrics"
	"pipette/internal/workload"
)

// AblationVariant is one Pipette configuration under study.
type AblationVariant struct {
	Name   string
	Mutate func(*baseline.StackConfig)
}

// AblationVariants covers the design choices DESIGN.md calls out: the
// adaptive admission threshold (§3.2.2), the maintenance reassignment
// (§3.2.3), the dispatcher routing threshold, and the slab class geometry.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "default", Mutate: func(*baseline.StackConfig) {}},
		{Name: "fixed-threshold-1", Mutate: func(c *baseline.StackConfig) {
			c.Core.InitialThreshold = 1
			c.Core.MinThreshold = 1
			c.Core.MaxThreshold = 1
		}},
		{Name: "fixed-threshold-4", Mutate: func(c *baseline.StackConfig) {
			c.Core.InitialThreshold = 4
			c.Core.MinThreshold = 4
			c.Core.MaxThreshold = 4
		}},
		{Name: "no-reassignment", Mutate: func(c *baseline.StackConfig) {
			c.Core.MaintenanceEvery = 1 << 62
		}},
		{Name: "dispatch-64B", Mutate: func(c *baseline.StackConfig) {
			// 128 B reads now take the block path: shows the dispatcher's
			// routing is what keeps Pipette from degenerating to block I/O.
			c.Core.FineMaxBytes = 64
		}},
		{Name: "dispatch-4096B", Mutate: func(c *baseline.StackConfig) {
			c.Core.FineMaxBytes = 4096
		}},
		{Name: "coarse-slabs", Mutate: func(c *baseline.StackConfig) {
			c.Core.ItemSizes = []int{512, 4096}
		}},
		{Name: "no-migration", Mutate: func(c *baseline.StackConfig) {
			c.Core.OverflowMaxBytes = 0
		}},
	}
}

// RunAblation replays the mixed small/large zipfian workload (mix D, the
// most policy-sensitive one) against each Pipette variant, one pool cell
// per variant.
func RunAblation(s Scale, p *Pool) (*metrics.Table, error) {
	mix := workload.Mixes(s.FileSize(), 4096, workload.Zipfian, 0xab1a)[3] // D
	variants := AblationVariants()
	type ablOut struct {
		res    *Result
		finalT uint32
	}
	outs := make([]ablOut, len(variants))
	cells := make([]Cell, 0, len(variants))
	for vi, v := range variants {
		vi, v := vi, v
		cells = append(cells, Cell{
			Label: "ablation/" + v.Name,
			Run: func() (*Result, error) {
				cfg := s.stackConfig(s.FileSize())
				v.Mutate(&cfg)
				eng, err := baseline.NewPipette(cfg)
				if err != nil {
					return nil, fmt.Errorf("bench: ablation %s: %w", v.Name, err)
				}
				gen, err := workload.NewSynthetic(mix)
				if err != nil {
					return nil, err
				}
				res, err := Run(eng, gen, s.Requests, RunOpts{})
				if err != nil {
					return nil, fmt.Errorf("bench: ablation %s: %w", v.Name, err)
				}
				outs[vi] = ablOut{res: res, finalT: eng.Core().Threshold()}
				return res, nil
			},
		})
	}
	if err := p.RunCells(cells); err != nil {
		return nil, err
	}
	t := &metrics.Table{Header: []string{
		"Variant", "ops/s", "Traffic MB", "FGRC hit %", "Mean lat us", "Final T",
	}}
	for vi, v := range variants {
		snap := outs[vi].res.Snapshot
		t.AddRow(v.Name,
			fmt.Sprintf("%.0f", snap.ThroughputOpsPerSec()),
			fmt.Sprintf("%.1f", snap.IO.TrafficMB()),
			fmt.Sprintf("%.1f", snap.FineCache.HitRatio()*100),
			fmt.Sprintf("%.1f", snap.MeanLat.Micros()),
			fmt.Sprintf("%d", outs[vi].finalT),
		)
	}
	return t, nil
}

func writeAblation(w io.Writer, s Scale, p *Pool) error {
	t, err := RunAblation(s, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "=== Ablation: Pipette design choices on mix D zipfian (scale %s) ===\n", s.Name)
	fmt.Fprint(w, t.Render())
	fmt.Fprintln(w)
	return nil
}
