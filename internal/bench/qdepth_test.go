package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pipette/internal/fault"
	"pipette/internal/report"
	"pipette/internal/telemetry"
	"pipette/internal/workload"
)

// TestOpenLoopConservationAndQueueStage checks the open-loop runner's
// accounting: the stage attribution still conserves exactly (stage sum ==
// summed arrival-to-completion latencies), admission delay lands in the
// queue stage, and the snapshot covers every request.
func TestOpenLoopConservationAndQueueStage(t *testing.T) {
	s := TinyScale()
	e, err := newEngine(4, qdepthConfig(s)) // Pipette, contention on
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewSynthetic(workload.Mixes(s.FileSize(), 4096, workload.Uniform, 0xbead)[4])
	if err != nil {
		t.Fatal(err)
	}
	arr, err := workload.NewPoisson(2_000_000, 0xa221) // far past saturation
	if err != nil {
		t.Fatal(err)
	}
	const requests = 800
	res, err := RunOpenLoop(e, gen, requests, OpenLoopOpts{Arrivals: arr, Depth: 4, Offered: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages.Sum() != res.Stages.Elapsed {
		t.Fatalf("stage sum %v != elapsed %v: conservation broken", res.Stages.Sum(), res.Stages.Elapsed)
	}
	if res.Stages.Totals[telemetry.StageQueue] == 0 {
		t.Fatal("overloaded open loop attributed no time to the queue stage")
	}
	if res.Snapshot.Ops != requests {
		t.Fatalf("snapshot covers %d ops, want %d", res.Snapshot.Ops, requests)
	}
	if res.Hist.Count() != requests {
		t.Fatalf("latency histogram has %d samples, want %d", res.Hist.Count(), requests)
	}
	if res.Arrivals != "poisson" || res.Depth != 4 || res.Offered != 2_000_000 {
		t.Fatalf("open-loop metadata wrong: %+v", res)
	}
}

// TestOpenLoopCurveMonotoneWithKnee sweeps one configuration across
// ascending offered rates and requires the textbook open-system shape:
// achieved throughput and mean latency both non-decreasing in offered
// load, sub-saturation rates achieving what they offer, and a visible
// saturation knee before the sweep ends.
func TestOpenLoopCurveMonotoneWithKnee(t *testing.T) {
	s := TinyScale()
	rates := []float64{20_000, 80_000, 320_000, 1_280_000, 5_120_000}
	var achieved, meanUs []float64
	for _, rate := range rates {
		e, err := newEngine(4, qdepthConfig(s)) // Pipette
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workload.NewSynthetic(workload.Mixes(s.FileSize(), 4096, workload.Uniform, 0xbead)[4])
		if err != nil {
			t.Fatal(err)
		}
		arr, err := workload.NewPoisson(rate, 0xa221)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunOpenLoop(e, gen, 1_500, OpenLoopOpts{Arrivals: arr, Depth: 16, Offered: rate})
		if err != nil {
			t.Fatal(err)
		}
		achieved = append(achieved, res.Snapshot.ThroughputOpsPerSec())
		meanUs = append(meanUs, res.Hist.Mean().Micros())
	}
	const slack = 0.02 // identical-seed noise across different rates
	for i := 1; i < len(rates); i++ {
		if achieved[i] < achieved[i-1]*(1-slack) {
			t.Errorf("throughput not monotone: %.0f op/s at rate %.0f after %.0f at rate %.0f",
				achieved[i], rates[i], achieved[i-1], rates[i-1])
		}
		if meanUs[i] < meanUs[i-1]*(1-slack) {
			t.Errorf("latency not monotone: %.2fµs at rate %.0f after %.2fµs at rate %.0f",
				meanUs[i], rates[i], meanUs[i-1], rates[i-1])
		}
	}
	if achieved[0] < qdepthKneeFrac*rates[0] {
		t.Errorf("lowest rate already saturated: achieved %.0f of offered %.0f", achieved[0], rates[0])
	}
	last := len(rates) - 1
	if achieved[last] >= qdepthKneeFrac*rates[last] {
		t.Errorf("no saturation knee in sweep: achieved %.0f of offered %.0f", achieved[last], rates[last])
	}
}

// TestQDepthDeterministicAcrossWorkers runs the qdepth experiment at -j 1
// and -j 8 — plain and with a fault profile armed — and requires the
// stdout tables, the export bundle, and the rendered report HTML to be
// byte-identical: the open-loop event engine must not leak scheduling
// order anywhere.
func TestQDepthDeterministicAcrossWorkers(t *testing.T) {
	faultProf, err := fault.ParseProfile("nand.read:rber*20")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		prof fault.Profile
	}{
		{"plain", fault.Profile{}},
		{"faults-armed", faultProf},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := TinyScale()
			s.QDepths = []int{1, 8}
			s.QDepthRates = []float64{100_000, 1_600_000}
			s.QDepthRequests = 600
			s.Fault = tc.prof
			dir := t.TempDir()
			outs := make([]bytes.Buffer, 2)
			exports := make([][]byte, 2)
			htmls := make([][]byte, 2)
			for i, workers := range []int{1, 8} {
				path := filepath.Join(dir, "qdepth.json")
				err := WriteQDepth(&outs[i], s, TelemetryOpts{ExportOut: path}, NewPool(workers))
				if err != nil {
					t.Fatalf("-j %d: %v", workers, err)
				}
				if exports[i], err = os.ReadFile(path); err != nil {
					t.Fatal(err)
				}
				exp, err := report.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				var h bytes.Buffer
				if err := report.WriteHTML(&h, "qdepth", []*report.Export{exp}); err != nil {
					t.Fatal(err)
				}
				htmls[i] = h.Bytes()
			}
			if !bytes.Equal(outs[0].Bytes(), outs[1].Bytes()) {
				t.Error("qdepth stdout differs between -j 1 and -j 8")
			}
			if !bytes.Equal(exports[0], exports[1]) {
				t.Error("export bundle differs between -j 1 and -j 8")
			}
			if !bytes.Equal(htmls[0], htmls[1]) {
				t.Error("rendered HTML differs between -j 1 and -j 8")
			}
			if !strings.Contains(outs[0].String(), "saturation knees") {
				t.Error("qdepth output misses the knee summary")
			}
			if !strings.Contains(string(htmls[0]), "Throughput vs latency (open loop)") {
				t.Error("report HTML misses the throughput-vs-latency section")
			}
		})
	}
}
