package bench

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"

	"pipette/internal/workload"
)

// Experiment regenerates one or more of the paper's artifacts. Run renders
// into w, scheduling its simulation cells on p (nil runs serially); the
// output bytes are identical at any worker count.
type Experiment struct {
	ID        string
	Artifacts []string // paper tables/figures this run produces
	Title     string
	Run       func(w io.Writer, s Scale, p *Pool) error
}

// Experiments returns the full suite.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID:        "synthetic-uniform",
			Artifacts: []string{"fig6", "table2"},
			Title:     "Synthetic mixes A-E, uniform distribution (Figure 6 + Table 2)",
			Run: func(w io.Writer, s Scale, p *Pool) error {
				return writeSynthetic(w, s, workload.Uniform, "Figure 6", "Table 2", p)
			},
		},
		{
			ID:        "synthetic-zipfian",
			Artifacts: []string{"fig7", "table3"},
			Title:     "Synthetic mixes A-E, zipfian(0.8) distribution (Figure 7 + Table 3)",
			Run: func(w io.Writer, s Scale, p *Pool) error {
				return writeSynthetic(w, s, workload.Zipfian, "Figure 7", "Table 3", p)
			},
		},
		{
			ID:        "latency",
			Artifacts: []string{"fig8"},
			Title:     "Read latency vs request size, workload E uniform (Figure 8)",
			Run:       writeLatencySweep,
		},
		{
			ID:        "apps",
			Artifacts: []string{"fig1", "fig9a", "fig9b", "table4"},
			Title:     "Real applications: recommender + social graph (Figures 1, 9; Table 4)",
			Run:       writeApps,
		},
		{
			ID:        "phases",
			Artifacts: []string{"breakdown"},
			Title:     "Per-phase latency breakdown, VFS to NAND (observability)",
			Run: func(w io.Writer, s Scale, p *Pool) error {
				return WritePhaseBreakdown(w, s, TelemetryOpts{}, p)
			},
		},
		{
			ID:        "ablation",
			Artifacts: []string{"ablation"},
			Title:     "Pipette design-choice ablations (beyond the paper)",
			Run:       writeAblation,
		},
		{
			ID:        "sensitivity",
			Artifacts: []string{"sensitivity", "search"},
			Title:     "Cache-size sensitivity + search-engine workload (beyond the paper)",
			Run:       writeSensitivity,
		},
		{
			ID:        "kv",
			Artifacts: []string{"ycsb"},
			Title:     "Log-structured KV store: YCSB x engine x index matrix (beyond the paper)",
			Run: func(w io.Writer, s Scale, p *Pool) error {
				return WriteKV(w, s, TelemetryOpts{}, p)
			},
		},
		{
			ID:        "faults",
			Artifacts: []string{"reliability"},
			Title:     "Fault injection: RBER x workload sweep, goodput and recovery (beyond the paper)",
			Run:       writeFaults,
		},
		{
			ID:        "qdepth",
			Artifacts: []string{"saturation"},
			Title:     "Open-loop saturation: arrival rate x queue depth x engine (beyond the paper)",
			Run: func(w io.Writer, s Scale, p *Pool) error {
				return WriteQDepth(w, s, TelemetryOpts{}, p)
			},
		},
		{
			ID:        "cluster",
			Artifacts: []string{"tier"},
			Title:     "Sharded serving tier: replication x skew, per-tenant QoS, degraded mode (beyond the paper)",
			Run: func(w io.Writer, s Scale, p *Pool) error {
				return WriteCluster(w, s, TelemetryOpts{}, p)
			},
		},
	}
}

// Find resolves an experiment by its ID or by one of the paper artifacts it
// produces (e.g. "fig6" or "table2" both select synthetic-uniform).
func Find(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == name {
			return e, nil
		}
		for _, a := range e.Artifacts {
			if a == name {
				return e, nil
			}
		}
	}
	var known []string
	for _, e := range Experiments() {
		known = append(known, e.ID)
		known = append(known, e.Artifacts...)
	}
	sort.Strings(known)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (known: %v)", name, known)
}

// RunAll executes every experiment. With a nil pool the experiments run
// serially, streaming straight into w. With a pool they all render
// concurrently into private buffers — the pool's worker bound still caps
// the simulation cells actually in flight — and the buffers print in the
// canonical suite order, so the output is byte-identical to the serial run.
func RunAll(w io.Writer, s Scale, p *Pool) error {
	exps := Experiments()
	if p == nil || p.Workers() <= 1 {
		for _, e := range exps {
			fmt.Fprintf(w, "### %s\n\n", e.Title)
			if err := e.Run(w, s, p); err != nil {
				return fmt.Errorf("bench: experiment %s: %w", e.ID, err)
			}
		}
		return nil
	}

	bufs := make([]bytes.Buffer, len(exps))
	errs := make([]error, len(exps))
	var wg sync.WaitGroup
	for i, e := range exps {
		i, e := i, e
		wg.Add(1)
		go func() {
			defer wg.Done()
			fmt.Fprintf(&bufs[i], "### %s\n\n", e.Title)
			errs[i] = e.Run(&bufs[i], s, p)
		}()
	}
	wg.Wait()
	for i, e := range exps {
		if errs[i] != nil {
			return fmt.Errorf("bench: experiment %s: %w", e.ID, errs[i])
		}
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}
