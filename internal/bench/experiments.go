package bench

import (
	"fmt"
	"io"
	"sort"

	"pipette/internal/workload"
)

// Experiment regenerates one or more of the paper's artifacts.
type Experiment struct {
	ID        string
	Artifacts []string // paper tables/figures this run produces
	Title     string
	Run       func(w io.Writer, s Scale) error
}

// Experiments returns the full suite.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID:        "synthetic-uniform",
			Artifacts: []string{"fig6", "table2"},
			Title:     "Synthetic mixes A-E, uniform distribution (Figure 6 + Table 2)",
			Run: func(w io.Writer, s Scale) error {
				return writeSynthetic(w, s, workload.Uniform, "Figure 6", "Table 2")
			},
		},
		{
			ID:        "synthetic-zipfian",
			Artifacts: []string{"fig7", "table3"},
			Title:     "Synthetic mixes A-E, zipfian(0.8) distribution (Figure 7 + Table 3)",
			Run: func(w io.Writer, s Scale) error {
				return writeSynthetic(w, s, workload.Zipfian, "Figure 7", "Table 3")
			},
		},
		{
			ID:        "latency",
			Artifacts: []string{"fig8"},
			Title:     "Read latency vs request size, workload E uniform (Figure 8)",
			Run:       writeLatencySweep,
		},
		{
			ID:        "apps",
			Artifacts: []string{"fig1", "fig9a", "fig9b", "table4"},
			Title:     "Real applications: recommender + social graph (Figures 1, 9; Table 4)",
			Run:       writeApps,
		},
		{
			ID:        "phases",
			Artifacts: []string{"breakdown"},
			Title:     "Per-phase latency breakdown, VFS to NAND (observability)",
			Run: func(w io.Writer, s Scale) error {
				return WritePhaseBreakdown(w, s, TelemetryOpts{})
			},
		},
		{
			ID:        "ablation",
			Artifacts: []string{"ablation"},
			Title:     "Pipette design-choice ablations (beyond the paper)",
			Run:       writeAblation,
		},
		{
			ID:        "sensitivity",
			Artifacts: []string{"sensitivity", "search"},
			Title:     "Cache-size sensitivity + search-engine workload (beyond the paper)",
			Run:       writeSensitivity,
		},
	}
}

// Find resolves an experiment by its ID or by one of the paper artifacts it
// produces (e.g. "fig6" or "table2" both select synthetic-uniform).
func Find(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == name {
			return e, nil
		}
		for _, a := range e.Artifacts {
			if a == name {
				return e, nil
			}
		}
	}
	var known []string
	for _, e := range Experiments() {
		known = append(known, e.ID)
		known = append(known, e.Artifacts...)
	}
	sort.Strings(known)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (known: %v)", name, known)
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, s Scale) error {
	for _, e := range Experiments() {
		fmt.Fprintf(w, "### %s\n\n", e.Title)
		if err := e.Run(w, s); err != nil {
			return fmt.Errorf("bench: experiment %s: %w", e.ID, err)
		}
	}
	return nil
}
