package bench

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// Pool is the harness's worker-pool execution layer. Every experiment
// enumerates its (engine, workload) grid as independent Cells — each cell
// builds a fully private simulated system, so cells never share mutable
// state — and the pool replays them on a bounded number of goroutines.
// Results land in caller-provided slots addressed by cell index, so the
// rendered tables are byte-identical to a serial run at any worker count.
//
// A nil *Pool is valid and runs cells serially, in order, without perf
// accounting; it is what library callers that never asked for parallelism
// (tests, the public API) pass.
type Pool struct {
	workers int
	live    *Live // nil unless -listen attached a registry

	mu   sync.Mutex
	perf []CellPerf
}

// NewPool creates a pool with the given worker count. workers <= 0 selects
// GOMAXPROCS, the -j default.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the concurrency bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// SetLive attaches the live metrics bridge: finished cells fold their
// counters into it and /progress reflects per-cell completion. A nil
// pool or nil bridge keeps the zero-overhead default.
func (p *Pool) SetLive(l *Live) {
	if p != nil {
		p.live = l
	}
}

// Live reports the attached metrics bridge (nil when not listening).
func (p *Pool) Live() *Live {
	if p == nil {
		return nil
	}
	return p.live
}

// Cell is one independently runnable unit of an experiment: typically one
// (engine, workload) pair over a private simulated system. Run returns the
// cell's measurement for perf accounting; cells that do not produce a
// single Result (e.g. the phase breakdown) may return nil.
type Cell struct {
	Label string
	Run   func() (*Result, error)
}

// CellPerf is one executed cell's wall-clock cost and simulated
// measurements — the raw material of pipette-bench's -json perf summary
// and of the regression gate's baseline cells. Wall seconds are host time
// and vary run to run; every sim field is deterministic, so the gate can
// compare them exactly across commits.
type CellPerf struct {
	Label        string  `json:"label"`
	WallSeconds  float64 `json:"wall_seconds"`
	Ops          uint64  `json:"ops,omitempty"`
	SimOpsPerSec float64 `json:"sim_ops_per_sec,omitempty"`
	ReadAmp      float64 `json:"read_amp,omitempty"`
	MeanUs       float64 `json:"mean_us,omitempty"`
	P99Us        float64 `json:"p99_us,omitempty"`
}

// RunCells executes the cells, at most Workers() at a time, and returns the
// first error in cell order. It always drains every started cell before
// returning, so callers may reuse the slots the cells wrote.
func (p *Pool) RunCells(cells []Cell) error {
	if p == nil || p.workers <= 1 {
		for i := range cells {
			if err := p.runCell(cells[i]); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(cells))
	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	for i := range cells {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = p.runCell(cells[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (p *Pool) runCell(c Cell) error {
	defer flightPanic(c.Label)
	if p == nil {
		_, err := c.Run()
		return err
	}
	p.live.cellStarted(c.Label)
	start := time.Now()
	res, err := c.Run()
	pf := CellPerf{Label: c.Label, WallSeconds: time.Since(start).Seconds()}
	if res != nil {
		pf.Ops = res.Snapshot.Ops
		pf.SimOpsPerSec = res.Snapshot.ThroughputOpsPerSec()
		pf.ReadAmp = res.Snapshot.IO.ReadAmplification()
		pf.MeanUs = res.Snapshot.MeanLat.Micros()
		pf.P99Us = res.Snapshot.P99Lat.Micros()
		p.live.AddSnapshot(&res.Snapshot)
		p.live.AddResources(res.Resources)
	}
	p.live.cellFinished(c.Label, pf, err != nil)
	p.mu.Lock()
	p.perf = append(p.perf, pf)
	p.mu.Unlock()
	return err
}

// Perf returns the executed cells' perf records, sorted by label so the
// order is stable regardless of scheduling.
func (p *Pool) Perf() []CellPerf {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]CellPerf, len(p.perf))
	copy(out, p.perf)
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}
