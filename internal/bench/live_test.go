package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"pipette/internal/telemetry"
)

// TestLiveScrapeDeterminism is the acceptance property of the live
// metrics bridge: an experiment run at -j > 1 with a scraper hammering
// the registry the whole time renders byte-identical output to a plain
// run. The scraper only reads atomics and lock-guarded progress state, so
// the cells' simulations cannot observe it.
func TestLiveScrapeDeterminism(t *testing.T) {
	t.Parallel()
	exp, err := Find("kv")
	if err != nil {
		t.Fatal(err)
	}
	s := TinyScale()

	var plain bytes.Buffer
	if err := exp.Run(&plain, s, NewPool(2)); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	live := NewLive(reg)
	pool := NewPool(4)
	pool.SetLive(live)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if err := reg.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				if _, err := json.Marshal(live.Progress()); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	var scraped bytes.Buffer
	runErr := exp.Run(&scraped, s, pool)
	close(stop)
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}

	if !bytes.Equal(plain.Bytes(), scraped.Bytes()) {
		t.Fatalf("output differs under scrape:\n--- plain\n%s\n--- scraped\n%s", plain.String(), scraped.String())
	}

	// After the run the registry must expose non-zero ssd, cache, and kv
	// families (the fault family stays zero without an armed profile).
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	exposition := out.String()
	for _, family := range []string{"ssd_reads_total", "cache_accesses_total", "kv_ops_total", "bench_cells_done_total", "bench_resource_busy_ns_total"} {
		nonZero := false
		for _, line := range strings.Split(exposition, "\n") {
			if strings.HasPrefix(line, family) && !strings.HasSuffix(line, " 0") {
				nonZero = true
				break
			}
		}
		if !nonZero {
			t.Errorf("family %s has no non-zero series after the kv run:\n%s", family, exposition)
		}
	}
}

// TestLiveFaultFamily: the faults experiment must light up the fault
// family's injection and recovery counters.
func TestLiveFaultFamily(t *testing.T) {
	t.Parallel()
	reg := telemetry.NewRegistry()
	live := NewLive(reg)
	pool := NewPool(4)
	pool.SetLive(live)
	var buf bytes.Buffer
	if err := writeFaults(&buf, TinyScale(), pool); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fault_injected_total ") ||
		strings.Contains(out.String(), "fault_injected_total 0\n") {
		t.Errorf("fault_injected_total not populated after faults run:\n%s", out.String())
	}
}

// TestLiveProgress pins the /progress document shape.
func TestLiveProgress(t *testing.T) {
	live := NewLive(telemetry.NewRegistry())
	live.cellStarted("b")
	live.cellStarted("a")
	live.cellFinished("a", CellPerf{Label: "a", WallSeconds: 0.5, Ops: 10}, false)
	raw, err := json.Marshal(live.Progress())
	if err != nil {
		t.Fatal(err)
	}
	var p struct {
		CellsTotal int `json:"cells_total"`
		CellsDone  int `json:"cells_done"`
		Cells      []struct {
			Label string `json:"label"`
			State string `json:"state"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(raw, &p); err != nil {
		t.Fatal(err)
	}
	if p.CellsTotal != 2 || p.CellsDone != 1 {
		t.Fatalf("progress counts wrong: %+v", p)
	}
	if len(p.Cells) != 2 || p.Cells[0].Label != "a" || p.Cells[0].State != "done" || p.Cells[1].State != "running" {
		t.Fatalf("cell list wrong: %+v", p)
	}
}
