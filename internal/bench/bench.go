// Package bench is the experiment harness: it reconstructs every table and
// figure of the paper's evaluation (§4) — Figures 1, 6, 7, 8, 9 and Tables
// 2, 3, 4 — plus ablation sweeps over Pipette's design choices. Each
// experiment builds fresh per-engine systems, replays the paper's workload,
// and prints a paper-style table.
//
// Absolute numbers depend on the latency model (see EXPERIMENTS.md for the
// calibration discussion); the harness is judged on shape: who wins, by
// roughly what factor, where the crossovers fall.
package bench

import (
	"bytes"
	"errors"
	"fmt"

	"pipette/internal/baseline"
	"pipette/internal/fault"
	"pipette/internal/metrics"
	"pipette/internal/nvme"
	"pipette/internal/report"
	"pipette/internal/resource"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
	"pipette/internal/workload"
)

// Scale sets the experiment size. Paper scale is 2.5 M requests over a
// ~2.9 GiB file (the file size Table 2's block-I/O traffic implies); the
// quick scale preserves every ratio (requests per page, cache fractions) at
// 1/24 the size so shapes are unchanged.
type Scale struct {
	Name     string
	Requests int

	FilePages      uint64 // synthetic file size in 4 KiB pages
	PageCachePages int    // host page-cache budget
	FGRCDataBytes  int    // fine-grained read cache arena

	RecTableBytes int64  // recommender embedding store
	GraphNodes    uint64 // social-graph size
	AppRequests   int    // requests for the real-app experiments

	// Figure 8 sweep: LatencyFilePages is a hot region small enough that
	// the fine cache holds every range at every request size, while
	// LatencyPCPages keeps the page cache an order of magnitude smaller —
	// the memory regime where the paper's steady-state latencies (~2 us
	// Pipette vs ~67 us block) are reproducible.
	LatencySizes     []int
	LatencyFilePages uint64
	LatencyPCPages   int
	LatencyRequests  int
	LatencyWarmup    int

	// KV experiment: records preloaded into the log-structured store and
	// operations replayed per YCSB workload.
	KVRecords  uint64
	KVRequests int

	// qdepth experiment: the open-loop saturation sweep. QDepths are the
	// admission queue-depth bounds (max in-flight requests), QDepthRates
	// the offered Poisson arrival rates in ops/s (ascending, so the knee
	// search walks the curve left to right), QDepthRequests the requests
	// per cell.
	QDepths        []int
	QDepthRates    []float64
	QDepthRequests int

	// cluster experiment: the sharded serving tier. ClusterShards members,
	// each a private SSD stack sized for ClusterShardBytes of live records;
	// ClusterReplicas are the replication factors swept, ClusterSkews the
	// hot tenant's Zipf thetas (0 = uniform), ClusterTenants the tenant
	// count, ClusterRecords the records preloaded per tenant,
	// ClusterRequests the replay length per cell, ClusterRate the offered
	// Poisson arrival rate in ops/s, ClusterDepth/ClusterQueue the
	// per-shard in-flight and FIFO bounds, and ClusterTenantRate the
	// per-tenant token-bucket rate (ops/s).
	ClusterShards     int
	ClusterReplicas   []int
	ClusterSkews      []float64
	ClusterTenants    int
	ClusterRecords    uint64
	ClusterRequests   int
	ClusterRate       float64
	ClusterDepth      int
	ClusterQueue      int
	ClusterTenantRate float64
	ClusterShardBytes int64

	// Fault injection: Fault is empty by default (the Nop injector, zero
	// overhead, byte-identical output); the faults experiment overrides it
	// per sweep level. FaultSeed drives the deterministic decision streams.
	Fault     fault.Profile
	FaultSeed uint64
}

// FullScale mirrors the paper.
func FullScale() Scale {
	return Scale{
		Name:              "full",
		Requests:          2_500_000,
		FilePages:         761_242,
		PageCachePages:    256 << 10, // 1 GiB
		FGRCDataBytes:     256 << 20,
		RecTableBytes:     4 << 30,
		GraphNodes:        24 << 20,
		AppRequests:       2_500_000,
		LatencySizes:      []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096},
		LatencyFilePages:  12 << 10,
		LatencyPCPages:    1 << 10,
		LatencyRequests:   100_000,
		LatencyWarmup:     200_000,
		KVRecords:         1_000_000,
		KVRequests:        1_000_000,
		QDepths:           []int{1, 8, 64, 256},
		QDepthRates:       []float64{25_000, 100_000, 400_000, 1_600_000, 6_400_000},
		QDepthRequests:    200_000,
		ClusterShards:     16,
		ClusterReplicas:   []int{1, 2, 3},
		ClusterSkews:      []float64{0, 0.99},
		ClusterTenants:    8,
		ClusterRecords:    65_536,
		ClusterRequests:   200_000,
		ClusterRate:       150_000,
		ClusterDepth:      32,
		ClusterQueue:      128,
		ClusterTenantRate: 40_000,
		ClusterShardBytes: 32 << 20,
		FaultSeed:         0x5eed,
	}
}

// QuickScale is the default: ~1/24 of the paper with ratios preserved.
func QuickScale() Scale {
	return Scale{
		Name:              "quick",
		Requests:          104_000,
		FilePages:         31_718,
		PageCachePages:    10 << 10, // 40 MiB
		FGRCDataBytes:     12 << 20,
		RecTableBytes:     768 << 20,
		GraphNodes:        2 << 20,
		AppRequests:       180_000,
		LatencySizes:      []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096},
		LatencyFilePages:  768,
		LatencyPCPages:    96,
		LatencyRequests:   5_000,
		LatencyWarmup:     10_000,
		KVRecords:         60_000,
		KVRequests:        60_000,
		QDepths:           []int{1, 8, 64},
		QDepthRates:       []float64{25_000, 100_000, 400_000, 1_600_000, 6_400_000},
		QDepthRequests:    20_000,
		ClusterShards:     8,
		ClusterReplicas:   []int{1, 2, 3},
		ClusterSkews:      []float64{0, 0.99},
		ClusterTenants:    4,
		ClusterRecords:    8_192,
		ClusterRequests:   20_000,
		ClusterRate:       60_000,
		ClusterDepth:      16,
		ClusterQueue:      64,
		ClusterTenantRate: 20_000,
		ClusterShardBytes: 8 << 20,
		FaultSeed:         0x5eed,
	}
}

// TinyScale is for tests of the harness itself.
func TinyScale() Scale {
	return Scale{
		Name:              "tiny",
		Requests:          6_000,
		FilePages:         1_830,
		PageCachePages:    600,
		FGRCDataBytes:     1 << 20,
		RecTableBytes:     48 << 20,
		GraphNodes:        160 << 10,
		AppRequests:       12_000,
		LatencySizes:      []int{8, 128, 1024, 4096},
		LatencyFilePages:  48,
		LatencyPCPages:    8,
		LatencyRequests:   400,
		LatencyWarmup:     1_200,
		KVRecords:         4_000,
		KVRequests:        3_000,
		QDepths:           []int{1, 16},
		QDepthRates:       []float64{50_000, 400_000, 3_200_000, 12_800_000},
		QDepthRequests:    2_500,
		ClusterShards:     4,
		ClusterReplicas:   []int{1, 2},
		ClusterSkews:      []float64{0, 0.99},
		ClusterTenants:    2,
		ClusterRecords:    2_048,
		ClusterRequests:   1_500,
		ClusterRate:       30_000,
		ClusterDepth:      8,
		ClusterQueue:      16,
		ClusterTenantRate: 6_000,
		ClusterShardBytes: 4 << 20,
		FaultSeed:         0x5eed,
	}
}

// FileSize reports the synthetic file size in bytes.
func (s Scale) FileSize() int64 { return int64(s.FilePages) * 4096 }

// stackConfig builds the per-engine system configuration for this scale.
func (s Scale) stackConfig(fileSize int64) baseline.StackConfig {
	cfg := baseline.DefaultStackConfig(fileSize)
	cfg.VFS.PageCachePages = s.PageCachePages
	cfg.Core.HMB.DataBytes = s.FGRCDataBytes
	cfg.Core.OverflowMaxBytes = s.FGRCDataBytes
	cfg.Core.PageCacheFloorPages = s.PageCachePages / 8
	cfg.FaultProfile = s.Fault
	cfg.FaultSeed = s.FaultSeed
	return cfg
}

// newEngine builds the idx'th engine of EngineNames over a private system.
// Cells construct their engine themselves so expensive setup (NAND preload)
// parallelizes with everything else.
func newEngine(idx int, cfg baseline.StackConfig) (baseline.Engine, error) {
	var (
		e   baseline.Engine
		err error
	)
	switch idx {
	case 0:
		if e, err = baseline.NewBlockIO(cfg); err != nil {
			return nil, fmt.Errorf("bench: block i/o: %w", err)
		}
	case 1:
		e, err = baseline.NewTwoBSSD(cfg, baseline.MMIO)
	case 2:
		e, err = baseline.NewTwoBSSD(cfg, baseline.DMA)
	case 3:
		e, err = baseline.NewPipetteNoCache(cfg)
	case 4:
		e, err = baseline.NewPipette(cfg)
	default:
		return nil, fmt.Errorf("bench: no engine %d", idx)
	}
	if err != nil {
		return nil, err
	}
	if fr := armedFlight(); fr != nil {
		e.SetTracer(fr)
	}
	return e, nil
}

// engineSet builds the paper's five engines over identical private systems.
func engineSet(cfg baseline.StackConfig) ([]baseline.Engine, error) {
	engines := make([]baseline.Engine, len(EngineNames))
	for i := range engines {
		e, err := newEngine(i, cfg)
		if err != nil {
			return nil, err
		}
		engines[i] = e
	}
	return engines, nil
}

// RunOpts tunes one replay.
type RunOpts struct {
	Warmup      int // requests replayed before measurement starts
	VerifyEvery int // verify read contents every N reads (0 = off)
	// Sampler, when set, is ticked with the virtual completion time after
	// every measured request, producing the time-series CSV.
	Sampler *telemetry.Sampler
	// TolerateMediaErrors counts uncorrectable media errors as lost
	// requests and keeps replaying instead of failing the run — the right
	// semantics when a fault profile is armed. Off, any error is fatal.
	TolerateMediaErrors bool
}

// Result is one engine × workload measurement.
type Result struct {
	Snapshot metrics.Snapshot
	Hist     metrics.Histogram

	// Stages is the engine's per-request time attribution over the whole
	// replay (warmup included — the account spans every request the stack
	// served, which is what its conservation invariant covers).
	Stages telemetry.StageSnapshot
	// Resources is the engine's per-resource occupancy (NAND channels and
	// dies, PCIe DMA link, NVMe ring) over the replay.
	Resources *resource.Snapshot

	// Open-loop replay metadata, zero/empty for closed-loop runs: the
	// offered arrival rate (ops/s), the admission queue-depth bound, and
	// the arrival process name.
	Offered  float64
	Depth    int
	Arrivals string

	// Lost counts requests that failed with uncorrectable media errors
	// under TolerateMediaErrors; the snapshot's Ops is goodput (requests
	// minus Lost), and lost requests do not enter the latency histogram.
	Lost uint64
	// Rejected counts open-loop arrivals bounced off a full admission FIFO
	// (OpenLoopOpts.MaxQueue). Rejected requests never dispatch: they are
	// excluded from goodput and from the latency histogram.
	Rejected uint64

	// Tail is the cell's slow-request capture (top-K exemplars plus the
	// blame composition over the slowest ~1%); Heat is its completion-time
	// × latency heatmap. Both cover only the measured phase and are nil
	// for replays that collect no telemetry.
	Tail *telemetry.TailSnapshot
	Heat *telemetry.HeatSnapshot
}

// tailTopK is how many slowest-request exemplars each cell captures;
// tailKeep sizes the kept set the tail-blame composition aggregates over
// (~the slowest 1%, never fewer than the exemplars).
const tailTopK = 5

func tailKeep(requests int) int {
	if k := requests / 100; k > tailTopK {
		return k
	}
	return tailTopK
}

// Run replays requests from gen against e and measures the paper's
// metrics. Write requests carry a deterministic payload.
func Run(e baseline.Engine, gen workload.Generator, requests int, opts RunOpts) (*Result, error) {
	var now sim.Time
	buf := make([]byte, 4096)
	want := make([]byte, 4096) // oracle scratch, grown with buf
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i*7 + 13)
	}
	grow := func(n int) {
		for n > len(buf) {
			buf = make([]byte, 2*len(buf))
			want = make([]byte, len(buf))
		}
		for n > len(payload) {
			old := payload
			payload = make([]byte, 2*len(payload))
			copy(payload, old)
			copy(payload[len(old):], old)
		}
	}

	// Warmup phase: replay without measuring.
	for i := 0; i < opts.Warmup; i++ {
		req := gen.Next()
		grow(req.Size)
		var err error
		if req.Write {
			now, err = e.WriteAt(now, payload[:req.Size], req.Off)
		} else {
			now, err = e.ReadAt(now, buf[:req.Size], req.Off)
		}
		if err != nil {
			if opts.TolerateMediaErrors && errors.Is(err, nvme.ErrUncorrectable) {
				continue
			}
			return nil, fmt.Errorf("bench: warmup request %d: %w", i, err)
		}
	}
	base := e.Snapshot()
	start := now

	// Tail capture and the latency heatmap attach after warmup so both
	// cover exactly the measured phase; the stage account itself keeps
	// spanning the whole replay (that is what conservation covers).
	tail := telemetry.NewTailRecorder(tailTopK, tailKeep(requests))
	e.Stages().SetTail(tail)
	defer e.Stages().SetTail(nil)
	grid := telemetry.NewLatencyGrid(now)

	res := &Result{}
	for i := 0; i < requests; i++ {
		req := gen.Next()
		grow(req.Size)
		before := now
		var err error
		if req.Write {
			now, err = e.WriteAt(now, payload[:req.Size], req.Off)
		} else {
			now, err = e.ReadAt(now, buf[:req.Size], req.Off)
			if err == nil && opts.VerifyEvery > 0 && i%opts.VerifyEvery == 0 {
				want := want[:req.Size]
				if oerr := e.Oracle(want, req.Off); oerr != nil {
					return nil, oerr
				}
				if !bytes.Equal(buf[:req.Size], want) {
					return nil, fmt.Errorf("bench: %s returned wrong bytes at %d (+%d)",
						e.Name(), req.Off, req.Size)
				}
			}
		}
		if err != nil {
			if opts.TolerateMediaErrors && errors.Is(err, nvme.ErrUncorrectable) {
				res.Lost++ // the failed request still consumed virtual time
				continue
			}
			return nil, fmt.Errorf("bench: request %d (%+v): %w", i, req, err)
		}
		res.Hist.Observe(now - before)
		grid.Observe(now, now-before)
		if opts.Sampler != nil {
			opts.Sampler.Tick(now)
		}
	}

	res.Tail = tail.Snapshot()
	res.Heat = grid.Snapshot()
	res.Stages = e.Stages().Snapshot()
	res.Resources = e.Resources().Snapshot(now)
	snap := e.Snapshot()
	subIO(&snap.IO, base.IO)
	subCache(&snap.PageCache, base.PageCache)
	subCache(&snap.FineCache, base.FineCache)
	snap.Ops = uint64(requests) - res.Lost
	snap.Elapsed = now - start
	snap.MeanLat = res.Hist.Mean()
	snap.P99Lat = res.Hist.Quantile(0.99)
	snap.MaxLat = res.Hist.Max()
	res.Snapshot = snap
	return res, nil
}

// ExportRun converts one cell measurement into a report-bundle run record,
// the pipette-report input format.
func ExportRun(name, wl string, r *Result) report.Run {
	exemplars, blame, kept := report.TailRows(r.Tail)
	return report.Run{
		Name:      name,
		Workload:  wl,
		Requests:  r.Snapshot.Ops,
		ElapsedNs: int64(r.Snapshot.Elapsed),
		OpsPerSec: r.Snapshot.ThroughputOpsPerSec(),
		ReadAmp:   r.Snapshot.IO.ReadAmplification(),
		Latency:   report.PercentilesOf(&r.Hist),
		StageNs:   int64(r.Stages.Sum()),
		Stages:    report.StageRows(&r.Stages),
		Exemplars: exemplars,
		TailBlame: blame,
		TailKept:  kept,
		Heat:      r.Heat,
		Resources: r.Resources,

		OfferedOpsPerSec: r.Offered,
		QueueDepth:       r.Depth,
		Arrivals:         r.Arrivals,
		Lost:             r.Lost,
		Rejected:         r.Rejected,
	}
}

func addIO(a *metrics.IO, b metrics.IO) {
	a.BytesRequested += b.BytesRequested
	a.BytesTransferred += b.BytesTransferred
	a.BytesWritten += b.BytesWritten
	a.BlockReads += b.BlockReads
	a.FineReads += b.FineReads
	a.Writes += b.Writes
}

func addCache(a *metrics.Cache, b metrics.Cache) {
	a.Hits += b.Hits
	a.Accesses += b.Accesses
	a.Insertions += b.Insertions
	a.Evictions += b.Evictions
	a.Bypasses += b.Bypasses
}

func subIO(a *metrics.IO, b metrics.IO) {
	a.BytesRequested -= b.BytesRequested
	a.BytesTransferred -= b.BytesTransferred
	a.BytesWritten -= b.BytesWritten
	a.BlockReads -= b.BlockReads
	a.FineReads -= b.FineReads
	a.Writes -= b.Writes
}

func subCache(a *metrics.Cache, b metrics.Cache) {
	a.Hits -= b.Hits
	a.Accesses -= b.Accesses
	a.Insertions -= b.Insertions
	a.Evictions -= b.Evictions
	a.Bypasses -= b.Bypasses
}

// EngineNames is the canonical row order of the paper's tables.
var EngineNames = []string{
	"Block I/O", "2B-SSD MMIO", "2B-SSD DMA", "Pipette w/o cache", "Pipette",
}
