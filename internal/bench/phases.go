package bench

import (
	"fmt"
	"io"
	"os"

	"pipette/internal/sim"
	"pipette/internal/telemetry"
	"pipette/internal/workload"
)

// TelemetryOpts directs the optional export artifacts of the
// phase-breakdown experiment. Zero values skip the corresponding file.
type TelemetryOpts struct {
	TraceOut      string   // Chrome trace-event JSON (open in Perfetto)
	StatsOut      string   // time-series CSV
	StatsInterval sim.Time // sampling interval; 0 = 1 ms virtual
}

// phaseEngineIdxs are the two ends of the comparison: the conventional
// path and the full framework, so the breakdown shows where each spends
// time (indexes into EngineNames / newEngine).
var phaseEngineIdxs = []int{0, 4}

// WritePhaseBreakdown replays workload mix C (50% small / 50% 4 KiB,
// uniform) against Block I/O and Pipette with every layer instrumented,
// then prints the per-phase latency table of each engine: mean/p50/p99 per
// span name, from the VFS syscall entry down to the NAND tR and bus
// transfer. When opts names files, the Pipette run's trace (Chrome
// trace-event JSON) and sampled time series (CSV) are written there too.
// The two engine replays are pool cells; rendering and file export happen
// after both complete, in the fixed engine order.
func WritePhaseBreakdown(w io.Writer, s Scale, opts TelemetryOpts, p *Pool) error {
	interval := opts.StatsInterval
	if interval <= 0 {
		interval = sim.Millisecond
	}
	mix := workload.Mixes(s.FileSize(), 4096, workload.Uniform, 0xbead)[2] // C
	type phaseOut struct {
		rec     *telemetry.Recorder
		sampler *telemetry.Sampler
	}
	outs := make([]phaseOut, len(phaseEngineIdxs))
	cells := make([]Cell, 0, len(phaseEngineIdxs))
	for i, ei := range phaseEngineIdxs {
		i, ei := i, ei
		cells = append(cells, Cell{
			Label: "phases/" + EngineNames[ei],
			Run: func() (*Result, error) {
				e, err := newEngine(ei, s.stackConfig(s.FileSize()))
				if err != nil {
					return nil, err
				}
				gen, err := workload.NewSynthetic(mix)
				if err != nil {
					return nil, err
				}
				rec := telemetry.NewRecorder()
				e.SetTracer(rec)
				sampler, err := telemetry.NewSampler(interval, e.Probes())
				if err != nil {
					return nil, err
				}
				res, err := Run(e, gen, s.Requests, RunOpts{Sampler: sampler})
				if err != nil {
					return nil, fmt.Errorf("bench: phases %s: %w", e.Name(), err)
				}
				outs[i] = phaseOut{rec: rec, sampler: sampler}
				return res, nil
			},
		})
	}
	if err := p.RunCells(cells); err != nil {
		return err
	}
	for i, ei := range phaseEngineIdxs {
		rec, sampler := outs[i].rec, outs[i].sampler
		name := EngineNames[ei]
		fmt.Fprintf(w, "=== Per-phase latency breakdown: %s (mix C uniform, scale %s, %d requests) ===\n",
			name, s.Name, s.Requests)
		fmt.Fprint(w, rec.Breakdown().Render())
		if dropped := rec.Dropped(); dropped > 0 {
			fmt.Fprintf(w, "(trace kept %d events, dropped %d past the cap; histograms cover all)\n",
				rec.Events(), dropped)
		}
		fmt.Fprintln(w)
		if name == "Pipette" {
			if opts.TraceOut != "" {
				if err := writeFileWith(opts.TraceOut, rec.WriteChromeTrace); err != nil {
					return err
				}
				fmt.Fprintf(w, "trace written to %s (open in Perfetto / chrome://tracing)\n", opts.TraceOut)
			}
			if opts.StatsOut != "" {
				if err := writeFileWith(opts.StatsOut, sampler.WriteCSV); err != nil {
					return err
				}
				fmt.Fprintf(w, "time series written to %s (%d samples at %v)\n",
					opts.StatsOut, sampler.Rows(), interval)
			}
		}
	}
	return nil
}

// writeFileWith streams fn's output into path.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
