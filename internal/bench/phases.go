package bench

import (
	"fmt"
	"io"

	"pipette/internal/buildinfo"
	"pipette/internal/report"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
	"pipette/internal/workload"
)

// TelemetryOpts directs the optional export artifacts of the
// phase-breakdown experiment. Zero values skip the corresponding file.
type TelemetryOpts struct {
	TraceOut      string   // Chrome trace-event JSON (open in Perfetto)
	StatsOut      string   // time-series CSV
	StatsInterval sim.Time // sampling interval; 0 = 1 ms virtual
	ExportOut     string   // run-export bundle JSON (pipette-report input)
}

// phaseEngineIdxs are the two ends of the comparison: the conventional
// path and the full framework, so the breakdown shows where each spends
// time (indexes into EngineNames / newEngine).
var phaseEngineIdxs = []int{0, 4}

// WritePhaseBreakdown replays workload mix C (50% small / 50% 4 KiB,
// uniform) against Block I/O and Pipette with every layer instrumented,
// then prints the per-phase latency table of each engine: mean/p50/p99 per
// span name, from the VFS syscall entry down to the NAND tR and bus
// transfer. When opts names files, the Pipette run's trace (Chrome
// trace-event JSON) and sampled time series (CSV) are written there too,
// through a telemetry.Exports set: the files are created before any cell
// runs (a bad path fails fast) and flushed even when a cell dies mid-run,
// so a partial trace survives for post-mortem reading. The two engine
// replays are pool cells; rendering happens after both complete, in the
// fixed engine order.
func WritePhaseBreakdown(w io.Writer, s Scale, opts TelemetryOpts, p *Pool) (err error) {
	interval := opts.StatsInterval
	if interval <= 0 {
		interval = sim.Millisecond
	}
	mix := workload.Mixes(s.FileSize(), 4096, workload.Uniform, 0xbead)[2] // C
	type phaseOut struct {
		rec     *telemetry.Recorder
		sampler *telemetry.Sampler
		res     *Result
	}
	outs := make([]phaseOut, len(phaseEngineIdxs))

	// The Pipette engine's exports: registered before the cells run so the
	// files exist up front and the deferred Close flushes whatever the
	// replay produced, complete run or not.
	const pipetteIdx = 1 // index within phaseEngineIdxs
	var exports telemetry.Exports
	defer func() {
		if cerr := exports.Close(); err == nil {
			err = cerr
		}
	}()
	if opts.TraceOut != "" {
		if aerr := exports.Add(opts.TraceOut, func(fw io.Writer) error {
			if outs[pipetteIdx].rec == nil {
				return nil
			}
			return outs[pipetteIdx].rec.WriteChromeTrace(fw)
		}); aerr != nil {
			return aerr
		}
	}
	if opts.StatsOut != "" {
		if aerr := exports.Add(opts.StatsOut, func(fw io.Writer) error {
			if outs[pipetteIdx].sampler == nil {
				return nil
			}
			return outs[pipetteIdx].sampler.WriteCSV(fw)
		}); aerr != nil {
			return aerr
		}
	}
	if opts.ExportOut != "" {
		if aerr := exports.Add(opts.ExportOut, func(fw io.Writer) error {
			exp := &report.Export{Tool: "pipette-bench phases", Version: buildinfo.Version, Scale: s.Name}
			for i, ei := range phaseEngineIdxs {
				if r := outs[i].res; r != nil {
					exp.Runs = append(exp.Runs, ExportRun(EngineNames[ei], "mixC", r))
				}
			}
			return exp.WriteJSON(fw)
		}); aerr != nil {
			return aerr
		}
	}

	cells := make([]Cell, 0, len(phaseEngineIdxs))
	for i, ei := range phaseEngineIdxs {
		i, ei := i, ei
		cells = append(cells, Cell{
			Label: "phases/" + EngineNames[ei],
			Run: func() (*Result, error) {
				e, err := newEngine(ei, s.stackConfig(s.FileSize()))
				if err != nil {
					return nil, err
				}
				gen, err := workload.NewSynthetic(mix)
				if err != nil {
					return nil, err
				}
				rec := telemetry.NewRecorder()
				e.SetTracer(rec)
				sampler, err := telemetry.NewSampler(interval, e.Probes())
				if err != nil {
					return nil, err
				}
				// Publish before the replay: a cell that dies mid-run still
				// leaves its partial recorder for the export flush.
				outs[i] = phaseOut{rec: rec, sampler: sampler}
				res, err := Run(e, gen, s.Requests, RunOpts{Sampler: sampler})
				if err != nil {
					return nil, fmt.Errorf("bench: phases %s: %w", e.Name(), err)
				}
				outs[i].res = res
				return res, nil
			},
		})
	}
	if err := p.RunCells(cells); err != nil {
		return err
	}
	for i, ei := range phaseEngineIdxs {
		rec, sampler := outs[i].rec, outs[i].sampler
		name := EngineNames[ei]
		fmt.Fprintf(w, "=== Per-phase latency breakdown: %s (mix C uniform, scale %s, %d requests) ===\n",
			name, s.Name, s.Requests)
		fmt.Fprint(w, rec.Breakdown().Render())
		if dropped := rec.Dropped(); dropped > 0 {
			fmt.Fprintf(w, "(trace kept %d events, dropped %d past the cap; histograms cover all)\n",
				rec.Events(), dropped)
		}
		if res := outs[i].res; res != nil {
			fmt.Fprintf(w, "\nstage waterfall\n%s", res.Stages.Waterfall().Render())
			fmt.Fprintf(w, "\nresource utilization\n%s", res.Resources.Table(false).Render())
		}
		fmt.Fprintln(w)
		if name == "Pipette" {
			if cerr := exports.Close(); cerr != nil { // idempotent; defer no-ops
				return cerr
			}
			if opts.TraceOut != "" {
				fmt.Fprintf(w, "trace written to %s (open in Perfetto / chrome://tracing)\n", opts.TraceOut)
			}
			if opts.StatsOut != "" {
				fmt.Fprintf(w, "time series written to %s (%d samples at %v)\n",
					opts.StatsOut, sampler.Rows(), interval)
			}
		}
	}
	return nil
}
