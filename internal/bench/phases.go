package bench

import (
	"fmt"
	"io"
	"os"

	"pipette/internal/baseline"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
	"pipette/internal/workload"
)

// TelemetryOpts directs the optional export artifacts of the
// phase-breakdown experiment. Zero values skip the corresponding file.
type TelemetryOpts struct {
	TraceOut      string   // Chrome trace-event JSON (open in Perfetto)
	StatsOut      string   // time-series CSV
	StatsInterval sim.Time // sampling interval; 0 = 1 ms virtual
}

// phaseEngines are the two ends of the comparison: the conventional path
// and the full framework, so the breakdown shows where each spends time.
func phaseEngines(cfg baseline.StackConfig) ([]baseline.Engine, error) {
	blk, err := baseline.NewBlockIO(cfg)
	if err != nil {
		return nil, err
	}
	pip, err := baseline.NewPipette(cfg)
	if err != nil {
		return nil, err
	}
	return []baseline.Engine{blk, pip}, nil
}

// WritePhaseBreakdown replays workload mix C (50% small / 50% 4 KiB,
// uniform) against Block I/O and Pipette with every layer instrumented,
// then prints the per-phase latency table of each engine: mean/p50/p99 per
// span name, from the VFS syscall entry down to the NAND tR and bus
// transfer. When opts names files, the Pipette run's trace (Chrome
// trace-event JSON) and sampled time series (CSV) are written there too.
func WritePhaseBreakdown(w io.Writer, s Scale, opts TelemetryOpts) error {
	interval := opts.StatsInterval
	if interval <= 0 {
		interval = sim.Millisecond
	}
	mix := workload.Mixes(s.FileSize(), 4096, workload.Uniform, 0xbead)[2] // C
	engines, err := phaseEngines(s.stackConfig(s.FileSize()))
	if err != nil {
		return err
	}
	for _, e := range engines {
		gen, err := workload.NewSynthetic(mix)
		if err != nil {
			return err
		}
		rec := telemetry.NewRecorder()
		e.SetTracer(rec)
		sampler, err := telemetry.NewSampler(interval, e.Probes())
		if err != nil {
			return err
		}
		if _, err := Run(e, gen, s.Requests, RunOpts{Sampler: sampler}); err != nil {
			return fmt.Errorf("bench: phases %s: %w", e.Name(), err)
		}
		fmt.Fprintf(w, "=== Per-phase latency breakdown: %s (mix C uniform, scale %s, %d requests) ===\n",
			e.Name(), s.Name, s.Requests)
		fmt.Fprint(w, rec.Breakdown().Render())
		if dropped := rec.Dropped(); dropped > 0 {
			fmt.Fprintf(w, "(trace kept %d events, dropped %d past the cap; histograms cover all)\n",
				rec.Events(), dropped)
		}
		fmt.Fprintln(w)
		if e.Name() == "Pipette" {
			if opts.TraceOut != "" {
				if err := writeFileWith(opts.TraceOut, rec.WriteChromeTrace); err != nil {
					return err
				}
				fmt.Fprintf(w, "trace written to %s (open in Perfetto / chrome://tracing)\n", opts.TraceOut)
			}
			if opts.StatsOut != "" {
				if err := writeFileWith(opts.StatsOut, sampler.WriteCSV); err != nil {
					return err
				}
				fmt.Fprintf(w, "time series written to %s (%d samples at %v)\n",
					opts.StatsOut, sampler.Rows(), interval)
			}
		}
	}
	return nil
}

// writeFileWith streams fn's output into path.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
