package baseline

import (
	"bytes"
	"testing"

	"pipette/internal/hmb"
	"pipette/internal/sim"
)

// smallStackConfig returns a config with a small flash array and a small
// fine cache so tests run fast.
func smallStackConfig(fileSize int64) StackConfig {
	cfg := DefaultStackConfig(fileSize)
	cfg.SSD.NAND.Channels = 4
	cfg.SSD.NAND.WaysPerChannel = 2
	cfg.SSD.NAND.PlanesPerDie = 1
	cfg.SSD.NAND.BlocksPerPlane = 48
	cfg.SSD.NAND.PagesPerBlock = 64
	cfg.VFS.PageCachePages = 2048
	cfg.Core.HMB = hmb.Config{DataBytes: 1 << 20, TempBufBytes: 64 << 10, TempSlot: 4096, InfoSlots: 256}
	cfg.Core.SlabSize = 16 << 10
	return cfg
}

func allEngines(t testing.TB, fileSize int64) []Engine {
	t.Helper()
	cfg := smallStackConfig(fileSize)
	blk, err := NewBlockIO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mmio, err := NewTwoBSSD(cfg, MMIO)
	if err != nil {
		t.Fatal(err)
	}
	dma, err := NewTwoBSSD(cfg, DMA)
	if err != nil {
		t.Fatal(err)
	}
	noc, err := NewPipetteNoCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pip, err := NewPipette(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return []Engine{blk, mmio, dma, noc, pip}
}

func TestAllEnginesReadSameBytes(t *testing.T) {
	const fileSize = 4 << 20
	engines := allEngines(t, fileSize)
	offsets := []int64{0, 128, 4096 - 64, 123456, fileSize - 256}
	var ref [][]byte
	for i, off := range offsets {
		want := make([]byte, 128)
		if err := engines[0].Oracle(want, off); err != nil {
			t.Fatal(err)
		}
		ref = append(ref, want)
		_ = i
	}
	for _, e := range engines {
		var now sim.Time
		for i, off := range offsets {
			buf := make([]byte, 128)
			done, err := e.ReadAt(now, buf, off)
			if err != nil {
				t.Fatalf("%s read(%d): %v", e.Name(), off, err)
			}
			if done <= now {
				t.Fatalf("%s read consumed no time", e.Name())
			}
			now = done
			if !bytes.Equal(buf, ref[i]) {
				t.Fatalf("%s read(%d) wrong bytes", e.Name(), off)
			}
		}
	}
}

func TestEngineNames(t *testing.T) {
	engines := allEngines(t, 1<<20)
	want := []string{"Block I/O", "2B-SSD MMIO", "2B-SSD DMA", "Pipette w/o cache", "Pipette"}
	for i, e := range engines {
		if e.Name() != want[i] {
			t.Fatalf("engine %d name %q, want %q", i, e.Name(), want[i])
		}
	}
}

// The paper's headline shape: for small reads with reuse under a
// constrained memory budget, Pipette's latency beats all baselines (its
// compact items hold the hot set where page granularity cannot), and the
// per-access DMA mapping makes 2B-SSD DMA slower than Pipette w/o cache.
func TestLatencyShapes(t *testing.T) {
	const fileSize = 8 << 20
	cfg := smallStackConfig(fileSize)
	// Memory-constrained page cache: 16 pages cannot hold the 64-page hot
	// set, while the 1 MiB fine cache holds all 64 items of 128 B.
	cfg.VFS.PageCachePages = 16
	cfg.Core.PageCacheFloorPages = 4
	cfg.Core.InitialThreshold = 1
	blk, err := NewBlockIO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mmio, err := NewTwoBSSD(cfg, MMIO)
	if err != nil {
		t.Fatal(err)
	}
	dma, err := NewTwoBSSD(cfg, DMA)
	if err != nil {
		t.Fatal(err)
	}
	noc, err := NewPipetteNoCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pip, err := NewPipette(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const reads = 640
	lat := make(map[string]sim.Time)
	for _, e := range []Engine{blk, mmio, dma, noc, pip} {
		var now sim.Time
		rng := sim.NewRNG(1)
		buf := make([]byte, 128)
		for i := 0; i < reads; i++ {
			off := int64(rng.Uint64n(64)) * 4096
			done, err := e.ReadAt(now, buf, off)
			if err != nil {
				t.Fatal(err)
			}
			lat[e.Name()] += done - now
			now = done
		}
	}
	pipLat := lat["Pipette"]
	for _, name := range []string{"Block I/O", "2B-SSD MMIO", "2B-SSD DMA", "Pipette w/o cache"} {
		if pipLat >= lat[name] {
			t.Errorf("Pipette latency %v not better than %s %v", pipLat/reads, name, lat[name]/reads)
		}
	}
	// DMA mapping cost makes 2B-SSD DMA slower than Pipette w/o cache.
	if lat["2B-SSD DMA"] <= lat["Pipette w/o cache"] {
		t.Errorf("2B-SSD DMA %v should be slower than Pipette w/o cache %v",
			lat["2B-SSD DMA"]/reads, lat["Pipette w/o cache"]/reads)
	}
}

func TestMMIOLatencyGrowsWithSize(t *testing.T) {
	cfg := smallStackConfig(4 << 20)
	mmio, err := NewTwoBSSD(cfg, MMIO)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(size int) sim.Time {
		buf := make([]byte, size)
		var now sim.Time
		var total sim.Time
		for i := 0; i < 20; i++ {
			off := int64(i) * 4096
			done, err := mmio.ReadAt(now, buf, off)
			if err != nil {
				t.Fatal(err)
			}
			total += done - now
			now = done
		}
		return total / 20
	}
	l8 := measure(8)
	l4k := measure(4096)
	// 4 KiB needs 512 non-posted transactions vs 1 for 8 B: the transfer
	// component alone adds >= 100 us on top of the (shared) flash read.
	if l4k < l8+100*sim.Microsecond {
		t.Fatalf("MMIO 4KiB %v not transaction-bound vs 8B %v", l4k, l8)
	}
}

func TestTrafficAccounting(t *testing.T) {
	const fileSize = 4 << 20
	engines := allEngines(t, fileSize)
	// 100 distinct small reads, strided past the 4-page initial read-ahead
	// window so every block-path read misses.
	for _, e := range engines {
		var now sim.Time
		buf := make([]byte, 128)
		for i := 0; i < 100; i++ {
			done, err := e.ReadAt(now, buf, int64(i)*5*4096)
			if err != nil {
				t.Fatal(err)
			}
			now = done
		}
	}
	snaps := make(map[string]uint64)
	for _, e := range engines {
		snap := e.Snapshot()
		snaps[e.Name()] = snap.IO.BytesTransferred
		if snap.IO.BytesRequested != 100*128 {
			t.Errorf("%s requested %d, want %d", e.Name(), snap.IO.BytesRequested, 100*128)
		}
	}
	// Block I/O moves the 4-page read-ahead window per miss.
	if snaps["Block I/O"] != 100*4*4096 {
		t.Errorf("Block I/O traffic %d, want %d", snaps["Block I/O"], 100*4*4096)
	}
	// Byte-interface engines move only demanded bytes.
	for _, n := range []string{"2B-SSD MMIO", "2B-SSD DMA", "Pipette w/o cache", "Pipette"} {
		if snaps[n] != 100*128 {
			t.Errorf("%s traffic %d, want %d", n, snaps[n], 100*128)
		}
	}
}

func TestPipetteCacheCutsRepeatTraffic(t *testing.T) {
	cfg := smallStackConfig(4 << 20)
	cfg.Core.InitialThreshold = 1
	pip, err := NewPipette(cfg)
	if err != nil {
		t.Fatal(err)
	}
	noc, err := NewPipetteNoCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var now1, now2 sim.Time
	buf := make([]byte, 128)
	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			off := int64(i) * 4096
			d1, err := pip.ReadAt(now1, buf, off)
			if err != nil {
				t.Fatal(err)
			}
			now1 = d1
			d2, err := noc.ReadAt(now2, buf, off)
			if err != nil {
				t.Fatal(err)
			}
			now2 = d2
		}
	}
	pt := pip.Snapshot().IO.BytesTransferred
	nt := noc.Snapshot().IO.BytesTransferred
	if nt != 5*20*128 {
		t.Fatalf("no-cache traffic %d", nt)
	}
	if pt != 20*128 {
		t.Fatalf("Pipette traffic %d, want %d (first round only)", pt, 20*128)
	}
}

func TestWriteReadConsistencyAcrossEngines(t *testing.T) {
	engines := allEngines(t, 1<<20)
	payload := []byte("engine-consistency-check-123")
	for _, e := range engines {
		done, err := e.WriteAt(0, payload, 12345)
		if err != nil {
			t.Fatalf("%s write: %v", e.Name(), err)
		}
		// 2B-SSD's byte-interface reads bypass the page cache, so buffered
		// writes become visible only after writeback — a real limitation
		// of that baseline. Flush before reading there.
		if tb, ok := e.(*TwoBSSD); ok {
			done, err = tb.Sync(done)
			if err != nil {
				t.Fatalf("%s sync: %v", e.Name(), err)
			}
		}
		buf := make([]byte, len(payload))
		if _, err := e.ReadAt(done, buf, 12345); err != nil {
			t.Fatalf("%s read: %v", e.Name(), err)
		}
		if !bytes.Equal(buf, payload) {
			t.Fatalf("%s read-after-write got %q", e.Name(), buf)
		}
	}
}

func TestStackRejectsOversizedFile(t *testing.T) {
	cfg := smallStackConfig(1 << 20)
	cfg.FileSize = 1 << 40
	if _, err := NewBlockIO(cfg); err == nil {
		t.Fatal("oversized file accepted")
	}
	cfg.FileSize = 0
	if _, err := NewBlockIO(cfg); err == nil {
		t.Fatal("zero file accepted")
	}
}
