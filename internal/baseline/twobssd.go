package baseline

import (
	"fmt"

	"pipette/internal/fault"
	"pipette/internal/metrics"
	"pipette/internal/resource"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
	"pipette/internal/vfs"
)

// TwoBSSDMode selects the byte-interface transfer mechanism.
type TwoBSSDMode int

// The two read modes of 2B-SSD (Bae et al., ISCA'18) the paper compares
// against.
const (
	MMIO TwoBSSDMode = iota
	DMA
)

// TwoBSSD models the 2B-SSD baseline (§2.2): the host reads through the
// Controller Memory Buffer, paying a critical-path setup per access — a
// page fault before MMIO loads, or a DMA mapping before a DMA transfer —
// and bypassing the I/O stack entirely, so there is no host-side caching
// of any kind ("without supporting data locality").
type TwoBSSD struct {
	s    *stack
	mode TwoBSSDMode
	cfg  StackConfig

	lbaScratch  []uint64
	slotScratch []int

	io metrics.IO
}

// NewTwoBSSD builds the baseline in the given mode.
func NewTwoBSSD(cfg StackConfig, mode TwoBSSDMode) (*TwoBSSD, error) {
	s, err := newStack(cfg, vfs.ReadWrite)
	if err != nil {
		return nil, err
	}
	return &TwoBSSD{s: s, mode: mode, cfg: cfg}, nil
}

// Name implements Engine.
func (e *TwoBSSD) Name() string {
	if e.mode == MMIO {
		return "2B-SSD MMIO"
	}
	return "2B-SSD DMA"
}

// ReadAt implements Engine: load the covering NAND pages into the CMB
// (they race across channels), then move only the demanded bytes across
// PCIe via MMIO transactions or a DMA transfer. The byte interface
// bypasses the VFS, so the engine owns the stage-account request scope
// itself.
func (e *TwoBSSD) ReadAt(now sim.Time, buf []byte, off int64) (sim.Time, error) {
	e.s.sa.Begin(now)
	done, err := e.readAt(now, buf, off)
	e.s.sa.Finish(done)
	return done, err
}

func (e *TwoBSSD) readAt(now sim.Time, buf []byte, off int64) (sim.Time, error) {
	n := len(buf)
	if off < 0 || off+int64(n) > e.s.file.Size() {
		return now, fmt.Errorf("baseline: 2B-SSD read [%d,+%d) out of file", off, n)
	}
	e.io.BytesRequested += uint64(n)
	ps := e.s.ctrl.PageSize()
	lbas, err := e.s.file.Inode().AppendLBAs(e.lbaScratch[:0], off, n, ps)
	e.lbaScratch = lbas[:0]
	if err != nil {
		return now, err
	}

	// Per-access critical-path setup (§2.2): page fault for MMIO mapping
	// or DMA mapping establishment.
	switch e.mode {
	case MMIO:
		now += e.cfg.PageFault
	case DMA:
		now += e.cfg.DMAMap
	}
	e.s.sa.Mark(telemetry.StageConstruct, now)

	// Load pages to the CMB; issue together, wait for the last.
	if cap(e.slotScratch) < len(lbas) {
		e.slotScratch = make([]int, len(lbas))
	}
	slots := e.slotScratch[:len(lbas)]
	loadDone := now
	for i, lba := range lbas {
		slot, done, err := e.s.ctrl.LoadToCMB(now, lba)
		if err != nil {
			// The failed access still waits for its racing loads.
			if done > loadDone {
				loadDone = done
			}
			return loadDone, fmt.Errorf("baseline: CMB load: %w", err)
		}
		slots[i] = slot
		if done > loadDone {
			loadDone = done
		}
	}

	// Close the racing loads' attribution window at the last completion.
	e.s.sa.Mark(telemetry.StageNAND, loadDone)

	// Transfer the demanded window page by page.
	t := loadDone
	for i, lba := range lbas {
		_ = lba
		pageStart := (off/int64(ps) + int64(i)) * int64(ps)
		lo, hi := off, off+int64(n)
		if pageStart > lo {
			lo = pageStart
		}
		if pageEnd := pageStart + int64(ps); pageEnd < hi {
			hi = pageEnd
		}
		if hi <= lo {
			continue
		}
		dst := buf[lo-off : hi-off]
		inPage := int(lo - pageStart)
		var done sim.Time
		var terr error
		if e.mode == MMIO {
			done, terr = e.s.ctrl.MMIORead(t, slots[i], inPage, dst)
		} else {
			done, terr = e.s.ctrl.DMAReadFromCMB(t, slots[i], inPage, dst)
		}
		if terr != nil {
			return t, terr
		}
		t = done
	}
	e.io.BytesTransferred += uint64(n)
	e.io.FineReads++
	return t, nil
}

// WriteAt implements Engine. 2B-SSD's byte interface is read-side here (the
// paper evaluates reads); writes take the conventional buffered path. Note
// the consistency gap this implies — byte-interface reads bypass the page
// cache, so they can observe pre-writeback flash content — is a real
// limitation of the baseline the paper calls out ("simply bypasses the I/O
// stack").
func (e *TwoBSSD) WriteAt(now sim.Time, data []byte, off int64) (sim.Time, error) {
	_, done, err := e.s.file.WriteAt(now, data, off)
	return done, err
}

// Snapshot implements Engine.
func (e *TwoBSSD) Snapshot() metrics.Snapshot {
	snap := snapshotOf(e.Name(), e.s, nil)
	snap.IO.BytesRequested += e.io.BytesRequested
	snap.IO.BytesTransferred += e.io.BytesTransferred
	snap.IO.FineReads = e.io.FineReads
	// No host-side caching: memory usage is zero by design.
	snap.MemoryMB = 0
	return snap
}

// Oracle implements Engine.
func (e *TwoBSSD) Oracle(buf []byte, off int64) error { return e.s.oracle(buf, off) }

// SetTracer implements Engine.
func (e *TwoBSSD) SetTracer(tr telemetry.Tracer) { e.s.setTracer(tr) }

// Probes implements Engine.
func (e *TwoBSSD) Probes() []telemetry.Probe { return stackProbes(e.s, nil) }

// Faults implements Engine.
func (e *TwoBSSD) Faults() fault.Report { return e.s.faults() }

// Stages implements Engine.
func (e *TwoBSSD) Stages() *telemetry.StageAccount { return e.s.sa }

// Resources implements Engine.
func (e *TwoBSSD) Resources() *resource.Tracker { return e.s.res }

// Sync flushes buffered writes to flash — after which the byte interface
// observes them.
func (e *TwoBSSD) Sync(now sim.Time) (sim.Time, error) { return e.s.file.Sync(now) }
