// Package baseline implements the five engines the paper's evaluation
// compares (§4.1): conventional block I/O, 2B-SSD in its MMIO and DMA read
// modes, Pipette without its fine-grained read cache, and full Pipette.
// Each engine owns a complete simulated system (NAND, FTL, controller,
// driver, block layer, filesystem, VFS) so runs are independent; all five
// expose the same Engine interface to the benchmark harness.
package baseline

import (
	"errors"
	"fmt"

	"pipette/internal/blockdev"
	"pipette/internal/core"
	"pipette/internal/extfs"
	"pipette/internal/fault"
	"pipette/internal/ftl"
	"pipette/internal/metrics"
	"pipette/internal/nvme"
	"pipette/internal/resource"
	"pipette/internal/sim"
	"pipette/internal/ssd"
	"pipette/internal/telemetry"
	"pipette/internal/vfs"
)

// Engine is one system under test.
type Engine interface {
	Name() string
	// ReadAt serves one read; WriteAt one write. Both return the virtual
	// completion time.
	ReadAt(now sim.Time, buf []byte, off int64) (sim.Time, error)
	WriteAt(now sim.Time, data []byte, off int64) (sim.Time, error)
	// Snapshot reports traffic and cache statistics accumulated so far
	// (ops/latency/elapsed are filled by the runner).
	Snapshot() metrics.Snapshot
	// Oracle fills buf with the authoritative current content at off —
	// cache-consistent for engines with caches — used by the harness to
	// verify correctness without timing.
	Oracle(buf []byte, off int64) error
	// SetTracer instruments every layer of the engine's private stack.
	SetTracer(tr telemetry.Tracer)
	// Probes returns the engine's sampled time series (hit ratios, read
	// amplification, per-channel utilization, ...).
	Probes() []telemetry.Probe
	// Faults aggregates the stack's fault-injection and recovery counters
	// (all zeros when the fault profile is empty).
	Faults() fault.Report
	// Stages exposes the engine's per-request stage account — the raw
	// material of the waterfall breakdown.
	Stages() *telemetry.StageAccount
	// Resources exposes the engine's resource-occupancy tracker (NAND
	// channels/dies, PCIe DMA link, NVMe ring).
	Resources() *resource.Tracker
}

// StackConfig assembles one engine's private system.
type StackConfig struct {
	SSD        ssd.Config
	VFS        vfs.Config
	Block      blockdev.Config
	Core       core.Config
	NVMe       nvme.Costs
	Depth      int // per-pair queue depth
	QueuePairs int // NVMe SQ/CQ pairs (0 = default 4)
	FileName   string
	FileSize   int64

	// TwoBSSD costs: the per-access critical-path setup the paper charges
	// 2B-SSD with (§2.2): a page fault before MMIO access, or a DMA
	// mapping before a DMA transfer.
	PageFault sim.Time
	DMAMap    sim.Time

	// FaultProfile configures deterministic fault injection across the
	// stack; the empty profile is the zero-cost default. FaultSeed drives
	// the per-site decision streams.
	FaultProfile fault.Profile
	FaultSeed    uint64
}

// DefaultStackConfig sizes a stack for a dataset of fileSize bytes: the
// flash is provisioned ~1.5x the file and the defaults mirror the paper's
// platform.
func DefaultStackConfig(fileSize int64) StackConfig {
	scfg := ssd.DefaultConfig()
	// Provision just enough blocks for the file plus GC/write headroom —
	// the channel/way geometry (the paper's 8x8) stays fixed so
	// parallelism behaviour is scale-independent, while capacity tracks
	// the dataset to keep mapping-table memory proportional.
	pageBytes := int64(scfg.NAND.PageSize)
	needPages := fileSize/pageBytes + fileSize/(2*pageBytes) + 4096
	perDie := needPages/int64(scfg.NAND.Dies())/int64(scfg.NAND.PagesPerBlock) + 1
	perPlane := int(perDie)/scfg.NAND.PlanesPerDie + 1
	// The FTL needs GC reserve plus frontier per die.
	if min := ftl.DefaultConfig().GCFreeBlockLow + 3; perPlane < min {
		perPlane = min
	}
	scfg.NAND.BlocksPerPlane = perPlane
	return StackConfig{
		SSD:        scfg,
		VFS:        vfs.DefaultConfig(),
		Block:      blockdev.DefaultConfig(),
		Core:       core.DefaultConfig(),
		NVMe:       nvme.DefaultCosts(),
		Depth:      256,
		QueuePairs: 4,
		FileName:   "workload.dat",
		FileSize:   fileSize,
		PageFault:  3 * sim.Microsecond,
		DMAMap:     23 * sim.Microsecond,
	}
}

// stack is the assembled private system.
type stack struct {
	ctrl *ssd.Controller
	drv  *nvme.Driver
	blk  *blockdev.Layer
	v    *vfs.VFS
	file *vfs.File
	inj  *fault.Injector // nil with an empty profile
	sa   *telemetry.StageAccount
	res  *resource.Tracker
}

func newStack(cfg StackConfig, flags vfs.OpenFlag) (*stack, error) {
	if cfg.FileSize <= 0 {
		return nil, errors.New("baseline: FileSize must be positive")
	}
	ctrl, err := ssd.New(cfg.SSD)
	if err != nil {
		return nil, err
	}
	if uint64(cfg.FileSize/int64(ctrl.PageSize())+1) > ctrl.LogicalPages() {
		return nil, fmt.Errorf("baseline: file %d B exceeds device capacity %d pages",
			cfg.FileSize, ctrl.LogicalPages())
	}
	pairs := cfg.QueuePairs
	if pairs <= 0 {
		pairs = 4
	}
	drv := nvme.NewDriverQueues(ctrl, pairs, cfg.Depth, cfg.NVMe)
	blk, err := blockdev.New(drv, ctrl.PageSize(), cfg.Block)
	if err != nil {
		return nil, err
	}
	fs := extfs.New(ctrl)
	v, err := vfs.New(fs, blk, cfg.VFS)
	if err != nil {
		return nil, err
	}
	file, err := v.Create(cfg.FileName, cfg.FileSize, extfs.CreateOpts{Preload: true}, flags)
	if err != nil {
		return nil, err
	}
	s := &stack{ctrl: ctrl, drv: drv, blk: blk, v: v, file: file,
		sa: telemetry.NewStageAccount(), res: resource.NewTracker()}
	// Stage attribution and resource occupancy thread through every layer;
	// registration order (dma, nand, ring) is the export row order.
	v.SetStages(s.sa)
	blk.SetStages(s.sa)
	drv.SetStages(s.sa)
	ctrl.SetStages(s.sa)
	ctrl.SetResources(s.res)
	drv.SetRingTimeline(s.res.Register("nvme.ring"))
	if inj := cfg.FaultProfile.NewInjector(cfg.FaultSeed); inj != nil {
		s.inj = inj
		ctrl.SetInjector(inj)
		v.SetInjector(inj)
	}
	return s, nil
}

// faults aggregates the stack-level recovery counters; engines with a fine
// path add their fallback counts on top.
func (s *stack) faults() fault.Report {
	f := s.ctrl.Faults()
	return fault.Report{
		Injected:         s.inj.TotalInjected(),
		ECCRetries:       f.ECCRetries,
		Uncorrectable:    f.Uncorrectable,
		RingCorruptions:  f.RingCorruptions,
		DMACorruptions:   f.DMACorruptions,
		ProgramRetries:   f.ProgramRetries,
		WritebackRetries: s.v.WritebackRetries(),
	}
}

// setTracer instruments every layer of the stack.
func (s *stack) setTracer(tr telemetry.Tracer) {
	tr = telemetry.OrNop(tr)
	s.v.SetTracer(tr)
	s.blk.SetTracer(tr)
	s.drv.SetTracer(tr)
	s.ctrl.SetTracer(tr)
}

// stackProbes builds the time series every engine shares: read
// amplification, page-cache hit ratio, and per-channel NAND bus
// utilization. p, when non-nil, extends them with the fine-path series
// (fine hit ratio, adaptive threshold, resident memory, overflow FIFO,
// HMB info-ring occupancy).
func stackProbes(s *stack, p *core.Pipette) []telemetry.Probe {
	probes := []telemetry.Probe{
		telemetry.GaugeProbe("read_amp", func() float64 {
			io := s.v.IO()
			if p != nil {
				fio := p.IO()
				io.BytesTransferred += fio.BytesTransferred
			}
			return io.ReadAmplification()
		}),
		telemetry.GaugeProbe("pc_hit_ratio", func() float64 {
			hits, accesses, _, _ := s.v.PageCache().Stats()
			c := metrics.Cache{Hits: hits, Accesses: accesses}
			return c.HitRatio()
		}),
	}
	if p != nil {
		probes = append(probes,
			telemetry.GaugeProbe("fine_hit_ratio", func() float64 {
				c := p.CacheStats()
				return c.HitRatio()
			}),
			telemetry.GaugeProbe("threshold", func() float64 {
				return float64(p.Threshold())
			}),
			telemetry.GaugeProbe("fine_mem_bytes", func() float64 {
				return float64(p.MemoryBytes())
			}),
			telemetry.GaugeProbe("overflow_bytes", func() float64 {
				return float64(p.OverflowBytes())
			}),
			telemetry.GaugeProbe("hmb_info_pending", func() float64 {
				return float64(p.Region().Info().Pending())
			}),
		)
	}
	if s.inj != nil {
		probes = append(probes,
			telemetry.GaugeProbe("fault.injected", func() float64 {
				return float64(s.inj.TotalInjected())
			}),
			telemetry.GaugeProbe("fault.ecc_retries", func() float64 {
				return float64(s.ctrl.Faults().ECCRetries)
			}),
			telemetry.GaugeProbe("fault.uncorrectable", func() float64 {
				return float64(s.ctrl.Faults().Uncorrectable)
			}),
			telemetry.GaugeProbe("fault.wb_retries", func() float64 {
				return float64(s.v.WritebackRetries())
			}),
		)
		if p != nil {
			probes = append(probes,
				telemetry.GaugeProbe("fault.fallbacks", func() float64 {
					return float64(p.RingFallbacks() + p.DMAFallbacks())
				}),
			)
		}
	}
	arr := s.ctrl.Array()
	for ch := 0; ch < arr.Config().Channels; ch++ {
		ch := ch
		probes = append(probes, telemetry.RateProbe(
			fmt.Sprintf("ch%d_busy", ch),
			func() sim.Time { return arr.ChannelBusy(ch) }))
	}
	return probes
}

// oracle reads the engine-consistent view: dirty page-cache content first,
// then device content.
func (s *stack) oracle(buf []byte, off int64) error {
	// ReadAt through the VFS would disturb statistics; replicate the
	// consistency rule with zero cost: dirty pages win, else flash.
	// Harness verification happens on read-only workloads or after Sync,
	// so flash content is authoritative; Peek avoids disturbing cache
	// statistics.
	return s.v.FS().Peek(s.file.Inode(), off, buf)
}

// BlockIO is the conventional read path: page cache + read-ahead + block
// layer, no byte-granular anything.
type BlockIO struct {
	s *stack
}

// NewBlockIO builds the block I/O engine.
func NewBlockIO(cfg StackConfig) (*BlockIO, error) {
	s, err := newStack(cfg, vfs.ReadWrite)
	if err != nil {
		return nil, err
	}
	return &BlockIO{s: s}, nil
}

// Name implements Engine.
func (e *BlockIO) Name() string { return "Block I/O" }

// ReadAt implements Engine.
func (e *BlockIO) ReadAt(now sim.Time, buf []byte, off int64) (sim.Time, error) {
	return e.s.file.ReadFull(now, buf, off)
}

// WriteAt implements Engine.
func (e *BlockIO) WriteAt(now sim.Time, data []byte, off int64) (sim.Time, error) {
	_, done, err := e.s.file.WriteAt(now, data, off)
	return done, err
}

// Snapshot implements Engine.
func (e *BlockIO) Snapshot() metrics.Snapshot {
	return snapshotOf(e.Name(), e.s, nil)
}

// Oracle implements Engine.
func (e *BlockIO) Oracle(buf []byte, off int64) error { return e.s.oracle(buf, off) }

// SetTracer implements Engine.
func (e *BlockIO) SetTracer(tr telemetry.Tracer) { e.s.setTracer(tr) }

// Probes implements Engine.
func (e *BlockIO) Probes() []telemetry.Probe { return stackProbes(e.s, nil) }

// Faults implements Engine.
func (e *BlockIO) Faults() fault.Report { return e.s.faults() }

// Stages implements Engine.
func (e *BlockIO) Stages() *telemetry.StageAccount { return e.s.sa }

// Resources implements Engine.
func (e *BlockIO) Resources() *resource.Tracker { return e.s.res }

// Sync exposes fsync for harness phases.
func (e *BlockIO) Sync(now sim.Time) (sim.Time, error) { return e.s.file.Sync(now) }

// snapshotOf merges VFS and (optionally) Pipette statistics.
func snapshotOf(name string, s *stack, p *core.Pipette) metrics.Snapshot {
	snap := metrics.Snapshot{Name: name}
	io := s.v.IO()
	snap.IO = io
	hits, accesses, ins, evs := s.v.PageCache().Stats()
	snap.PageCache = metrics.Cache{Hits: hits, Accesses: accesses, Insertions: ins, Evictions: evs}
	snap.MemoryMB = float64(s.v.PageCache().MemoryBytes()) / (1 << 20)
	if p != nil {
		fio := p.IO()
		snap.IO.BytesTransferred += fio.BytesTransferred
		snap.IO.FineReads = fio.FineReads
		snap.FineCache = p.CacheStats()
		snap.MemoryMB += float64(p.MemoryBytes()) / (1 << 20)
	}
	return snap
}
