package baseline

import (
	"pipette/internal/core"
	"pipette/internal/fault"
	"pipette/internal/metrics"
	"pipette/internal/resource"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
	"pipette/internal/vfs"
)

// PipetteEngine is the full framework: fine-grained read path plus the
// adaptive fine-grained read cache.
type PipetteEngine struct {
	s    *stack
	p    *core.Pipette
	name string
}

// NewPipette builds the full-framework engine.
func NewPipette(cfg StackConfig) (*PipetteEngine, error) {
	return newPipetteEngine(cfg, false)
}

// NewPipetteNoCache builds the paper's "Pipette w/o cache" configuration:
// the byte-granular path without the fine-grained read cache.
func NewPipetteNoCache(cfg StackConfig) (*PipetteEngine, error) {
	return newPipetteEngine(cfg, true)
}

func newPipetteEngine(cfg StackConfig, noCache bool) (*PipetteEngine, error) {
	s, err := newStack(cfg, vfs.ReadWrite|vfs.FineGrained)
	if err != nil {
		return nil, err
	}
	p, err := core.New(s.v, s.drv, cfg.Core)
	if err != nil {
		return nil, err
	}
	name := "Pipette"
	if noCache {
		p.DisableCache()
		name = "Pipette w/o cache"
	}
	p.SetStages(s.sa)
	if s.inj != nil {
		p.SetInjector(s.inj)
	}
	return &PipetteEngine{s: s, p: p, name: name}, nil
}

// Name implements Engine.
func (e *PipetteEngine) Name() string { return e.name }

// ReadAt implements Engine.
func (e *PipetteEngine) ReadAt(now sim.Time, buf []byte, off int64) (sim.Time, error) {
	return e.s.file.ReadFull(now, buf, off)
}

// WriteAt implements Engine.
func (e *PipetteEngine) WriteAt(now sim.Time, data []byte, off int64) (sim.Time, error) {
	_, done, err := e.s.file.WriteAt(now, data, off)
	return done, err
}

// Snapshot implements Engine.
func (e *PipetteEngine) Snapshot() metrics.Snapshot {
	return snapshotOf(e.name, e.s, e.p)
}

// Oracle implements Engine.
func (e *PipetteEngine) Oracle(buf []byte, off int64) error { return e.s.oracle(buf, off) }

// SetTracer implements Engine: instruments the stack and the fine-grained
// read framework.
func (e *PipetteEngine) SetTracer(tr telemetry.Tracer) {
	e.s.setTracer(tr)
	e.p.SetTracer(telemetry.OrNop(tr))
}

// Probes implements Engine: the shared stack series plus the fine-path
// series.
func (e *PipetteEngine) Probes() []telemetry.Probe { return stackProbes(e.s, e.p) }

// Faults implements Engine: the stack counters plus the host-side fine
// fallbacks.
func (e *PipetteEngine) Faults() fault.Report {
	f := e.s.faults()
	f.RingFallbacks = e.p.RingFallbacks()
	f.DMAFallbacks = e.p.DMAFallbacks()
	return f
}

// Stages implements Engine.
func (e *PipetteEngine) Stages() *telemetry.StageAccount { return e.s.sa }

// Resources implements Engine.
func (e *PipetteEngine) Resources() *resource.Tracker { return e.s.res }

// Sync exposes fsync for harness phases.
func (e *PipetteEngine) Sync(now sim.Time) (sim.Time, error) { return e.s.file.Sync(now) }

// Core exposes the framework (ablation benches tune and inspect it).
func (e *PipetteEngine) Core() *core.Pipette { return e.p }
