package report

import (
	"bytes"
	"strings"
	"testing"
)

func diffTestExport() *Export {
	return &Export{
		Tool:    "pipette-bench",
		Version: "test",
		Scale:   "tiny",
		Runs: []Run{
			{
				Name: "Pipette", Workload: "mixC", Requests: 1000,
				OpsPerSec: 20000, ReadAmp: 2.3,
				Latency: Percentiles{MeanUs: 50, P99Us: 74, MaxUs: 90},
			},
			{
				Name: "Pipette", Workload: "qdepth", Requests: 500,
				OpsPerSec: 15000, OfferedOpsPerSec: 100000, QueueDepth: 8, Arrivals: "poisson",
				Latency: Percentiles{MeanUs: 80, P99Us: 200, MaxUs: 400},
			},
		},
	}
}

// TestDiffExportsSelfIsZero pins the -diff acceptance contract: a run
// diffed against itself compares every metric, changes none, and exceeds
// nothing.
func TestDiffExportsSelfIsZero(t *testing.T) {
	e := diffTestExport()
	d := DiffExports(e, e, 0.10)
	if len(d.Rows) == 0 {
		t.Fatal("self-diff compared no metrics")
	}
	if d.Changed() != 0 || d.Exceeded() != 0 {
		t.Fatalf("self-diff: changed %d exceeded %d, want 0 and 0", d.Changed(), d.Exceeded())
	}
	if len(d.OnlyOld) != 0 || len(d.OnlyNew) != 0 {
		t.Fatalf("self-diff has unmatched runs: old %v new %v", d.OnlyOld, d.OnlyNew)
	}
	var buf bytes.Buffer
	if err := d.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 changed, 0 beyond 10% tolerance") {
		t.Errorf("text summary wrong:\n%s", buf.String())
	}
}

// TestDiffExportsDirections checks tolerance flagging is directional:
// latency up and throughput down regress; the mirror-image improvements
// never flag no matter how large.
func TestDiffExportsDirections(t *testing.T) {
	old, cur := diffTestExport(), diffTestExport()
	cur.Runs[0].Latency.P99Us = 74 * 1.5 // +50%: beyond 10%
	cur.Runs[0].OpsPerSec = 20000 * 0.5  // -50%: beyond 10%
	cur.Runs[0].ReadAmp = 2.3 * 1.05     // +5%: inside 10%
	cur.Runs[1].Latency.P99Us = 200 / 2  // improvement, never flags
	cur.Runs[1].OpsPerSec = 15000 * 3    // improvement, never flags

	d := DiffExports(old, cur, 0.10)
	flagged := map[string]bool{}
	for _, r := range d.Rows {
		if r.Exceeds {
			flagged[r.Run+"/"+r.Metric] = true
		}
	}
	if len(flagged) != 2 {
		t.Fatalf("flagged %v, want exactly the run-0 p99 rise and ops drop", flagged)
	}
	for _, want := range []string{"/p99_us", "/ops_per_sec"} {
		found := false
		for k := range flagged {
			if strings.HasSuffix(k, want) && !strings.Contains(k, "offered") {
				found = true
			}
		}
		if !found {
			t.Errorf("expected a flagged %s row, flagged: %v", want, flagged)
		}
	}
}

func TestDiffExportsUnmatchedRuns(t *testing.T) {
	old, cur := diffTestExport(), diffTestExport()
	cur.Runs = cur.Runs[:1] // drop the open-loop run
	cur.Runs = append(cur.Runs, Run{Name: "Block I/O", Workload: "mixC",
		OpsPerSec: 1, Latency: Percentiles{MeanUs: 1}})

	d := DiffExports(old, cur, 0.10)
	if len(d.OnlyOld) != 1 || !strings.Contains(d.OnlyOld[0], "qd=8") {
		t.Errorf("OnlyOld = %v, want the open-loop sweep point", d.OnlyOld)
	}
	if len(d.OnlyNew) != 1 || !strings.Contains(d.OnlyNew[0], "Block I/O") {
		t.Errorf("OnlyNew = %v, want the new engine", d.OnlyNew)
	}
}

func TestDiffWriteHTMLHighlights(t *testing.T) {
	old, cur := diffTestExport(), diffTestExport()
	cur.Runs[0].Latency.P99Us = 200
	d := DiffExports(old, cur, 0.10)
	var buf bytes.Buffer
	if err := d.WriteHTML(&buf, "diff"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "class=\"worse\"") {
		t.Error("beyond-tolerance row not highlighted")
	}
	if !strings.Contains(out, "class=\"same\"") {
		t.Error("unchanged rows not dimmed")
	}
}
