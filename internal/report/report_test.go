package report

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"pipette/internal/metrics"
	"pipette/internal/resource"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// sampleExport builds a small export with every section populated.
func sampleExport() *Export {
	var h metrics.Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Time(i) * sim.Microsecond)
	}
	sa := telemetry.NewStageAccount()
	sa.Begin(0)
	sa.Mark(telemetry.StageSyscall, 1000)
	sa.Mark(telemetry.StageNAND, 61_000)
	sa.Mark(telemetry.StageCopyout, 61_300)
	sa.Finish(61_300)
	st := sa.Snapshot()

	tr := resource.NewTracker()
	ch := tr.Register("nand.ch0")
	die := tr.Register("nand.ch0.w1")
	dma := tr.Register("pcie.dma")
	ch.Add(0, 50_000)
	die.Add(0, 50_000)
	dma.Add(50_000, 60_000)

	return &Export{
		Tool:  "test",
		Scale: "tiny",
		Runs: []Run{{
			Name:      "engine <a>", // exercises HTML escaping
			Workload:  "mixC",
			Requests:  st.Requests,
			ElapsedNs: int64(st.Elapsed),
			OpsPerSec: 1234.5,
			ReadAmp:   1.5,
			Latency:   PercentilesOf(&h),
			StageNs:   int64(st.Sum()),
			Stages:    StageRows(&st),
			Resources: tr.Snapshot(61_300),
		}},
	}
}

// clusterExport builds an export with one cluster run (per-shard rows).
func clusterExport() *Export {
	var h metrics.Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Time(i) * sim.Microsecond)
	}
	return &Export{
		Tool:  "test cluster",
		Scale: "tiny",
		Runs: []Run{{
			Name:      "cluster",
			Workload:  "multitenant-zipf0.99-r2-degraded",
			Requests:  100,
			ElapsedNs: 5_000_000,
			OpsPerSec: 20_000,
			Rejected:  7,
			Throttled: 12,
			Lost:      3,
			Latency:   PercentilesOf(&h),
			Shards: []ShardSummary{
				{Shard: 0, Primary: 60, Executions: 80, ReplicaWrites: 5,
					MediaErrors: 4, Faulted: true, Utilization: 0.42},
				{Shard: 1, Primary: 40, Executions: 55, Hedges: 9,
					Failovers: 4, Rejected: 2, Utilization: 0.18},
			},
		}},
	}
}

func TestExportRoundTrip(t *testing.T) {
	exp := sampleExport()
	path := filepath.Join(t.TempDir(), "run.json")
	if err := exp.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := exp.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("export does not round-trip byte-identically through JSON")
	}
}

func TestStageRowsConserve(t *testing.T) {
	exp := sampleExport()
	r := &exp.Runs[0]
	var sum int64
	for _, s := range r.Stages {
		sum += s.TotalNs
	}
	if sum != r.StageNs {
		t.Fatalf("stage rows sum to %d, StageNs is %d", sum, r.StageNs)
	}
	if r.StageNs != r.ElapsedNs {
		t.Fatalf("StageNs %d != ElapsedNs %d for a single-request run", r.StageNs, r.ElapsedNs)
	}
}

func TestWriteHTMLSectionsAndEscaping(t *testing.T) {
	exp := sampleExport()
	var b bytes.Buffer
	if err := WriteHTML(&b, "t & t", []*Export{exp}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"t &amp; t",
		"engine &lt;a&gt;", // run name escaped
		"End-to-end latency",
		"Stage waterfall",
		"Resource utilization",
		"nand.ch0",
		"Per-die detail",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML misses %q", want)
		}
	}
	if strings.Contains(out, "engine <a>") {
		t.Error("run name not escaped")
	}
	// Self-contained: no external fetches of any kind.
	for _, banned := range []string{"http://", "https://", "<script", "src="} {
		if strings.Contains(out, banned) {
			t.Errorf("HTML contains %q; report must be self-contained", banned)
		}
	}
}

// TestClusterExportRoundTripAndHTML checks the cluster run record: the
// per-shard summaries survive the JSON round trip, and the renderer emits
// the cluster summary table and the per-shard utilization section.
func TestClusterExportRoundTripAndHTML(t *testing.T) {
	exp := clusterExport()
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := exp.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 1 || len(got.Runs[0].Shards) != 2 {
		t.Fatalf("round trip lost shard rows: %+v", got.Runs)
	}
	if s0 := got.Runs[0].Shards[0]; !s0.Faulted || s0.MediaErrors != 4 || s0.Utilization != 0.42 {
		t.Fatalf("shard 0 fields lost in round trip: %+v", s0)
	}
	if got.Runs[0].Throttled != 12 || got.Runs[0].Rejected != 7 {
		t.Fatalf("QoS counters lost in round trip: %+v", got.Runs[0])
	}

	var b bytes.Buffer
	if err := WriteHTML(&b, "cluster", []*Export{got}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Cluster summary",
		"Per-shard utilization",
		"hot shard %",
		"(faulted)",
		"12 throttled",
		"ubar",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster HTML misses %q", want)
		}
	}
	// Hot shard share: 60/100.
	if !strings.Contains(out, "<td>60.0</td>") {
		t.Error("cluster summary misses the 60.0% hot-shard share")
	}
}

func TestWriteHTMLDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteHTML(&a, "r", []*Export{sampleExport()}); err != nil {
		t.Fatal(err)
	}
	if err := WriteHTML(&b, "r", []*Export{sampleExport()}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical exports rendered different HTML")
	}
}
