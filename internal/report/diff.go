package report

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"
)

// DiffRow is one (run, metric) delta between two exports. DeltaPct is the
// relative change from old to new ((new-old)/old, percent); Exceeds marks
// rows whose change is beyond the tolerance in the regressing direction
// (higher latency, lower throughput, higher read amplification).
type DiffRow struct {
	Run      string  `json:"run"`
	Metric   string  `json:"metric"`
	Old      float64 `json:"old"`
	New      float64 `json:"new"`
	DeltaPct float64 `json:"delta_pct"`
	Exceeds  bool    `json:"exceeds,omitempty"`
}

// Diff is the comparison of two exports: per-run metric deltas for runs
// present on both sides, plus the run labels only one side has.
type Diff struct {
	OldLabel, NewLabel string
	Tolerance          float64
	Rows               []DiffRow
	OnlyOld, OnlyNew   []string
}

// diffMetric describes one compared metric: how to read it from a run and
// whether an increase is the regressing direction.
type diffMetric struct {
	name    string
	get     func(*Run) float64
	upIsBad bool
}

var diffMetrics = []diffMetric{
	{"ops_per_sec", func(r *Run) float64 { return r.OpsPerSec }, false},
	{"read_amp", func(r *Run) float64 { return r.ReadAmp }, true},
	{"mean_us", func(r *Run) float64 { return r.Latency.MeanUs }, true},
	{"p99_us", func(r *Run) float64 { return r.Latency.P99Us }, true},
	{"max_us", func(r *Run) float64 { return r.Latency.MaxUs }, true},
}

// diffKey identifies a run within an export for matching across sides.
// Open-loop sweeps reuse one Name across points, so the offered rate,
// queue depth, and arrival process are part of the identity.
func diffKey(r *Run) string {
	k := runLabel(r)
	if r.OfferedOpsPerSec > 0 {
		k += fmt.Sprintf(" qd=%d %s offered=%.0f", r.QueueDepth, r.Arrivals, r.OfferedOpsPerSec)
	}
	return k
}

// DiffExports compares two exports run by run. Runs match on their label
// (name/workload, plus the sweep-point identity for open-loop runs); a
// label appearing more than once on a side matches positionally within
// that label. tol is the relative tolerance (0.10 = 10%) beyond which a
// regressing delta is flagged.
func DiffExports(old, cur *Export, tol float64) *Diff {
	d := &Diff{
		OldLabel:  exportLabel(old),
		NewLabel:  exportLabel(cur),
		Tolerance: tol,
	}
	oldRuns := map[string][]*Run{}
	var oldOrder []string
	for i := range old.Runs {
		k := diffKey(&old.Runs[i])
		if len(oldRuns[k]) == 0 {
			oldOrder = append(oldOrder, k)
		}
		oldRuns[k] = append(oldRuns[k], &old.Runs[i])
	}
	matched := map[string]int{}
	for i := range cur.Runs {
		r := &cur.Runs[i]
		k := diffKey(r)
		pool := oldRuns[k]
		if matched[k] >= len(pool) {
			d.OnlyNew = append(d.OnlyNew, k)
			continue
		}
		o := pool[matched[k]]
		matched[k]++
		for _, m := range diffMetrics {
			ov, nv := m.get(o), m.get(r)
			if ov == 0 && nv == 0 {
				continue
			}
			row := DiffRow{Run: k, Metric: m.name, Old: ov, New: nv}
			if ov != 0 {
				row.DeltaPct = 100 * (nv - ov) / ov
			} else {
				row.DeltaPct = math.Inf(1)
			}
			worse := row.DeltaPct
			if !m.upIsBad {
				worse = -worse
			}
			row.Exceeds = worse > 100*tol
			d.Rows = append(d.Rows, row)
		}
	}
	for _, k := range oldOrder {
		if matched[k] < len(oldRuns[k]) {
			d.OnlyOld = append(d.OnlyOld, k)
		}
	}
	return d
}

func exportLabel(e *Export) string {
	l := e.Tool
	if l == "" {
		l = "run"
	}
	if e.Scale != "" {
		l += " scale=" + e.Scale
	}
	if e.Version != "" {
		l += " version=" + e.Version
	}
	return l
}

// Changed counts rows with any nonzero delta; Exceeded counts rows beyond
// tolerance. A self-diff has Changed() == 0.
func (d *Diff) Changed() int {
	n := 0
	for _, r := range d.Rows {
		if r.DeltaPct != 0 {
			n++
		}
	}
	return n
}

// Exceeded counts rows whose regression is beyond tolerance.
func (d *Diff) Exceeded() int {
	n := 0
	for _, r := range d.Rows {
		if r.Exceeds {
			n++
		}
	}
	return n
}

// WriteText renders the diff as an aligned stdout table. Unchanged rows
// print as "=", regressions beyond tolerance as "!".
func (d *Diff) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "old: %s\nnew: %s\n", d.OldLabel, d.NewLabel)
	if len(d.Rows) == 0 && len(d.OnlyOld) == 0 && len(d.OnlyNew) == 0 {
		b.WriteString("no comparable runs\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	runW, metW := 3, 6
	for _, r := range d.Rows {
		if len(r.Run) > runW {
			runW = len(r.Run)
		}
		if len(r.Metric) > metW {
			metW = len(r.Metric)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-*s  %14s  %14s  %9s\n", runW, "run", metW, "metric", "old", "new", "delta")
	for _, r := range d.Rows {
		flag := " "
		switch {
		case r.Exceeds:
			flag = "!"
		case r.DeltaPct == 0:
			flag = "="
		}
		fmt.Fprintf(&b, "%-*s  %-*s  %14.3f  %14.3f  %+8.2f%% %s\n",
			runW, r.Run, metW, r.Metric, r.Old, r.New, r.DeltaPct, flag)
	}
	for _, k := range d.OnlyOld {
		fmt.Fprintf(&b, "only in old: %s\n", k)
	}
	for _, k := range d.OnlyNew {
		fmt.Fprintf(&b, "only in new: %s\n", k)
	}
	fmt.Fprintf(&b, "%d metrics compared, %d changed, %d beyond %.0f%% tolerance\n",
		len(d.Rows), d.Changed(), d.Exceeded(), 100*d.Tolerance)
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteHTML renders the diff as a self-contained HTML document with
// tolerance highlighting.
func (d *Diff) WriteHTML(w io.Writer, title string) error {
	var b strings.Builder
	esc := html.EscapeString
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n<title>%s</title>\n<style>\n%s.worse{background:#fdd}\n.same{color:#999}\n</style>\n</head>\n<body>\n", esc(title), htmlStyle)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", esc(title))
	fmt.Fprintf(&b, "<p class=\"meta\">old: %s<br>new: %s<br>%d metrics compared, %d changed, %d beyond %.0f%% tolerance</p>\n",
		esc(d.OldLabel), esc(d.NewLabel), len(d.Rows), d.Changed(), d.Exceeded(), 100*d.Tolerance)
	b.WriteString("<table>\n<tr><th>run</th><th>metric</th><th>old</th><th>new</th><th>delta %</th></tr>\n")
	for _, r := range d.Rows {
		cls := ""
		switch {
		case r.Exceeds:
			cls = " class=\"worse\""
		case r.DeltaPct == 0:
			cls = " class=\"same\""
		}
		fmt.Fprintf(&b, "<tr%s><td>%s</td><td>%s</td><td>%.3f</td><td>%.3f</td><td>%+.2f</td></tr>\n",
			cls, esc(r.Run), esc(r.Metric), r.Old, r.New, r.DeltaPct)
	}
	b.WriteString("</table>\n")
	if len(d.OnlyOld) > 0 || len(d.OnlyNew) > 0 {
		b.WriteString("<p class=\"meta\">")
		for _, k := range d.OnlyOld {
			fmt.Fprintf(&b, "only in old: %s<br>", esc(k))
		}
		for _, k := range d.OnlyNew {
			fmt.Fprintf(&b, "only in new: %s<br>", esc(k))
		}
		b.WriteString("</p>\n")
	}
	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
