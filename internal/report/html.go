package report

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"

	"pipette/internal/resource"
	"pipette/internal/telemetry"
)

// stageColors is the fixed waterfall palette, keyed by stage name so the
// same stage has the same color in every report. Unknown names fall back
// to gray.
var stageColors = map[string]string{
	"syscall":   "#4e79a7",
	"cache":     "#59a14f",
	"queue":     "#9c755f",
	"construct": "#b07aa1",
	"ring":      "#edc948",
	"firmware":  "#f28e2b",
	"nand":      "#e15759",
	"retry":     "#8c1515",
	"dma":       "#76b7b2",
	"program":   "#ff9da7",
	"writeback": "#86bcb6",
	"copyout":   "#a0cbe8",
	"other":     "#bab0ac",
}

func stageColor(name string) string {
	if c, ok := stageColors[name]; ok {
		return c
	}
	return "#999999"
}

const htmlStyle = `body{font:14px/1.45 -apple-system,"Segoe UI",Roboto,sans-serif;margin:2em auto;max-width:72em;padding:0 1em;color:#1a1a1a}
h1{font-size:1.5em;border-bottom:2px solid #ddd;padding-bottom:.3em}
h2{font-size:1.2em;margin-top:2em}
h3{font-size:1.05em;margin-top:1.5em}
table{border-collapse:collapse;margin:.6em 0}
th,td{border:1px solid #ddd;padding:.25em .6em;text-align:right}
th:first-child,td:first-child{text-align:left}
th{background:#f4f4f4}
.bar{display:flex;height:1.4em;width:100%;max-width:48em;border:1px solid #ccc;border-radius:2px;overflow:hidden;margin:.4em 0}
.bar span{display:block;height:100%}
.legend{margin:.2em 0 .6em;font-size:.85em}
.legend span{display:inline-block;margin-right:1em;white-space:nowrap}
.swatch{display:inline-block;width:.8em;height:.8em;margin-right:.3em;vertical-align:-.08em;border-radius:2px}
.heat{border-collapse:collapse}
.heat td{border:none;padding:0;width:4px;height:14px;min-width:2px}
.heat td.rn{width:auto;padding:0 .6em 0 0;font-size:.85em;text-align:right;white-space:nowrap}
.ubar{display:inline-block;width:6em;height:.8em;border:1px solid #ccc;border-radius:2px;overflow:hidden;vertical-align:-.08em;background:#fafafa}
.ubar span{display:block;height:100%;background:#4e79a7}
.meta{color:#555;font-size:.9em}
details{margin:.6em 0}
summary{cursor:pointer;color:#555}
`

// WriteHTML renders the exports as one self-contained HTML document: a
// latency percentile table, a per-run stage waterfall, and a per-run
// resource-utilization heatmap. The output carries no wall-clock content
// and iterates only slices, so identical exports render byte-identically.
func WriteHTML(w io.Writer, title string, exports []*Export) error {
	var b strings.Builder
	esc := html.EscapeString
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n<title>%s</title>\n<style>\n%s</style>\n</head>\n<body>\n", esc(title), htmlStyle)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", esc(title))

	for _, e := range exports {
		hdr := e.Tool
		if hdr == "" {
			hdr = "run"
		}
		if e.Scale != "" {
			hdr += " (scale " + e.Scale + ")"
		}
		if e.Version != "" {
			hdr += " · " + e.Version
		}
		fmt.Fprintf(&b, "<h2>%s</h2>\n", esc(hdr))
		writeLatencyTable(&b, e.Runs)
		writeSaturation(&b, e.Runs)
		writeClusterSummary(&b, e.Runs)
		writeIndexSummary(&b, e.Runs)
		for i := range e.Runs {
			writeRun(&b, &e.Runs[i])
		}
	}
	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeLatencyTable renders the percentile table: one row per run.
func writeLatencyTable(b *strings.Builder, runs []Run) {
	if len(runs) == 0 {
		return
	}
	b.WriteString("<h3>End-to-end latency (µs)</h3>\n<table>\n<tr><th>run</th><th>requests</th><th>mean</th><th>p50</th><th>p90</th><th>p99</th><th>p99.9</th><th>max</th></tr>\n")
	for i := range runs {
		r := &runs[i]
		fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%.2f</td><td>%.2f</td><td>%.2f</td><td>%.2f</td><td>%.2f</td><td>%.2f</td></tr>\n",
			html.EscapeString(runLabel(r)), r.Requests,
			r.Latency.MeanUs, r.Latency.P50Us, r.Latency.P90Us,
			r.Latency.P99Us, r.Latency.P999Us, r.Latency.MaxUs)
	}
	b.WriteString("</table>\n")
}

// curvePalette colors the throughput-vs-latency curves, cycling when an
// export has more groups than colors.
var curvePalette = []string{
	"#4e79a7", "#e15759", "#59a14f", "#f28e2b", "#b07aa1",
	"#76b7b2", "#edc948", "#9c755f", "#ff9da7", "#bab0ac",
}

// satGroup is one throughput-vs-latency curve: the Poisson rate sweep of
// one (engine, queue depth) configuration, in export order.
type satGroup struct {
	name  string
	depth int
	runs  []*Run
}

// writeSaturation renders the open-loop runs — those with an offered
// arrival rate — as throughput-vs-latency curves: an SVG chart of achieved
// throughput against mean latency (log scale), one curve per (run name,
// queue depth) over its Poisson rate sweep, plus the numeric table
// including the bursty points. Closed-loop runs are skipped.
func writeSaturation(b *strings.Builder, runs []Run) {
	var groups []*satGroup
	var open []*Run
	for i := range runs {
		r := &runs[i]
		if r.OfferedOpsPerSec <= 0 {
			continue
		}
		open = append(open, r)
		if r.Arrivals != "poisson" {
			continue
		}
		var g *satGroup
		for _, cand := range groups {
			if cand.name == r.Name && cand.depth == r.QueueDepth {
				g = cand
				break
			}
		}
		if g == nil {
			g = &satGroup{name: r.Name, depth: r.QueueDepth}
			groups = append(groups, g)
		}
		g.runs = append(g.runs, r)
	}
	if len(open) == 0 {
		return
	}

	b.WriteString("<h3>Throughput vs latency (open loop)</h3>\n")
	writeSaturationChart(b, groups)
	b.WriteString("<table>\n<tr><th>run</th><th>qd</th><th>arrivals</th><th>offered/s</th><th>achieved/s</th><th>mean (µs)</th><th>p99 (µs)</th></tr>\n")
	for _, r := range open {
		fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%s</td><td>%.0f</td><td>%.0f</td><td>%.2f</td><td>%.2f</td></tr>\n",
			html.EscapeString(r.Name), r.QueueDepth, html.EscapeString(r.Arrivals),
			r.OfferedOpsPerSec, r.OpsPerSec, r.Latency.MeanUs, r.Latency.P99Us)
	}
	b.WriteString("</table>\n")
}

// writeSaturationChart draws the curves: x is achieved throughput
// (linear), y is mean latency (log10). The hockey-stick bend of each curve
// is the configuration's saturation knee.
func writeSaturationChart(b *strings.Builder, groups []*satGroup) {
	if len(groups) == 0 {
		return
	}
	var maxX, minY, maxY float64
	first := true
	for _, g := range groups {
		for _, r := range g.runs {
			if r.OpsPerSec > maxX {
				maxX = r.OpsPerSec
			}
			y := r.Latency.MeanUs
			if y <= 0 {
				continue
			}
			if first || y < minY {
				minY = y
			}
			if first || y > maxY {
				maxY = y
			}
			first = false
		}
	}
	if maxX <= 0 || first || minY == maxY {
		return
	}
	const (
		w, h                   = 640.0, 320.0
		padL, padR, padT, padB = 70.0, 10.0, 10.0, 40.0
	)
	logMin, logMax := math.Log10(minY), math.Log10(maxY)
	px := func(x float64) float64 { return padL + (w-padL-padR)*x/maxX }
	py := func(y float64) float64 {
		return h - padB - (h-padT-padB)*(math.Log10(y)-logMin)/(logMax-logMin)
	}

	fmt.Fprintf(b, "<svg width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\" style=\"font:11px sans-serif\">\n", w, h, w, h)
	fmt.Fprintf(b, "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"none\" stroke=\"#ccc\"/>\n",
		padL, padT, w-padL-padR, h-padT-padB)
	// Decade gridlines on the log-latency axis.
	for d := math.Ceil(logMin); d <= math.Floor(logMax); d++ {
		y := py(math.Pow(10, d))
		fmt.Fprintf(b, "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#eee\"/>\n", padL, y, w-padR, y)
		fmt.Fprintf(b, "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\">%.0f µs</text>\n", padL-6, y+4, math.Pow(10, d))
	}
	for i := 1; i <= 4; i++ {
		x := px(maxX * float64(i) / 4)
		fmt.Fprintf(b, "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\">%.0fk/s</text>\n",
			x, h-padB+16, maxX*float64(i)/4/1e3)
	}
	for gi, g := range groups {
		color := curvePalette[gi%len(curvePalette)]
		var pts []string
		for _, r := range g.runs {
			if r.Latency.MeanUs <= 0 {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(r.OpsPerSec), py(r.Latency.MeanUs)))
		}
		if len(pts) == 0 {
			continue
		}
		fmt.Fprintf(b, "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\"/>\n",
			strings.Join(pts, " "), color)
		for _, p := range pts {
			xy := strings.Split(p, ",")
			fmt.Fprintf(b, "<circle cx=\"%s\" cy=\"%s\" r=\"2.5\" fill=\"%s\"/>\n", xy[0], xy[1], color)
		}
		fmt.Fprintf(b, "<text x=\"%.1f\" y=\"%.1f\" fill=\"%s\">%s qd=%d</text>\n",
			padL+8, padT+14+float64(gi)*14, color, html.EscapeString(g.name), g.depth)
	}
	b.WriteString("</svg>\n")
}

// hotShardShare reports the largest single-shard fraction of primary
// routing for a cluster run (1/shards is balanced, 1.0 is one hot shard).
func hotShardShare(shards []ShardSummary) float64 {
	var max, total uint64
	for i := range shards {
		total += shards[i].Primary
		if shards[i].Primary > max {
			max = shards[i].Primary
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / float64(total)
}

// writeClusterSummary renders the cluster runs — those carrying per-shard
// summaries — side by side: goodput, admission-control counters, and
// hot-shard concentration, the replication-vs-skew trade-off at a glance.
func writeClusterSummary(b *strings.Builder, runs []Run) {
	var cl []*Run
	for i := range runs {
		if len(runs[i].Shards) > 0 {
			cl = append(cl, &runs[i])
		}
	}
	if len(cl) == 0 {
		return
	}
	b.WriteString("<h3>Cluster summary</h3>\n<table>\n<tr><th>run</th><th>shards</th><th>goodput/s</th><th>hot shard %</th><th>rejected</th><th>throttled</th><th>lost</th><th>hedges</th><th>failovers</th></tr>\n")
	for _, r := range cl {
		var hedges, failovers uint64
		for i := range r.Shards {
			hedges += r.Shards[i].Hedges
			failovers += r.Shards[i].Failovers
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%.0f</td><td>%.1f</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr>\n",
			html.EscapeString(runLabel(r)), len(r.Shards), r.OpsPerSec,
			100*hotShardShare(r.Shards), r.Rejected, r.Throttled, r.Lost,
			hedges, failovers)
	}
	b.WriteString("</table>\n")
}

// writeIndexSummary renders the KV index-engine runs — those carrying an
// index ledger — side by side: structure shape (tree height and node reads
// per lookup, LSM runs), filter and cache effectiveness, and the absent-key
// probe latencies, where the fine-read path's sub-page index reads show.
func writeIndexSummary(b *strings.Builder, runs []Run) {
	var ix []*Run
	for i := range runs {
		if runs[i].Index != nil {
			ix = append(ix, &runs[i])
		}
	}
	if len(ix) == 0 {
		return
	}
	b.WriteString("<h3>KV index engines</h3>\n<table>\n<tr><th>run</th><th>index</th><th>height</th><th>node rd/get</th><th>runs</th><th>bloom neg</th><th>bloom FP %</th><th>cache hit %</th><th>neg probe mean (µs)</th><th>neg probe p99 (µs)</th><th>probe read KB</th><th>idx read MB</th></tr>\n")
	for _, r := range ix {
		s := r.Index
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%.2f</td><td>%d</td><td>%d</td><td>%.2f</td><td>%.1f</td><td>%.2f</td><td>%.2f</td><td>%.1f</td><td>%.1f</td></tr>\n",
			html.EscapeString(runLabel(r)), html.EscapeString(s.Kind),
			s.Height, s.NodeReadsPerLookup, s.Runs, s.BloomNegative,
			s.BloomFPPct, s.CacheHitPct, s.NegProbeMeanUs, s.NegProbeP99Us,
			s.NegProbeReadKB, s.ReadMB)
	}
	b.WriteString("</table>\n")
}

// writeShards renders one cluster run's per-shard section: the routing and
// replica-work ledger plus a utilization bar per member (the busiest
// resource's busy fraction over the replay).
func writeShards(b *strings.Builder, r *Run) {
	if len(r.Shards) == 0 {
		return
	}
	var total uint64
	for i := range r.Shards {
		total += r.Shards[i].Primary
	}
	b.WriteString("<h4>Per-shard utilization</h4>\n<table>\n<tr><th>shard</th><th>primary</th><th>share %</th><th>execs</th><th>repl. writes</th><th>fanouts</th><th>hedges</th><th>failovers</th><th>rejected</th><th>media err</th><th>util %</th><th>util</th></tr>\n")
	for i := range r.Shards {
		ss := &r.Shards[i]
		name := fmt.Sprintf("%d", ss.Shard)
		if ss.Faulted {
			name += " (faulted)"
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(ss.Primary) / float64(total)
		}
		width := 100 * ss.Utilization
		if width > 100 {
			width = 100
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%.1f</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%.1f</td><td><div class=\"ubar\"><span style=\"width:%.1f%%\"></span></div></td></tr>\n",
			html.EscapeString(name), ss.Primary, share, ss.Executions,
			ss.ReplicaWrites, ss.Fanouts, ss.Hedges, ss.Failovers,
			ss.Rejected, ss.MediaErrors, 100*ss.Utilization, width)
	}
	b.WriteString("</table>\n")
}

func runLabel(r *Run) string {
	if r.Workload != "" && r.Workload != r.Name {
		return r.Name + " / " + r.Workload
	}
	return r.Name
}

func writeRun(b *strings.Builder, r *Run) {
	esc := html.EscapeString
	fmt.Fprintf(b, "<h3>%s</h3>\n", esc(runLabel(r)))
	fmt.Fprintf(b, "<p class=\"meta\">%d requests in %.3f ms virtual time, %.0f ops/s",
		r.Requests, float64(r.ElapsedNs)/1e6, r.OpsPerSec)
	if r.OfferedOpsPerSec > 0 {
		fmt.Fprintf(b, " (open loop: %s arrivals offering %.0f ops/s, queue depth %d)",
			html.EscapeString(r.Arrivals), r.OfferedOpsPerSec, r.QueueDepth)
	}
	if r.ReadAmp > 0 {
		fmt.Fprintf(b, ", read amplification %.2f", r.ReadAmp)
	}
	if r.Rejected > 0 || r.Throttled > 0 || r.Lost > 0 {
		fmt.Fprintf(b, "; %d rejected, %d throttled, %d lost", r.Rejected, r.Throttled, r.Lost)
	}
	b.WriteString("</p>\n")

	writeShards(b, r)
	writeWaterfall(b, r)
	writeTail(b, r)
	writeLatencyHeat(b, r.Heat)
	writeResources(b, r.Resources)
}

// writeTail renders the run's slow-request forensics: the p99 blame
// composition (where the kept slowest requests' time went, by stage and
// concrete resource), then one waterfall bar per captured exemplar with
// per-span resource titles.
func writeTail(b *strings.Builder, r *Run) {
	esc := html.EscapeString
	if len(r.TailBlame) > 0 {
		fmt.Fprintf(b, "<h4>Tail blame (slowest %d requests)</h4>\n", r.TailKept)
		b.WriteString("<table>\n<tr><th>stage</th><th>resource</th><th>total (ms)</th><th>share %</th></tr>\n")
		for _, row := range r.TailBlame {
			res := row.Res
			if res == "" {
				res = "—"
			}
			fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%.3f</td><td>%.1f</td></tr>\n",
				esc(row.Stage), esc(res), float64(row.TotalNs)/1e6, row.SharePct)
		}
		b.WriteString("</table>\n")
	}
	if len(r.Exemplars) == 0 {
		return
	}
	b.WriteString("<h4>Slowest requests</h4>\n")
	for i := range r.Exemplars {
		e := &r.Exemplars[i]
		fmt.Fprintf(b, "<p class=\"meta\">#%d · seq %d · start %.3f ms · %.2f µs</p>\n<div class=\"bar\">",
			i+1, e.Seq, float64(e.StartNs)/1e6, e.LatencyUs)
		total := e.LatencyUs * 1e3 // ns
		for _, sp := range e.Spans {
			if total <= 0 {
				break
			}
			dur := float64(sp.EndNs - sp.StartNs)
			title := sp.Stage
			if sp.Res != "" {
				title += " @" + sp.Res
			}
			fmt.Fprintf(b, "<span style=\"width:%.3f%%;background:%s\" title=\"%s %.2f µs\"></span>",
				100*dur/total, stageColor(sp.Stage), esc(title), dur/1e3)
		}
		b.WriteString("</div>\n")
	}
}

// writeLatencyHeat renders the completion-time × latency heatmap as an
// SVG: x is virtual time since the measured phase began, y the latency
// ladder (slowest on top), cell darkness the completion count relative to
// the densest cell (log scale, so the sparse tail stays visible).
func writeLatencyHeat(b *strings.Builder, h *telemetry.HeatSnapshot) {
	if h == nil || h.Total == 0 {
		return
	}
	bins := 0
	var maxCount uint64
	for _, row := range h.Counts {
		if len(row) > bins {
			bins = len(row)
		}
		for _, c := range row {
			if c > maxCount {
				maxCount = c
			}
		}
	}
	if bins == 0 || maxCount == 0 {
		return
	}
	const (
		cellW, cellH = 6.0, 14.0
		padL, padT   = 70.0, 4.0
		padB         = 20.0
	)
	rows := len(h.Counts)
	w := padL + cellW*float64(bins) + 4
	ht := padT + cellH*float64(rows) + padB
	b.WriteString("<h4>Latency heatmap</h4>\n")
	fmt.Fprintf(b, "<p class=\"meta\">Completions per %.0f µs of virtual time × latency bucket; darker is more completions (log shade, max %d/cell).</p>\n",
		float64(h.BinNs)/1e3, maxCount)
	fmt.Fprintf(b, "<svg width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\" style=\"font:10px sans-serif\">\n", w, ht, w, ht)
	logMax := math.Log1p(float64(maxCount))
	for ri := range h.Counts {
		// Row 0 is the fastest bucket; draw it at the bottom.
		y := padT + cellH*float64(rows-1-ri)
		label := fmt.Sprintf("&ge; %g µs", h.BoundsUs[len(h.BoundsUs)-1])
		if ri < len(h.BoundsUs) {
			label = fmt.Sprintf("&lt; %g µs", h.BoundsUs[ri])
		}
		fmt.Fprintf(b, "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\">%s</text>\n", padL-4, y+cellH-4, label)
		for bi, c := range h.Counts[ri] {
			if c == 0 {
				continue
			}
			alpha := math.Log1p(float64(c)) / logMax
			fmt.Fprintf(b, "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"rgba(31,119,180,%.2f)\"/>\n",
				padL+cellW*float64(bi), y, cellW, cellH, alpha)
		}
	}
	fmt.Fprintf(b, "<text x=\"%.1f\" y=\"%.1f\">0</text>\n", padL, ht-6)
	fmt.Fprintf(b, "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\">%.2f ms</text>\n",
		padL+cellW*float64(bins), ht-6, float64(h.BinNs)*float64(bins)/1e6)
	b.WriteString("</svg>\n")
}

// writeWaterfall renders the stage breakdown as a stacked bar (share of
// total attributed time) plus the numeric table.
func writeWaterfall(b *strings.Builder, r *Run) {
	if len(r.Stages) == 0 || r.StageNs <= 0 {
		return
	}
	b.WriteString("<h4>Stage waterfall</h4>\n<div class=\"bar\">")
	for _, s := range r.Stages {
		share := 100 * float64(s.TotalNs) / float64(r.StageNs)
		fmt.Fprintf(b, "<span style=\"width:%.3f%%;background:%s\" title=\"%s %.1f%%\"></span>",
			share, stageColor(s.Name), html.EscapeString(s.Name), share)
	}
	b.WriteString("</div>\n<div class=\"legend\">")
	for _, s := range r.Stages {
		fmt.Fprintf(b, "<span><i class=\"swatch\" style=\"background:%s\"></i>%s</span>",
			stageColor(s.Name), html.EscapeString(s.Name))
	}
	b.WriteString("</div>\n")
	b.WriteString("<table>\n<tr><th>stage</th><th>total (ms)</th><th>share %</th><th>reqs</th><th>mean (µs)</th><th>p99 (µs)</th><th>max (µs)</th></tr>\n")
	for _, s := range r.Stages {
		fmt.Fprintf(b, "<tr><td>%s</td><td>%.3f</td><td>%.1f</td><td>%d</td><td>%.2f</td><td>%.2f</td><td>%.2f</td></tr>\n",
			html.EscapeString(s.Name), float64(s.TotalNs)/1e6,
			100*float64(s.TotalNs)/float64(r.StageNs), s.Requests, s.MeanUs, s.P99Us, s.MaxUs)
	}
	fmt.Fprintf(b, "<tr><td>total</td><td>%.3f</td><td>100.0</td><td>%d</td><td></td><td></td><td></td></tr>\n",
		float64(r.StageNs)/1e6, r.Requests)
	b.WriteString("</table>\n")
}

// writeResources renders the utilization summary table (per-die rows
// folded away) and the binned-occupancy heatmap: one row per resource,
// one cell per virtual-time bin, shaded by the busy fraction of that bin.
// Per-die rows get their own collapsed heatmap.
func writeResources(b *strings.Builder, s *resource.Snapshot) {
	if s == nil || len(s.Resources) == 0 {
		return
	}
	b.WriteString("<h4>Resource utilization</h4>\n<table>\n<tr><th>resource</th><th>busy (ms)</th><th>util %</th><th>ops</th></tr>\n")
	for _, r := range s.Resources {
		if strings.Contains(r.Name, ".w") {
			continue
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%.3f</td><td>%.1f</td><td>%d</td></tr>\n",
			html.EscapeString(r.Name), float64(r.BusyNs)/1e6, 100*r.Utilization, r.Ops)
	}
	b.WriteString("</table>\n")

	if s.BinNs <= 0 {
		return
	}
	fmt.Fprintf(b, "<p class=\"meta\">Occupancy heatmap: one cell per %.0f µs of virtual time; darker is busier.</p>\n",
		float64(s.BinNs)/1e3)
	writeHeatmap(b, s, false)
	b.WriteString("<details><summary>Per-die detail (channel × way)</summary>\n")
	writeHeatmap(b, s, true)
	b.WriteString("</details>\n")
}

func writeHeatmap(b *strings.Builder, s *resource.Snapshot, dies bool) {
	b.WriteString("<table class=\"heat\">\n")
	for _, r := range s.Resources {
		if strings.Contains(r.Name, ".w") != dies {
			continue
		}
		fmt.Fprintf(b, "<tr><td class=\"rn\">%s</td>", html.EscapeString(r.Name))
		for i, busy := range r.Bins {
			frac := float64(busy) / float64(s.BinNs)
			if frac > 1 {
				frac = 1
			}
			// Idle bins stay bare cells; the per-die detail drops the hover
			// titles too. Both keep large reports small.
			switch {
			case frac == 0:
				b.WriteString("<td></td>")
			case dies:
				fmt.Fprintf(b, "<td style=\"background:rgba(31,119,180,%.2f)\"></td>", frac)
			default:
				fmt.Fprintf(b, "<td style=\"background:rgba(31,119,180,%.2f)\" title=\"%s bin %d: %.0f%%\"></td>",
					frac, html.EscapeString(r.Name), i, 100*frac)
			}
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")
}
