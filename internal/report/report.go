// Package report defines the run-export bundle — the machine-readable
// record of one simulation or benchmark run: request counts, latency
// percentiles, the per-stage time waterfall, and the per-resource
// occupancy timelines — plus the renderer that turns one or more bundles
// into a self-contained HTML run report.
//
// Everything here is deterministic by construction: exports carry only
// virtual-time measurements (never wall-clock), collections are slices in
// a fixed order (never map iteration), and floats render with fixed
// precision. Identical runs therefore produce byte-identical JSON and
// byte-identical HTML, at any worker count — which is what lets CI diff
// reports across commits.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pipette/internal/metrics"
	"pipette/internal/resource"
	"pipette/internal/telemetry"
)

// Percentiles summarizes one latency distribution in microseconds.
type Percentiles struct {
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// PercentilesOf extracts the summary from a latency histogram.
func PercentilesOf(h *metrics.Histogram) Percentiles {
	if h == nil || h.Count() == 0 {
		return Percentiles{}
	}
	return Percentiles{
		MeanUs: h.Mean().Micros(),
		P50Us:  h.Quantile(0.50).Micros(),
		P90Us:  h.Quantile(0.90).Micros(),
		P99Us:  h.Quantile(0.99).Micros(),
		P999Us: h.Quantile(0.999).Micros(),
		MaxUs:  h.Max().Micros(),
	}
}

// StageRow is one stage of a run's time-attribution waterfall. Requests
// counts only the requests where the stage claimed nonzero time.
type StageRow struct {
	Name     string  `json:"name"`
	TotalNs  int64   `json:"total_ns"`
	Requests uint64  `json:"requests"`
	MeanUs   float64 `json:"mean_us"`
	P99Us    float64 `json:"p99_us"`
	MaxUs    float64 `json:"max_us"`
}

// StageRows flattens a stage snapshot into waterfall rows, in pipeline
// order, skipping stages that never claimed time.
func StageRows(s *telemetry.StageSnapshot) []StageRow {
	var rows []StageRow
	for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
		if s.Totals[st] == 0 {
			continue
		}
		h := &s.Hists[st]
		rows = append(rows, StageRow{
			Name:     st.String(),
			TotalNs:  int64(s.Totals[st]),
			Requests: h.Count(),
			MeanUs:   h.Mean().Micros(),
			P99Us:    h.Quantile(0.99).Micros(),
			MaxUs:    h.Max().Micros(),
		})
	}
	return rows
}

// Run is one measured replay: an engine × workload cell of pipette-bench
// or one pipette-sim workload.
type Run struct {
	Name      string  `json:"name"`
	Workload  string  `json:"workload,omitempty"`
	Requests  uint64  `json:"requests"`
	ElapsedNs int64   `json:"elapsed_ns"` // virtual time consumed
	OpsPerSec float64 `json:"ops_per_sec"`
	ReadAmp   float64 `json:"read_amp,omitempty"`

	// Open-loop runs only: the offered arrival rate (OpsPerSec above is
	// the achieved throughput), the admission queue-depth bound, and the
	// arrival process ("poisson", "bursty"). All zero/empty for
	// closed-loop runs.
	OfferedOpsPerSec float64 `json:"offered_ops_per_sec,omitempty"`
	QueueDepth       int     `json:"queue_depth,omitempty"`
	Arrivals         string  `json:"arrivals,omitempty"`

	// Lost counts requests that failed with uncorrectable media errors
	// under an armed fault profile (Requests is goodput).
	Lost uint64 `json:"lost,omitempty"`
	// Rejected counts open-loop arrivals bounced off a full admission
	// FIFO; Throttled counts arrivals bounced by a tenant rate limiter.
	// Both are zero outside backpressure/QoS runs.
	Rejected  uint64 `json:"rejected,omitempty"`
	Throttled uint64 `json:"throttled,omitempty"`

	Latency Percentiles `json:"latency"`

	// Shards describes the members of a cluster run (empty for
	// single-device runs): the per-shard routing, replication, and
	// admission ledger the cluster summary section renders.
	Shards []ShardSummary `json:"shards,omitempty"`

	// Index describes the KV index engine behind a kv-matrix run (nil for
	// every other run): structure shape, filter/cache effectiveness, and
	// the absent-key probe latencies the index summary section renders.
	Index *IndexSummary `json:"index,omitempty"`

	// StageNs is the conservation sum: total time attributed across all
	// stages, equal to the summed end-to-end latencies of every request
	// the stage account finished.
	StageNs int64      `json:"stage_ns"`
	Stages  []StageRow `json:"stages"`

	// Exemplars are the run's top-K slowest requests with their full span
	// lists — the raw material of the tail waterfalls. TailBlame is the
	// blame composition aggregated over the kept set (the slowest
	// TailKept requests), which approximates "where p99 time goes".
	Exemplars []Exemplar `json:"exemplars,omitempty"`
	TailBlame []BlameRow `json:"tail_blame,omitempty"`
	TailKept  int        `json:"tail_kept,omitempty"`

	// Heat is the completion-time × latency-bucket heatmap of the run's
	// measured phase (nil when the harness did not collect one).
	Heat *telemetry.HeatSnapshot `json:"heat,omitempty"`

	Resources *resource.Snapshot `json:"resources,omitempty"`
}

// SpanRow is one attributed interval of an exemplar request. Res, when
// set, names the concrete resource blamed for the interval ("nand.ch2.w5",
// "nvme.sq1", "pcie.dma"); spans are contiguous and partition the
// request's [start, end] exactly.
type SpanRow struct {
	Stage   string `json:"stage"`
	Res     string `json:"res,omitempty"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
}

// Exemplar is one captured slow request. Seq is its completion-order
// index within the run's measured phase — together with StartNs it makes
// exemplar identity deterministic.
type Exemplar struct {
	Seq       uint64    `json:"seq"`
	StartNs   int64     `json:"start_ns"`
	LatencyUs float64   `json:"latency_us"`
	Spans     []SpanRow `json:"spans"`
}

// BlameRow is one (stage, resource) row of a blame composition, with its
// share of the composition's total time.
type BlameRow struct {
	Stage    string  `json:"stage"`
	Res      string  `json:"res,omitempty"`
	TotalNs  int64   `json:"total_ns"`
	SharePct float64 `json:"share_pct"`
}

// blameRows converts telemetry blame segments into report rows with
// shares of their own total.
func blameRows(blame []telemetry.BlameSeg) []BlameRow {
	var total int64
	for _, s := range blame {
		total += int64(s.Total)
	}
	rows := make([]BlameRow, len(blame))
	for i, s := range blame {
		share := 0.0
		if total > 0 {
			share = 100 * float64(s.Total) / float64(total)
		}
		rows[i] = BlameRow{
			Stage:    s.Stage.String(),
			Res:      s.Res,
			TotalNs:  int64(s.Total),
			SharePct: share,
		}
	}
	return rows
}

// TailRows converts a tail snapshot into the run's exemplar and blame
// fields. A nil snapshot yields empty results.
func TailRows(snap *telemetry.TailSnapshot) (exemplars []Exemplar, blame []BlameRow, kept int) {
	if snap == nil {
		return nil, nil, 0
	}
	exemplars = make([]Exemplar, len(snap.TopK))
	for i := range snap.TopK {
		e := &snap.TopK[i]
		spans := make([]SpanRow, len(e.Segs))
		for j, s := range e.Segs {
			spans[j] = SpanRow{
				Stage:   s.Stage.String(),
				Res:     s.Res,
				StartNs: int64(s.Start),
				EndNs:   int64(s.End),
			}
		}
		exemplars[i] = Exemplar{
			Seq:       e.Seq,
			StartNs:   int64(e.Start),
			LatencyUs: e.Latency().Micros(),
			Spans:     spans,
		}
	}
	return exemplars, blameRows(snap.Blame), snap.Kept
}

// ShardSummary is one cluster member's ledger in a cluster run: how much
// primary traffic the consistent-hash ring routed to it, the replica work
// it absorbed (replicated writes, fan-out/hedge/failover reads), what its
// admission FIFO rejected, and how busy its device stayed.
type ShardSummary struct {
	Shard         int     `json:"shard"`
	Primary       uint64  `json:"primary"`
	Executions    uint64  `json:"executions"`
	ReplicaWrites uint64  `json:"replica_writes,omitempty"`
	Fanouts       uint64  `json:"fanouts,omitempty"`
	Hedges        uint64  `json:"hedges,omitempty"`
	Failovers     uint64  `json:"failovers,omitempty"`
	Rejected      uint64  `json:"rejected,omitempty"`
	MediaErrors   uint64  `json:"media_errors,omitempty"`
	Faulted       bool    `json:"faulted,omitempty"`
	Utilization   float64 `json:"utilization"` // busiest resource's busy fraction
}

// IndexSummary is one KV cell's index-engine ledger: the paged B+-tree's
// traversal shape, the LSM's run/filter/cache behavior, and the latency of
// the absent-key probe batch — the negative-lookup regime where the two
// structures differ most. Fields that do not apply to the engine kind stay
// zero and are omitted from the JSON.
type IndexSummary struct {
	Kind string `json:"kind"`

	// B+-tree.
	NodeReadsPerLookup float64 `json:"node_reads_per_lookup,omitempty"`
	Height             int     `json:"height,omitempty"`
	Splits             uint64  `json:"splits,omitempty"`
	Merges             uint64  `json:"merges,omitempty"`

	// LSM.
	Runs          int     `json:"runs,omitempty"`
	Flushes       uint64  `json:"flushes,omitempty"`
	Compactions   uint64  `json:"compactions,omitempty"`
	BloomNegative uint64  `json:"bloom_negative,omitempty"`
	BloomFPPct    float64 `json:"bloom_fp_pct,omitempty"`
	CacheHitPct   float64 `json:"cache_hit_pct,omitempty"`

	NegProbeMeanUs float64 `json:"neg_probe_mean_us,omitempty"`
	NegProbeP99Us  float64 `json:"neg_probe_p99_us,omitempty"`
	// NegProbeReadKB is the device traffic the probe batch moved — the
	// read-amplification side of the negative-lookup comparison.
	NegProbeReadKB float64 `json:"neg_probe_read_kb,omitempty"`
	ReadMB         float64 `json:"read_mb,omitempty"`
	WriteMB        float64 `json:"write_mb,omitempty"`
}

// Export is one run bundle: what a tool invocation measured. Version is
// the producing binary's build version (ldflags-stamped; "dev" for local
// builds), so a diff of two exports identifies what produced each side.
type Export struct {
	Tool    string `json:"tool"`
	Version string `json:"version,omitempty"`
	Scale   string `json:"scale,omitempty"`
	Runs    []Run  `json:"runs"`
}

// WriteJSON writes the export as indented JSON. Field and run order are
// fixed, so identical runs serialize byte-identically.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// WriteFile writes the export to path.
func (e *Export) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if err := e.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("report: writing %s: %w", path, err)
	}
	return f.Close()
}

// ReadFile parses an export written by WriteFile.
func ReadFile(path string) (*Export, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	defer f.Close()
	var e Export
	if err := json.NewDecoder(f).Decode(&e); err != nil {
		return nil, fmt.Errorf("report: parsing %s: %w", path, err)
	}
	return &e, nil
}
