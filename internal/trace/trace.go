// Package trace records and replays workload request streams in a compact
// binary format, so experiments can be repeated bit-exactly, inspected, or
// exchanged: generate once with cmd/pipette-trace, replay anywhere.
//
// Format: an 8-byte header ("PIPTRC" + 2-byte version), then one 14-byte
// little-endian record per request: op(1) pad(1) off(8) size(4).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"pipette/internal/workload"
)

var magic = [6]byte{'P', 'I', 'P', 'T', 'R', 'C'}

// Version of the on-disk format.
const Version uint16 = 1

const recordSize = 14

// Op codes.
const (
	opRead  byte = 0
	opWrite byte = 1
)

// Writer streams requests to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	count uint64
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], Version)
	if _, err := bw.Write(v[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Append records one request.
func (w *Writer) Append(r workload.Request) error {
	if r.Size <= 0 || r.Off < 0 {
		return fmt.Errorf("trace: invalid request %+v", r)
	}
	var buf [recordSize]byte
	if r.Write {
		buf[0] = opWrite
	}
	binary.LittleEndian.PutUint64(buf[2:], uint64(r.Off))
	binary.LittleEndian.PutUint32(buf[10:], uint32(r.Size))
	_, err := w.w.Write(buf[:])
	if err == nil {
		w.count++
	}
	return err
}

// Count reports appended records.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams requests from an io.Reader.
type Reader struct {
	r *bufio.Reader
}

// ErrBadHeader reports a stream that is not a trace.
var ErrBadHeader = errors.New("trace: bad header")

// ErrTruncated reports a trace that ends mid-record — a corrupt or
// incomplete file. It is distinct from io.EOF (clean end after the last
// record) so ReadAll surfaces corruption instead of silently returning a
// short result.
var ErrTruncated = errors.New("trace: truncated record")

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	for i, b := range magic {
		if hdr[i] != b {
			return nil, ErrBadHeader
		}
	}
	if v := binary.LittleEndian.Uint16(hdr[6:]); v != Version {
		return nil, fmt.Errorf("%w: version %d", ErrBadHeader, v)
	}
	return &Reader{r: br}, nil
}

// Next reads one request; io.EOF after the last.
func (r *Reader) Next() (workload.Request, error) {
	var buf [recordSize]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return workload.Request{}, fmt.Errorf("%w (partial trailing record)", ErrTruncated)
		}
		return workload.Request{}, err
	}
	return workload.Request{
		Write: buf[0] == opWrite,
		Off:   int64(binary.LittleEndian.Uint64(buf[2:])),
		Size:  int(binary.LittleEndian.Uint32(buf[10:])),
	}, nil
}

// ReadAll slurps a whole trace.
func ReadAll(r io.Reader) ([]workload.Request, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []workload.Request
	for {
		req, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, req)
	}
}

// OpSummary is one op type's share of a request stream, with exact
// request-size percentiles (nearest-rank over the sorted sizes — no
// bucketing, the stream is fully in memory).
type OpSummary struct {
	Op    string // "read" or "write"
	Count int
	Bytes int64
	P50   int // request-size percentiles, bytes
	P99   int
	Max   int
}

// Summary describes a request stream: totals plus per-op-type size stats.
type Summary struct {
	Requests int
	Bytes    int64
	Extent   int64 // highest byte touched + 1
	Distinct int   // distinct request sizes across all ops
	Ops      []OpSummary
}

// Summarize computes a stream's Summary. Op types with no requests are
// omitted; present types appear in read-then-write order.
func Summarize(reqs []workload.Request) Summary {
	var s Summary
	s.Requests = len(reqs)
	distinct := make(map[int]struct{})
	var sizes [2][]int // by op: read, write
	var bytes [2]int64
	for _, r := range reqs {
		op := 0
		if r.Write {
			op = 1
		}
		sizes[op] = append(sizes[op], r.Size)
		bytes[op] += int64(r.Size)
		s.Bytes += int64(r.Size)
		distinct[r.Size] = struct{}{}
		if end := r.Off + int64(r.Size); end > s.Extent {
			s.Extent = end
		}
	}
	s.Distinct = len(distinct)
	for op, name := range []string{"read", "write"} {
		n := len(sizes[op])
		if n == 0 {
			continue
		}
		sort.Ints(sizes[op])
		s.Ops = append(s.Ops, OpSummary{
			Op:    name,
			Count: n,
			Bytes: bytes[op],
			P50:   nearestRank(sizes[op], 50),
			P99:   nearestRank(sizes[op], 99),
			Max:   sizes[op][n-1],
		})
	}
	return s
}

// nearestRank returns the pth percentile of sorted (ascending) values by
// the nearest-rank definition: the smallest value with at least p% of the
// sample at or below it.
func nearestRank(sorted []int, p int) int {
	rank := (len(sorted)*p + 99) / 100 // ceil(n*p/100)
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Record captures n requests from a generator into w.
func Record(w io.Writer, gen workload.Generator, n int) error {
	tw, err := NewWriter(w)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := tw.Append(gen.Next()); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Replayer adapts a recorded trace to the workload.Generator interface.
// Next cycles when the trace is exhausted.
type Replayer struct {
	name     string
	fileSize int64
	reqs     []workload.Request
	pos      int
}

// NewReplayer wraps recorded requests. fileSize must cover every request.
func NewReplayer(name string, fileSize int64, reqs []workload.Request) (*Replayer, error) {
	if len(reqs) == 0 {
		return nil, errors.New("trace: empty trace")
	}
	for i, r := range reqs {
		if r.Off < 0 || r.Off+int64(r.Size) > fileSize {
			return nil, fmt.Errorf("trace: request %d [%d,+%d) outside file %d", i, r.Off, r.Size, fileSize)
		}
	}
	return &Replayer{name: name, fileSize: fileSize, reqs: reqs}, nil
}

// Name implements workload.Generator.
func (r *Replayer) Name() string { return "trace:" + r.name }

// FileSize implements workload.Generator.
func (r *Replayer) FileSize() int64 { return r.fileSize }

// Len reports the trace length.
func (r *Replayer) Len() int { return len(r.reqs) }

// Next implements workload.Generator, cycling at the end.
func (r *Replayer) Next() workload.Request {
	req := r.reqs[r.pos]
	r.pos = (r.pos + 1) % len(r.reqs)
	return req
}
