package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"pipette/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	reqs := []workload.Request{
		{Off: 0, Size: 128},
		{Off: 4096, Size: 64, Write: true},
		{Off: 1 << 40, Size: 4096},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], reqs[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(offs []uint32, sizes []uint16, writes []bool) bool {
		n := len(offs)
		if len(sizes) < n {
			n = len(sizes)
		}
		if len(writes) < n {
			n = len(writes)
		}
		var reqs []workload.Request
		for i := 0; i < n; i++ {
			reqs = append(reqs, workload.Request{
				Off: int64(offs[i]), Size: int(sizes[i]) + 1, Write: writes[i],
			})
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, r := range reqs {
			if err := w.Append(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(reqs) {
			return false
		}
		for i := range reqs {
			if got[i] != reqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidRequestsRejected(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(workload.Request{Off: -1, Size: 10}); err == nil {
		t.Error("negative offset accepted")
	}
	if err := w.Append(workload.Request{Off: 0, Size: 0}); err == nil {
		t.Error("zero size accepted")
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("empty err = %v", err)
	}
	// Wrong version.
	bad := append([]byte("PIPTRC"), 0x63, 0x00)
	if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("version err = %v", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(workload.Request{Off: 0, Size: 8}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(workload.Request{Off: 4096, Size: 16}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-3]

	// Next on the partial record must report ErrTruncated, not io.EOF:
	// a reader that stops at EOF would silently accept the corrupt file.
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("first (complete) record err = %v", err)
	}
	_, err = r.Next()
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated read err = %v, want ErrTruncated", err)
	}
	if errors.Is(err, io.EOF) {
		t.Fatalf("truncated read err %v wraps io.EOF, masking corruption", err)
	}

	// ReadAll must surface the corruption rather than return a short trace.
	if _, err := ReadAll(bytes.NewReader(raw)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadAll on truncated trace err = %v, want ErrTruncated", err)
	}
}

func TestRecordFromGenerator(t *testing.T) {
	cfg := workload.Mixes(1<<20, 4096, workload.Uniform, 5)[4]
	gen, err := workload.NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Record(&buf, gen, 100); err != nil {
		t.Fatal(err)
	}
	reqs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 100 {
		t.Fatalf("recorded %d", len(reqs))
	}
	// Same-seed generator reproduces the trace.
	gen2, _ := workload.NewSynthetic(cfg)
	for i, r := range reqs {
		if want := gen2.Next(); r != want {
			t.Fatalf("record %d: %+v != %+v", i, r, want)
		}
	}
}

func TestReplayer(t *testing.T) {
	reqs := []workload.Request{{Off: 0, Size: 128}, {Off: 4096, Size: 64}}
	r, err := NewReplayer("test", 1<<20, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "trace:test" || r.FileSize() != 1<<20 || r.Len() != 2 {
		t.Fatalf("replayer metadata wrong")
	}
	// Cycles.
	for i := 0; i < 5; i++ {
		if got := r.Next(); got != reqs[i%2] {
			t.Fatalf("replay %d: %+v", i, got)
		}
	}
	// Validation.
	if _, err := NewReplayer("x", 100, reqs); err == nil {
		t.Error("out-of-file trace accepted")
	}
	if _, err := NewReplayer("x", 100, nil); err == nil {
		t.Error("empty trace accepted")
	}
}

// TestSummarize pins the per-op accounting and the exact (nearest-rank)
// size percentiles the info subcommand prints.
func TestSummarize(t *testing.T) {
	var reqs []workload.Request
	// 100 reads sized 1..100 at consecutive offsets; 2 writes of 4096.
	off := int64(0)
	for i := 1; i <= 100; i++ {
		reqs = append(reqs, workload.Request{Off: off, Size: i})
		off += int64(i)
	}
	reqs = append(reqs,
		workload.Request{Write: true, Off: off, Size: 4096},
		workload.Request{Write: true, Off: off + 4096, Size: 4096})

	s := Summarize(reqs)
	if s.Requests != 102 || s.Distinct != 101 {
		t.Fatalf("totals wrong: %+v", s)
	}
	if want := off + 8192; s.Extent != want {
		t.Fatalf("extent %d, want %d", s.Extent, want)
	}
	if len(s.Ops) != 2 || s.Ops[0].Op != "read" || s.Ops[1].Op != "write" {
		t.Fatalf("op order wrong: %+v", s.Ops)
	}
	r := s.Ops[0]
	if r.Count != 100 || r.Bytes != 5050 || r.P50 != 50 || r.P99 != 99 || r.Max != 100 {
		t.Fatalf("read summary wrong: %+v", r)
	}
	w := s.Ops[1]
	if w.Count != 2 || w.Bytes != 8192 || w.P50 != 4096 || w.P99 != 4096 || w.Max != 4096 {
		t.Fatalf("write summary wrong: %+v", w)
	}

	// Single-element and empty streams must not panic.
	one := Summarize(reqs[:1])
	if one.Ops[0].P50 != 1 || one.Ops[0].P99 != 1 || one.Ops[0].Max != 1 {
		t.Fatalf("single-request percentiles wrong: %+v", one.Ops[0])
	}
	if empty := Summarize(nil); empty.Requests != 0 || len(empty.Ops) != 0 {
		t.Fatalf("empty summary wrong: %+v", empty)
	}
}
