package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"pipette/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	reqs := []workload.Request{
		{Off: 0, Size: 128},
		{Off: 4096, Size: 64, Write: true},
		{Off: 1 << 40, Size: 4096},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], reqs[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(offs []uint32, sizes []uint16, writes []bool) bool {
		n := len(offs)
		if len(sizes) < n {
			n = len(sizes)
		}
		if len(writes) < n {
			n = len(writes)
		}
		var reqs []workload.Request
		for i := 0; i < n; i++ {
			reqs = append(reqs, workload.Request{
				Off: int64(offs[i]), Size: int(sizes[i]) + 1, Write: writes[i],
			})
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, r := range reqs {
			if err := w.Append(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(reqs) {
			return false
		}
		for i := range reqs {
			if got[i] != reqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidRequestsRejected(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(workload.Request{Off: -1, Size: 10}); err == nil {
		t.Error("negative offset accepted")
	}
	if err := w.Append(workload.Request{Off: 0, Size: 0}); err == nil {
		t.Error("zero size accepted")
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("empty err = %v", err)
	}
	// Wrong version.
	bad := append([]byte("PIPTRC"), 0x63, 0x00)
	if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("version err = %v", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(workload.Request{Off: 0, Size: 8}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(workload.Request{Off: 4096, Size: 16}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-3]

	// Next on the partial record must report ErrTruncated, not io.EOF:
	// a reader that stops at EOF would silently accept the corrupt file.
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("first (complete) record err = %v", err)
	}
	_, err = r.Next()
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated read err = %v, want ErrTruncated", err)
	}
	if errors.Is(err, io.EOF) {
		t.Fatalf("truncated read err %v wraps io.EOF, masking corruption", err)
	}

	// ReadAll must surface the corruption rather than return a short trace.
	if _, err := ReadAll(bytes.NewReader(raw)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadAll on truncated trace err = %v, want ErrTruncated", err)
	}
}

func TestRecordFromGenerator(t *testing.T) {
	cfg := workload.Mixes(1<<20, 4096, workload.Uniform, 5)[4]
	gen, err := workload.NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Record(&buf, gen, 100); err != nil {
		t.Fatal(err)
	}
	reqs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 100 {
		t.Fatalf("recorded %d", len(reqs))
	}
	// Same-seed generator reproduces the trace.
	gen2, _ := workload.NewSynthetic(cfg)
	for i, r := range reqs {
		if want := gen2.Next(); r != want {
			t.Fatalf("record %d: %+v != %+v", i, r, want)
		}
	}
}

func TestReplayer(t *testing.T) {
	reqs := []workload.Request{{Off: 0, Size: 128}, {Off: 4096, Size: 64}}
	r, err := NewReplayer("test", 1<<20, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "trace:test" || r.FileSize() != 1<<20 || r.Len() != 2 {
		t.Fatalf("replayer metadata wrong")
	}
	// Cycles.
	for i := 0; i < 5; i++ {
		if got := r.Next(); got != reqs[i%2] {
			t.Fatalf("replay %d: %+v", i, got)
		}
	}
	// Validation.
	if _, err := NewReplayer("x", 100, reqs); err == nil {
		t.Error("out-of-file trace accepted")
	}
	if _, err := NewReplayer("x", 100, nil); err == nil {
		t.Error("empty trace accepted")
	}
}
