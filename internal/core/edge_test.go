package core

import (
	"bytes"
	"testing"

	"pipette/internal/extfs"
	"pipette/internal/vfs"
)

func TestMultiFileTablesIndependent(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 1
	s := newStack(t, cfg, 64, 1<<20)
	f2, err := s.v.Create("other", 1<<20, extfs.CreateOpts{Preload: true}, vfs.ReadWrite|vfs.FineGrained)
	if err != nil {
		t.Fatal(err)
	}
	// Same offset in both files: distinct content, distinct cache entries.
	buf1 := s.read(t, 4096, 128)
	buf2 := make([]byte, 128)
	done, err := f2.ReadFull(s.now, buf2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	s.now = done
	if bytes.Equal(buf1, buf2) {
		t.Fatal("two preloaded files returned identical content at the same offset")
	}
	// A write to file 2 must not invalidate file 1's entry.
	invBefore := s.p.Stats().Invalidations
	if _, done, err := f2.WriteAt(s.now, []byte("x"), 4100); err != nil {
		t.Fatal(err)
	} else {
		s.now = done
	}
	if s.p.Stats().Invalidations != invBefore+1 {
		t.Fatalf("invalidations = %d, want exactly one", s.p.Stats().Invalidations-invBefore)
	}
	// File 1's range still hits.
	hitsBefore := s.p.CacheStats().Hits
	got := s.read(t, 4096, 128)
	if !bytes.Equal(got, buf1) {
		t.Fatal("file 1 content changed")
	}
	if s.p.CacheStats().Hits != hitsBefore+1 {
		t.Fatal("file 1 entry was invalidated by file 2's write")
	}
}

func TestPageCacheFloorRespected(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 1
	cfg.AdaptWindow = 1 << 60
	cfg.PageCacheFloorPages = 6
	cfg.OverflowMaxBytes = 1 << 20
	s := newStack(t, cfg, 8 /* page cache barely above floor */, 4<<20)
	// Hammer enough distinct small ranges to exhaust the arena and demand
	// migrations; the page cache must never shrink below the floor.
	for i := 0; i < 3000; i++ {
		s.read(t, int64(i)*1024, 100)
		if got := s.v.PageCache().Capacity(); got < cfg.PageCacheFloorPages {
			t.Fatalf("page cache capacity %d below floor %d", got, cfg.PageCacheFloorPages)
		}
	}
}

func TestOverflowBoundEnforced(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 1
	cfg.AdaptWindow = 1 << 60
	cfg.MaintenanceEvery = 64
	cfg.ReassignStages = 1
	cfg.OverflowMaxBytes = 16 << 10
	s := newStack(t, cfg, 64, 4<<20)
	// Build multi-class occupancy, then churn so reassignment and
	// migration push items to overflow repeatedly.
	for i := 0; i < 300; i++ {
		s.read(t, int64(i)*2048, 1024)
	}
	for i := 0; i < 4000; i++ {
		s.read(t, int64(i)*128, 100)
	}
	st := s.p.Stats()
	if st.Migrations == 0 && st.Reassignments == 0 {
		t.Skip("no overflow producers fired at this size")
	}
	// MemoryBytes = arena use + overflow; overflow alone is bounded.
	if over := int(s.p.MemoryBytes()) - s.p.Allocator().UsedBytes(); over > cfg.OverflowMaxBytes {
		t.Fatalf("overflow %d exceeds bound %d", over, cfg.OverflowMaxBytes)
	}
}

func TestGhostSurvivesEviction(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 2
	cfg.AdaptWindow = 1 << 60
	cfg.OverflowMaxBytes = 0
	s := newStack(t, cfg, 64, 4<<20)

	// Admit a range (two accesses at T=2).
	s.read(t, 0, 100)
	s.read(t, 0, 100)
	if s.p.Stats().Admissions != 1 {
		t.Fatalf("setup: %+v", s.p.Stats())
	}
	// Evict it with arena pressure from distinct ranges.
	pressure := (64 << 10) / 128 * 2
	for i := 1; i <= pressure; i++ {
		s.read(t, int64(i)*2048, 100)
		s.read(t, int64(i)*2048, 100)
	}
	if s.p.Stats().Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	// The original range's ghost kept its reference count: a single access
	// re-admits immediately (refCount 3 >= T=2), rather than bouncing
	// through the TempBuf again.
	adBefore := s.p.Stats().Admissions
	s.read(t, 0, 100)
	st := s.p.Stats()
	if st.Admissions != adBefore+1 {
		t.Fatalf("evicted range not re-admitted on first touch: %+v", st)
	}
}

func TestInfoRingNeverOverflowsSynchronously(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.HMB.InfoSlots = 2 // minimal ring: one usable slot
	cfg.InitialThreshold = 1
	s := newStack(t, cfg, 64, 1<<20)
	// Synchronous operation: each fine read pushes and the device consumes
	// before the next; even a one-slot ring suffices.
	for i := 0; i < 50; i++ {
		got := s.read(t, int64(i)*4096, 64)
		want := s.oracle(t, int64(i)*4096, 64)
		if !bytes.Equal(got, want) {
			t.Fatalf("read %d wrong", i)
		}
	}
	if s.p.Region().Info().Pending() != 0 {
		t.Fatal("records left pending")
	}
}

func TestDeclinedReadsDoNotTouchDetector(t *testing.T) {
	cfg := smallCoreConfig()
	s := newStack(t, cfg, 64, 1<<20)
	// 4 KiB reads are declined by the Dispatcher; they must not count as
	// fine accesses or create table entries. Stride past the read-ahead
	// window so every read actually reaches the router.
	for i := 0; i < 20; i++ {
		s.read(t, int64(i)*5*4096, 4096)
	}
	if s.p.CacheStats().Accesses != 0 {
		t.Fatalf("declined reads counted as fine accesses: %+v", s.p.CacheStats())
	}
	if got := s.p.Stats().Declined; got != 20 {
		t.Fatalf("Declined = %d", got)
	}
}
