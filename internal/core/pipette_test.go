package core

import (
	"bytes"
	"testing"

	"pipette/internal/blockdev"
	"pipette/internal/extfs"
	"pipette/internal/hmb"
	"pipette/internal/nvme"
	"pipette/internal/sim"
	"pipette/internal/ssd"
	"pipette/internal/vfs"
)

// stack bundles a full simulated system for tests.
type stack struct {
	ctrl *ssd.Controller
	v    *vfs.VFS
	p    *Pipette
	f    *vfs.File
	now  sim.Time
}

func smallCoreConfig() Config {
	cfg := DefaultConfig()
	cfg.HMB = hmb.Config{DataBytes: 64 << 10, TempBufBytes: 16 << 10, TempSlot: 4096, InfoSlots: 64}
	cfg.SlabSize = 8 << 10
	cfg.ItemSizes = []int{64, 128, 256, 512, 1024, 2048, 4096}
	cfg.AdaptWindow = 64
	cfg.MaintenanceEvery = 256
	cfg.PageCacheFloorPages = 4
	cfg.OverflowMaxBytes = 32 << 10
	return cfg
}

func newStack(t testing.TB, coreCfg Config, pcPages int, fileSize int64) *stack {
	t.Helper()
	scfg := ssd.DefaultConfig()
	scfg.NAND.Channels = 2
	scfg.NAND.WaysPerChannel = 2
	scfg.NAND.PlanesPerDie = 1
	scfg.NAND.BlocksPerPlane = 64
	scfg.NAND.PagesPerBlock = 64
	ctrl, err := ssd.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	drv := nvme.NewDriver(ctrl, 64, nvme.DefaultCosts())
	blk, err := blockdev.New(drv, ctrl.PageSize(), blockdev.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fs := extfs.New(ctrl)
	vcfg := vfs.DefaultConfig()
	vcfg.PageCachePages = pcPages
	v, err := vfs.New(fs, blk, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(v, drv, coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := v.Create("data", fileSize, extfs.CreateOpts{Preload: true},
		vfs.ReadWrite|vfs.FineGrained)
	if err != nil {
		t.Fatal(err)
	}
	return &stack{ctrl: ctrl, v: v, p: p, f: f}
}

func (s *stack) read(t testing.TB, off int64, n int) []byte {
	t.Helper()
	buf := make([]byte, n)
	done, err := s.f.ReadFull(s.now, buf, off)
	if err != nil {
		t.Fatalf("read(%d,%d): %v", off, n, err)
	}
	if done < s.now {
		t.Fatal("time went backwards")
	}
	s.now = done
	return buf
}

func (s *stack) oracle(t testing.TB, off int64, n int) []byte {
	t.Helper()
	want := make([]byte, n)
	if err := s.v.FS().Peek(s.f.Inode(), off, want); err != nil {
		t.Fatal(err)
	}
	return want
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mut := []func(*Config){
		func(c *Config) { c.FineMaxBytes = 0 },
		func(c *Config) { c.MinThreshold = 0 },
		func(c *Config) { c.InitialThreshold = 99 },
		func(c *Config) { c.AdaptWindow = 0 },
		func(c *Config) { c.MinReuseRatio = 0.9; c.MaxReuseRatio = 0.1 },
		func(c *Config) { c.ReassignStages = 0 },
		func(c *Config) { c.MaintenanceEvery = 0 },
		func(c *Config) { c.PageCacheFloorPages = -1 },
		func(c *Config) { c.OverflowMaxBytes = -1 },
		func(c *Config) { c.SlabSize = 0 },
	}
	for i, m := range mut {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewRejectsSmallTempSlot(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.HMB.TempSlot = 128
	cfg.FineMaxBytes = 2048
	s := newStackNoPipette(t)
	if _, err := New(s.v, s.drvKeep, cfg); err == nil {
		t.Fatal("TempSlot < FineMaxBytes accepted")
	}
}

// newStackNoPipette builds the stack without the framework, for
// construction-error tests.
type bareStack struct {
	v       *vfs.VFS
	drvKeep *nvme.Driver
}

func newStackNoPipette(t testing.TB) *bareStack {
	t.Helper()
	scfg := ssd.DefaultConfig()
	scfg.NAND.Channels = 2
	scfg.NAND.WaysPerChannel = 1
	scfg.NAND.PlanesPerDie = 1
	scfg.NAND.BlocksPerPlane = 16
	scfg.NAND.PagesPerBlock = 16
	ctrl, err := ssd.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	drv := nvme.NewDriver(ctrl, 16, nvme.DefaultCosts())
	blk, err := blockdev.New(drv, ctrl.PageSize(), blockdev.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	v, err := vfs.New(extfs.New(ctrl), blk, vfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &bareStack{v: v, drvKeep: drv}
}

func TestFineReadCorrectness(t *testing.T) {
	s := newStack(t, smallCoreConfig(), 64, 1<<20)
	for _, tc := range []struct {
		off int64
		n   int
	}{{0, 128}, {777, 64}, {4096 - 16, 32} /* cross-page */, {1<<20 - 128, 128}} {
		got := s.read(t, tc.off, tc.n)
		if !bytes.Equal(got, s.oracle(t, tc.off, tc.n)) {
			t.Fatalf("fine read (%d,%d) mismatch", tc.off, tc.n)
		}
	}
	if s.p.Stats().FineReads != 4 {
		t.Fatalf("FineReads = %d", s.p.Stats().FineReads)
	}
}

func TestDispatcherDeclinesLargeReads(t *testing.T) {
	s := newStack(t, smallCoreConfig(), 64, 1<<20)
	got := s.read(t, 0, 4096) // 4096 > FineMaxBytes 2048
	if !bytes.Equal(got, s.oracle(t, 0, 4096)) {
		t.Fatal("block-path fallback wrong data")
	}
	st := s.p.Stats()
	if st.Declined != 1 || st.FineReads != 0 {
		t.Fatalf("stats %+v", st)
	}
	// The block path promoted the page.
	if s.v.PageCache().Len() == 0 {
		t.Fatal("declined read did not use the block path")
	}
}

func TestThresholdAdmission(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 2
	cfg.AdaptWindow = 1 << 60 // never adapt in this test
	s := newStack(t, cfg, 64, 1<<20)

	// First access: below threshold -> TempBuf, not cached.
	s.read(t, 0, 128)
	st := s.p.Stats()
	if st.TempBypasses != 1 || st.Admissions != 0 {
		t.Fatalf("after 1st: %+v", st)
	}
	// Second access: reference count reaches 2 -> admitted.
	s.read(t, 0, 128)
	st = s.p.Stats()
	if st.Admissions != 1 {
		t.Fatalf("after 2nd: %+v", st)
	}
	cs := s.p.CacheStats()
	if cs.Hits != 0 || cs.Accesses != 2 {
		t.Fatalf("cache stats %+v", cs)
	}
	// Third access: hit.
	before := s.now
	s.read(t, 0, 128)
	cs = s.p.CacheStats()
	if cs.Hits != 1 {
		t.Fatalf("3rd access no hit: %+v", cs)
	}
	if hitLat := s.now - before; hitLat > 10*sim.Microsecond {
		t.Fatalf("hit latency %v too slow", hitLat)
	}
}

func TestTrafficCountsOnlyDemandedBytes(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 1 // admit immediately
	s := newStack(t, cfg, 64, 1<<20)
	s.read(t, 4096, 128) // miss: fetch 128 B
	s.read(t, 4096, 128) // hit: no traffic
	io := s.p.IO()
	if io.BytesTransferred != 128 {
		t.Fatalf("fine traffic = %d, want 128", io.BytesTransferred)
	}
	if s.v.IO().BytesTransferred != 0 {
		t.Fatal("fine path leaked block traffic")
	}
}

func TestContainmentHit(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 1
	s := newStack(t, cfg, 64, 1<<20)
	s.read(t, 1024, 512) // cache [1024,1536)
	got := s.read(t, 1100, 64)
	if !bytes.Equal(got, s.oracle(t, 1100, 64)) {
		t.Fatal("containment hit wrong data")
	}
	cs := s.p.CacheStats()
	if cs.Hits != 1 {
		t.Fatalf("inner read did not hit covering entry: %+v", cs)
	}
	if s.p.IO().BytesTransferred != 512 {
		t.Fatalf("traffic = %d, want 512", s.p.IO().BytesTransferred)
	}
}

func TestWriteInvalidation(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 1
	s := newStack(t, cfg, 64, 1<<20)
	s.read(t, 2048, 128) // cached
	s.read(t, 2048, 128) // hit
	if s.p.CacheStats().Hits != 1 {
		t.Fatal("setup: no hit")
	}
	// Overwrite part of the range.
	payload := []byte("NEWDATA!")
	if _, done, err := s.f.WriteAt(s.now, payload, 2100); err != nil {
		t.Fatal(err)
	} else {
		s.now = done
	}
	if s.p.Stats().Invalidations != 1 {
		t.Fatalf("Invalidations = %d", s.p.Stats().Invalidations)
	}
	// Read now: the page cache holds the dirty page, so the VFS serves the
	// NEW data (consistency guarantee).
	got := s.read(t, 2100, 8)
	if !bytes.Equal(got, payload) {
		t.Fatalf("read after write = %q", got)
	}
	// Flush and drop the page cache: the fine path must now fetch fresh
	// data from flash (the stale cache item is gone).
	if done, err := s.f.Sync(s.now); err != nil {
		t.Fatal(err)
	} else {
		s.now = done
	}
	if err := s.v.PageCache().Resize(0); err != nil {
		t.Fatal(err)
	}
	if err := s.v.PageCache().Resize(64); err != nil {
		t.Fatal(err)
	}
	got = s.read(t, 2100, 8)
	if !bytes.Equal(got, payload) {
		t.Fatalf("post-flush fine read = %q, want %q (stale cache?)", got, payload)
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 1
	cfg.AdaptWindow = 1 << 60 // keep the threshold pinned at 1
	cfg.OverflowMaxBytes = 0  // no migration: only solution 1
	s := newStack(t, cfg, 64, 4<<20)
	// 64 KiB arena of 128 B-class items (one class used): pressure it with
	// 4x as many distinct ranges.
	ranges := (64 << 10) / 128 * 4
	for i := 0; i < ranges; i++ {
		s.read(t, int64(i)*128, 100)
	}
	st := s.p.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under 4x pressure: %+v", st)
	}
	if st.Migrations != 0 {
		t.Fatalf("migration happened with OverflowMaxBytes=0: %+v", st)
	}
	// Data correctness survives churn.
	got := s.read(t, 640, 100)
	if !bytes.Equal(got, s.oracle(t, 640, 100)) {
		t.Fatal("post-churn read wrong")
	}
}

func TestMigrationShrinksPageCache(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 1
	cfg.AdaptWindow = 1 << 60 // keep the threshold pinned at 1
	cfg.OverflowMaxBytes = 1 << 20
	cfg.PageCacheFloorPages = 2
	s := newStack(t, cfg, 64, 4<<20)

	// Never touch the page cache (fg ratio >= pc ratio = 0), and create
	// pressure in the 128 class while another class holds several slabs.
	for i := 0; i < 200; i++ {
		s.read(t, int64(i)*2048, 1024) // 1024-class fills slabs
	}
	for i := 0; i < 4000; i++ {
		s.read(t, int64(i)*128, 100) // 128-class pressure
	}
	st := s.p.Stats()
	if st.Migrations == 0 {
		t.Fatalf("no migrations: %+v", st)
	}
	if got := s.v.PageCache().Capacity(); got >= 64 {
		t.Fatalf("page cache capacity %d not shrunk by migration", got)
	}
	if s.p.MemoryBytes() == 0 {
		t.Fatal("memory accounting empty")
	}
}

func TestDisableCache(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 1
	s := newStack(t, cfg, 64, 1<<20)
	s.p.DisableCache()
	for i := 0; i < 10; i++ {
		got := s.read(t, 512, 128) // same range every time
		if !bytes.Equal(got, s.oracle(t, 512, 128)) {
			t.Fatal("no-cache read wrong")
		}
	}
	st := s.p.Stats()
	if st.Admissions != 0 || st.TempBypasses != 10 {
		t.Fatalf("no-cache stats %+v", st)
	}
	// Every read paid device traffic.
	if s.p.IO().BytesTransferred != 10*128 {
		t.Fatalf("traffic = %d", s.p.IO().BytesTransferred)
	}
}

func TestAdaptiveThresholdMoves(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.AdaptWindow = 32
	cfg.InitialThreshold = 2
	s := newStack(t, cfg, 64, 8<<20)

	// Phase 1: zero reuse — all-distinct ranges. Threshold must rise.
	for i := 0; i < 256; i++ {
		s.read(t, int64(i)*4096, 64)
	}
	if s.p.Threshold() <= 2 {
		t.Fatalf("threshold %d did not rise under zero reuse", s.p.Threshold())
	}
	if s.p.Stats().ThresholdUps == 0 {
		t.Fatal("no threshold-up events")
	}

	// Phase 2: heavy reuse — hammer a handful of ranges. Threshold falls.
	for i := 0; i < 512; i++ {
		s.read(t, int64(i%4)*4096, 64)
	}
	if s.p.Threshold() != cfg.MinThreshold {
		t.Fatalf("threshold %d did not fall to min under heavy reuse", s.p.Threshold())
	}
	if s.p.Stats().ThresholdDown == 0 {
		t.Fatal("no threshold-down events")
	}
}

func TestMaintenanceReassignment(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 1
	cfg.MaintenanceEvery = 1 << 60 // drive ticks manually
	cfg.ReassignStages = 2
	s := newStack(t, cfg, 64, 4<<20)

	// Give the 1024 class several slabs, then go idle on it.
	for i := 0; i < 40; i++ {
		s.read(t, int64(i)*2048, 1024)
	}
	cls1024, _ := s.p.Allocator().ClassFor(1024)
	before := s.p.Allocator().SlabCount(cls1024)
	if before < 2 {
		t.Fatalf("setup: class owns %d slabs", before)
	}
	freeBefore := s.p.Allocator().FreeSlabs()
	// Two idle stages trigger reassignment of one slab.
	s.p.MaintenanceTick()
	s.p.MaintenanceTick()
	if s.p.Stats().Reassignments == 0 {
		t.Fatal("no reassignment after idle stages")
	}
	if got := s.p.Allocator().SlabCount(cls1024); got >= before {
		t.Fatalf("class slabs %d, want < %d", got, before)
	}
	if s.p.Allocator().FreeSlabs() <= freeBefore {
		t.Fatal("reassigned slab did not reach the free pool")
	}
	// Data in the reassigned slab still readable (overflow serves it).
	got := s.read(t, 0, 1024)
	if !bytes.Equal(got, s.oracle(t, 0, 1024)) {
		t.Fatal("post-reassignment read wrong")
	}
}

func TestRepromotionFromOverflow(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 1
	cfg.MaintenanceEvery = 1 << 60
	cfg.ReassignStages = 1
	s := newStack(t, cfg, 64, 4<<20)
	for i := 0; i < 40; i++ {
		s.read(t, int64(i)*2048, 1024)
	}
	s.p.MaintenanceTick() // forces a reassignment -> overflow entries
	if s.p.Stats().Reassignments == 0 {
		t.Skip("no reassignment; nothing in overflow")
	}
	repBefore := s.p.Stats().Repromotions
	// Touch everything; overflow hits repromote when arena space allows.
	for i := 0; i < 40; i++ {
		s.read(t, int64(i)*2048, 1024)
	}
	if s.p.Stats().Repromotions == repBefore {
		t.Fatal("no repromotions on overflow hits")
	}
}

func TestFineReadsSkipPageCachePollution(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 1
	s := newStack(t, cfg, 64, 1<<20)
	for i := 0; i < 50; i++ {
		s.read(t, int64(i)*4096, 128)
	}
	if n := s.v.PageCache().Len(); n != 0 {
		t.Fatalf("fine reads promoted %d pages into the page cache", n)
	}
}

func TestMemoryAccounting(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 1
	s := newStack(t, cfg, 64, 1<<20)
	if s.p.MemoryBytes() != 0 {
		t.Fatal("fresh framework reports memory")
	}
	s.read(t, 0, 128)
	if s.p.MemoryBytes() == 0 {
		t.Fatal("admission not reflected in memory")
	}
}
