package core

import "pipette/internal/slab"

// This file holds the three adaptive policies of §3.2: threshold
// adaptation (§3.2.2), slab reassignment (§3.2.3), and the dynamic
// allocation strategy (§3.2.4).

// afterAccess runs the periodic policy work owed after each fine access.
func (p *Pipette) afterAccess() {
	if p.winAccess >= p.cfg.AdaptWindow {
		p.adaptThreshold()
	}
	if p.sinceMaint >= p.cfg.MaintenanceEvery {
		p.sinceMaint = 0
		p.MaintenanceTick()
	}
}

// adaptThreshold closes one adaptation window (§3.2.2): the reuse ratio —
// repeated fine accesses over all fine accesses — drives the admission
// threshold. Low reuse raises the threshold (cache less; cold data would
// only pollute the arena); high reuse lowers it (promote eagerly).
func (p *Pipette) adaptThreshold() {
	ratio := float64(p.winReuse) / float64(p.winAccess)
	switch {
	case ratio < p.cfg.MinReuseRatio && p.threshold < p.cfg.MaxThreshold:
		p.threshold++
		p.stats.ThresholdUps++
	case ratio > p.cfg.MaxReuseRatio && p.threshold > p.cfg.MinThreshold:
		p.threshold--
		p.stats.ThresholdDown++
	}
	p.winAccess, p.winReuse = 0, 0
}

// allocItem obtains a Data Area item for n bytes, applying the dynamic
// allocation strategy when the arena is exhausted.
func (p *Pipette) allocItem(n int) (slab.Ref, bool) {
	cls, ok := p.alloc.ClassFor(n)
	if !ok {
		return slab.Ref{}, false
	}
	if ref, ok := p.alloc.TryAlloc(cls); ok {
		return ref, true
	}
	if !p.makeRoom(cls) {
		return slab.Ref{}, false
	}
	return p.alloc.TryAlloc(cls)
}

// makeRoom implements §3.2.4: compare the two caches' hit ratios. If the
// fine cache is winning, prefer solution 2 (migrate a random donor class's
// slab out of the arena, effectively growing the fine cache at the page
// cache's expense); otherwise solution 1 (evict the class's LRU item).
func (p *Pipette) makeRoom(cls int) bool {
	fineWins := p.fg.HitRatio() >= p.v.PageCache().HitRatio()
	if fineWins && p.migrateFrom(cls) {
		return true
	}
	if ref, ok := p.alloc.EvictLRU(cls); ok {
		p.stats.Evictions++
		p.fg.Evictions++
		if e, tracked := p.bySlabOff[ref.Off]; tracked {
			delete(p.bySlabOff, ref.Off)
			// Keep the ghost: its reference count survives so a re-read
			// re-admits without starting from zero.
			e.state = stateGhost
			e.slabOff, e.slabCls = 0, 0
		}
		return true
	}
	// The class owns no evictable item (it has no slab yet): migration is
	// the only option regardless of the ratio comparison.
	return p.migrateFrom(cls)
}

// migrateFrom performs solution 2 of §3.2.1: pick a random donor class with
// more than one slab, detach its emptiest slab, and move the live items to
// memory outside the fine-grained read cache arena. The freed slab returns
// to the pool for the requesting class. The shared-memory budget shifts:
// the page cache shrinks by the bytes now held in overflow.
func (p *Pipette) migrateFrom(exclude int) bool {
	if p.overBytes+p.cfg.SlabSize > p.cfg.OverflowMaxBytes {
		return false
	}
	// The page cache may not shrink below its floor.
	wantPC := p.basePCPages - (p.overBytes+p.cfg.SlabSize+p.pageSize-1)/p.pageSize
	if wantPC < p.cfg.PageCacheFloorPages {
		return false
	}
	donor, ok := p.alloc.DonorClass(p.rng.Uint64(), exclude)
	if !ok {
		return false
	}
	if !p.detachToOverflow(donor) {
		return false
	}
	p.stats.Migrations++
	p.syncBudget()
	p.trimOverflow()
	return true
}

// detachToOverflow moves one victim slab of a class out of the arena,
// relocating its live items to overflow memory and recording the before/
// after locations (the entry's slab offset becomes an overflow buffer).
func (p *Pipette) detachToOverflow(cls int) bool {
	victim, ok := p.alloc.VictimSlab(cls)
	if !ok {
		return false
	}
	refs, err := p.alloc.DetachSlab(cls, victim)
	if err != nil {
		return false
	}
	for _, ref := range refs {
		e, tracked := p.bySlabOff[ref.Off]
		if !tracked {
			continue
		}
		delete(p.bySlabOff, ref.Off)
		data := make([]byte, e.key.n)
		_ = p.region.ReadAt(ref.Off, data)
		e.state = stateOverflow
		e.slabOff, e.slabCls = 0, 0
		e.data = data
		e.overElem = p.overflow.PushBack(e)
		p.overBytes += len(data)
	}
	return true
}

// trimOverflow enforces the overflow bound by dropping the oldest migrated
// items (they decay to ghosts, keeping their reference counts).
func (p *Pipette) trimOverflow() {
	for p.overBytes > p.cfg.OverflowMaxBytes && p.overflow.Len() > 0 {
		e := p.overflow.Front().Value.(*entry)
		p.removeOverflow(e)
		e.state = stateGhost
		p.stats.OverflowDrops++
	}
	p.syncBudget()
}

// syncBudget rebalances the shared memory budget: every byte held in
// overflow is debited from the page cache's capacity, floored.
func (p *Pipette) syncBudget() {
	want := p.basePCPages - (p.overBytes+p.pageSize-1)/p.pageSize
	if want < p.cfg.PageCacheFloorPages {
		want = p.cfg.PageCacheFloorPages
	}
	if want != p.v.PageCache().Capacity() {
		_ = p.v.PageCache().Resize(want)
	}
}

// MaintenanceTick runs one stage of the §3.2.3 maintenance thread: a class
// whose eviction count has not moved for ReassignStages stages while
// holding more than one slab is not under pressure; its emptiest slab is
// reassigned — live data moves to spare memory and the slab returns to the
// free pool for classes that need it. In simulation the tick is driven
// deterministically (every MaintenanceEvery accesses); Runner drives it
// from a real goroutine for live use.
func (p *Pipette) MaintenanceTick() {
	for cls := 0; cls < p.alloc.Classes(); cls++ {
		ev := p.alloc.Evictions(cls)
		if ev == p.evictSnap[cls] && p.alloc.SlabCount(cls) > 1 {
			p.staleStages[cls]++
		} else {
			p.staleStages[cls] = 0
		}
		p.evictSnap[cls] = ev
		if p.staleStages[cls] >= p.cfg.ReassignStages {
			if p.detachToOverflow(cls) {
				p.stats.Reassignments++
				p.trimOverflow()
			}
			p.staleStages[cls] = 0
		}
	}
}
