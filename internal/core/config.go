// Package core implements Pipette, the paper's fine-grained read framework
// (§3): the Fine-Grained Access Detector, the Read Dispatcher, the
// Fine-Grained Access Constructor and Requester on the miss path, and the
// Fine-Grained Read Cache with its adaptive caching mechanism (§3.2.2),
// adaptive slab reassignment (§3.2.3), and dynamic allocation strategy
// arbitrating memory between the page cache and the fine cache (§3.2.4).
//
// The framework plugs into the VFS as a vfs.FineRouter: fine-grained reads
// that miss the page cache land in TryFineRead; writes invalidate
// overlapping cache items through OnWrite (§3.1.3).
package core

import (
	"errors"
	"fmt"

	"pipette/internal/hmb"
	"pipette/internal/sim"
	"pipette/internal/slab"
)

// Config tunes the framework. DefaultConfig matches the paper's prototype
// where it gives numbers and sensible engineering defaults elsewhere.
type Config struct {
	// FineMaxBytes is the Dispatcher's routing threshold: reads of at most
	// this many bytes take the byte-granular path; larger reads fall back
	// to the block path. Half a page by default.
	FineMaxBytes int

	// HMB sizes the shared host memory region (Info/Data/TempBuf areas).
	HMB hmb.Config
	// SlabSize and ItemSizes configure the Data Area allocator.
	SlabSize  int
	ItemSizes []int

	// Adaptive caching (§3.2.2): an item is admitted to the cache once its
	// reference count reaches the threshold; the threshold moves within
	// [MinThreshold, MaxThreshold] driven by the reuse ratio observed over
	// AdaptWindow fine accesses.
	InitialThreshold uint32
	MinThreshold     uint32
	MaxThreshold     uint32
	AdaptWindow      uint64
	MinReuseRatio    float64
	MaxReuseRatio    float64

	// Adaptive reassignment (§3.2.3): every MaintenanceEvery fine accesses
	// the maintenance logic runs one stage; a class whose eviction count
	// has not moved for ReassignStages stages donates a slab back to the
	// free pool.
	MaintenanceEvery uint64
	ReassignStages   int

	// Dynamic allocation (§3.2.4): when the fine cache wins the hit-ratio
	// comparison it may grow by migrating slabs, shrinking the page cache,
	// but never below PageCacheFloorPages. OverflowMaxBytes bounds the
	// out-of-cache region migrated data lives in.
	PageCacheFloorPages int
	OverflowMaxBytes    int

	// HitService is the host-side cost of serving a fine-cache hit
	// (lookup + copy). MissHostOverhead is the Constructor/Requester
	// software cost on top of the device command.
	HitService       sim.Time
	MissHostOverhead sim.Time

	// Seed drives the random donor-class pick of §3.2.1 solution 2.
	Seed uint64
}

// DefaultConfig returns the defaults described above.
func DefaultConfig() Config {
	return Config{
		FineMaxBytes:        2048,
		HMB:                 hmb.DefaultConfig(),
		SlabSize:            64 << 10,
		ItemSizes:           slab.DefaultItemSizes(),
		InitialThreshold:    1,
		MinThreshold:        1,
		MaxThreshold:        8,
		AdaptWindow:         512,
		MinReuseRatio:       0.1,
		MaxReuseRatio:       0.5,
		MaintenanceEvery:    8192,
		ReassignStages:      3,
		PageCacheFloorPages: 256,
		OverflowMaxBytes:    64 << 20,
		HitService:          500 * sim.Nanosecond,
		MissHostOverhead:    500 * sim.Nanosecond,
		Seed:                0x9153,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.FineMaxBytes <= 0:
		return errors.New("core: FineMaxBytes must be positive")
	case c.MinThreshold < 1:
		return errors.New("core: MinThreshold must be >= 1")
	case c.InitialThreshold < c.MinThreshold || c.InitialThreshold > c.MaxThreshold:
		return fmt.Errorf("core: InitialThreshold %d outside [%d,%d]",
			c.InitialThreshold, c.MinThreshold, c.MaxThreshold)
	case c.AdaptWindow == 0:
		return errors.New("core: AdaptWindow must be positive")
	case c.MinReuseRatio < 0 || c.MaxReuseRatio <= c.MinReuseRatio || c.MaxReuseRatio > 1:
		return fmt.Errorf("core: reuse ratios (%g,%g) invalid", c.MinReuseRatio, c.MaxReuseRatio)
	case c.ReassignStages < 1:
		return errors.New("core: ReassignStages must be >= 1")
	case c.MaintenanceEvery == 0:
		return errors.New("core: MaintenanceEvery must be positive")
	case c.PageCacheFloorPages < 0:
		return errors.New("core: negative page cache floor")
	case c.OverflowMaxBytes < 0:
		return errors.New("core: negative overflow bound")
	}
	if err := c.HMB.Validate(); err != nil {
		return err
	}
	sc := slab.Config{ArenaSize: c.HMB.DataBytes, SlabSize: c.SlabSize, ItemSizes: c.ItemSizes}
	return sc.Validate()
}

// Stats counts framework activity beyond the cache hit counters.
type Stats struct {
	FineReads     uint64 // reads taken by the fine path
	Declined      uint64 // reads routed back to the block path (too large)
	Admissions    uint64 // items admitted to the Data Area
	TempBypasses  uint64 // misses served via TempBuf (below threshold)
	Evictions     uint64 // solution-1 evictions
	Migrations    uint64 // solution-2 slab migrations
	Reassignments uint64 // §3.2.3 maintenance slab reassignments
	Invalidations uint64 // items deleted by the write hook
	OverflowDrops uint64 // overflow items dropped at the bound
	Repromotions  uint64 // overflow items moved back into the arena
	ThresholdUps  uint64
	ThresholdDown uint64
}
