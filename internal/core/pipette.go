package core

import (
	"container/list"
	"errors"
	"fmt"

	"pipette/internal/fault"
	"pipette/internal/hmb"
	"pipette/internal/metrics"
	"pipette/internal/nvme"
	"pipette/internal/sim"
	"pipette/internal/slab"
	"pipette/internal/ssd"
	"pipette/internal/telemetry"
	"pipette/internal/vfs"
)

// Pipette is the fine-grained read framework. It implements vfs.FineRouter.
// ResHostCache is the blame label for time served from the host-side
// fine-read cache (and the page cache above it) without touching the device.
const ResHostCache = "host.cache"

// Not safe for concurrent use (the simulation is single-threaded; see
// Runner for the wall-clock maintenance thread used outside simulation).
type Pipette struct {
	cfg      Config
	v        *vfs.VFS
	drv      *nvme.Driver
	ctrl     *ssd.Controller
	region   *hmb.Region
	alloc    *slab.Allocator
	pageSize int

	tables    map[uint64]*fileTable
	lastTbl   *fileTable // memo: fine reads hammer one file at a time
	bySlabOff map[int]*entry
	overflow  *list.List // FIFO of *entry in stateOverflow
	overBytes int

	lbaScratch []uint64 // Constructor scratch; safe to reuse, Submit is synchronous

	threshold  uint32
	winAccess  uint64
	winReuse   uint64
	sinceMaint uint64

	evictSnap   []uint64
	staleStages []int

	basePCPages int
	fg          metrics.Cache
	io          metrics.IO
	rng         *sim.RNG
	stats       Stats
	tr          telemetry.Tracer
	sa          *telemetry.StageAccount

	// Fault handling: with an injector armed the host validates fine-read
	// payloads and re-serves corrupted requests through the block path.
	inj       *fault.Injector
	fltRingFB telemetry.Counter
	fltDMAFB  telemetry.Counter

	cacheDisabled bool
}

// errFineFallback signals that the fine path detected corruption (a
// rejected Info-Area record or a DMA payload checksum mismatch) and the
// read must be re-served through the block path. TryFineRead translates it
// into "not handled", so the VFS's ordinary block fallback serves the
// request — slower, never wrong.
var errFineFallback = errors.New("core: fine path fell back")

var _ vfs.FineRouter = (*Pipette)(nil)

// New assembles the framework over an existing VFS and its device driver:
// it allocates the HMB region, performs the HMB handshake with the
// controller, builds the Data Area slab allocator, and installs itself as
// the VFS's fine router.
func New(v *vfs.VFS, drv *nvme.Driver, cfg Config) (*Pipette, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.HMB.TempSlot < cfg.FineMaxBytes {
		return nil, fmt.Errorf("core: TempSlot %d < FineMaxBytes %d", cfg.HMB.TempSlot, cfg.FineMaxBytes)
	}
	region, err := hmb.New(cfg.HMB)
	if err != nil {
		return nil, err
	}
	alloc, err := slab.New(slab.Config{
		ArenaSize: cfg.HMB.DataBytes,
		SlabSize:  cfg.SlabSize,
		ItemSizes: cfg.ItemSizes,
	})
	if err != nil {
		return nil, err
	}
	ctrl := v.FS().Controller()
	ctrl.EnableHMB(region)
	p := &Pipette{
		cfg:         cfg,
		v:           v,
		drv:         drv,
		ctrl:        ctrl,
		region:      region,
		alloc:       alloc,
		pageSize:    v.FS().PageSize(),
		tables:      make(map[uint64]*fileTable),
		bySlabOff:   make(map[int]*entry),
		overflow:    list.New(),
		threshold:   cfg.InitialThreshold,
		evictSnap:   make([]uint64, alloc.Classes()),
		staleStages: make([]int, alloc.Classes()),
		basePCPages: v.PageCache().Capacity(),
		rng:         sim.NewRNG(cfg.Seed),
		tr:          telemetry.Nop(),
	}
	v.SetRouter(p)
	return p, nil
}

// DisableCache switches the framework into the paper's "Pipette w/o cache"
// configuration: the byte-granular path stays, every read bounces through
// the TempBuf, nothing is admitted.
func (p *Pipette) DisableCache() { p.cacheDisabled = true }

// Threshold reports the current adaptive admission threshold.
func (p *Pipette) Threshold() uint32 { return p.threshold }

// OverflowBytes reports bytes resident in the overflow FIFO.
func (p *Pipette) OverflowBytes() int { return p.overBytes }

// SetTracer installs a tracer on the fine-grained read path.
func (p *Pipette) SetTracer(tr telemetry.Tracer) { p.tr = telemetry.OrNop(tr) }

// SetStages installs the per-request stage account; the framework
// attributes fine-cache hits, constructor work, and fallback waste.
func (p *Pipette) SetStages(sa *telemetry.StageAccount) { p.sa = sa }

// SetInjector arms the host side of fault handling: Info-Area records may
// corrupt in shared memory (the ring seals and verifies them), and fine-read
// DMA payloads are validated against the device's checksum. Wire the same
// injector into the controller (ssd.Controller.SetInjector) so both ends
// agree on when validation runs.
func (p *Pipette) SetInjector(inj *fault.Injector) {
	p.inj = inj
	p.region.Info().SetInjector(inj)
}

// RingFallbacks reports fine reads re-served via block I/O after the device
// rejected a corrupted Info-Area record.
func (p *Pipette) RingFallbacks() uint64 { return p.fltRingFB.Load() }

// DMAFallbacks reports fine reads re-served via block I/O after host-side
// payload validation caught in-flight DMA corruption.
func (p *Pipette) DMAFallbacks() uint64 { return p.fltDMAFB.Load() }

// Stats returns a copy of the framework counters.
func (p *Pipette) Stats() Stats { return p.stats }

// CacheStats returns the fine-grained read cache hit counters.
func (p *Pipette) CacheStats() metrics.Cache { return p.fg }

// IO returns fine-path traffic accounting (merged with the VFS's block
// traffic by the benchmark engines).
func (p *Pipette) IO() metrics.IO { return p.io }

// MemoryBytes reports resident fine-cache memory: arena slabs in use plus
// the overflow region — the paper's Table 4 metric.
func (p *Pipette) MemoryBytes() uint64 {
	return uint64(p.alloc.UsedBytes()) + uint64(p.overBytes)
}

// Region exposes the HMB region (tests and the ablation benches peek).
func (p *Pipette) Region() *hmb.Region { return p.region }

// Allocator exposes the Data Area allocator (telemetry).
func (p *Pipette) Allocator() *slab.Allocator { return p.alloc }

func (p *Pipette) table(ino uint64) *fileTable {
	if p.lastTbl != nil && p.lastTbl.ino == ino {
		return p.lastTbl
	}
	t, ok := p.tables[ino]
	if !ok {
		// The per-file hash lookup table is created on the file's first
		// fine-grained read (§3.1.2).
		t = newFileTable(ino)
		p.tables[ino] = t
	}
	p.lastTbl = t
	return t
}

// TryFineRead implements the fine-grained read path of §3.1.2: Detector ->
// Dispatcher -> cache lookup -> (on miss) Constructor + Requester -> Read
// Engine. The VFS has already tried the page cache.
func (p *Pipette) TryFineRead(now sim.Time, f *vfs.File, off int64, buf []byte) (sim.Time, bool, error) {
	n := len(buf)
	// Dispatcher: large reads take the conventional block path.
	if n > p.cfg.FineMaxBytes {
		p.stats.Declined++
		return now, false, nil
	}
	p.stats.FineReads++

	if p.cacheDisabled {
		done, err := p.fetchFine(now, f, off, buf, -1)
		if err != nil {
			if errors.Is(err, errFineFallback) {
				return p.fallBack(now, done), false, nil
			}
			return done, false, err
		}
		p.stats.TempBypasses++
		return done, true, nil
	}

	// Detector: record the access range (ghost entries give the adaptive
	// mechanism reference counts for data that is not cached yet).
	tbl := p.table(f.Inode().Ino)
	key := rangeKey{off: off, n: int32(n)}
	p.winAccess++
	p.sinceMaint++
	exact, seenExact := tbl.lookup(key)
	covering := tbl.findCovering(off, n, p.pageSize)
	if seenExact || covering != nil {
		p.winReuse++
	}

	if covering != nil {
		// Cache hit.
		p.fg.Record(true)
		covering.refCount++
		p.serveFrom(covering, off, buf)
		p.afterAccess()
		if p.tr.Enabled() {
			p.tr.Span(telemetry.TrackFine, "hit", now, now+p.cfg.HitService)
		}
		p.sa.MarkRes(telemetry.StageCache, now+p.cfg.HitService, ResHostCache)
		return now + p.cfg.HitService, true, nil
	}
	p.fg.Record(false)

	if !seenExact {
		exact = &entry{key: key, state: stateGhost, table: tbl}
		tbl.index(exact, p.pageSize)
	}
	exact.refCount++

	// Adaptive admission: cache once the reference count reaches the
	// threshold; below it, the TempBuf keeps cold data out of the arena.
	dest := -1
	var ref slab.Ref
	admitted := false
	if exact.refCount >= p.threshold {
		if r, ok := p.allocItem(n); ok {
			ref, dest, admitted = r, r.Off, true
		}
	}

	done, err := p.fetchFine(now, f, off, buf, dest)
	if err != nil {
		if admitted {
			_ = p.alloc.Release(ref)
		}
		if errors.Is(err, errFineFallback) {
			return p.fallBack(now, done), false, nil
		}
		return done, false, err
	}

	if admitted {
		exact.state = stateSlab
		exact.slabOff = ref.Off
		exact.slabCls = ref.Class
		p.bySlabOff[ref.Off] = exact
		p.fg.Insertions++
		p.stats.Admissions++
	} else {
		p.stats.TempBypasses++
		p.fg.Bypasses++
	}
	p.afterAccess()
	return done, true, nil
}

// fetchFine is the Constructor + Requester: extract the page LBAs (the
// filesystem extension bypassing the block layer), reserve the HMB
// destination, append the Info Area record, and submit the reconstructed
// vendor command. dest < 0 means "use the TempBuf". The demanded bytes are
// copied into buf from the DMA destination.
func (p *Pipette) fetchFine(now sim.Time, f *vfs.File, off int64, buf []byte, dest int) (sim.Time, error) {
	// The fine command reads LBAs directly, below the page cache: any dirty
	// page evicted since the last drain — including by this very request's
	// admission rebalancing a moment ago — must land on flash first, or the
	// fetch returns (and the cache admits) pre-writeback content.
	if _, err := p.v.FlushPendingWriteback(now); err != nil {
		return now, err
	}
	n := len(buf)
	lbas, err := f.Inode().AppendLBAs(p.lbaScratch[:0], off, n, p.pageSize)
	p.lbaScratch = lbas[:0]
	if err != nil {
		return now, err
	}
	if dest < 0 {
		d, err := p.region.AllocTemp(n)
		if err != nil {
			return now, err
		}
		dest = d
	}
	rec := hmb.InfoRecord{
		LBA:     lbas[0],
		ByteOff: int(off % int64(p.pageSize)),
		ByteLen: n,
		Dest:    dest,
	}
	if err := p.region.Info().Push(rec); err != nil {
		return now, fmt.Errorf("core: info ring: %w", err)
	}
	issueAt := now + p.cfg.MissHostOverhead
	p.sa.Mark(telemetry.StageConstruct, issueAt)
	comp, err := p.drv.Submit(issueAt, nvme.Command{
		Op:       nvme.OpFineRead,
		FineLBAs: lbas,
	})
	if err != nil {
		return now, fmt.Errorf("core: fine read submit: %w", err)
	}
	if !comp.Ok() {
		if comp.Status == nvme.StatusCorruptRing {
			p.fltRingFB.Inc()
			return comp.Done, errFineFallback
		}
		return comp.Done, fmt.Errorf("core: fine read failed: %w", comp.Status.Err())
	}
	p.io.FineReads++
	p.io.BytesTransferred += comp.BytesMoved
	if err := p.region.ReadAt(dest, buf); err != nil {
		return comp.Done, err
	}
	if p.inj.Enabled() && fault.Sum32(buf) != comp.PayloadSum {
		// In-flight DMA corruption: the landed bytes disagree with the
		// device's pre-transfer checksum. Discard and fall back.
		p.fltDMAFB.Inc()
		return comp.Done, errFineFallback
	}
	if p.tr.Enabled() {
		// Constructor + Requester host work before the command hits the wire.
		p.tr.Span(telemetry.TrackFine, "construct", now, now+p.cfg.MissHostOverhead)
	}
	return comp.Done, nil
}

// fallBack accounts a failed fine attempt whose time must still be charged:
// the VFS resumes its block path at the returned timestamp. The attempt's
// construct/ring/firmware/NAND/DMA time is wasted work, so everything
// attributed since the attempt began is re-labeled as retry — the
// conservation sum still holds while the waterfall shows the fallback cost.
func (p *Pipette) fallBack(now, done sim.Time) sim.Time {
	p.sa.Reattribute(now, telemetry.StageRetry)
	p.sa.Mark(telemetry.StageRetry, done)
	if p.tr.Enabled() {
		p.tr.Span(telemetry.TrackFine, "fault.fallback", now, done)
	}
	return done
}

// serveFrom copies the demanded window out of a cached entry and maintains
// recency.
func (p *Pipette) serveFrom(e *entry, off int64, buf []byte) {
	delta := int(off - e.key.off)
	switch e.state {
	case stateSlab:
		_ = p.region.ReadAt(e.slabOff+delta, buf)
		_ = p.alloc.Touch(slab.Ref{Off: e.slabOff, Class: e.slabCls})
	case stateOverflow:
		copy(buf, e.data[delta:])
		p.repromote(e)
	}
}

// repromote moves an overflow entry back into the arena when a free item
// is available without displacing anyone (TryAlloc only: repromotion must
// never trigger migration, or it could thrash).
func (p *Pipette) repromote(e *entry) {
	cls, ok := p.alloc.ClassFor(int(e.key.n))
	if !ok {
		return
	}
	ref, ok := p.alloc.TryAlloc(cls)
	if !ok {
		return
	}
	dst, err := p.region.Slice(ref.Off, int(e.key.n))
	if err != nil {
		_ = p.alloc.Release(ref)
		return
	}
	copy(dst, e.data)
	p.removeOverflow(e)
	e.state = stateSlab
	e.slabOff = ref.Off
	e.slabCls = ref.Class
	e.data = nil
	p.bySlabOff[ref.Off] = e
	p.stats.Repromotions++
	p.syncBudget()
}

// OnWrite implements the consistency rule of §3.1.3: every write deletes
// the overlapping fine-cache items, so subsequent fine reads see either the
// updated page cache or the flushed flash content.
func (p *Pipette) OnWrite(ino uint64, off int64, n int) {
	tbl, ok := p.tables[ino]
	if !ok {
		return
	}
	for _, e := range tbl.overlapping(off, n, p.pageSize) {
		p.deleteEntry(e)
		p.stats.Invalidations++
	}
	p.syncBudget()
}

// deleteEntry removes an entry entirely, releasing whatever backs it.
func (p *Pipette) deleteEntry(e *entry) {
	switch e.state {
	case stateSlab:
		delete(p.bySlabOff, e.slabOff)
		_ = p.alloc.Release(slab.Ref{Off: e.slabOff, Class: e.slabCls})
	case stateOverflow:
		p.removeOverflow(e)
	}
	e.table.unindex(e, p.pageSize)
}

func (p *Pipette) removeOverflow(e *entry) {
	if e.overElem != nil {
		p.overflow.Remove(e.overElem)
		e.overElem = nil
	}
	p.overBytes -= len(e.data)
	e.data = nil
}
