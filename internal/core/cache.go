package core

import (
	"container/list"
)

// entryState tracks where an access range's data lives.
type entryState uint8

const (
	stateGhost    entryState = iota // seen, not cached (reference counting only)
	stateSlab                       // cached in the Data Area arena
	stateOverflow                   // cached out-of-arena after a slab migration
)

// rangeKey identifies an access range within a file — the unit the
// per-file hash lookup table is keyed by.
type rangeKey struct {
	off int64
	n   int32
}

// entry is one tracked access range.
type entry struct {
	key   rangeKey
	state entryState

	refCount uint32 // compared against the adaptive threshold on access

	slabOff  int    // valid in stateSlab: arena offset of the item
	slabCls  int    // valid in stateSlab
	data     []byte // valid in stateOverflow
	overElem *list.Element

	table *fileTable
}

// fileTable is the per-file hash lookup table of §3.1.2 plus the per-page
// interval index used for write invalidation and containment hits.
type fileTable struct {
	ino     uint64
	entries map[rangeKey]*entry
	byPage  map[uint64]map[rangeKey]*entry
}

func newFileTable(ino uint64) *fileTable {
	return &fileTable{
		ino:     ino,
		entries: make(map[rangeKey]*entry),
		byPage:  make(map[uint64]map[rangeKey]*entry),
	}
}

// pages iterates the page indices a range touches.
func (k rangeKey) pages(pageSize int) (first, last uint64) {
	first = uint64(k.off) / uint64(pageSize)
	last = uint64(k.off+int64(k.n)-1) / uint64(pageSize)
	return first, last
}

// contains reports whether k fully covers [off, off+n).
func (k rangeKey) contains(off int64, n int) bool {
	return k.off <= off && off+int64(n) <= k.off+int64(k.n)
}

// overlaps reports whether k intersects [off, off+n).
func (k rangeKey) overlaps(off int64, n int) bool {
	return k.off < off+int64(n) && off < k.off+int64(k.n)
}

// index inserts e into the lookup table and the per-page index.
func (t *fileTable) index(e *entry, pageSize int) {
	t.entries[e.key] = e
	first, last := e.key.pages(pageSize)
	for p := first; p <= last; p++ {
		set, ok := t.byPage[p]
		if !ok {
			set = make(map[rangeKey]*entry)
			t.byPage[p] = set
		}
		set[e.key] = e
	}
}

// unindex removes e from both indexes.
func (t *fileTable) unindex(e *entry, pageSize int) {
	delete(t.entries, e.key)
	first, last := e.key.pages(pageSize)
	for p := first; p <= last; p++ {
		if set, ok := t.byPage[p]; ok {
			delete(set, e.key)
			if len(set) == 0 {
				delete(t.byPage, p)
			}
		}
	}
}

// findCovering locates a cached (non-ghost) entry whose range fully covers
// [off, off+n): the exact key if cached, else a containment scan over the
// entries touching the first page. This lets a small read hit a previously
// cached larger range.
func (t *fileTable) findCovering(off int64, n int, pageSize int) *entry {
	if e, ok := t.entries[rangeKey{off: off, n: int32(n)}]; ok && e.state != stateGhost {
		return e
	}
	first := uint64(off) / uint64(pageSize)
	for _, e := range t.byPage[first] {
		if e.state != stateGhost && e.key.contains(off, n) {
			return e
		}
	}
	return nil
}

// overlapping collects entries intersecting [off, off+n) — the write
// invalidation set.
func (t *fileTable) overlapping(off int64, n int, pageSize int) []*entry {
	first := uint64(off) / uint64(pageSize)
	last := uint64(off+int64(n)-1) / uint64(pageSize)
	seen := make(map[rangeKey]bool)
	var out []*entry
	for p := first; p <= last; p++ {
		for k, e := range t.byPage[p] {
			if !seen[k] && k.overlaps(off, n) {
				seen[k] = true
				out = append(out, e)
			}
		}
	}
	return out
}
