package core

import (
	"container/list"
)

// entryState tracks where an access range's data lives.
type entryState uint8

const (
	stateGhost    entryState = iota // seen, not cached (reference counting only)
	stateSlab                       // cached in the Data Area arena
	stateOverflow                   // cached out-of-arena after a slab migration
)

// rangeKey identifies an access range within a file — the unit the
// per-file hash lookup table is keyed by.
type rangeKey struct {
	off int64
	n   int32
}

// keyLenBits packs a range's length into the low bits of its uint64 map
// key. Fine ranges are at most FineMaxBytes <= one page (4 KiB), so 13 bits
// hold the length and offsets up to 2^51 bytes keep distinct keys.
const keyLenBits = 13

// packed folds the key into one uint64 so the lookup table hits the
// runtime's fast integer map path instead of the generic struct hasher.
func (k rangeKey) packed() uint64 {
	return uint64(k.off)<<keyLenBits | uint64(k.n)
}

// entry is one tracked access range.
type entry struct {
	key   rangeKey
	state entryState

	refCount uint32 // compared against the adaptive threshold on access

	slabOff  int    // valid in stateSlab: arena offset of the item
	slabCls  int    // valid in stateSlab
	data     []byte // valid in stateOverflow
	overElem *list.Element

	table *fileTable
}

// fileTable is the per-file hash lookup table of §3.1.2 plus the per-page
// interval index used for write invalidation and containment hits.
type fileTable struct {
	ino     uint64
	entries map[uint64]*entry   // packed rangeKey -> entry
	byPage  map[uint64][]*entry // page index -> entries touching the page
	scratch []*entry            // overlapping() result, reused per call
}

func newFileTable(ino uint64) *fileTable {
	return &fileTable{
		ino:     ino,
		entries: make(map[uint64]*entry),
		byPage:  make(map[uint64][]*entry),
	}
}

// pages iterates the page indices a range touches.
func (k rangeKey) pages(pageSize int) (first, last uint64) {
	first = uint64(k.off) / uint64(pageSize)
	last = uint64(k.off+int64(k.n)-1) / uint64(pageSize)
	return first, last
}

// contains reports whether k fully covers [off, off+n).
func (k rangeKey) contains(off int64, n int) bool {
	return k.off <= off && off+int64(n) <= k.off+int64(k.n)
}

// overlaps reports whether k intersects [off, off+n).
func (k rangeKey) overlaps(off int64, n int) bool {
	return k.off < off+int64(n) && off < k.off+int64(k.n)
}

// lookup returns the entry with exactly key k, if tracked.
func (t *fileTable) lookup(k rangeKey) (*entry, bool) {
	e, ok := t.entries[k.packed()]
	return e, ok
}

// index inserts e into the lookup table and the per-page index.
func (t *fileTable) index(e *entry, pageSize int) {
	t.entries[e.key.packed()] = e
	first, last := e.key.pages(pageSize)
	for p := first; p <= last; p++ {
		t.byPage[p] = append(t.byPage[p], e)
	}
}

// unindex removes e from both indexes.
func (t *fileTable) unindex(e *entry, pageSize int) {
	delete(t.entries, e.key.packed())
	first, last := e.key.pages(pageSize)
	for p := first; p <= last; p++ {
		set := t.byPage[p]
		for i, cand := range set {
			if cand == e {
				set[i] = set[len(set)-1]
				set[len(set)-1] = nil
				t.byPage[p] = set[:len(set)-1]
				break
			}
		}
		if len(t.byPage[p]) == 0 {
			delete(t.byPage, p)
		}
	}
}

// findCovering locates a cached (non-ghost) entry whose range fully covers
// [off, off+n): the exact key if cached, else a containment scan over the
// entries touching the first page. This lets a small read hit a previously
// cached larger range. The slice scan visits entries in a deterministic
// order, so ties resolve identically run to run.
func (t *fileTable) findCovering(off int64, n int, pageSize int) *entry {
	if e, ok := t.lookup(rangeKey{off: off, n: int32(n)}); ok && e.state != stateGhost {
		return e
	}
	first := uint64(off) / uint64(pageSize)
	for _, e := range t.byPage[first] {
		if e.state != stateGhost && e.key.contains(off, n) {
			return e
		}
	}
	return nil
}

// overlapping collects entries intersecting [off, off+n) — the write
// invalidation set. The result is table-owned scratch, valid until the next
// call. An entry spanning several pages is reported once: at the first page
// of the scan window that touches it.
func (t *fileTable) overlapping(off int64, n int, pageSize int) []*entry {
	first := uint64(off) / uint64(pageSize)
	last := uint64(off+int64(n)-1) / uint64(pageSize)
	out := t.scratch[:0]
	for p := first; p <= last; p++ {
		for _, e := range t.byPage[p] {
			ef, _ := e.key.pages(pageSize)
			if ef < first {
				ef = first
			}
			if p == ef && e.key.overlaps(off, n) {
				out = append(out, e)
			}
		}
	}
	t.scratch = out
	return out
}
