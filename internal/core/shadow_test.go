package core

import (
	"bytes"
	"testing"

	"pipette/internal/sim"
	"pipette/internal/vfs"
)

// shadowModel is the reference implementation every read is checked
// against: a plain byte slice holding what the file must contain.
type shadowModel struct {
	data []byte
}

func newShadow(t *testing.T, s *stack, size int64) *shadowModel {
	t.Helper()
	m := &shadowModel{data: make([]byte, size)}
	// Initial content is the preloaded device pattern.
	if err := s.v.FS().Peek(s.f.Inode(), 0, m.data); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestShadowModelFuzz drives the full stack — page cache, block path, fine
// path, write RMW, invalidation, sync, cache churn — with a deterministic
// random operation stream and cross-checks every read against the shadow.
// This is the strongest end-to-end consistency check in the repository: if
// any layer serves stale or corrupt bytes, some read diverges.
func TestShadowModelFuzz(t *testing.T) {
	const fileSize = 2 << 20
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 1
	s := newStack(t, cfg, 48 /* small page cache -> heavy churn */, fileSize)
	shadow := newShadow(t, s, fileSize)
	rng := sim.NewRNG(20260705)

	readBuf := make([]byte, 4096)
	for op := 0; op < 8000; op++ {
		off := int64(rng.Uint64n(fileSize - 4096))
		switch rng.Uint64n(10) {
		case 0, 1: // write a small range (RMW + invalidation path)
			n := int(rng.Uint64n(200)) + 1
			payload := make([]byte, n)
			for i := range payload {
				payload[i] = byte(rng.Uint64())
			}
			if _, done, err := s.f.WriteAt(s.now, payload, off); err != nil {
				t.Fatalf("op %d write: %v", op, err)
			} else {
				s.now = done
			}
			copy(shadow.data[off:], payload)
		case 2: // write a page-aligned full page
			aligned := off &^ 4095
			payload := make([]byte, 4096)
			for i := range payload {
				payload[i] = byte(rng.Uint64())
			}
			if _, done, err := s.f.WriteAt(s.now, payload, aligned); err != nil {
				t.Fatalf("op %d page write: %v", op, err)
			} else {
				s.now = done
			}
			copy(shadow.data[aligned:], payload)
		case 3: // fsync
			done, err := s.f.Sync(s.now)
			if err != nil {
				t.Fatalf("op %d sync: %v", op, err)
			}
			s.now = done
		case 4: // large read (block path)
			n := 2048 + int(rng.Uint64n(2048))
			got := readBuf[:n]
			done, err := s.f.ReadFull(s.now, got, off)
			if err != nil {
				t.Fatalf("op %d large read: %v", op, err)
			}
			s.now = done
			if !bytes.Equal(got, shadow.data[off:off+int64(n)]) {
				t.Fatalf("op %d: large read at %d diverged from shadow", op, off)
			}
		default: // fine read (sizes 1..512)
			n := 1 + int(rng.Uint64n(512))
			got := readBuf[:n]
			done, err := s.f.ReadFull(s.now, got, off)
			if err != nil {
				t.Fatalf("op %d fine read: %v", op, err)
			}
			s.now = done
			if !bytes.Equal(got, shadow.data[off:off+int64(n)]) {
				t.Fatalf("op %d: fine read (%d B) at %d diverged from shadow", op, n, off)
			}
		}
	}

	// The churn must actually have exercised the interesting machinery.
	st := s.p.Stats()
	if st.FineReads == 0 || st.Admissions == 0 || st.Invalidations == 0 {
		t.Fatalf("fuzz did not exercise the fine path: %+v", st)
	}
	cs := s.p.CacheStats()
	if cs.Hits == 0 {
		t.Fatal("fuzz never hit the fine cache")
	}
}

// TestShadowModelNoCacheVariant repeats the fuzz with the cache disabled:
// the byte path itself (Constructor -> Info Area -> Read Engine -> TempBuf)
// must be correct without any caching.
func TestShadowModelNoCacheVariant(t *testing.T) {
	const fileSize = 1 << 20
	cfg := smallCoreConfig()
	s := newStack(t, cfg, 32, fileSize)
	s.p.DisableCache()
	shadow := newShadow(t, s, fileSize)
	rng := sim.NewRNG(7777)

	for op := 0; op < 3000; op++ {
		off := int64(rng.Uint64n(fileSize - 600))
		if rng.Uint64n(5) == 0 {
			n := int(rng.Uint64n(100)) + 1
			payload := make([]byte, n)
			for i := range payload {
				payload[i] = byte(rng.Uint64())
			}
			if _, done, err := s.f.WriteAt(s.now, payload, off); err != nil {
				t.Fatalf("op %d write: %v", op, err)
			} else {
				s.now = done
			}
			copy(shadow.data[off:], payload)
			continue
		}
		n := 1 + int(rng.Uint64n(500))
		got := make([]byte, n)
		done, err := s.f.ReadFull(s.now, got, off)
		if err != nil {
			t.Fatalf("op %d read: %v", op, err)
		}
		s.now = done
		if !bytes.Equal(got, shadow.data[off:off+int64(n)]) {
			t.Fatalf("op %d: no-cache read diverged at %d (+%d)", op, off, n)
		}
	}
}

// TestShadowAcrossReopen checks that data survives file-handle churn: a
// second descriptor without FineGrained must see identical bytes through
// the block path.
func TestShadowAcrossReopen(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.InitialThreshold = 1
	s := newStack(t, cfg, 64, 1<<20)
	payload := []byte("written-through-fine-handle")
	if _, done, err := s.f.WriteAt(s.now, payload, 70000); err != nil {
		t.Fatal(err)
	} else {
		s.now = done
	}
	plain, err := s.v.Open("data", vfs.ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := plain.ReadFull(s.now, got, 70000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("block-path handle read %q", got)
	}
}
