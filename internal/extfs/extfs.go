// Package extfs is the Ext4-flavoured filesystem metadata layer: a flat
// namespace of inodes whose file pages map to device LBAs through extent
// lists, a bump block allocator, and the LBA Extractor — the paper's file
// system extension that resolves a fine-grained read's byte range straight
// to the physical pages holding it, bypassing the generic block layer
// (§3.1.2).
//
// Data movement lives elsewhere (vfs + blockdev); this package is pure
// mapping. Files are created at a fixed size, mirroring the preloaded
// datasets the paper's workloads read.
package extfs

import (
	"errors"
	"fmt"
	"sort"

	"pipette/internal/ftl"
	"pipette/internal/ssd"
)

// Extent maps a run of file pages to a run of device LBAs.
type Extent struct {
	FilePage uint64 // first file page index covered
	LBA      uint64 // device LBA backing FilePage
	Pages    uint64 // run length
}

// Inode is one file's metadata.
type Inode struct {
	Ino     uint64
	Name    string
	Size    int64
	Extents []Extent // sorted by FilePage, gapless, covering all pages
}

// Filesystem errors.
var (
	ErrExists    = errors.New("extfs: file exists")
	ErrNotFound  = errors.New("extfs: file not found")
	ErrBadRange  = errors.New("extfs: range outside file")
	ErrNoSpace   = errors.New("extfs: volume full")
	ErrBadParams = errors.New("extfs: invalid parameters")
)

// PageCount reports the number of pages the inode spans.
func (ino *Inode) PageCount(pageSize int) uint64 {
	return uint64((ino.Size + int64(pageSize) - 1) / int64(pageSize))
}

// PageToLBA resolves one file page index to its device LBA. The binary
// search is hand-rolled: this runs per page on every read path and the
// sort.Search closure costs show up in profiles.
func (ino *Inode) PageToLBA(page uint64) (uint64, error) {
	ext := ino.Extents
	lo, hi := 0, len(ext)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if page < ext[mid].FilePage+ext[mid].Pages {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo >= len(ext) || page < ext[lo].FilePage {
		return 0, fmt.Errorf("%w: page %d of %q", ErrBadRange, page, ino.Name)
	}
	return ext[lo].LBA + (page - ext[lo].FilePage), nil
}

// ExtractLBAs is the LBA Extractor: it returns the device LBAs of the pages
// covering the byte range [off, off+n), in file order.
func (ino *Inode) ExtractLBAs(off int64, n int, pageSize int) ([]uint64, error) {
	return ino.AppendLBAs(nil, off, n, pageSize)
}

// AppendLBAs is ExtractLBAs appending to a caller-owned slice — the
// allocation-free form the fine-read hot path uses with a reused scratch.
func (ino *Inode) AppendLBAs(dst []uint64, off int64, n int, pageSize int) ([]uint64, error) {
	if off < 0 || n <= 0 || off+int64(n) > ino.Size {
		return dst, fmt.Errorf("%w: [%d,+%d) of %q (size %d)", ErrBadRange, off, n, ino.Name, ino.Size)
	}
	first := uint64(off) / uint64(pageSize)
	last := uint64(off+int64(n)-1) / uint64(pageSize)
	for p := first; p <= last; p++ {
		lba, err := ino.PageToLBA(p)
		if err != nil {
			return dst, err
		}
		dst = append(dst, lba)
	}
	return dst, nil
}

// CreateOpts tunes file creation.
type CreateOpts struct {
	// Preload fills the file's pages with deterministic device content at
	// zero virtual cost (the benchmark datasets). Without it, pages are
	// left unmapped until written.
	Preload bool
	// ExtentPages fragments the file into extents of at most this many
	// pages with a one-page skip between them, exercising multi-extent
	// mapping. 0 allocates one contiguous extent.
	ExtentPages uint64
}

// freeRun is one run of reusable LBAs released by Remove. The free list is
// kept sorted by LBA and coalesced, so steady-state create/remove churn
// (value-log segment rotation) reuses space instead of exhausting the bump
// frontier.
type freeRun struct {
	lba   uint64
	pages uint64
}

// FS is the filesystem metadata. Not safe for concurrent use.
type FS struct {
	ctrl     *ssd.Controller
	pageSize int

	nextLBA   uint64
	nextIno   uint64
	byName    map[string]*Inode
	byIno     map[uint64]*Inode
	free      []freeRun // sorted by lba, coalesced
	freePages uint64
}

// New formats a filesystem over a device.
func New(ctrl *ssd.Controller) *FS {
	return &FS{
		ctrl:     ctrl,
		pageSize: ctrl.PageSize(),
		nextIno:  2, // inode 1 reserved for the root, Ext4-style
		byName:   make(map[string]*Inode),
		byIno:    make(map[uint64]*Inode),
	}
}

// PageSize reports the block size.
func (fs *FS) PageSize() int { return fs.pageSize }

// Controller exposes the device (the vfs layer needs the oracle and the
// pipette core needs HMB wiring).
func (fs *FS) Controller() *ssd.Controller { return fs.ctrl }

// FreeCapacityPages reports allocatable pages: the untouched bump frontier
// plus everything on the free list.
func (fs *FS) FreeCapacityPages() uint64 {
	return fs.ctrl.LogicalPages() - fs.nextLBA + fs.freePages
}

// takeFree carves pages LBAs out of free-list run i.
func (fs *FS) takeFree(i int, pages uint64) uint64 {
	lba := fs.free[i].lba
	fs.free[i].lba += pages
	fs.free[i].pages -= pages
	if fs.free[i].pages == 0 {
		fs.free = append(fs.free[:i], fs.free[i+1:]...)
	}
	fs.freePages -= pages
	return lba
}

// allocRun allocates up to want contiguous pages: first-fit from the free
// list, then the bump frontier, then a partial cut of the largest free run.
// got == 0 means the volume is out of space.
func (fs *FS) allocRun(want uint64) (lba, got uint64, bumped bool) {
	for i := range fs.free {
		if fs.free[i].pages >= want {
			return fs.takeFree(i, want), want, false
		}
	}
	if rem := fs.ctrl.LogicalPages() - fs.nextLBA; rem >= want {
		lba = fs.nextLBA
		fs.nextLBA += want
		return lba, want, true
	}
	best := -1
	for i := range fs.free {
		if best < 0 || fs.free[i].pages > fs.free[best].pages {
			best = i
		}
	}
	if best >= 0 {
		got = fs.free[best].pages
		return fs.takeFree(best, got), got, false
	}
	if rem := fs.ctrl.LogicalPages() - fs.nextLBA; rem > 0 {
		got = rem
		if got > want {
			got = want
		}
		lba = fs.nextLBA
		fs.nextLBA += got
		return lba, got, true
	}
	return 0, 0, false
}

// releaseRun returns a run of LBAs to the free list, inserting in sorted
// position and coalescing with its neighbours.
func (fs *FS) releaseRun(lba, pages uint64) {
	if pages == 0 {
		return
	}
	i := sort.Search(len(fs.free), func(i int) bool { return fs.free[i].lba >= lba })
	fs.free = append(fs.free, freeRun{})
	copy(fs.free[i+1:], fs.free[i:])
	fs.free[i] = freeRun{lba: lba, pages: pages}
	fs.freePages += pages
	if i+1 < len(fs.free) && fs.free[i].lba+fs.free[i].pages == fs.free[i+1].lba {
		fs.free[i].pages += fs.free[i+1].pages
		fs.free = append(fs.free[:i+1], fs.free[i+2:]...)
	}
	if i > 0 && fs.free[i-1].lba+fs.free[i-1].pages == fs.free[i].lba {
		fs.free[i-1].pages += fs.free[i].pages
		fs.free = append(fs.free[:i], fs.free[i+1:]...)
	}
}

// releaseExtents rolls an inode's allocation back onto the free list.
func (fs *FS) releaseExtents(extents []Extent) {
	for _, e := range extents {
		fs.releaseRun(e.LBA, e.Pages)
	}
}

// Create makes a fixed-size file.
func (fs *FS) Create(name string, size int64, opts CreateOpts) (*Inode, error) {
	if name == "" || size < 0 {
		return nil, ErrBadParams
	}
	if _, dup := fs.byName[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	pages := uint64((size + int64(fs.pageSize) - 1) / int64(fs.pageSize))
	if pages > fs.FreeCapacityPages() {
		return nil, fmt.Errorf("%w: need %d pages, %d free", ErrNoSpace,
			pages, fs.FreeCapacityPages())
	}

	ino := &Inode{Ino: fs.nextIno, Name: name, Size: size}
	fs.nextIno++

	chunk := opts.ExtentPages
	if chunk == 0 || chunk > pages {
		chunk = pages
	}
	for covered := uint64(0); covered < pages; {
		want := chunk
		if covered+want > pages {
			want = pages - covered
		}
		lba, got, bumped := fs.allocRun(want)
		if got == 0 {
			// Fragmentation skips can eat past the capacity pre-check.
			fs.releaseExtents(ino.Extents)
			return nil, fmt.Errorf("%w: need %d pages, %d free", ErrNoSpace,
				pages-covered, fs.FreeCapacityPages())
		}
		ino.Extents = append(ino.Extents, Extent{FilePage: covered, LBA: lba, Pages: got})
		covered += got
		if covered < pages && opts.ExtentPages != 0 && bumped && fs.nextLBA < fs.ctrl.LogicalPages() {
			// Skip one LBA to force fragmentation (bump allocations only:
			// free-list reuse is naturally discontiguous). The bound keeps
			// nextLBA on the device — past it, LogicalPages()-nextLBA would
			// underflow and the frontier would hand out nonexistent LBAs.
			fs.nextLBA++
		}
	}
	if pages == 0 {
		ino.Extents = nil
	}

	if opts.Preload {
		for _, e := range ino.Extents {
			for i := uint64(0); i < e.Pages; i++ {
				if err := fs.ctrl.FTL().Preload(ftl.LBA(e.LBA + i)); err != nil {
					fs.trimExtents(ino.Extents)
					fs.releaseExtents(ino.Extents)
					return nil, fmt.Errorf("extfs: preload %q: %w", name, err)
				}
			}
		}
	}

	fs.byName[name] = ino
	fs.byIno[ino.Ino] = ino
	return ino, nil
}

// trimExtents trims every LBA of the extent list, tolerating unmapped pages.
func (fs *FS) trimExtents(extents []Extent) {
	for _, e := range extents {
		for i := uint64(0); i < e.Pages; i++ {
			_ = fs.ctrl.FTL().Trim(ftl.LBA(e.LBA + i))
		}
	}
}

// Lookup finds a file by name.
func (fs *FS) Lookup(name string) (*Inode, error) {
	ino, ok := fs.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return ino, nil
}

// InodeByID finds a file by inode number.
func (fs *FS) InodeByID(ino uint64) (*Inode, error) {
	n, ok := fs.byIno[ino]
	if !ok {
		return nil, fmt.Errorf("%w: ino %d", ErrNotFound, ino)
	}
	return n, nil
}

// Remove deletes a file, trims its LBAs on the device, and returns them to
// the free list for reuse.
func (fs *FS) Remove(name string) error {
	ino, ok := fs.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	for _, e := range ino.Extents {
		for i := uint64(0); i < e.Pages; i++ {
			if err := fs.ctrl.FTL().Trim(ftl.LBA(e.LBA + i)); err != nil &&
				!errors.Is(err, ftl.ErrUnmapped) {
				return fmt.Errorf("extfs: trim %q: %w", name, err)
			}
		}
	}
	fs.releaseExtents(ino.Extents)
	delete(fs.byName, name)
	delete(fs.byIno, ino.Ino)
	return nil
}

// Files lists all file names (sorted order not guaranteed).
func (fs *FS) Files() []string {
	out := make([]string, 0, len(fs.byName))
	for name := range fs.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Peek reads file bytes through the zero-time oracle: [off, off+len(buf))
// of the file's *device* content (not the page cache). Used to serve clean
// page-cache hits and to verify reads in tests.
func (fs *FS) Peek(ino *Inode, off int64, buf []byte) error {
	if off < 0 || off+int64(len(buf)) > ino.Size {
		return fmt.Errorf("%w: peek [%d,+%d) of %q", ErrBadRange, off, len(buf), ino.Name)
	}
	ps := int64(fs.pageSize)
	for n := 0; n < len(buf); {
		abs := off + int64(n)
		page := uint64(abs / ps)
		inPage := int(abs % ps)
		chunk := fs.pageSize - inPage
		if rem := len(buf) - n; chunk > rem {
			chunk = rem
		}
		lba, err := ino.PageToLBA(page)
		if err != nil {
			return err
		}
		if err := fs.ctrl.PeekLBA(lba, inPage, buf[n:n+chunk]); err != nil {
			return err
		}
		n += chunk
	}
	return nil
}

// CheckExtents validates an inode's extent list: sorted, gapless coverage
// of exactly PageCount pages, no overlaps. Property tests use it.
func (ino *Inode) CheckExtents(pageSize int) error {
	want := ino.PageCount(pageSize)
	var covered uint64
	for i, e := range ino.Extents {
		if e.FilePage != covered {
			return fmt.Errorf("extent %d starts at page %d, want %d", i, e.FilePage, covered)
		}
		if e.Pages == 0 {
			return fmt.Errorf("extent %d empty", i)
		}
		covered += e.Pages
	}
	if covered != want {
		return fmt.Errorf("extents cover %d pages, want %d", covered, want)
	}
	return nil
}
