// Package extfs is the Ext4-flavoured filesystem metadata layer: a flat
// namespace of inodes whose file pages map to device LBAs through extent
// lists, a bump block allocator, and the LBA Extractor — the paper's file
// system extension that resolves a fine-grained read's byte range straight
// to the physical pages holding it, bypassing the generic block layer
// (§3.1.2).
//
// Data movement lives elsewhere (vfs + blockdev); this package is pure
// mapping. Files are created at a fixed size, mirroring the preloaded
// datasets the paper's workloads read.
package extfs

import (
	"errors"
	"fmt"
	"sort"

	"pipette/internal/ftl"
	"pipette/internal/ssd"
)

// Extent maps a run of file pages to a run of device LBAs.
type Extent struct {
	FilePage uint64 // first file page index covered
	LBA      uint64 // device LBA backing FilePage
	Pages    uint64 // run length
}

// Inode is one file's metadata.
type Inode struct {
	Ino     uint64
	Name    string
	Size    int64
	Extents []Extent // sorted by FilePage, gapless, covering all pages
}

// Filesystem errors.
var (
	ErrExists    = errors.New("extfs: file exists")
	ErrNotFound  = errors.New("extfs: file not found")
	ErrBadRange  = errors.New("extfs: range outside file")
	ErrNoSpace   = errors.New("extfs: volume full")
	ErrBadParams = errors.New("extfs: invalid parameters")
)

// PageCount reports the number of pages the inode spans.
func (ino *Inode) PageCount(pageSize int) uint64 {
	return uint64((ino.Size + int64(pageSize) - 1) / int64(pageSize))
}

// PageToLBA resolves one file page index to its device LBA. The binary
// search is hand-rolled: this runs per page on every read path and the
// sort.Search closure costs show up in profiles.
func (ino *Inode) PageToLBA(page uint64) (uint64, error) {
	ext := ino.Extents
	lo, hi := 0, len(ext)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if page < ext[mid].FilePage+ext[mid].Pages {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo >= len(ext) || page < ext[lo].FilePage {
		return 0, fmt.Errorf("%w: page %d of %q", ErrBadRange, page, ino.Name)
	}
	return ext[lo].LBA + (page - ext[lo].FilePage), nil
}

// ExtractLBAs is the LBA Extractor: it returns the device LBAs of the pages
// covering the byte range [off, off+n), in file order.
func (ino *Inode) ExtractLBAs(off int64, n int, pageSize int) ([]uint64, error) {
	return ino.AppendLBAs(nil, off, n, pageSize)
}

// AppendLBAs is ExtractLBAs appending to a caller-owned slice — the
// allocation-free form the fine-read hot path uses with a reused scratch.
func (ino *Inode) AppendLBAs(dst []uint64, off int64, n int, pageSize int) ([]uint64, error) {
	if off < 0 || n <= 0 || off+int64(n) > ino.Size {
		return dst, fmt.Errorf("%w: [%d,+%d) of %q (size %d)", ErrBadRange, off, n, ino.Name, ino.Size)
	}
	first := uint64(off) / uint64(pageSize)
	last := uint64(off+int64(n)-1) / uint64(pageSize)
	for p := first; p <= last; p++ {
		lba, err := ino.PageToLBA(p)
		if err != nil {
			return dst, err
		}
		dst = append(dst, lba)
	}
	return dst, nil
}

// CreateOpts tunes file creation.
type CreateOpts struct {
	// Preload fills the file's pages with deterministic device content at
	// zero virtual cost (the benchmark datasets). Without it, pages are
	// left unmapped until written.
	Preload bool
	// ExtentPages fragments the file into extents of at most this many
	// pages with a one-page skip between them, exercising multi-extent
	// mapping. 0 allocates one contiguous extent.
	ExtentPages uint64
}

// FS is the filesystem metadata. Not safe for concurrent use.
type FS struct {
	ctrl     *ssd.Controller
	pageSize int

	nextLBA uint64
	nextIno uint64
	byName  map[string]*Inode
	byIno   map[uint64]*Inode
}

// New formats a filesystem over a device.
func New(ctrl *ssd.Controller) *FS {
	return &FS{
		ctrl:     ctrl,
		pageSize: ctrl.PageSize(),
		nextIno:  2, // inode 1 reserved for the root, Ext4-style
		byName:   make(map[string]*Inode),
		byIno:    make(map[uint64]*Inode),
	}
}

// PageSize reports the block size.
func (fs *FS) PageSize() int { return fs.pageSize }

// Controller exposes the device (the vfs layer needs the oracle and the
// pipette core needs HMB wiring).
func (fs *FS) Controller() *ssd.Controller { return fs.ctrl }

// Create makes a fixed-size file.
func (fs *FS) Create(name string, size int64, opts CreateOpts) (*Inode, error) {
	if name == "" || size < 0 {
		return nil, ErrBadParams
	}
	if _, dup := fs.byName[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	pages := uint64((size + int64(fs.pageSize) - 1) / int64(fs.pageSize))
	if fs.nextLBA+pages > fs.ctrl.LogicalPages() {
		return nil, fmt.Errorf("%w: need %d pages, %d free", ErrNoSpace,
			pages, fs.ctrl.LogicalPages()-fs.nextLBA)
	}

	ino := &Inode{Ino: fs.nextIno, Name: name, Size: size}
	fs.nextIno++

	chunk := opts.ExtentPages
	if chunk == 0 || chunk > pages {
		chunk = pages
	}
	for covered := uint64(0); covered < pages; {
		run := chunk
		if covered+run > pages {
			run = pages - covered
		}
		ino.Extents = append(ino.Extents, Extent{FilePage: covered, LBA: fs.nextLBA, Pages: run})
		fs.nextLBA += run
		covered += run
		if covered < pages && opts.ExtentPages != 0 {
			// Skip one LBA to force fragmentation.
			fs.nextLBA++
		}
	}
	if pages == 0 {
		ino.Extents = nil
	}

	if opts.Preload {
		for _, e := range ino.Extents {
			for i := uint64(0); i < e.Pages; i++ {
				if err := fs.ctrl.FTL().Preload(ftl.LBA(e.LBA + i)); err != nil {
					return nil, fmt.Errorf("extfs: preload %q: %w", name, err)
				}
			}
		}
	}

	fs.byName[name] = ino
	fs.byIno[ino.Ino] = ino
	return ino, nil
}

// Lookup finds a file by name.
func (fs *FS) Lookup(name string) (*Inode, error) {
	ino, ok := fs.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return ino, nil
}

// InodeByID finds a file by inode number.
func (fs *FS) InodeByID(ino uint64) (*Inode, error) {
	n, ok := fs.byIno[ino]
	if !ok {
		return nil, fmt.Errorf("%w: ino %d", ErrNotFound, ino)
	}
	return n, nil
}

// Remove deletes a file and trims its LBAs on the device.
func (fs *FS) Remove(name string) error {
	ino, ok := fs.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	for _, e := range ino.Extents {
		for i := uint64(0); i < e.Pages; i++ {
			if err := fs.ctrl.FTL().Trim(ftl.LBA(e.LBA + i)); err != nil &&
				!errors.Is(err, ftl.ErrUnmapped) {
				return fmt.Errorf("extfs: trim %q: %w", name, err)
			}
		}
	}
	delete(fs.byName, name)
	delete(fs.byIno, ino.Ino)
	return nil
}

// Files lists all file names (sorted order not guaranteed).
func (fs *FS) Files() []string {
	out := make([]string, 0, len(fs.byName))
	for name := range fs.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Peek reads file bytes through the zero-time oracle: [off, off+len(buf))
// of the file's *device* content (not the page cache). Used to serve clean
// page-cache hits and to verify reads in tests.
func (fs *FS) Peek(ino *Inode, off int64, buf []byte) error {
	if off < 0 || off+int64(len(buf)) > ino.Size {
		return fmt.Errorf("%w: peek [%d,+%d) of %q", ErrBadRange, off, len(buf), ino.Name)
	}
	ps := int64(fs.pageSize)
	for n := 0; n < len(buf); {
		abs := off + int64(n)
		page := uint64(abs / ps)
		inPage := int(abs % ps)
		chunk := fs.pageSize - inPage
		if rem := len(buf) - n; chunk > rem {
			chunk = rem
		}
		lba, err := ino.PageToLBA(page)
		if err != nil {
			return err
		}
		if err := fs.ctrl.PeekLBA(lba, inPage, buf[n:n+chunk]); err != nil {
			return err
		}
		n += chunk
	}
	return nil
}

// CheckExtents validates an inode's extent list: sorted, gapless coverage
// of exactly PageCount pages, no overlaps. Property tests use it.
func (ino *Inode) CheckExtents(pageSize int) error {
	want := ino.PageCount(pageSize)
	var covered uint64
	for i, e := range ino.Extents {
		if e.FilePage != covered {
			return fmt.Errorf("extent %d starts at page %d, want %d", i, e.FilePage, covered)
		}
		if e.Pages == 0 {
			return fmt.Errorf("extent %d empty", i)
		}
		covered += e.Pages
	}
	if covered != want {
		return fmt.Errorf("extents cover %d pages, want %d", covered, want)
	}
	return nil
}
