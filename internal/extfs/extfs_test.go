package extfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"pipette/internal/ssd"
)

func testFS(t testing.TB) *FS {
	t.Helper()
	cfg := ssd.DefaultConfig()
	cfg.NAND.Channels = 2
	cfg.NAND.WaysPerChannel = 2
	cfg.NAND.PlanesPerDie = 1
	cfg.NAND.BlocksPerPlane = 32
	cfg.NAND.PagesPerBlock = 32
	ctrl, err := ssd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(ctrl)
}

func TestCreateLookupRemove(t *testing.T) {
	fs := testFS(t)
	ino, err := fs.Create("emb.tbl", 100000, CreateOpts{Preload: true})
	if err != nil {
		t.Fatal(err)
	}
	if ino.Ino < 2 || ino.Size != 100000 {
		t.Fatalf("inode %+v", ino)
	}
	if err := ino.CheckExtents(fs.PageSize()); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Lookup("emb.tbl")
	if err != nil || got != ino {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	byID, err := fs.InodeByID(ino.Ino)
	if err != nil || byID != ino {
		t.Fatal("InodeByID failed")
	}
	if _, err := fs.Create("emb.tbl", 10, CreateOpts{}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create err = %v", err)
	}
	if err := fs.Remove("emb.tbl"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup("emb.tbl"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-remove lookup err = %v", err)
	}
	if err := fs.Remove("emb.tbl"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove err = %v", err)
	}
}

func TestCreateValidation(t *testing.T) {
	fs := testFS(t)
	if _, err := fs.Create("", 10, CreateOpts{}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("empty name err = %v", err)
	}
	if _, err := fs.Create("x", -1, CreateOpts{}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("negative size err = %v", err)
	}
	if _, err := fs.Create("huge", 1<<50, CreateOpts{}); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("oversize err = %v", err)
	}
}

func TestPageToLBAContiguous(t *testing.T) {
	fs := testFS(t)
	ino, err := fs.Create("a", 10*4096, CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := ino.PageToLBA(0)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 10; p++ {
		lba, err := ino.PageToLBA(p)
		if err != nil {
			t.Fatal(err)
		}
		if lba != base+p {
			t.Fatalf("page %d -> %d, want %d", p, lba, base+p)
		}
	}
	if _, err := ino.PageToLBA(10); !errors.Is(err, ErrBadRange) {
		t.Fatalf("out-of-file page err = %v", err)
	}
}

func TestFragmentedExtents(t *testing.T) {
	fs := testFS(t)
	ino, err := fs.Create("frag", 10*4096, CreateOpts{ExtentPages: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ino.Extents) != 4 { // 3+3+3+1
		t.Fatalf("extents = %d, want 4", len(ino.Extents))
	}
	if err := ino.CheckExtents(fs.PageSize()); err != nil {
		t.Fatal(err)
	}
	// Pages in different extents land on non-adjacent LBAs.
	l2, _ := ino.PageToLBA(2)
	l3, _ := ino.PageToLBA(3)
	if l3 == l2+1 {
		t.Fatal("fragmentation did not skip LBAs")
	}
	// Every page still resolves.
	seen := map[uint64]bool{}
	for p := uint64(0); p < 10; p++ {
		lba, err := ino.PageToLBA(p)
		if err != nil {
			t.Fatalf("page %d: %v", p, err)
		}
		if seen[lba] {
			t.Fatalf("page %d shares LBA %d", p, lba)
		}
		seen[lba] = true
	}
}

func TestExtractLBAs(t *testing.T) {
	fs := testFS(t)
	ino, err := fs.Create("x", 16*4096, CreateOpts{ExtentPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 128 B inside one page.
	lbas, err := ino.ExtractLBAs(5000, 128, fs.PageSize())
	if err != nil || len(lbas) != 1 {
		t.Fatalf("single-page extract = %v, %v", lbas, err)
	}
	want, _ := ino.PageToLBA(1)
	if lbas[0] != want {
		t.Fatalf("extract lba = %d, want %d", lbas[0], want)
	}
	// Range crossing a page boundary: two pages.
	lbas, err = ino.ExtractLBAs(4096*2-10, 20, fs.PageSize())
	if err != nil || len(lbas) != 2 {
		t.Fatalf("cross-page extract = %v, %v", lbas, err)
	}
	// Range crossing an extent boundary.
	lbas, err = ino.ExtractLBAs(4096*4-10, 20, fs.PageSize())
	if err != nil || len(lbas) != 2 {
		t.Fatalf("cross-extent extract = %v, %v", lbas, err)
	}
	if lbas[1] == lbas[0]+1 {
		t.Fatal("cross-extent LBAs unexpectedly adjacent")
	}
	// Bad ranges.
	for _, tc := range []struct {
		off int64
		n   int
	}{{-1, 10}, {0, 0}, {16 * 4096, 1}, {16*4096 - 5, 10}} {
		if _, err := ino.ExtractLBAs(tc.off, tc.n, fs.PageSize()); !errors.Is(err, ErrBadRange) {
			t.Errorf("ExtractLBAs(%d,%d) err = %v", tc.off, tc.n, err)
		}
	}
}

func TestPeekMatchesPreloadedContent(t *testing.T) {
	fs := testFS(t)
	ino, err := fs.Create("data", 8*4096, CreateOpts{Preload: true, ExtentPages: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Peek across a page boundary and compare against per-page peeks.
	buf := make([]byte, 100)
	if err := fs.Peek(ino, 4096-50, buf); err != nil {
		t.Fatal(err)
	}
	left := make([]byte, 50)
	right := make([]byte, 50)
	if err := fs.Peek(ino, 4096-50, left); err != nil {
		t.Fatal(err)
	}
	if err := fs.Peek(ino, 4096, right); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, append(left, right...)) {
		t.Fatal("cross-page peek inconsistent")
	}
	if err := fs.Peek(ino, 8*4096-10, make([]byte, 20)); err == nil {
		t.Fatal("peek past EOF accepted")
	}
}

func TestFilesListing(t *testing.T) {
	fs := testFS(t)
	for _, n := range []string{"c", "a", "b"} {
		if _, err := fs.Create(n, 4096, CreateOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.Files()
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("Files = %v", got)
	}
}

func TestNoSpaceAfterFill(t *testing.T) {
	fs := testFS(t)
	total := fs.Controller().LogicalPages()
	if _, err := fs.Create("big", int64(total)*4096, CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("more", 4096, CreateOpts{}); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v", err)
	}
}

// Property: for random (off, n) in range, ExtractLBAs returns exactly the
// pages [off/ps .. (off+n-1)/ps] in order.
func TestExtractLBAsProperty(t *testing.T) {
	fs := testFS(t)
	ino, err := fs.Create("p", 64*4096, CreateOpts{ExtentPages: 5})
	if err != nil {
		t.Fatal(err)
	}
	f := func(offRaw uint32, nRaw uint16) bool {
		off := int64(offRaw) % (64 * 4096)
		n := int(nRaw)%8192 + 1
		if off+int64(n) > 64*4096 {
			n = int(64*4096 - off)
		}
		lbas, err := ino.ExtractLBAs(off, n, fs.PageSize())
		if err != nil {
			return false
		}
		first := uint64(off) / 4096
		last := uint64(off+int64(n)-1) / 4096
		if uint64(len(lbas)) != last-first+1 {
			return false
		}
		for i, lba := range lbas {
			want, err := ino.PageToLBA(first + uint64(i))
			if err != nil || lba != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestReleaseCoalescing removes three adjacently-allocated files out of
// order and asserts the free list fuses their runs into one — both the
// merge-with-next and merge-with-previous branches of releaseRun fire —
// then reuses the fused run as a single contiguous extent.
func TestReleaseCoalescing(t *testing.T) {
	fs := testFS(t)
	const pages = 8
	var base uint64
	for i, name := range []string{"a", "b", "c"} {
		ino, err := fs.Create(name, pages*4096, CreateOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if len(ino.Extents) != 1 {
			t.Fatalf("%s: %d extents, want 1", name, len(ino.Extents))
		}
		if i == 0 {
			base = ino.Extents[0].LBA
		} else if got := ino.Extents[0].LBA; got != base+uint64(i)*pages {
			t.Fatalf("%s at LBA %d, want adjacent %d", name, got, base+uint64(i)*pages)
		}
	}
	// Middle first (no neighbours), then left (merges with next), then
	// right (merges with previous).
	for _, name := range []string{"b", "a", "c"} {
		if err := fs.Remove(name); err != nil {
			t.Fatal(err)
		}
	}
	if len(fs.free) != 1 || fs.free[0] != (freeRun{lba: base, pages: 3 * pages}) {
		t.Fatalf("free list = %+v, want one run [%d,+%d)", fs.free, base, 3*pages)
	}
	if fs.freePages != 3*pages {
		t.Fatalf("freePages = %d, want %d", fs.freePages, 3*pages)
	}
	ino, err := fs.Create("fused", 3*pages*4096, CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ino.Extents) != 1 || ino.Extents[0].LBA != base {
		t.Fatalf("fused run not reused contiguously: %+v", ino.Extents)
	}
}

// TestCreateRollbackOnExhaustion drives Create past the capacity pre-check
// with fragmentation skips (each bump-frontier chunk burns one extra LBA),
// so allocation fails mid-file. The partial allocation must roll back: no
// namespace entry, and the released pages fully reusable afterwards.
func TestCreateRollbackOnExhaustion(t *testing.T) {
	fs := testFS(t)
	total := fs.FreeCapacityPages()
	if _, err := fs.Create("filler", int64(total-16)*4096, CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	// 16 pages free; 2-page extents + 1-page skips need ~24. The pre-check
	// (16 <= 16) passes, allocation exhausts mid-way.
	_, err := fs.Create("frag", 16*4096, CreateOpts{ExtentPages: 2})
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if _, err := fs.Lookup("frag"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed create left a namespace entry: %v", err)
	}
	// Whatever survives (free capacity minus the fragmentation holes) must
	// be allocatable again — the rollback put the partial extents back.
	rem := fs.FreeCapacityPages()
	if rem == 0 {
		t.Fatal("rollback returned nothing to the free list")
	}
	if _, err := fs.Create("after", int64(rem)*4096, CreateOpts{}); err != nil {
		t.Fatalf("re-allocating rolled-back pages: %v", err)
	}
	if got := fs.FreeCapacityPages(); got != 0 {
		t.Fatalf("FreeCapacityPages = %d after exact fill, want 0", got)
	}
}
