// Package vfs is the virtual filesystem layer: file handles with open
// flags (including the paper's O_FINE_GRAINED), the conventional
// block-based read path through the page cache with read-ahead (§2.1), the
// write path with read-modify-write and deferred writeback, and the hook
// where Pipette's fine-grained read path plugs in after a page-cache miss
// (§3.1.2).
//
// The VFS is deliberately framework-agnostic: a FineRouter implementation
// (Pipette's core, or a 2B-SSD baseline) intercepts fine-grained reads;
// with no router installed, every read takes the block path.
package vfs

import (
	"errors"
	"fmt"
	"io"

	"pipette/internal/blockdev"
	"pipette/internal/extfs"
	"pipette/internal/fault"
	"pipette/internal/ftl"
	"pipette/internal/metrics"
	"pipette/internal/pagecache"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// OpenFlag is a bit set of open(2)-style flags.
type OpenFlag uint32

// Open flags. FineGrained is the paper's new O_FINE_GRAINED: it permits the
// byte-granular read path for this file descriptor.
const (
	ReadOnly    OpenFlag = 0
	ReadWrite   OpenFlag = 1 << 0
	FineGrained OpenFlag = 1 << 1
)

// FineRouter is the fine-grained read framework's entry point. The VFS
// calls TryFineRead after a fine-grained read misses the page cache; the
// router may serve it (handled=true) or decline, sending the request down
// the conventional block path — the Dispatcher decision of §3.1.2.
// OnWrite is the consistency hook of §3.1.3: every write invalidates
// overlapping fine-cache entries.
type FineRouter interface {
	TryFineRead(now sim.Time, f *File, off int64, buf []byte) (done sim.Time, handled bool, err error)
	OnWrite(ino uint64, off int64, n int)
}

// Config tunes host-side software costs.
type Config struct {
	SyscallOverhead sim.Time // VFS entry: syscall + fd resolution + locking
	CopyOverhead    sim.Time // copy-out to the user buffer per request
	PageCachePages  int      // page cache budget
	ReadaheadInit   int      // initial read-ahead window (pages)
	ReadaheadMax    int      // maximum read-ahead window (pages)
}

// DefaultConfig returns Linux-flavoured costs and windows.
func DefaultConfig() Config {
	return Config{
		SyscallOverhead: 1200 * sim.Nanosecond,
		CopyOverhead:    300 * sim.Nanosecond,
		PageCachePages:  64 << 10, // 256 MiB of 4 KiB pages
		ReadaheadInit:   4,
		ReadaheadMax:    32,
	}
}

// VFS binds the filesystem metadata, the page cache, and the block layer.
// Not safe for concurrent use.
type VFS struct {
	fs     *extfs.FS
	blk    *blockdev.Layer
	cache  *pagecache.Cache
	ra     map[uint64]*pagecache.Readahead
	open   map[uint64]int // inode -> open descriptor count
	router FineRouter
	cfg    Config
	tr     telemetry.Tracer
	sa     *telemetry.StageAccount
	inj    *fault.Injector
	fltWB  telemetry.Counter

	io        metrics.IO
	pendingWB []wbEntry

	// Request-scoped fetch scratch (the VFS is single-threaded).
	fetchLBAs  []uint64
	fetchPairs []fetchPair
	// pageFree recycles dirty-page buffers: writeAt hands buffers to the
	// cache (which owns them until writeback), and the writeback paths
	// return them here instead of leaving them to the garbage collector.
	pageFree [][]byte
}

// fetchPair maps a device LBA back to the file page it backs during one
// fetch.
type fetchPair struct {
	lba  uint64
	page uint64
}

type wbEntry struct {
	key  pagecache.Key
	data []byte
}

// New builds a VFS.
func New(fs *extfs.FS, blk *blockdev.Layer, cfg Config) (*VFS, error) {
	if cfg.PageCachePages < 0 {
		return nil, errors.New("vfs: negative page cache budget")
	}
	v := &VFS{
		fs:   fs,
		blk:  blk,
		ra:   make(map[uint64]*pagecache.Readahead),
		open: make(map[uint64]int),
		cfg:  cfg,
		tr:   telemetry.Nop(),
	}
	cache, err := pagecache.New(cfg.PageCachePages, fs.PageSize(), v.onEvict)
	if err != nil {
		return nil, err
	}
	v.cache = cache
	return v, nil
}

// onEvict queues dirty evictees for writeback at the next opportunity.
func (v *VFS) onEvict(key pagecache.Key, dirty bool, data []byte) {
	if dirty {
		v.pendingWB = append(v.pendingWB, wbEntry{key: key, data: data})
	}
}

// SetRouter installs the fine-grained read framework. Passing nil removes
// it (plain block I/O).
func (v *VFS) SetRouter(r FineRouter) { v.router = r }

// SetTracer installs a tracer; each ReadAt/WriteAt becomes a request scope
// with syscall and copy-out phases.
func (v *VFS) SetTracer(tr telemetry.Tracer) { v.tr = telemetry.OrNop(tr) }

// SetStages installs the per-request stage account. The VFS owns the
// request scope: every ReadAt/WriteAt/Sync opens the account and closes it
// at its completion time, so stage times sum exactly to each request's
// end-to-end latency.
func (v *VFS) SetStages(sa *telemetry.StageAccount) { v.sa = sa }

// SetInjector arms vfs.writeback fault injection: a writeback command may
// report a transient failure and be re-issued by the flusher.
func (v *VFS) SetInjector(inj *fault.Injector) { v.inj = inj }

// WritebackRetries reports writeback commands the flusher re-issued after
// an injected transient failure.
func (v *VFS) WritebackRetries() uint64 { return v.fltWB.Load() }

// FS exposes the filesystem metadata layer.
func (v *VFS) FS() *extfs.FS { return v.fs }

// PageCache exposes the cache (the dynamic allocation strategy resizes it
// and reads its hit ratio).
func (v *VFS) PageCache() *pagecache.Cache { return v.cache }

// IO returns accumulated host I/O accounting.
func (v *VFS) IO() metrics.IO { return v.io }

// ResetIO zeroes the accounting (between benchmark phases).
func (v *VFS) ResetIO() { v.io = metrics.IO{} }

// ErrClosed is returned by operations on a closed descriptor.
var ErrClosed = errors.New("vfs: file closed")

// File is an open file descriptor.
type File struct {
	v      *VFS
	inode  *extfs.Inode
	flags  OpenFlag
	closed bool
}

// Open opens an existing file.
func (v *VFS) Open(name string, flags OpenFlag) (*File, error) {
	ino, err := v.fs.Lookup(name)
	if err != nil {
		return nil, err
	}
	v.open[ino.Ino]++
	return &File{v: v, inode: ino, flags: flags}, nil
}

// Create makes and opens a new fixed-size file.
func (v *VFS) Create(name string, size int64, opts extfs.CreateOpts, flags OpenFlag) (*File, error) {
	ino, err := v.fs.Create(name, size, opts)
	if err != nil {
		return nil, err
	}
	v.open[ino.Ino]++
	return &File{v: v, inode: ino, flags: flags}, nil
}

// Close releases the descriptor — close(2). The last close of an inode drops
// its read-ahead state from the open table. Dirty pages are not flushed;
// call Sync first for durability, exactly as with a real file descriptor.
func (f *File) Close() error {
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	v := f.v
	if n := v.open[f.inode.Ino]; n > 1 {
		v.open[f.inode.Ino] = n - 1
		return nil
	}
	delete(v.open, f.inode.Ino)
	delete(v.ra, f.inode.Ino)
	return nil
}

// OpenCount reports the live descriptors for a file (0 when closed or
// unknown) — the open-table leak regression test hooks in here.
func (v *VFS) OpenCount(name string) int {
	ino, err := v.fs.Lookup(name)
	if err != nil {
		return 0
	}
	return v.open[ino.Ino]
}

// Remove unlinks a file: resident pages are discarded (dirty pages dropped
// without writeback — unlink semantics), queued writebacks for the inode are
// cancelled, read-ahead and open-table state is dropped, and the file's
// blocks are trimmed on the device so the allocator can reuse them.
func (v *VFS) Remove(name string) error {
	ino, err := v.fs.Lookup(name)
	if err != nil {
		return err
	}
	v.cache.DiscardFile(ino.Ino, v.putPageBuf)
	if len(v.pendingWB) > 0 {
		kept := v.pendingWB[:0]
		for _, wb := range v.pendingWB {
			if wb.key.File == ino.Ino {
				v.putPageBuf(wb.data)
				continue
			}
			kept = append(kept, wb)
		}
		v.pendingWB = kept
	}
	delete(v.ra, ino.Ino)
	delete(v.open, ino.Ino)
	return v.fs.Remove(name)
}

// Inode exposes the file's metadata (the fine router's LBA extraction
// needs it).
func (f *File) Inode() *extfs.Inode { return f.inode }

// Flags reports the open flags.
func (f *File) Flags() OpenFlag { return f.flags }

// Size reports the file size.
func (f *File) Size() int64 { return f.inode.Size }

func (v *VFS) readahead(ino uint64) *pagecache.Readahead {
	ra, ok := v.ra[ino]
	if !ok {
		ra = pagecache.NewReadahead(v.cfg.ReadaheadInit, v.cfg.ReadaheadMax)
		v.ra[ino] = ra
	}
	return ra
}

// ReadAt reads up to len(buf) bytes at off, returning bytes read, the
// virtual completion time, and io.EOF past the end.
func (f *File) ReadAt(now sim.Time, buf []byte, off int64) (int, sim.Time, error) {
	v := f.v
	v.sa.Begin(now)
	if tr := v.tr; tr.Enabled() {
		tr.BeginRequest(fmt.Sprintf("read %dB", len(buf)), now)
		n, done, err := f.readAt(now, buf, off)
		tr.EndRequest(done)
		v.sa.Finish(done)
		return n, done, err
	}
	n, done, err := f.readAt(now, buf, off)
	v.sa.Finish(done)
	return n, done, err
}

func (f *File) readAt(now sim.Time, buf []byte, off int64) (int, sim.Time, error) {
	v := f.v
	if f.closed {
		return 0, now, ErrClosed
	}
	if off < 0 {
		return 0, now, fmt.Errorf("vfs: negative offset %d", off)
	}
	if off >= f.inode.Size {
		return 0, now, io.EOF
	}
	n := len(buf)
	var eof error
	if rem := f.inode.Size - off; int64(n) > rem {
		n = int(rem)
		eof = io.EOF
	}
	if n == 0 {
		return 0, now, eof
	}
	buf = buf[:n]
	if v.tr.Enabled() {
		v.tr.Span(telemetry.TrackVFS, "syscall", now, now+v.cfg.SyscallOverhead)
	}
	now += v.cfg.SyscallOverhead
	v.sa.Mark(telemetry.StageSyscall, now)
	v.io.BytesRequested += uint64(n)

	// Fine-grained path: consult the page cache first (§3.1.2); on a miss
	// hand the request to the router, which may still decline (Dispatcher
	// routes large reads back here).
	if f.flags&FineGrained != 0 && v.router != nil {
		if served, done := v.tryServeFromCache(now, f, buf, off); served {
			if v.tr.Enabled() {
				v.tr.Instant(telemetry.TrackPageCache, "hit", now)
			}
			return n, v.copyOut(done), eof
		}
		if v.tr.Enabled() {
			v.tr.Instant(telemetry.TrackPageCache, "miss", now)
		}
		// A partially resident range with a dirty page must not go fine:
		// the fine command reads flash below the cache, and a dirty
		// resident page's latest bytes exist only in host memory. The
		// block path merges cache and device per page; route it there.
		if !v.rangeHasDirty(f, off, n) {
			done, handled, err := v.router.TryFineRead(now, f, off, buf)
			if err != nil {
				return 0, done, err
			}
			if handled {
				return n, v.copyOut(done), eof
			}
			// Unhandled: the router may still have spent time (a fine attempt
			// that fell back on detected corruption); the block path resumes
			// from its completion. Plain declines return done == now.
			now = done
		}
	}

	done, err := v.blockRead(now, f, buf, off)
	if err != nil {
		return 0, done, err
	}
	return n, v.copyOut(done), eof
}

// copyOut accounts the user-buffer copy that ends every successful request.
func (v *VFS) copyOut(done sim.Time) sim.Time {
	end := done + v.cfg.CopyOverhead
	if v.tr.Enabled() {
		v.tr.Span(telemetry.TrackVFS, "copyout", done, end)
	}
	v.sa.Mark(telemetry.StageCopyout, end)
	return end
}

// rangeHasDirty reports whether any page covering [off, off+n) holds a
// resident dirty copy — content the device does not have yet.
func (v *VFS) rangeHasDirty(f *File, off int64, n int) bool {
	ps := int64(v.fs.PageSize())
	first := uint64(off / ps)
	last := uint64((off + int64(n) - 1) / ps)
	for p := first; p <= last; p++ {
		if v.cache.ContainsDirty(pagecache.Key{File: f.inode.Ino, Index: p}) {
			return true
		}
	}
	return false
}

// tryServeFromCache serves the request if every covering page is resident.
// Each covering page's lookup is counted (hit or miss) exactly as the
// paper's dual-cache accounting expects.
func (v *VFS) tryServeFromCache(now sim.Time, f *File, buf []byte, off int64) (bool, sim.Time) {
	ps := int64(v.fs.PageSize())
	first := uint64(off / ps)
	last := uint64((off + int64(len(buf)) - 1) / ps)
	// Peek residency without accounting, then do counted lookups so a
	// partially-resident range registers as one miss, not several.
	for p := first; p <= last; p++ {
		if !v.cache.Contains(pagecache.Key{File: f.inode.Ino, Index: p}) {
			v.cache.Lookup(pagecache.Key{File: f.inode.Ino, Index: p}) // counted miss
			return false, now
		}
	}
	for n := 0; n < len(buf); {
		abs := off + int64(n)
		p := uint64(abs / ps)
		inPage := int(abs % ps)
		chunk := v.fs.PageSize() - inPage
		if rem := len(buf) - n; chunk > rem {
			chunk = rem
		}
		data, dirty, ok := v.cache.Lookup(pagecache.Key{File: f.inode.Ino, Index: p})
		if !ok {
			return false, now // impossible after Contains, defensive
		}
		if dirty {
			copy(buf[n:n+chunk], data[inPage:])
		} else if err := v.fs.Peek(f.inode, abs, buf[n:n+chunk]); err != nil {
			return false, now
		}
		n += chunk
	}
	return true, now
}

// blockRead is the conventional path of §2.1: per-page cache lookups,
// read-ahead on misses, merged block-layer fetches, page-granular
// promotion into the cache.
func (v *VFS) blockRead(now sim.Time, f *File, buf []byte, off int64) (sim.Time, error) {
	ps := int64(v.fs.PageSize())
	first := uint64(off / ps)
	last := uint64((off + int64(len(buf)) - 1) / ps)
	filePages := f.inode.PageCount(v.fs.PageSize())
	ra := v.readahead(f.inode.Ino)
	done := now

	for p := first; p <= last; p++ {
		key := pagecache.Key{File: f.inode.Ino, Index: p}
		data, dirty, ok := v.cache.Lookup(key)
		if ok {
			ra.OnHit(p)
			v.copyFromPage(f, buf, off, p, data, dirty)
			continue
		}
		if v.tr.Enabled() {
			v.tr.Instant(telemetry.TrackPageCache, "miss", now)
		}
		// Miss: read-ahead decides the fetch window.
		count := ra.OnMiss(p)
		if p+uint64(count) > filePages {
			count = int(filePages - p)
		}
		lo, hi, bufLo, pageLo := overlap(off, len(buf), p, v.fs.PageSize())
		var want []byte
		if hi > lo {
			want = buf[bufLo : bufLo+int(hi-lo)]
		}
		gotWant, fetchDone, err := v.fetchPages(now, f, p, count, want, pageLo)
		if err != nil {
			return fetchDone, err
		}
		if fetchDone > done {
			done = fetchDone
		}
		if !gotWant {
			if err := v.fs.Peek(f.inode, int64(p)*ps, nil); err == nil {
				// Hole page: zeros (buf regions default to stale caller
				// bytes, so clear explicitly).
				v.zeroFill(buf, off, p)
			}
		}
	}
	return v.drainWriteback(done)
}

// fetchPages reads up to count pages starting at page p through the block
// layer, skipping already-resident pages and unmapped holes, and promotes
// every fetched page into the cache (clean), in ascending-LBA order so the
// cache's recency list evolves identically run to run. If want is non-nil
// and page p is fetched, its content starting at page offset wantOff is
// copied into want and gotWant is true.
func (v *VFS) fetchPages(now sim.Time, f *File, p uint64, count int, want []byte, wantOff int) (bool, sim.Time, error) {
	// Evicted-but-unflushed pages must reach the device before it serves
	// this fetch, or the read returns the pre-writeback flash content. The
	// window opens when an eviction queues a dirty page mid-request (cache
	// pressure, or the fine router shrinking the budget) and a later fetch
	// wants that very page.
	if len(v.pendingWB) > 0 {
		if _, err := v.drainWriteback(now); err != nil {
			return false, now, err
		}
	}
	ftlLayer := v.fs.Controller().FTL()
	lbas := v.fetchLBAs[:0]
	pairs := v.fetchPairs[:0]
	for i := 0; i < count; i++ {
		page := p + uint64(i)
		key := pagecache.Key{File: f.inode.Ino, Index: page}
		if v.cache.Contains(key) {
			continue
		}
		lba, err := f.inode.PageToLBA(page)
		if err != nil {
			v.fetchLBAs, v.fetchPairs = lbas, pairs
			return false, now, err
		}
		if !ftlLayer.IsMapped(ftl.LBA(lba)) {
			continue // hole: reads as zeros, nothing to fetch
		}
		lbas = append(lbas, lba)
		// Insertion sort by LBA: the delivery walk below needs ascending
		// order, and windows are small (read-ahead capped).
		j := len(pairs)
		pairs = append(pairs, fetchPair{})
		for j > 0 && pairs[j-1].lba > lba {
			pairs[j] = pairs[j-1]
			j--
		}
		pairs[j] = fetchPair{lba: lba, page: page}
	}
	v.fetchLBAs, v.fetchPairs = lbas, pairs
	if len(lbas) == 0 {
		return false, now, nil
	}
	gotWant := false
	idx := 0
	var insertErr error
	done, moved, err := v.blk.ReadPagesEach(now, lbas, func(lba uint64, data []byte) {
		for idx < len(pairs) && pairs[idx].lba < lba {
			idx++
		}
		if idx >= len(pairs) || pairs[idx].lba != lba {
			return
		}
		page := pairs[idx].page
		if page == p && want != nil {
			copy(want, data[wantOff:])
			gotWant = true
		}
		if e := v.cache.Insert(pagecache.Key{File: f.inode.Ino, Index: page}, false, nil); e != nil && insertErr == nil {
			insertErr = e
		}
	})
	if err == nil {
		err = insertErr
	}
	if err != nil {
		return gotWant, done, err
	}
	v.io.BytesTransferred += moved
	v.io.BlockReads += uint64(len(lbas))
	return gotWant, done, nil
}

// copyFromPage serves the overlap of page p with the request from a
// resident page (dirty bytes if present, oracle otherwise).
func (v *VFS) copyFromPage(f *File, buf []byte, off int64, p uint64, dirtyData []byte, dirty bool) {
	lo, hi, bufLo, pageLo := overlap(off, len(buf), p, v.fs.PageSize())
	if hi <= lo {
		return
	}
	if dirty {
		copy(buf[bufLo:bufLo+int(hi-lo)], dirtyData[pageLo:])
		return
	}
	// Clean resident page: regenerate from the device oracle (zero time).
	_ = v.fs.Peek(f.inode, lo, buf[bufLo:bufLo+int(hi-lo)])
}

func (v *VFS) zeroFill(buf []byte, off int64, p uint64) {
	lo, hi, bufLo, _ := overlap(off, len(buf), p, v.fs.PageSize())
	for i := lo; i < hi; i++ {
		buf[bufLo+int(i-lo)] = 0
	}
}

// getPageBuf returns a page-sized buffer, recycling writeback returns when
// possible. Recycled buffers keep their stale content — callers overwrite
// the whole page or zero it explicitly (see loadPageForRMW's hole path).
func (v *VFS) getPageBuf() []byte {
	if n := len(v.pageFree); n > 0 {
		b := v.pageFree[n-1]
		v.pageFree = v.pageFree[:n-1]
		return b
	}
	return make([]byte, v.fs.PageSize())
}

// putPageBuf returns a buffer no longer referenced by the cache.
func (v *VFS) putPageBuf(b []byte) {
	if len(b) == v.fs.PageSize() && len(v.pageFree) < 256 {
		v.pageFree = append(v.pageFree, b)
	}
}

// overlap computes the byte overlap of request [off, off+n) with page p:
// absolute range [lo, hi), plus the offsets into the request buffer and
// the page.
func overlap(off int64, n int, p uint64, pageSize int) (lo, hi int64, bufLo, pageLo int) {
	ps := int64(pageSize)
	pStart := int64(p) * ps
	lo, hi = off, off+int64(n)
	if pStart > lo {
		lo = pStart
	}
	if pEnd := pStart + ps; pEnd < hi {
		hi = pEnd
	}
	return lo, hi, int(lo - off), int(lo - pStart)
}
