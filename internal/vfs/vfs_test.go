package vfs

import (
	"bytes"
	"io"
	"testing"

	"pipette/internal/blockdev"
	"pipette/internal/extfs"
	"pipette/internal/nvme"
	"pipette/internal/pagecache"
	"pipette/internal/sim"
	"pipette/internal/ssd"
)

func testVFS(t testing.TB, cachePages int) *VFS {
	t.Helper()
	cfg := ssd.DefaultConfig()
	cfg.NAND.Channels = 2
	cfg.NAND.WaysPerChannel = 2
	cfg.NAND.PlanesPerDie = 1
	cfg.NAND.BlocksPerPlane = 32
	cfg.NAND.PagesPerBlock = 32
	ctrl, err := ssd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drv := nvme.NewDriver(ctrl, 64, nvme.DefaultCosts())
	blk, err := blockdev.New(drv, ctrl.PageSize(), blockdev.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fs := extfs.New(ctrl)
	vcfg := DefaultConfig()
	vcfg.PageCachePages = cachePages
	v, err := New(fs, blk, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func createPreloaded(t testing.TB, v *VFS, name string, size int64) *File {
	t.Helper()
	f, err := v.Create(name, size, extfs.CreateOpts{Preload: true}, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func oracle(t testing.TB, v *VFS, f *File, off int64, n int) []byte {
	t.Helper()
	want := make([]byte, n)
	if err := v.FS().Peek(f.Inode(), off, want); err != nil {
		t.Fatal(err)
	}
	return want
}

func TestReadCorrectness(t *testing.T) {
	v := testVFS(t, 128)
	f := createPreloaded(t, v, "data", 1<<20)
	for _, tc := range []struct {
		off int64
		n   int
	}{
		{0, 128}, {4090, 20} /* page boundary */, {100000, 4096}, {1<<20 - 10, 10},
	} {
		buf := make([]byte, tc.n)
		n, done, err := f.ReadAt(0, buf, tc.off)
		if err != nil && err != io.EOF {
			t.Fatalf("ReadAt(%d,%d): %v", tc.off, tc.n, err)
		}
		if n != tc.n {
			t.Fatalf("ReadAt(%d,%d) = %d bytes", tc.off, tc.n, n)
		}
		if !bytes.Equal(buf, oracle(t, v, f, tc.off, tc.n)) {
			t.Fatalf("ReadAt(%d,%d) content mismatch", tc.off, tc.n)
		}
		if done <= 0 {
			t.Fatal("read consumed no time")
		}
	}
}

func TestReadEOF(t *testing.T) {
	v := testVFS(t, 16)
	f := createPreloaded(t, v, "small", 1000)
	buf := make([]byte, 100)
	// Past the end.
	if n, _, err := f.ReadAt(0, buf, 2000); err != io.EOF || n != 0 {
		t.Fatalf("past-end read = %d, %v", n, err)
	}
	// Straddling the end.
	n, _, err := f.ReadAt(0, buf, 950)
	if err != io.EOF || n != 50 {
		t.Fatalf("straddling read = %d, %v", n, err)
	}
	// Negative offset.
	if _, _, err := f.ReadAt(0, buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestCacheHitFasterAndNoTraffic(t *testing.T) {
	v := testVFS(t, 128)
	f := createPreloaded(t, v, "data", 1<<20)
	buf := make([]byte, 128)
	_, missDone, err := f.ReadAt(0, buf, 8192)
	if err != nil {
		t.Fatal(err)
	}
	missTraffic := v.IO().BytesTransferred
	if missTraffic == 0 {
		t.Fatal("miss caused no traffic")
	}
	// Same page again: hit, no new traffic, much faster.
	_, hitDone, err := f.ReadAt(missDone, buf, 8192+256)
	if err != nil {
		t.Fatal(err)
	}
	if v.IO().BytesTransferred != missTraffic {
		t.Fatal("hit caused traffic")
	}
	if hitLat := hitDone - missDone; hitLat >= missDone {
		t.Fatalf("hit latency %v not faster than miss %v", hitLat, missDone)
	}
	if !bytes.Equal(buf, oracle(t, v, f, 8192+256, 128)) {
		t.Fatal("hit served wrong bytes")
	}
	hits, accesses, _, _ := v.PageCache().Stats()
	if hits != 1 || accesses != 2 {
		t.Fatalf("cache stats %d/%d", hits, accesses)
	}
}

func TestRandomReadFetchesInitialWindow(t *testing.T) {
	v := testVFS(t, 1024)
	f := createPreloaded(t, v, "data", 4<<20)
	buf := make([]byte, 128)
	// Scattered offsets: each miss opens the 4-page initial window
	// (Linux 5.4 behaviour) — 16 KiB of traffic per 128 B read.
	offsets := []int64{0, 2 << 20, 40960, 3 << 20, 81920}
	for _, off := range offsets {
		if _, _, err := f.ReadAt(0, buf, off); err != nil {
			t.Fatal(err)
		}
	}
	if got := v.IO().BytesTransferred; got != uint64(len(offsets)*4*4096) {
		t.Fatalf("random reads moved %d bytes, want %d (4 pages each)", got, len(offsets)*4*4096)
	}
}

func TestSequentialReadahead(t *testing.T) {
	v := testVFS(t, 1024)
	f := createPreloaded(t, v, "data", 4<<20)
	buf := make([]byte, 4096)
	var now sim.Time
	// Sequential full-page reads: read-ahead should batch device fetches so
	// commands << pages.
	for i := int64(0); i < 64; i++ {
		_, done, err := f.ReadAt(now, buf, i*4096)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	io := v.IO()
	if io.BlockReads < 64 {
		t.Fatalf("pages fetched %d < 64 — sequential stream must prefetch at least demanded", io.BlockReads)
	}
	hits, accesses, _, _ := v.PageCache().Stats()
	if hits == 0 {
		t.Fatal("read-ahead produced no page-cache hits on a sequential stream")
	}
	_ = accesses
}

func TestWriteReadBack(t *testing.T) {
	v := testVFS(t, 128)
	f := createPreloaded(t, v, "data", 1<<20)
	payload := []byte("pipette fine grained write")
	const off = 12345
	if _, _, err := f.WriteAt(0, payload, off); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, _, err := f.ReadAt(0, buf, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("read after write mismatch")
	}
	// Neighbouring bytes preserved by RMW.
	pre := make([]byte, 10)
	if _, _, err := f.ReadAt(0, pre, off-10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pre, oracle(t, v, f, off-10, 10)) {
		t.Fatal("RMW clobbered neighbouring bytes")
	}
}

func TestWritePermissionAndBounds(t *testing.T) {
	v := testVFS(t, 16)
	ro, err := v.Create("ro", 4096, extfs.CreateOpts{Preload: true}, ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ro.WriteAt(0, []byte("x"), 0); err == nil {
		t.Fatal("write to read-only fd accepted")
	}
	rw := createPreloaded(t, v, "rw", 4096)
	if _, _, err := rw.WriteAt(0, []byte("x"), 4096); err == nil {
		t.Fatal("write beyond size accepted")
	}
	if _, _, err := rw.WriteAt(0, []byte("x"), -1); err == nil {
		t.Fatal("negative write offset accepted")
	}
	if n, _, err := rw.WriteAt(0, nil, 0); n != 0 || err != nil {
		t.Fatalf("empty write = %d, %v", n, err)
	}
}

func TestSyncPersists(t *testing.T) {
	v := testVFS(t, 128)
	f := createPreloaded(t, v, "data", 1<<20)
	payload := bytes.Repeat([]byte{0xaa}, 4096)
	if _, _, err := f.WriteAt(0, payload, 40960); err != nil {
		t.Fatal(err)
	}
	if v.PageCache().DirtyCount() != 1 {
		t.Fatalf("DirtyCount = %d", v.PageCache().DirtyCount())
	}
	done, err := f.Sync(0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("sync consumed no time")
	}
	if v.PageCache().DirtyCount() != 0 {
		t.Fatal("dirty pages remain after sync")
	}
	if v.IO().BytesWritten != 4096 {
		t.Fatalf("BytesWritten = %d", v.IO().BytesWritten)
	}
	// Device now holds the new content: the oracle sees it.
	if !bytes.Equal(oracle(t, v, f, 40960, 4096), payload) {
		t.Fatal("device content not updated by sync")
	}
}

func TestEvictionWritesBack(t *testing.T) {
	v := testVFS(t, 2) // tiny cache forces eviction
	f := createPreloaded(t, v, "data", 1<<20)
	payload := bytes.Repeat([]byte{0x77}, 4096)
	if _, _, err := f.WriteAt(0, payload, 0); err != nil {
		t.Fatal(err)
	}
	// Fill the cache with other pages to evict the dirty one.
	buf := make([]byte, 128)
	var now sim.Time
	for i := 1; i <= 4; i++ {
		_, done, err := f.ReadAt(now, buf, int64(i)*8192)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if v.IO().BytesWritten != 4096 {
		t.Fatalf("evicted dirty page not written back: BytesWritten = %d", v.IO().BytesWritten)
	}
	if !bytes.Equal(oracle(t, v, f, 0, 4096), payload) {
		t.Fatal("writeback content wrong")
	}
}

// stubRouter records calls and optionally serves reads.
type stubRouter struct {
	serve      bool
	fineCalls  int
	writeCalls int
	lastOff    int64
	lastLen    int
}

func (s *stubRouter) TryFineRead(now sim.Time, f *File, off int64, buf []byte) (sim.Time, bool, error) {
	s.fineCalls++
	if !s.serve {
		return now, false, nil
	}
	if err := f.v.FS().Peek(f.Inode(), off, buf); err != nil {
		return now, false, err
	}
	return now + 2*sim.Microsecond, true, nil
}

func (s *stubRouter) OnWrite(ino uint64, off int64, n int) {
	s.writeCalls++
	s.lastOff, s.lastLen = off, n
}

func TestFineRouterHandlesMiss(t *testing.T) {
	v := testVFS(t, 128)
	f, err := v.Create("data", 1<<20, extfs.CreateOpts{Preload: true}, ReadWrite|FineGrained)
	if err != nil {
		t.Fatal(err)
	}
	r := &stubRouter{serve: true}
	v.SetRouter(r)

	buf := make([]byte, 128)
	if _, _, err := f.ReadAt(0, buf, 5000); err != nil {
		t.Fatal(err)
	}
	if r.fineCalls != 1 {
		t.Fatalf("router called %d times", r.fineCalls)
	}
	if !bytes.Equal(buf, oracle(t, v, f, 5000, 128)) {
		t.Fatal("router-served read wrong")
	}
	// Router-served reads must not promote pages.
	if v.PageCache().Len() != 0 {
		t.Fatal("fine read polluted the page cache")
	}
	// No block traffic either (router used the oracle here).
	if v.IO().BytesTransferred != 0 {
		t.Fatal("fine read counted block traffic")
	}
}

func TestFineRouterDeclineFallsBack(t *testing.T) {
	v := testVFS(t, 128)
	f, err := v.Create("data", 1<<20, extfs.CreateOpts{Preload: true}, FineGrained)
	if err != nil {
		t.Fatal(err)
	}
	r := &stubRouter{serve: false}
	v.SetRouter(r)
	buf := make([]byte, 4096)
	if _, _, err := f.ReadAt(0, buf, 0); err != nil {
		t.Fatal(err)
	}
	if r.fineCalls != 1 {
		t.Fatalf("router calls = %d", r.fineCalls)
	}
	if v.IO().BytesTransferred == 0 {
		t.Fatal("declined read did not take the block path")
	}
	if !bytes.Equal(buf, oracle(t, v, f, 0, 4096)) {
		t.Fatal("fallback read wrong")
	}
}

func TestFineReadServedByPageCacheFirst(t *testing.T) {
	v := testVFS(t, 128)
	f, err := v.Create("data", 1<<20, extfs.CreateOpts{Preload: true}, ReadWrite|FineGrained)
	if err != nil {
		t.Fatal(err)
	}
	r := &stubRouter{serve: true}
	v.SetRouter(r)
	// Promote the page via a block read on a non-fine handle.
	plain, err := v.Open("data", ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 4096)
	if _, _, err := plain.ReadAt(0, big, 8192); err != nil {
		t.Fatal(err)
	}
	// Fine read of the same page: page cache serves it, router not called.
	buf := make([]byte, 128)
	if _, _, err := f.ReadAt(0, buf, 8192+100); err != nil {
		t.Fatal(err)
	}
	if r.fineCalls != 0 {
		t.Fatal("router called despite page-cache hit")
	}
	if !bytes.Equal(buf, oracle(t, v, f, 8192+100, 128)) {
		t.Fatal("page-cache-served fine read wrong")
	}
}

func TestWriteNotifiesRouter(t *testing.T) {
	v := testVFS(t, 128)
	f := createPreloaded(t, v, "data", 1<<20)
	r := &stubRouter{}
	v.SetRouter(r)
	if _, _, err := f.WriteAt(0, []byte("update"), 777); err != nil {
		t.Fatal(err)
	}
	if r.writeCalls != 1 || r.lastOff != 777 || r.lastLen != 6 {
		t.Fatalf("OnWrite calls=%d off=%d len=%d", r.writeCalls, r.lastOff, r.lastLen)
	}
}

func TestDirtyPageServesFineHit(t *testing.T) {
	// After a write, a fine read of the same page must see the NEW data via
	// the page cache (the paper's consistency argument, §3.1.3).
	v := testVFS(t, 128)
	f, err := v.Create("data", 1<<20, extfs.CreateOpts{Preload: true}, ReadWrite|FineGrained)
	if err != nil {
		t.Fatal(err)
	}
	v.SetRouter(&stubRouter{serve: true})
	payload := []byte("fresh-bytes")
	if _, _, err := f.WriteAt(0, payload, 4096); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, _, err := f.ReadAt(0, buf, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("fine read after write got %q, want %q", buf, payload)
	}
}

func TestPartialDirtyRangeSkipsFineRouter(t *testing.T) {
	// A range whose pages are partly flushed-and-evicted, partly dirty
	// resident must not reach the fine router: the fine command reads flash
	// below the cache, and a dirty page's latest bytes exist only in host
	// memory. The block path merges cache and device per page.
	v := testVFS(t, 1) // capacity 1: dirtying the second page evicts the first
	f, err := v.Create("data", 1<<20, extfs.CreateOpts{Preload: true}, ReadWrite|FineGrained)
	if err != nil {
		t.Fatal(err)
	}
	r := &stubRouter{serve: true}
	v.SetRouter(r)
	payload := bytes.Repeat([]byte{0x5a}, 200)
	const off = 10*4096 + 4000 // spans the page 10/11 boundary
	if _, _, err := f.WriteAt(0, payload, off); err != nil {
		t.Fatal(err)
	}
	if !v.cache.ContainsDirty(pagecache.Key{File: f.inode.Ino, Index: 11}) {
		t.Fatal("setup: page 11 not dirty resident")
	}
	if v.cache.Contains(pagecache.Key{File: f.inode.Ino, Index: 10}) {
		t.Fatal("setup: page 10 still resident")
	}
	buf := make([]byte, len(payload))
	if _, _, err := f.ReadAt(0, buf, off); err != nil {
		t.Fatal(err)
	}
	if r.fineCalls != 0 {
		t.Fatal("fine router consulted for a partially dirty range")
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("partially dirty range read wrong bytes")
	}
}

func TestReadFull(t *testing.T) {
	v := testVFS(t, 16)
	f := createPreloaded(t, v, "data", 1000)
	buf := make([]byte, 100)
	if _, err := f.ReadFull(0, buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadFull(0, buf, 950); err == nil {
		t.Fatal("short ReadFull did not error")
	}
}

func TestSyncAll(t *testing.T) {
	v := testVFS(t, 128)
	f1 := createPreloaded(t, v, "a", 8192)
	f2 := createPreloaded(t, v, "b", 8192)
	for _, f := range []*File{f1, f2} {
		if _, _, err := f.WriteAt(0, bytes.Repeat([]byte{1}, 4096), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.SyncAll(0); err != nil {
		t.Fatal(err)
	}
	if v.PageCache().DirtyCount() != 0 {
		t.Fatal("SyncAll left dirty pages")
	}
	if v.IO().BytesWritten != 8192 {
		t.Fatalf("BytesWritten = %d", v.IO().BytesWritten)
	}
}
