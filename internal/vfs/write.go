package vfs

import (
	"fmt"
	"io"

	"pipette/internal/fault"
	"pipette/internal/pagecache"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// WriteAt writes len(data) bytes at off through the page cache: full-page
// overwrites go straight to dirty pages; partial pages read-modify-write.
// Dirty pages persist on Sync or when evicted (writeback). The fine-grained
// router's OnWrite hook fires for consistency (§3.1.3): every write deletes
// overlapping fine-cache items so later fine reads see either the updated
// page cache or the post-flush flash content.
func (f *File) WriteAt(now sim.Time, data []byte, off int64) (int, sim.Time, error) {
	v := f.v
	v.sa.Begin(now)
	if tr := v.tr; tr.Enabled() {
		tr.BeginRequest(fmt.Sprintf("write %dB", len(data)), now)
		n, done, err := f.writeAt(now, data, off)
		tr.EndRequest(done)
		v.sa.Finish(done)
		return n, done, err
	}
	n, done, err := f.writeAt(now, data, off)
	v.sa.Finish(done)
	return n, done, err
}

func (f *File) writeAt(now sim.Time, data []byte, off int64) (int, sim.Time, error) {
	v := f.v
	if f.closed {
		return 0, now, ErrClosed
	}
	if f.flags&ReadWrite == 0 {
		return 0, now, fmt.Errorf("vfs: %q not opened for writing", f.inode.Name)
	}
	if off < 0 {
		return 0, now, fmt.Errorf("vfs: negative offset %d", off)
	}
	if off+int64(len(data)) > f.inode.Size {
		return 0, now, fmt.Errorf("vfs: write [%d,+%d) beyond fixed size %d of %q",
			off, len(data), f.inode.Size, f.inode.Name)
	}
	if len(data) == 0 {
		return 0, now, nil
	}
	if v.tr.Enabled() {
		v.tr.Span(telemetry.TrackVFS, "syscall", now, now+v.cfg.SyscallOverhead)
	}
	now += v.cfg.SyscallOverhead
	v.sa.Mark(telemetry.StageSyscall, now)
	ps := int64(v.fs.PageSize())
	first := uint64(off / ps)
	last := uint64((off + int64(len(data)) - 1) / ps)
	done := now

	for p := first; p <= last; p++ {
		lo, hi, dataLo, pageLo := overlap(off, len(data), p, v.fs.PageSize())
		if hi <= lo {
			continue
		}
		page := v.getPageBuf()
		fullPage := pageLo == 0 && hi-lo == ps
		if !fullPage {
			// Read-modify-write: obtain the current page content.
			t, err := v.loadPageForRMW(done, f, p, page)
			if err != nil {
				return 0, t, err
			}
			done = t
		}
		copy(page[pageLo:], data[dataLo:dataLo+int(hi-lo)])

		key := pagecache.Key{File: f.inode.Ino, Index: p}
		marked, err := v.cache.MarkDirty(key, page)
		if err != nil {
			return 0, done, err
		}
		if !marked {
			if err := v.cache.Insert(key, true, page); err != nil {
				return 0, done, err
			}
		}
	}
	v.io.Writes++
	if v.router != nil {
		v.router.OnWrite(f.inode.Ino, off, len(data))
	}
	done, err := v.drainWriteback(done)
	if err != nil {
		return 0, done, err
	}
	return len(data), v.copyOut(done), nil
}

// loadPageForRMW fills page with the current content of file page p:
// from the dirty cache copy, the clean oracle, the device (timed block
// read), or zeros for a hole.
func (v *VFS) loadPageForRMW(now sim.Time, f *File, p uint64, page []byte) (sim.Time, error) {
	key := pagecache.Key{File: f.inode.Ino, Index: p}
	if data, dirty, ok := v.cache.Lookup(key); ok {
		if dirty {
			copy(page, data)
			return now, nil
		}
		return now, v.fs.Peek(f.inode, int64(p)*int64(v.fs.PageSize()), pageTrim(page, f, p, v.fs.PageSize()))
	}
	got, done, err := v.fetchPages(now, f, p, 1, page, 0)
	if err == nil && !got {
		// Hole page: reads as zeros, and the buffer may be recycled.
		for i := range page {
			page[i] = 0
		}
	}
	return done, err
}

// pageTrim bounds the oracle read to the file tail (the last page of a
// file whose size is not page-aligned is shorter on the device).
func pageTrim(page []byte, f *File, p uint64, pageSize int) []byte {
	start := int64(p) * int64(pageSize)
	if rem := f.inode.Size - start; rem < int64(len(page)) {
		return page[:rem]
	}
	return page
}

// Sync flushes this file's dirty pages to the device, chaining write
// completions in virtual time — fsync(2). The whole flush chain is
// attributed to the writeback stage: fsync is, by definition, time spent
// blocked on dirty-page persistence.
func (f *File) Sync(now sim.Time) (sim.Time, error) {
	v := f.v
	if f.closed {
		return now, ErrClosed
	}
	v.sa.Begin(now)
	done := now
	err := v.cache.FlushDirtySelect(
		func(k pagecache.Key) bool { return k.File == f.inode.Ino },
		func(k pagecache.Key, data []byte) error {
			t, err := v.writebackPage(done, k, data)
			if err != nil {
				return err
			}
			v.putPageBuf(data)
			done = t
			return nil
		})
	v.sa.Reattribute(now, telemetry.StageWriteback)
	v.sa.Mark(telemetry.StageWriteback, done)
	v.sa.Finish(done)
	return done, err
}

// SyncAll flushes every dirty page of every file — syncfs(2).
func (v *VFS) SyncAll(now sim.Time) (sim.Time, error) {
	v.sa.Begin(now)
	done := now
	err := v.cache.FlushDirty(func(k pagecache.Key, data []byte) error {
		t, err := v.writebackPage(done, k, data)
		if err != nil {
			return err
		}
		v.putPageBuf(data)
		done = t
		return nil
	})
	v.sa.Reattribute(now, telemetry.StageWriteback)
	v.sa.Mark(telemetry.StageWriteback, done)
	v.sa.Finish(done)
	return done, err
}

// writebackPage persists one dirty page.
func (v *VFS) writebackPage(now sim.Time, key pagecache.Key, data []byte) (sim.Time, error) {
	ino, err := v.fs.InodeByID(key.File)
	if err != nil {
		return now, err
	}
	lba, err := ino.PageToLBA(key.Index)
	if err != nil {
		return now, err
	}
	done, moved, err := v.blk.WritePages(now, lba, data)
	if err != nil {
		return done, err
	}
	if out := v.inj.Check(fault.SiteVFSWriteback, lba); out.Hit {
		// Transient writeback failure: the flusher re-issues the command
		// from the failed attempt's completion time.
		v.fltWB.Inc()
		var rmoved uint64
		done, rmoved, err = v.blk.WritePages(done, lba, data)
		if err != nil {
			return done, err
		}
		moved += rmoved
	}
	v.io.BytesWritten += moved
	return done, nil
}

// FlushPendingWriteback lands any evicted-but-unflushed pages on the device.
// The fine router calls it immediately before a direct LBA read: its own
// budget rebalancing can evict dirty pages mid-request (the page cache
// shrinks under syncBudget), and a fine fetch that races ahead of their
// writeback would read — and admit into the fine cache — the pre-flush flash
// content. The same rule guards the block path at the top of fetchPages.
func (v *VFS) FlushPendingWriteback(now sim.Time) (sim.Time, error) {
	if len(v.pendingWB) == 0 {
		return now, nil
	}
	return v.drainWriteback(now)
}

// drainWriteback persists dirty pages that were evicted since the last
// drain. Writeback is asynchronous, as in the kernel's flusher threads: the
// device commands issue at now and occupy the FTL/NAND resource timelines
// (delaying later foreground I/O through contention), but the calling
// request does not block on the program latency.
func (v *VFS) drainWriteback(now sim.Time) (sim.Time, error) {
	// The drained commands cost the foreground request no virtual time;
	// suspend stage attribution so their completion marks don't leak into
	// the request's account (their device occupancy still lands on the
	// resource timelines).
	v.sa.Suspend()
	defer v.sa.Resume()
	for len(v.pendingWB) > 0 {
		pending := v.pendingWB
		v.pendingWB = nil
		for _, wb := range pending {
			if _, err := v.writebackPage(now, wb.key, wb.data); err != nil {
				return now, err
			}
			v.putPageBuf(wb.data)
		}
	}
	return now, nil
}

// ReadFull reads exactly len(buf) bytes at off or fails.
func (f *File) ReadFull(now sim.Time, buf []byte, off int64) (sim.Time, error) {
	n, done, err := f.ReadAt(now, buf, off)
	if err != nil && err != io.EOF {
		return done, err
	}
	if n != len(buf) {
		return done, fmt.Errorf("vfs: short read %d of %d at %d", n, len(buf), off)
	}
	return done, nil
}
