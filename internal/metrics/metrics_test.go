package metrics

import (
	"strings"
	"testing"
	"testing/quick"

	"pipette/internal/sim"
)

func TestIOReadAmplification(t *testing.T) {
	var io IO
	if io.ReadAmplification() != 0 {
		t.Fatal("empty IO should report 0 amplification")
	}
	io.BytesRequested = 128
	io.BytesTransferred = 4096
	if got := io.ReadAmplification(); got != 32 {
		t.Fatalf("amplification = %v, want 32", got)
	}
}

func TestIOTrafficMBMatchesPaperUnits(t *testing.T) {
	// 2.5M transfers of 4096 B render as 9765.6 MB in the paper's Table 2.
	io := IO{BytesTransferred: 2_500_000 * 4096}
	if got := io.TrafficMB(); got < 9765.5 || got > 9765.7 {
		t.Fatalf("TrafficMB = %v, want ~9765.6", got)
	}
	// 2.5M transfers of 128 B render as 305.2 MB.
	io = IO{BytesTransferred: 2_500_000 * 128}
	if got := io.TrafficMB(); got < 305.1 || got > 305.3 {
		t.Fatalf("TrafficMB = %v, want ~305.2", got)
	}
}

func TestCacheHitRatio(t *testing.T) {
	var c Cache
	if c.HitRatio() != 0 {
		t.Fatal("empty cache should report 0 hit ratio")
	}
	for i := 0; i < 10; i++ {
		c.Record(i < 7)
	}
	if got := c.HitRatio(); got != 0.7 {
		t.Fatalf("HitRatio = %v, want 0.7", got)
	}
	if c.Hits != 7 || c.Accesses != 10 {
		t.Fatalf("counters = %d/%d, want 7/10", c.Hits, c.Accesses)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	samples := []sim.Time{100, 200, 300, 400, 10000}
	for _, s := range samples {
		h.Observe(s)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Min() != 100 || h.Max() != 10000 {
		t.Fatalf("min/max = %v/%v, want 100/10000", h.Min(), h.Max())
	}
	if got := h.Mean(); got != 2200 {
		t.Fatalf("Mean = %v, want 2200", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample not clamped: min=%v count=%d", h.Min(), h.Count())
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Observe(sim.Time(v % 1_000_000))
		}
		q50, q99 := h.Quantile(0.5), h.Quantile(0.99)
		// Quantiles must be ordered and within [min, max].
		return q50 <= q99 && q50 >= h.Min() && q99 <= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileClampsQ(t *testing.T) {
	var h Histogram
	h.Observe(500)
	if h.Quantile(-1) != 500 || h.Quantile(2) != 500 {
		t.Fatal("out-of-range q should clamp")
	}
}

func TestLog2Bucket(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1024: 10}
	for v, want := range cases {
		if got := log2Bucket(v); got != want {
			t.Errorf("log2Bucket(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestSnapshotThroughput(t *testing.T) {
	s := Snapshot{Ops: 1000, Elapsed: sim.Second}
	if got := s.ThroughputOpsPerSec(); got != 1000 {
		t.Fatalf("ThroughputOpsPerSec = %v, want 1000", got)
	}
	s.IO.BytesRequested = 10 << 20
	if got := s.ThroughputMBPerSec(); got != 10 {
		t.Fatalf("ThroughputMBPerSec = %v, want 10", got)
	}
	var empty Snapshot
	if empty.ThroughputOpsPerSec() != 0 || empty.ThroughputMBPerSec() != 0 {
		t.Fatal("zero-elapsed snapshot should report 0 throughput")
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Header: []string{"Workload", "A", "B"}}
	tab.AddRow("Block I/O", "1.00", "1.00")
	tab.AddRow("Pipette", "31.20", "15.00")
	out := tab.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("Render produced %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Workload") || !strings.Contains(lines[3], "31.20") {
		t.Fatalf("unexpected render:\n%s", out)
	}
	// All lines should be equally wide (aligned columns).
	for _, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Fatalf("misaligned table:\n%s", out)
		}
	}
}

func TestTableRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row arity did not panic")
		}
	}()
	tab := Table{Header: []string{"a", "b"}}
	tab.AddRow("only-one")
}

func TestTableCSV(t *testing.T) {
	tab := Table{Header: []string{"x", "y"}}
	tab.AddRow("1", "2")
	if got := tab.CSV(); got != "x,y\n1,2\n" {
		t.Fatalf("CSV = %q", got)
	}
}

func TestTableSort(t *testing.T) {
	tab := Table{Header: []string{"k", "v"}}
	tab.AddRow("b", "2")
	tab.AddRow("a", "1")
	tab.SortRowsByFirstColumn()
	if tab.Rows[0][0] != "a" {
		t.Fatalf("rows not sorted: %v", tab.Rows)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(100)
	a.Observe(200)
	b.Observe(50)
	b.Observe(4000)

	a.Merge(&b)
	if a.Count() != 4 {
		t.Fatalf("merged count = %d, want 4", a.Count())
	}
	if a.Sum() != 4350 {
		t.Fatalf("merged sum = %v, want 4350", a.Sum())
	}
	if a.Min() != 50 || a.Max() != 4000 {
		t.Fatalf("merged min/max = %v/%v, want 50/4000", a.Min(), a.Max())
	}

	// Merging nil or an empty histogram is a no-op.
	a.Merge(nil)
	a.Merge(&Histogram{})
	if a.Count() != 4 {
		t.Fatalf("no-op merge changed count to %d", a.Count())
	}

	// Merging into an empty histogram copies the extremes.
	var c Histogram
	c.Merge(&a)
	if c.Min() != 50 || c.Max() != 4000 || c.Count() != 4 {
		t.Fatalf("merge into empty = min %v max %v count %d", c.Min(), c.Max(), c.Count())
	}
}

func TestHistogramForEachBucket(t *testing.T) {
	var h Histogram
	h.Observe(1) // bucket 0: [0,2)
	h.Observe(5) // bucket 2: [4,8)
	h.Observe(5)
	h.Observe(1000) // bucket 9: [512,1024)

	type row struct {
		lo, hi sim.Time
		n      uint64
	}
	var got []row
	h.ForEachBucket(func(lo, hi sim.Time, n uint64) bool {
		got = append(got, row{lo, hi, n})
		return true
	})
	want := []row{{0, 2, 1}, {4, 8, 2}, {512, 1024, 1}}
	if len(got) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Early stop after the first bucket.
	calls := 0
	h.ForEachBucket(func(lo, hi sim.Time, n uint64) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop made %d calls, want 1", calls)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	single := func() *Histogram {
		var h Histogram
		h.Observe(500)
		return &h
	}
	multi := func() *Histogram {
		var h Histogram
		for _, v := range []sim.Time{100, 200, 300, 400, 10000} {
			h.Observe(v)
		}
		return &h
	}
	cases := []struct {
		name string
		h    *Histogram
		q    float64
		want sim.Time
	}{
		{"empty", &Histogram{}, 0.5, 0},
		{"single q=0", single(), 0, 500},
		{"single q=0.5", single(), 0.5, 500},
		{"single q=1", single(), 1, 500},
		{"single q<0", single(), -1, 500},
		{"single q>1", single(), 2, 500},
		{"multi q=0 exact min", multi(), 0, 100},
		{"multi q=1 exact max", multi(), 1, 10000},
	}
	for _, c := range cases {
		if got := c.h.Quantile(c.q); got != c.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", c.name, c.q, got, c.want)
		}
	}
	// Mid quantiles stay within the observed range.
	h := multi()
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if v := h.Quantile(q); v < h.Min() || v > h.Max() {
			t.Errorf("Quantile(%v) = %v outside [%v,%v]", q, v, h.Min(), h.Max())
		}
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tab := Table{Header: []string{"phase", "note"}}
	tab.AddRow("read, coalesced", "plain")
	tab.AddRow(`say "hi"`, "line\nbreak")
	want := "phase,note\n" +
		`"read, coalesced",plain` + "\n" +
		`"say ""hi""","line` + "\nbreak\"\n"
	if got := tab.CSV(); got != want {
		t.Fatalf("CSV quoting:\n got %q\nwant %q", got, want)
	}
}
