// Package metrics collects the measurements the paper's evaluation reports:
// I/O traffic over the host interface, per-cache hit ratios, request latency
// distributions, and throughput derived from virtual time.
//
// All types here are plain accumulators; they are not safe for concurrent
// use (the simulator is single-threaded by design for determinism).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pipette/internal/sim"
)

// IO accumulates host-interface traffic, split by direction and by the path
// that caused it. "Traffic" is the paper's metric: bytes moved across the
// PCIe link between the device and host memory, regardless of how many of
// those bytes the application asked for.
type IO struct {
	BytesRequested   uint64 // bytes the application asked to read
	BytesTransferred uint64 // bytes moved device -> host (read traffic)
	BytesWritten     uint64 // bytes moved host -> device (write traffic)

	BlockReads uint64 // block-interface read commands issued to the device
	FineReads  uint64 // fine-grained (byte-interface) commands issued
	Writes     uint64 // write commands issued
}

// ReadAmplification reports transferred/requested; 0 if nothing requested.
func (io *IO) ReadAmplification() float64 {
	if io.BytesRequested == 0 {
		return 0
	}
	return float64(io.BytesTransferred) / float64(io.BytesRequested)
}

// TrafficMB reports read traffic in binary megabytes, matching the paper's
// MB tables (2.5e6 * 4096 B renders as 9765.6, as in Table 2).
func (io *IO) TrafficMB() float64 {
	return float64(io.BytesTransferred) / (1 << 20)
}

// Cache accumulates hit/access counts for one cache (page cache or the
// fine-grained read cache).
type Cache struct {
	Hits     uint64
	Accesses uint64

	Insertions uint64
	Evictions  uint64
	Bypasses   uint64 // reads served via TempBuf / not admitted
}

// HitRatio reports hits/accesses; 0 if never accessed.
func (c *Cache) HitRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}

// Record notes one access and whether it hit.
func (c *Cache) Record(hit bool) {
	c.Accesses++
	if hit {
		c.Hits++
	}
}

// Histogram is a log2-bucketed latency histogram over virtual time.
// Bucket i covers [2^i, 2^(i+1)) nanoseconds; bucket 0 covers [0, 2).
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     sim.Time
	min     sim.Time
	max     sim.Time
}

// Observe records one latency sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(d sim.Time) {
	if d < 0 {
		d = 0
	}
	h.buckets[log2Bucket(uint64(d))]++
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
}

func log2Bucket(v uint64) int {
	b := 0
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean reports the mean latency; 0 with no samples.
func (h *Histogram) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Min reports the smallest observed sample (0 with no samples).
func (h *Histogram) Min() sim.Time { return h.min }

// Max reports the largest observed sample.
func (h *Histogram) Max() sim.Time { return h.max }

// Sum reports the total of all samples.
func (h *Histogram) Sum() sim.Time { return h.sum }

// Merge folds other's samples into h. Bucket counts, count, and sum add;
// min/max take the tighter extreme. Merging an empty histogram is a no-op.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
	h.sum += other.sum
}

// ForEachBucket calls fn for every non-empty bucket, in ascending latency
// order, with the bucket's [lo, hi) bounds and sample count. Iteration
// stops early if fn returns false.
func (h *Histogram) ForEachBucket(fn func(lo, hi sim.Time, count uint64) bool) {
	const maxTime = sim.Time(math.MaxInt64)
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		lo := maxTime
		if i == 0 {
			lo = 0
		} else if i < 63 {
			lo = sim.Time(1) << uint(i)
		}
		hi := maxTime
		if i < 62 {
			hi = sim.Time(1) << uint(i+1)
		}
		if !fn(lo, hi, n) {
			return
		}
	}
}

// Quantile estimates the q'th quantile (q in [0,1]) from the buckets.
// The estimate is the geometric midpoint of the containing bucket, clamped
// to the observed min/max; q <= 0 and q >= 1 report the exact observed
// extremes (so single-sample histograms are exact at every q).
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if cum > target {
			lo := uint64(1) << uint(i)
			if i == 0 {
				lo = 0
			}
			est := sim.Time(lo + lo/2)
			if est < h.min {
				est = h.min
			}
			if est > h.max {
				est = h.max
			}
			return est
		}
	}
	return h.max
}

// Snapshot is a copyable summary of one engine run: everything a paper table
// row needs.
type Snapshot struct {
	Name string // engine name

	IO        IO
	PageCache Cache
	FineCache Cache

	Ops      uint64   // completed read/write operations
	Elapsed  sim.Time // virtual time consumed
	MeanLat  sim.Time
	P99Lat   sim.Time
	MaxLat   sim.Time
	MemoryMB float64 // resident cache memory at end of run
}

// ThroughputOpsPerSec reports operations per virtual second.
func (s *Snapshot) ThroughputOpsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Ops) / s.Elapsed.Seconds()
}

// ThroughputMBPerSec reports requested bytes per virtual second in MiB.
func (s *Snapshot) ThroughputMBPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.IO.BytesRequested) / (1 << 20) / s.Elapsed.Seconds()
}

// String renders a one-line summary.
func (s *Snapshot) String() string {
	return fmt.Sprintf("%s: %d ops in %v (%.0f ops/s), traffic %.1f MB, pc %.1f%%, fgrc %.1f%%",
		s.Name, s.Ops, s.Elapsed, s.ThroughputOpsPerSec(), s.IO.TrafficMB(),
		s.PageCache.HitRatio()*100, s.FineCache.HitRatio()*100)
}

// Table formats rows of (label, values...) into an aligned text table, the
// output format of cmd/pipette-bench. Columns are right-aligned except the
// first.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row; it must have len(Header) cells.
func (t *Table) AddRow(cells ...string) {
	if len(t.Header) != 0 && len(cells) != len(t.Header) {
		panic(fmt.Sprintf("metrics: row has %d cells, header has %d", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render returns the aligned table as a string.
func (t *Table) Render() string {
	all := make([][]string, 0, len(t.Rows)+1)
	if len(t.Header) > 0 {
		all = append(all, t.Header)
	}
	all = append(all, t.Rows...)
	if len(all) == 0 {
		return ""
	}
	widths := make([]int, len(all[0]))
	for _, row := range all {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, row := range all {
		for i, c := range row {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
		if ri == 0 && len(t.Header) > 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CSV renders the table as comma-separated values. Cells containing a
// comma, double quote, or line break are quoted per RFC 4180 (embedded
// quotes doubled), so arbitrary labels round-trip through CSV readers.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvCell(c))
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// csvCell quotes a cell if RFC 4180 requires it.
func csvCell(c string) string {
	if !strings.ContainsAny(c, ",\"\n\r") {
		return c
	}
	return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
}

// SortRowsByFirstColumn orders rows lexically by their label column,
// for stable output when rows are assembled from a map.
func (t *Table) SortRowsByFirstColumn() {
	sort.Slice(t.Rows, func(i, j int) bool { return t.Rows[i][0] < t.Rows[j][0] })
}
