package index

import "pipette/internal/sim"

// bloom is a standard double-hashing Bloom filter, sized at build time by
// bits per key. Runs are immutable, so filters are built once at flush or
// merge and never mutated afterwards; they live in host memory — the space
// the LSM spends to avoid touching the device on negative lookups.
type bloom struct {
	bits  []uint64
	nbits uint64
	k     int
}

// newBloom sizes a filter for n keys at bitsPerKey.
func newBloom(n, bitsPerKey int) *bloom {
	if n < 1 {
		n = 1
	}
	nbits := uint64(n) * uint64(bitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	k := int(float64(bitsPerKey) * 0.69) // ln 2 * bits/key, the optimal count
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &bloom{bits: make([]uint64, (nbits+63)/64), nbits: nbits, k: k}
}

// hashes derives the double-hashing pair for key.
func bloomHashes(key string) (uint64, uint64) {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h1 := sim.Mix64(h)
	h2 := sim.Mix64(h1) | 1
	return h1, h2
}

func (f *bloom) add(key string) {
	h1, h2 := bloomHashes(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		f.bits[bit/64] |= 1 << (bit % 64)
	}
}

// mayContain reports whether key could be in the set (false is definitive).
func (f *bloom) mayContain(key string) bool {
	h1, h2 := bloomHashes(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}
