package index

import "encoding/binary"

// LSM runs reuse the value-log segment record format (bitcask-style), with
// the 16-byte encoded Loc as the record's value:
//
//	[0]     magic (recMagic)
//	[1]     flags (bit 0: tombstone)
//	[2:4]   key length, uint16 LE
//	[4:8]   value length, uint32 LE
//	[8:12]  FNV-32a checksum over bytes [1:8] ++ key ++ value
//	[12:]   key, then value
//
// Sharing the format means the same torn-tail/bit-flip reasoning applies: a
// truncated or damaged run fails its checksums instead of decoding into a
// wrong Loc. (The constants mirror internal/kv's segment codec; the store
// sits above this package, so the bytes are defined here.)
const (
	recMagic   = 0xC5
	recHdrSize = 12

	recFlagTombstone = 1 << 0

	locBytes = 16 // seg u32 ++ off u64 ++ vallen u32
)

// fnv32a hashes the given byte sections (FNV-1a, 32-bit).
func fnv32a(sections ...[]byte) uint32 {
	h := uint32(2166136261)
	for _, s := range sections {
		for _, b := range s {
			h ^= uint32(b)
			h *= 16777619
		}
	}
	return h
}

// recSize is a run record's on-file footprint for a key with a Loc value.
func recSize(keyLen int) int { return recHdrSize + keyLen + locBytes }

// encodeLoc renders l into dst[:locBytes].
func encodeLoc(dst []byte, l Loc) {
	binary.LittleEndian.PutUint32(dst[0:4], l.Seg)
	binary.LittleEndian.PutUint64(dst[4:12], uint64(l.Off))
	binary.LittleEndian.PutUint32(dst[12:16], l.ValLen)
}

func decodeLoc(b []byte) Loc {
	return Loc{
		Seg:    binary.LittleEndian.Uint32(b[0:4]),
		Off:    int64(binary.LittleEndian.Uint64(b[4:12])),
		ValLen: binary.LittleEndian.Uint32(b[12:16]),
	}
}

// appendRunRecord appends one encoded run record to dst.
func appendRunRecord(dst []byte, key string, l Loc, tombstone bool) []byte {
	base := len(dst)
	sz := recSize(len(key))
	for cap(dst) < base+sz {
		dst = append(dst[:cap(dst)], 0)
	}
	dst = dst[:base+sz]
	b := dst[base:]
	b[0] = recMagic
	b[1] = 0
	if tombstone {
		b[1] = recFlagTombstone
	}
	binary.LittleEndian.PutUint16(b[2:4], uint16(len(key)))
	binary.LittleEndian.PutUint32(b[4:8], locBytes)
	copy(b[recHdrSize:], key)
	encodeLoc(b[recHdrSize+len(key):], l)
	binary.LittleEndian.PutUint32(b[8:12], fnv32a(b[1:8], b[recHdrSize:sz]))
	return dst
}

// parseRunRecord decodes one run record at b[0:]; ok=false means no record
// starts here (block padding or damage).
func parseRunRecord(b []byte) (key string, l Loc, tombstone bool, size int, ok bool) {
	if len(b) < recHdrSize || b[0] != recMagic {
		return "", Loc{}, false, 0, false
	}
	if b[1]&^byte(recFlagTombstone) != 0 {
		return "", Loc{}, false, 0, false
	}
	klen := int(binary.LittleEndian.Uint16(b[2:4]))
	vlen := int(binary.LittleEndian.Uint32(b[4:8]))
	if klen == 0 || vlen != locBytes || recSize(klen) > len(b) {
		return "", Loc{}, false, 0, false
	}
	sz := recSize(klen)
	if fnv32a(b[1:8], b[recHdrSize:sz]) != binary.LittleEndian.Uint32(b[8:12]) {
		return "", Loc{}, false, 0, false
	}
	return string(b[recHdrSize : recHdrSize+klen]),
		decodeLoc(b[recHdrSize+klen : sz]),
		b[1]&recFlagTombstone != 0,
		sz, true
}
