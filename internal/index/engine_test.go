package index_test

import (
	"fmt"
	"sort"
	"testing"

	"pipette/internal/blockdev"
	"pipette/internal/core"
	"pipette/internal/extfs"
	"pipette/internal/index"
	"pipette/internal/kv"
	"pipette/internal/nvme"
	"pipette/internal/sim"
	"pipette/internal/ssd"
	"pipette/internal/vfs"
)

// testBackend builds a small but real storage stack (the same one the KV
// store's tests use). fine additionally installs the Pipette fine-read
// engine so O_FINE_GRAINED handles work.
func testBackend(t testing.TB, fine bool) index.Backend {
	t.Helper()
	cfg := ssd.DefaultConfig()
	cfg.NAND.Channels = 2
	cfg.NAND.WaysPerChannel = 2
	cfg.NAND.PlanesPerDie = 1
	cfg.NAND.BlocksPerPlane = 64
	cfg.NAND.PagesPerBlock = 64
	ctrl, err := ssd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drv := nvme.NewDriver(ctrl, 64, nvme.DefaultCosts())
	blk, err := blockdev.New(drv, ctrl.PageSize(), blockdev.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fs := extfs.New(ctrl)
	vcfg := vfs.DefaultConfig()
	vcfg.PageCachePages = 64
	v, err := vfs.New(fs, blk, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	if fine {
		if _, err := core.New(v, drv, core.DefaultConfig()); err != nil {
			t.Fatal(err)
		}
	}
	return kv.VFSBackend{V: v}
}

// testEngineConfig tunes the knobs down so splits, flushes, and merges all
// happen within a few hundred keys.
func testEngineConfig(kind index.Kind, fine bool) index.Config {
	return index.Config{
		Kind:             kind,
		NamePrefix:       "idx/",
		Fine:             fine,
		NodeBytes:        256,
		ArenaNodes:       64,
		MemtableEntries:  64,
		BloomBitsPerKey:  10,
		BlockBytes:       256,
		BlockCacheBlocks: 16,
		LevelFanout:      2,
	}
}

func testKey(i int) string { return fmt.Sprintf("k-%04d", i) }

// TestEngineConformance drives every engine, fine and block, through the
// same insert/overwrite/delete workload against a reference map, checking
// lookups (present and absent), full and mid-start ordered scans, and early
// scan termination.
func TestEngineConformance(t *testing.T) {
	t.Parallel()
	for _, kind := range index.Kinds() {
		for _, fine := range []bool{false, true} {
			kind, fine := kind, fine
			t.Run(fmt.Sprintf("%s/fine=%v", kind, fine), func(t *testing.T) {
				t.Parallel()
				be := testBackend(t, fine)
				eng, err := index.New(be, testEngineConfig(kind, fine))
				if err != nil {
					t.Fatal(err)
				}
				ref := make(map[string]index.Loc)
				now := sim.Time(0)

				tick := func() {
					if _, done, err := eng.Tick(now); err != nil {
						t.Fatal(err)
					} else {
						now = done
					}
				}
				const n = 600
				for i := 0; i < n; i++ {
					l := index.Loc{Seg: uint32(i%7 + 1), Off: int64(i) * 64, ValLen: uint32(i%100 + 1)}
					if now, err = eng.Insert(now, testKey(i), l); err != nil {
						t.Fatal(err)
					}
					ref[testKey(i)] = l
					if i%100 == 99 {
						tick()
					}
				}
				for i := 0; i < n; i += 3 { // overwrites supersede
					l := index.Loc{Seg: uint32(i%5 + 20), Off: int64(i) * 96, ValLen: uint32(i%50 + 1)}
					if now, err = eng.Insert(now, testKey(i), l); err != nil {
						t.Fatal(err)
					}
					ref[testKey(i)] = l
				}
				for i := 0; i < n; i += 5 { // deletes, some of absent keys later
					if now, err = eng.Delete(now, testKey(i)); err != nil {
						t.Fatal(err)
					}
					delete(ref, testKey(i))
				}
				tick()
				tick()

				// Lookups: every possible key, present or absent, plus a range
				// past the keyspace.
				for i := 0; i < n+100; i++ {
					key := testKey(i)
					l, ok, done, err := eng.Lookup(now, key)
					if err != nil {
						t.Fatalf("Lookup(%s): %v", key, err)
					}
					now = done
					want, present := ref[key]
					if ok != present || (ok && l != want) {
						t.Fatalf("Lookup(%s) = %v %v, want %v %v", key, l, ok, want, present)
					}
				}

				// Ordered scans, full and from a mid key.
				wantKeys := make([]string, 0, len(ref))
				for k := range ref {
					wantKeys = append(wantKeys, k)
				}
				sort.Strings(wantKeys)
				for _, start := range []string{"", testKey(n / 2)} {
					var got []string
					now, err = eng.Scan(now, start, func(now sim.Time, key string, l index.Loc) (sim.Time, bool) {
						if l != ref[key] {
							t.Fatalf("Scan yielded %s -> %v, want %v", key, l, ref[key])
						}
						got = append(got, key)
						return now, true
					})
					if err != nil {
						t.Fatal(err)
					}
					i := sort.SearchStrings(wantKeys, start)
					if fmt.Sprint(got) != fmt.Sprint(wantKeys[i:]) {
						t.Fatalf("Scan(%q): %d keys, want %d (first diff near %v)", start, len(got), len(wantKeys[i:]), diffAt(got, wantKeys[i:]))
					}
				}

				// Early termination stops exactly where fn says.
				count := 0
				now, err = eng.Scan(now, "", func(now sim.Time, key string, l index.Loc) (sim.Time, bool) {
					count++
					return now, count < 10
				})
				if err != nil || count != 10 {
					t.Fatalf("early-stop scan visited %d keys (err %v), want 10", count, err)
				}

				s := eng.Stats()
				if s.Inserts == 0 || s.Lookups == 0 {
					t.Fatalf("stats not counting: %+v", s)
				}
				if _, err := eng.Close(now); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func diffAt(got, want []string) string {
	for i := 0; i < len(got) && i < len(want); i++ {
		if got[i] != want[i] {
			return fmt.Sprintf("[%d] got %s want %s", i, got[i], want[i])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(got), len(want))
}

// TestBTreeSplitMerge forces deep trees and heavy deletion, checking the
// structural stats and that the tree stays correct throughout.
func TestBTreeSplitMerge(t *testing.T) {
	t.Parallel()
	be := testBackend(t, true)
	cfg := testEngineConfig(index.BTree, true)
	eng, err := index.New(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	const n = 800
	for i := 0; i < n; i++ {
		if now, err = eng.Insert(now, testKey(i*7%n), index.Loc{Seg: uint32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	s := eng.Stats()
	if s.Splits == 0 || s.Height < 3 || s.Nodes < 10 {
		t.Fatalf("no tree growth: %+v", s)
	}
	if s.NodeReadsPerLookup() != 0 {
		t.Fatalf("NodeReadsPerLookup before lookups = %f", s.NodeReadsPerLookup())
	}

	// Delete most keys; the tree must shrink and stay consistent.
	for i := 0; i < n; i++ {
		if i%8 != 0 {
			if now, err = eng.Delete(now, testKey(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	s = eng.Stats()
	if s.Merges == 0 {
		t.Fatalf("deletes never merged or borrowed: %+v", s)
	}
	for i := 0; i < n; i++ {
		_, ok, done, err := eng.Lookup(now, testKey(i))
		if err != nil {
			t.Fatal(err)
		}
		now = done
		if want := i%8 == 0; ok != want {
			t.Fatalf("Lookup(%s) = %v, want %v", testKey(i), ok, want)
		}
	}
	s = eng.Stats()
	if s.NodeReads == 0 || float64(s.NodeReads) < float64(s.Lookups) {
		t.Fatalf("lookups read no nodes: %+v", s)
	}
}

// TestBTreeChecksumRejectsCorruption flips a bit in a node cell and checks
// the engine returns an error instead of serving a wrong Loc.
func TestBTreeChecksumRejectsCorruption(t *testing.T) {
	t.Parallel()
	be := testBackend(t, false)
	cfg := testEngineConfig(index.BTree, false)
	eng, err := index.New(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	for i := 0; i < 300; i++ {
		if now, err = eng.Insert(now, testKey(i), index.Loc{Seg: uint32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Node id 1 — arena 0, offset 0 — is the leftmost leaf: splits keep the
	// left half in place, so the smallest key always lives there. Flip one
	// payload bit in the cell.
	w, err := be.OpenWriter("idx/bt-00000000")
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if _, now, err = w.ReadAt(now, b, 20); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 1 << 3
	if _, now, err = w.WriteAt(now, b, 20); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := eng.Lookup(now, testKey(0)); err == nil {
		t.Fatal("lookup through a corrupt node cell returned no error")
	}
}

// TestLSMFlushMergeBloomCache exercises the LSM machinery: flushes, level
// merges, bloom pruning on negative lookups, and block-cache hits on
// repeated probes.
func TestLSMFlushMergeBloomCache(t *testing.T) {
	t.Parallel()
	be := testBackend(t, true)
	cfg := testEngineConfig(index.LSM, true)
	eng, err := index.New(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	const n = 500
	for i := 0; i < n; i++ {
		if now, err = eng.Insert(now, testKey(i), index.Loc{Seg: uint32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	s := eng.Stats()
	if s.Flushes == 0 || s.Runs == 0 {
		t.Fatalf("memtable never flushed: %+v", s)
	}

	// Drain the merge queue.
	for {
		ran, done, err := eng.Tick(now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		if !ran {
			break
		}
	}
	s = eng.Stats()
	if s.Compactions == 0 {
		t.Fatalf("ticks never merged a level: %+v", s)
	}
	if s.Runs > cfg.LevelFanout*3 {
		t.Fatalf("merge left %d runs", s.Runs)
	}

	// All keys still resolve after merging.
	for i := 0; i < n; i++ {
		l, ok, done, err := eng.Lookup(now, testKey(i))
		if err != nil {
			t.Fatal(err)
		}
		now = done
		if !ok || l.Seg != uint32(i+1) {
			t.Fatalf("Lookup(%s) after merge = %v %v", testKey(i), l, ok)
		}
	}

	// Negative lookups: the filters must prune nearly everything.
	before := eng.Stats()
	for i := 0; i < n; i++ {
		_, ok, done, err := eng.Lookup(now, fmt.Sprintf("absent-%04d", i))
		if err != nil {
			t.Fatal(err)
		}
		now = done
		if ok {
			t.Fatalf("absent key %d found", i)
		}
	}
	s = eng.Stats()
	if s.BloomNegative <= before.BloomNegative {
		t.Fatalf("bloom filters never pruned a run: %+v", s)
	}
	if rate := s.BloomFPRate(); rate > 0.2 {
		t.Fatalf("bloom FP rate %.3f too high", rate)
	}

	// Repeated probes of the same keys hit the block cache.
	before = eng.Stats()
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 4; i++ {
			if _, _, done, err := eng.Lookup(now, testKey(i)); err != nil {
				t.Fatal(err)
			} else {
				now = done
			}
		}
	}
	s = eng.Stats()
	if s.CacheHits <= before.CacheHits {
		t.Fatalf("repeated lookups never hit the block cache: %+v", s)
	}
	if _, err := eng.Close(now); err != nil {
		t.Fatal(err)
	}
}

// TestLSMTombstones checks deletes shadow older run entries across flushes
// and merges, and that scans mask them.
func TestLSMTombstones(t *testing.T) {
	t.Parallel()
	be := testBackend(t, false)
	cfg := testEngineConfig(index.LSM, false)
	eng, err := index.New(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	const n = 300
	for i := 0; i < n; i++ {
		if now, err = eng.Insert(now, testKey(i), index.Loc{Seg: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 2 {
		if now, err = eng.Delete(now, testKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	for pass := 0; pass < 2; pass++ {
		for {
			ran, done, err := eng.Tick(now)
			if err != nil {
				t.Fatal(err)
			}
			now = done
			if !ran {
				break
			}
		}
	}
	for i := 0; i < n; i++ {
		_, ok, done, err := eng.Lookup(now, testKey(i))
		if err != nil {
			t.Fatal(err)
		}
		now = done
		if want := i%2 == 1; ok != want {
			t.Fatalf("Lookup(%s) = %v, want %v", testKey(i), ok, want)
		}
	}
	count := 0
	now, err = eng.Scan(now, "", func(now sim.Time, key string, l index.Loc) (sim.Time, bool) {
		count++
		return now, true
	})
	if err != nil || count != n/2 {
		t.Fatalf("scan visited %d keys (err %v), want %d", count, err, n/2)
	}
}

// TestRemoveFiles checks stale engine files under a prefix are deleted and
// others preserved.
func TestRemoveFiles(t *testing.T) {
	t.Parallel()
	be := testBackend(t, false)
	for _, name := range []string{"idx/bt-00000000", "idx/lsm-L0-00000001", "other/file"} {
		w, err := be.Create(name, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := index.RemoveFiles(be, "idx/"); err != nil {
		t.Fatal(err)
	}
	for _, name := range be.Files() {
		if name != "other/file" {
			t.Fatalf("stale file %s survived", name)
		}
	}
}
