package index

// blockCache is a small exact-LRU cache of decoded run blocks, keyed by the
// run's global sequence number and block index. Runs are immutable, so a
// cached block can never go stale; entries for deleted runs are dropped
// eagerly when a merge retires their run. Its job is the LSM's second line
// of defense after the bloom filters: repeated probes of the same hot index
// block stop touching the device at all.
type blockCacheKey struct {
	seq uint64
	blk int
}

type blockCacheEntry struct {
	key        blockCacheKey
	data       []byte
	prev, next *blockCacheEntry
}

type blockCache struct {
	cap  int
	m    map[blockCacheKey]*blockCacheEntry
	head *blockCacheEntry // most recent
	tail *blockCacheEntry // eviction end
}

func newBlockCache(capacity int) *blockCache {
	return &blockCache{cap: capacity, m: make(map[blockCacheKey]*blockCacheEntry, capacity)}
}

func (c *blockCache) get(k blockCacheKey) ([]byte, bool) {
	e, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.unlink(e)
	c.push(e)
	return e.data, true
}

func (c *blockCache) put(k blockCacheKey, data []byte) {
	if c.cap <= 0 {
		return
	}
	if e, ok := c.m[k]; ok {
		e.data = data
		c.unlink(e)
		c.push(e)
		return
	}
	for len(c.m) >= c.cap {
		ev := c.tail
		c.unlink(ev)
		delete(c.m, ev.key)
	}
	e := &blockCacheEntry{key: k, data: data}
	c.m[k] = e
	c.push(e)
}

// dropRun evicts every block of a retired run.
func (c *blockCache) dropRun(seq uint64) {
	for e := c.head; e != nil; {
		next := e.next
		if e.key.seq == seq {
			c.unlink(e)
			delete(c.m, e.key)
		}
		e = next
	}
}

func (c *blockCache) push(e *blockCacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *blockCache) unlink(e *blockCacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
