package index

import (
	"encoding/binary"
	"fmt"
	"sort"

	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// Paged B+-tree engine. Nodes are fixed sub-page cells (NodeBytes, default
// 512 B) packed into arena files on the store's filesystem, so every
// traversal step is a timed read through the vfs: a block-granular stack
// rounds each one up to a full page, the fine-grained path transfers the
// node and nothing else. Interior nodes hold separator keys and child ids;
// leaves hold key -> Loc entries and are chained for range scans.
//
// Node cell layout (NodeBytes total):
//
//	[0]      magic (btMagic)
//	[1]      flags (bit 0: leaf)
//	[2:4]    entry count, uint16 LE
//	[4:8]    link, uint32 LE — next-leaf id for leaves, leftmost child for
//	         interior nodes (0 = none)
//	[8:10]   used entry bytes, uint16 LE
//	[10:14]  FNV-32a checksum over bytes [1:10] ++ entries
//	[14:]    entries, sorted by key:
//	         leaf:     [klen u16][key][seg u32][off u64][vallen u32]
//	         interior: [klen u16][key][child u32]
//
// An interior node's link child covers keys below its first separator;
// entry i's child covers [key_i, key_i+1). The checksum makes a torn or
// bit-flipped cell self-identifying, mirroring the value-log records: the
// engine refuses to decode damage rather than serve a wrong Loc (and the
// store rebuilds the whole index from the checksummed log at Open anyway).
const (
	btMagic   = 0xB7
	btHdrSize = 14

	btFlagLeaf = 1 << 0
)

const (
	btLeafExtra     = 2 + 16 // klen + Loc(seg, off, vallen)
	btInteriorExtra = 2 + 4  // klen + child id
)

// btNode is one decoded node. keys pairs with locs (leaf) or kids
// (interior); link is the next leaf or the leftmost child.
type btNode struct {
	id   uint32
	leaf bool
	link uint32
	keys []string
	locs []Loc
	kids []uint32
}

func (n *btNode) used() int {
	u := 0
	for _, k := range n.keys {
		if n.leaf {
			u += len(k) + btLeafExtra
		} else {
			u += len(k) + btInteriorExtra
		}
	}
	return u
}

// arena is one fixed-size node file.
type arena struct {
	name string
	w    File
	r    File
}

type btreeEngine struct {
	be  Backend
	cfg Config
	tr  telemetry.Tracer

	arenas []arena
	nextID uint32   // next never-used node id (1-based)
	free   []uint32 // freed node ids, reused LIFO

	root   uint32
	height int

	stats Stats
	buf   []byte // node codec scratch
}

func newBTree(be Backend, cfg Config) (*btreeEngine, error) {
	if cfg.NodeBytes < btHdrSize+2*btLeafExtra+16 {
		return nil, fmt.Errorf("index: NodeBytes %d too small for a btree node", cfg.NodeBytes)
	}
	if cfg.NodeBytes > be.PageSize() {
		return nil, fmt.Errorf("index: NodeBytes %d exceeds the %d B page — interior nodes must stay sub-page",
			cfg.NodeBytes, be.PageSize())
	}
	t := &btreeEngine{
		be:     be,
		cfg:    cfg,
		tr:     cfg.Tracer,
		nextID: 1,
		buf:    make([]byte, cfg.NodeBytes),
	}
	// The tree starts as one empty leaf root; the first arena is created by
	// the allocation below.
	id, err := t.alloc()
	if err != nil {
		return nil, err
	}
	t.root = id
	t.height = 1
	if _, err := t.writeNode(0, &btNode{id: id, leaf: true}); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *btreeEngine) Kind() Kind { return BTree }

func (t *btreeEngine) Stats() Stats {
	s := t.stats
	s.Height = t.height
	s.Nodes = int(t.nextID-1) - len(t.free)
	return s
}

func (t *btreeEngine) capacity() int { return t.cfg.NodeBytes - btHdrSize }

// entrySize is a leaf entry's footprint; the largest thing Insert must fit.
func entrySize(key string) int { return len(key) + btLeafExtra }

// ---- arena paging ----

func (t *btreeEngine) arenaName(i int) string {
	return fmt.Sprintf("%sbt-%08d", t.cfg.NamePrefix, i)
}

// alloc returns a node id, creating a new arena file when the id space of
// the existing ones is exhausted. Ids are 1-based so 0 can mean "none".
func (t *btreeEngine) alloc() (uint32, error) {
	if n := len(t.free); n > 0 {
		id := t.free[n-1]
		t.free = t.free[:n-1]
		return id, nil
	}
	id := t.nextID
	need := int(id-1)/t.cfg.ArenaNodes + 1
	for len(t.arenas) < need {
		name := t.arenaName(len(t.arenas))
		w, err := t.be.Create(name, int64(t.cfg.ArenaNodes)*int64(t.cfg.NodeBytes))
		if err != nil {
			return 0, fmt.Errorf("index: create arena %s: %w", name, err)
		}
		r, err := t.be.OpenReader(name, t.cfg.Fine)
		if err != nil {
			return 0, fmt.Errorf("index: open arena %s: %w", name, err)
		}
		t.arenas = append(t.arenas, arena{name: name, w: w, r: r})
	}
	t.nextID++
	return id, nil
}

func (t *btreeEngine) place(id uint32) (*arena, int64) {
	slot := int(id - 1)
	return &t.arenas[slot/t.cfg.ArenaNodes], int64(slot%t.cfg.ArenaNodes) * int64(t.cfg.NodeBytes)
}

// readNode fetches and decodes one node — a timed sub-page read down the
// configured path (the vfs page cache and fine-grained cache sit below, so
// hot upper levels hit host memory exactly as they would on real hardware).
func (t *btreeEngine) readNode(now sim.Time, id uint32) (*btNode, sim.Time, error) {
	ar, off := t.place(id)
	start := now
	got, done, err := ar.r.ReadAt(now, t.buf, off)
	if err != nil {
		return nil, done, fmt.Errorf("index: btree node %d: %w", id, err)
	}
	if got != t.cfg.NodeBytes {
		return nil, done, fmt.Errorf("index: btree node %d: short read %d", id, got)
	}
	t.stats.NodeReads++
	t.stats.BytesRead += uint64(got)
	if t.tr.Enabled() {
		t.tr.Span(telemetry.TrackIndex, "index.btree.node_read", start, done)
	}
	n, err := t.decode(id, t.buf)
	return n, done, err
}

func (t *btreeEngine) decode(id uint32, b []byte) (*btNode, error) {
	if b[0] != btMagic {
		return nil, fmt.Errorf("index: btree node %d: bad magic 0x%02x", id, b[0])
	}
	count := int(binary.LittleEndian.Uint16(b[2:4]))
	used := int(binary.LittleEndian.Uint16(b[8:10]))
	if btHdrSize+used > len(b) {
		return nil, fmt.Errorf("index: btree node %d: used %d overflows cell", id, used)
	}
	if sum := fnv32a(b[1:10], b[btHdrSize:btHdrSize+used]); sum != binary.LittleEndian.Uint32(b[10:14]) {
		return nil, fmt.Errorf("index: btree node %d: checksum mismatch", id)
	}
	n := &btNode{
		id:   id,
		leaf: b[1]&btFlagLeaf != 0,
		link: binary.LittleEndian.Uint32(b[4:8]),
		keys: make([]string, 0, count),
	}
	if n.leaf {
		n.locs = make([]Loc, 0, count)
	} else {
		n.kids = make([]uint32, 0, count)
	}
	p := btHdrSize
	for i := 0; i < count; i++ {
		if p+2 > btHdrSize+used {
			return nil, fmt.Errorf("index: btree node %d: truncated entry %d", id, i)
		}
		klen := int(binary.LittleEndian.Uint16(b[p : p+2]))
		extra := btInteriorExtra
		if n.leaf {
			extra = btLeafExtra
		}
		if p+klen+extra > btHdrSize+used {
			return nil, fmt.Errorf("index: btree node %d: entry %d overflows cell", id, i)
		}
		key := string(b[p+2 : p+2+klen])
		p += 2 + klen
		n.keys = append(n.keys, key)
		if n.leaf {
			n.locs = append(n.locs, Loc{
				Seg:    binary.LittleEndian.Uint32(b[p : p+4]),
				Off:    int64(binary.LittleEndian.Uint64(b[p+4 : p+12])),
				ValLen: binary.LittleEndian.Uint32(b[p+12 : p+16]),
			})
			p += 16
		} else {
			n.kids = append(n.kids, binary.LittleEndian.Uint32(b[p:p+4]))
			p += 4
		}
	}
	return n, nil
}

// writeNode encodes and writes one node cell — a timed sub-page write that
// lands in the page cache and reaches the device via writeback, like every
// other host write.
func (t *btreeEngine) writeNode(now sim.Time, n *btNode) (sim.Time, error) {
	b := t.buf
	for i := range b {
		b[i] = 0
	}
	b[0] = btMagic
	b[1] = 0
	if n.leaf {
		b[1] = btFlagLeaf
	}
	binary.LittleEndian.PutUint16(b[2:4], uint16(len(n.keys)))
	binary.LittleEndian.PutUint32(b[4:8], n.link)
	p := btHdrSize
	for i, k := range n.keys {
		binary.LittleEndian.PutUint16(b[p:p+2], uint16(len(k)))
		copy(b[p+2:], k)
		p += 2 + len(k)
		if n.leaf {
			binary.LittleEndian.PutUint32(b[p:p+4], n.locs[i].Seg)
			binary.LittleEndian.PutUint64(b[p+4:p+12], uint64(n.locs[i].Off))
			binary.LittleEndian.PutUint32(b[p+12:p+16], n.locs[i].ValLen)
			p += 16
		} else {
			binary.LittleEndian.PutUint32(b[p:p+4], n.kids[i])
			p += 4
		}
	}
	used := p - btHdrSize
	binary.LittleEndian.PutUint16(b[8:10], uint16(used))
	binary.LittleEndian.PutUint32(b[10:14], fnv32a(b[1:10], b[btHdrSize:p]))

	ar, off := t.place(n.id)
	wrote, done, err := ar.w.WriteAt(now, b, off)
	if err != nil {
		return done, fmt.Errorf("index: btree node %d: %w", n.id, err)
	}
	if wrote != len(b) {
		return done, fmt.Errorf("index: btree node %d: short write %d", n.id, wrote)
	}
	t.stats.NodeWrites++
	t.stats.BytesWritten += uint64(len(b))
	return done, nil
}

// childFor picks the child covering key in an interior node.
func (n *btNode) childFor(key string) (uint32, int) {
	// First separator greater than key; the child before it covers key.
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	if i == 0 {
		return n.link, -1
	}
	return n.kids[i-1], i - 1
}

// find returns key's slot in a sorted key list and whether it is present.
func find(keys []string, key string) (int, bool) {
	i := sort.SearchStrings(keys, key)
	return i, i < len(keys) && keys[i] == key
}

// ---- lookup ----

func (t *btreeEngine) Lookup(now sim.Time, key string) (Loc, bool, sim.Time, error) {
	t.stats.Lookups++
	id := t.root
	for {
		n, done, err := t.readNode(now, id)
		if err != nil {
			return Loc{}, false, done, err
		}
		now = done
		if n.leaf {
			i, ok := find(n.keys, key)
			if !ok {
				return Loc{}, false, now, nil
			}
			return n.locs[i], true, now, nil
		}
		id, _ = n.childFor(key)
	}
}

// ---- insert ----

// pathStep is one interior node on the descent, with the child slot taken
// (-1 = the link child).
type pathStep struct {
	node *btNode
	slot int
}

// descend walks root -> leaf for key, returning the interior path and leaf.
func (t *btreeEngine) descend(now sim.Time, key string) ([]pathStep, *btNode, sim.Time, error) {
	var path []pathStep
	id := t.root
	for {
		n, done, err := t.readNode(now, id)
		if err != nil {
			return nil, nil, done, err
		}
		now = done
		if n.leaf {
			return path, n, now, nil
		}
		child, slot := n.childFor(key)
		path = append(path, pathStep{node: n, slot: slot})
		id = child
	}
}

func (t *btreeEngine) Insert(now sim.Time, key string, l Loc) (sim.Time, error) {
	t.stats.Inserts++
	if entrySize(key) > t.capacity()/2 {
		return now, fmt.Errorf("index: key of %d bytes does not fit a %d B btree node", len(key), t.cfg.NodeBytes)
	}
	path, leaf, now, err := t.descend(now, key)
	if err != nil {
		return now, err
	}
	i, ok := find(leaf.keys, key)
	if ok {
		leaf.locs[i] = l
		return t.writeNode(now, leaf)
	}
	leaf.keys = append(leaf.keys, "")
	copy(leaf.keys[i+1:], leaf.keys[i:])
	leaf.keys[i] = key
	leaf.locs = append(leaf.locs, Loc{})
	copy(leaf.locs[i+1:], leaf.locs[i:])
	leaf.locs[i] = l
	if leaf.used() <= t.capacity() {
		return t.writeNode(now, leaf)
	}
	return t.splitUp(now, path, leaf)
}

// splitUp splits an overflowing node and propagates the promoted separator
// toward the root, splitting interior nodes as needed.
func (t *btreeEngine) splitUp(now sim.Time, path []pathStep, n *btNode) (sim.Time, error) {
	for {
		rightID, err := t.alloc()
		if err != nil {
			return now, err
		}
		t.stats.Splits++
		m := splitPoint(n)
		right := &btNode{id: rightID, leaf: n.leaf}
		var sep string
		if n.leaf {
			right.keys = append(right.keys, n.keys[m:]...)
			right.locs = append(right.locs, n.locs[m:]...)
			n.keys = n.keys[:m]
			n.locs = n.locs[:m]
			right.link = n.link
			n.link = rightID
			sep = right.keys[0]
		} else {
			// The separator at m moves up; its child becomes right's link.
			sep = n.keys[m]
			right.link = n.kids[m]
			right.keys = append(right.keys, n.keys[m+1:]...)
			right.kids = append(right.kids, n.kids[m+1:]...)
			n.keys = n.keys[:m]
			n.kids = n.kids[:m]
		}
		if now, err = t.writeNode(now, n); err != nil {
			return now, err
		}
		if now, err = t.writeNode(now, right); err != nil {
			return now, err
		}

		if len(path) == 0 {
			// Root split: the tree grows a level.
			rootID, err := t.alloc()
			if err != nil {
				return now, err
			}
			root := &btNode{id: rootID, link: n.id, keys: []string{sep}, kids: []uint32{rightID}}
			t.root = rootID
			t.height++
			return t.writeNode(now, root)
		}

		parent := path[len(path)-1].node
		path = path[:len(path)-1]
		i := sort.SearchStrings(parent.keys, sep)
		parent.keys = append(parent.keys, "")
		copy(parent.keys[i+1:], parent.keys[i:])
		parent.keys[i] = sep
		parent.kids = append(parent.kids, 0)
		copy(parent.kids[i+1:], parent.kids[i:])
		parent.kids[i] = rightID
		if parent.used() <= t.capacity() {
			return t.writeNode(now, parent)
		}
		n = parent
	}
}

// splitPoint picks the entry index where the left half's byte footprint
// first reaches half the node's, keeping both halves near balanced under
// variable-length keys.
func splitPoint(n *btNode) int {
	target := n.used() / 2
	extra := btInteriorExtra
	if n.leaf {
		extra = btLeafExtra
	}
	acc := 0
	for i, k := range n.keys {
		acc += len(k) + extra
		if acc >= target {
			// Both sides must keep at least one entry.
			if i == 0 {
				return 1
			}
			if i+1 >= len(n.keys) {
				return len(n.keys) - 1
			}
			return i + 1
		}
	}
	return len(n.keys) / 2
}

// ---- delete ----

func (t *btreeEngine) Delete(now sim.Time, key string) (sim.Time, error) {
	t.stats.Deletes++
	path, leaf, now, err := t.descend(now, key)
	if err != nil {
		return now, err
	}
	i, ok := find(leaf.keys, key)
	if !ok {
		return now, nil
	}
	leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
	leaf.locs = append(leaf.locs[:i], leaf.locs[i+1:]...)
	if now, err = t.writeNode(now, leaf); err != nil {
		return now, err
	}
	return t.rebalanceUp(now, path, leaf)
}

// rebalanceUp restores the underflow invariant from a shrunken node toward
// the root: merge with an adjacent sibling when both fit in one cell,
// otherwise borrow an entry from a fuller neighbor; a root interior node
// left without separators collapses into its only child.
func (t *btreeEngine) rebalanceUp(now sim.Time, path []pathStep, n *btNode) (sim.Time, error) {
	var err error
	for {
		if len(path) == 0 {
			// n is the root. An interior root with no separators has one
			// child left: the tree shrinks a level.
			if !n.leaf && len(n.keys) == 0 {
				t.free = append(t.free, n.id)
				t.root = n.link
				t.height--
				t.stats.Merges++
			}
			return now, nil
		}
		if n.used()*4 >= t.capacity() {
			return now, nil
		}
		step := path[len(path)-1]
		path = path[:len(path)-1]
		parent := step.node
		if now, err = t.rebalanceChild(now, parent, step.slot, n); err != nil {
			return now, err
		}
		n = parent
	}
}

// childAt resolves a parent's child pointer by slot (-1 = link).
func (n *btNode) childAt(slot int) uint32 {
	if slot < 0 {
		return n.link
	}
	return n.kids[slot]
}

// rebalanceChild fixes the underfull child at slot by merging with or
// borrowing from an adjacent sibling, rewriting every touched node. The
// parent is updated in memory and written; its own underflow is the
// caller's loop to fix.
func (t *btreeEngine) rebalanceChild(now sim.Time, parent *btNode, slot int, child *btNode) (sim.Time, error) {
	// Prefer the right sibling; fall back to the left. slot is the child's
	// separator index in parent (-1 when child is the link child), so the
	// right sibling is kids[slot+1] and the left is childAt(slot-1).
	var err error
	if slot+1 < len(parent.kids) {
		var right *btNode
		right, now, err = t.readNode(now, parent.kids[slot+1])
		if err != nil {
			return now, err
		}
		return t.joinOrBorrow(now, parent, slot+1, child, right)
	}
	if slot >= 0 {
		var left *btNode
		left, now, err = t.readNode(now, parent.childAt(slot-1))
		if err != nil {
			return now, err
		}
		return t.joinOrBorrow(now, parent, slot, left, child)
	}
	// No sibling: parent has a single child and no separators; the caller's
	// loop collapses it at the root.
	return now, nil
}

// joinOrBorrow balances the adjacent pair (left, right) whose separator is
// parent.keys[sepIdx]: a full merge when one cell fits both, otherwise one
// entry shifts across the separator when that actually relieves pressure.
func (t *btreeEngine) joinOrBorrow(now sim.Time, parent *btNode, sepIdx int, left, right *btNode) (sim.Time, error) {
	sep := parent.keys[sepIdx]
	merged := left.used() + right.used()
	if !left.leaf {
		merged += len(sep) + btInteriorExtra
	}
	var err error
	if merged <= t.capacity() {
		// Merge right into left and drop the separator from the parent.
		if left.leaf {
			left.keys = append(left.keys, right.keys...)
			left.locs = append(left.locs, right.locs...)
			left.link = right.link
		} else {
			left.keys = append(left.keys, sep)
			left.kids = append(left.kids, right.link)
			left.keys = append(left.keys, right.keys...)
			left.kids = append(left.kids, right.kids...)
		}
		parent.keys = append(parent.keys[:sepIdx], parent.keys[sepIdx+1:]...)
		parent.kids = append(parent.kids[:sepIdx], parent.kids[sepIdx+1:]...)
		t.free = append(t.free, right.id)
		t.stats.Merges++
		if now, err = t.writeNode(now, left); err != nil {
			return now, err
		}
		return t.writeNode(now, parent)
	}

	// Borrow toward the emptier side, only when the donor stays above the
	// underflow line afterwards.
	if left.used() < right.used() && len(right.keys) > 1 {
		if left.leaf {
			k, l := right.keys[0], right.locs[0]
			right.keys = right.keys[1:]
			right.locs = right.locs[1:]
			left.keys = append(left.keys, k)
			left.locs = append(left.locs, l)
			parent.keys[sepIdx] = right.keys[0]
		} else {
			// Rotate left through the separator: sep comes down to left,
			// right's link child crosses, right's first key replaces sep.
			left.keys = append(left.keys, sep)
			left.kids = append(left.kids, right.link)
			parent.keys[sepIdx] = right.keys[0]
			right.link = right.kids[0]
			right.keys = right.keys[1:]
			right.kids = right.kids[1:]
		}
	} else if right.used() < left.used() && len(left.keys) > 1 {
		last := len(left.keys) - 1
		if left.leaf {
			k, l := left.keys[last], left.locs[last]
			left.keys = left.keys[:last]
			left.locs = left.locs[:last]
			right.keys = append([]string{k}, right.keys...)
			right.locs = append([]Loc{l}, right.locs...)
			parent.keys[sepIdx] = k
		} else {
			// Rotate right through the separator.
			right.keys = append([]string{sep}, right.keys...)
			right.kids = append([]uint32{right.link}, right.kids...)
			right.link = left.kids[last]
			parent.keys[sepIdx] = left.keys[last]
			left.keys = left.keys[:last]
			left.kids = left.kids[:last]
		}
	} else {
		return now, nil // nothing productive to move; underfull is tolerated
	}
	t.stats.Merges++
	if now, err = t.writeNode(now, left); err != nil {
		return now, err
	}
	if now, err = t.writeNode(now, right); err != nil {
		return now, err
	}
	return t.writeNode(now, parent)
}

// ---- scan ----

func (t *btreeEngine) Scan(now sim.Time, start string, fn func(sim.Time, string, Loc) (sim.Time, bool)) (sim.Time, error) {
	_, leaf, now, err := t.descend(now, start)
	if err != nil {
		return now, err
	}
	i := sort.SearchStrings(leaf.keys, start)
	for {
		for ; i < len(leaf.keys); i++ {
			var more bool
			now, more = fn(now, leaf.keys[i], leaf.locs[i])
			if !more {
				return now, nil
			}
		}
		if leaf.link == 0 {
			return now, nil
		}
		leaf, now, err = t.readNode(now, leaf.link)
		if err != nil {
			return now, err
		}
		i = 0
	}
}

// ---- maintenance ----

func (t *btreeEngine) Tick(now sim.Time) (bool, sim.Time, error) { return false, now, nil }

func (t *btreeEngine) Close(now sim.Time) (sim.Time, error) {
	var err error
	for i := range t.arenas {
		ar := &t.arenas[i]
		if ar.w != nil {
			done, serr := ar.w.Sync(now)
			if serr != nil && err == nil {
				err = serr
			}
			now = done
			if cerr := ar.w.Close(); cerr != nil && err == nil {
				err = cerr
			}
			ar.w = nil
		}
		if ar.r != nil {
			if cerr := ar.r.Close(); cerr != nil && err == nil {
				err = cerr
			}
			ar.r = nil
		}
	}
	return now, err
}
