package index

import (
	"fmt"
	"sort"

	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// LSM engine: an in-memory memtable over immutable sorted runs on the
// store's filesystem. Inserts and deletes are blind memtable writes; a full
// memtable flushes to a level-0 run, and Tick merges a level that exceeds
// its fanout into the next one — write-optimized, at the price of reads
// that must consult every run that might hold the key. Two structures pay
// that read-amp down: a per-run bloom filter (sized by bits/key) prunes
// runs without touching the device, and a small block cache holds hot index
// blocks. What remains — the bloom false positives and cold block probes —
// is a stream of sub-page reads (BlockBytes, default 512 B): the
// fine-grained path transfers exactly a block where the block-granular
// stack pays a full page, which is the negative-lookup experiment.
//
// Runs use the value-log record format (see record.go), sorted by key and
// packed into BlockBytes blocks a record never straddles; the first key of
// each block is kept in memory as its fence pointer. Newer data shadows
// older: the memtable first, then runs by level (ascending) and, within a
// level, by sequence number (descending).

// run is one immutable sorted run file.
type run struct {
	level   int
	seq     uint64 // global allocation order; bigger = newer data
	name    string
	r       File
	size    int64    // data bytes including block padding
	blocks  int
	fences  []string // first key of each block
	filter  *bloom
	entries int
}

type lsmEngine struct {
	be  Backend
	cfg Config
	tr  telemetry.Tracer

	mem     *skipList
	runs    []*run // level asc, seq desc within level: recency order for reads
	nextSeq uint64
	cache   *blockCache

	stats   Stats
	buildBuf []byte
}

func newLSM(be Backend, cfg Config) *lsmEngine {
	return &lsmEngine{
		be:    be,
		cfg:   cfg,
		tr:    cfg.Tracer,
		mem:   newSkipList(0x5eed),
		cache: newBlockCache(cfg.BlockCacheBlocks),
	}
}

func (e *lsmEngine) Kind() Kind { return LSM }

func (e *lsmEngine) Stats() Stats {
	s := e.stats
	s.Runs = len(e.runs)
	return s
}

// ---- writes ----

func (e *lsmEngine) Insert(now sim.Time, key string, l Loc) (sim.Time, error) {
	if recSize(len(key)) > e.cfg.BlockBytes {
		return now, fmt.Errorf("index: key of %d bytes does not fit a %d B lsm block", len(key), e.cfg.BlockBytes)
	}
	e.stats.Inserts++
	e.mem.set(key, l, false)
	return e.maybeFlush(now)
}

func (e *lsmEngine) Delete(now sim.Time, key string) (sim.Time, error) {
	e.stats.Deletes++
	e.mem.set(key, Loc{}, true)
	return e.maybeFlush(now)
}

func (e *lsmEngine) maybeFlush(now sim.Time) (sim.Time, error) {
	if e.mem.len() < e.cfg.MemtableEntries {
		return now, nil
	}
	return e.flush(now)
}

// flush writes the memtable out as a new level-0 run.
func (e *lsmEngine) flush(now sim.Time) (sim.Time, error) {
	if e.mem.len() == 0 {
		return now, nil
	}
	n := e.mem.first()
	next := func(now sim.Time) (sim.Time, string, Loc, bool, bool) {
		if n == nil {
			return now, "", Loc{}, false, false
		}
		k, l, t := n.key, n.loc, n.tombstone
		n = n.next[0]
		return now, k, l, t, true
	}
	now, _, err := e.buildRun(now, 0, e.mem.len(), next)
	if err != nil {
		return now, err
	}
	e.stats.Flushes++
	e.mem = newSkipList(0x5eed ^ e.nextSeq)
	return now, nil
}

// buildRun materializes a sorted record stream into a run file at level,
// building its fences and bloom filter along the way. The write is one
// timed sequential append — the LSM's characteristic I/O shape.
func (e *lsmEngine) buildRun(now sim.Time, level, count int, next func(sim.Time) (sim.Time, string, Loc, bool, bool)) (sim.Time, *run, error) {
	bb := e.cfg.BlockBytes
	buf := e.buildBuf[:0]
	filter := newBloom(count, e.cfg.BloomBitsPerKey)
	var fences []string
	entries := 0
	for {
		var key string
		var l Loc
		var tomb, ok bool
		now, key, l, tomb, ok = next(now)
		if !ok {
			break
		}
		sz := recSize(len(key))
		if rem := len(buf) % bb; rem != 0 && rem+sz > bb {
			// Pad to the next block boundary; records never straddle blocks.
			for i := rem; i < bb; i++ {
				buf = append(buf, 0)
			}
		}
		if len(buf)%bb == 0 {
			fences = append(fences, key)
		}
		buf = appendRunRecord(buf, key, l, tomb)
		filter.add(key)
		entries++
	}
	e.buildBuf = buf[:0]
	if entries == 0 {
		return now, nil, nil
	}

	seq := e.nextSeq
	e.nextSeq++
	name := fmt.Sprintf("%slsm-L%d-%08d", e.cfg.NamePrefix, level, seq)
	w, err := e.be.Create(name, int64(len(buf)))
	if err != nil {
		return now, nil, fmt.Errorf("index: create run %s: %w", name, err)
	}
	wrote, done, err := w.WriteAt(now, buf, 0)
	if err != nil {
		return done, nil, fmt.Errorf("index: write run %s: %w", name, err)
	}
	now = done
	if wrote != len(buf) {
		return now, nil, fmt.Errorf("index: run %s: short write %d of %d", name, wrote, len(buf))
	}
	if now, err = w.Sync(now); err != nil {
		return now, nil, err
	}
	if err := w.Close(); err != nil {
		return now, nil, err
	}
	r, err := e.be.OpenReader(name, e.cfg.Fine)
	if err != nil {
		return now, nil, fmt.Errorf("index: open run %s: %w", name, err)
	}
	e.stats.BytesWritten += uint64(len(buf))
	rn := &run{
		level:   level,
		seq:     seq,
		name:    name,
		r:       r,
		size:    int64(len(buf)),
		blocks:  (len(buf) + bb - 1) / bb,
		fences:  fences,
		filter:  filter,
		entries: entries,
	}
	e.runs = append(e.runs, rn)
	e.sortRuns()
	return now, rn, nil
}

// sortRuns keeps the read order: level ascending, newest first per level.
func (e *lsmEngine) sortRuns() {
	sort.Slice(e.runs, func(i, j int) bool {
		if e.runs[i].level != e.runs[j].level {
			return e.runs[i].level < e.runs[j].level
		}
		return e.runs[i].seq > e.runs[j].seq
	})
}

// ---- block reads ----

// readBlock fetches one run block, via the block cache when forLookup.
// Sequential consumers (merges, scans) bypass the cache so streaming a
// level does not evict the hot lookup blocks.
func (e *lsmEngine) readBlock(now sim.Time, r *run, blk int, forLookup bool) ([]byte, sim.Time, error) {
	key := blockCacheKey{seq: r.seq, blk: blk}
	if forLookup {
		if data, ok := e.cache.get(key); ok {
			e.stats.CacheHits++
			if e.tr.Enabled() {
				e.tr.Instant(telemetry.TrackIndex, "index.lsm.block_cache", now)
			}
			return data, now, nil
		}
		e.stats.CacheMisses++
	}
	bb := int64(e.cfg.BlockBytes)
	off := int64(blk) * bb
	n := bb
	if off+n > r.size {
		n = r.size - off
	}
	buf := make([]byte, n)
	start := now
	got, done, err := r.r.ReadAt(now, buf, off)
	if err != nil {
		return nil, done, fmt.Errorf("index: run %s block %d: %w", r.name, blk, err)
	}
	now = done
	if got != int(n) {
		return nil, now, fmt.Errorf("index: run %s block %d: short read %d", r.name, blk, got)
	}
	e.stats.BytesRead += uint64(n)
	if e.tr.Enabled() {
		e.tr.Span(telemetry.TrackIndex, "index.lsm.block_read", start, now)
	}
	if forLookup {
		e.cache.put(key, buf)
	}
	return buf, now, nil
}

// ---- lookup ----

// searchBlock scans one block's records for key.
func searchBlock(block []byte, key string) (Loc, bool, bool) {
	for off := 0; off < len(block); {
		k, l, tomb, sz, ok := parseRunRecord(block[off:])
		if !ok {
			break // block padding: no further records here
		}
		if k == key {
			return l, tomb, true
		}
		if k > key {
			break
		}
		off += sz
	}
	return Loc{}, false, false
}

func (e *lsmEngine) Lookup(now sim.Time, key string) (Loc, bool, sim.Time, error) {
	e.stats.Lookups++
	if l, tomb, ok := e.mem.get(key); ok {
		return l, !tomb, now, nil
	}
	for _, r := range e.runs {
		e.stats.BloomChecks++
		if e.tr.Enabled() {
			e.tr.Instant(telemetry.TrackIndex, "index.lsm.filter", now)
		}
		if !r.filter.mayContain(key) {
			e.stats.BloomNegative++
			continue
		}
		// Fence search: the block whose first key is <= key.
		blk := sort.SearchStrings(r.fences, key)
		if blk < len(r.fences) && r.fences[blk] == key {
			blk++ // exact fence hit: key is this block's first record
		}
		if blk == 0 {
			e.stats.BloomFalsePos++ // key sorts before the run's first record
			continue
		}
		block, done, err := e.readBlock(now, r, blk-1, true)
		if err != nil {
			return Loc{}, false, done, err
		}
		now = done
		l, tomb, found := searchBlock(block, key)
		if !found {
			e.stats.BloomFalsePos++
			continue
		}
		return l, !tomb, now, nil
	}
	return Loc{}, false, now, nil
}

// ---- iteration (scan + merge) ----

// runIter streams one run's records in key order with timed block reads.
type runIter struct {
	e     *lsmEngine
	r     *run
	blk   int // next block to read
	block []byte
	off   int

	key   string
	loc   Loc
	tomb  bool
	valid bool
}

// next advances the iterator; invalid when the run is exhausted.
func (it *runIter) next(now sim.Time) (sim.Time, error) {
	it.valid = false
	for {
		if it.off < len(it.block) {
			k, l, tomb, sz, ok := parseRunRecord(it.block[it.off:])
			if ok {
				it.key, it.loc, it.tomb, it.valid = k, l, tomb, true
				it.off += sz
				return now, nil
			}
			// Padding: fall through to the next block.
		}
		if it.blk >= it.r.blocks {
			return now, nil
		}
		block, done, err := it.e.readBlock(now, it.r, it.blk, false)
		if err != nil {
			return done, err
		}
		now = done
		it.block = block
		it.off = 0
		it.blk++
	}
}

// seek positions the iterator at the first record with key >= start.
func (it *runIter) seek(now sim.Time, start string) (sim.Time, error) {
	blk := sort.SearchStrings(it.r.fences, start)
	if blk > 0 && !(blk < len(it.r.fences) && it.r.fences[blk] == start) {
		blk-- // start may fall inside the preceding block
	}
	it.blk = blk
	it.block = nil
	it.off = 0
	var err error
	for {
		if now, err = it.next(now); err != nil {
			return now, err
		}
		if !it.valid || it.key >= start {
			return now, nil
		}
	}
}

// Scan merges the memtable and every run in recency order: for each key the
// newest source wins, and tombstones suppress the key entirely.
func (e *lsmEngine) Scan(now sim.Time, start string, fn func(sim.Time, string, Loc) (sim.Time, bool)) (sim.Time, error) {
	mem := e.mem.seek(start)
	iters := make([]*runIter, len(e.runs))
	var err error
	for i, r := range e.runs {
		iters[i] = &runIter{e: e, r: r}
		if now, err = iters[i].seek(now, start); err != nil {
			return now, err
		}
	}
	for {
		// Smallest key across sources; the first source holding it (memtable,
		// then runs in slice order) is the newest version.
		best := ""
		have := false
		if mem != nil {
			best, have = mem.key, true
		}
		for _, it := range iters {
			if it.valid && (!have || it.key < best) {
				best, have = it.key, true
			}
		}
		if !have {
			return now, nil
		}
		var winLoc Loc
		var winTomb bool
		decided := false
		if mem != nil && mem.key == best {
			winLoc, winTomb, decided = mem.loc, mem.tombstone, true
			mem = mem.next[0]
		}
		for _, it := range iters {
			if it.valid && it.key == best {
				if !decided {
					winLoc, winTomb, decided = it.loc, it.tomb, true
				}
				if now, err = it.next(now); err != nil {
					return now, err
				}
			}
		}
		if winTomb {
			continue
		}
		var more bool
		now, more = fn(now, best, winLoc)
		if !more {
			return now, nil
		}
	}
}

// ---- maintenance ----

// Tick merges the lowest level that exceeds the fanout into the next level
// — one leveled-merge round per maintenance tick, so compaction work rides
// the same cadence as the value log's.
func (e *lsmEngine) Tick(now sim.Time) (bool, sim.Time, error) {
	byLevel := make(map[int][]*run)
	maxLevel := 0
	for _, r := range e.runs {
		byLevel[r.level] = append(byLevel[r.level], r)
		if r.level > maxLevel {
			maxLevel = r.level
		}
	}
	for lvl := 0; lvl <= maxLevel; lvl++ {
		if len(byLevel[lvl]) > e.cfg.LevelFanout {
			now, err := e.mergeLevel(now, lvl, byLevel[lvl], maxLevel)
			return err == nil, now, err
		}
	}
	return false, now, nil
}

// mergeLevel k-way merges every run of lvl into one run at lvl+1. Inputs
// arrive newest-first (the engine's read order), so on duplicate keys the
// first source wins. Tombstones survive unless lvl is the deepest occupied
// level — then nothing older can resurrect the key.
func (e *lsmEngine) mergeLevel(now sim.Time, lvl int, inputs []*run, maxLevel int) (sim.Time, error) {
	iters := make([]*runIter, len(inputs))
	count := 0
	var err error
	for i, r := range inputs {
		iters[i] = &runIter{e: e, r: r}
		if now, err = iters[i].next(now); err != nil {
			return now, err
		}
		count += r.entries
	}
	// A tombstone can only be dropped when nothing older survives outside
	// this merge: runs at deeper levels hold older data the tombstone still
	// shadows, so it must ride along until the deepest level merges.
	dropTombs := lvl == maxLevel

	next := func(now sim.Time) (sim.Time, string, Loc, bool, bool) {
		for {
			best := -1
			for i, it := range iters {
				if it.valid && (best < 0 || it.key < iters[best].key) {
					best = i
				}
			}
			if best < 0 {
				return now, "", Loc{}, false, false
			}
			key, l, tomb := iters[best].key, iters[best].loc, iters[best].tomb
			for _, it := range iters {
				if it.valid && it.key == key {
					var nerr error
					if now, nerr = it.next(now); nerr != nil && err == nil {
						err = nerr
					}
				}
			}
			if tomb && dropTombs {
				continue
			}
			return now, key, l, tomb, true
		}
	}
	now, _, berr := e.buildRun(now, lvl+1, count, next)
	if berr != nil {
		return now, berr
	}
	if err != nil {
		return now, err
	}
	e.stats.Compactions++

	// Retire the inputs: the merged run has replaced them.
	for _, in := range inputs {
		if cerr := in.r.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if rerr := e.be.Remove(in.name); rerr != nil && err == nil {
			err = rerr
		}
		e.cache.dropRun(in.seq)
		for i, r := range e.runs {
			if r == in {
				e.runs = append(e.runs[:i], e.runs[i+1:]...)
				break
			}
		}
	}
	return now, err
}

func (e *lsmEngine) Close(now sim.Time) (sim.Time, error) {
	var err error
	for _, r := range e.runs {
		if cerr := r.r.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return now, err
}
