package index

import "pipette/internal/sim"

// hashEngine is the store's original index, extracted behind the Engine
// interface: an in-memory hash map for point lookups plus a deterministic
// skip list for ordered scans. It touches no files — lookups are free in
// both virtual time and device traffic, which is exactly what makes it the
// baseline for the on-device engines: any read-amp a btree or lsm cell
// shows over a hash cell is index traversal, nothing else.
type hashEngine struct {
	m     map[string]Loc
	keys  *skipList
	stats Stats
}

func newHash() *hashEngine {
	return &hashEngine{
		m:    make(map[string]Loc),
		keys: newSkipList(0x5eed),
	}
}

func (h *hashEngine) Kind() Kind { return Hash }

func (h *hashEngine) Insert(now sim.Time, key string, l Loc) (sim.Time, error) {
	h.stats.Inserts++
	h.m[key] = l
	h.keys.set(key, l, false)
	return now, nil
}

func (h *hashEngine) Delete(now sim.Time, key string) (sim.Time, error) {
	h.stats.Deletes++
	if _, ok := h.m[key]; !ok {
		return now, nil
	}
	delete(h.m, key)
	h.keys.delete(key)
	return now, nil
}

func (h *hashEngine) Lookup(now sim.Time, key string) (Loc, bool, sim.Time, error) {
	h.stats.Lookups++
	l, ok := h.m[key]
	return l, ok, now, nil
}

func (h *hashEngine) Scan(now sim.Time, start string, fn func(sim.Time, string, Loc) (sim.Time, bool)) (sim.Time, error) {
	for n := h.keys.seek(start); n != nil; n = n.next[0] {
		var more bool
		now, more = fn(now, n.key, n.loc)
		if !more {
			break
		}
	}
	return now, nil
}

func (h *hashEngine) Tick(now sim.Time) (bool, sim.Time, error) { return false, now, nil }

func (h *hashEngine) Close(now sim.Time) (sim.Time, error) { return now, nil }

func (h *hashEngine) Stats() Stats { return h.stats }
