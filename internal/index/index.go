// Package index provides pluggable index engines for the log-structured KV
// store: the mapping from each key to its latest value-log record. Three
// engines implement the same Engine interface with very different read
// behavior, which is the point — index traversal is where storage software
// generates tiny reads, so swapping the engine under an unchanged store
// turns the fine-grained-read argument into an index-structure comparison:
//
//   - hash: the extracted original — an in-memory map plus a deterministic
//     skip list for ordered scans. Lookups cost no device I/O; the baseline
//     every on-device structure is measured against.
//   - btree: a paged B+-tree whose nodes are sub-page (512 B by default) and
//     live in arena files on the store's filesystem. Every traversal step is
//     a real timed read through the vfs — a few hundred bytes that a
//     block-granular stack must round up to a full page and the fine-grained
//     path serves exactly.
//   - lsm: a memtable plus sorted runs in the value-log record format, with
//     per-run bloom filters (sized by bits/key) and a small block cache.
//     Negative lookups are its characteristic workload: the filters prune
//     most runs, and the residual false-positive probes are sub-page block
//     reads — again the fine-read regime.
//
// Engines persist nothing authoritative: the value log is the source of
// truth, and the store rebuilds its index from the log scan at Open. Index
// files are scratch state recreated per incarnation, so a torn node write
// or truncated run can never corrupt recovery — the crash-consistency story
// stays exactly the checksummed log's.
package index

import (
	"fmt"

	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// Loc locates a key's latest value-log record: the segment, the record's
// offset in it, and the value length (what a Get must read).
type Loc struct {
	Seg    uint32
	Off    int64
	ValLen uint32
}

// Kind names an index engine.
type Kind string

const (
	Hash  Kind = "hash"
	BTree Kind = "btree"
	LSM   Kind = "lsm"
)

// Kinds lists the engines in canonical order.
func Kinds() []Kind { return []Kind{Hash, BTree, LSM} }

// ParseKind validates an engine name ("" selects hash).
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case "", Hash:
		return Hash, nil
	case BTree:
		return BTree, nil
	case LSM:
		return LSM, nil
	}
	return "", fmt.Errorf("index: unknown engine %q (known: hash, btree, lsm)", s)
}

// File is one open index-file handle. All I/O threads virtual time, exactly
// like the value-log segments underneath.
type File interface {
	ReadAt(now sim.Time, buf []byte, off int64) (int, sim.Time, error)
	WriteAt(now sim.Time, data []byte, off int64) (int, sim.Time, error)
	Sync(now sim.Time) (sim.Time, error)
	Close() error
	Size() int64
}

// Backend is the filesystem engines keep their node arenas and runs on —
// the same interface the KV store's value log uses (kv.Backend aliases it).
type Backend interface {
	// Create makes a fixed-size file and returns its write handle.
	Create(name string, size int64) (File, error)
	// OpenReader opens a read handle; fine requests O_FINE_GRAINED so index
	// reads take the byte-granular path.
	OpenReader(name string, fine bool) (File, error)
	// OpenWriter opens a write handle on an existing file.
	OpenWriter(name string) (File, error)
	Remove(name string) error
	Files() []string
	PageSize() int
}

// Config parameterizes an engine. Zero values take defaults.
type Config struct {
	// Kind selects the engine; zero selects Hash.
	Kind Kind
	// NamePrefix prefixes the engine's files (btree arenas, lsm runs).
	NamePrefix string
	// Fine opens index read handles O_FINE_GRAINED, so node and block reads
	// go down the fine-grained path. Off, they pay block granularity.
	Fine bool

	// NodeBytes is the btree node size; sub-page by design. Default 512.
	NodeBytes int
	// ArenaNodes is how many nodes one btree arena file holds. Default 1024.
	ArenaNodes int

	// MemtableEntries is the lsm flush threshold. Default 4096.
	MemtableEntries int
	// BloomBitsPerKey sizes each run's bloom filter. Default 10.
	BloomBitsPerKey int
	// BlockBytes is the lsm run block (and fence-pointer) granularity;
	// sub-page by design. Default 512.
	BlockBytes int
	// BlockCacheBlocks bounds the lsm block cache. Default 64.
	BlockCacheBlocks int
	// LevelFanout is how many runs a level accumulates before Tick merges
	// them into the next level. Default 4.
	LevelFanout int

	// Tracer receives index.btree.node_read / index.lsm.filter /
	// index.lsm.block_cache events; nil for none.
	Tracer telemetry.Tracer
}

func (cfg *Config) setDefaults() {
	if cfg.Kind == "" {
		cfg.Kind = Hash
	}
	if cfg.NamePrefix == "" {
		cfg.NamePrefix = "kv/idx-"
	}
	if cfg.NodeBytes == 0 {
		cfg.NodeBytes = 512
	}
	if cfg.ArenaNodes == 0 {
		cfg.ArenaNodes = 1024
	}
	if cfg.MemtableEntries == 0 {
		cfg.MemtableEntries = 4096
	}
	if cfg.BloomBitsPerKey == 0 {
		cfg.BloomBitsPerKey = 10
	}
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 512
	}
	if cfg.BlockCacheBlocks == 0 {
		cfg.BlockCacheBlocks = 64
	}
	if cfg.LevelFanout == 0 {
		cfg.LevelFanout = 4
	}
	cfg.Tracer = telemetry.OrNop(cfg.Tracer)
}

// Stats counts engine activity since New. Fields are engine-specific where
// named so; BytesRead/BytesWritten cover all index-file I/O either engine
// issued (what the index itself asked for — the device may transfer more
// under block granularity, which is the experiment).
type Stats struct {
	Inserts uint64
	Deletes uint64
	Lookups uint64

	// B+-tree.
	NodeReads  uint64 // timed node fetches (page/fine cache may still hit below)
	NodeWrites uint64
	Splits     uint64
	Merges     uint64 // node merges and borrows on underflow
	Height     int
	Nodes      int

	// LSM.
	Flushes       uint64 // memtable flushes into L0 runs
	Compactions   uint64 // level merges run by Tick
	Runs          int    // current on-disk runs
	BloomChecks   uint64 // per-run membership tests
	BloomNegative uint64 // runs pruned without I/O
	BloomFalsePos uint64 // filters that said maybe for an absent key
	CacheHits     uint64 // block-cache hits (no I/O)
	CacheMisses   uint64 // block reads that went to the filesystem

	BytesRead    uint64
	BytesWritten uint64
}

// BloomFPRate is the observed false-positive rate of the run filters.
func (s Stats) BloomFPRate() float64 {
	maybe := s.BloomChecks - s.BloomNegative
	if maybe == 0 {
		return 0
	}
	return float64(s.BloomFalsePos) / float64(maybe)
}

// CacheHitRate is the block cache's hit ratio.
func (s Stats) CacheHitRate() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

// NodeReadsPerLookup is the mean traversal depth paid per lookup.
func (s Stats) NodeReadsPerLookup() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.NodeReads) / float64(s.Lookups)
}

// Engine is the pluggable index: the key -> Loc mapping the store consults
// on every operation. Implementations are single-threaded, like the store.
type Engine interface {
	Kind() Kind
	// Insert records key -> l, superseding any earlier entry.
	Insert(now sim.Time, key string, l Loc) (sim.Time, error)
	// Delete removes key (a no-op if absent — the store has already decided
	// the delete is valid against its accounting).
	Delete(now sim.Time, key string) (sim.Time, error)
	// Lookup resolves key to its latest Loc; ok=false means absent.
	Lookup(now sim.Time, key string) (l Loc, ok bool, done sim.Time, err error)
	// Scan visits keys >= start in order until fn returns false. fn threads
	// virtual time: it receives the clock after the engine's own reads and
	// returns it advanced past whatever the caller did per key.
	Scan(now sim.Time, start string, fn func(now sim.Time, key string, l Loc) (sim.Time, bool)) (sim.Time, error)
	// Tick runs one round of background maintenance (lsm level merges);
	// reports whether any work ran.
	Tick(now sim.Time) (bool, sim.Time, error)
	// Close flushes and releases the engine's files.
	Close(now sim.Time) (sim.Time, error)
	Stats() Stats
}

// New builds the configured engine over be. RemoveFiles should normally be
// called first by the owner when reusing a prefix (the store does).
func New(be Backend, cfg Config) (Engine, error) {
	cfg.setDefaults()
	switch cfg.Kind {
	case Hash:
		return newHash(), nil
	case BTree:
		return newBTree(be, cfg)
	case LSM:
		return newLSM(be, cfg), nil
	}
	return nil, fmt.Errorf("index: unknown engine %q", cfg.Kind)
}

// RemoveFiles deletes every backend file under prefix — the stale scratch
// state of a previous engine incarnation. File names are collected before
// removal so backends with mutating listings stay safe, and processed in
// listing order (deterministic for the extfs-backed production backend).
func RemoveFiles(be Backend, prefix string) error {
	var stale []string
	for _, name := range be.Files() {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			stale = append(stale, name)
		}
	}
	for _, name := range stale {
		if err := be.Remove(name); err != nil {
			return fmt.Errorf("index: removing stale %s: %w", name, err)
		}
	}
	return nil
}
