package index

import (
	"fmt"
	"testing"
)

func TestSkipList(t *testing.T) {
	t.Parallel()
	l := newSkipList(42)
	keys := []string{"m", "c", "x", "a", "t", "c"} // one duplicate
	for i, k := range keys {
		l.set(k, Loc{Seg: uint32(i)}, false)
	}
	if l.len() != 5 {
		t.Fatalf("len = %d, want 5", l.len())
	}
	// The duplicate "c" must hold the later payload.
	if loc, tomb, ok := l.get("c"); !ok || tomb || loc.Seg != 5 {
		t.Fatalf("get(c) = %v %v %v, want Seg=5", loc, tomb, ok)
	}
	var walk []string
	for n := l.first(); n != nil; n = n.next[0] {
		walk = append(walk, n.key)
	}
	if fmt.Sprint(walk) != fmt.Sprint([]string{"a", "c", "m", "t", "x"}) {
		t.Fatalf("walk = %v", walk)
	}
	l.set("m", Loc{}, true) // tombstone overwrite keeps the node
	if _, tomb, ok := l.get("m"); !ok || !tomb {
		t.Fatal("tombstone set not visible")
	}
	if !l.delete("m") || l.delete("m") {
		t.Fatal("delete semantics broken")
	}
	if n := l.seek("d"); n == nil || n.key != "t" {
		t.Fatalf("seek(d) = %v, want t", n)
	}
}

func TestRunRecordRoundTrip(t *testing.T) {
	t.Parallel()
	want := Loc{Seg: 7, Off: 123456789, ValLen: 321}
	buf := appendRunRecord(nil, "some/key", want, false)
	buf = appendRunRecord(buf, "tomb", Loc{}, true)

	key, l, tomb, sz, ok := parseRunRecord(buf)
	if !ok || key != "some/key" || l != want || tomb {
		t.Fatalf("parse = %q %v %v %v", key, l, tomb, ok)
	}
	key, _, tomb, _, ok = parseRunRecord(buf[sz:])
	if !ok || key != "tomb" || !tomb {
		t.Fatalf("parse tombstone = %q %v %v", key, tomb, ok)
	}

	// Any flipped bit must fail validation, not decode into a wrong Loc.
	for off := 0; off < sz; off++ {
		for bit := uint(0); bit < 8; bit++ {
			buf[off] ^= 1 << bit
			if k, gl, _, gsz, gok := parseRunRecord(buf); gok && gsz == sz && (k != key || gl != want) {
				t.Fatalf("bit flip at %d/%d decoded as %q %v", off, bit, k, gl)
			}
			buf[off] ^= 1 << bit
		}
	}

	// Padding (zero bytes) reads as "no record".
	if _, _, _, _, ok := parseRunRecord(make([]byte, 64)); ok {
		t.Fatal("zero padding parsed as a record")
	}
}

func TestBloomFilter(t *testing.T) {
	t.Parallel()
	const n = 4096
	f := newBloom(n, 10)
	for i := 0; i < n; i++ {
		f.add(fmt.Sprintf("present-%05d", i))
	}
	for i := 0; i < n; i++ {
		if !f.mayContain(fmt.Sprintf("present-%05d", i)) {
			t.Fatalf("false negative for present-%05d", i)
		}
	}
	fp := 0
	for i := 0; i < n; i++ {
		if f.mayContain(fmt.Sprintf("absent-%05d", i)) {
			fp++
		}
	}
	// 10 bits/key, k=6 gives ~1% theoretical FP; allow generous slack.
	if rate := float64(fp) / n; rate > 0.05 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestBlockCacheLRU(t *testing.T) {
	t.Parallel()
	c := newBlockCache(2)
	k := func(seq uint64, blk int) blockCacheKey { return blockCacheKey{seq: seq, blk: blk} }
	c.put(k(1, 0), []byte("a"))
	c.put(k(1, 1), []byte("b"))
	if _, ok := c.get(k(1, 0)); !ok { // touch: 0 becomes most recent
		t.Fatal("miss on resident block")
	}
	c.put(k(2, 0), []byte("c")) // evicts (1,1), the LRU
	if _, ok := c.get(k(1, 1)); ok {
		t.Fatal("LRU block survived eviction")
	}
	if _, ok := c.get(k(1, 0)); !ok {
		t.Fatal("recently-used block evicted")
	}
	c.dropRun(1)
	if _, ok := c.get(k(1, 0)); ok {
		t.Fatal("dropRun left a block behind")
	}
	if _, ok := c.get(k(2, 0)); !ok {
		t.Fatal("dropRun evicted another run's block")
	}
}
