package index

import "pipette/internal/sim"

// skipList is the ordered in-memory map behind the hash engine's Scan and
// the LSM memtable: O(log n) insert, delete, and seek over keys carrying a
// Loc payload (and, for the memtable, a tombstone flag). Level draws come
// from a seeded RNG, keeping the structure — and therefore every simulated
// run — deterministic.
const skipMaxLevel = 20 // comfortable for ~10^9 keys at p = 1/4

type skipNode struct {
	key       string
	loc       Loc
	tombstone bool
	next      []*skipNode
}

type skipList struct {
	head   *skipNode
	rng    *sim.RNG
	level  int // highest level currently in use
	length int
}

func newSkipList(seed uint64) *skipList {
	return &skipList{
		head:  &skipNode{next: make([]*skipNode, skipMaxLevel)},
		rng:   sim.NewRNG(seed),
		level: 1,
	}
}

func (l *skipList) randLevel() int {
	lvl := 1
	for lvl < skipMaxLevel && l.rng.Uint64()&3 == 0 {
		lvl++
	}
	return lvl
}

// findPath fills update with the rightmost node before key on every level.
func (l *skipList) findPath(key string, update *[skipMaxLevel]*skipNode) *skipNode {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		update[i] = x
	}
	return x.next[0]
}

// set maps key to (loc, tombstone), inserting or updating in place.
func (l *skipList) set(key string, loc Loc, tombstone bool) {
	var update [skipMaxLevel]*skipNode
	if n := l.findPath(key, &update); n != nil && n.key == key {
		n.loc = loc
		n.tombstone = tombstone
		return
	}
	lvl := l.randLevel()
	if lvl > l.level {
		for i := l.level; i < lvl; i++ {
			update[i] = l.head
		}
		l.level = lvl
	}
	n := &skipNode{key: key, loc: loc, tombstone: tombstone, next: make([]*skipNode, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	l.length++
}

// get returns key's entry, if present.
func (l *skipList) get(key string) (Loc, bool, bool) {
	n := l.seek(key)
	if n == nil || n.key != key {
		return Loc{}, false, false
	}
	return n.loc, n.tombstone, true
}

// delete removes key; reports false if it was absent.
func (l *skipList) delete(key string) bool {
	var update [skipMaxLevel]*skipNode
	n := l.findPath(key, &update)
	if n == nil || n.key != key {
		return false
	}
	for i := 0; i < len(n.next); i++ {
		if update[i].next[i] == n {
			update[i].next[i] = n.next[i]
		}
	}
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
	l.length--
	return true
}

// seek returns the first node with key >= key (nil past the end); walk
// node.next[0] for in-order iteration.
func (l *skipList) seek(key string) *skipNode {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
	}
	return x.next[0]
}

func (l *skipList) first() *skipNode { return l.head.next[0] }

func (l *skipList) len() int { return l.length }
