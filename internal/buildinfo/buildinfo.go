// Package buildinfo carries the link-time identity every pipette binary
// reports: the -version flag, the build_info metric, and the revision the
// regression gate stamps into BENCH_<rev>.json all read from here.
//
// Stamp a release build with:
//
//	go build -ldflags "-X pipette/internal/buildinfo.Version=$(git describe --always --dirty)" ./cmd/...
//
// Unstamped builds report "dev".
package buildinfo

import (
	"fmt"
	"io"
	"runtime"

	"pipette/internal/telemetry"
)

// Version is the build's human-readable identity, overridden at link time
// via -ldflags -X. Keep it a plain var (not const) or the linker cannot
// stamp it.
var Version = "dev"

// Register exposes the conventional build_info gauge on reg: constant
// value 1, identity in the labels, so dashboards can join any series
// against the binary that produced it.
func Register(reg *telemetry.Registry, component string) {
	reg.GaugeFunc("build_info", "build identity; the value is always 1",
		func() float64 { return 1 },
		telemetry.L("component", component),
		telemetry.L("version", Version),
		telemetry.L("goversion", runtime.Version()))
}

// Fprint writes the one-line -version output.
func Fprint(w io.Writer, component string) {
	fmt.Fprintf(w, "%s %s (%s %s/%s)\n", component, Version,
		runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
