package buildinfo

import (
	"strings"
	"testing"

	"pipette/internal/telemetry"
)

func TestRegister(t *testing.T) {
	reg := telemetry.NewRegistry()
	Register(reg, "pipette-test")
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `build_info{component="pipette-test",`) {
		t.Errorf("build_info series missing:\n%s", out)
	}
	if !strings.Contains(out, `version="dev"`) {
		t.Errorf("unstamped build must report dev:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "build_info{") && !strings.HasSuffix(line, " 1") {
			t.Errorf("build_info value must be 1: %q", line)
		}
	}
}

func TestFprint(t *testing.T) {
	var b strings.Builder
	Fprint(&b, "pipette-test")
	if !strings.HasPrefix(b.String(), "pipette-test dev (go") {
		t.Errorf("unexpected -version line: %q", b.String())
	}
}
