package slab

import (
	"testing"
	"testing/quick"
)

func tiny() Config {
	// 4 slabs of 1 KiB; classes 64/256/1024.
	return Config{ArenaSize: 4096, SlabSize: 1024, ItemSizes: []int{64, 256, 1024}}
}

func mustAlloc(t *testing.T, cfg Config) *Allocator {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{ArenaSize: 100, SlabSize: 0, ItemSizes: []int{64}},
		{ArenaSize: 100, SlabSize: 1024, ItemSizes: []int{64}},
		{ArenaSize: 4096, SlabSize: 1024, ItemSizes: nil},
		{ArenaSize: 4096, SlabSize: 1024, ItemSizes: []int{256, 64}},
		{ArenaSize: 4096, SlabSize: 1024, ItemSizes: []int{64, 64}},
		{ArenaSize: 4096, SlabSize: 1024, ItemSizes: []int{64, 2048}},
		{ArenaSize: 4096, SlabSize: 1024, ItemSizes: []int{0}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestClassFor(t *testing.T) {
	a := mustAlloc(t, tiny())
	cases := []struct {
		size  int
		class int
		ok    bool
	}{
		{1, 0, true}, {64, 0, true}, {65, 1, true}, {256, 1, true},
		{257, 2, true}, {1024, 2, true}, {1025, 0, false}, {0, 0, false}, {-1, 0, false},
	}
	for _, c := range cases {
		got, ok := a.ClassFor(c.size)
		if ok != c.ok || (ok && got != c.class) {
			t.Errorf("ClassFor(%d) = %d,%v want %d,%v", c.size, got, ok, c.class, c.ok)
		}
	}
}

func TestAllocCarvesAndClaimsSlabs(t *testing.T) {
	a := mustAlloc(t, tiny())
	if a.FreeSlabs() != 4 {
		t.Fatalf("FreeSlabs = %d, want 4", a.FreeSlabs())
	}
	// 16 items of 64 B fill exactly one slab.
	offs := map[int]bool{}
	for i := 0; i < 16; i++ {
		ref, ok := a.TryAlloc(0)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if offs[ref.Off] {
			t.Fatalf("duplicate offset %d", ref.Off)
		}
		offs[ref.Off] = true
	}
	if a.FreeSlabs() != 3 || a.SlabCount(0) != 1 {
		t.Fatalf("after one slab of items: free=%d owned=%d", a.FreeSlabs(), a.SlabCount(0))
	}
	// 17th item claims a second slab.
	if _, ok := a.TryAlloc(0); !ok {
		t.Fatal("alloc into second slab failed")
	}
	if a.FreeSlabs() != 2 || a.SlabCount(0) != 2 {
		t.Fatalf("free=%d owned=%d", a.FreeSlabs(), a.SlabCount(0))
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTryAllocExhaustion(t *testing.T) {
	a := mustAlloc(t, tiny())
	// Class 2 items are slab-sized: 4 allocs drain the arena.
	for i := 0; i < 4; i++ {
		if _, ok := a.TryAlloc(2); !ok {
			t.Fatalf("alloc %d failed", i)
		}
	}
	if _, ok := a.TryAlloc(2); ok {
		t.Fatal("alloc beyond arena succeeded")
	}
	if _, ok := a.TryAlloc(0); ok {
		t.Fatal("other class alloc beyond arena succeeded")
	}
	if a.UsedBytes() != 4096 {
		t.Fatalf("UsedBytes = %d", a.UsedBytes())
	}
}

func TestReleaseRecycles(t *testing.T) {
	a := mustAlloc(t, tiny())
	ref, _ := a.TryAlloc(0)
	if err := a.Release(ref); err != nil {
		t.Fatal(err)
	}
	if a.LiveItems(0) != 0 {
		t.Fatalf("LiveItems = %d after release", a.LiveItems(0))
	}
	// Double release (while the slot is still recycled) is an error.
	if err := a.Release(ref); err == nil {
		t.Error("double release accepted")
	}
	// Next alloc reuses the recycled offset.
	again, ok := a.TryAlloc(0)
	if !ok || again.Off != ref.Off {
		t.Fatalf("recycled alloc = %+v ok=%v, want off %d", again, ok, ref.Off)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUOrderAndEvict(t *testing.T) {
	a := mustAlloc(t, tiny())
	r1, _ := a.TryAlloc(0)
	r2, _ := a.TryAlloc(0)
	r3, _ := a.TryAlloc(0)
	// LRU tail is the oldest: r1.
	if tail, ok := a.LRUTail(0); !ok || tail != r1 {
		t.Fatalf("tail = %+v, want %+v", tail, r1)
	}
	// Touching r1 makes r2 the tail.
	if err := a.Touch(r1); err != nil {
		t.Fatal(err)
	}
	if tail, _ := a.LRUTail(0); tail != r2 {
		t.Fatalf("tail after touch = %+v, want %+v", tail, r2)
	}
	// Evicting pops r2 and bumps the counter.
	ev, ok := a.EvictLRU(0)
	if !ok || ev != r2 {
		t.Fatalf("evicted %+v, want %+v", ev, r2)
	}
	if a.Evictions(0) != 1 {
		t.Fatalf("Evictions = %d, want 1", a.Evictions(0))
	}
	if a.LiveItems(0) != 2 {
		t.Fatalf("LiveItems = %d, want 2", a.LiveItems(0))
	}
	_ = r3
	// Touch of a dead item errors.
	if err := a.Touch(r2); err == nil {
		t.Error("touch of evicted item accepted")
	}
}

func TestEvictEmptyClass(t *testing.T) {
	a := mustAlloc(t, tiny())
	if _, ok := a.EvictLRU(1); ok {
		t.Fatal("evict from empty class succeeded")
	}
	if _, ok := a.LRUTail(1); ok {
		t.Fatal("tail of empty class exists")
	}
}

func TestDonorClass(t *testing.T) {
	a := mustAlloc(t, tiny())
	// Give class 0 two slabs, class 1 one slab.
	for i := 0; i < 17; i++ {
		if _, ok := a.TryAlloc(0); !ok {
			t.Fatal("alloc")
		}
	}
	if _, ok := a.TryAlloc(1); !ok {
		t.Fatal("alloc")
	}
	// Only class 0 qualifies as donor; exclude must be honored.
	for pick := uint64(0); pick < 5; pick++ {
		d, ok := a.DonorClass(pick, 2)
		if !ok || d != 0 {
			t.Fatalf("DonorClass(pick=%d) = %d,%v", pick, d, ok)
		}
	}
	if _, ok := a.DonorClass(0, 0); ok {
		t.Fatal("excluded class returned as donor")
	}
}

func TestVictimSlabPrefersEmptiest(t *testing.T) {
	a := mustAlloc(t, tiny())
	// Fill slab 1 (16 items), then put 1 item in slab 2.
	var first []Ref
	for i := 0; i < 16; i++ {
		r, _ := a.TryAlloc(0)
		first = append(first, r)
	}
	last, _ := a.TryAlloc(0)
	// Victim should be the slab holding only `last`.
	base, ok := a.VictimSlab(0)
	if !ok {
		t.Fatal("no victim")
	}
	if base != last.Off-last.Off%1024 {
		t.Fatalf("victim = %d, want slab of %d", base, last.Off)
	}
	// Release everything in the first slab; victim flips.
	for _, r := range first {
		if err := a.Release(r); err != nil {
			t.Fatal(err)
		}
	}
	base2, _ := a.VictimSlab(0)
	if base2 != first[0].Off-first[0].Off%1024 {
		t.Fatalf("victim after releases = %d", base2)
	}
}

func TestDetachSlab(t *testing.T) {
	a := mustAlloc(t, tiny())
	var refs []Ref
	for i := 0; i < 17; i++ { // two slabs
		r, ok := a.TryAlloc(0)
		if !ok {
			t.Fatal("alloc")
		}
		refs = append(refs, r)
	}
	// Release one item in the first slab so the cleanup array is non-empty.
	if err := a.Release(refs[3]); err != nil {
		t.Fatal(err)
	}
	firstSlab := refs[0].Off - refs[0].Off%1024
	live, err := a.DetachSlab(0, firstSlab)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 15 { // 16 carved - 1 released
		t.Fatalf("detached %d live items, want 15", len(live))
	}
	if a.SlabCount(0) != 1 || a.FreeSlabs() != 3 {
		t.Fatalf("slabs=%d free=%d", a.SlabCount(0), a.FreeSlabs())
	}
	// Items from the detached slab are gone.
	if err := a.Touch(refs[0]); err == nil {
		t.Error("item in detached slab still live")
	}
	// The 17th item (other slab) survives.
	if err := a.Touch(refs[16]); err != nil {
		t.Errorf("item outside detached slab died: %v", err)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Detaching an unowned slab errors.
	if _, err := a.DetachSlab(0, firstSlab); err == nil {
		t.Error("detaching free slab accepted")
	}
}

func TestDetachCarvingSlabResetsFrontier(t *testing.T) {
	a := mustAlloc(t, tiny())
	r, _ := a.TryAlloc(0) // carving slab has 15 items left
	base := r.Off - r.Off%1024
	if _, err := a.DetachSlab(0, base); err != nil {
		t.Fatal(err)
	}
	// Next alloc must claim a fresh slab, not carve the detached one.
	r2, ok := a.TryAlloc(0)
	if !ok {
		t.Fatal("alloc after detach failed")
	}
	if r2.Off-r2.Off%1024 == base && a.SlabCount(0) == 0 {
		t.Fatal("carved into detached slab")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: random alloc/release/touch/evict/detach sequences preserve all
// allocator invariants and never hand out overlapping items.
func TestRandomOpsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		a, err := New(Config{ArenaSize: 8192, SlabSize: 1024, ItemSizes: []int{64, 256, 1024}})
		if err != nil {
			return false
		}
		var live []Ref
		for _, op := range ops {
			class := int(op) % 3
			switch (op >> 2) % 5 {
			case 0, 1: // alloc
				if ref, ok := a.TryAlloc(class); ok {
					live = append(live, ref)
				}
			case 2: // release random live
				if len(live) > 0 {
					i := int(op) % len(live)
					if a.Release(live[i]) != nil {
						return false
					}
					live = append(live[:i], live[i+1:]...)
				}
			case 3: // touch random live
				if len(live) > 0 {
					if a.Touch(live[int(op)%len(live)]) != nil {
						return false
					}
				}
			case 4: // evict LRU
				if ref, ok := a.EvictLRU(class); ok {
					for i, l := range live {
						if l == ref {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				}
			}
		}
		// Overlap check: live item ranges must be disjoint.
		type span struct{ lo, hi int }
		var spans []span
		for _, l := range live {
			spans = append(spans, span{l.Off, l.Off + a.ItemSize(l.Class)})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					return false
				}
			}
		}
		return a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAllocReleaseCycle(b *testing.B) {
	a, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	class, _ := a.ClassFor(128)
	for i := 0; i < b.N; i++ {
		ref, ok := a.TryAlloc(class)
		if !ok {
			b.Fatal("alloc failed")
		}
		if err := a.Release(ref); err != nil {
			b.Fatal(err)
		}
	}
}
