// Package slab implements the Data Area allocator of the paper's
// fine-grained read cache (§3.2.1): memory is organized into uniformly
// sized slabs, each pre-divided into items of one capacity; slabs are
// grouped into classes by item capacity; data goes to the smallest class
// that fits it.
//
// Per class, the allocator keeps the carving frontier of the last allocated
// slab (start offset of the next free item plus the number remaining), a
// cleanup array of recycled item offsets, an LRU list of live items, and an
// eviction counter. A free-slab pool serves classes that exhaust their
// slabs. Eviction and slab-migration mechanics are provided here; *policy*
// (when to evict vs. migrate, §3.2.4, and when to reassign slabs between
// classes, §3.2.3) lives in the cache layer that owns the allocator.
package slab

import (
	"errors"
	"fmt"
	"sort"
)

// Config sizes the allocator.
type Config struct {
	ArenaSize int   // total Data Area bytes
	SlabSize  int   // uniform slab size
	ItemSizes []int // ascending item capacities, one per class
}

// DefaultItemSizes returns the class capacities used by default: powers of
// two from 64 B (covers the 11.3 B LinkBench edges with tolerable internal
// fragmentation) to 4 KiB (one full page, the largest fine read).
func DefaultItemSizes() []int {
	return []int{64, 128, 256, 512, 1024, 2048, 4096}
}

// DefaultConfig returns a 60 MiB arena of 64 KiB slabs with the default
// classes, matching the HMB Data Area default.
func DefaultConfig() Config {
	return Config{ArenaSize: 60 << 20, SlabSize: 64 << 10, ItemSizes: DefaultItemSizes()}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.SlabSize <= 0:
		return errors.New("slab: SlabSize must be positive")
	case c.ArenaSize < c.SlabSize:
		return fmt.Errorf("slab: arena %d smaller than one slab %d", c.ArenaSize, c.SlabSize)
	case len(c.ItemSizes) == 0:
		return errors.New("slab: at least one item class required")
	}
	if !sort.IntsAreSorted(c.ItemSizes) {
		return errors.New("slab: ItemSizes must be ascending")
	}
	for i, s := range c.ItemSizes {
		if s <= 0 || s > c.SlabSize {
			return fmt.Errorf("slab: item size %d out of (0, %d]", s, c.SlabSize)
		}
		if i > 0 && s == c.ItemSizes[i-1] {
			return fmt.Errorf("slab: duplicate item size %d", s)
		}
	}
	return nil
}

// Ref identifies a live item: its arena offset and its class.
type Ref struct {
	Off   int
	Class int
}

// node is an LRU list element for one live item.
type node struct {
	off        int
	slabBase   int
	prev, next *node
}

// class is the per-capacity state from the paper's Figure 3.
type class struct {
	itemSize int
	slabs    []int // base offsets of owned slabs

	carveOff  int // absolute offset of the next never-used item
	carveLeft int // items remaining in the carving slab

	recycled []int // cleanup array: offsets of freed items

	lruHead, lruTail *node // sentinels
	live             int
	evictions        uint64
}

func (c *class) pushFront(n *node) {
	n.prev = c.lruHead
	n.next = c.lruHead.next
	c.lruHead.next.prev = n
	c.lruHead.next = n
}

func unlink(n *node) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}

// Allocator manages the arena. Not safe for concurrent use.
type Allocator struct {
	cfg       Config
	classes   []class
	freeSlabs []int
	items     map[int]*node // live item offset -> LRU node
}

// New creates an allocator; the whole arena starts in the free-slab pool.
func New(cfg Config) (*Allocator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Allocator{
		cfg:     cfg,
		classes: make([]class, len(cfg.ItemSizes)),
		items:   make(map[int]*node),
	}
	for i := range a.classes {
		c := &a.classes[i]
		c.itemSize = cfg.ItemSizes[i]
		c.lruHead = &node{}
		c.lruTail = &node{}
		c.lruHead.next = c.lruTail
		c.lruTail.prev = c.lruHead
	}
	for base := 0; base+cfg.SlabSize <= cfg.ArenaSize; base += cfg.SlabSize {
		a.freeSlabs = append(a.freeSlabs, base)
	}
	return a, nil
}

// Classes reports the number of classes.
func (a *Allocator) Classes() int { return len(a.classes) }

// ItemSize reports the capacity of a class.
func (a *Allocator) ItemSize(class int) int { return a.classes[class].itemSize }

// ClassFor returns the smallest class whose items hold size bytes.
func (a *Allocator) ClassFor(size int) (int, bool) {
	if size <= 0 {
		return 0, false
	}
	for i, s := range a.cfg.ItemSizes {
		if size <= s {
			return i, true
		}
	}
	return 0, false
}

// FreeSlabs reports the free-slab pool size.
func (a *Allocator) FreeSlabs() int { return len(a.freeSlabs) }

// SlabCount reports slabs owned by a class.
func (a *Allocator) SlabCount(class int) int { return len(a.classes[class].slabs) }

// LiveItems reports live items in a class.
func (a *Allocator) LiveItems(class int) int { return a.classes[class].live }

// Evictions reports the class's eviction counter (§3.2.3's reassignment
// monitor watches these).
func (a *Allocator) Evictions(class int) uint64 { return a.classes[class].evictions }

// UsedBytes reports bytes of arena held by classes (live or carvable).
func (a *Allocator) UsedBytes() int {
	used := 0
	for i := range a.classes {
		used += len(a.classes[i].slabs) * a.cfg.SlabSize
	}
	return used
}

// slabOf returns the base offset of the slab containing off.
func (a *Allocator) slabOf(off int) int { return off - off%a.cfg.SlabSize }

// TryAlloc obtains a free item of the class without evicting: first from
// the cleanup array, then by carving the current slab, then by claiming a
// slab from the free pool. Returns false when all three fail — the caller
// then applies the paper's dynamic allocation strategy (evict or migrate).
func (a *Allocator) TryAlloc(class int) (Ref, bool) {
	c := &a.classes[class]
	var off int
	switch {
	case len(c.recycled) > 0:
		off = c.recycled[len(c.recycled)-1]
		c.recycled = c.recycled[:len(c.recycled)-1]
	case c.carveLeft > 0:
		off = c.carveOff
		c.carveOff += c.itemSize
		c.carveLeft--
	case len(a.freeSlabs) > 0:
		base := a.freeSlabs[len(a.freeSlabs)-1]
		a.freeSlabs = a.freeSlabs[:len(a.freeSlabs)-1]
		c.slabs = append(c.slabs, base)
		c.carveOff = base
		c.carveLeft = a.cfg.SlabSize / c.itemSize
		off = c.carveOff
		c.carveOff += c.itemSize
		c.carveLeft--
	default:
		return Ref{}, false
	}
	n := &node{off: off, slabBase: a.slabOf(off)}
	c.pushFront(n)
	c.live++
	a.items[off] = n
	return Ref{Off: off, Class: class}, true
}

// Touch moves a live item to the front of its class's LRU list.
func (a *Allocator) Touch(ref Ref) error {
	n, ok := a.items[ref.Off]
	if !ok {
		return fmt.Errorf("slab: touch of dead item %d", ref.Off)
	}
	unlink(n)
	a.classes[ref.Class].pushFront(n)
	return nil
}

// Release frees a live item into its class's cleanup array.
func (a *Allocator) Release(ref Ref) error {
	n, ok := a.items[ref.Off]
	if !ok {
		return fmt.Errorf("slab: release of dead item %d", ref.Off)
	}
	unlink(n)
	delete(a.items, ref.Off)
	c := &a.classes[ref.Class]
	c.live--
	c.recycled = append(c.recycled, ref.Off)
	return nil
}

// LRUTail returns the least recently used live item of a class without
// evicting it.
func (a *Allocator) LRUTail(class int) (Ref, bool) {
	c := &a.classes[class]
	if c.lruTail.prev == c.lruHead {
		return Ref{}, false
	}
	return Ref{Off: c.lruTail.prev.off, Class: class}, true
}

// EvictLRU removes the least recently used item of the class (solution 1 of
// §3.2.1: evict within class, bump the eviction count, record the recycled
// offset in the cleanup array). The evicted ref is returned so the caller
// can drop its lookup-table entry.
func (a *Allocator) EvictLRU(class int) (Ref, bool) {
	ref, ok := a.LRUTail(class)
	if !ok {
		return Ref{}, false
	}
	if err := a.Release(ref); err != nil {
		return Ref{}, false
	}
	a.classes[class].evictions++
	return ref, true
}

// DonorClass picks a class other than exclude owning more than one slab
// (solution 2's "randomly pick an additional slab class with more than one
// slab"). pick is a random value the caller supplies (so the allocator
// stays RNG-free and deterministic under test).
func (a *Allocator) DonorClass(pick uint64, exclude int) (int, bool) {
	var candidates []int
	for i := range a.classes {
		if i != exclude && len(a.classes[i].slabs) > 1 {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return 0, false
	}
	return candidates[pick%uint64(len(candidates))], true
}

// VictimSlab selects the slab of a class with the fewest live items — the
// cheapest slab to detach for migration or reassignment.
func (a *Allocator) VictimSlab(class int) (base int, ok bool) {
	c := &a.classes[class]
	if len(c.slabs) == 0 {
		return 0, false
	}
	liveBySlab := make(map[int]int, len(c.slabs))
	for _, b := range c.slabs {
		liveBySlab[b] = 0
	}
	for n := c.lruHead.next; n != c.lruTail; n = n.next {
		liveBySlab[n.slabBase]++
	}
	best := -1
	for _, b := range c.slabs {
		if best == -1 || liveBySlab[b] < liveBySlab[best] {
			best = b
		}
	}
	return best, true
}

// DetachSlab removes one slab (by base offset) from a class and returns it
// to the free pool. The refs of live items that resided in the slab are
// returned so the caller can relocate their data and fix its lookup tables
// — the mechanics of §3.2.1 solution 2 and §3.2.3's re-balance thread.
func (a *Allocator) DetachSlab(class, base int) ([]Ref, error) {
	c := &a.classes[class]
	idx := -1
	for i, b := range c.slabs {
		if b == base {
			idx = i
			break
		}
	}
	if idx == -1 {
		return nil, fmt.Errorf("slab: class %d does not own slab %d", class, base)
	}

	// Collect and unlink live items in the slab.
	var refs []Ref
	for n := c.lruHead.next; n != c.lruTail; {
		next := n.next
		if n.slabBase == base {
			refs = append(refs, Ref{Off: n.off, Class: class})
			unlink(n)
			delete(a.items, n.off)
			c.live--
		}
		n = next
	}
	// Purge recycled offsets that pointed into the slab.
	kept := c.recycled[:0]
	for _, off := range c.recycled {
		if a.slabOf(off) != base {
			kept = append(kept, off)
		}
	}
	c.recycled = kept
	// Drop the carving frontier if it lived in this slab.
	if c.carveLeft > 0 && a.slabOf(c.carveOff) == base {
		c.carveOff, c.carveLeft = 0, 0
	}

	c.slabs = append(c.slabs[:idx], c.slabs[idx+1:]...)
	a.freeSlabs = append(a.freeSlabs, base)
	return refs, nil
}

// CheckInvariants validates internal consistency; property tests call it
// after random operation sequences.
func (a *Allocator) CheckInvariants() error {
	// Every slab is owned exactly once (by a class or the free pool).
	owner := make(map[int]string)
	for _, b := range a.freeSlabs {
		if prev, dup := owner[b]; dup {
			return fmt.Errorf("slab %d owned by %s and free pool", b, prev)
		}
		owner[b] = "free"
	}
	for i := range a.classes {
		for _, b := range a.classes[i].slabs {
			if prev, dup := owner[b]; dup {
				return fmt.Errorf("slab %d owned by %s and class %d", b, prev, i)
			}
			owner[b] = fmt.Sprintf("class %d", i)
		}
	}
	if want := a.cfg.ArenaSize / a.cfg.SlabSize; len(owner) != want {
		return fmt.Errorf("%d slabs tracked, want %d", len(owner), want)
	}

	for i := range a.classes {
		c := &a.classes[i]
		ownedBy := func(off int) bool {
			return owner[a.slabOf(off)] == fmt.Sprintf("class %d", i)
		}
		// LRU walk must match live count, and items must sit in owned slabs
		// at class-aligned offsets.
		count := 0
		for n := c.lruHead.next; n != c.lruTail; n = n.next {
			if !ownedBy(n.off) {
				return fmt.Errorf("class %d live item %d in foreign slab", i, n.off)
			}
			if (n.off-n.slabBase)%c.itemSize != 0 {
				return fmt.Errorf("class %d item %d misaligned", i, n.off)
			}
			if a.items[n.off] != n {
				return fmt.Errorf("class %d item %d not indexed", i, n.off)
			}
			count++
		}
		if count != c.live {
			return fmt.Errorf("class %d live=%d but LRU holds %d", i, c.live, count)
		}
		for _, off := range c.recycled {
			if !ownedBy(off) {
				return fmt.Errorf("class %d recycled item %d in foreign slab", i, off)
			}
			if _, alive := a.items[off]; alive {
				return fmt.Errorf("class %d item %d both live and recycled", i, off)
			}
		}
		if c.carveLeft > 0 && !ownedBy(c.carveOff) {
			return fmt.Errorf("class %d carve frontier %d in foreign slab", i, c.carveOff)
		}
	}
	return nil
}
