// Package nand models a NAND flash array: the geometry (channels, ways,
// planes, blocks, pages), the physical timing (tR/tPROG/tBERS per cell type
// plus channel bus transfer), and the physical constraints (erase-before-
// program, in-order programming within a block).
//
// The paper's prototype device is an 8-channel, 8-way NVMe SSD (Figure 5);
// the defaults mirror it. Timing accumulates on sim resources so that
// channel-level parallelism and contention emerge naturally.
//
// Capacity is sparse: only programmed pages store real bytes. Pages
// "preloaded" with file data (the multi-gigabyte datasets the paper's
// workloads read) return deterministic seed-derived content instead of
// materializing hundreds of gigabytes of host RAM; see Preload.
package nand

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pipette/internal/bitset"
	"pipette/internal/resource"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// CellType selects a NAND latency profile.
type CellType int

// Supported cell types, matching the paper's prototype media options.
const (
	SLC CellType = iota
	MLC
	TLC
)

// String returns the conventional cell-type name.
func (c CellType) String() string {
	switch c {
	case SLC:
		return "SLC"
	case MLC:
		return "MLC"
	case TLC:
		return "TLC"
	default:
		return fmt.Sprintf("CellType(%d)", int(c))
	}
}

// Timing holds the per-operation latencies of one cell type.
type Timing struct {
	ReadPage   sim.Time // tR: cell array -> page register
	Program    sim.Time // tPROG
	EraseBlock sim.Time // tBERS
}

// timings are typical datasheet values for each generation.
var timings = map[CellType]Timing{
	SLC: {ReadPage: 25 * sim.Microsecond, Program: 200 * sim.Microsecond, EraseBlock: 2 * sim.Millisecond},
	MLC: {ReadPage: 50 * sim.Microsecond, Program: 600 * sim.Microsecond, EraseBlock: 5 * sim.Millisecond},
	TLC: {ReadPage: 68 * sim.Microsecond, Program: 900 * sim.Microsecond, EraseBlock: 10 * sim.Millisecond},
}

// TimingFor returns the latency profile of a cell type.
func TimingFor(c CellType) Timing { return timings[c] }

// rbers are datasheet raw bit error rates per cell type: the probability
// a single sensed bit is wrong before ECC. Denser cells store more levels
// per cell and are orders of magnitude noisier.
var rbers = map[CellType]float64{
	SLC: 1e-9,
	MLC: 1e-7,
	TLC: 1e-6,
}

// RBERFor returns the raw bit error rate of a cell type. The fault
// injector's rber* rules are resolved against this.
func RBERFor(c CellType) float64 { return rbers[c] }

// Config describes an array. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	Channels       int // independent buses
	WaysPerChannel int // dies per channel
	PlanesPerDie   int
	BlocksPerPlane int
	PagesPerBlock  int
	PageSize       int // bytes

	Cell         CellType
	ChannelMBps  float64 // per-channel bus bandwidth, MiB/s
	ReadErrRate  float64 // probability a read needs one read-retry
	ContentSeed  uint64  // seed for deterministic preloaded content
	RetryPenalty sim.Time
}

// DefaultConfig mirrors the paper's YS9203 platform (8 channels x 8 ways)
// with a scaled-down block count so tests construct quickly; the benchmark
// harness sizes BlocksPerPlane to the dataset. MLC timing is the default:
// the paper's platform lists SLC/MLC/TLC media and its measured block-read
// latencies (Figure 8, ~67 us) are consistent with tR ≈ 50 us.
func DefaultConfig() Config {
	return Config{
		Channels:       8,
		WaysPerChannel: 8,
		PlanesPerDie:   2,
		BlocksPerPlane: 64,
		PagesPerBlock:  256,
		PageSize:       4096,
		Cell:           MLC,
		ChannelMBps:    400,
		ContentSeed:    0x9153_e2b1,
		RetryPenalty:   TimingFor(MLC).ReadPage,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0, c.WaysPerChannel <= 0, c.PlanesPerDie <= 0,
		c.BlocksPerPlane <= 0, c.PagesPerBlock <= 0:
		return errors.New("nand: all geometry dimensions must be positive")
	case c.PageSize <= 0 || c.PageSize%8 != 0:
		return fmt.Errorf("nand: page size %d must be a positive multiple of 8", c.PageSize)
	case c.ChannelMBps <= 0:
		return errors.New("nand: channel bandwidth must be positive")
	case c.ReadErrRate < 0 || c.ReadErrRate >= 1:
		return fmt.Errorf("nand: read error rate %g out of [0,1)", c.ReadErrRate)
	}
	if _, ok := timings[c.Cell]; !ok {
		return fmt.Errorf("nand: unknown cell type %v", c.Cell)
	}
	return nil
}

// Dies reports the number of dies in the array.
func (c Config) Dies() int { return c.Channels * c.WaysPerChannel }

// BlocksPerDie reports blocks in one die.
func (c Config) BlocksPerDie() int { return c.PlanesPerDie * c.BlocksPerPlane }

// TotalBlocks reports the number of physical blocks.
func (c Config) TotalBlocks() int { return c.Dies() * c.BlocksPerDie() }

// PagesPerDie reports pages in one die.
func (c Config) PagesPerDie() int { return c.BlocksPerDie() * c.PagesPerBlock }

// TotalPages reports the number of physical pages.
func (c Config) TotalPages() uint64 {
	return uint64(c.Dies()) * uint64(c.PagesPerDie())
}

// CapacityBytes reports raw capacity.
func (c Config) CapacityBytes() uint64 {
	return c.TotalPages() * uint64(c.PageSize)
}

// transferTime is the channel bus occupancy to move n bytes.
func (c Config) transferTime(n int) sim.Time {
	return sim.Time(float64(n) / (c.ChannelMBps * (1 << 20)) * float64(sim.Second))
}

// PPA is a physical page address, a flat index over the whole array.
// Encoding: (((die * planes + plane) * blocksPerPlane + block) *
// pagesPerBlock) + page, with die = channel*ways + way.
type PPA uint64

// PPAOf builds a PPA from coordinates. Panics on out-of-range coordinates;
// PPAs are produced by the FTL, which owns the geometry.
func (c Config) PPAOf(channel, way, plane, block, page int) PPA {
	if channel < 0 || channel >= c.Channels || way < 0 || way >= c.WaysPerChannel ||
		plane < 0 || plane >= c.PlanesPerDie || block < 0 || block >= c.BlocksPerPlane ||
		page < 0 || page >= c.PagesPerBlock {
		panic(fmt.Sprintf("nand: PPA coordinates out of range (%d,%d,%d,%d,%d)", channel, way, plane, block, page))
	}
	die := channel*c.WaysPerChannel + way
	return PPA(((uint64(die)*uint64(c.PlanesPerDie)+uint64(plane))*uint64(c.BlocksPerPlane)+uint64(block))*uint64(c.PagesPerBlock) + uint64(page))
}

// Decompose splits a PPA into coordinates.
func (c Config) Decompose(p PPA) (channel, way, plane, block, page int) {
	v := uint64(p)
	page = int(v % uint64(c.PagesPerBlock))
	v /= uint64(c.PagesPerBlock)
	block = int(v % uint64(c.BlocksPerPlane))
	v /= uint64(c.BlocksPerPlane)
	plane = int(v % uint64(c.PlanesPerDie))
	v /= uint64(c.PlanesPerDie)
	die := int(v)
	return die / c.WaysPerChannel, die % c.WaysPerChannel, plane, block, page
}

// ChannelOf reports the channel a PPA lives on.
func (c Config) ChannelOf(p PPA) int {
	ch, _, _, _, _ := c.Decompose(p)
	return ch
}

// DieOf reports the die index of a PPA.
func (c Config) DieOf(p PPA) int {
	ch, way, _, _, _ := c.Decompose(p)
	return ch*c.WaysPerChannel + way
}

// BlockID identifies a physical block (die, plane, block) as a flat index.
type BlockID uint32

// BlockOf reports the flat block id containing a PPA.
func (c Config) BlockOf(p PPA) BlockID {
	return BlockID(uint64(p) / uint64(c.PagesPerBlock))
}

// FirstPPA returns the PPA of page 0 of a block.
func (c Config) FirstPPA(b BlockID) PPA {
	return PPA(uint64(b) * uint64(c.PagesPerBlock))
}

// Stats counts physical operations.
type Stats struct {
	Reads       uint64
	Programs    uint64
	Erases      uint64
	ReadRetries uint64
	BytesOut    uint64 // bytes moved over channel buses to the controller
	BytesIn     uint64
}

// Errors returned by array operations.
var (
	ErrNotErased   = errors.New("nand: programming a page that is not erased")
	ErrOutOfOrder  = errors.New("nand: pages within a block must be programmed in order")
	ErrBadBlock    = errors.New("nand: operation on a bad block")
	ErrBadLength   = errors.New("nand: data length does not match page size")
	ErrOutOfRange  = errors.New("nand: address out of range")
	ErrNotProgram  = errors.New("nand: reading an unwritten page")
	ErrEraseActive = errors.New("nand: block has programmed pages; erase first")
)

// blockState tracks per-block programming progress.
type blockState struct {
	nextPage int  // next programmable page index
	bad      bool // manufacturing/grown bad block
}

// Array is the flash device. Operations take the current virtual time and
// return the operation's completion time; the caller (SSD controller)
// advances its own clock.
type Array struct {
	cfg   Config
	dies  *sim.ResourceSet // die occupancy: tR / tPROG / tBERS
	buses *sim.ResourceSet // channel bus occupancy: data transfer

	data    map[PPA][]byte // programmed pages with materialized content
	loaded  bitset.Set     // preloaded pages (deterministic content)
	blocks  []blockState
	rng     *sim.RNG
	timing  Timing
	stats   Stats
	pattern patternSource

	tr        telemetry.Tracer
	dieTracks []string // per-die span track names ("nand/d3")
	chTracks  []string // per-channel span track names ("nand/ch0")

	chRes  []*resource.Timeline // per-channel occupancy timelines (nil = off)
	dieRes []*resource.Timeline // per-die occupancy timelines
}

// New creates an array. The whole device starts erased.
func New(cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Array{
		cfg:     cfg,
		dies:    sim.NewResourceSet(cfg.Dies()),
		buses:   sim.NewResourceSet(cfg.Channels),
		data:    make(map[PPA][]byte),
		loaded:  bitset.New(int(cfg.TotalPages())),
		blocks:  make([]blockState, cfg.TotalBlocks()),
		rng:     sim.NewRNG(cfg.ContentSeed ^ 0xfeed_beef),
		timing:  timings[cfg.Cell],
		pattern: patternSource{seed: cfg.ContentSeed, pageSize: cfg.PageSize},
		tr:      telemetry.Nop(),
	}
	return a, nil
}

// SetTracer installs a tracer. Per-die and per-channel track names are
// precomputed so the hot path does no formatting.
func (a *Array) SetTracer(tr telemetry.Tracer) {
	a.tr = telemetry.OrNop(tr)
	if !a.tr.Enabled() {
		return
	}
	a.dieTracks = make([]string, a.cfg.Dies())
	for i := range a.dieTracks {
		a.dieTracks[i] = fmt.Sprintf("nand/d%d", i)
	}
	a.chTracks = make([]string, a.cfg.Channels)
	for i := range a.chTracks {
		a.chTracks[i] = fmt.Sprintf("nand/ch%d", i)
	}
}

// SetResources registers the array's channels and dies with a resource
// tracker: one timeline per channel bus ("nand.ch0") and one per die
// ("nand.ch0.w0" — channel × way), in that order. A nil tracker turns
// recording off.
func (a *Array) SetResources(rt *resource.Tracker) {
	if rt == nil {
		a.chRes, a.dieRes = nil, nil
		return
	}
	a.chRes = make([]*resource.Timeline, a.cfg.Channels)
	for ch := range a.chRes {
		a.chRes[ch] = rt.Register(fmt.Sprintf("nand.ch%d", ch))
	}
	a.dieRes = make([]*resource.Timeline, a.cfg.Dies())
	for die := range a.dieRes {
		a.dieRes[die] = rt.Register(fmt.Sprintf("nand.ch%d.w%d",
			die/a.cfg.WaysPerChannel, die%a.cfg.WaysPerChannel))
	}
}

// ChannelBusy reports the cumulative busy time of one channel bus — the
// numerator of a per-channel utilization probe.
func (a *Array) ChannelBusy(ch int) sim.Time { return a.buses.Get(ch).BusyTime() }

// DieBusy reports the cumulative busy time of one die.
func (a *Array) DieBusy(die int) sim.Time { return a.dies.Get(die).BusyTime() }

// DieWaitTime reports the cumulative queueing delay across all dies:
// virtual time operations spent waiting for a busy die. With overlapping
// in-flight commands this is the device-side queueing the open-loop
// harness surfaces; a closed-loop single-stream replay keeps it near zero.
func (a *Array) DieWaitTime() sim.Time { return a.dies.WaitTime() }

// BusWaitTime reports the cumulative queueing delay across the channel
// buses.
func (a *Array) BusWaitTime() sim.Time { return a.buses.WaitTime() }

// Config returns the array's configuration.
func (a *Array) Config() Config { return a.cfg }

// Stats returns a copy of the operation counters.
func (a *Array) Stats() Stats { return a.stats }

// Timing returns the active latency profile.
func (a *Array) Timing() Timing { return a.timing }

func (a *Array) checkPPA(p PPA) error {
	if uint64(p) >= a.cfg.TotalPages() {
		return fmt.Errorf("%w: ppa %d >= %d", ErrOutOfRange, p, a.cfg.TotalPages())
	}
	return nil
}

// MarkBad marks a block as unusable; the FTL skips bad blocks at format.
func (a *Array) MarkBad(b BlockID) error {
	if int(b) >= len(a.blocks) {
		return ErrOutOfRange
	}
	a.blocks[b].bad = true
	return nil
}

// IsBad reports whether a block is marked bad.
func (a *Array) IsBad(b BlockID) bool {
	return int(b) < len(a.blocks) && a.blocks[b].bad
}

// ReadPage senses one page and transfers it to the controller. It returns
// the page content and the completion time. The die is occupied for tR,
// then the channel bus for the transfer; contention with other in-flight
// operations delays completion.
func (a *Array) ReadPage(now sim.Time, p PPA) ([]byte, sim.Time, error) {
	buf := make([]byte, a.cfg.PageSize)
	done, err := a.ReadPageInto(now, p, buf)
	if err != nil {
		return nil, done, err
	}
	return buf, done, nil
}

// ReadPageInto is ReadPage writing into a caller-owned page-sized buffer,
// the allocation-free form every hot read path uses.
func (a *Array) ReadPageInto(now sim.Time, p PPA, buf []byte) (sim.Time, error) {
	if err := a.checkPPA(p); err != nil {
		return now, err
	}
	if len(buf) != a.cfg.PageSize {
		return now, fmt.Errorf("%w: got %d, want %d", ErrBadLength, len(buf), a.cfg.PageSize)
	}
	b := a.cfg.BlockOf(p)
	if a.blocks[b].bad {
		return now, ErrBadBlock
	}
	_, _, _, _, page := a.cfg.Decompose(p)
	if page >= a.blocks[b].nextPage && !a.loaded.Get(int(p)) {
		return now, fmt.Errorf("%w: ppa %d", ErrNotProgram, p)
	}

	tR := a.timing.ReadPage
	if a.cfg.ReadErrRate > 0 && a.rng.Float64() < a.cfg.ReadErrRate {
		// Read-retry: the die re-senses with tuned thresholds. Modeled as
		// one extra array read; always succeeds (ECC recovers).
		tR += a.cfg.RetryPenalty
		a.stats.ReadRetries++
	}
	die, ch := a.cfg.DieOf(p), a.cfg.ChannelOf(p)
	senseStart, senseEnd := a.dies.Acquire(die, now, tR)
	txStart, done := a.buses.Acquire(ch, senseEnd, a.cfg.transferTime(a.cfg.PageSize))
	if a.tr.Enabled() {
		a.tr.Span(a.dieTracks[die], "tR", senseStart, senseEnd)
		a.tr.Span(a.chTracks[ch], "xfer", txStart, done)
	}
	if a.dieRes != nil {
		a.dieRes[die].Add(senseStart, senseEnd)
		a.chRes[ch].Add(txStart, done)
	}

	a.stats.Reads++
	a.stats.BytesOut += uint64(a.cfg.PageSize)
	if d, ok := a.data[p]; ok {
		copy(buf, d)
	} else {
		a.pattern.fill(p, 0, buf)
	}
	return done, nil
}

// PeekRange returns len(buf) bytes of a page's content starting at off,
// without timing or stats — the oracle used by tests and by the host to
// verify end-to-end correctness. It does not require the page to be
// programmed (unwritten pages read as pattern content would).
func (a *Array) PeekRange(p PPA, off int, buf []byte) error {
	if err := a.checkPPA(p); err != nil {
		return err
	}
	if off < 0 || off+len(buf) > a.cfg.PageSize {
		return ErrOutOfRange
	}
	if d, ok := a.data[p]; ok {
		copy(buf, d[off:off+len(buf)])
		return nil
	}
	a.pattern.fill(p, off, buf)
	return nil
}

// ProgramPage writes one full page. NAND constraints are enforced: the
// target page must be erased, and pages within a block must be programmed
// in ascending order.
func (a *Array) ProgramPage(now sim.Time, p PPA, data []byte) (sim.Time, error) {
	if err := a.checkPPA(p); err != nil {
		return now, err
	}
	if len(data) != a.cfg.PageSize {
		return now, fmt.Errorf("%w: got %d, want %d", ErrBadLength, len(data), a.cfg.PageSize)
	}
	b := a.cfg.BlockOf(p)
	bs := &a.blocks[b]
	if bs.bad {
		return now, ErrBadBlock
	}
	_, _, _, _, page := a.cfg.Decompose(p)
	switch {
	case page < bs.nextPage:
		return now, fmt.Errorf("%w: page %d already programmed", ErrNotErased, page)
	case page > bs.nextPage:
		return now, fmt.Errorf("%w: page %d, expected %d", ErrOutOfOrder, page, bs.nextPage)
	}

	// Bus transfer into the page register, then the program pulse.
	die, ch := a.cfg.DieOf(p), a.cfg.ChannelOf(p)
	txStart, txEnd := a.buses.Acquire(ch, now, a.cfg.transferTime(a.cfg.PageSize))
	progStart, done := a.dies.Acquire(die, txEnd, a.timing.Program)
	if a.tr.Enabled() {
		a.tr.Span(a.chTracks[ch], "xfer", txStart, txEnd)
		a.tr.Span(a.dieTracks[die], "tPROG", progStart, done)
	}
	if a.dieRes != nil {
		a.chRes[ch].Add(txStart, txEnd)
		a.dieRes[die].Add(progStart, done)
	}

	stored := make([]byte, len(data))
	copy(stored, data)
	a.data[p] = stored
	a.loaded.Clear(int(p))
	bs.nextPage = page + 1
	a.stats.Programs++
	a.stats.BytesIn += uint64(len(data))
	return done, nil
}

// EraseBlock erases a block, resetting its program pointer and dropping its
// contents.
func (a *Array) EraseBlock(now sim.Time, b BlockID) (sim.Time, error) {
	if int(b) >= len(a.blocks) {
		return now, ErrOutOfRange
	}
	bs := &a.blocks[b]
	if bs.bad {
		return now, ErrBadBlock
	}
	first := a.cfg.FirstPPA(b)
	for i := 0; i < a.cfg.PagesPerBlock; i++ {
		delete(a.data, first+PPA(i))
		a.loaded.Clear(int(first) + i)
	}
	bs.nextPage = 0
	die := a.cfg.DieOf(first)
	eraseStart, done := a.dies.Acquire(die, now, a.timing.EraseBlock)
	if a.tr.Enabled() {
		a.tr.Span(a.dieTracks[die], "tBERS", eraseStart, done)
	}
	if a.dieRes != nil {
		a.dieRes[die].Add(eraseStart, done)
	}
	a.stats.Erases++
	return done, nil
}

// Preload marks a page as holding deterministic seed-derived content, as if
// it had been programmed, without materializing bytes or consuming virtual
// time. It is the setup path for the multi-gigabyte read-mostly datasets of
// the paper's workloads. The block's program pointer advances as for a real
// program so subsequent NAND constraints still hold.
func (a *Array) Preload(p PPA) error {
	if err := a.checkPPA(p); err != nil {
		return err
	}
	b := a.cfg.BlockOf(p)
	bs := &a.blocks[b]
	if bs.bad {
		return ErrBadBlock
	}
	_, _, _, _, page := a.cfg.Decompose(p)
	switch {
	case page < bs.nextPage:
		return fmt.Errorf("%w: page %d already programmed", ErrNotErased, page)
	case page > bs.nextPage:
		return fmt.Errorf("%w: page %d, expected %d", ErrOutOfOrder, page, bs.nextPage)
	}
	a.loaded.Set(int(p))
	bs.nextPage = page + 1
	return nil
}

// ProgrammedPages reports how many pages currently hold data (programmed or
// preloaded).
func (a *Array) ProgrammedPages() int { return len(a.data) + a.loaded.Count() }

// patternSource generates deterministic page content from (seed, ppa).
type patternSource struct {
	seed     uint64
	pageSize int
}

func (ps patternSource) word(p PPA, wordIdx int) uint64 {
	return sim.Mix64(ps.seed ^ uint64(p)<<20 ^ uint64(wordIdx) ^ 0xc0ffee)
}

func (ps patternSource) page(p PPA) []byte {
	out := make([]byte, ps.pageSize)
	ps.fill(p, 0, out)
	return out
}

// fill writes the pattern bytes of page p starting at byte offset off. The
// pattern is little-endian words of ps.word, so aligned spans are written
// eight bytes at a time; byte-at-a-time only at ragged edges.
func (ps patternSource) fill(p PPA, off int, buf []byte) {
	i := 0
	if r := off & 7; r != 0 {
		w := ps.word(p, off>>3)
		for b := r; b < 8 && i < len(buf); b++ {
			buf[i] = byte(w >> (8 * uint(b)))
			i++
		}
	}
	for ; i+8 <= len(buf); i += 8 {
		binary.LittleEndian.PutUint64(buf[i:], ps.word(p, (off+i)>>3))
	}
	if i < len(buf) {
		w := ps.word(p, (off+i)>>3)
		for b := 0; i < len(buf); b++ {
			buf[i] = byte(w >> (8 * uint(b)))
			i++
		}
	}
}

// ExpectedContent is the package-level oracle for preloaded (never-written)
// page content, shared with the filesystem preload path and tests.
func ExpectedContent(seed uint64, pageSize int, p PPA, off int, buf []byte) {
	patternSource{seed: seed, pageSize: pageSize}.fill(p, off, buf)
}
