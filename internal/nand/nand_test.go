package nand

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"pipette/internal/sim"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Channels = 2
	cfg.WaysPerChannel = 2
	cfg.PlanesPerDie = 1
	cfg.BlocksPerPlane = 8
	cfg.PagesPerBlock = 16
	return cfg
}

func mustArray(t *testing.T, cfg Config) *Array {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.WaysPerChannel = -1 },
		func(c *Config) { c.PageSize = 100 }, // not multiple of 8
		func(c *Config) { c.PageSize = 0 },
		func(c *Config) { c.ChannelMBps = 0 },
		func(c *Config) { c.ReadErrRate = 1.0 },
		func(c *Config) { c.Cell = CellType(99) },
	}
	for i, mut := range cases {
		c := testConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGeometryArithmetic(t *testing.T) {
	c := testConfig()
	if got := c.Dies(); got != 4 {
		t.Errorf("Dies = %d, want 4", got)
	}
	if got := c.TotalBlocks(); got != 32 {
		t.Errorf("TotalBlocks = %d, want 32", got)
	}
	if got := c.TotalPages(); got != 512 {
		t.Errorf("TotalPages = %d, want 512", got)
	}
	if got := c.CapacityBytes(); got != 512*4096 {
		t.Errorf("CapacityBytes = %d, want %d", got, 512*4096)
	}
}

func TestPPARoundTrip(t *testing.T) {
	c := testConfig()
	for ch := 0; ch < c.Channels; ch++ {
		for w := 0; w < c.WaysPerChannel; w++ {
			for blk := 0; blk < c.BlocksPerPlane; blk += 3 {
				for pg := 0; pg < c.PagesPerBlock; pg += 5 {
					p := c.PPAOf(ch, w, 0, blk, pg)
					gch, gw, gpl, gblk, gpg := c.Decompose(p)
					if gch != ch || gw != w || gpl != 0 || gblk != blk || gpg != pg {
						t.Fatalf("Decompose(PPAOf(%d,%d,0,%d,%d)) = (%d,%d,%d,%d,%d)",
							ch, w, blk, pg, gch, gw, gpl, gblk, gpg)
					}
					if c.ChannelOf(p) != ch {
						t.Fatalf("ChannelOf mismatch for %v", p)
					}
				}
			}
		}
	}
}

func TestPPARoundTripProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(raw uint64) bool {
		p := PPA(raw % c.TotalPages())
		ch, w, pl, blk, pg := c.Decompose(p)
		return c.PPAOf(ch, w, pl, blk, pg) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPPAOfPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PPAOf out of range did not panic")
		}
	}()
	c := testConfig()
	c.PPAOf(c.Channels, 0, 0, 0, 0)
}

func TestBlockOfAndFirstPPA(t *testing.T) {
	c := testConfig()
	p := c.PPAOf(1, 1, 0, 3, 7)
	b := c.BlockOf(p)
	first := c.FirstPPA(b)
	_, _, _, _, pg := c.Decompose(first)
	if pg != 0 {
		t.Fatalf("FirstPPA page = %d, want 0", pg)
	}
	if c.BlockOf(first) != b {
		t.Fatal("FirstPPA escaped its block")
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	a := mustArray(t, testConfig())
	p := a.Config().PPAOf(0, 0, 0, 0, 0)
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if _, err := a.ProgramPage(0, p, data); err != nil {
		t.Fatalf("ProgramPage: %v", err)
	}
	got, _, err := a.ReadPage(0, p)
	if err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read data != programmed data")
	}
	// The returned slice must be a copy.
	got[0] ^= 0xff
	again, _, _ := a.ReadPage(0, p)
	if again[0] != data[0] {
		t.Fatal("ReadPage returned aliased storage")
	}
}

func TestReadUnwrittenFails(t *testing.T) {
	a := mustArray(t, testConfig())
	_, _, err := a.ReadPage(0, 0)
	if !errors.Is(err, ErrNotProgram) {
		t.Fatalf("err = %v, want ErrNotProgram", err)
	}
}

func TestProgramConstraints(t *testing.T) {
	a := mustArray(t, testConfig())
	cfg := a.Config()
	data := make([]byte, cfg.PageSize)

	// Out-of-order within a block.
	if _, err := a.ProgramPage(0, cfg.PPAOf(0, 0, 0, 0, 1), data); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("out-of-order program err = %v, want ErrOutOfOrder", err)
	}
	// In order succeeds.
	if _, err := a.ProgramPage(0, cfg.PPAOf(0, 0, 0, 0, 0), data); err != nil {
		t.Fatalf("in-order program: %v", err)
	}
	// Reprogramming without erase fails.
	if _, err := a.ProgramPage(0, cfg.PPAOf(0, 0, 0, 0, 0), data); !errors.Is(err, ErrNotErased) {
		t.Fatalf("reprogram err = %v, want ErrNotErased", err)
	}
	// Wrong length fails.
	if _, err := a.ProgramPage(0, cfg.PPAOf(0, 0, 0, 0, 1), data[:10]); !errors.Is(err, ErrBadLength) {
		t.Fatalf("short program err = %v, want ErrBadLength", err)
	}
}

func TestEraseResetsBlock(t *testing.T) {
	a := mustArray(t, testConfig())
	cfg := a.Config()
	data := make([]byte, cfg.PageSize)
	p0 := cfg.PPAOf(0, 0, 0, 0, 0)
	if _, err := a.ProgramPage(0, p0, data); err != nil {
		t.Fatal(err)
	}
	if _, err := a.EraseBlock(0, cfg.BlockOf(p0)); err != nil {
		t.Fatalf("EraseBlock: %v", err)
	}
	// After erase, page 0 is reprogrammable and unwritten reads fail.
	if _, _, err := a.ReadPage(0, p0); !errors.Is(err, ErrNotProgram) {
		t.Fatalf("read after erase err = %v, want ErrNotProgram", err)
	}
	if _, err := a.ProgramPage(0, p0, data); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
}

func TestBadBlockRejected(t *testing.T) {
	a := mustArray(t, testConfig())
	cfg := a.Config()
	b := cfg.BlockOf(cfg.PPAOf(0, 0, 0, 2, 0))
	if err := a.MarkBad(b); err != nil {
		t.Fatal(err)
	}
	if !a.IsBad(b) {
		t.Fatal("IsBad = false after MarkBad")
	}
	data := make([]byte, cfg.PageSize)
	if _, err := a.ProgramPage(0, cfg.FirstPPA(b), data); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("program on bad block err = %v", err)
	}
	if _, err := a.EraseBlock(0, b); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("erase on bad block err = %v", err)
	}
	if err := a.Preload(cfg.FirstPPA(b)); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("preload on bad block err = %v", err)
	}
}

func TestPreloadContentDeterministic(t *testing.T) {
	cfg := testConfig()
	a := mustArray(t, cfg)
	p := cfg.PPAOf(1, 0, 0, 0, 0)
	if err := a.Preload(p); err != nil {
		t.Fatalf("Preload: %v", err)
	}
	got, _, err := a.ReadPage(0, p)
	if err != nil {
		t.Fatalf("ReadPage after Preload: %v", err)
	}
	want := make([]byte, cfg.PageSize)
	ExpectedContent(cfg.ContentSeed, cfg.PageSize, p, 0, want)
	if !bytes.Equal(got, want) {
		t.Fatal("preloaded content != ExpectedContent oracle")
	}
	// A second array with the same seed produces identical content.
	b := mustArray(t, cfg)
	if err := b.Preload(p); err != nil {
		t.Fatal(err)
	}
	got2, _, _ := b.ReadPage(0, p)
	if !bytes.Equal(got, got2) {
		t.Fatal("preloaded content not deterministic across arrays")
	}
}

func TestPeekRangeMatchesRead(t *testing.T) {
	cfg := testConfig()
	a := mustArray(t, cfg)
	p := cfg.PPAOf(0, 1, 0, 0, 0)
	if err := a.Preload(p); err != nil {
		t.Fatal(err)
	}
	full, _, _ := a.ReadPage(0, p)
	for _, tc := range []struct{ off, n int }{{0, 16}, {1, 7}, {100, 128}, {4000, 96}, {4095, 1}} {
		buf := make([]byte, tc.n)
		if err := a.PeekRange(p, tc.off, buf); err != nil {
			t.Fatalf("PeekRange(%d,%d): %v", tc.off, tc.n, err)
		}
		if !bytes.Equal(buf, full[tc.off:tc.off+tc.n]) {
			t.Fatalf("PeekRange(%d,%d) mismatch", tc.off, tc.n)
		}
	}
	if err := a.PeekRange(p, 4090, make([]byte, 10)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("overlong PeekRange err = %v", err)
	}
}

func TestPreloadRespectsOrder(t *testing.T) {
	cfg := testConfig()
	a := mustArray(t, cfg)
	if err := a.Preload(cfg.PPAOf(0, 0, 0, 0, 1)); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("out-of-order preload err = %v", err)
	}
	if err := a.Preload(cfg.PPAOf(0, 0, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Preload(cfg.PPAOf(0, 0, 0, 0, 0)); !errors.Is(err, ErrNotErased) {
		t.Fatalf("double preload err = %v", err)
	}
}

func TestProgramOverwritesPreload(t *testing.T) {
	cfg := testConfig()
	a := mustArray(t, cfg)
	p := cfg.PPAOf(0, 0, 0, 0, 0)
	if err := a.Preload(p); err != nil {
		t.Fatal(err)
	}
	// NAND forbids program-over-program; the FTL would erase first. Verify
	// the constraint holds for preloaded pages too.
	if _, err := a.ProgramPage(0, p, make([]byte, cfg.PageSize)); !errors.Is(err, ErrNotErased) {
		t.Fatalf("program over preload err = %v", err)
	}
}

func TestReadTimingChannelParallelism(t *testing.T) {
	cfg := testConfig()
	a := mustArray(t, cfg)
	tR := a.Timing().ReadPage
	tx := cfg.transferTime(cfg.PageSize)

	// Two pages on different channels proceed fully in parallel.
	p1 := cfg.PPAOf(0, 0, 0, 0, 0)
	p2 := cfg.PPAOf(1, 0, 0, 0, 0)
	for _, p := range []PPA{p1, p2} {
		if err := a.Preload(p); err != nil {
			t.Fatal(err)
		}
	}
	_, d1, err := a.ReadPage(0, p1)
	if err != nil {
		t.Fatal(err)
	}
	_, d2, err := a.ReadPage(0, p2)
	if err != nil {
		t.Fatal(err)
	}
	want := tR + tx
	if d1 != want || d2 != want {
		t.Fatalf("parallel channel reads done at %v/%v, want %v", d1, d2, want)
	}
}

func TestReadTimingSameDieSerializes(t *testing.T) {
	cfg := testConfig()
	a := mustArray(t, cfg)
	tR := a.Timing().ReadPage
	tx := cfg.transferTime(cfg.PageSize)
	p1 := cfg.PPAOf(0, 0, 0, 0, 0)
	p2 := cfg.PPAOf(0, 0, 0, 0, 1)
	for _, p := range []PPA{p1, p2} {
		if err := a.Preload(p); err != nil {
			t.Fatal(err)
		}
	}
	_, d1, _ := a.ReadPage(0, p1)
	_, d2, _ := a.ReadPage(0, p2)
	if d1 != tR+tx {
		t.Fatalf("first read done at %v, want %v", d1, tR+tx)
	}
	// Second read's sense waits for the die; its transfer then queues on
	// the bus behind nothing (bus freed long before).
	if want := 2*tR + tx; d2 != want {
		t.Fatalf("same-die second read done at %v, want %v", d2, want)
	}
}

func TestReadTimingSameChannelDifferentWays(t *testing.T) {
	cfg := testConfig()
	a := mustArray(t, cfg)
	tR := a.Timing().ReadPage
	tx := cfg.transferTime(cfg.PageSize)
	p1 := cfg.PPAOf(0, 0, 0, 0, 0)
	p2 := cfg.PPAOf(0, 1, 0, 0, 0)
	for _, p := range []PPA{p1, p2} {
		if err := a.Preload(p); err != nil {
			t.Fatal(err)
		}
	}
	_, d1, _ := a.ReadPage(0, p1)
	_, d2, _ := a.ReadPage(0, p2)
	if d1 != tR+tx {
		t.Fatalf("first read done at %v", d1)
	}
	// Senses overlap (different dies); transfers share one bus.
	if want := tR + 2*tx; d2 != want {
		t.Fatalf("same-channel second read done at %v, want %v", d2, want)
	}
}

func TestReadRetryInjection(t *testing.T) {
	cfg := testConfig()
	cfg.ReadErrRate = 0.5
	a := mustArray(t, cfg)
	p := cfg.PPAOf(0, 0, 0, 0, 0)
	if err := a.Preload(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, _, err := a.ReadPage(sim.Time(i)*sim.Millisecond, p); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	st := a.Stats()
	if st.ReadRetries == 0 || st.ReadRetries == st.Reads {
		t.Fatalf("ReadRetries = %d of %d reads; expected some but not all", st.ReadRetries, st.Reads)
	}
}

func TestStatsAccumulate(t *testing.T) {
	cfg := testConfig()
	a := mustArray(t, cfg)
	p := cfg.PPAOf(0, 0, 0, 0, 0)
	data := make([]byte, cfg.PageSize)
	if _, err := a.ProgramPage(0, p, data); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.ReadPage(0, p); err != nil {
		t.Fatal(err)
	}
	if _, err := a.EraseBlock(0, cfg.BlockOf(p)); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Reads != 1 || st.Programs != 1 || st.Erases != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesOut != uint64(cfg.PageSize) || st.BytesIn != uint64(cfg.PageSize) {
		t.Fatalf("byte stats = %+v", st)
	}
}

func TestCellTypeTimings(t *testing.T) {
	if TimingFor(SLC).ReadPage >= TimingFor(MLC).ReadPage ||
		TimingFor(MLC).ReadPage >= TimingFor(TLC).ReadPage {
		t.Fatal("tR must increase SLC < MLC < TLC")
	}
	for _, c := range []CellType{SLC, MLC, TLC} {
		if c.String() == "" || len(c.String()) != 3 {
			t.Errorf("CellType(%d).String() = %q", int(c), c.String())
		}
	}
}

func TestPatternFillConsistentAcrossOffsets(t *testing.T) {
	// fill(p, off, buf) must produce the same bytes as the corresponding
	// window of the full page for arbitrary off/len.
	ps := patternSource{seed: 77, pageSize: 4096}
	full := ps.page(PPA(123))
	f := func(off16, n16 uint16) bool {
		off := int(off16) % 4096
		n := int(n16) % (4096 - off)
		buf := make([]byte, n)
		ps.fill(PPA(123), off, buf)
		return bytes.Equal(buf, full[off:off+n])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkReadPage(b *testing.B) {
	cfg := DefaultConfig()
	a, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := cfg.PPAOf(0, 0, 0, 0, 0)
	if err := a.Preload(p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.ReadPage(sim.Time(i), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPatternFill128(b *testing.B) {
	ps := patternSource{seed: 1, pageSize: 4096}
	buf := make([]byte, 128)
	b.SetBytes(128)
	for i := 0; i < b.N; i++ {
		ps.fill(PPA(i), (i*13)%3968, buf)
	}
}
