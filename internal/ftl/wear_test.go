package ftl

import (
	"testing"

	"pipette/internal/nand"
	"pipette/internal/sim"
)

// wearStack builds an FTL with wear leveling configured.
func wearStack(t *testing.T, delta int) (*nand.Array, *FTL) {
	t.Helper()
	cfg := nand.DefaultConfig()
	cfg.Channels = 1
	cfg.WaysPerChannel = 1
	cfg.PlanesPerDie = 1
	cfg.BlocksPerPlane = 12
	cfg.PagesPerBlock = 8
	arr, err := nand.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := DefaultConfig()
	fcfg.WearDelta = delta
	f, err := New(arr, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	return arr, f
}

// churn drives hot rewrites over a small LBA range to build up wear.
func churn(t *testing.T, f *FTL, lbas, writes int, now sim.Time) sim.Time {
	t.Helper()
	data := make([]byte, f.PageSize())
	for i := 0; i < writes; i++ {
		done, err := f.Write(now, LBA(i%lbas), data)
		if err != nil {
			t.Fatalf("churn write %d: %v", i, err)
		}
		now = done
	}
	return now
}

func TestWearLevelDisabled(t *testing.T) {
	_, f := wearStack(t, 0)
	now := churn(t, f, 4, 500, 0)
	moves, _, err := f.WearLevelTick(now)
	if err != nil {
		t.Fatal(err)
	}
	if moves != 0 || f.Stats().WearMoves != 0 {
		t.Fatalf("wear leveling ran while disabled: moves=%d", moves)
	}
}

func TestWearLevelMovesColdData(t *testing.T) {
	_, f := wearStack(t, 3)
	// Cold data: fill a region once and never touch it again.
	coldLBAs := 16
	data := make([]byte, f.PageSize())
	var now sim.Time
	for i := 0; i < coldLBAs; i++ {
		done, err := f.Write(now, LBA(40+i), data)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	// Shadow the cold content for post-move verification.
	want := make(map[LBA]byte)
	for i := 0; i < coldLBAs; i++ {
		buf, _, err := f.Read(now, LBA(40+i))
		if err != nil {
			t.Fatal(err)
		}
		want[LBA(40+i)] = buf[0]
	}
	// Hot churn elsewhere drives erase counts up.
	now = churn(t, f, 4, 800, now)
	if f.WearSpread() < 3 {
		t.Skipf("churn produced spread %d < delta; cannot exercise", f.WearSpread())
	}
	spreadBefore := f.WearSpread()
	moves, done, err := f.WearLevelTick(now)
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Fatalf("no wear-level moves despite spread %d", spreadBefore)
	}
	if done <= now {
		t.Fatal("wear leveling consumed no time")
	}
	if f.Stats().WearMoves == 0 {
		t.Fatal("WearMoves not counted")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants after wear move: %v", err)
	}
	// Cold data must read back unchanged from its new location.
	for lba, b := range want {
		got, _, err := f.Read(done, lba)
		if err != nil {
			t.Fatalf("read %d after move: %v", lba, err)
		}
		if got[0] != b {
			t.Fatalf("lba %d corrupted by wear move", lba)
		}
	}
}

func TestWearLevelBoundsSpread(t *testing.T) {
	_, f := wearStack(t, 3)
	data := make([]byte, f.PageSize())
	var now sim.Time
	// Cold region.
	for i := 0; i < 16; i++ {
		done, err := f.Write(now, LBA(40+i), data)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	// Interleave churn with periodic wear-level ticks, as firmware would.
	for round := 0; round < 30; round++ {
		now = churn(t, f, 4, 100, now)
		_, done, err := f.WearLevelTick(now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	withWL := f.WearSpread()

	// Same workload without wear leveling for contrast.
	_, g := wearStack(t, 0)
	var gnow sim.Time
	for i := 0; i < 16; i++ {
		done, err := g.Write(gnow, LBA(40+i), data)
		if err != nil {
			t.Fatal(err)
		}
		gnow = done
	}
	gnow = churn(t, g, 4, 3000, gnow)
	withoutWL := g.WearSpread()

	if withWL >= withoutWL {
		t.Fatalf("wear leveling did not narrow the spread: %d vs %d", withWL, withoutWL)
	}
}
