package ftl

import (
	"fmt"

	"pipette/internal/nand"
	"pipette/internal/sim"
)

// Static wear leveling: dynamic (GC-driven) allocation alone lets blocks
// holding cold data sit at low erase counts forever while the rest of the
// die churns. When the spread between a die's most-worn free block and its
// least-worn closed block exceeds WearDelta, the cold block's contents move
// into the worn block, releasing the young block into the hot allocation
// pool.

// WearDelta is the erase-count spread that triggers a static wear-leveling
// move. Exposed on Config; 0 disables wear leveling.
const defaultWearDelta = 16

// WearLevelTick runs one wear-leveling pass over every die and performs at
// most one cold-data move per die. It returns the number of moves and the
// completion time of the last one. Intended to be driven periodically by
// firmware idle time (tests and the simulator's maintenance hooks call it
// directly).
func (f *FTL) WearLevelTick(now sim.Time) (moves int, done sim.Time, err error) {
	delta := f.cfg.WearDelta
	if delta <= 0 {
		return 0, now, nil
	}
	done = now
	for die := 0; die < f.geo.Dies(); die++ {
		moved, t, err := f.wearLevelDie(now, die, uint32(delta))
		if err != nil {
			return moves, done, err
		}
		if moved {
			moves++
			if t > done {
				done = t
			}
		}
	}
	return moves, done, nil
}

// wearLevelDie performs one move on a die if its wear spread warrants it.
func (f *FTL) wearLevelDie(now sim.Time, die int, delta uint32) (bool, sim.Time, error) {
	// Most-worn free block: the destination candidate.
	pool := f.freeBlocks[die]
	if len(pool) == 0 {
		return false, now, nil
	}
	wornIdx := 0
	for i, b := range pool {
		if f.eraseCount[b] > f.eraseCount[pool[wornIdx]] {
			wornIdx = i
		}
	}
	worn := pool[wornIdx]

	// Least-worn closed block: the cold-data candidate. Ascending block-ID
	// scan keeps tie-breaks deterministic.
	var cold nand.BlockID
	found := false
	lo, hi := die*f.geo.BlocksPerDie(), (die+1)*f.geo.BlocksPerDie()
	for i := f.fullBlocks.NextSet(lo); i >= 0 && i < hi; i = f.fullBlocks.NextSet(i + 1) {
		b := nand.BlockID(i)
		if f.validCount[b] == 0 {
			continue
		}
		if !found || f.eraseCount[b] < f.eraseCount[cold] {
			cold, found = b, true
		}
	}
	if !found {
		return false, now, nil
	}
	if f.eraseCount[worn] < f.eraseCount[cold]+delta {
		return false, now, nil
	}

	// Move the cold block's live pages into the worn block directly
	// (sequential program order within the destination).
	f.freeBlocks[die] = append(pool[:wornIdx], pool[wornIdx+1:]...)
	dstNext := 0
	first := f.geo.FirstPPA(cold)
	t := now
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		src := first + nand.PPA(i)
		lba := f.p2l[src]
		if lba == invalidLBA {
			continue
		}
		rt, err := f.arr.ReadPageInto(t, src, f.relocBuf)
		if err != nil {
			return false, t, fmt.Errorf("ftl: wear-level read: %w", err)
		}
		dst := f.geo.FirstPPA(worn) + nand.PPA(dstNext)
		dstNext++
		pt, err := f.arr.ProgramPage(rt, dst, f.relocBuf)
		if err != nil {
			return false, rt, fmt.Errorf("ftl: wear-level program: %w", err)
		}
		t = pt
		f.setMapping(lba, dst)
		f.stats.WearMoves++
	}
	// The destination is now a closed block; the cold block erases into the
	// free pool, releasing its young erase budget for hot data.
	f.fullBlocks.Set(int(worn))
	f.fullBlocks.Clear(int(cold))
	et, err := f.arr.EraseBlock(t, cold)
	if err != nil {
		return false, t, fmt.Errorf("ftl: wear-level erase: %w", err)
	}
	f.eraseCount[cold]++
	f.stats.BlocksErased++
	f.validCount[cold] = 0
	f.freeBlocks[die] = append(f.freeBlocks[die], cold)
	return true, et, nil
}

// WearSpread reports the current max-min erase-count spread (telemetry).
func (f *FTL) WearSpread() uint32 {
	if len(f.eraseCount) == 0 {
		return 0
	}
	min, max := f.eraseCount[0], f.eraseCount[0]
	for _, e := range f.eraseCount {
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	return max - min
}
