package ftl

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"pipette/internal/nand"
	"pipette/internal/sim"
)

func smallNAND(t testing.TB) *nand.Array {
	t.Helper()
	cfg := nand.DefaultConfig()
	cfg.Channels = 2
	cfg.WaysPerChannel = 2
	cfg.PlanesPerDie = 1
	cfg.BlocksPerPlane = 8
	cfg.PagesPerBlock = 8
	a, err := nand.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func newFTL(t testing.TB, arr *nand.Array) *FTL {
	t.Helper()
	f, err := New(arr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func page(f *FTL, fill byte) []byte {
	b := make([]byte, f.PageSize())
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestNewValidation(t *testing.T) {
	arr := smallNAND(t)
	if _, err := New(arr, Config{OverprovisionPct: 60, GCFreeBlockLow: 2}); err == nil {
		t.Error("overprovision 60% accepted")
	}
	if _, err := New(arr, Config{OverprovisionPct: 7, GCFreeBlockLow: 0}); err == nil {
		t.Error("GCFreeBlockLow 0 accepted")
	}
}

func TestExportedCapacity(t *testing.T) {
	arr := smallNAND(t)
	f := newFTL(t, arr)
	total := arr.Config().TotalPages()
	if got := f.LogicalPages(); got >= total || got < total/2 {
		t.Fatalf("LogicalPages = %d, want in [%d, %d)", got, total/2, total)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newFTL(t, smallNAND(t))
	data := page(f, 0xab)
	if _, err := f.Write(0, 5, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, _, err := f.Read(0, 5)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read != written")
	}
}

func TestReadUnmapped(t *testing.T) {
	f := newFTL(t, smallNAND(t))
	if _, _, err := f.Read(0, 3); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("err = %v, want ErrUnmapped", err)
	}
	if f.IsMapped(3) {
		t.Fatal("IsMapped(3) = true for unwritten lba")
	}
}

func TestBadLBARejected(t *testing.T) {
	f := newFTL(t, smallNAND(t))
	big := LBA(f.LogicalPages())
	if _, err := f.Write(0, big, page(f, 1)); !errors.Is(err, ErrBadLBA) {
		t.Fatalf("Write err = %v", err)
	}
	if _, err := f.Translate(big); !errors.Is(err, ErrBadLBA) {
		t.Fatalf("Translate err = %v", err)
	}
	if err := f.Trim(big); !errors.Is(err, ErrBadLBA) {
		t.Fatalf("Trim err = %v", err)
	}
	if err := f.Preload(big); !errors.Is(err, ErrBadLBA) {
		t.Fatalf("Preload err = %v", err)
	}
	if _, err := f.Write(0, 0, []byte{1, 2, 3}); !errors.Is(err, ErrBadLength) {
		t.Fatalf("short write err = %v", err)
	}
}

func TestOverwriteInvalidatesOld(t *testing.T) {
	f := newFTL(t, smallNAND(t))
	if _, err := f.Write(0, 7, page(f, 1)); err != nil {
		t.Fatal(err)
	}
	old, _ := f.Translate(7)
	if _, err := f.Write(0, 7, page(f, 2)); err != nil {
		t.Fatal(err)
	}
	cur, _ := f.Translate(7)
	if cur == old {
		t.Fatal("overwrite did not relocate (in-place NAND update impossible)")
	}
	got, _, err := f.Read(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("read returned stale data %d", got[0])
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestStripingAcrossChannels(t *testing.T) {
	arr := smallNAND(t)
	f := newFTL(t, arr)
	geo := arr.Config()
	// Sequential logical writes should land on distinct channels until all
	// channels are covered.
	seen := make(map[int]bool)
	for i := 0; i < geo.Channels; i++ {
		if _, err := f.Write(0, LBA(i), page(f, byte(i))); err != nil {
			t.Fatal(err)
		}
		ppa, _ := f.Translate(LBA(i))
		seen[geo.ChannelOf(ppa)] = true
	}
	if len(seen) != geo.Channels {
		t.Fatalf("sequential pages used %d/%d channels", len(seen), geo.Channels)
	}
}

func TestTrim(t *testing.T) {
	f := newFTL(t, smallNAND(t))
	if _, err := f.Write(0, 4, page(f, 9)); err != nil {
		t.Fatal(err)
	}
	if err := f.Trim(4); err != nil {
		t.Fatal(err)
	}
	if f.IsMapped(4) {
		t.Fatal("lba still mapped after trim")
	}
	if _, _, err := f.Read(0, 4); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("read after trim err = %v", err)
	}
	// Trimming an unmapped lba is a no-op.
	if err := f.Trim(4); err != nil {
		t.Fatal(err)
	}
	if f.Stats().TrimmedPages != 1 {
		t.Fatalf("TrimmedPages = %d, want 1", f.Stats().TrimmedPages)
	}
}

func TestPreloadContent(t *testing.T) {
	arr := smallNAND(t)
	f := newFTL(t, arr)
	for i := LBA(0); i < 10; i++ {
		if err := f.Preload(i); err != nil {
			t.Fatalf("Preload(%d): %v", i, err)
		}
	}
	// Content equals the NAND oracle for the mapped PPA.
	for i := LBA(0); i < 10; i++ {
		ppa, err := f.Translate(i)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, f.PageSize())
		nand.ExpectedContent(arr.Config().ContentSeed, f.PageSize(), ppa, 0, want)
		got, _, err := f.Read(0, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("lba %d content mismatch", i)
		}
	}
}

func TestGCReclaimsSpace(t *testing.T) {
	arr := smallNAND(t)
	f := newFTL(t, arr)
	// Hammer a working set far beyond physical capacity in random order:
	// without GC this would exhaust the free pools, and the random order
	// leaves victims partially valid so GC must relocate.
	workingSet := f.LogicalPages() * 3 / 4
	writes := int(arr.Config().TotalPages()) * 3
	rng := sim.NewRNG(99)
	shadow := make(map[LBA]byte)
	var now sim.Time
	for i := 0; i < writes; i++ {
		lba := LBA(rng.Uint64n(workingSet))
		done, err := f.Write(now, lba, page(f, byte(i)))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		shadow[lba] = byte(i)
		now = done
	}
	st := f.Stats()
	if st.GCRuns == 0 || st.BlocksErased == 0 {
		t.Fatalf("GC never ran: %+v", st)
	}
	if wa := st.WriteAmplification(); wa <= 1.0 {
		t.Fatalf("write amplification = %v, want > 1 after GC", wa)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants after GC: %v", err)
	}
	// Data still correct after all that relocation.
	for lba, want := range shadow {
		got, _, err := f.Read(now, lba)
		if err != nil {
			t.Fatalf("read %d: %v", lba, err)
		}
		if got[0] != want {
			t.Fatalf("lba %d = %d, want %d", lba, got[0], want)
		}
	}
}

func TestGCAdvancesTime(t *testing.T) {
	arr := smallNAND(t)
	f := newFTL(t, arr)
	workingSet := f.LogicalPages() / 4
	var now sim.Time
	var maxStep sim.Time
	for i := 0; i < int(arr.Config().TotalPages())*2; i++ {
		done, err := f.Write(now, LBA(uint64(i)%workingSet), page(f, byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		if done < now {
			t.Fatal("completion went backwards")
		}
		if step := done - now; step > maxStep {
			maxStep = step
		}
		now = done
	}
	// Some write must have absorbed a GC cycle (erase is milliseconds).
	if maxStep < sim.Millisecond {
		t.Fatalf("max write latency %v; GC cost not visible in timing", maxStep)
	}
}

func TestBadBlocksExcluded(t *testing.T) {
	arr := smallNAND(t)
	// Mark a few blocks bad before FTL format.
	for _, b := range []nand.BlockID{1, 5, 9} {
		if err := arr.MarkBad(b); err != nil {
			t.Fatal(err)
		}
	}
	f := newFTL(t, arr)
	// Fill to capacity; no write may touch a bad block.
	var now sim.Time
	for i := uint64(0); i < f.LogicalPages(); i++ {
		done, err := f.Write(now, LBA(i), page(f, byte(i)))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		now = done
		ppa, _ := f.Translate(LBA(i))
		if arr.IsBad(arr.Config().BlockOf(ppa)) {
			t.Fatalf("lba %d mapped into bad block", i)
		}
	}
}

func TestWearAccounting(t *testing.T) {
	arr := smallNAND(t)
	f := newFTL(t, arr)
	workingSet := f.LogicalPages() / 4
	var now sim.Time
	for i := 0; i < int(arr.Config().TotalPages())*3; i++ {
		done, err := f.Write(now, LBA(uint64(i)%workingSet), page(f, byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	var total uint32
	for _, e := range f.EraseCounts() {
		total += e
	}
	if uint64(total) != f.Stats().BlocksErased {
		t.Fatalf("erase counters %d != stats %d", total, f.Stats().BlocksErased)
	}
	if total == 0 {
		t.Fatal("no erases recorded")
	}
}

// Property: any interleaving of writes/trims/preloads over a small LBA space
// keeps the mapping tables mutually consistent and reads return the last
// write.
func TestRandomOpsInvariants(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		arr := smallNAND(t)
		fl := newFTL(t, arr)
		shadow := make(map[LBA]byte)
		var now sim.Time
		space := fl.LogicalPages() / 8
		if space == 0 {
			space = 1
		}
		for _, op := range ops {
			lba := LBA(uint64(op) % space)
			switch op % 3 {
			case 0, 1: // write (2/3 of ops so GC gets exercised)
				fill := byte(op >> 8)
				done, err := fl.Write(now, lba, page(fl, fill))
				if err != nil {
					return false
				}
				now = done
				shadow[lba] = fill
			case 2: // trim
				if err := fl.Trim(lba); err != nil {
					return false
				}
				delete(shadow, lba)
			}
		}
		if fl.CheckInvariants() != nil {
			return false
		}
		for lba, want := range shadow {
			got, _, err := fl.Read(now, lba)
			if err != nil || got[0] != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkFTLWrite(b *testing.B) {
	cfg := nand.DefaultConfig()
	cfg.BlocksPerPlane = 32
	cfg.PagesPerBlock = 64
	arr, err := nand.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	f, err := New(arr, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, f.PageSize())
	working := f.LogicalPages() / 2
	var now sim.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done, err := f.Write(now, LBA(uint64(i)%working), data)
		if err != nil {
			b.Fatal(err)
		}
		now = done
	}
}
