package ftl

import (
	"errors"
	"testing"

	"pipette/internal/nand"
	"pipette/internal/sim"
)

// benchFTL builds a moderately sized array and maps every logical page, so
// the translate/read paths run against a realistic L2P table.
func benchFTL(b *testing.B) *FTL {
	b.Helper()
	cfg := nand.DefaultConfig()
	cfg.Channels = 4
	cfg.WaysPerChannel = 2
	cfg.PlanesPerDie = 2
	cfg.BlocksPerPlane = 16
	cfg.PagesPerBlock = 32
	arr, err := nand.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	f, err := New(arr, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for lba := uint64(0); lba < f.LogicalPages(); lba++ {
		if err := f.Preload(LBA(lba)); err != nil {
			b.Fatal(err)
		}
	}
	return f
}

// BenchmarkFTLMap measures the L2P lookup alone: the flat mapping slice is
// the hot path of every device read and write.
func BenchmarkFTLMap(b *testing.B) {
	f := benchFTL(b)
	n := f.LogicalPages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Translate(LBA(uint64(i) % n)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFTLReadInto measures a mapped page read into a caller buffer —
// translate + NAND timing + pattern fill, no allocation.
func BenchmarkFTLReadInto(b *testing.B) {
	f := benchFTL(b)
	n := f.LogicalPages()
	buf := make([]byte, f.PageSize())
	var now sim.Time
	b.SetBytes(int64(f.PageSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done, err := f.ReadInto(now, LBA(uint64(i)%n), buf)
		if err != nil {
			b.Fatal(err)
		}
		now = done
	}
}

// BenchmarkFTLWriteGC measures steady-state overwrites, which exercise
// allocation, invalidation, and the bitset-driven GC victim scan. GC is
// die-local, so per-die valid-page imbalance random-walks over hundreds of
// full-device churn cycles and can eventually leave one die unreclaimable;
// the benchmark resets the array (off the timer) when that happens.
func BenchmarkFTLWriteGC(b *testing.B) {
	f := benchFTL(b)
	n := f.LogicalPages()
	data := make([]byte, f.PageSize())
	var now sim.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done, err := f.Write(now, LBA(uint64(i*7)%n), data)
		if errors.Is(err, ErrNoSpace) {
			b.StopTimer()
			f = benchFTL(b)
			n = f.LogicalPages()
			now = 0
			b.StartTimer()
			continue
		}
		if err != nil {
			b.Fatal(err)
		}
		now = done
	}
}
