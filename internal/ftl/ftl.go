// Package ftl implements a page-level flash translation layer on top of the
// NAND array: logical-to-physical mapping, channel-striped page allocation
// (so sequential logical pages spread across channels and read-ahead enjoys
// device parallelism), out-of-place updates, greedy garbage collection, and
// TRIM.
//
// The FTL is the substrate both read paths share: the block I/O path reads
// whole pages through it, and Pipette's LBA Extractor asks it (via the
// filesystem) which physical pages hold the bytes a fine-grained read wants.
package ftl

import (
	"errors"
	"fmt"

	"pipette/internal/bitset"
	"pipette/internal/nand"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// LBA is a logical block address in units of one flash page (4 KiB by
// default), the device's exported sector-cluster granularity.
type LBA uint64

// Sentinels for the mapping tables.
const (
	invalidPPA nand.PPA = ^nand.PPA(0)
	invalidLBA LBA      = ^LBA(0)
)

// Config tunes the FTL.
type Config struct {
	// OverprovisionPct is the fraction of physical blocks reserved beyond
	// the exported logical capacity, in percent. GC needs headroom; 7 is a
	// typical consumer-drive value.
	OverprovisionPct int
	// GCFreeBlockLow triggers garbage collection when the free-block pool
	// of any die drops to this many blocks.
	GCFreeBlockLow int
	// WearDelta is the erase-count spread between a die's most-worn free
	// block and least-worn closed block that triggers a static wear-leveling
	// move (see WearLevelTick). 0 disables wear leveling.
	WearDelta int
}

// DefaultConfig returns production-flavoured FTL settings.
func DefaultConfig() Config {
	return Config{OverprovisionPct: 7, GCFreeBlockLow: 2, WearDelta: defaultWearDelta}
}

// Stats counts FTL-level activity.
type Stats struct {
	HostWrites    uint64 // pages written by the host
	GCWrites      uint64 // pages relocated by GC
	GCRuns        uint64
	BlocksErased  uint64
	TrimmedPages  uint64
	PreloadedPage uint64
	WearMoves     uint64 // pages relocated by static wear leveling
}

// WriteAmplification reports (host+GC writes)/host writes.
func (s Stats) WriteAmplification() float64 {
	if s.HostWrites == 0 {
		return 0
	}
	return float64(s.HostWrites+s.GCWrites) / float64(s.HostWrites)
}

// Errors returned by the FTL.
var (
	ErrUnmapped  = errors.New("ftl: lba is not mapped")
	ErrNoSpace   = errors.New("ftl: out of physical space")
	ErrBadLBA    = errors.New("ftl: lba beyond exported capacity")
	ErrBadLength = errors.New("ftl: data length does not match page size")
)

// openBlock is a die's active write frontier.
type openBlock struct {
	id   nand.BlockID
	next int // next page index to program
}

// FTL is the translation layer. Not safe for concurrent use.
type FTL struct {
	arr *nand.Array
	cfg Config
	geo nand.Config

	l2p []nand.PPA // logical page -> physical page
	p2l []LBA      // physical page -> logical page (for GC)

	validCount []int      // per block: live pages
	eraseCount []uint32   // per block: wear
	fullBlocks bitset.Set // closed (fully programmed) blocks; scans run in block-ID order

	freeBlocks [][]nand.BlockID // per die free pool
	open       []openBlock      // per die write frontier
	nextDie    int              // round-robin striping cursor

	relocBuf []byte // page scratch for GC / wear-level relocation reads

	logicalPages uint64
	stats        Stats
	tr           telemetry.Tracer
	sa           *telemetry.StageAccount
	dieLabels    []string // interned per-die blame labels ("nand.ch0.w0", ...)
}

// New builds an FTL over the array. Bad blocks already marked on the array
// are excluded from the pools.
func New(arr *nand.Array, cfg Config) (*FTL, error) {
	if cfg.OverprovisionPct < 0 || cfg.OverprovisionPct >= 50 {
		return nil, fmt.Errorf("ftl: overprovision %d%% out of [0,50)", cfg.OverprovisionPct)
	}
	if cfg.GCFreeBlockLow < 1 {
		return nil, errors.New("ftl: GCFreeBlockLow must be >= 1")
	}
	geo := arr.Config()
	f := &FTL{
		arr:        arr,
		cfg:        cfg,
		geo:        geo,
		validCount: make([]int, geo.TotalBlocks()),
		eraseCount: make([]uint32, geo.TotalBlocks()),
		fullBlocks: bitset.New(geo.TotalBlocks()),
		freeBlocks: make([][]nand.BlockID, geo.Dies()),
		open:       make([]openBlock, geo.Dies()),
		relocBuf:   make([]byte, geo.PageSize),
		tr:         telemetry.Nop(),
		dieLabels:  make([]string, geo.Dies()),
	}
	// Per-die blame labels, matching the nand package's die timeline names
	// so the blame table and the utilization bars agree on spelling.
	for die := range f.dieLabels {
		f.dieLabels[die] = fmt.Sprintf("nand.ch%d.w%d",
			die/geo.WaysPerChannel, die%geo.WaysPerChannel)
	}
	total := geo.TotalPages()
	f.l2p = make([]nand.PPA, 0)
	f.p2l = make([]LBA, total)
	for i := range f.p2l {
		f.p2l[i] = invalidLBA
	}

	minUsable := geo.BlocksPerDie()
	for die := 0; die < geo.Dies(); die++ {
		for b := 0; b < geo.BlocksPerDie(); b++ {
			id := nand.BlockID(die*geo.BlocksPerDie() + b)
			if arr.IsBad(id) {
				continue
			}
			f.freeBlocks[die] = append(f.freeBlocks[die], id)
		}
		if u := len(f.freeBlocks[die]); u < minUsable {
			minUsable = u
		}
		if len(f.freeBlocks[die]) < cfg.GCFreeBlockLow+2 {
			return nil, fmt.Errorf("ftl: die %d has only %d usable blocks", die, len(f.freeBlocks[die]))
		}
		f.open[die] = openBlock{id: f.popFree(die), next: 0}
	}

	// Writes stripe round-robin across dies, so exported capacity is bounded
	// by the smallest die: each die must keep GCFreeBlockLow blocks spare
	// for the collector plus one open frontier block.
	perDie := minUsable - cfg.GCFreeBlockLow - 1
	exported := uint64(geo.Dies()) * uint64(perDie) * uint64(geo.PagesPerBlock)
	exported = exported * uint64(100-cfg.OverprovisionPct) / 100
	f.logicalPages = exported
	f.l2p = make([]nand.PPA, exported)
	for i := range f.l2p {
		f.l2p[i] = invalidPPA
	}
	return f, nil
}

// LogicalPages reports the exported logical capacity in pages.
func (f *FTL) LogicalPages() uint64 { return f.logicalPages }

// PageSize reports the mapping granularity in bytes.
func (f *FTL) PageSize() int { return f.geo.PageSize }

// Stats returns a copy of the counters.
func (f *FTL) Stats() Stats { return f.stats }

// SetTracer installs a tracer on the FTL and its NAND array.
func (f *FTL) SetTracer(tr telemetry.Tracer) {
	f.tr = telemetry.OrNop(tr)
	f.arr.SetTracer(f.tr)
}

// SetStages installs the per-request stage account. The FTL attributes
// media time: page reads mark the NAND stage, programs (including GC the
// write triggered) mark the program stage. The map lookup itself costs no
// modeled time — it is covered by the controller's firmware stage.
func (f *FTL) SetStages(sa *telemetry.StageAccount) { f.sa = sa }

// Array exposes the underlying NAND array (the SSD controller needs it for
// the fine-grained read engine's direct page loads).
func (f *FTL) Array() *nand.Array { return f.arr }

// Translate resolves an LBA to its current physical page.
func (f *FTL) Translate(lba LBA) (nand.PPA, error) {
	if uint64(lba) >= f.logicalPages {
		return 0, fmt.Errorf("%w: %d >= %d", ErrBadLBA, lba, f.logicalPages)
	}
	p := f.l2p[lba]
	if p == invalidPPA {
		return 0, fmt.Errorf("%w: lba %d", ErrUnmapped, lba)
	}
	return p, nil
}

// IsMapped reports whether an LBA currently has physical backing.
func (f *FTL) IsMapped(lba LBA) bool {
	return uint64(lba) < f.logicalPages && f.l2p[lba] != invalidPPA
}

// Read reads the page backing lba. Completion time accounts for die and
// channel contention.
func (f *FTL) Read(now sim.Time, lba LBA) ([]byte, sim.Time, error) {
	ppa, err := f.Translate(lba)
	if err != nil {
		return nil, now, err
	}
	return f.arr.ReadPage(now, ppa)
}

// ReadInto reads the page backing lba into a caller-owned page-sized buffer,
// avoiding the per-read allocation of Read.
func (f *FTL) ReadInto(now sim.Time, lba LBA, buf []byte) (sim.Time, error) {
	ppa, err := f.Translate(lba)
	if err != nil {
		return now, err
	}
	done, err := f.arr.ReadPageInto(now, ppa, buf)
	if err == nil {
		f.sa.MarkRes(telemetry.StageNAND, done, f.dieLabels[f.geo.DieOf(ppa)])
	}
	return done, err
}

// popFree removes and returns the least-worn free block of a die —
// wear-aware dynamic allocation, so erase cycles spread across the pool
// instead of hammering the most recently freed block.
func (f *FTL) popFree(die int) nand.BlockID {
	pool := f.freeBlocks[die]
	best := 0
	for i, b := range pool {
		if f.eraseCount[b] < f.eraseCount[pool[best]] {
			best = i
		}
	}
	id := pool[best]
	f.freeBlocks[die] = append(pool[:best], pool[best+1:]...)
	return id
}

// FreeBlocks reports the total free-pool size across dies.
func (f *FTL) FreeBlocks() int {
	n := 0
	for _, pool := range f.freeBlocks {
		n += len(pool)
	}
	return n
}

// allocate returns the next physical page on the striping frontier,
// running GC first if the target die's pool is low. now is needed because
// GC consumes virtual time; the possibly-advanced time is returned.
func (f *FTL) allocate(now sim.Time) (nand.PPA, sim.Time, error) {
	// Channel-major rotation: consecutive allocations land on different
	// channels first, then different ways, so sequential logical pages get
	// maximal bus parallelism (what read-ahead batches rely on).
	idx := f.nextDie
	f.nextDie = (f.nextDie + 1) % f.geo.Dies()
	die := (idx%f.geo.Channels)*f.geo.WaysPerChannel + (idx/f.geo.Channels)%f.geo.WaysPerChannel

	ob := &f.open[die]
	if ob.next >= f.geo.PagesPerBlock {
		// Frontier block is full; retire it and open a new one.
		f.fullBlocks.Set(int(ob.id))
		var err error
		now, err = f.ensureFree(now, die)
		if err != nil {
			return 0, now, err
		}
		// GC relocations may already have opened (and partially filled) a
		// fresh frontier via allocateOnDie; only open another block if the
		// frontier is still full, or that block would leak.
		if ob.next >= f.geo.PagesPerBlock {
			*ob = openBlock{id: f.popFree(die), next: 0}
		}
	}
	first := f.geo.FirstPPA(ob.id)
	ppa := first + nand.PPA(ob.next)
	ob.next++
	return ppa, now, nil
}

// ensureFree runs GC on a die until its pool has at least GCFreeBlockLow
// blocks.
func (f *FTL) ensureFree(now sim.Time, die int) (sim.Time, error) {
	for len(f.freeBlocks[die]) < f.cfg.GCFreeBlockLow {
		var err error
		now, err = f.collectDie(now, die)
		if err != nil {
			return now, err
		}
	}
	return now, nil
}

// collectDie performs one greedy GC cycle on a die: pick the full block with
// the fewest live pages, relocate them, erase.
func (f *FTL) collectDie(now sim.Time, die int) (sim.Time, error) {
	done, err := f.collectDieAt(now, die)
	if err == nil && f.tr.Enabled() {
		f.tr.Span(telemetry.TrackFTL, "gc", now, done)
	}
	return done, err
}

func (f *FTL) collectDieAt(now sim.Time, die int) (sim.Time, error) {
	// Scan the die's closed blocks in ascending block-ID order: greedy on
	// live-page count, lowest ID breaking ties, so victim selection is
	// deterministic run to run.
	victim := nand.BlockID(0)
	best := -1
	lo, hi := die*f.geo.BlocksPerDie(), (die+1)*f.geo.BlocksPerDie()
	for b := f.fullBlocks.NextSet(lo); b >= 0 && b < hi; b = f.fullBlocks.NextSet(b + 1) {
		id := nand.BlockID(b)
		if best == -1 || f.validCount[id] < best {
			victim, best = id, f.validCount[id]
		}
	}
	if best == -1 || best == f.geo.PagesPerBlock {
		return now, fmt.Errorf("%w: die %d has no reclaimable block", ErrNoSpace, die)
	}
	f.stats.GCRuns++

	first := f.geo.FirstPPA(victim)
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		src := first + nand.PPA(i)
		lba := f.p2l[src]
		if lba == invalidLBA {
			continue
		}
		t, err := f.arr.ReadPageInto(now, src, f.relocBuf)
		if err != nil {
			return now, fmt.Errorf("ftl: gc read: %w", err)
		}
		now = t
		// Relocate to the same die's frontier to keep striping stable.
		dst, t2, err := f.allocateOnDie(now, die, victim)
		if err != nil {
			return now, err
		}
		now = t2
		done, err := f.arr.ProgramPage(now, dst, f.relocBuf)
		if err != nil {
			return now, fmt.Errorf("ftl: gc program: %w", err)
		}
		now = done
		f.setMapping(lba, dst)
		f.stats.GCWrites++
	}

	f.fullBlocks.Clear(int(victim))
	done, err := f.arr.EraseBlock(now, victim)
	if err != nil {
		return now, fmt.Errorf("ftl: gc erase: %w", err)
	}
	f.eraseCount[victim]++
	f.stats.BlocksErased++
	f.validCount[victim] = 0
	f.freeBlocks[die] = append(f.freeBlocks[die], victim)
	return done, nil
}

// allocateOnDie gets a frontier page on a specific die (GC relocation),
// never selecting exclude as the new open block.
func (f *FTL) allocateOnDie(now sim.Time, die int, exclude nand.BlockID) (nand.PPA, sim.Time, error) {
	ob := &f.open[die]
	if ob.next >= f.geo.PagesPerBlock {
		f.fullBlocks.Set(int(ob.id))
		if len(f.freeBlocks[die]) == 0 {
			return 0, now, fmt.Errorf("%w: die %d exhausted during GC", ErrNoSpace, die)
		}
		*ob = openBlock{id: f.popFree(die), next: 0}
		if ob.id == exclude {
			// Should be impossible: the victim is not in the free pool yet.
			return 0, now, fmt.Errorf("ftl: internal: reopened GC victim %d", exclude)
		}
	}
	ppa := f.geo.FirstPPA(ob.id) + nand.PPA(ob.next)
	ob.next++
	return ppa, now, nil
}

func (f *FTL) dieOfBlock(b nand.BlockID) int {
	return int(b) / f.geo.BlocksPerDie()
}

// setMapping points lba at ppa, invalidating any previous backing.
func (f *FTL) setMapping(lba LBA, ppa nand.PPA) {
	if old := f.l2p[lba]; old != invalidPPA {
		f.p2l[old] = invalidLBA
		f.validCount[f.geo.BlockOf(old)]--
	}
	f.l2p[lba] = ppa
	f.p2l[ppa] = lba
	f.validCount[f.geo.BlockOf(ppa)]++
}

// Write stores one page of data at lba (out-of-place). Completion time
// includes any GC the write triggered.
func (f *FTL) Write(now sim.Time, lba LBA, data []byte) (sim.Time, error) {
	if uint64(lba) >= f.logicalPages {
		return now, fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	if len(data) != f.geo.PageSize {
		return now, fmt.Errorf("%w: %d != %d", ErrBadLength, len(data), f.geo.PageSize)
	}
	ppa, now, err := f.allocate(now)
	if err != nil {
		return now, err
	}
	done, err := f.arr.ProgramPage(now, ppa, data)
	if err != nil {
		return now, fmt.Errorf("ftl: write program: %w", err)
	}
	f.setMapping(lba, ppa)
	f.stats.HostWrites++
	f.sa.MarkRes(telemetry.StageProgram, done, f.dieLabels[f.geo.DieOf(ppa)])
	return done, nil
}

// Trim drops the mapping for lba; subsequent reads fail with ErrUnmapped
// until rewritten.
func (f *FTL) Trim(lba LBA) error {
	if uint64(lba) >= f.logicalPages {
		return fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	if old := f.l2p[lba]; old != invalidPPA {
		f.p2l[old] = invalidLBA
		f.validCount[f.geo.BlockOf(old)]--
		f.l2p[lba] = invalidPPA
		f.stats.TrimmedPages++
	}
	return nil
}

// Preload maps lba to a frontier page holding deterministic content,
// without consuming virtual time — dataset setup for the benchmarks.
func (f *FTL) Preload(lba LBA) error {
	if uint64(lba) >= f.logicalPages {
		return fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	ppa, _, err := f.allocate(0)
	if err != nil {
		return err
	}
	if err := f.arr.Preload(ppa); err != nil {
		return fmt.Errorf("ftl: preload: %w", err)
	}
	f.setMapping(lba, ppa)
	f.stats.PreloadedPage++
	return nil
}

// EraseCounts returns a copy of per-block erase counters (wear telemetry).
func (f *FTL) EraseCounts() []uint32 {
	out := make([]uint32, len(f.eraseCount))
	copy(out, f.eraseCount)
	return out
}

// CheckInvariants validates internal consistency; property tests call it
// after random operation sequences. It returns the first violation found.
func (f *FTL) CheckInvariants() error {
	// l2p and p2l must be mutual inverses.
	for lba, ppa := range f.l2p {
		if ppa == invalidPPA {
			continue
		}
		if f.p2l[ppa] != LBA(lba) {
			return fmt.Errorf("l2p[%d]=%d but p2l[%d]=%d", lba, ppa, ppa, f.p2l[ppa])
		}
	}
	valid := make([]int, len(f.validCount))
	for ppa, lba := range f.p2l {
		if lba == invalidLBA {
			continue
		}
		if f.l2p[lba] != nand.PPA(ppa) {
			return fmt.Errorf("p2l[%d]=%d but l2p[%d]=%d", ppa, lba, lba, f.l2p[lba])
		}
		valid[f.geo.BlockOf(nand.PPA(ppa))]++
	}
	for b, want := range valid {
		if f.validCount[b] != want {
			return fmt.Errorf("validCount[%d]=%d, recount=%d", b, f.validCount[b], want)
		}
	}
	return nil
}
