package nvme

import (
	"errors"
	"math"
	"testing"

	"pipette/internal/sim"
)

// The ring indices are free-running uint32 counters; Len is tail-head in
// modular arithmetic and slots index as counter % size. Both must keep
// working when the counters overflow uint32 — seed head and tail just
// below the wrap and run full fill/drain cycles across it.
func TestSQHeadTailAcrossUint32Wrap(t *testing.T) {
	q := NewSQ(4) // capacity 3
	q.head = math.MaxUint32 - 2
	q.tail = q.head
	var n uint16
	for cycle := 0; cycle < 4; cycle++ { // counters cross MaxUint32 mid-test
		if q.Len() != 0 {
			t.Fatalf("cycle %d: Len = %d, want 0 (head=%d tail=%d)", cycle, q.Len(), q.head, q.tail)
		}
		for i := 0; i < q.Cap(); i++ {
			if err := q.Push(Command{ID: n}); err != nil {
				t.Fatalf("push %d across wrap: %v", n, err)
			}
			n++
			if q.Len() != i+1 {
				t.Fatalf("Len = %d, want %d", q.Len(), i+1)
			}
		}
		if err := q.Push(Command{}); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("full push across wrap: err = %v, want ErrQueueFull", err)
		}
		for i := 0; i < q.Cap(); i++ {
			c, err := q.Pop()
			if err != nil {
				t.Fatalf("pop across wrap: %v", err)
			}
			if want := n - uint16(q.Cap()) + uint16(i); c.ID != want {
				t.Fatalf("FIFO across wrap: got %d, want %d", c.ID, want)
			}
		}
		if _, err := q.Pop(); !errors.Is(err, ErrQueueEmpty) {
			t.Fatalf("empty pop across wrap: err = %v, want ErrQueueEmpty", err)
		}
	}
	if q.head != q.tail || q.head >= math.MaxUint32-2 {
		t.Fatalf("counters did not cross the wrap: head=%d tail=%d", q.head, q.tail)
	}
}

func TestCQHeadTailAcrossUint32Wrap(t *testing.T) {
	q := NewCQ(3) // capacity 2
	q.head = math.MaxUint32
	q.tail = q.head
	var n uint16
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < q.Cap(); i++ {
			if err := q.Push(Completion{ID: n}); err != nil {
				t.Fatalf("push %d across wrap: %v", n, err)
			}
			n++
		}
		if err := q.Push(Completion{}); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("full push across wrap: err = %v, want ErrQueueFull", err)
		}
		for i := 0; i < q.Cap(); i++ {
			c, err := q.Pop()
			if err != nil {
				t.Fatalf("pop across wrap: %v", err)
			}
			if want := n - uint16(q.Cap()) + uint16(i); c.ID != want {
				t.Fatalf("FIFO across wrap: got %d, want %d", c.ID, want)
			}
		}
		if _, err := q.Pop(); !errors.Is(err, ErrQueueEmpty) {
			t.Fatalf("empty pop across wrap: err = %v, want ErrQueueEmpty", err)
		}
	}
}

// A full ring rejects Submit with ErrQueueFull, consuming neither a
// command ID nor a round-robin or stats slot; draining the engine frees
// the ring and submission resumes with the next sequential ID.
func TestMultiQueueBackpressureAtCapacity(t *testing.T) {
	dev := &echoDevice{service: 5 * sim.Microsecond}
	eng := sim.NewEngine()
	mq := NewMultiQueue(dev, 1, 4, DefaultCosts(), eng) // one pair, capacity 3

	var got []Completion
	cb := func(c Completion) { got = append(got, c) }
	for i := 0; i < mq.Depth(); i++ {
		if err := mq.Submit(0, Command{Op: OpRead, Pages: 1}, cb); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if mq.InFlight() != mq.Depth() {
		t.Fatalf("InFlight = %d, want %d", mq.InFlight(), mq.Depth())
	}
	// The ring is at capacity: the next submit must bounce and must not
	// perturb transport state.
	for i := 0; i < 2; i++ {
		if err := mq.Submit(0, Command{Op: OpRead, Pages: 1}, cb); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("submit at capacity: err = %v, want ErrQueueFull", err)
		}
	}
	if sub, done := mq.Stats(); sub != uint64(mq.Depth()) || done != 0 {
		t.Fatalf("stats after rejects = %d/%d, want %d/0", sub, done, mq.Depth())
	}

	eng.Run()
	if err := mq.Err(); err != nil {
		t.Fatalf("transport error: %v", err)
	}
	if mq.InFlight() != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", mq.InFlight())
	}
	if len(got) != mq.Depth() {
		t.Fatalf("completions = %d, want %d", len(got), mq.Depth())
	}
	for i, c := range got {
		if c.ID != uint16(i) {
			t.Fatalf("completion %d has ID %d; a rejected submit consumed an ID", i, c.ID)
		}
	}

	// The drained ring accepts again, with the ID sequence unbroken.
	if err := mq.Submit(got[len(got)-1].Done, Command{Op: OpRead, Pages: 1}, cb); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	eng.Run()
	if want := uint16(mq.Depth()); got[len(got)-1].ID != want {
		t.Fatalf("post-drain ID = %d, want %d", got[len(got)-1].ID, want)
	}
}

// Backpressure is per pair: with two pairs of capacity 1, the third
// round-robin submit lands back on the still-full first pair and bounces,
// even though it was preceded by a success on the second.
func TestMultiQueueBackpressurePerPair(t *testing.T) {
	dev := &echoDevice{service: sim.Microsecond}
	eng := sim.NewEngine()
	mq := NewMultiQueue(dev, 2, 2, Costs{}, eng) // two pairs, capacity 1 each

	cb := func(Completion) {}
	if err := mq.Submit(0, Command{Op: OpFlush}, cb); err != nil {
		t.Fatalf("pair 0: %v", err)
	}
	if err := mq.Submit(0, Command{Op: OpFlush}, cb); err != nil {
		t.Fatalf("pair 1: %v", err)
	}
	if err := mq.Submit(0, Command{Op: OpFlush}, cb); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("wrapped to full pair 0: err = %v, want ErrQueueFull", err)
	}
	eng.Run()
	if mq.InFlight() != 0 {
		t.Fatalf("InFlight = %d, want 0", mq.InFlight())
	}
}
