package nvme

import (
	"errors"
	"testing"
	"testing/quick"

	"pipette/internal/sim"
)

func TestOpcodeAndStatusStrings(t *testing.T) {
	ops := map[Opcode]string{OpFlush: "Flush", OpWrite: "Write", OpRead: "Read",
		OpTrim: "Trim", OpFineRead: "FineRead"}
	for op, want := range ops {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
	if StatusOK.String() != "OK" || StatusUnmapped.String() != "Unmapped" {
		t.Error("status strings wrong")
	}
	if !(Completion{Status: StatusOK}).Ok() || (Completion{Status: StatusInternal}).Ok() {
		t.Error("Ok() wrong")
	}
}

func TestSQFIFOAndWrap(t *testing.T) {
	q := NewSQ(4) // capacity 3
	if q.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", q.Cap())
	}
	// Several full fill/drain cycles to cross the wrap point.
	var n uint16
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < q.Cap(); i++ {
			if err := q.Push(Command{ID: n}); err != nil {
				t.Fatalf("push %d: %v", n, err)
			}
			n++
		}
		if err := q.Push(Command{}); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("overfull push err = %v", err)
		}
		for i := 0; i < q.Cap(); i++ {
			c, err := q.Pop()
			if err != nil {
				t.Fatalf("pop: %v", err)
			}
			if want := n - uint16(q.Cap()) + uint16(i); c.ID != want {
				t.Fatalf("FIFO violated: got %d, want %d", c.ID, want)
			}
		}
		if _, err := q.Pop(); !errors.Is(err, ErrQueueEmpty) {
			t.Fatalf("empty pop err = %v", err)
		}
	}
}

func TestCQFIFO(t *testing.T) {
	q := NewCQ(3)
	if err := q.Push(Completion{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(Completion{ID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(Completion{ID: 3}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want full", err)
	}
	c, _ := q.Pop()
	if c.ID != 1 {
		t.Fatalf("popped %d, want 1", c.ID)
	}
}

func TestQueueSizePanics(t *testing.T) {
	for _, f := range []func(){func() { NewSQ(1) }, func() { NewCQ(0) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("undersized queue did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: a random interleaving of pushes and pops preserves FIFO order.
func TestSQOrderProperty(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewSQ(8)
		var pushed, popped uint16
		for _, isPush := range ops {
			if isPush {
				if q.Push(Command{ID: pushed}) == nil {
					pushed++
				}
			} else {
				if c, err := q.Pop(); err == nil {
					if c.ID != popped {
						return false
					}
					popped++
				}
			}
		}
		return popped <= pushed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// echoDevice completes every command after a fixed service time.
type echoDevice struct {
	service sim.Time
	seen    []Command
}

func (d *echoDevice) Execute(now sim.Time, cmd *Command) Completion {
	d.seen = append(d.seen, *cmd)
	return Completion{Status: StatusOK, Done: now + d.service, BytesMoved: 4096}
}

func TestDriverSubmitTiming(t *testing.T) {
	dev := &echoDevice{service: 10 * sim.Microsecond}
	costs := DefaultCosts()
	d := NewDriver(dev, 16, costs)

	comp, err := d.Submit(100*sim.Microsecond, Command{Op: OpRead, LBA: 7, Pages: 1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	want := 100*sim.Microsecond + costs.Doorbell + costs.Fetch + dev.service + costs.Completion
	if comp.Done != want {
		t.Fatalf("Done = %v, want %v", comp.Done, want)
	}
	if !comp.Ok() || comp.BytesMoved != 4096 {
		t.Fatalf("completion = %+v", comp)
	}
	if len(dev.seen) != 1 || dev.seen[0].LBA != 7 {
		t.Fatalf("device saw %+v", dev.seen)
	}
}

func TestDriverAssignsIDs(t *testing.T) {
	dev := &echoDevice{}
	d := NewDriver(dev, 8, Costs{})
	for i := 0; i < 5; i++ {
		comp, err := d.Submit(0, Command{Op: OpFlush})
		if err != nil {
			t.Fatal(err)
		}
		if comp.ID != uint16(i) {
			t.Fatalf("completion ID = %d, want %d", comp.ID, i)
		}
	}
	sub, done := d.Stats()
	if sub != 5 || done != 5 {
		t.Fatalf("stats = %d/%d", sub, done)
	}
}

func TestCostsTotal(t *testing.T) {
	c := Costs{Doorbell: 1, Fetch: 2, Completion: 3}
	if c.Total() != 6 {
		t.Fatalf("Total = %v", c.Total())
	}
}
