// Package nvme models the transport between host and SSD: submission and
// completion queue rings with doorbells, the command set the simulator needs
// (block read/write, flush, dataset-management TRIM), and the vendor
// extension the paper adds for fine-grained reads (§4.1: "We also extend the
// NVMe command set to support fine-grained reads").
//
// Queues are real rings with wrap-around and full/empty detection; the
// driver's Submit is synchronous in virtual time (the paper's workloads are
// blocking POSIX reads), with queueing costs modeled explicitly.
package nvme

import (
	"errors"
	"fmt"

	"pipette/internal/resource"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// Opcode identifies a command.
type Opcode uint8

// The command set. OpFineRead is the paper's vendor extension: the device
// reads the referenced NAND pages, digests pending Info Area records, and
// DMAs only the demanded byte ranges to their host destinations.
const (
	OpFlush Opcode = iota
	OpWrite
	OpRead
	OpTrim
	OpFineRead
)

// String names the opcode.
func (o Opcode) String() string {
	switch o {
	case OpFlush:
		return "Flush"
	case OpWrite:
		return "Write"
	case OpRead:
		return "Read"
	case OpTrim:
		return "Trim"
	case OpFineRead:
		return "FineRead"
	default:
		return fmt.Sprintf("Opcode(%d)", uint8(o))
	}
}

// Status is a completion status code.
type Status uint8

// Completion statuses.
const (
	StatusOK Status = iota
	StatusInvalidCommand
	StatusLBAOutOfRange
	StatusUnmapped
	StatusInternal
	// StatusMediaError: the ECC engine exhausted its read-retry budget;
	// the page's data is unrecoverable from the media.
	StatusMediaError
	// StatusCorruptRing: the device rejected a corrupted Info-Area ring
	// record for a fine read. The host re-serves the request through the
	// block path.
	StatusCorruptRing
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusInvalidCommand:
		return "InvalidCommand"
	case StatusLBAOutOfRange:
		return "LBAOutOfRange"
	case StatusUnmapped:
		return "Unmapped"
	case StatusInternal:
		return "Internal"
	case StatusMediaError:
		return "MediaError"
	case StatusCorruptRing:
		return "CorruptRing"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// ErrUncorrectable is the host-visible form of StatusMediaError. The block
// layer wraps it into its command errors, so the layers above — VFS, KV —
// can classify device data loss with errors.Is.
var ErrUncorrectable = errors.New("nvme: uncorrectable media error")

// Err converts a failed status into a stable error (nil for StatusOK).
// Sentinel-worthy statuses map to package-level errors; the rest render
// generically.
func (s Status) Err() error {
	switch s {
	case StatusOK:
		return nil
	case StatusMediaError:
		return ErrUncorrectable
	default:
		return fmt.Errorf("nvme: status %v", s)
	}
}

// Command is one submission-queue entry.
type Command struct {
	ID    uint16
	Op    Opcode
	LBA   uint64 // starting logical page
	Pages int    // page count for Read/Write/Trim

	// Data is the host buffer: the write payload for OpWrite, and the
	// destination the device DMAs into for OpRead (len = Pages*pagesize).
	Data []byte

	// FineLBAs lists the logical pages an OpFineRead touches. The byte
	// ranges and destinations travel out-of-band in the HMB Info Area, as
	// in the paper's design.
	FineLBAs []uint64
}

// Completion is one completion-queue entry.
type Completion struct {
	ID     uint16
	Status Status
	Done   sim.Time // virtual completion timestamp

	// BytesMoved is device->host traffic this command caused (telemetry
	// the traffic tables are built from).
	BytesMoved uint64

	// PayloadSum is the device-side checksum of a fine read's extracted
	// payload, computed before the DMA lands it in the HMB. Only filled
	// when fault injection is enabled; the host recomputes it over the
	// received bytes to detect in-flight DMA corruption.
	PayloadSum uint32
}

// Ok reports whether the command succeeded.
func (c Completion) Ok() bool { return c.Status == StatusOK }

// Queue errors.
var (
	ErrQueueFull  = errors.New("nvme: queue full")
	ErrQueueEmpty = errors.New("nvme: queue empty")
)

// SQ is a submission ring.
type SQ struct {
	entries []Command
	head    uint32
	tail    uint32
}

// NewSQ creates a submission queue with the given number of slots.
// Size must be >= 2.
func NewSQ(size int) *SQ {
	if size < 2 {
		panic("nvme: SQ size must be >= 2")
	}
	return &SQ{entries: make([]Command, size)}
}

// Len reports queued entries.
func (q *SQ) Len() int { return int(q.tail - q.head) }

// Cap reports usable capacity (one slot is sacrificed to disambiguate
// full/empty, as in real ring protocols).
func (q *SQ) Cap() int { return len(q.entries) - 1 }

// Push enqueues a command.
func (q *SQ) Push(c Command) error {
	if q.Len() >= q.Cap() {
		return ErrQueueFull
	}
	q.entries[q.tail%uint32(len(q.entries))] = c
	q.tail++
	return nil
}

// Pop dequeues the oldest command (the device's fetch).
func (q *SQ) Pop() (Command, error) {
	if q.Len() == 0 {
		return Command{}, ErrQueueEmpty
	}
	c := q.entries[q.head%uint32(len(q.entries))]
	q.head++
	return c, nil
}

// CQ is a completion ring.
type CQ struct {
	entries []Completion
	head    uint32
	tail    uint32
}

// NewCQ creates a completion queue with the given number of slots.
func NewCQ(size int) *CQ {
	if size < 2 {
		panic("nvme: CQ size must be >= 2")
	}
	return &CQ{entries: make([]Completion, size)}
}

// Len reports queued entries.
func (q *CQ) Len() int { return int(q.tail - q.head) }

// Cap reports usable capacity.
func (q *CQ) Cap() int { return len(q.entries) - 1 }

// Push posts a completion.
func (q *CQ) Push(c Completion) error {
	if q.Len() >= q.Cap() {
		return ErrQueueFull
	}
	q.entries[q.tail%uint32(len(q.entries))] = c
	q.tail++
	return nil
}

// Pop reaps the oldest completion.
func (q *CQ) Pop() (Completion, error) {
	if q.Len() == 0 {
		return Completion{}, ErrQueueEmpty
	}
	c := q.entries[q.head%uint32(len(q.entries))]
	q.head++
	return c, nil
}

// Costs models the fixed transport overheads on the command path.
type Costs struct {
	Doorbell   sim.Time // host MMIO doorbell write
	Fetch      sim.Time // device SQ entry fetch over PCIe
	Completion sim.Time // CQ post + interrupt/polling pickup
}

// DefaultCosts reflects measured NVMe small-command overheads.
func DefaultCosts() Costs {
	return Costs{
		Doorbell:   100 * sim.Nanosecond,
		Fetch:      400 * sim.Nanosecond,
		Completion: 1 * sim.Microsecond,
	}
}

// Total is the fixed per-command transport cost.
func (c Costs) Total() sim.Time { return c.Doorbell + c.Fetch + c.Completion }

// Device is the controller side: it executes one fetched command and
// returns its completion. now is the time the device begins executing.
type Device interface {
	Execute(now sim.Time, cmd *Command) Completion
}

// Driver is the host-side queue pair bound to a device. Submit is
// synchronous: it pushes, rings the doorbell, lets the device fetch and
// execute, and reaps the completion, accumulating the transport costs on
// the returned timestamp.
type Driver struct {
	sq    *SQ
	cq    *CQ
	dev   Device
	costs Costs

	nextID    uint16
	submitted uint64
	completed uint64
	tr        telemetry.Tracer
	sa        *telemetry.StageAccount
	ringRes   *resource.Timeline // ring-protocol occupancy (nil = off)
}

// NewDriver builds a queue pair of the given depth over a device.
func NewDriver(dev Device, queueDepth int, costs Costs) *Driver {
	return &Driver{
		sq:    NewSQ(queueDepth),
		cq:    NewCQ(queueDepth),
		dev:   dev,
		costs: costs,
		tr:    telemetry.Nop(),
	}
}

// SetTracer installs a tracer; each submitted command becomes one span on
// the nvme track, covering doorbell to completion reap.
func (d *Driver) SetTracer(tr telemetry.Tracer) { d.tr = telemetry.OrNop(tr) }

// SetStages installs the per-request stage account; the driver attributes
// the ring-protocol costs (doorbell, fetch, completion).
func (d *Driver) SetStages(sa *telemetry.StageAccount) { d.sa = sa }

// SetRingTimeline records the ring protocol's occupancy windows on a
// resource timeline (nil turns recording off).
func (d *Driver) SetRingTimeline(tl *resource.Timeline) { d.ringRes = tl }

// Stats reports commands submitted and completed.
func (d *Driver) Stats() (submitted, completed uint64) {
	return d.submitted, d.completed
}

// Submit runs one command to completion in virtual time.
func (d *Driver) Submit(now sim.Time, cmd Command) (Completion, error) {
	cmd.ID = d.nextID
	d.nextID++
	if err := d.sq.Push(cmd); err != nil {
		return Completion{}, err
	}
	d.submitted++

	fetchAt := now + d.costs.Doorbell + d.costs.Fetch
	d.sa.Mark(telemetry.StageRing, fetchAt)
	d.ringRes.Add(now, fetchAt)
	fetched, err := d.sq.Pop()
	if err != nil {
		return Completion{}, fmt.Errorf("nvme: device fetch: %w", err)
	}
	comp := d.dev.Execute(fetchAt, &fetched)
	comp.ID = fetched.ID
	execDone := comp.Done
	comp.Done += d.costs.Completion
	d.sa.Mark(telemetry.StageRing, comp.Done)
	d.ringRes.Add(execDone, comp.Done)
	if err := d.cq.Push(comp); err != nil {
		return Completion{}, fmt.Errorf("nvme: completion post: %w", err)
	}
	reaped, err := d.cq.Pop()
	if err != nil {
		return Completion{}, fmt.Errorf("nvme: completion reap: %w", err)
	}
	d.completed++
	if d.tr.Enabled() {
		d.tr.Span(telemetry.TrackNVMe, fetched.Op.String(), now, reaped.Done)
	}
	return reaped, nil
}
