// Package nvme models the transport between host and SSD: submission and
// completion queue rings with doorbells, the command set the simulator needs
// (block read/write, flush, dataset-management TRIM), and the vendor
// extension the paper adds for fine-grained reads (§4.1: "We also extend the
// NVMe command set to support fine-grained reads").
//
// Queues are real rings with wrap-around and full/empty detection; the
// driver's Submit is synchronous in virtual time (the paper's workloads are
// blocking POSIX reads), with queueing costs modeled explicitly.
package nvme

import (
	"errors"
	"fmt"

	"pipette/internal/resource"
	"pipette/internal/sim"
	"pipette/internal/telemetry"
)

// Opcode identifies a command.
type Opcode uint8

// The command set. OpFineRead is the paper's vendor extension: the device
// reads the referenced NAND pages, digests pending Info Area records, and
// DMAs only the demanded byte ranges to their host destinations.
const (
	OpFlush Opcode = iota
	OpWrite
	OpRead
	OpTrim
	OpFineRead
)

// String names the opcode.
func (o Opcode) String() string {
	switch o {
	case OpFlush:
		return "Flush"
	case OpWrite:
		return "Write"
	case OpRead:
		return "Read"
	case OpTrim:
		return "Trim"
	case OpFineRead:
		return "FineRead"
	default:
		return fmt.Sprintf("Opcode(%d)", uint8(o))
	}
}

// Status is a completion status code.
type Status uint8

// Completion statuses.
const (
	StatusOK Status = iota
	StatusInvalidCommand
	StatusLBAOutOfRange
	StatusUnmapped
	StatusInternal
	// StatusMediaError: the ECC engine exhausted its read-retry budget;
	// the page's data is unrecoverable from the media.
	StatusMediaError
	// StatusCorruptRing: the device rejected a corrupted Info-Area ring
	// record for a fine read. The host re-serves the request through the
	// block path.
	StatusCorruptRing
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusInvalidCommand:
		return "InvalidCommand"
	case StatusLBAOutOfRange:
		return "LBAOutOfRange"
	case StatusUnmapped:
		return "Unmapped"
	case StatusInternal:
		return "Internal"
	case StatusMediaError:
		return "MediaError"
	case StatusCorruptRing:
		return "CorruptRing"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// ErrUncorrectable is the host-visible form of StatusMediaError. The block
// layer wraps it into its command errors, so the layers above — VFS, KV —
// can classify device data loss with errors.Is.
var ErrUncorrectable = errors.New("nvme: uncorrectable media error")

// Err converts a failed status into a stable error (nil for StatusOK).
// Sentinel-worthy statuses map to package-level errors; the rest render
// generically.
func (s Status) Err() error {
	switch s {
	case StatusOK:
		return nil
	case StatusMediaError:
		return ErrUncorrectable
	default:
		return fmt.Errorf("nvme: status %v", s)
	}
}

// Command is one submission-queue entry.
type Command struct {
	ID    uint16
	Op    Opcode
	LBA   uint64 // starting logical page
	Pages int    // page count for Read/Write/Trim

	// Data is the host buffer: the write payload for OpWrite, and the
	// destination the device DMAs into for OpRead (len = Pages*pagesize).
	Data []byte

	// FineLBAs lists the logical pages an OpFineRead touches. The byte
	// ranges and destinations travel out-of-band in the HMB Info Area, as
	// in the paper's design.
	FineLBAs []uint64
}

// Completion is one completion-queue entry.
type Completion struct {
	ID     uint16
	Status Status
	Done   sim.Time // virtual completion timestamp

	// BytesMoved is device->host traffic this command caused (telemetry
	// the traffic tables are built from).
	BytesMoved uint64

	// PayloadSum is the device-side checksum of a fine read's extracted
	// payload, computed before the DMA lands it in the HMB. Only filled
	// when fault injection is enabled; the host recomputes it over the
	// received bytes to detect in-flight DMA corruption.
	PayloadSum uint32
}

// Ok reports whether the command succeeded.
func (c Completion) Ok() bool { return c.Status == StatusOK }

// Queue errors.
var (
	ErrQueueFull  = errors.New("nvme: queue full")
	ErrQueueEmpty = errors.New("nvme: queue empty")
)

// SQ is a submission ring.
type SQ struct {
	entries []Command
	head    uint32
	tail    uint32
}

// NewSQ creates a submission queue with the given number of slots.
// Size must be >= 2.
func NewSQ(size int) *SQ {
	if size < 2 {
		panic("nvme: SQ size must be >= 2")
	}
	return &SQ{entries: make([]Command, size)}
}

// Len reports queued entries.
func (q *SQ) Len() int { return int(q.tail - q.head) }

// Cap reports usable capacity (one slot is sacrificed to disambiguate
// full/empty, as in real ring protocols).
func (q *SQ) Cap() int { return len(q.entries) - 1 }

// normalize reduces both counters by the largest multiple of the ring
// size at or below head. Slot indices (counter % size) and Len
// (tail - head) are unchanged, and head lands below size, so the
// free-running counters never reach the uint32 overflow — where a size
// that does not divide 2^32 would corrupt the slot sequence.
func (q *SQ) normalize() {
	n := uint32(len(q.entries))
	if q.head >= n {
		k := q.head - q.head%n
		q.head -= k
		q.tail -= k
	}
}

// Push enqueues a command.
func (q *SQ) Push(c Command) error {
	if q.Len() >= q.Cap() {
		return ErrQueueFull
	}
	q.normalize()
	q.entries[q.tail%uint32(len(q.entries))] = c
	q.tail++
	return nil
}

// Pop dequeues the oldest command (the device's fetch).
func (q *SQ) Pop() (Command, error) {
	if q.Len() == 0 {
		return Command{}, ErrQueueEmpty
	}
	q.normalize()
	c := q.entries[q.head%uint32(len(q.entries))]
	q.head++
	return c, nil
}

// CQ is a completion ring.
type CQ struct {
	entries []Completion
	head    uint32
	tail    uint32
}

// NewCQ creates a completion queue with the given number of slots.
func NewCQ(size int) *CQ {
	if size < 2 {
		panic("nvme: CQ size must be >= 2")
	}
	return &CQ{entries: make([]Completion, size)}
}

// Len reports queued entries.
func (q *CQ) Len() int { return int(q.tail - q.head) }

// Cap reports usable capacity.
func (q *CQ) Cap() int { return len(q.entries) - 1 }

// normalize: see SQ.normalize.
func (q *CQ) normalize() {
	n := uint32(len(q.entries))
	if q.head >= n {
		k := q.head - q.head%n
		q.head -= k
		q.tail -= k
	}
}

// Push posts a completion.
func (q *CQ) Push(c Completion) error {
	if q.Len() >= q.Cap() {
		return ErrQueueFull
	}
	q.normalize()
	q.entries[q.tail%uint32(len(q.entries))] = c
	q.tail++
	return nil
}

// Pop reaps the oldest completion.
func (q *CQ) Pop() (Completion, error) {
	if q.Len() == 0 {
		return Completion{}, ErrQueueEmpty
	}
	q.normalize()
	c := q.entries[q.head%uint32(len(q.entries))]
	q.head++
	return c, nil
}

// Costs models the fixed transport overheads on the command path.
type Costs struct {
	Doorbell   sim.Time // host MMIO doorbell write
	Fetch      sim.Time // device SQ entry fetch over PCIe
	Completion sim.Time // CQ post + interrupt/polling pickup

	// Arbitration, when positive, turns on serialized SQ-fetch arbitration:
	// the controller's single fetch engine round-robins over the submission
	// queues, occupying it for Fetch+Arbitration per command, so concurrent
	// submissions queue behind each other before execution even starts.
	// Zero (the default) models infinite fetch bandwidth — every fetch
	// completes Doorbell+Fetch after submission regardless of load, which
	// is the closed-loop model every existing experiment was calibrated on.
	Arbitration sim.Time
}

// DefaultCosts reflects measured NVMe small-command overheads.
func DefaultCosts() Costs {
	return Costs{
		Doorbell:   100 * sim.Nanosecond,
		Fetch:      400 * sim.Nanosecond,
		Completion: 1 * sim.Microsecond,
	}
}

// Total is the fixed per-command transport cost.
func (c Costs) Total() sim.Time {
	return c.Doorbell + c.Fetch + c.Arbitration + c.Completion
}

// Device is the controller side: it executes one fetched command and
// returns its completion. now is the time the device begins executing.
type Device interface {
	Execute(now sim.Time, cmd *Command) Completion
}

// queuePair is one SQ/CQ pair of a multi-queue transport.
type queuePair struct {
	sq *SQ
	cq *CQ
}

// inflight is the per-command state of one asynchronously submitted
// command. Instances are pooled on a free list with their event callbacks
// pre-bound, so the steady-state submit path allocates nothing.
type inflight struct {
	m        *MultiQueue
	pair     *queuePair
	submitAt sim.Time
	fetchEnd sim.Time
	op       Opcode
	comp     Completion
	complete func(Completion)

	fetchFn func(sim.Time)
	reapFn  func(sim.Time)
	next    *inflight
}

// ResRing is the blame label for completion-side ring time, matching the
// "nvme.ring" resource timeline name. Fetch-side time is blamed on the
// specific SQ pair ("nvme.sq<N>") instead, so arbitration stalls point at
// the queue that suffered them.
const ResRing = "nvme.ring"

// MultiQueue is the asynchronous host↔device transport: N SQ/CQ pairs of
// configurable depth over one device, driven by a discrete-event engine.
// Submit pushes the command on the next pair round-robin and returns
// immediately (ErrQueueFull when that pair's ring is at capacity — the
// transport's backpressure signal); the fetch, execution, and completion
// happen as events, and the caller's callback fires at the completion's
// virtual timestamp. With Costs.Arbitration > 0 a shared fetch-engine
// resource serializes SQ fetches, so deep queues see real arbitration
// delay before execution even begins.
//
// Event callbacks use the timestamps captured at scheduling, so results
// are independent of how the engine interleaves unrelated chains; ordering
// at equal times follows submission order through the engine's (time, seq)
// tiebreak. Like every sim type, a MultiQueue belongs to one
// single-threaded simulated system.
type MultiQueue struct {
	pairs []queuePair
	dev   Device
	costs Costs
	eng   *sim.Engine

	fetchArb sim.Resource // shared fetch engine (used when Arbitration > 0)

	nextID    uint16
	rr        int // round-robin pair cursor
	submitted uint64
	completed uint64
	inFlight  int
	err       error

	tr       telemetry.Tracer
	sa       *telemetry.StageAccount
	ringRes  *resource.Timeline // ring-protocol occupancy (nil = off)
	sqLabels []string           // interned per-pair blame labels ("nvme.sq0", ...)

	free *inflight
}

// NewMultiQueue builds pairs SQ/CQ pairs of the given depth over dev,
// scheduling on eng.
func NewMultiQueue(dev Device, pairs, depth int, costs Costs, eng *sim.Engine) *MultiQueue {
	if pairs < 1 {
		pairs = 1
	}
	m := &MultiQueue{
		pairs: make([]queuePair, pairs),
		dev:   dev,
		costs: costs,
		eng:   eng,
		tr:    telemetry.Nop(),
	}
	m.sqLabels = make([]string, pairs)
	for i := range m.pairs {
		m.pairs[i] = queuePair{sq: NewSQ(depth), cq: NewCQ(depth)}
		m.sqLabels[i] = fmt.Sprintf("nvme.sq%d", i)
	}
	return m
}

// Pairs reports the number of SQ/CQ pairs.
func (m *MultiQueue) Pairs() int { return len(m.pairs) }

// Depth reports the usable per-pair queue depth.
func (m *MultiQueue) Depth() int { return m.pairs[0].sq.Cap() }

// InFlight reports commands submitted but not yet completed.
func (m *MultiQueue) InFlight() int { return m.inFlight }

// SetTracer installs a tracer; each submitted command becomes one span on
// the nvme track, covering doorbell to completion reap.
func (m *MultiQueue) SetTracer(tr telemetry.Tracer) { m.tr = telemetry.OrNop(tr) }

// SetStages installs the per-request stage account; the transport
// attributes the ring-protocol costs (doorbell, fetch, completion).
func (m *MultiQueue) SetStages(sa *telemetry.StageAccount) { m.sa = sa }

// SetRingTimeline records the ring protocol's occupancy windows on a
// resource timeline (nil turns recording off).
func (m *MultiQueue) SetRingTimeline(tl *resource.Timeline) { m.ringRes = tl }

// Stats reports commands submitted and completed.
func (m *MultiQueue) Stats() (submitted, completed uint64) {
	return m.submitted, m.completed
}

// Err reports the first ring-protocol failure observed on the event path
// (nil in any healthy run; a non-nil value means a callback could not
// surface an error to its submitter).
func (m *MultiQueue) Err() error { return m.err }

func (m *MultiQueue) fail(err error) {
	if m.err == nil {
		m.err = err
	}
}

func (m *MultiQueue) get() *inflight {
	ic := m.free
	if ic == nil {
		ic = &inflight{m: m}
		ic.fetchFn = func(sim.Time) { ic.m.fetch(ic) }
		ic.reapFn = func(sim.Time) { ic.m.reap(ic) }
	} else {
		m.free = ic.next
		ic.next = nil
	}
	return ic
}

func (m *MultiQueue) put(ic *inflight) {
	ic.pair = nil
	ic.complete = nil
	ic.comp = Completion{}
	ic.next = m.free
	m.free = ic
}

// Submit enqueues one command on the next pair round-robin. complete fires
// when the completion is reaped, carrying the completion with its virtual
// Done timestamp; commands submitted while that pair's SQ is at capacity
// are rejected with ErrQueueFull (the caller's backpressure signal).
// Events run when the engine does — callers drive eng.Run or Step.
func (m *MultiQueue) Submit(now sim.Time, cmd Command, complete func(Completion)) error {
	pairIdx := m.rr
	pair := &m.pairs[pairIdx]
	cmd.ID = m.nextID
	if err := pair.sq.Push(cmd); err != nil {
		return err
	}
	m.nextID++
	m.rr = (m.rr + 1) % len(m.pairs)
	m.submitted++
	m.inFlight++

	// Doorbell, then the SQ fetch. With arbitration on, the shared fetch
	// engine serializes fetches (FIFO in submit order); otherwise the fetch
	// completes a fixed Doorbell+Fetch after submission, load-independent.
	var fetchEnd sim.Time
	if m.costs.Arbitration > 0 {
		_, fetchEnd = m.fetchArb.Acquire(now+m.costs.Doorbell, m.costs.Fetch+m.costs.Arbitration)
	} else {
		fetchEnd = now + m.costs.Doorbell + m.costs.Fetch
	}
	m.sa.MarkRes(telemetry.StageRing, fetchEnd, m.sqLabels[pairIdx])
	m.ringRes.Add(now, fetchEnd)

	ic := m.get()
	ic.pair = pair
	ic.submitAt = now
	ic.fetchEnd = fetchEnd
	ic.complete = complete
	m.eng.At(fetchEnd, ic.fetchFn)
	return nil
}

// fetch is the device-side SQ fetch event: pop the entry, execute it, and
// schedule the completion.
func (m *MultiQueue) fetch(ic *inflight) {
	fetched, err := ic.pair.sq.Pop()
	if err != nil {
		m.fail(fmt.Errorf("nvme: device fetch: %w", err))
		m.inFlight--
		m.put(ic)
		return
	}
	ic.op = fetched.Op
	comp := m.dev.Execute(ic.fetchEnd, &fetched)
	comp.ID = fetched.ID
	execDone := comp.Done
	comp.Done += m.costs.Completion
	m.sa.MarkRes(telemetry.StageRing, comp.Done, ResRing)
	m.ringRes.Add(execDone, comp.Done)
	ic.comp = comp
	m.eng.At(comp.Done, ic.reapFn)
}

// reap is the host-side completion event: post to the CQ, reap it, and
// fire the submitter's callback.
func (m *MultiQueue) reap(ic *inflight) {
	if err := ic.pair.cq.Push(ic.comp); err != nil {
		m.fail(fmt.Errorf("nvme: completion post: %w", err))
		m.inFlight--
		m.put(ic)
		return
	}
	reaped, err := ic.pair.cq.Pop()
	if err != nil {
		m.fail(fmt.Errorf("nvme: completion reap: %w", err))
		m.inFlight--
		m.put(ic)
		return
	}
	m.completed++
	m.inFlight--
	if m.tr.Enabled() {
		m.tr.Span(telemetry.TrackNVMe, ic.op.String(), ic.submitAt, reaped.Done)
	}
	cb := ic.complete
	m.put(ic)
	cb(reaped)
}

// Driver is the synchronous host-side view of the transport that the
// blocking POSIX stack submits through: a MultiQueue over a private event
// engine that Submit drains before returning, so one command runs to
// completion in virtual time per call. Contended state (the fetch
// arbiter, and everything inside the device) persists across calls, so
// callers that submit at overlapping virtual times still see queueing —
// that is how the open-loop harness models outstanding requests over a
// synchronous stack.
type Driver struct {
	mq  *MultiQueue
	eng *sim.Engine
}

// NewDriver builds a single queue pair of the given depth over a device.
func NewDriver(dev Device, queueDepth int, costs Costs) *Driver {
	return NewDriverQueues(dev, 1, queueDepth, costs)
}

// NewDriverQueues builds a driver over pairs SQ/CQ pairs of the given
// depth; submissions round-robin across the pairs.
func NewDriverQueues(dev Device, pairs, queueDepth int, costs Costs) *Driver {
	eng := sim.NewEngine()
	return &Driver{mq: NewMultiQueue(dev, pairs, queueDepth, costs, eng), eng: eng}
}

// Queues exposes the underlying multi-queue transport.
func (d *Driver) Queues() *MultiQueue { return d.mq }

// SetTracer installs a tracer; each submitted command becomes one span on
// the nvme track, covering doorbell to completion reap.
func (d *Driver) SetTracer(tr telemetry.Tracer) { d.mq.SetTracer(tr) }

// SetStages installs the per-request stage account; the driver attributes
// the ring-protocol costs (doorbell, fetch, completion).
func (d *Driver) SetStages(sa *telemetry.StageAccount) { d.mq.SetStages(sa) }

// SetRingTimeline records the ring protocol's occupancy windows on a
// resource timeline (nil turns recording off).
func (d *Driver) SetRingTimeline(tl *resource.Timeline) { d.mq.SetRingTimeline(tl) }

// Stats reports commands submitted and completed.
func (d *Driver) Stats() (submitted, completed uint64) { return d.mq.Stats() }

// Submit runs one command to completion in virtual time.
func (d *Driver) Submit(now sim.Time, cmd Command) (Completion, error) {
	var out Completion
	done := false
	if err := d.mq.Submit(now, cmd, func(c Completion) {
		out = c
		done = true
	}); err != nil {
		return Completion{}, err
	}
	d.eng.Run()
	if err := d.mq.Err(); err != nil {
		return Completion{}, err
	}
	if !done {
		return Completion{}, errors.New("nvme: command never completed")
	}
	return out, nil
}
