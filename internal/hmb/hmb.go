// Package hmb models the Host Memory Buffer: host DRAM that the host lends
// to the SSD controller at initialization, with a standing DMA mapping so
// neither side pays a per-access mapping cost afterwards (the key advantage
// Pipette has over 2B-SSD's CMB approach, §3.1.1).
//
// The region is partitioned exactly as the paper's Figure 3 shows:
//
//   - Info Area — a ring of records jointly managed by host and device.
//     The host appends a record (destination address, byte offset, byte
//     length) for each outstanding fine-grained read and bumps the tail;
//     the device consumes records while serving the reconstructed read and
//     bumps the head.
//   - Data Area — the arena the fine-grained read cache's slab allocator
//     carves up; the device DMAs demanded byte ranges directly into it.
//   - TempBuf Area — a rotating bounce buffer for low-reuse data that the
//     adaptive cache declines to admit, so cold data never pollutes the
//     Data Area.
package hmb

import (
	"errors"
	"fmt"

	"pipette/internal/fault"
	"pipette/internal/sim"
)

// InfoRecord is one Info Area entry, written by the host's Constructor and
// consumed by the device's Fine-Grained Read Engine.
type InfoRecord struct {
	LBA     uint64 // logical page holding the data
	ByteOff int    // offset of the demanded range within the page
	ByteLen int    // length of the demanded range
	Dest    int    // destination offset within the HMB region

	// Sum seals the record against corruption while it sits in shared
	// host memory. Push fills it; Consume verifies it.
	Sum uint32
}

// recSum is the integrity checksum over a record's payload fields.
func recSum(rec InfoRecord) uint32 {
	h := sim.Mix64(rec.LBA)
	h = sim.Mix64(h ^ uint64(uint32(rec.ByteOff)))
	h = sim.Mix64(h ^ uint64(uint32(rec.ByteLen)))
	h = sim.Mix64(h ^ uint64(uint32(rec.Dest)))
	return uint32(h ^ h>>32)
}

// Ring errors.
var (
	ErrRingFull  = errors.New("hmb: info ring full")
	ErrRingEmpty = errors.New("hmb: info ring empty")
	// ErrCorruptRecord reports a consumed record whose checksum does not
	// cover its fields anymore. The head still advances past it — the
	// device must not wedge the ring on one bad entry — and the caller
	// re-serves the request through the block path.
	ErrCorruptRecord = errors.New("hmb: corrupt info record")
)

// InfoRing is the Info Area: a bounded ring with a host-owned tail and a
// device-owned head.
type InfoRing struct {
	records []InfoRecord
	head    uint32 // device-advanced: consumed
	tail    uint32 // host-advanced: produced

	inj *fault.Injector
}

// SetInjector arms hmb.ring fault injection: records may corrupt between
// the host's append and the device's consume.
func (r *InfoRing) SetInjector(inj *fault.Injector) { r.inj = inj }

// corrupt flips one bit of one payload field, both selected by the
// injection severity draw.
func corrupt(rec *InfoRecord, sev float64) {
	bit := uint(sev*64) % 64
	switch uint(sev*251) % 4 {
	case 0:
		rec.LBA ^= 1 << bit
	case 1:
		rec.ByteOff ^= 1 << (bit % 30)
	case 2:
		rec.ByteLen ^= 1 << (bit % 30)
	default:
		rec.Dest ^= 1 << (bit % 30)
	}
}

// NewInfoRing creates a ring with the given number of record slots.
func NewInfoRing(slots int) *InfoRing {
	if slots < 2 {
		panic("hmb: info ring needs >= 2 slots")
	}
	return &InfoRing{records: make([]InfoRecord, slots)}
}

// Pending reports records produced but not yet consumed.
func (r *InfoRing) Pending() int { return int(r.tail - r.head) }

// Cap reports usable capacity.
func (r *InfoRing) Cap() int { return len(r.records) - 1 }

// Push appends a record and advances the tail (host side, Figure 4 step 3a).
// The record is sealed with its checksum; under fault injection it may then
// corrupt in place, modeling a flipped bit while the entry sits in shared
// host memory.
func (r *InfoRing) Push(rec InfoRecord) error {
	if r.Pending() >= r.Cap() {
		return ErrRingFull
	}
	rec.Sum = recSum(rec)
	if out := r.inj.Check(fault.SiteHMBRing, rec.LBA); out.Hit {
		corrupt(&rec, out.Sev)
	}
	r.records[r.tail%uint32(len(r.records))] = rec
	r.tail++
	return nil
}

// Consume removes the oldest record and advances the head (device side,
// Figure 4 step 3b). A record that fails its checksum is still consumed —
// the ring must not wedge — and returned alongside ErrCorruptRecord.
func (r *InfoRing) Consume() (InfoRecord, error) {
	if r.Pending() == 0 {
		return InfoRecord{}, ErrRingEmpty
	}
	rec := r.records[r.head%uint32(len(r.records))]
	r.head++
	if rec.Sum != recSum(rec) {
		return rec, ErrCorruptRecord
	}
	return rec, nil
}

// Head reports the device-advanced consume counter (the host reads this to
// learn which requests completed).
func (r *InfoRing) Head() uint32 { return r.head }

// Config sizes the HMB region.
type Config struct {
	DataBytes    int // Data Area size (slab arena)
	TempBufBytes int // TempBuf Area size
	TempSlot     int // max bytes of one temp transfer (>= largest fine read)
	InfoSlots    int // Info Area ring capacity
}

// DefaultConfig sizes a region matching the paper's 64 MB HMB mapping
// region (Figure 5), mostly Data Area.
func DefaultConfig() Config {
	return Config{
		DataBytes:    60 << 20,
		TempBufBytes: 1 << 20,
		TempSlot:     4096,
		InfoSlots:    1024,
	}
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	switch {
	case c.DataBytes <= 0:
		return errors.New("hmb: DataBytes must be positive")
	case c.TempSlot <= 0:
		return errors.New("hmb: TempSlot must be positive")
	case c.TempBufBytes < c.TempSlot:
		return fmt.Errorf("hmb: TempBufBytes %d < TempSlot %d", c.TempBufBytes, c.TempSlot)
	case c.InfoSlots < 2:
		return errors.New("hmb: InfoSlots must be >= 2")
	}
	return nil
}

// Region is the shared memory block. Offsets are region-relative; the Data
// Area starts at offset 0 and the TempBuf Area follows it.
type Region struct {
	cfg  Config
	buf  []byte
	info *InfoRing

	tempBase int
	tempNext int // rotating allocation cursor within the TempBuf Area
}

// New allocates a region.
func New(cfg Config) (*Region, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Region{
		cfg:      cfg,
		buf:      make([]byte, cfg.DataBytes+cfg.TempBufBytes),
		info:     NewInfoRing(cfg.InfoSlots),
		tempBase: cfg.DataBytes,
	}, nil
}

// Config returns the sizing used.
func (r *Region) Config() Config { return r.cfg }

// Info returns the Info Area ring.
func (r *Region) Info() *InfoRing { return r.info }

// DataSize reports the Data Area size (the slab arena the cache manages).
func (r *Region) DataSize() int { return r.cfg.DataBytes }

// AllocTemp reserves a TempBuf destination of n bytes and returns its
// region offset. Slots rotate; data in a temp slot is only valid until the
// ring wraps, which is fine because the host copies it out immediately on
// completion (that is the point of the TempBuf: no residency).
func (r *Region) AllocTemp(n int) (int, error) {
	if n <= 0 || n > r.cfg.TempSlot {
		return 0, fmt.Errorf("hmb: temp alloc %d outside (0, %d]", n, r.cfg.TempSlot)
	}
	if r.tempNext+n > r.cfg.TempBufBytes {
		r.tempNext = 0
	}
	off := r.tempBase + r.tempNext
	r.tempNext += n
	return off, nil
}

// InTempArea reports whether a region offset falls inside the TempBuf Area.
func (r *Region) InTempArea(off int) bool {
	return off >= r.tempBase && off < len(r.buf)
}

// WriteAt copies data into the region at off — the device's DMA landing.
func (r *Region) WriteAt(off int, data []byte) error {
	if off < 0 || off+len(data) > len(r.buf) {
		return fmt.Errorf("hmb: write [%d,%d) outside region of %d", off, off+len(data), len(r.buf))
	}
	copy(r.buf[off:], data)
	return nil
}

// ReadAt copies len(buf) bytes from the region at off — the host's load.
func (r *Region) ReadAt(off int, buf []byte) error {
	if off < 0 || off+len(buf) > len(r.buf) {
		return fmt.Errorf("hmb: read [%d,%d) outside region of %d", off, off+len(buf), len(r.buf))
	}
	copy(buf, r.buf[off:])
	return nil
}

// Slice exposes a window of the region without copying (the slab-managed
// Data Area uses this for in-place item access).
func (r *Region) Slice(off, n int) ([]byte, error) {
	if off < 0 || off+n > len(r.buf) {
		return nil, fmt.Errorf("hmb: slice [%d,%d) outside region of %d", off, off+n, len(r.buf))
	}
	return r.buf[off : off+n : off+n], nil
}
