package hmb

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{DataBytes: 1 << 16, TempBufBytes: 4096, TempSlot: 512, InfoSlots: 8}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{DataBytes: 0, TempBufBytes: 10, TempSlot: 1, InfoSlots: 4},
		{DataBytes: 10, TempBufBytes: 10, TempSlot: 0, InfoSlots: 4},
		{DataBytes: 10, TempBufBytes: 4, TempSlot: 8, InfoSlots: 4},
		{DataBytes: 10, TempBufBytes: 10, TempSlot: 4, InfoSlots: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestInfoRingProtocol(t *testing.T) {
	r := NewInfoRing(4) // capacity 3
	if r.Cap() != 3 || r.Pending() != 0 {
		t.Fatalf("fresh ring cap=%d pending=%d", r.Cap(), r.Pending())
	}
	for i := 0; i < 3; i++ {
		if err := r.Push(InfoRecord{LBA: uint64(i), Dest: i * 128}); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := r.Push(InfoRecord{}); !errors.Is(err, ErrRingFull) {
		t.Fatalf("full push err = %v", err)
	}
	// Device consumes in order and advances the head.
	for i := 0; i < 3; i++ {
		rec, err := r.Consume()
		if err != nil {
			t.Fatalf("consume %d: %v", i, err)
		}
		if rec.LBA != uint64(i) || rec.Dest != i*128 {
			t.Fatalf("consume %d got %+v", i, rec)
		}
		if r.Head() != uint32(i+1) {
			t.Fatalf("head = %d after %d consumes", r.Head(), i+1)
		}
	}
	if _, err := r.Consume(); !errors.Is(err, ErrRingEmpty) {
		t.Fatalf("empty consume err = %v", err)
	}
}

func TestInfoRingWrapProperty(t *testing.T) {
	f := func(ops []bool) bool {
		r := NewInfoRing(4)
		var pushed, consumed uint64
		for _, isPush := range ops {
			if isPush {
				if r.Push(InfoRecord{LBA: pushed}) == nil {
					pushed++
				}
			} else if rec, err := r.Consume(); err == nil {
				if rec.LBA != consumed {
					return false
				}
				consumed++
			}
		}
		return consumed <= pushed && r.Pending() == int(pushed-consumed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionReadWrite(t *testing.T) {
	r, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("fine-grained")
	if err := r.WriteAt(100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := r.ReadAt(100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read != written")
	}
	// Out-of-range accesses are rejected.
	total := smallConfig().DataBytes + smallConfig().TempBufBytes
	if err := r.WriteAt(total-4, data); err == nil {
		t.Error("overrun write accepted")
	}
	if err := r.ReadAt(-1, got); err == nil {
		t.Error("negative read accepted")
	}
}

func TestRegionSlice(t *testing.T) {
	r, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Slice(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	copy(s, "hello")
	got := make([]byte, 5)
	if err := r.ReadAt(10, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("slice write not visible: %q", got)
	}
	// Full-capacity slice must be rejected only if it overruns.
	if _, err := r.Slice(0, smallConfig().DataBytes+smallConfig().TempBufBytes+1); err == nil {
		t.Error("overrun slice accepted")
	}
}

func TestAllocTempRotation(t *testing.T) {
	cfg := smallConfig()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	first, err := r.AllocTemp(512)
	if err != nil {
		t.Fatal(err)
	}
	if !r.InTempArea(first) {
		t.Fatalf("temp offset %d not in temp area", first)
	}
	if r.InTempArea(0) {
		t.Fatal("data-area offset classified as temp")
	}
	seen[first] = true
	wrapped := false
	for i := 0; i < 20; i++ {
		off, err := r.AllocTemp(512)
		if err != nil {
			t.Fatal(err)
		}
		if !r.InTempArea(off) {
			t.Fatalf("alloc %d outside temp area", off)
		}
		if off == first && i > 0 {
			wrapped = true
		}
		if off+512 > cfg.DataBytes+cfg.TempBufBytes {
			t.Fatalf("temp slot overruns region: %d", off)
		}
	}
	if !wrapped {
		t.Error("temp cursor never wrapped around a small area")
	}
	// Oversized and zero allocations rejected.
	if _, err := r.AllocTemp(cfg.TempSlot + 1); err == nil {
		t.Error("oversized temp alloc accepted")
	}
	if _, err := r.AllocTemp(0); err == nil {
		t.Error("zero temp alloc accepted")
	}
}

func TestDataSize(t *testing.T) {
	r, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.DataSize() != smallConfig().DataBytes {
		t.Fatalf("DataSize = %d", r.DataSize())
	}
	if r.Info() == nil || r.Info().Cap() != smallConfig().InfoSlots-1 {
		t.Fatal("info ring missizing")
	}
}
