package workload

import (
	"errors"
	"math"

	"pipette/internal/sim"
)

// SearchEngineConfig parameterizes the search-engine workload from the
// paper's motivation (§1 cites WiSER, FAST'20): query processing reads
// per-term metadata entries and posting lists from an inverted index on
// flash. Term-entry reads are tiny and fixed-size; posting-list reads are
// variable, mostly small (rare terms) with a heavy tail (frequent terms).
type SearchEngineConfig struct {
	Terms         uint64  // vocabulary size
	EntryBytes    int     // per-term metadata entry (offset/len/df)
	MeanPosting   int     // mean posting-list bytes
	MaxPosting    int     // posting-list cap
	TermsPerQuery int     // conjunctive terms per query
	Theta         float64 // query-term popularity skew
	Seed          uint64
}

// DefaultSearchEngineConfig returns a WiSER-flavoured index.
func DefaultSearchEngineConfig() SearchEngineConfig {
	return SearchEngineConfig{
		Terms:         1 << 20,
		EntryBytes:    16,
		MeanPosting:   512,
		MaxPosting:    16 << 10,
		TermsPerQuery: 3,
		Theta:         0.8,
		Seed:          0x5ea7c4,
	}
}

// SearchEngine lays the index out as a term-entry table followed by a
// postings region (prefix sums over deterministic Pareto-ish list sizes);
// each query emits one entry read plus one posting-list read per term.
type SearchEngine struct {
	cfg       SearchEngineConfig
	postBytes []uint32 // per-term posting-list size
	postOff   []uint64 // prefix sums into the postings region
	postBase  int64
	size      int64

	choose  *KeyChooser
	pending []Request // queued requests of the in-flight query
}

// NewSearchEngine builds the generator (index layout included).
func NewSearchEngine(cfg SearchEngineConfig) (*SearchEngine, error) {
	if cfg.Terms == 0 || cfg.EntryBytes <= 0 || cfg.MeanPosting <= 0 ||
		cfg.MaxPosting < cfg.MeanPosting || cfg.TermsPerQuery < 1 {
		return nil, errors.New("workload: bad search engine config")
	}
	s := &SearchEngine{cfg: cfg}
	choose, err := NewKeyChooser(sim.NewRNG(cfg.Seed), Zipfian, cfg.Terms, cfg.Theta)
	if err != nil {
		return nil, err
	}
	s.choose = choose

	s.postBytes = make([]uint32, cfg.Terms)
	s.postOff = make([]uint64, cfg.Terms+1)
	for i := uint64(0); i < cfg.Terms; i++ {
		s.postBytes[i] = postingSize(cfg.Seed, i, cfg.MeanPosting, cfg.MaxPosting)
		s.postOff[i+1] = s.postOff[i] + uint64(s.postBytes[i])
	}
	s.postBase = int64(cfg.Terms) * int64(cfg.EntryBytes)
	s.size = s.postBase + int64(s.postOff[cfg.Terms])
	return s, nil
}

// postingSize derives a term's posting-list size: log-uniform between a
// fraction of the mean and the cap, so most lists are short and a few are
// huge — the document-frequency distribution of real corpora.
func postingSize(seed, term uint64, mean, max int) uint32 {
	u := hashUnit01(seed ^ 0xdead ^ (term + 1))
	lo := math.Log(float64(mean) / 8)
	hi := math.Log(float64(max))
	v := math.Exp(lo + u*u*(hi-lo)) // u^2 biases toward short lists
	if v < 8 {
		v = 8
	}
	if v > float64(max) {
		v = float64(max)
	}
	return uint32(v)
}

// Name identifies the workload.
func (s *SearchEngine) Name() string { return "searchengine" }

// FileSize reports the index size.
func (s *SearchEngine) FileSize() int64 { return s.size }

// PostingBytes exposes a term's posting-list size (tests).
func (s *SearchEngine) PostingBytes(term uint64) int { return int(s.postBytes[term]) }

// Next emits the next request: queries are expanded into a sequence of
// term-entry reads and posting-list reads, drained one request at a time.
func (s *SearchEngine) Next() Request {
	if len(s.pending) == 0 {
		for t := 0; t < s.cfg.TermsPerQuery; t++ {
			term := s.choose.Next()
			s.pending = append(s.pending,
				Request{Off: int64(term) * int64(s.cfg.EntryBytes), Size: s.cfg.EntryBytes},
				Request{
					Off:  s.postBase + int64(s.postOff[term]),
					Size: int(s.postBytes[term]),
				})
		}
	}
	req := s.pending[0]
	s.pending = s.pending[1:]
	return req
}
