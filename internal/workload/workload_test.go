package workload

import (
	"testing"
	"testing/quick"
)

func TestMixesMatchTableOne(t *testing.T) {
	ms := Mixes(1<<30, 4096, Uniform, 1)
	if len(ms) != 5 {
		t.Fatalf("mixes = %d", len(ms))
	}
	wantRatio := map[string]float64{"A": 0, "B": 0.1, "C": 0.5, "D": 0.9, "E": 1}
	for _, m := range ms {
		if m.SmallRatio != wantRatio[m.Name] {
			t.Errorf("mix %s ratio %g", m.Name, m.SmallRatio)
		}
		if m.SmallSize != 128 || m.LargeSize != 4096 || m.Theta != 0.8 {
			t.Errorf("mix %s sizes/theta wrong: %+v", m.Name, m)
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := []SyntheticConfig{
		{FileSize: 100, PageSize: 4096},
		{FileSize: 1 << 20, PageSize: 4096, SmallRatio: 1.5, SmallSize: 128, LargeSize: 4096},
		{FileSize: 1 << 20, PageSize: 4096, SmallSize: 0, LargeSize: 4096},
		{FileSize: 1 << 20, PageSize: 4096, SmallSize: 128, LargeSize: 8192},
	}
	for i, c := range bad {
		if _, err := NewSynthetic(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSyntheticPageAlignedAndBounded(t *testing.T) {
	for _, dist := range []Dist{Uniform, Zipfian} {
		cfg := Mixes(16<<20, 4096, dist, 42)[2] // mix C
		g, err := NewSynthetic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		small, large := 0, 0
		for i := 0; i < 10000; i++ {
			r := g.Next()
			if r.Off%4096 != 0 {
				t.Fatalf("%v offset %d not page-aligned", dist, r.Off)
			}
			if r.Off < 0 || r.Off+int64(r.Size) > g.FileSize() {
				t.Fatalf("%v request [%d,+%d) out of file", dist, r.Off, r.Size)
			}
			if r.Write {
				t.Fatal("synthetic mixes are read-only")
			}
			if r.Size == 128 {
				small++
			} else if r.Size == 4096 {
				large++
			} else {
				t.Fatalf("unexpected size %d", r.Size)
			}
		}
		// Mix C: ~50/50.
		if small < 4500 || small > 5500 {
			t.Errorf("%v mix C small fraction %d/10000", dist, small)
		}
		_ = large
	}
}

func TestSyntheticZipfSkewed(t *testing.T) {
	cfg := Mixes(16<<20, 4096, Zipfian, 7)[4] // mix E
	g, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int64]int)
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[g.Next().Off]++
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	// Uniform over 4096 pages would give ~12 per offset; zipf's hottest
	// page must be far above that.
	if best < 100 {
		t.Fatalf("hottest offset drawn %d times; zipf skew missing", best)
	}
	// Uniform for contrast: should NOT concentrate.
	ucfg := Mixes(16<<20, 4096, Uniform, 7)[4]
	ug, _ := NewSynthetic(ucfg)
	ucounts := make(map[int64]int)
	for i := 0; i < draws; i++ {
		ucounts[ug.Next().Off]++
	}
	ubest := 0
	for _, c := range ucounts {
		if c > ubest {
			ubest = c
		}
	}
	if ubest > 60 {
		t.Fatalf("uniform hottest offset drawn %d times", ubest)
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	cfg := Mixes(1<<20, 4096, Zipfian, 99)[1]
	a, _ := NewSynthetic(cfg)
	b, _ := NewSynthetic(cfg)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestFixedSize(t *testing.T) {
	cfg := Mixes(1<<20, 4096, Uniform, 3)[4]
	g, _ := NewSynthetic(cfg)
	f := NewFixedSize(g, 2048)
	for i := 0; i < 1000; i++ {
		r := f.Next()
		if r.Size != 2048 {
			t.Fatalf("size %d", r.Size)
		}
		if r.Off+int64(r.Size) > f.FileSize() {
			t.Fatalf("request escapes file")
		}
	}
}

func TestRecommenderLayout(t *testing.T) {
	cfg := DefaultRecommenderConfig()
	cfg.TableBytes = 32 << 20
	cfg.Tables = 4
	r, err := NewRecommender(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.FileSize() > cfg.TableBytes || r.FileSize() < cfg.TableBytes/2 {
		t.Fatalf("FileSize = %d", r.FileSize())
	}
	vecs := r.TableVectors()
	if len(vecs) != 4 {
		t.Fatalf("tables = %d", len(vecs))
	}
	// Geometric size skew: first table strictly biggest.
	if vecs[0] <= vecs[3] {
		t.Fatalf("table sizes not skewed: %v", vecs)
	}
	for i := 0; i < 10000; i++ {
		req := r.Next()
		if req.Size != 128 || req.Write {
			t.Fatalf("req %+v", req)
		}
		if req.Off%128 != 0 {
			t.Fatalf("offset %d not vector-aligned", req.Off)
		}
		if req.Off < 0 || req.Off+128 > r.FileSize() {
			t.Fatalf("lookup out of file: %d", req.Off)
		}
	}
}

func TestRecommenderValidation(t *testing.T) {
	bad := DefaultRecommenderConfig()
	bad.VectorSize = 0
	if _, err := NewRecommender(bad); err == nil {
		t.Error("zero vector size accepted")
	}
	bad = DefaultRecommenderConfig()
	bad.TableBytes = 10
	if _, err := NewRecommender(bad); err == nil {
		t.Error("tables smaller than a vector accepted")
	}
}

func TestSocialGraphLayout(t *testing.T) {
	cfg := DefaultSocialGraphConfig()
	cfg.Nodes = 1 << 12
	g, err := NewSocialGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.FileSize() <= int64(cfg.Nodes)*int64(cfg.NodeBytes) {
		t.Fatal("file has no edge region")
	}
	reads, writes := 0, 0
	for i := 0; i < 20000; i++ {
		r := g.Next()
		if r.Off < 0 || r.Off+int64(r.Size) > g.FileSize() {
			t.Fatalf("request [%d,+%d) outside file %d", r.Off, r.Size, g.FileSize())
		}
		if r.Size <= 0 {
			t.Fatalf("empty request %+v", r)
		}
		if r.Write {
			writes++
		} else {
			reads++
		}
	}
	// LinkBench default mix is ~69% reads / ~31% writes.
	readFrac := float64(reads) / 20000
	if readFrac < 0.62 || readFrac > 0.76 {
		t.Fatalf("read fraction %.2f outside LinkBench mix", readFrac)
	}
}

func TestSocialGraphDegreesPowerLaw(t *testing.T) {
	cfg := DefaultSocialGraphConfig()
	cfg.Nodes = 1 << 14
	g, err := NewSocialGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ones, big := 0, 0
	for i := uint64(0); i < cfg.Nodes; i++ {
		d := g.Degree(i)
		if d < 1 || d > cfg.MaxDegree {
			t.Fatalf("degree %d out of range", d)
		}
		if d == 1 {
			ones++
		}
		if d >= 16 {
			big++
		}
	}
	// Pareto(alpha=2): most mass near 1, a real tail.
	if frac := float64(ones) / float64(cfg.Nodes); frac < 0.3 {
		t.Fatalf("degree-1 fraction %.2f too small for a power law", frac)
	}
	if big == 0 {
		t.Fatal("no high-degree nodes: tail missing")
	}
}

func TestSocialGraphValidation(t *testing.T) {
	bad := DefaultSocialGraphConfig()
	bad.Nodes = 0
	if _, err := NewSocialGraph(bad); err == nil {
		t.Error("zero nodes accepted")
	}
}

// Property: every generator's requests stay within its file for arbitrary
// seeds.
func TestGeneratorsInBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := Mixes(4<<20, 4096, Zipfian, seed)[3]
		g, err := NewSynthetic(cfg)
		if err != nil {
			return false
		}
		sg, err := NewSocialGraph(SocialGraphConfig{
			Nodes: 1 << 10, NodeBytes: 96, EdgeBytes: 12, MaxDegree: 64,
			Alpha: 2, Theta: 0.8, Seed: seed,
		})
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			if r := g.Next(); r.Off < 0 || r.Off+int64(r.Size) > g.FileSize() {
				return false
			}
			if r := sg.Next(); r.Off < 0 || r.Off+int64(r.Size) > sg.FileSize() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
