package workload

import (
	"testing"

	"pipette/internal/sim"
)

func TestStandardYCSBMixes(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"A", "B", "C", "D", "E", "F"} {
		cfg, err := StandardYCSB(name, 10_000, 1)
		if err != nil {
			t.Fatalf("StandardYCSB(%s): %v", name, err)
		}
		y, err := NewYCSB(cfg)
		if err != nil {
			t.Fatalf("NewYCSB(%s): %v", name, err)
		}
		counts := map[KVOp]int{}
		const n = 40_000
		for i := 0; i < n; i++ {
			req := y.Next()
			counts[req.Op]++
			if req.Op == OpScan {
				if req.ScanLen < 1 || req.ScanLen > cfg.MaxScanLen {
					t.Fatalf("%s: scan length %d outside [1,%d]", name, req.ScanLen, cfg.MaxScanLen)
				}
			}
			if req.Op != OpInsert && req.Key >= y.Records() {
				t.Fatalf("%s: key %d outside keyspace %d", name, req.Key, y.Records())
			}
		}
		check := func(op KVOp, pct float64) {
			got := 100 * float64(counts[op]) / n
			if got < pct-2 || got > pct+2 {
				t.Errorf("%s: %v fraction %.1f%%, want ~%.0f%%", name, op, got, pct)
			}
		}
		check(OpRead, cfg.ReadPct)
		check(OpUpdate, cfg.UpdatePct)
		check(OpInsert, cfg.InsertPct)
		check(OpScan, cfg.ScanPct)
		check(OpRMW, cfg.RMWPct)
	}
}

func TestYCSBDeterministic(t *testing.T) {
	t.Parallel()
	cfg, _ := StandardYCSB("A", 5_000, 0xfeed)
	a, _ := NewYCSB(cfg)
	b, _ := NewYCSB(cfg)
	for i := 0; i < 10_000; i++ {
		if ra, rb := a.Next(), b.Next(); ra != rb {
			t.Fatalf("request %d diverges: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestYCSBInsertsGrowKeyspace(t *testing.T) {
	t.Parallel()
	cfg, _ := StandardYCSB("D", 1_000, 7)
	y, _ := NewYCSB(cfg)
	inserted := uint64(0)
	for i := 0; i < 20_000; i++ {
		req := y.Next()
		if req.Op == OpInsert {
			if req.Key != cfg.Records+inserted {
				t.Fatalf("insert %d got key %d, want dense %d", inserted, req.Key, cfg.Records+inserted)
			}
			inserted++
		}
	}
	if inserted == 0 {
		t.Fatal("workload D produced no inserts")
	}
	if y.Records() != cfg.Records+inserted {
		t.Fatalf("Records() = %d, want %d", y.Records(), cfg.Records+inserted)
	}
}

// TestYCSBLatestSkew checks workload D reads concentrate near the newest
// keys — the "latest" distribution.
func TestYCSBLatestSkew(t *testing.T) {
	t.Parallel()
	cfg, _ := StandardYCSB("D", 100_000, 3)
	y, _ := NewYCSB(cfg)
	recent := 0
	reads := 0
	for i := 0; i < 50_000; i++ {
		req := y.Next()
		if req.Op != OpRead {
			continue
		}
		reads++
		if req.Key+cfg.Records/10 >= y.Records() {
			recent++ // within the newest 10% of the keyspace
		}
	}
	if frac := float64(recent) / float64(reads); frac < 0.5 {
		t.Fatalf("only %.0f%% of reads hit the newest 10%% of keys, want majority", frac*100)
	}
}

func TestYCSBRejectsBadConfig(t *testing.T) {
	t.Parallel()
	if _, err := StandardYCSB("Z", 10, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := NewYCSB(YCSBConfig{Records: 10, ReadPct: 50}); err == nil {
		t.Fatal("mix not summing to 100 accepted")
	}
	if _, err := NewYCSB(YCSBConfig{ReadPct: 100}); err == nil {
		t.Fatal("zero records accepted")
	}
}

// TestKeyChooserMatchesHistoricalStreams pins the refactor: the shared
// KeyChooser must reproduce the exact draw sequences the generators
// produced when they hand-rolled uniform and scrambled-zipf selection.
func TestKeyChooserMatchesHistoricalStreams(t *testing.T) {
	t.Parallel()
	const n, theta, seed = 1 << 16, 0.8, uint64(0xbead)

	z, err := sim.NewScrambledZipf(sim.NewRNG(seed), n, theta)
	if err != nil {
		t.Fatal(err)
	}
	kc, err := NewKeyChooser(sim.NewRNG(seed), Zipfian, n, theta)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		if want, got := z.Next(), kc.Next(); want != got {
			t.Fatalf("zipfian draw %d: %d != %d", i, got, want)
		}
	}

	rng := sim.NewRNG(seed)
	ku, err := NewKeyChooser(sim.NewRNG(seed), Uniform, n, theta)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		if want, got := rng.Uint64n(n), ku.Next(); want != got {
			t.Fatalf("uniform draw %d: %d != %d", i, got, want)
		}
	}
}
