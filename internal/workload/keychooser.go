package workload

import "pipette/internal/sim"

// KeyChooser is the one shared key/index selector behind every generator in
// this package: it draws items from [0, n) either uniformly or from a
// scrambled zipfian. The synthetic mixes, the app workloads, and the YCSB
// suite all used to hand-roll this pairing; they now share it.
//
// For Uniform the draws consume rng directly — generators that interleave
// key draws with other uses of the same RNG (the synthetic mixes share one
// stream between location and size draws) keep their exact historical
// sequences. For Zipfian rng seeds the zipf state and is consumed only by
// it, again matching the historical construction.
type KeyChooser struct {
	n    uint64
	rng  *sim.RNG
	zipf *sim.ScrambledZipf
}

// NewKeyChooser builds a chooser over n items.
func NewKeyChooser(rng *sim.RNG, dist Dist, n uint64, theta float64) (*KeyChooser, error) {
	kc := &KeyChooser{n: n, rng: rng}
	if dist == Zipfian {
		z, err := sim.NewScrambledZipf(rng, n, theta)
		if err != nil {
			return nil, err
		}
		kc.zipf = z
	}
	return kc, nil
}

// Next draws the next item in [0, n).
func (k *KeyChooser) Next() uint64 {
	if k.zipf != nil {
		return k.zipf.Next()
	}
	return k.rng.Uint64n(k.n)
}

// N reports the item count.
func (k *KeyChooser) N() uint64 { return k.n }

// hashUnit01 maps x to a deterministic uniform draw in [0, 1) — the hashed
// per-item draw the layout generators (posting sizes, node degrees, value
// sizes) derive their distributions from.
func hashUnit01(x uint64) float64 {
	return float64(sim.Mix64(x)>>11) / (1 << 53)
}
