package workload

import (
	"math"
	"testing"

	"pipette/internal/sim"
)

// Both arrival processes must offer their configured average rate: over
// many draws the mean gap converges to 1/rate.
func TestArrivalsPreserveOfferedRate(t *testing.T) {
	const rate = 250_000.0 // 4 µs mean gap
	poisson, err := NewPoisson(rate, 7)
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := NewBursty(rate, 64, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		arr  Arrivals
	}{{"poisson", poisson}, {"bursty", bursty}} {
		const n = 200_000
		var total sim.Time
		for i := 0; i < n; i++ {
			gap := tc.arr.Next()
			if gap < 0 {
				t.Fatalf("%s: negative gap %v", tc.name, gap)
			}
			total += gap
		}
		mean := float64(total) / n
		want := 1e9 / rate
		if math.Abs(mean-want)/want > 0.03 {
			t.Errorf("%s: mean gap %.0f ns, want %.0f ns ±3%%", tc.name, mean, want)
		}
	}
}

// Bursty must actually clump: in-burst gaps run at peak× the average
// rate, with the idle gap between bursts making up the difference.
func TestBurstyShape(t *testing.T) {
	const rate, burst, peak = 100_000.0, 32, 4.0
	b, err := NewBursty(rate, burst, peak, 11)
	if err != nil {
		t.Fatal(err)
	}
	var inBurst, idle sim.Time
	var nIn, nIdle int
	for i := 0; i < 64_000; i++ {
		gap := b.Next()
		if b.pos%burst == 0 {
			idle += gap
			nIdle++
		} else {
			inBurst += gap
			nIn++
		}
	}
	meanIn := float64(inBurst) / float64(nIn)
	meanIdle := float64(idle) / float64(nIdle)
	wantIn := 1e9 / rate / peak
	if math.Abs(meanIn-wantIn)/wantIn > 0.05 {
		t.Errorf("in-burst mean gap %.0f ns, want %.0f ns", meanIn, wantIn)
	}
	if meanIdle < 10*meanIn {
		t.Errorf("idle gap %.0f ns not clearly longer than in-burst %.0f ns", meanIdle, meanIn)
	}
}

// The processes are deterministic: the same seed replays the same gaps.
func TestArrivalsDeterministicBySeed(t *testing.T) {
	a, _ := NewPoisson(1e6, 42)
	b, _ := NewPoisson(1e6, 42)
	c, _ := NewBursty(1e6, 8, 2, 42)
	d, _ := NewBursty(1e6, 8, 2, 42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("poisson diverged with identical seeds")
		}
		if c.Next() != d.Next() {
			t.Fatal("bursty diverged with identical seeds")
		}
	}
}

// Invalid parameters are rejected.
func TestArrivalsValidation(t *testing.T) {
	if _, err := NewPoisson(0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewBursty(-1, 4, 2, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewBursty(1e6, 1, 2, 1); err == nil {
		t.Error("burst of 1 accepted")
	}
	if _, err := NewBursty(1e6, 4, 1, 1); err == nil {
		t.Error("peak of 1 accepted")
	}
}
