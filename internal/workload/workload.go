// Package workload generates the paper's evaluation workloads: the five
// synthetic mixes of Table 1 (uniform and zipfian α=0.8 request
// distributions over a large file), a DLRM-flavoured recommender-system
// embedding-lookup stream (128 B vectors out of multi-gigabyte tables), and
// a LinkBench-flavoured social-graph operation stream (87.6 B nodes,
// 11.3 B edges, the default LinkBench operation mix).
//
// All generators are deterministic given their seed. Offsets in the
// synthetic mixes are page-aligned — the property that makes the paper's
// block-I/O traffic identical across mixes A–E (every request touches
// exactly one page, so only the location distribution matters; see Table 2
// and the discussion in §4.2).
package workload

import (
	"errors"
	"fmt"

	"pipette/internal/sim"
)

// Request is one generated operation.
type Request struct {
	Off   int64
	Size  int
	Write bool
}

// Generator produces a deterministic request stream.
type Generator interface {
	Name() string
	// FileSize is the dataset size the driver must create (preloaded).
	FileSize() int64
	Next() Request
}

// Dist selects the request location distribution.
type Dist int

// Distributions used by Table 1's footnote.
const (
	Uniform Dist = iota
	Zipfian
)

// String names the distribution.
func (d Dist) String() string {
	if d == Uniform {
		return "uniform"
	}
	return "zipfian"
}

// SyntheticConfig parameterizes a Table 1 mix.
type SyntheticConfig struct {
	Name       string
	FileSize   int64
	PageSize   int
	SmallRatio float64 // fraction of small reads
	SmallSize  int     // default 128 B
	LargeSize  int     // default 4096 B
	Dist       Dist
	Theta      float64 // zipfian exponent (paper: 0.8)
	Seed       uint64
}

// Mixes returns the five Table 1 configurations (A..E) over a file of the
// given size.
func Mixes(fileSize int64, pageSize int, dist Dist, seed uint64) []SyntheticConfig {
	ratios := []struct {
		name  string
		small float64
	}{
		{"A", 0.0}, {"B", 0.1}, {"C", 0.5}, {"D", 0.9}, {"E", 1.0},
	}
	out := make([]SyntheticConfig, 0, len(ratios))
	for _, r := range ratios {
		out = append(out, SyntheticConfig{
			Name:       r.name,
			FileSize:   fileSize,
			PageSize:   pageSize,
			SmallRatio: r.small,
			SmallSize:  128,
			LargeSize:  4096,
			Dist:       dist,
			Theta:      0.8,
			Seed:       seed,
		})
	}
	return out
}

// Synthetic draws page-aligned offsets from the configured distribution and
// sizes from the large/small mix.
type Synthetic struct {
	cfg    SyntheticConfig
	pages  uint64
	rng    *sim.RNG
	choose *KeyChooser
}

// NewSynthetic builds a Table 1 generator.
func NewSynthetic(cfg SyntheticConfig) (*Synthetic, error) {
	if cfg.PageSize <= 0 || cfg.FileSize < int64(cfg.PageSize) {
		return nil, errors.New("workload: file must hold at least one page")
	}
	if cfg.SmallRatio < 0 || cfg.SmallRatio > 1 {
		return nil, fmt.Errorf("workload: small ratio %g outside [0,1]", cfg.SmallRatio)
	}
	if cfg.SmallSize <= 0 || cfg.LargeSize <= 0 || cfg.LargeSize > cfg.PageSize {
		return nil, errors.New("workload: bad request sizes")
	}
	s := &Synthetic{
		cfg:   cfg,
		pages: uint64(cfg.FileSize) / uint64(cfg.PageSize),
		rng:   sim.NewRNG(cfg.Seed),
	}
	// Uniform draws share the size-draw stream; zipfian state is seeded
	// separately — both choices preserved from the original construction.
	rng := s.rng
	if cfg.Dist == Zipfian {
		rng = sim.NewRNG(cfg.Seed ^ 0x5a5a)
	}
	choose, err := NewKeyChooser(rng, cfg.Dist, s.pages, cfg.Theta)
	if err != nil {
		return nil, err
	}
	s.choose = choose
	return s, nil
}

// Name identifies the mix.
func (s *Synthetic) Name() string {
	return fmt.Sprintf("synthetic-%s-%s", s.cfg.Name, s.cfg.Dist)
}

// FileSize reports the dataset size.
func (s *Synthetic) FileSize() int64 { return s.cfg.FileSize }

// Next draws one read.
func (s *Synthetic) Next() Request {
	page := s.choose.Next()
	size := s.cfg.LargeSize
	if s.rng.Float64() < s.cfg.SmallRatio {
		size = s.cfg.SmallSize
	}
	return Request{Off: int64(page) * int64(s.cfg.PageSize), Size: size}
}

// FixedSize wraps a generator, forcing every request to one size — the
// Figure 8 latency sweep (workload E with request sizes 8 B .. 4 KiB).
type FixedSize struct {
	inner Generator
	size  int
}

// NewFixedSize forces size onto every request of inner.
func NewFixedSize(inner Generator, size int) *FixedSize {
	return &FixedSize{inner: inner, size: size}
}

// Name identifies the wrapped stream.
func (f *FixedSize) Name() string { return fmt.Sprintf("%s-%dB", f.inner.Name(), f.size) }

// FileSize reports the dataset size.
func (f *FixedSize) FileSize() int64 { return f.inner.FileSize() }

// Next draws a request and overrides its size.
func (f *FixedSize) Next() Request {
	r := f.inner.Next()
	r.Size = f.size
	if r.Off+int64(r.Size) > f.inner.FileSize() {
		r.Off = f.inner.FileSize() - int64(r.Size)
	}
	return r
}
