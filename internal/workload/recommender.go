package workload

import (
	"errors"
	"fmt"

	"pipette/internal/sim"
)

// RecommenderConfig parameterizes the deep-learning recommendation workload
// of §4.3: sparse features are looked up as fixed-size embedding vectors
// from large tables resident on the SSD (DLRM over the Criteo dataset in
// the paper; 128 B vectors from 4.1 GB of tables).
type RecommenderConfig struct {
	TableBytes int64   // total embedding storage (paper: 4.1 GiB)
	VectorSize int     // bytes per embedding (paper: 128)
	Tables     int     // sparse features, one table each (DLRM/Criteo: 26)
	SizeSkew   float64 // geometric ratio between consecutive table sizes
	Theta      float64 // per-table popularity skew

	// Temporal locality: with probability HotProb a lookup revisits one of
	// the last HotWindow distinct vectors instead of drawing fresh —
	// production embedding streams show exactly this behaviour (Bandana
	// reports >90% of accesses landing in a small recently-hot set).
	HotProb   float64
	HotWindow int

	Seed uint64
}

// DefaultRecommenderConfig mirrors the paper at full scale; the benchmark
// harness scales TableBytes down for quick runs. Criteo's tables span six
// orders of magnitude in cardinality (a handful of values up to tens of
// millions), so table sizes fall geometrically, and embedding popularity is
// strongly skewed (Eisenman et al. report >90% of lookups hitting a small
// hot set) — hence the near-1 zipfian exponent.
func DefaultRecommenderConfig() RecommenderConfig {
	return RecommenderConfig{
		TableBytes: 4 << 30,
		VectorSize: 128,
		Tables:     26,
		SizeSkew:   0.7,
		Theta:      0.5,
		HotProb:    0.7,
		HotWindow:  4096,
		Seed:       0xd1e2,
	}
}

// Recommender emits one embedding lookup per Next, cycling through the
// sparse-feature tables the way one inference batch gathers its features.
type Recommender struct {
	cfg   RecommenderConfig
	vecs    []uint64 // per-table vector counts
	base    []int64  // per-table byte offsets within the file
	size    int64
	next    int
	choosers []*KeyChooser

	rng    *sim.RNG
	recent []int64 // ring of recently looked-up distinct offsets (hot set)
	inRing map[int64]bool
	rpos   int
}

// NewRecommender builds the generator.
func NewRecommender(cfg RecommenderConfig) (*Recommender, error) {
	if cfg.VectorSize <= 0 || cfg.Tables <= 0 {
		return nil, errors.New("workload: recommender needs positive vector size and tables")
	}
	if cfg.SizeSkew <= 0 || cfg.SizeSkew > 1 {
		return nil, errors.New("workload: SizeSkew must be in (0,1]")
	}
	if cfg.HotProb < 0 || cfg.HotProb >= 1 || (cfg.HotProb > 0 && cfg.HotWindow < 1) {
		return nil, errors.New("workload: bad hot-set parameters")
	}
	// Geometric table sizes: weight_i = skew^i, normalized to TableBytes.
	weights := make([]float64, cfg.Tables)
	var total float64
	w := 1.0
	for i := range weights {
		weights[i] = w
		total += w
		w *= cfg.SizeSkew
	}
	r := &Recommender{
		cfg:    cfg,
		rng:    sim.NewRNG(cfg.Seed ^ 0xcafe),
		inRing: make(map[int64]bool),
	}
	rng := sim.NewRNG(cfg.Seed)
	var off int64
	for i := 0; i < cfg.Tables; i++ {
		bytes := int64(float64(cfg.TableBytes) * weights[i] / total)
		vecs := uint64(bytes) / uint64(cfg.VectorSize)
		if vecs == 0 {
			if i == 0 {
				return nil, errors.New("workload: tables too small for one vector")
			}
			// The smallest Criteo-like tables hold a handful of values;
			// clamp to one vector.
			vecs = 1
		}
		r.vecs = append(r.vecs, vecs)
		r.base = append(r.base, off)
		off += int64(vecs) * int64(cfg.VectorSize)
		choose, err := NewKeyChooser(rng.Split(), Zipfian, vecs, cfg.Theta)
		if err != nil {
			return nil, err
		}
		r.choosers = append(r.choosers, choose)
	}
	r.size = off
	// Pre-populate the hot set so temporal locality spans the full window
	// from the first request (and is therefore scale-independent). The ring
	// holds distinct offsets; small tables saturate quickly, so cap the
	// attempts in case the window exceeds the total distinct vectors.
	for attempts := 0; r.cfg.HotWindow > 0 && len(r.recent) < r.cfg.HotWindow &&
		attempts < 8*r.cfg.HotWindow; attempts++ {
		t := r.next
		r.next = (r.next + 1) % r.cfg.Tables
		vec := r.choosers[t].Next()
		r.admitHot(r.base[t] + int64(vec)*int64(r.cfg.VectorSize))
	}
	return r, nil
}

// admitHot inserts a distinct offset into the hot ring, displacing the
// oldest slot once full.
func (r *Recommender) admitHot(off int64) {
	if r.cfg.HotWindow <= 0 || r.inRing[off] {
		return
	}
	if len(r.recent) < r.cfg.HotWindow {
		r.recent = append(r.recent, off)
	} else {
		delete(r.inRing, r.recent[r.rpos])
		r.recent[r.rpos] = off
		r.rpos = (r.rpos + 1) % r.cfg.HotWindow
	}
	r.inRing[off] = true
}

// Name identifies the workload.
func (r *Recommender) Name() string { return "recommender" }

// FileSize reports the embedding-store size.
func (r *Recommender) FileSize() int64 { return r.size }

// TableVectors exposes per-table cardinalities (tests).
func (r *Recommender) TableVectors() []uint64 {
	out := make([]uint64, len(r.vecs))
	copy(out, r.vecs)
	return out
}

// Next draws one embedding lookup: usually a revisit of the recent hot set,
// otherwise a fresh zipfian draw from the next sparse-feature table.
func (r *Recommender) Next() Request {
	if len(r.recent) > 0 && r.rng.Float64() < r.cfg.HotProb {
		off := r.recent[int(r.rng.Uint64n(uint64(len(r.recent))))]
		return Request{Off: off, Size: r.cfg.VectorSize}
	}
	t := r.next
	r.next = (r.next + 1) % r.cfg.Tables
	vec := r.choosers[t].Next()
	off := r.base[t] + int64(vec)*int64(r.cfg.VectorSize)
	r.admitHot(off)
	return Request{Off: off, Size: r.cfg.VectorSize}
}

// String describes the configuration.
func (r *Recommender) String() string {
	return fmt.Sprintf("recommender(%d tables, %d B total, %dB vectors)",
		r.cfg.Tables, r.size, r.cfg.VectorSize)
}
