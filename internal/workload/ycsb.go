package workload

import (
	"fmt"

	"pipette/internal/sim"
)

// KVOp is one key-value operation kind.
type KVOp int

// Operation kinds of the YCSB core workloads.
const (
	OpRead KVOp = iota
	OpUpdate
	OpInsert
	OpScan
	OpRMW // read-modify-write
)

// String names the operation.
func (op KVOp) String() string {
	switch op {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpScan:
		return "scan"
	case OpRMW:
		return "rmw"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// KVRequest is one generated key-value operation. Key is a dense record
// number — the store driver renders it into a key string and a value. For
// OpScan, ScanLen is the number of consecutive keys to return.
type KVRequest struct {
	Op      KVOp
	Key     uint64
	ScanLen int
}

// YCSBConfig parameterizes a YCSB-style key-value workload: an operation
// mix in percent, a request distribution over the keyspace, and the growing
// record count inserts produce. The paper's small-value regime (values far
// below a page) is where the fine-grained read path wins; value sizing is
// the store driver's business, keyed off KVRequest.Key.
type YCSBConfig struct {
	Name    string
	Records uint64 // preloaded keyspace; inserts grow it

	ReadPct   float64
	UpdatePct float64
	InsertPct float64
	ScanPct   float64
	RMWPct    float64

	Dist       Dist    // request distribution over the keyspace
	Latest     bool    // skew reads toward recently inserted keys (workload D)
	Theta      float64 // zipfian exponent
	MaxScanLen int     // scan length upper bound (workload E)
	Seed       uint64
}

// StandardYCSB returns one of the six core workloads over a keyspace of
// records keys:
//
//	A  50% read / 50% update, zipfian
//	B  95% read /  5% update, zipfian
//	C  100% read, zipfian
//	D  95% read /  5% insert, latest distribution
//	E  95% scan /  5% insert, zipfian, scans up to 100 keys
//	F  50% read / 50% read-modify-write, zipfian
func StandardYCSB(name string, records uint64, seed uint64) (YCSBConfig, error) {
	cfg := YCSBConfig{
		Name:       name,
		Records:    records,
		Dist:       Zipfian,
		Theta:      0.8,
		MaxScanLen: 100,
		Seed:       seed,
	}
	switch name {
	case "A":
		cfg.ReadPct, cfg.UpdatePct = 50, 50
	case "B":
		cfg.ReadPct, cfg.UpdatePct = 95, 5
	case "C":
		cfg.ReadPct = 100
	case "D":
		cfg.ReadPct, cfg.InsertPct = 95, 5
		cfg.Latest = true
	case "E":
		cfg.ScanPct, cfg.InsertPct = 95, 5
	case "F":
		cfg.ReadPct, cfg.RMWPct = 50, 50
	default:
		return YCSBConfig{}, fmt.Errorf("workload: unknown YCSB workload %q (A-F)", name)
	}
	return cfg, nil
}

// YCSB generates the configured operation stream. Deterministic given the
// seed; inserts extend the keyspace with dense keys Records, Records+1, ...
type YCSB struct {
	cfg    YCSBConfig
	rng    *sim.RNG
	choose *KeyChooser
	latest *sim.Zipf // rank 0 = newest key (workload D)
	total  uint64    // current record count
	cdf    [5]float64
	ops    [5]KVOp
}

// NewYCSB builds the generator.
func NewYCSB(cfg YCSBConfig) (*YCSB, error) {
	if cfg.Records == 0 {
		return nil, fmt.Errorf("workload: YCSB needs at least one record")
	}
	sum := cfg.ReadPct + cfg.UpdatePct + cfg.InsertPct + cfg.ScanPct + cfg.RMWPct
	if sum < 99.999 || sum > 100.001 {
		return nil, fmt.Errorf("workload: YCSB mix sums to %g%%, want 100", sum)
	}
	if cfg.ScanPct > 0 && cfg.MaxScanLen < 1 {
		return nil, fmt.Errorf("workload: scans need MaxScanLen >= 1")
	}
	y := &YCSB{cfg: cfg, rng: sim.NewRNG(cfg.Seed), total: cfg.Records}
	choose, err := NewKeyChooser(sim.NewRNG(cfg.Seed^0x9c5b), cfg.Dist, cfg.Records, cfg.Theta)
	if err != nil {
		return nil, err
	}
	y.choose = choose
	if cfg.Latest {
		z, err := sim.NewZipf(sim.NewRNG(cfg.Seed^0x1a7e57), cfg.Records, cfg.Theta)
		if err != nil {
			return nil, err
		}
		y.latest = z
	}
	y.ops = [5]KVOp{OpRead, OpUpdate, OpInsert, OpScan, OpRMW}
	pcts := [5]float64{cfg.ReadPct, cfg.UpdatePct, cfg.InsertPct, cfg.ScanPct, cfg.RMWPct}
	var cum float64
	for i, p := range pcts {
		cum += p
		y.cdf[i] = cum
	}
	return y, nil
}

// Name identifies the workload.
func (y *YCSB) Name() string { return "ycsb-" + y.cfg.Name }

// Records reports the current record count (grows with inserts).
func (y *YCSB) Records() uint64 { return y.total }

// key draws one existing record number from the configured distribution.
func (y *YCSB) key() uint64 {
	if y.latest != nil {
		// Workload D reads what was just inserted: rank 0 is the newest key.
		return y.total - 1 - y.latest.Next()
	}
	return y.choose.Next()
}

// Next draws one operation.
func (y *YCSB) Next() KVRequest {
	p := y.rng.Float64() * 100
	op := y.ops[len(y.ops)-1]
	for i, c := range y.cdf {
		if p < c {
			op = y.ops[i]
			break
		}
	}
	switch op {
	case OpInsert:
		k := y.total
		y.total++
		return KVRequest{Op: OpInsert, Key: k}
	case OpScan:
		return KVRequest{
			Op:      OpScan,
			Key:     y.key(),
			ScanLen: 1 + int(y.rng.Uint64n(uint64(y.cfg.MaxScanLen))),
		}
	default:
		return KVRequest{Op: op, Key: y.key()}
	}
}
