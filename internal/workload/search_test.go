package workload

import "testing"

func TestSearchEngineValidation(t *testing.T) {
	bad := []SearchEngineConfig{
		{},
		{Terms: 100, EntryBytes: 0, MeanPosting: 10, MaxPosting: 100, TermsPerQuery: 1},
		{Terms: 100, EntryBytes: 16, MeanPosting: 0, MaxPosting: 100, TermsPerQuery: 1},
		{Terms: 100, EntryBytes: 16, MeanPosting: 200, MaxPosting: 100, TermsPerQuery: 1},
		{Terms: 100, EntryBytes: 16, MeanPosting: 10, MaxPosting: 100, TermsPerQuery: 0},
	}
	for i, c := range bad {
		if _, err := NewSearchEngine(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSearchEngineLayout(t *testing.T) {
	cfg := DefaultSearchEngineConfig()
	cfg.Terms = 1 << 12
	s, err := NewSearchEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entryRegion := int64(cfg.Terms) * int64(cfg.EntryBytes)
	if s.FileSize() <= entryRegion {
		t.Fatal("index has no postings region")
	}
	// Posting sizes respect bounds and show a spread.
	var small, big int
	for term := uint64(0); term < cfg.Terms; term++ {
		n := s.PostingBytes(term)
		if n < 8 || n > cfg.MaxPosting {
			t.Fatalf("posting %d size %d out of bounds", term, n)
		}
		if n < cfg.MeanPosting {
			small++
		}
		if n > 4*cfg.MeanPosting {
			big++
		}
	}
	if small == 0 || big == 0 {
		t.Fatalf("posting size distribution degenerate: %d small, %d big", small, big)
	}
}

func TestSearchEngineQueriesAlternate(t *testing.T) {
	cfg := DefaultSearchEngineConfig()
	cfg.Terms = 1 << 12
	cfg.TermsPerQuery = 2
	s, err := NewSearchEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entryRegion := int64(cfg.Terms) * int64(cfg.EntryBytes)
	for q := 0; q < 500; q++ {
		for term := 0; term < cfg.TermsPerQuery; term++ {
			entry := s.Next()
			if entry.Size != cfg.EntryBytes || entry.Off >= entryRegion {
				t.Fatalf("query %d: expected entry read, got %+v", q, entry)
			}
			post := s.Next()
			if post.Off < entryRegion || post.Off+int64(post.Size) > s.FileSize() {
				t.Fatalf("query %d: posting read out of region: %+v", q, post)
			}
			if post.Write || entry.Write {
				t.Fatal("search workload is read-only")
			}
		}
	}
}

func TestSearchEngineDeterminism(t *testing.T) {
	cfg := DefaultSearchEngineConfig()
	cfg.Terms = 1 << 10
	a, _ := NewSearchEngine(cfg)
	b, _ := NewSearchEngine(cfg)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed search generators diverged")
		}
	}
}
