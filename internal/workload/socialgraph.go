package workload

import (
	"errors"
	"math"

	"pipette/internal/sim"
)

// SocialGraphConfig parameterizes the LinkBench-flavoured social-graph
// workload of §4.3: tiny node and edge objects (LinkBench/TAO report
// 87.6 B average nodes and 11.3 B average edges) accessed with the
// LinkBench default operation mix, which is read-dominated but includes a
// write stream that exercises the fine-cache invalidation path.
type SocialGraphConfig struct {
	Nodes     uint64  // graph size
	NodeBytes int     // storage slot per node (87.6 B average -> 96 B slot)
	EdgeBytes int     // storage slot per edge (11.3 B average -> 12 B slot)
	MaxDegree int     // out-degree cap
	Alpha     float64 // Pareto shape of the degree distribution
	Theta     float64 // zipfian skew of node popularity
	Seed      uint64
}

// DefaultSocialGraphConfig mirrors LinkBench defaults at a laptop-friendly
// scale; the harness scales Nodes for full runs.
func DefaultSocialGraphConfig() SocialGraphConfig {
	return SocialGraphConfig{
		Nodes:     1 << 20,
		NodeBytes: 96,
		EdgeBytes: 12,
		MaxDegree: 128,
		Alpha:     2.0,
		// Social-graph request skew is famously extreme (TAO reports a
		// tiny fraction of objects receiving most reads); 0.95 gives the
		// hot-node reuse LinkBench's zipfian access models.
		Theta: 0.95,
		Seed:  0x50c1a1,
	}
}

// opKind is a LinkBench operation.
type opKind int

const (
	opGetNode opKind = iota
	opUpdateNode
	opAddNode
	opDeleteNode
	opGetLinksList
	opMultigetLink
	opCountLink
	opAddLink
	opDeleteLink
	opUpdateLink
)

// linkbenchMix is the default LinkBench workload mix (Armstrong et al.,
// SIGMOD'13), in percent.
var linkbenchMix = []struct {
	op  opKind
	pct float64
}{
	{opGetLinksList, 50.7},
	{opGetNode, 12.9},
	{opAddLink, 9.0},
	{opUpdateLink, 8.0},
	{opUpdateNode, 7.4},
	{opCountLink, 4.9},
	{opDeleteLink, 3.0},
	{opAddNode, 2.6},
	{opDeleteNode, 1.0},
	{opMultigetLink, 0.5},
}

// SocialGraph lays the graph out in one file: a node region of fixed slots
// followed by an edge region holding each node's adjacency run at a
// deterministic offset (prefix sums over a Pareto degree distribution).
type SocialGraph struct {
	cfg      SocialGraphConfig
	rng      *sim.RNG
	choose   *KeyChooser
	degrees  []uint32
	edgeOff  []uint64 // prefix sums: node i's edges start at edgeOff[i]
	edgeBase int64
	size     int64
	cdf      []float64
}

// NewSocialGraph builds the generator (graph layout included).
func NewSocialGraph(cfg SocialGraphConfig) (*SocialGraph, error) {
	if cfg.Nodes == 0 || cfg.NodeBytes <= 0 || cfg.EdgeBytes <= 0 || cfg.MaxDegree < 1 {
		return nil, errors.New("workload: bad social graph config")
	}
	g := &SocialGraph{cfg: cfg, rng: sim.NewRNG(cfg.Seed)}
	choose, err := NewKeyChooser(sim.NewRNG(cfg.Seed^0x77), Zipfian, cfg.Nodes, cfg.Theta)
	if err != nil {
		return nil, err
	}
	g.choose = choose

	// Deterministic Pareto out-degrees and their prefix sums.
	g.degrees = make([]uint32, cfg.Nodes)
	g.edgeOff = make([]uint64, cfg.Nodes+1)
	for i := uint64(0); i < cfg.Nodes; i++ {
		g.degrees[i] = paretoDegree(cfg.Seed, i, cfg.Alpha, cfg.MaxDegree)
		g.edgeOff[i+1] = g.edgeOff[i] + uint64(g.degrees[i])
	}
	g.edgeBase = int64(cfg.Nodes) * int64(cfg.NodeBytes)
	g.size = g.edgeBase + int64(g.edgeOff[cfg.Nodes])*int64(cfg.EdgeBytes)

	var cum float64
	for _, m := range linkbenchMix {
		cum += m.pct
		g.cdf = append(g.cdf, cum)
	}
	return g, nil
}

// paretoDegree derives node i's out-degree from a hashed Pareto draw
// (x_m = 1, shape alpha: X = u^(-1/alpha)), capped at maxDeg.
func paretoDegree(seed, i uint64, alpha float64, maxDeg int) uint32 {
	u := hashUnit01(seed ^ (i + 1))
	if u < 1e-12 {
		u = 1e-12
	}
	d := math.Pow(u, -1.0/alpha)
	if d > float64(maxDeg) {
		d = float64(maxDeg)
	}
	if d < 1 {
		d = 1
	}
	return uint32(d)
}

// Name identifies the workload.
func (g *SocialGraph) Name() string { return "socialgraph" }

// FileSize reports the graph store size.
func (g *SocialGraph) FileSize() int64 { return g.size }

// Degree exposes a node's out-degree (tests).
func (g *SocialGraph) Degree(node uint64) int { return int(g.degrees[node]) }

func (g *SocialGraph) nodeOffset(node uint64) int64 {
	return int64(node) * int64(g.cfg.NodeBytes)
}

func (g *SocialGraph) edgeRun(node uint64) (off int64, n int) {
	start := g.edgeBase + int64(g.edgeOff[node])*int64(g.cfg.EdgeBytes)
	return start, int(g.degrees[node]) * g.cfg.EdgeBytes
}

// Next draws one LinkBench operation and renders it as a file request.
func (g *SocialGraph) Next() Request {
	p := g.rng.Float64() * 100
	op := linkbenchMix[len(linkbenchMix)-1].op
	for i, c := range g.cdf {
		if p < c {
			op = linkbenchMix[i].op
			break
		}
	}
	node := g.choose.Next()
	switch op {
	case opGetNode:
		return Request{Off: g.nodeOffset(node), Size: g.cfg.NodeBytes}
	case opUpdateNode, opAddNode, opDeleteNode:
		return Request{Off: g.nodeOffset(node), Size: g.cfg.NodeBytes, Write: true}
	case opGetLinksList:
		off, n := g.edgeRun(node)
		return Request{Off: off, Size: n}
	case opMultigetLink:
		off, n := g.edgeRun(node)
		want := 4 * g.cfg.EdgeBytes
		if want > n {
			want = n
		}
		return Request{Off: off, Size: want}
	case opCountLink:
		// The link count is a small header field co-located with the node.
		return Request{Off: g.nodeOffset(node), Size: 8}
	case opAddLink, opDeleteLink, opUpdateLink:
		off, n := g.edgeRun(node)
		idx := int(g.rng.Uint64n(uint64(n / g.cfg.EdgeBytes)))
		return Request{Off: off + int64(idx)*int64(g.cfg.EdgeBytes), Size: g.cfg.EdgeBytes, Write: true}
	default:
		return Request{Off: g.nodeOffset(node), Size: g.cfg.NodeBytes}
	}
}
