package workload

import (
	"fmt"
	"math"

	"pipette/internal/sim"
)

// Arrivals generates the interarrival gaps of an open-loop request stream:
// requests arrive on their own schedule whether or not earlier ones have
// completed, which is what exposes queueing delay and saturation. (The
// closed-loop mode — next request issues when the previous completes — is
// a runner mode, not an Arrivals implementation.)
//
// All implementations are deterministic given their seed.
type Arrivals interface {
	Name() string
	// Next returns the gap between the previous arrival and the next.
	Next() sim.Time
}

// Poisson produces memoryless arrivals: exponential interarrival gaps with
// the configured mean rate, the standard open-system load model.
type Poisson struct {
	meanNs float64
	rng    *sim.RNG
}

// NewPoisson builds a Poisson arrival process offering ratePerSec requests
// per second of virtual time.
func NewPoisson(ratePerSec float64, seed uint64) (*Poisson, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("workload: arrival rate %g must be positive", ratePerSec)
	}
	return &Poisson{meanNs: 1e9 / ratePerSec, rng: sim.NewRNG(seed)}, nil
}

// Name identifies the process.
func (p *Poisson) Name() string { return "poisson" }

// Next draws one exponential gap.
func (p *Poisson) Next() sim.Time {
	u := p.rng.Float64()
	return sim.Time(-math.Log(1-u) * p.meanNs)
}

// Bursty produces on/off arrivals: bursts of Burst requests whose gaps run
// Peak times faster than the long-run average, separated by idle gaps
// sized so the overall offered rate still averages ratePerSec. The same
// average load as Poisson, delivered in clumps — the tail-latency stress
// pattern.
type Bursty struct {
	burst     int
	peakGapNs float64 // mean gap within a burst
	idleGapNs float64 // mean gap between bursts
	rng       *sim.RNG
	pos       int
}

// NewBursty builds a bursty arrival process: bursts of burst requests at
// peak times the average rate, idling in between. peak must be > 1 and
// burst >= 2.
func NewBursty(ratePerSec float64, burst int, peak float64, seed uint64) (*Bursty, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("workload: arrival rate %g must be positive", ratePerSec)
	}
	if burst < 2 {
		return nil, fmt.Errorf("workload: burst size %d must be >= 2", burst)
	}
	if peak <= 1 {
		return nil, fmt.Errorf("workload: peak factor %g must be > 1", peak)
	}
	meanNs := 1e9 / ratePerSec
	// One cycle is burst-1 in-burst gaps plus one idle gap and must span
	// burst mean gaps on average to preserve the offered rate.
	idle := meanNs * (float64(burst) - float64(burst-1)/peak)
	return &Bursty{
		burst:     burst,
		peakGapNs: meanNs / peak,
		idleGapNs: idle,
		rng:       sim.NewRNG(seed),
	}, nil
}

// Name identifies the process.
func (b *Bursty) Name() string { return "bursty" }

// Next draws one gap: exponential at the peak rate within a burst, one
// long exponential idle gap between bursts.
func (b *Bursty) Next() sim.Time {
	b.pos++
	mean := b.peakGapNs
	if b.pos%b.burst == 0 {
		mean = b.idleGapNs
	}
	u := b.rng.Float64()
	return sim.Time(-math.Log(1-u) * mean)
}
